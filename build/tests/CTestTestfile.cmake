# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_lib[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_uopexec[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_decode[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_ooocore[1]_include.cmake")
include("/root/repo/build/tests/test_smt[1]_include.cmake")
include("/root/repo/build/tests/test_native[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_ptlstats[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
