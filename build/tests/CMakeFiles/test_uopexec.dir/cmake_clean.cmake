file(REMOVE_RECURSE
  "CMakeFiles/test_uopexec.dir/test_uopexec.cc.o"
  "CMakeFiles/test_uopexec.dir/test_uopexec.cc.o.d"
  "test_uopexec"
  "test_uopexec.pdb"
  "test_uopexec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uopexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
