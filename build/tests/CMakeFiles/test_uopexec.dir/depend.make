# Empty dependencies file for test_uopexec.
# This may be replaced when dependencies are built.
