file(REMOVE_RECURSE
  "CMakeFiles/test_ptlstats.dir/test_ptlstats.cc.o"
  "CMakeFiles/test_ptlstats.dir/test_ptlstats.cc.o.d"
  "test_ptlstats"
  "test_ptlstats.pdb"
  "test_ptlstats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptlstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
