# Empty compiler generated dependencies file for test_ptlstats.
# This may be replaced when dependencies are built.
