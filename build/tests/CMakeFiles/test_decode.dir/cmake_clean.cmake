file(REMOVE_RECURSE
  "CMakeFiles/test_decode.dir/test_decode.cc.o"
  "CMakeFiles/test_decode.dir/test_decode.cc.o.d"
  "test_decode"
  "test_decode.pdb"
  "test_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
