# Empty compiler generated dependencies file for test_decode.
# This may be replaced when dependencies are built.
