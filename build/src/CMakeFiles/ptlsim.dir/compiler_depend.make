# Empty compiler generated dependencies file for ptlsim.
# This may be replaced when dependencies are built.
