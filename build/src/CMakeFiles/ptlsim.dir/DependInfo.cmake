
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/predictor.cc" "src/CMakeFiles/ptlsim.dir/branch/predictor.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/branch/predictor.cc.o.d"
  "/root/repo/src/core/context.cc" "src/CMakeFiles/ptlsim.dir/core/context.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/context.cc.o.d"
  "/root/repo/src/core/coreapi.cc" "src/CMakeFiles/ptlsim.dir/core/coreapi.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/coreapi.cc.o.d"
  "/root/repo/src/core/interlock.cc" "src/CMakeFiles/ptlsim.dir/core/interlock.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/interlock.cc.o.d"
  "/root/repo/src/core/ooo/backend.cc" "src/CMakeFiles/ptlsim.dir/core/ooo/backend.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/ooo/backend.cc.o.d"
  "/root/repo/src/core/ooo/frontend.cc" "src/CMakeFiles/ptlsim.dir/core/ooo/frontend.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/ooo/frontend.cc.o.d"
  "/root/repo/src/core/ooo/lsq.cc" "src/CMakeFiles/ptlsim.dir/core/ooo/lsq.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/ooo/lsq.cc.o.d"
  "/root/repo/src/core/ooo/ooocore.cc" "src/CMakeFiles/ptlsim.dir/core/ooo/ooocore.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/ooo/ooocore.cc.o.d"
  "/root/repo/src/core/seqcore.cc" "src/CMakeFiles/ptlsim.dir/core/seqcore.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/core/seqcore.cc.o.d"
  "/root/repo/src/decode/bbcache.cc" "src/CMakeFiles/ptlsim.dir/decode/bbcache.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/decode/bbcache.cc.o.d"
  "/root/repo/src/decode/translate.cc" "src/CMakeFiles/ptlsim.dir/decode/translate.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/decode/translate.cc.o.d"
  "/root/repo/src/decode/x86decode.cc" "src/CMakeFiles/ptlsim.dir/decode/x86decode.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/decode/x86decode.cc.o.d"
  "/root/repo/src/kernel/guestkernel.cc" "src/CMakeFiles/ptlsim.dir/kernel/guestkernel.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/kernel/guestkernel.cc.o.d"
  "/root/repo/src/kernel/guestlib.cc" "src/CMakeFiles/ptlsim.dir/kernel/guestlib.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/kernel/guestlib.cc.o.d"
  "/root/repo/src/lib/config.cc" "src/CMakeFiles/ptlsim.dir/lib/config.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/lib/config.cc.o.d"
  "/root/repo/src/lib/logging.cc" "src/CMakeFiles/ptlsim.dir/lib/logging.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/lib/logging.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/ptlsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coherence.cc" "src/CMakeFiles/ptlsim.dir/mem/coherence.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/coherence.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/ptlsim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/pagetable.cc" "src/CMakeFiles/ptlsim.dir/mem/pagetable.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/pagetable.cc.o.d"
  "/root/repo/src/mem/physmem.cc" "src/CMakeFiles/ptlsim.dir/mem/physmem.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/physmem.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/ptlsim.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/mem/tlb.cc.o.d"
  "/root/repo/src/native/cosim.cc" "src/CMakeFiles/ptlsim.dir/native/cosim.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/native/cosim.cc.o.d"
  "/root/repo/src/native/triggers.cc" "src/CMakeFiles/ptlsim.dir/native/triggers.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/native/triggers.cc.o.d"
  "/root/repo/src/stats/ptlstats.cc" "src/CMakeFiles/ptlsim.dir/stats/ptlstats.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/stats/ptlstats.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/ptlsim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/stats/stats.cc.o.d"
  "/root/repo/src/sys/checkpoint.cc" "src/CMakeFiles/ptlsim.dir/sys/checkpoint.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/checkpoint.cc.o.d"
  "/root/repo/src/sys/devices.cc" "src/CMakeFiles/ptlsim.dir/sys/devices.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/devices.cc.o.d"
  "/root/repo/src/sys/events.cc" "src/CMakeFiles/ptlsim.dir/sys/events.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/events.cc.o.d"
  "/root/repo/src/sys/hypervisor.cc" "src/CMakeFiles/ptlsim.dir/sys/hypervisor.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/hypervisor.cc.o.d"
  "/root/repo/src/sys/machine.cc" "src/CMakeFiles/ptlsim.dir/sys/machine.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/machine.cc.o.d"
  "/root/repo/src/sys/tracereplay.cc" "src/CMakeFiles/ptlsim.dir/sys/tracereplay.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/sys/tracereplay.cc.o.d"
  "/root/repo/src/uop/uop.cc" "src/CMakeFiles/ptlsim.dir/uop/uop.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/uop/uop.cc.o.d"
  "/root/repo/src/uop/uopexec.cc" "src/CMakeFiles/ptlsim.dir/uop/uopexec.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/uop/uopexec.cc.o.d"
  "/root/repo/src/workload/fileset.cc" "src/CMakeFiles/ptlsim.dir/workload/fileset.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/workload/fileset.cc.o.d"
  "/root/repo/src/workload/k8preset.cc" "src/CMakeFiles/ptlsim.dir/workload/k8preset.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/workload/k8preset.cc.o.d"
  "/root/repo/src/workload/rsyncbench.cc" "src/CMakeFiles/ptlsim.dir/workload/rsyncbench.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/workload/rsyncbench.cc.o.d"
  "/root/repo/src/xasm/assembler.cc" "src/CMakeFiles/ptlsim.dir/xasm/assembler.cc.o" "gcc" "src/CMakeFiles/ptlsim.dir/xasm/assembler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
