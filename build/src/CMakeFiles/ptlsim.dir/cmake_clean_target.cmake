file(REMOVE_RECURSE
  "libptlsim.a"
)
