# Empty compiler generated dependencies file for rsync_fullsystem.
# This may be replaced when dependencies are built.
