file(REMOVE_RECURSE
  "CMakeFiles/rsync_fullsystem.dir/rsync_fullsystem.cpp.o"
  "CMakeFiles/rsync_fullsystem.dir/rsync_fullsystem.cpp.o.d"
  "rsync_fullsystem"
  "rsync_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsync_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
