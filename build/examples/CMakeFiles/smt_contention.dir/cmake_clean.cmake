file(REMOVE_RECURSE
  "CMakeFiles/smt_contention.dir/smt_contention.cpp.o"
  "CMakeFiles/smt_contention.dir/smt_contention.cpp.o.d"
  "smt_contention"
  "smt_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
