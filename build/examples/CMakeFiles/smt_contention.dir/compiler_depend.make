# Empty compiler generated dependencies file for smt_contention.
# This may be replaced when dependencies are built.
