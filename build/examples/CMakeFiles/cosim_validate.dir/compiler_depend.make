# Empty compiler generated dependencies file for cosim_validate.
# This may be replaced when dependencies are built.
