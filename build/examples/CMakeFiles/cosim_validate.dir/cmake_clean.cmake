file(REMOVE_RECURSE
  "CMakeFiles/cosim_validate.dir/cosim_validate.cpp.o"
  "CMakeFiles/cosim_validate.dir/cosim_validate.cpp.o.d"
  "cosim_validate"
  "cosim_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
