file(REMOVE_RECURSE
  "CMakeFiles/fig2_cycles_in_mode.dir/fig2_cycles_in_mode.cpp.o"
  "CMakeFiles/fig2_cycles_in_mode.dir/fig2_cycles_in_mode.cpp.o.d"
  "fig2_cycles_in_mode"
  "fig2_cycles_in_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cycles_in_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
