# Empty compiler generated dependencies file for fig2_cycles_in_mode.
# This may be replaced when dependencies are built.
