# Empty dependencies file for table1_k8_accuracy.
# This may be replaced when dependencies are built.
