file(REMOVE_RECURSE
  "CMakeFiles/fig3_microarch_timelapse.dir/fig3_microarch_timelapse.cpp.o"
  "CMakeFiles/fig3_microarch_timelapse.dir/fig3_microarch_timelapse.cpp.o.d"
  "fig3_microarch_timelapse"
  "fig3_microarch_timelapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_microarch_timelapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
