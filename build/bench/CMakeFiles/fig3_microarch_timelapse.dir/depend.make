# Empty dependencies file for fig3_microarch_timelapse.
# This may be replaced when dependencies are built.
