#include "decode/x86decode.h"

#include <sstream>

#include "lib/logging.h"

namespace ptl {

namespace {

/** What a primary-map opcode needs beyond the opcode byte. */
struct OpcodeShape
{
    bool known = false;
    bool modrm = false;
    int imm = 0;       ///< immediate bytes; -1 = operand-size (max 4),
                       ///< -2 = full operand size (movabs), -3 = grp3
};

OpcodeShape
primaryShape(U8 op)
{
    // ALU block 0x00-0x3F: reg/modrm forms only (AL/eAX-imm forms and
    // the legacy 0x06-style slots are not used by our toolchain).
    if (op <= 0x3F) {
        if ((op & 7) <= 3)
            return {true, true, 0};
        return {};
    }
    if (op >= 0x50 && op <= 0x5F)
        return {true, false, 0};
    switch (op) {
      case 0x63: return {true, true, 0};
      case 0x69: return {true, true, -1};
      case 0x6B: return {true, true, 1};
      case 0x80: return {true, true, 1};
      case 0x81: return {true, true, -1};
      case 0x83: return {true, true, 1};
      case 0x84: case 0x85: case 0x86: case 0x87:
      case 0x88: case 0x89: case 0x8A: case 0x8B:
      case 0x8D:
        return {true, true, 0};
      case 0x90: case 0x9C: case 0x9D:
      case 0xA4: case 0xAA: case 0xAC:
      case 0xC3: case 0xCF: case 0xF4:
      case 0xFA: case 0xFB: case 0xFC:
        return {true, false, 0};
      case 0xB8: case 0xB9: case 0xBA: case 0xBB:
      case 0xBC: case 0xBD: case 0xBE: case 0xBF:
        return {true, false, -2};
      case 0xC1: return {true, true, 1};
      case 0xC6: return {true, true, 1};
      case 0xC7: return {true, true, -1};
      case 0xD1: case 0xD3: return {true, true, 0};
      case 0xDD: case 0xDE: return {true, true, 0};
      case 0xE8: case 0xE9: return {true, false, 4};
      case 0xEB: return {true, false, 1};
      case 0xF6: case 0xF7: return {true, true, -3};
      case 0xFF: return {true, true, 0};
      default: return {};
    }
}

OpcodeShape
secondaryShape(U8 op)
{
    if (op >= 0x40 && op <= 0x4F)   // cmovcc
        return {true, true, 0};
    if (op >= 0x80 && op <= 0x8F)   // jcc rel32
        return {true, false, 4};
    if (op >= 0x90 && op <= 0x9F)   // setcc
        return {true, true, 0};
    if (op >= 0xC8 && op <= 0xCF)   // bswap
        return {true, false, 0};
    switch (op) {
      case 0x05: case 0x07: case 0x0B: case 0x31: case 0x34:
      case 0x37: case 0xA2:
        return {true, false, 0};
      case 0x10: case 0x11: case 0x2A: case 0x2C: case 0x2F:
      case 0x51: case 0x58: case 0x59: case 0x5C: case 0x5E:
      case 0x6E: case 0x7E:
      case 0xAE: case 0xAF:
      case 0xB0: case 0xB1: case 0xB6: case 0xB7:
      case 0xBC: case 0xBD: case 0xBE: case 0xBF:
      case 0xC0: case 0xC1:
        return {true, true, 0};
      default: return {};
    }
}

}  // namespace

X86Insn
decodeX86(const U8 *bytes, size_t avail, U64 rip)
{
    X86Insn insn;
    insn.rip = rip;
    size_t pos = 0;
    auto need = [&](size_t n) { return pos + n <= avail
                                       && pos + n <= MAX_X86_INSN_BYTES; };

    // Legacy prefixes (any order, each at most once in practice).
    while (need(1)) {
        U8 b = bytes[pos];
        if (b == 0x66) insn.prefix_66 = true;
        else if (b == 0xF2) insn.prefix_f2 = true;
        else if (b == 0xF3) insn.prefix_f3 = true;
        else if (b == 0xF0) insn.prefix_lock = true;
        else break;
        pos++;
    }

    // REX.
    if (need(1) && (bytes[pos] & 0xF0) == 0x40) {
        U8 rex = bytes[pos++];
        insn.has_rex = true;
        insn.rex_w = rex & 8;
        insn.rex_r = rex & 4;
        insn.rex_x = rex & 2;
        insn.rex_b = rex & 1;
    }

    if (!need(1))
        return insn;
    U8 op = bytes[pos++];
    OpcodeShape shape;
    if (op == 0x0F) {
        if (!need(1))
            return insn;
        insn.is_0f = true;
        op = bytes[pos++];
        shape = secondaryShape(op);
    } else {
        shape = primaryShape(op);
    }
    insn.opcode = op;
    if (!shape.known) {
        // Undecodable: report a 1-opcode-byte instruction; the
        // translator will raise #UD at the right RIP.
        insn.length = (U8)pos;
        return insn;
    }

    if (shape.modrm) {
        if (!need(1))
            return insn;
        insn.has_modrm = true;
        insn.modrm = bytes[pos++];
        U8 mod = insn.modrm >> 6;
        U8 rm = insn.modrm & 7;
        if (mod != 3) {
            if (rm == 4) {
                if (!need(1))
                    return insn;
                insn.has_sib = true;
                insn.sib = bytes[pos++];
                if (mod == 0 && (insn.sib & 7) == 5) {
                    insn.length = (U8)pos;  // undecodable, not truncated
                    return insn;            // no-base disp32: unsupported
                }
            }
            if (mod == 0 && rm == 5) {
                insn.length = (U8)pos;
                return insn;      // RIP-relative: unsupported
            }
            int disp_bytes = (mod == 1) ? 1 : (mod == 2) ? 4 : 0;
            if (disp_bytes) {
                if (!need((size_t)disp_bytes))
                    return insn;
                U64 raw = 0;
                for (int i = 0; i < disp_bytes; i++)
                    raw |= (U64)bytes[pos + i] << (i * 8);
                insn.disp = (S64)signExtend(raw, (unsigned)disp_bytes);
                pos += (size_t)disp_bytes;
            }
        }
    }

    int imm_bytes = shape.imm;
    if (imm_bytes == -1) {
        imm_bytes = insn.prefix_66 ? 2 : 4;
    } else if (imm_bytes == -2) {
        imm_bytes = insn.rex_w ? 8 : (insn.prefix_66 ? 2 : 4);
    } else if (imm_bytes == -3) {
        // Group 3 (F6/F7): only /0 (test) carries an immediate.
        int ext = (insn.modrm >> 3) & 7;
        if (ext == 0)
            imm_bytes = (op == 0xF6) ? 1 : (insn.prefix_66 ? 2 : 4);
        else
            imm_bytes = 0;
    }
    if (imm_bytes) {
        if (!need((size_t)imm_bytes))
            return insn;
        U64 raw = 0;
        for (int i = 0; i < imm_bytes; i++)
            raw |= (U64)bytes[pos + i] << (i * 8);
        insn.imm = (imm_bytes == 8) ? raw
                                    : signExtend(raw, (unsigned)imm_bytes);
        insn.imm_bytes = (U8)imm_bytes;
        pos += (size_t)imm_bytes;
    }

    insn.length = (U8)pos;
    insn.valid = true;
    return insn;
}

std::string
X86Insn::toString() const
{
    std::ostringstream out;
    out << std::hex << "rip=" << rip << (is_0f ? " 0f" : "") << " op="
        << (int)opcode << " len=" << std::dec << (int)length;
    if (has_modrm)
        out << " modrm=" << std::hex << (int)modrm;
    if (has_sib)
        out << " sib=" << std::hex << (int)sib;
    if (disp)
        out << " disp=" << std::dec << disp;
    if (imm_bytes)
        out << " imm=" << std::hex << imm;
    if (!valid)
        out << " INVALID";
    return out.str();
}

}  // namespace ptl
