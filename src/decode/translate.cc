#include "decode/translate.h"

#include "lib/logging.h"

namespace ptl {

namespace {

constexpr UopOp kAluOps[8] = {
    UopOp::Add, UopOp::Or, UopOp::Adc, UopOp::Sbb,
    UopOp::And, UopOp::Sub, UopOp::Xor, UopOp::Sub /* cmp */,
};

}  // namespace

BbEnd
translateOne(const X86Insn &insn, std::vector<Uop> &out)
{
    Translator t(out);
    return t.translate(insn);
}

Uop &
Translator::emit(const Uop &u)
{
    out->push_back(u);
    return out->back();
}

Uop
Translator::makeUop(UopOp op, unsigned size) const
{
    Uop u;
    u.op = op;
    u.size = (U8)size;
    return u;
}

int
Translator::temp()
{
    ptl_assert(next_temp < 8);
    return REG_temp0 + next_temp++;
}

void
Translator::beginInsn(const X86Insn &insn)
{
    cur = &insn;
    insn_start = out->size();
    next_temp = 0;
}

void
Translator::endInsn()
{
    // Degenerate encodings (e.g. "lea rax, [rax]") translate to no
    // work at all; an instruction still needs a committable uop.
    if (out->size() == insn_start)
        emit(makeUop(UopOp::Nop, 8));
    (*out)[insn_start].som = true;
    out->back().eom = true;
    for (size_t i = insn_start; i < out->size(); i++) {
        (*out)[i].rip = cur->rip;
        (*out)[i].ripseq = cur->nextRip();
    }
}

U8
Translator::condNeeds(CondCode cc)
{
    return condFlagGroups(cc);
}

int
Translator::flagSource(U8 groups)
{
    int first = REG_none;
    bool uniform = true;
    if (groups & SETFLAG_ZAPS)
        first = zaps_src;
    if (groups & SETFLAG_CF) {
        if (first == REG_none)
            first = cf_src;
        else if (cf_src != first)
            uniform = false;
    }
    if (groups & SETFLAG_OF) {
        if (first == REG_none)
            first = of_src;
        else if (of_src != first)
            uniform = false;
    }
    if (uniform)
        return first;
    // Flag groups live in different producers: merge with collcc.
    int t = temp();
    Uop u = makeUop(UopOp::CollCC, 8);
    u.rd = (U8)t;
    u.ra = (U8)zaps_src;
    u.rb = (U8)cf_src;
    u.rc = (U8)of_src;
    u.setflags = SETFLAG_ALL;
    emit(u);
    setFlagProducer(SETFLAG_ALL, t);
    return t;
}

void
Translator::setFlagProducer(U8 groups, int reg)
{
    if (groups & SETFLAG_ZAPS)
        zaps_src = reg;
    if (groups & SETFLAG_CF)
        cf_src = reg;
    if (groups & SETFLAG_OF)
        of_src = reg;
}

Translator::MemRef
Translator::memRef(const X86Insn &insn) const
{
    MemRef m;
    m.disp = insn.disp;
    if (insn.has_sib) {
        m.base = insn.sibBase();
        int idx = insn.sibIndex();
        if (idx != 4) {  // index 100b = none
            m.index = idx;
            m.scale_log = (U8)log2Exact((U64)insn.sibScale());
        }
    } else {
        m.base = insn.rm();
    }
    return m;
}

Uop &
Translator::emitLoad(const MemRef &m, int rd, unsigned size, bool sign,
                     bool locked)
{
    Uop u = makeUop(sign ? UopOp::Lds : UopOp::Ld, size);
    u.rd = (U8)rd;
    u.ra = (U8)m.base;
    if (m.index != REG_none) {
        u.rb = (U8)m.index;
        u.scale = m.scale_log;
    } else {
        u.rb = REG_zero;
    }
    u.imm = m.disp;
    u.locked = locked;
    u.unaligned = true;
    return emit(u);
}

Uop &
Translator::emitStore(const MemRef &m, int rc, unsigned size, bool locked)
{
    Uop u = makeUop(UopOp::St, size);
    u.ra = (U8)m.base;
    if (m.index != REG_none) {
        u.rb = (U8)m.index;
        u.scale = m.scale_log;
    } else {
        u.rb = REG_zero;
    }
    u.rc = (U8)rc;
    u.imm = m.disp;
    u.locked = locked;
    u.unaligned = true;
    return emit(u);
}

void
Translator::emitLea(const MemRef &m, int rd)
{
    // rd = base + (index << scale) + disp, no flags.
    int acc = m.base;
    if (m.index != REG_none) {
        int t = temp();
        Uop sh = makeUop(UopOp::Shl, 8);
        sh.rd = (U8)t;
        sh.ra = (U8)m.index;
        sh.rb_imm = true;
        sh.imm = m.scale_log;
        sh.rf = REG_none;
        emit(sh);
        int t2 = (m.disp == 0) ? rd : temp();
        Uop add = makeUop(UopOp::Add, 8);
        add.rd = (U8)t2;
        add.ra = (U8)acc;
        add.rb = (U8)t;
        emit(add);
        acc = t2;
    }
    if (m.disp != 0 || acc != rd) {
        Uop u = makeUop(m.disp ? UopOp::Add : UopOp::Mov, 8);
        u.rd = (U8)rd;
        if (m.disp) {
            u.ra = (U8)acc;
            u.rb_imm = true;
            u.imm = m.disp;
        } else {
            u.rb = (U8)acc;
        }
        emit(u);
    }
}

void
Translator::writeGpr(int reg, int src, unsigned size)
{
    if (size >= 4) {
        Uop u = makeUop(UopOp::Mov, size == 4 ? 4 : 8);
        u.rd = (U8)reg;
        u.rb = (U8)src;
        emit(u);
    } else {
        Uop u = makeUop(UopOp::MergeLo, size);
        u.rd = (U8)reg;
        u.ra = (U8)reg;
        u.rb = (U8)src;
        emit(u);
    }
}

void
Translator::emitAssist(AssistId id)
{
    Uop u = makeUop(UopOp::Assist, 8);
    u.rd = REG_none;
    u.imm = (S64)(U16)id;
    u.imm2 = (S64)cur->nextRip();
    emit(u);
}

void
Translator::emitInvalid()
{
    emitAssist(AssistId::InvalidOpcode);
}

// ---------------------------------------------------------------------
// Instruction families
// ---------------------------------------------------------------------

BbEnd
Translator::doAluBlock(const X86Insn &d)
{
    int aluidx = (d.opcode >> 3) & 7;
    UopOp op = kAluOps[aluidx];
    bool is_cmp = (aluidx == 7);
    bool byteop = !(d.opcode & 1);
    bool rm_is_dest = !(d.opcode & 2);
    unsigned size = byteop ? 1 : d.opSize();
    bool needs_cf_in = (op == UopOp::Adc || op == UopOp::Sbb);
    int rf = needs_cf_in ? flagSource(SETFLAG_CF) : REG_none;
    bool locked = d.prefix_lock && d.rmIsMem();

    auto alu = [&](int rd, int ra, int rb) {
        Uop u = makeUop(op, size);
        u.rd = (U8)rd;
        u.ra = (U8)ra;
        u.rb = (U8)rb;
        u.rf = (U8)rf;
        u.setflags = SETFLAG_ALL;
        u.locked = locked;
        emit(u);
        setFlagProducer(SETFLAG_ALL, rd);
    };

    if (d.rmIsMem()) {
        MemRef m = memRef(d);
        if (rm_is_dest) {
            int t0 = temp(), t1 = temp();
            emitLoad(m, t0, size, false, locked);
            alu(t1, t0, d.reg());
            if (!is_cmp)
                emitStore(m, t1, size, locked);
        } else {
            int t0 = temp();
            emitLoad(m, t0, size, false);
            if (is_cmp || size < 4) {
                int t1 = temp();
                alu(t1, d.reg(), t0);
                if (!is_cmp)
                    writeGpr(d.reg(), t1, size);
            } else {
                alu(d.reg(), d.reg(), t0);
            }
        }
    } else {
        int dest = rm_is_dest ? d.rm() : d.reg();
        int src = rm_is_dest ? d.reg() : d.rm();
        if (is_cmp || size < 4) {
            int t1 = temp();
            alu(t1, dest, src);
            if (!is_cmp)
                writeGpr(dest, t1, size);
        } else {
            alu(dest, dest, src);
        }
    }
    return BbEnd::None;
}

BbEnd
Translator::doGroup1(const X86Insn &d)
{
    int aluidx = (d.modrm >> 3) & 7;
    UopOp op = kAluOps[aluidx];
    bool is_cmp = (aluidx == 7);
    unsigned size = (d.opcode == 0x80) ? 1 : d.opSize();
    bool needs_cf_in = (op == UopOp::Adc || op == UopOp::Sbb);
    int rf = needs_cf_in ? flagSource(SETFLAG_CF) : REG_none;
    bool locked = d.prefix_lock && d.rmIsMem();

    auto alu = [&](int rd, int ra) {
        Uop u = makeUop(op, size);
        u.rd = (U8)rd;
        u.ra = (U8)ra;
        u.rb_imm = true;
        u.imm = (S64)d.imm;
        u.rf = (U8)rf;
        u.setflags = SETFLAG_ALL;
        u.locked = locked;
        emit(u);
        setFlagProducer(SETFLAG_ALL, rd);
    };

    if (d.rmIsMem()) {
        MemRef m = memRef(d);
        int t0 = temp(), t1 = temp();
        emitLoad(m, t0, size, false, locked);
        alu(t1, t0);
        if (!is_cmp)
            emitStore(m, t1, size, locked);
    } else {
        int reg = d.rm();
        if (is_cmp || size < 4) {
            int t1 = temp();
            alu(t1, reg);
            if (!is_cmp)
                writeGpr(reg, t1, size);
        } else {
            alu(reg, reg);
        }
    }
    return BbEnd::None;
}

BbEnd
Translator::doGroup2Shift(const X86Insn &d, int count_kind)
{
    int ext = (d.modrm >> 3) & 7;
    UopOp op;
    U8 setf;
    switch (ext) {
      case 0: op = UopOp::Rol; setf = SETFLAG_CF | SETFLAG_OF; break;
      case 1: op = UopOp::Ror; setf = SETFLAG_CF | SETFLAG_OF; break;
      case 4: op = UopOp::Shl; setf = SETFLAG_ALL; break;
      case 5: op = UopOp::Shr; setf = SETFLAG_ALL; break;
      case 7: op = UopOp::Sar; setf = SETFLAG_ALL; break;
      default:
        emitInvalid();
        return BbEnd::Assist;
    }
    unsigned size = d.opSize();

    U64 imm_count = (count_kind == 1) ? 1 : (d.imm & 63);
    if (count_kind != 2 && imm_count == 0) {
        emit(makeUop(UopOp::Nop, 8));  // shift by 0: architectural nop
        return BbEnd::None;
    }
    // Variable counts may be zero, which passes flags through; collect
    // the full current flag state as the pass-through source.
    int rf = (count_kind == 2) ? flagSource(SETFLAG_ALL) : REG_none;

    auto shift = [&](int rd, int ra) {
        Uop u = makeUop(op, size);
        u.rd = (U8)rd;
        u.ra = (U8)ra;
        if (count_kind == 2) {
            u.rb = REG_rcx;
        } else {
            u.rb_imm = true;
            u.imm = (S64)imm_count;
        }
        u.rf = (U8)rf;
        u.setflags = setf;
        emit(u);
        setFlagProducer(setf, rd);
    };

    if (d.rmIsMem()) {
        MemRef m = memRef(d);
        int t0 = temp(), t1 = temp();
        emitLoad(m, t0, size, false);
        shift(t1, t0);
        emitStore(m, t1, size);
    } else {
        int reg = d.rm();
        if (size < 4) {
            int t1 = temp();
            shift(t1, reg);
            writeGpr(reg, t1, size);
        } else {
            shift(reg, reg);
        }
    }
    return BbEnd::None;
}

BbEnd
Translator::doGroup3(const X86Insn &d)
{
    int ext = (d.modrm >> 3) & 7;
    unsigned size = (d.opcode == 0xF6) ? 1 : d.opSize();
    if (d.opcode == 0xF6 && ext >= 4) {
        emitInvalid();  // 8-bit mul/div (AH results) unsupported
        return BbEnd::Assist;
    }

    // Fetch the rm operand into a register.
    int src;
    MemRef m;
    bool mem = d.rmIsMem();
    if (mem) {
        m = memRef(d);
        src = temp();
        emitLoad(m, src, size, false);
    } else {
        src = d.rm();
    }

    switch (ext) {
      case 0: {  // test rm, imm
        Uop u = makeUop(UopOp::And, size);
        int t = temp();
        u.rd = (U8)t;
        u.ra = (U8)src;
        u.rb_imm = true;
        u.imm = (S64)d.imm;
        u.setflags = SETFLAG_ALL;
        emit(u);
        setFlagProducer(SETFLAG_ALL, t);
        return BbEnd::None;
      }
      case 2: {  // not (no flags)
        int t = temp();
        Uop u = makeUop(UopOp::Nand, size);
        u.rd = (U8)t;
        u.ra = (U8)src;
        u.rb = (U8)src;
        emit(u);
        if (mem)
            emitStore(m, t, size);
        else if (size < 4)
            writeGpr(src, t, size);
        else
            writeGpr(src, t, size);
        return BbEnd::None;
      }
      case 3: {  // neg
        int t = temp();
        Uop u = makeUop(UopOp::Sub, size);
        u.rd = (U8)t;
        u.ra = REG_zero;
        u.rb = (U8)src;
        u.setflags = SETFLAG_ALL;
        emit(u);
        setFlagProducer(SETFLAG_ALL, t);
        if (mem)
            emitStore(m, t, size);
        else
            writeGpr(src, t, size);
        return BbEnd::None;
      }
      case 4: case 5: {  // mul / imul: rdx:rax = rax * rm
        int thi = temp(), tlo = temp();
        Uop hi = makeUop(ext == 4 ? UopOp::Mulh : UopOp::Mulhs, size);
        hi.rd = (U8)thi;
        hi.ra = REG_rax;
        hi.rb = (U8)src;
        hi.setflags = SETFLAG_CF | SETFLAG_OF;
        emit(hi);
        setFlagProducer(SETFLAG_CF | SETFLAG_OF, thi);
        Uop lo = makeUop(UopOp::Mull, size);
        lo.rd = (U8)tlo;
        lo.ra = REG_rax;
        lo.rb = (U8)src;
        emit(lo);
        writeGpr(REG_rax, tlo, size);
        writeGpr(REG_rdx, thi, size);
        return BbEnd::None;
      }
      case 6: case 7: {  // div / idiv: rax, rdx = rdx:rax / rm
        bool sign = (ext == 7);
        int tq = temp(), tr = temp();
        Uop q = makeUop(sign ? UopOp::DivQs : UopOp::DivQ, size);
        q.rd = (U8)tq;
        q.ra = REG_rax;
        q.rb = (U8)src;
        q.rc = REG_rdx;
        emit(q);
        Uop r = makeUop(sign ? UopOp::DivRs : UopOp::DivR, size);
        r.rd = (U8)tr;
        r.ra = REG_rax;
        r.rb = (U8)src;
        r.rc = REG_rdx;
        emit(r);
        writeGpr(REG_rax, tq, size);
        writeGpr(REG_rdx, tr, size);
        return BbEnd::None;
      }
      default:
        emitInvalid();
        return BbEnd::Assist;
    }
}

BbEnd
Translator::doGroup5(const X86Insn &d)
{
    int ext = (d.modrm >> 3) & 7;
    unsigned size = d.opSize();
    switch (ext) {
      case 0: case 1: {  // inc / dec: CF is preserved
        U8 setf = SETFLAG_ZAPS | SETFLAG_OF;
        auto step = [&](int rd, int ra) {
            Uop u = makeUop(ext == 0 ? UopOp::Add : UopOp::Sub, size);
            u.rd = (U8)rd;
            u.ra = (U8)ra;
            u.rb_imm = true;
            u.imm = 1;
            u.setflags = setf;
            u.locked = d.prefix_lock && d.rmIsMem();
            emit(u);
            setFlagProducer(setf, rd);
        };
        if (d.rmIsMem()) {
            MemRef m = memRef(d);
            bool locked = d.prefix_lock;
            int t0 = temp(), t1 = temp();
            emitLoad(m, t0, size, false, locked);
            step(t1, t0);
            emitStore(m, t1, size, locked);
        } else if (size < 4) {
            int t1 = temp();
            step(t1, d.rm());
            writeGpr(d.rm(), t1, size);
        } else {
            step(d.rm(), d.rm());
        }
        return BbEnd::None;
      }
      case 2: case 4: {  // call rm / jmp rm
        int target;
        if (d.rmIsMem()) {
            target = temp();
            emitLoad(memRef(d), target, 8, false);
        } else {
            target = d.rm();
        }
        if (ext == 2) {
            int t = temp();
            Uop mv = makeUop(UopOp::Mov, 8);
            mv.rd = (U8)t;
            mv.rb_imm = true;
            mv.imm = (S64)d.nextRip();
            emit(mv);
            MemRef stk{REG_rsp, REG_none, 0, -8};
            emitStore(stk, t, 8);
            Uop dec = makeUop(UopOp::Add, 8);
            dec.rd = REG_rsp;
            dec.ra = REG_rsp;
            dec.rb_imm = true;
            dec.imm = -8;
            emit(dec);
        }
        Uop j = makeUop(UopOp::Jmp, 8);
        j.ra = (U8)target;
        j.imm2 = (S64)d.nextRip();
        j.hint_call = (ext == 2);
        emit(j);
        return (ext == 2) ? BbEnd::IndirectCall : BbEnd::IndirectBranch;
      }
      case 6: {  // push rm
        int src;
        if (d.rmIsMem()) {
            src = temp();
            emitLoad(memRef(d), src, 8, false);
        } else {
            src = d.rm();
        }
        MemRef stk{REG_rsp, REG_none, 0, -8};
        emitStore(stk, src, 8);
        Uop dec = makeUop(UopOp::Add, 8);
        dec.rd = REG_rsp;
        dec.ra = REG_rsp;
        dec.rb_imm = true;
        dec.imm = -8;
        emit(dec);
        return BbEnd::None;
      }
      default:
        emitInvalid();
        return BbEnd::Assist;
    }
}

BbEnd
Translator::doMov(const X86Insn &d)
{
    switch (d.opcode) {
      case 0x88: case 0x89: {  // mov rm, reg
        unsigned size = (d.opcode == 0x88) ? 1 : d.opSize();
        if (d.rmIsMem()) {
            emitStore(memRef(d), d.reg(), size);
        } else if (size < 4) {
            writeGpr(d.rm(), d.reg(), size);
        } else {
            Uop u = makeUop(UopOp::Mov, size);
            u.rd = (U8)d.rm();
            u.rb = (U8)d.reg();
            emit(u);
        }
        return BbEnd::None;
      }
      case 0x8A: case 0x8B: {  // mov reg, rm
        unsigned size = (d.opcode == 0x8A) ? 1 : d.opSize();
        if (d.rmIsMem()) {
            if (size < 4) {
                int t = temp();
                emitLoad(memRef(d), t, size, false);
                writeGpr(d.reg(), t, size);
            } else {
                emitLoad(memRef(d), d.reg(), size, false);
            }
        } else if (size < 4) {
            writeGpr(d.reg(), d.rm(), size);
        } else {
            Uop u = makeUop(UopOp::Mov, size);
            u.rd = (U8)d.reg();
            u.rb = (U8)d.rm();
            emit(u);
        }
        return BbEnd::None;
      }
      case 0xC6: case 0xC7: {  // mov rm, imm
        unsigned size = (d.opcode == 0xC6) ? 1 : d.opSize();
        int t = temp();
        Uop mv = makeUop(UopOp::Mov, 8);
        mv.rd = (U8)t;
        mv.rb_imm = true;
        mv.imm = (S64)d.imm;
        emit(mv);
        if (d.rmIsMem())
            emitStore(memRef(d), t, size);
        else
            writeGpr(d.rm(), t, size);
        return BbEnd::None;
      }
      default: {  // B8+r mov reg, imm
        int reg = (d.opcode & 7) | (d.rex_b ? 8 : 0);
        unsigned size = d.rex_w ? 8 : (d.prefix_66 ? 2 : 4);
        if (size < 4) {
            int t = temp();
            Uop mv = makeUop(UopOp::Mov, 8);
            mv.rd = (U8)t;
            mv.rb_imm = true;
            mv.imm = (S64)d.imm;
            emit(mv);
            writeGpr(reg, t, size);
        } else {
            Uop mv = makeUop(UopOp::Mov, size);
            mv.rd = (U8)reg;
            mv.rb_imm = true;
            mv.imm = (S64)d.imm;
            emit(mv);
        }
        return BbEnd::None;
      }
    }
}

BbEnd
Translator::doStringOp(const X86Insn &d)
{
    bool rep = d.prefix_f3;
    if (d.opcode == 0xAC) {  // lodsb (no rep support needed)
        int t = temp();
        MemRef src{REG_rsi, REG_none, 0, 0};
        emitLoad(src, t, 1, false);
        writeGpr(REG_rax, t, 1);
        Uop inc = makeUop(UopOp::Add, 8);
        inc.rd = REG_rsi;
        inc.ra = REG_rsi;
        inc.rb_imm = true;
        inc.imm = 1;
        emit(inc);
        return BbEnd::None;
    }

    auto emitBody = [&]() {
        if (d.opcode == 0xA4) {  // movsb
            int t = temp();
            MemRef src{REG_rsi, REG_none, 0, 0};
            MemRef dst{REG_rdi, REG_none, 0, 0};
            emitLoad(src, t, 1, false);
            emitStore(dst, t, 1);
            for (int reg : {REG_rsi, REG_rdi}) {
                Uop inc = makeUop(UopOp::Add, 8);
                inc.rd = (U8)reg;
                inc.ra = (U8)reg;
                inc.rb_imm = true;
                inc.imm = 1;
                emit(inc);
            }
        } else {  // stosb
            MemRef dst{REG_rdi, REG_none, 0, 0};
            emitStore(dst, REG_rax, 1);
            Uop inc = makeUop(UopOp::Add, 8);
            inc.rd = REG_rdi;
            inc.ra = REG_rdi;
            inc.rb_imm = true;
            inc.imm = 1;
            emit(inc);
        }
    };

    if (!rep) {
        emitBody();
        return BbEnd::None;
    }

    // rep: translated as a self-looping block of two pseudo-ops (the
    // rcx==0 exit check, then one iteration + loop-back), making each
    // iteration independently committable and interruptible.
    int t7 = REG_temp7;
    Uop tst = makeUop(UopOp::And, 8);
    tst.rd = (U8)t7;
    tst.ra = REG_rcx;
    tst.rb = REG_rcx;
    tst.setflags = SETFLAG_ZAPS;
    emit(tst);
    setFlagProducer(SETFLAG_ZAPS, t7);
    Uop br = makeUop(UopOp::BrCC, 8);
    br.cond = COND_e;
    br.rf = (U8)t7;
    br.imm = (S64)d.nextRip();   // exit when rcx == 0
    br.imm2 = (S64)d.rip;        // fall through into the iteration
    emit(br);
    endInsn();                   // pseudo-op 1 complete

    beginInsn(d);
    emitBody();
    Uop dec = makeUop(UopOp::Add, 8);
    dec.rd = REG_rcx;
    dec.ra = REG_rcx;
    dec.rb_imm = true;
    dec.imm = -1;
    emit(dec);
    Uop loop = makeUop(UopOp::Bru, 8);
    loop.imm = (S64)d.rip;       // re-enter this same instruction
    loop.imm2 = (S64)d.nextRip();
    emit(loop);
    return BbEnd::UncondBranch;
}

BbEnd
Translator::doX87(const X86Insn &d)
{
    if (d.opcode == 0xDD && d.rmIsMem()) {
        int ext = (d.modrm >> 3) & 7;
        if (ext == 0 || ext == 3) {
            // Address into temp0 (the x87 microcode convention), then
            // the assist performs the slow stack operation.
            emitLea(memRef(d), REG_temp0);
            emitAssist(ext == 0 ? AssistId::X87Fld : AssistId::X87Fstp);
            return BbEnd::Assist;
        }
    }
    if (d.opcode == 0xDE && !d.rmIsMem()) {
        if (d.modrm == 0xC1) {
            emitAssist(AssistId::X87Fadd);
            return BbEnd::Assist;
        }
        if (d.modrm == 0xC9) {
            emitAssist(AssistId::X87Fmul);
            return BbEnd::Assist;
        }
    }
    emitInvalid();
    return BbEnd::Assist;
}

BbEnd
Translator::doTwoByte(const X86Insn &d)
{
    U8 op = d.opcode;

    // jcc rel32
    if (op >= 0x80 && op <= 0x8F) {
        CondCode cc = (CondCode)(op - 0x80);
        Uop u = makeUop(UopOp::BrCC, 8);
        u.cond = cc;
        u.rf = (U8)flagSource(condNeeds(cc));
        u.imm = (S64)(d.nextRip() + (U64)(S64)d.imm);
        u.imm2 = (S64)d.nextRip();
        emit(u);
        return BbEnd::CondBranch;
    }
    // cmovcc
    if (op >= 0x40 && op <= 0x4F) {
        CondCode cc = (CondCode)(op - 0x40);
        unsigned size = d.opSize();
        int src;
        if (d.rmIsMem()) {
            src = temp();
            emitLoad(memRef(d), src, size, false);
        } else {
            src = d.rm();
        }
        Uop u = makeUop(UopOp::Sel, size);
        u.cond = cc;
        u.rf = (U8)flagSource(condNeeds(cc));
        u.rd = (U8)d.reg();
        u.ra = (U8)d.reg();
        u.rb = (U8)src;
        emit(u);
        return BbEnd::None;
    }
    // setcc rm8
    if (op >= 0x90 && op <= 0x9F) {
        CondCode cc = (CondCode)(op - 0x90);
        int t = temp();
        Uop u = makeUop(UopOp::Set, 8);
        u.cond = cc;
        u.rf = (U8)flagSource(condNeeds(cc));
        u.rd = (U8)t;
        emit(u);
        if (d.rmIsMem())
            emitStore(memRef(d), t, 1);
        else
            writeGpr(d.rm(), t, 1);
        return BbEnd::None;
    }
    // bswap
    if (op >= 0xC8) {
        int reg = (op & 7) | (d.rex_b ? 8 : 0);
        Uop u = makeUop(UopOp::Bswap, d.rex_w ? 8 : 4);
        u.rd = (U8)reg;
        u.ra = (U8)reg;
        emit(u);
        return BbEnd::None;
    }

    switch (op) {
      case 0x05: emitAssist(AssistId::Syscall); return BbEnd::Assist;
      case 0x07: emitAssist(AssistId::Sysret); return BbEnd::Assist;
      case 0x0B: emitInvalid(); return BbEnd::Assist;
      case 0x31: emitAssist(AssistId::Rdtsc); return BbEnd::Assist;
      case 0x34: emitAssist(AssistId::Hypercall); return BbEnd::Assist;
      case 0x37: emitAssist(AssistId::Ptlcall); return BbEnd::Assist;
      case 0xA2: emitAssist(AssistId::Cpuid); return BbEnd::Assist;

      case 0x10: case 0x11: {  // movsd xmm,m / m,xmm (F2 required)
        if (!d.prefix_f2) {
            emitInvalid();
            return BbEnd::Assist;
        }
        int xreg = REG_xmm0 + d.reg();
        if (d.rmIsMem()) {
            if (op == 0x10) {
                emitLoad(memRef(d), xreg, 8, false);
            } else {
                emitStore(memRef(d), xreg, 8);
            }
        } else {
            Uop u = makeUop(UopOp::Mov, 8);
            int xrm = REG_xmm0 + d.rm();
            u.rd = (U8)((op == 0x10) ? xreg : xrm);
            u.rb = (U8)((op == 0x10) ? xrm : xreg);
            emit(u);
        }
        return BbEnd::None;
      }
      case 0x2A: {  // cvtsi2sd xmm, r
        if (!d.prefix_f2 || d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        int src = d.rm();
        if (!d.rex_w) {
            int t = temp();
            Uop sx = makeUop(UopOp::Sext, 4);
            sx.rd = (U8)t;
            sx.rb = (U8)src;
            emit(sx);
            src = t;
        }
        Uop u = makeUop(UopOp::Cvtif, 8);
        u.rd = (U8)(REG_xmm0 + d.reg());
        u.ra = (U8)src;
        emit(u);
        return BbEnd::None;
      }
      case 0x2C: {  // cvttsd2si r, xmm
        if (!d.prefix_f2 || d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        Uop u = makeUop(UopOp::Cvtfi, d.rex_w ? 8 : 4);
        u.rd = (U8)d.reg();
        u.ra = (U8)(REG_xmm0 + d.rm());
        emit(u);
        return BbEnd::None;
      }
      case 0x2F: {  // comisd xmm, xmm (66 required)
        if (!d.prefix_66 || d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        int t = temp();
        Uop u = makeUop(UopOp::Cmpf, 8);
        u.rd = (U8)t;
        u.ra = (U8)(REG_xmm0 + d.reg());
        u.rb = (U8)(REG_xmm0 + d.rm());
        u.setflags = SETFLAG_ALL;  // comisd zeroes OF/SF/AF
        emit(u);
        setFlagProducer(SETFLAG_ALL, t);
        return BbEnd::None;
      }
      case 0x51: case 0x58: case 0x59: case 0x5C: case 0x5E: {
        if (!d.prefix_f2) {
            emitInvalid();
            return BbEnd::Assist;
        }
        int src;
        if (d.rmIsMem()) {
            src = temp();
            emitLoad(memRef(d), src, 8, false);
        } else {
            src = REG_xmm0 + d.rm();
        }
        UopOp fop;
        switch (op) {
          case 0x51: fop = UopOp::Sqrtf; break;
          case 0x58: fop = UopOp::Addf; break;
          case 0x59: fop = UopOp::Mulf; break;
          case 0x5C: fop = UopOp::Subf; break;
          default: fop = UopOp::Divf; break;
        }
        Uop u = makeUop(fop, 8);
        int xd = REG_xmm0 + d.reg();
        u.rd = (U8)xd;
        u.ra = (U8)((op == 0x51) ? src : xd);
        u.rb = (U8)src;
        emit(u);
        return BbEnd::None;
      }
      case 0x6E: case 0x7E: {  // movq xmm,r64 / r64,xmm (66 + W)
        if (!d.prefix_66 || d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        Uop u = makeUop(UopOp::Mov, 8);
        if (op == 0x6E) {
            u.rd = (U8)(REG_xmm0 + d.reg());
            u.rb = (U8)d.rm();
        } else {
            u.rd = (U8)d.rm();
            u.rb = (U8)(REG_xmm0 + d.reg());
        }
        emit(u);
        return BbEnd::None;
      }
      case 0xAE: {  // fences (register forms of group 15)
        if (d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        Uop u = makeUop(UopOp::Fence, 8);
        switch (d.modrm) {
          case 0xE8: u.imm = 1; break;  // lfence
          case 0xF8: u.imm = 2; break;  // sfence
          case 0xF0: u.imm = 3; break;  // mfence
          default:
            emitInvalid();
            return BbEnd::Assist;
        }
        emit(u);
        return BbEnd::None;
      }
      case 0xAF: {  // imul r, rm
        unsigned size = d.opSize();
        int src;
        if (d.rmIsMem()) {
            src = temp();
            emitLoad(memRef(d), src, size, false);
        } else {
            src = d.rm();
        }
        Uop u = makeUop(UopOp::Mull, size);
        u.rd = (U8)d.reg();
        u.ra = (U8)d.reg();
        u.rb = (U8)src;
        u.setflags = SETFLAG_ALL;
        emit(u);
        setFlagProducer(SETFLAG_ALL, d.reg());
        return BbEnd::None;
      }
      case 0xB1: {  // cmpxchg rm, reg (memory form; LOCK honored)
        if (!d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        unsigned size = d.opSize();
        MemRef m = memRef(d);
        int t0 = temp(), t1 = temp(), t2 = temp(), t3 = temp();
        emitLoad(m, t0, size, false, true);
        Uop cmp = makeUop(UopOp::Sub, size);
        cmp.rd = (U8)t1;
        cmp.ra = REG_rax;
        cmp.rb = (U8)t0;
        cmp.setflags = SETFLAG_ALL;
        emit(cmp);
        setFlagProducer(SETFLAG_ALL, t1);
        Uop selst = makeUop(UopOp::Sel, size);
        selst.cond = COND_e;
        selst.rf = (U8)t1;
        selst.rd = (U8)t2;
        selst.ra = (U8)t0;
        selst.rb = (U8)d.reg();
        emit(selst);
        emitStore(m, t2, size, true);
        Uop selax = makeUop(UopOp::Sel, size);
        selax.cond = COND_e;
        selax.rf = (U8)t1;
        selax.rd = (U8)t3;
        selax.ra = (U8)t0;
        selax.rb = REG_rax;
        emit(selax);
        writeGpr(REG_rax, t3, size);
        return BbEnd::None;
      }
      case 0xC1: {  // xadd rm, reg
        if (!d.rmIsMem()) {
            emitInvalid();
            return BbEnd::Assist;
        }
        unsigned size = d.opSize();
        MemRef m = memRef(d);
        int t0 = temp(), t1 = temp();
        emitLoad(m, t0, size, false, true);
        Uop add = makeUop(UopOp::Add, size);
        add.rd = (U8)t1;
        add.ra = (U8)t0;
        add.rb = (U8)d.reg();
        add.setflags = SETFLAG_ALL;
        add.locked = true;
        emit(add);
        setFlagProducer(SETFLAG_ALL, t1);
        emitStore(m, t1, size, true);
        writeGpr(d.reg(), t0, size);
        return BbEnd::None;
      }
      case 0xB6: case 0xB7: {  // movzx
        unsigned src_size = (op == 0xB6) ? 1 : 2;
        if (d.rmIsMem()) {
            emitLoad(memRef(d), d.reg(), src_size, false);
        } else {
            Uop u = makeUop(UopOp::Mov, src_size);
            u.rd = (U8)d.reg();
            u.rb = (U8)d.rm();
            emit(u);
        }
        return BbEnd::None;
      }
      case 0xBE: case 0xBF: {  // movsx
        unsigned src_size = (op == 0xBE) ? 1 : 2;
        int dst = d.reg();
        int t = d.rex_w ? dst : temp();
        if (d.rmIsMem()) {
            emitLoad(memRef(d), t, src_size, true);
        } else {
            Uop u = makeUop(UopOp::Sext, src_size);
            u.rd = (U8)t;
            u.rb = (U8)d.rm();
            emit(u);
        }
        if (!d.rex_w) {
            Uop tr = makeUop(UopOp::Mov, 4);
            tr.rd = (U8)dst;
            tr.rb = (U8)t;
            emit(tr);
        }
        return BbEnd::None;
      }
      case 0xBC: case 0xBD: {  // bsf / bsr
        unsigned size = d.opSize();
        int src;
        if (d.rmIsMem()) {
            src = temp();
            emitLoad(memRef(d), src, size, false);
        } else {
            src = d.rm();
        }
        Uop u = makeUop(op == 0xBC ? UopOp::Bsf : UopOp::Bsr, size);
        u.rd = (U8)d.reg();
        u.ra = (U8)src;
        u.setflags = SETFLAG_ZAPS;
        emit(u);
        setFlagProducer(SETFLAG_ZAPS, d.reg());
        return BbEnd::None;
      }
      default:
        emitInvalid();
        return BbEnd::Assist;
    }
}

BbEnd
Translator::translate(const X86Insn &d)
{
    beginInsn(d);
    BbEnd end = BbEnd::None;

    if (!d.valid) {
        emitInvalid();
        end = BbEnd::Assist;
        endInsn();
        return end;
    }

    if (d.is_0f) {
        end = doTwoByte(d);
        endInsn();
        return end;
    }

    U8 op = d.opcode;
    if (op <= 0x3F) {
        end = doAluBlock(d);
    } else if (op >= 0x50 && op <= 0x57) {  // push reg
        int reg = (op & 7) | (d.rex_b ? 8 : 0);
        MemRef stk{REG_rsp, REG_none, 0, -8};
        emitStore(stk, reg, 8);
        Uop dec = makeUop(UopOp::Add, 8);
        dec.rd = REG_rsp;
        dec.ra = REG_rsp;
        dec.rb_imm = true;
        dec.imm = -8;
        emit(dec);
    } else if (op >= 0x58 && op <= 0x5F) {  // pop reg
        int reg = (op & 7) | (d.rex_b ? 8 : 0);
        int t = temp();
        MemRef stk{REG_rsp, REG_none, 0, 0};
        emitLoad(stk, t, 8, false);
        Uop inc = makeUop(UopOp::Add, 8);
        inc.rd = REG_rsp;
        inc.ra = REG_rsp;
        inc.rb_imm = true;
        inc.imm = 8;
        emit(inc);
        Uop mv = makeUop(UopOp::Mov, 8);
        mv.rd = (U8)reg;
        mv.rb = (U8)t;
        emit(mv);
    } else {
        switch (op) {
          case 0x63: {  // movsxd
            if (d.rmIsMem()) {
                emitLoad(memRef(d), d.reg(), 4, true);
            } else {
                Uop u = makeUop(UopOp::Sext, 4);
                u.rd = (U8)d.reg();
                u.rb = (U8)d.rm();
                emit(u);
            }
            break;
          }
          case 0x69: case 0x6B: {  // imul r, rm, imm
            unsigned size = d.opSize();
            int src;
            if (d.rmIsMem()) {
                src = temp();
                emitLoad(memRef(d), src, size, false);
            } else {
                src = d.rm();
            }
            Uop u = makeUop(UopOp::Mull, size);
            u.rd = (U8)d.reg();
            u.ra = (U8)src;
            u.rb_imm = true;
            u.imm = (S64)d.imm;
            u.setflags = SETFLAG_ALL;
            emit(u);
            setFlagProducer(SETFLAG_ALL, d.reg());
            break;
          }
          case 0x80: case 0x81: case 0x83:
            end = doGroup1(d);
            break;
          case 0x84: case 0x85: {  // test rm, reg
            unsigned size = (op == 0x84) ? 1 : d.opSize();
            int a;
            if (d.rmIsMem()) {
                a = temp();
                emitLoad(memRef(d), a, size, false);
            } else {
                a = d.rm();
            }
            int t = temp();
            Uop u = makeUop(UopOp::And, size);
            u.rd = (U8)t;
            u.ra = (U8)a;
            u.rb = (U8)d.reg();
            u.setflags = SETFLAG_ALL;
            emit(u);
            setFlagProducer(SETFLAG_ALL, t);
            break;
          }
          case 0x86: case 0x87: {  // xchg
            unsigned size = (op == 0x86) ? 1 : d.opSize();
            if (d.rmIsMem()) {
                MemRef m = memRef(d);
                int t = temp();
                emitLoad(m, t, size, false, true);  // always locked
                emitStore(m, d.reg(), size, true);
                writeGpr(d.reg(), t, size);
            } else {
                int t = temp();
                Uop m1 = makeUop(UopOp::Mov, 8);
                m1.rd = (U8)t;
                m1.rb = (U8)d.rm();
                emit(m1);
                writeGpr(d.rm(), d.reg(), size);
                writeGpr(d.reg(), t, size);
            }
            break;
          }
          case 0x88: case 0x89: case 0x8A: case 0x8B:
          case 0xC6: case 0xC7:
            end = doMov(d);
            break;
          case 0x8D:  // lea
            emitLea(memRef(d), d.reg());
            break;
          case 0x90:  // nop / pause
            emit(makeUop(UopOp::Nop, 8));
            break;
          case 0x9C: {  // pushfq
            int c = flagSource(SETFLAG_ALL);
            int t = temp();
            Uop u = makeUop(UopOp::MovRcc, 8);
            u.rd = (U8)t;
            u.rf = (U8)c;
            emit(u);
            MemRef stk{REG_rsp, REG_none, 0, -8};
            emitStore(stk, t, 8);
            Uop dec = makeUop(UopOp::Add, 8);
            dec.rd = REG_rsp;
            dec.ra = REG_rsp;
            dec.rb_imm = true;
            dec.imm = -8;
            emit(dec);
            break;
          }
          case 0x9D: {  // popfq
            int t = temp(), t2 = temp();
            MemRef stk{REG_rsp, REG_none, 0, 0};
            emitLoad(stk, t, 8, false);
            Uop inc = makeUop(UopOp::Add, 8);
            inc.rd = REG_rsp;
            inc.ra = REG_rsp;
            inc.rb_imm = true;
            inc.imm = 8;
            emit(inc);
            Uop u = makeUop(UopOp::MovCcr, 8);
            u.rd = (U8)t2;
            u.rb = (U8)t;
            u.setflags = SETFLAG_ALL;
            emit(u);
            setFlagProducer(SETFLAG_ALL, t2);
            break;
          }
          case 0xA4: case 0xAA: case 0xAC:
            end = doStringOp(d);
            break;
          case 0xB8: case 0xB9: case 0xBA: case 0xBB:
          case 0xBC: case 0xBD: case 0xBE: case 0xBF:
            end = doMov(d);
            break;
          case 0xC1:
            end = doGroup2Shift(d, 0);
            break;
          case 0xD1:
            end = doGroup2Shift(d, 1);
            break;
          case 0xD3:
            end = doGroup2Shift(d, 2);
            break;
          case 0xC3: {  // ret
            int t = temp();
            MemRef stk{REG_rsp, REG_none, 0, 0};
            emitLoad(stk, t, 8, false);
            Uop inc = makeUop(UopOp::Add, 8);
            inc.rd = REG_rsp;
            inc.ra = REG_rsp;
            inc.rb_imm = true;
            inc.imm = 8;
            emit(inc);
            Uop j = makeUop(UopOp::Jmp, 8);
            j.ra = (U8)t;
            j.imm2 = (S64)d.nextRip();
            j.hint_ret = true;
            emit(j);
            end = BbEnd::Ret;
            break;
          }
          case 0xCF:  // iretq
            emitAssist(AssistId::Iret);
            end = BbEnd::Assist;
            break;
          case 0xDD: case 0xDE:
            end = doX87(d);
            break;
          case 0xE8: {  // call rel32
            U64 target = d.nextRip() + (U64)(S64)d.imm;
            int t = temp();
            Uop mv = makeUop(UopOp::Mov, 8);
            mv.rd = (U8)t;
            mv.rb_imm = true;
            mv.imm = (S64)d.nextRip();
            emit(mv);
            MemRef stk{REG_rsp, REG_none, 0, -8};
            emitStore(stk, t, 8);
            Uop dec = makeUop(UopOp::Add, 8);
            dec.rd = REG_rsp;
            dec.ra = REG_rsp;
            dec.rb_imm = true;
            dec.imm = -8;
            emit(dec);
            Uop j = makeUop(UopOp::Bru, 8);
            j.imm = (S64)target;
            j.imm2 = (S64)d.nextRip();
            j.hint_call = true;
            emit(j);
            end = BbEnd::Call;
            break;
          }
          case 0xE9: case 0xEB: {  // jmp rel
            Uop j = makeUop(UopOp::Bru, 8);
            j.imm = (S64)(d.nextRip() + (U64)(S64)d.imm);
            j.imm2 = (S64)d.nextRip();
            emit(j);
            end = BbEnd::UncondBranch;
            break;
          }
          case 0xF4:
            emitAssist(AssistId::Hlt);
            end = BbEnd::Assist;
            break;
          case 0xF6: case 0xF7:
            end = doGroup3(d);
            break;
          case 0xFA:
            emitAssist(AssistId::Cli);
            end = BbEnd::Assist;
            break;
          case 0xFB:
            emitAssist(AssistId::Sti);
            end = BbEnd::Assist;
            break;
          case 0xFC:
            // cld: DF is architecturally fixed at 0 in this model.
            emit(makeUop(UopOp::Nop, 8));
            break;
          case 0xFF:
            end = doGroup5(d);
            break;
          default:
            emitInvalid();
            end = BbEnd::Assist;
            break;
        }
    }
    endInsn();
    return end;
}

void
Translator::sealWithJump(GuestVirt rip, GuestVirt next_rip)
{
    Uop j = makeUop(UopOp::Bru, 8);
    j.imm = (S64)next_rip.raw();
    j.imm2 = (S64)next_rip.raw();
    j.internal = true;
    j.som = true;
    j.eom = true;
    j.rip = rip.raw();
    j.ripseq = next_rip.raw();
    emit(j);
}

}  // namespace ptl
