/**
 * @file
 * The basic block cache.
 *
 * PTLsim does not re-decode x86 instructions every time they enter the
 * pipeline: decoded uop sequences for whole basic blocks are cached.
 * In full-system mode the cache key is much more than the RIP
 * (Section 2.1): code is identified by its virtual address, the
 * machine frame (MFN) it starts on, the MFN it ends on when an
 * instruction crosses a page, and contextual bits (kernel vs. user
 * mode). Self-modifying code is handled by tracking which MFNs back
 * decoded blocks and invalidating them when stores touch those frames.
 * The cache is transparent to the modeled microarchitecture — it only
 * accelerates simulation.
 */

#ifndef PTLSIM_DECODE_BBCACHE_H_
#define PTLSIM_DECODE_BBCACHE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/context.h"
#include "decode/translate.h"
#include "stats/stats.h"

namespace ptl {

/** Upper bounds on block size (PTLsim-like). */
constexpr int MAX_BB_X86_INSNS = 16;
constexpr size_t MAX_BB_UOPS = 48;

/** A translated basic block. */
struct BasicBlock
{
    U64 rip = 0;
    U64 mfn_lo = 0;          ///< frame of the first instruction byte
    U64 mfn_hi = 0;          ///< frame of the last byte (page crossing)
    bool kernel = false;     ///< decoded-in-kernel-mode context bit
    std::vector<Uop> uops;
    BbEnd end = BbEnd::None;
    U32 bytes = 0;
    U32 x86_count = 0;
};

class BasicBlockCache
{
  public:
    BasicBlockCache(AddressSpace &aspace, StatsTree &stats);

    /**
     * Find or decode the block starting at ctx.rip under ctx's
     * translation context. Returns nullptr with *fault set if the
     * first instruction byte cannot be fetched.
     */
    const BasicBlock *get(const Context &ctx, GuestFault *fault);

    /** A store touched machine frame `mfn`: drop every block it backs
     *  (self-modifying code). Returns the number invalidated. */
    int invalidateMfn(U64 mfn);

    /** True if decoded blocks currently live on `mfn`. */
    bool isCodeMfn(U64 mfn) const { return code_mfns.count(mfn) != 0; }

    /** Drop everything (native<->sim transitions, tests). */
    void invalidateAll();

    size_t size() const { return count; }

    /** Bumped on every invalidation; lets engines detect that cached
     *  BasicBlock pointers may have been freed. */
    U64 generation() const { return gen; }

  private:
    struct Key
    {
        U64 rip;
        U64 mfn_lo;
        bool kernel;
        bool operator==(const Key &o) const
        {
            return rip == o.rip && mfn_lo == o.mfn_lo && kernel == o.kernel;
        }
    };
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            return (size_t)(k.rip * 0x9e3779b97f4a7c15ULL
                            ^ (k.mfn_lo << 17) ^ (U64)k.kernel);
        }
    };

    std::unique_ptr<BasicBlock> decode(const Context &ctx,
                                       GuestFault *fault);

    AddressSpace *aspace;
    std::unordered_map<Key, std::unique_ptr<BasicBlock>, KeyHash> blocks;
    std::unordered_map<U64, std::unordered_set<const BasicBlock *>>
        mfn_index;
    std::unordered_set<U64> code_mfns;
    size_t count = 0;
    U64 gen = 0;

    Counter &st_hits;
    Counter &st_misses;
    Counter &st_smc_invalidations;
};

}  // namespace ptl

#endif  // PTLSIM_DECODE_BBCACHE_H_
