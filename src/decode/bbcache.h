/**
 * @file
 * The basic block cache.
 *
 * PTLsim does not re-decode x86 instructions every time they enter the
 * pipeline: decoded uop sequences for whole basic blocks are cached.
 * In full-system mode the cache key is much more than the RIP
 * (Section 2.1): code is identified by its virtual address, the
 * machine frame (MFN) it starts on, the MFN it ends on when an
 * instruction crosses a page, and contextual bits (kernel vs. user
 * mode). Self-modifying code is handled by tracking which MFNs back
 * decoded blocks and invalidating them when stores touch those frames.
 * The cache is transparent to the modeled microarchitecture — it only
 * accelerates simulation.
 */

#ifndef PTLSIM_DECODE_BBCACHE_H_
#define PTLSIM_DECODE_BBCACHE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decode/translate.h"
#include "lib/guestaddr.h"
#include "lib/counter.h"
#include "uop/uopexec.h"

namespace ptl {

/** Upper bounds on block size (PTLsim-like). */
constexpr int MAX_BB_X86_INSNS = 16;
constexpr size_t MAX_BB_UOPS = 48;

/**
 * Where the cache reads guest code from. The decoder sits below the
 * machine layers, so it cannot see Context or AddressSpace; instead
 * the owner of those (core/context.h's ContextCodeSource) implements
 * this interface and the cache stays a pure decode-layer citizen.
 * Frame numbers (MFNs) key the self-modifying-code index.
 */
class CodeSource
{
  public:
    virtual ~CodeSource() = default;

    /** Fetch virtual address of the block's first instruction. */
    virtual GuestVirt rip() const = 0;

    /** Privilege context bit baked into the cache key. */
    virtual bool kernelMode() const = 0;

    /**
     * Translate one code byte at `va` for execute access. On success
     * returns GuestFault::None and sets *mfn to the byte's machine
     * frame number; on failure returns the fault.
     */
    virtual GuestFault translateExec(GuestVirt va, Pfn *mfn) const = 0;

    /**
     * Copy up to `len` code bytes starting at `va` into `dst`,
     * stopping at an unmapped page. Returns the number of bytes
     * copied; sets *first_mfn to the frame of the first byte (when
     * any byte copied) and *fault to the stopping fault (when short).
     */
    virtual size_t fetchCode(GuestVirt va, U8 *dst, size_t len,
                             Pfn *first_mfn, GuestFault *fault) const = 0;
};

/** A translated basic block. */
struct BasicBlock
{
    GuestVirt rip;
    Pfn mfn_lo;              ///< frame of the first instruction byte
    Pfn mfn_hi;              ///< frame of the last byte (page crossing)
    bool kernel = false;     ///< decoded-in-kernel-mode context bit
    std::vector<Uop> uops;
    BbEnd end = BbEnd::None;
    U32 bytes = 0;
    U32 x86_count = 0;
};

class BasicBlockCache
{
  public:
    /** Counters come from StatsTree::counter("bbcache/..."); the
     *  cache itself never sees the tree (layering). */
    BasicBlockCache(Counter &hits, Counter &misses,
                    Counter &smc_invalidations);

    /**
     * Find or decode the block starting at code.rip() under code's
     * translation context. Returns nullptr with *fault set if the
     * first instruction byte cannot be fetched.
     */
    const BasicBlock *get(const CodeSource &code, GuestFault *fault);

    /** A store touched machine frame `mfn`: drop every block it backs
     *  (self-modifying code). Returns the number invalidated. */
    int invalidateMfn(Pfn mfn);

    /** True if decoded blocks currently live on `mfn`. */
    bool
    isCodeMfn(Pfn mfn) const
    {
        return code_mfns.count(mfn.raw()) != 0;
    }

    /** Drop everything (native<->sim transitions, tests). */
    void invalidateAll();

    size_t size() const { return count; }

    /** Bumped on every invalidation; lets engines detect that cached
     *  BasicBlock pointers may have been freed. */
    U64 generation() const { return gen; }

  private:
    struct Key
    {
        GuestVirt rip;
        Pfn mfn_lo;
        bool kernel;
        bool operator==(const Key &o) const
        {
            return rip == o.rip && mfn_lo == o.mfn_lo && kernel == o.kernel;
        }
    };
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            return (size_t)(k.rip.raw() * 0x9e3779b97f4a7c15ULL
                            ^ (k.mfn_lo.raw() << 17) ^ (U64)k.kernel);
        }
    };

    std::unique_ptr<BasicBlock> decode(const CodeSource &code,
                                       GuestFault *fault);

    std::unordered_map<Key, std::unique_ptr<BasicBlock>, KeyHash> blocks;
    std::unordered_map<U64, std::unordered_set<const BasicBlock *>>
        mfn_index;
    std::unordered_set<U64> code_mfns;
    size_t count = 0;
    U64 gen = 0;

    Counter &st_hits;
    Counter &st_misses;
    Counter &st_smc_invalidations;
};

}  // namespace ptl

#endif  // PTLSIM_DECODE_BBCACHE_H_
