#include "decode/bbcache.h"

#include "lib/logging.h"

namespace ptl {

BasicBlockCache::BasicBlockCache(AddressSpace &addrspace, StatsTree &stats)
    : aspace(&addrspace),
      st_hits(stats.counter("bbcache/hits")),
      st_misses(stats.counter("bbcache/misses")),
      st_smc_invalidations(stats.counter("bbcache/smc_invalidations"))
{
}

const BasicBlock *
BasicBlockCache::get(const Context &ctx, GuestFault *fault)
{
    *fault = GuestFault::None;
    // The key needs the starting MFN: translate the first byte.
    GuestAccess first =
        guestTranslate(*aspace, ctx, ctx.rip, MemAccess::Execute);
    if (!first.ok()) {
        *fault = first.fault;
        return nullptr;
    }
    Key key{ctx.rip, pageOf(first.paddr), ctx.kernel_mode};
    auto it = blocks.find(key);
    if (it != blocks.end()) {
        st_hits++;
        return it->second.get();
    }
    st_misses++;
    std::unique_ptr<BasicBlock> bb = decode(ctx, fault);
    if (!bb)
        return nullptr;
    BasicBlock *raw = bb.get();
    mfn_index[bb->mfn_lo].insert(raw);
    code_mfns.insert(bb->mfn_lo);
    if (bb->mfn_hi != bb->mfn_lo) {
        mfn_index[bb->mfn_hi].insert(raw);
        code_mfns.insert(bb->mfn_hi);
    }
    blocks.emplace(key, std::move(bb));
    count++;
    return raw;
}

std::unique_ptr<BasicBlock>
BasicBlockCache::decode(const Context &ctx, GuestFault *fault)
{
    auto bb = std::make_unique<BasicBlock>();
    bb->rip = ctx.rip;
    bb->kernel = ctx.kernel_mode;

    Translator translator(bb->uops);
    U64 rip = ctx.rip;
    for (int i = 0; i < MAX_BB_X86_INSNS; i++) {
        // Gather up to 15 bytes, stopping at an unmapped page.
        U8 bytes[MAX_X86_INSN_BYTES];
        GuestCopy g = guestCopyIn(*aspace, ctx, bytes, rip,
                                  MAX_X86_INSN_BYTES, MemAccess::Execute);
        size_t avail = g.copied;
        if (avail == 0) {
            // Even the first byte is unfetchable.
            if (i == 0) {
                *fault = g.fault;
                return nullptr;
            }
            // Mid-block: close the block; the fault (if ever reached)
            // is taken when fetch gets here again. All fetched bytes
            // fit on the starting page (a block is far smaller than a
            // page), so mfn_lo from instruction 0 covers the block.
            translator.sealWithJump(rip, rip);
            bb->end = BbEnd::SizeLimit;
            bb->bytes = (U32)(rip - bb->rip);
            bb->x86_count = (U32)i;
            bb->mfn_hi = bb->mfn_lo;
            return bb;
        }
        if (i == 0)
            bb->mfn_lo = pageOf(g.first_paddr);

        X86Insn insn = decodeX86(bytes, avail, rip);
        if (!insn.valid && insn.length == 0 && avail < MAX_X86_INSN_BYTES) {
            // Truncated by an unmapped page: the instruction straddles
            // into a fault. Raise #PF(fetch) at execution time via an
            // assist placed at this RIP.
            insn.valid = false;
            insn.length = 1;
        }

        BbEnd end = translator.translate(insn);
        U64 end_byte_rip = rip + (insn.length ? insn.length - 1 : 0);
        GuestAccess last = guestTranslate(*aspace, ctx, end_byte_rip,
                                          MemAccess::Execute);
        if (last.ok())
            bb->mfn_hi = pageOf(last.paddr);
        rip = insn.nextRip();
        bb->x86_count++;

        if (end != BbEnd::None) {
            bb->end = end;
            break;
        }
        if (translator.uopCount() >= MAX_BB_UOPS
            || bb->x86_count >= MAX_BB_X86_INSNS) {
            translator.sealWithJump(rip, rip);
            bb->end = BbEnd::SizeLimit;
            break;
        }
    }
    if (bb->mfn_hi == 0)
        bb->mfn_hi = bb->mfn_lo;
    bb->bytes = (U32)(rip - bb->rip);
    ptl_assert(!bb->uops.empty());
    ptl_assert(bb->uops.back().eom);
    return bb;
}

int
BasicBlockCache::invalidateMfn(U64 mfn)
{
    auto it = mfn_index.find(mfn);
    if (it == mfn_index.end())
        return 0;
    gen++;
    int n = 0;
    // Collect the victim blocks, then erase them from the key map.
    std::unordered_set<const BasicBlock *> victims = std::move(it->second);
    mfn_index.erase(it);
    code_mfns.erase(mfn);
    for (auto bit = blocks.begin(); bit != blocks.end();) {
        if (victims.count(bit->second.get())) {
            // Also unhook from the other frame's index.
            const BasicBlock *bb = bit->second.get();
            U64 other = (bb->mfn_lo == mfn) ? bb->mfn_hi : bb->mfn_lo;
            if (other != mfn) {
                auto oit = mfn_index.find(other);
                if (oit != mfn_index.end())
                    oit->second.erase(bb);
            }
            bit = blocks.erase(bit);
            n++;
            count--;
        } else {
            ++bit;
        }
    }
    st_smc_invalidations += (U64)n;
    return n;
}

void
BasicBlockCache::invalidateAll()
{
    blocks.clear();
    mfn_index.clear();
    code_mfns.clear();
    count = 0;
    gen++;
}

}  // namespace ptl
