#include "decode/bbcache.h"

#include "lib/logging.h"

namespace ptl {

BasicBlockCache::BasicBlockCache(Counter &hits, Counter &misses,
                                 Counter &smc_invalidations)
    : st_hits(hits),
      st_misses(misses),
      st_smc_invalidations(smc_invalidations)
{
}

const BasicBlock *
BasicBlockCache::get(const CodeSource &code, GuestFault *fault)
{
    *fault = GuestFault::None;
    // The key needs the starting MFN: translate the first byte.
    Pfn mfn_first;
    GuestFault tf = code.translateExec(code.rip(), &mfn_first);
    if (tf != GuestFault::None) {
        *fault = tf;
        return nullptr;
    }
    Key key{code.rip(), mfn_first, code.kernelMode()};
    auto it = blocks.find(key);
    if (it != blocks.end()) {
        st_hits++;
        return it->second.get();
    }
    st_misses++;
    std::unique_ptr<BasicBlock> bb = decode(code, fault);
    if (!bb)
        return nullptr;
    // Precompute scheduling metadata (uop class, flag-group inputs,
    // destination-write flag) once per block: every core that fetches
    // these uops reads the cached fields instead of re-deriving them
    // per dynamic instance.
    for (Uop &u : bb->uops)
        u.precomputeSched();
    BasicBlock *raw = bb.get();
    mfn_index[bb->mfn_lo.raw()].insert(raw);
    code_mfns.insert(bb->mfn_lo.raw());
    if (bb->mfn_hi != bb->mfn_lo) {
        mfn_index[bb->mfn_hi.raw()].insert(raw);
        code_mfns.insert(bb->mfn_hi.raw());
    }
    blocks.emplace(key, std::move(bb));
    count++;
    return raw;
}

std::unique_ptr<BasicBlock>
BasicBlockCache::decode(const CodeSource &code, GuestFault *fault)
{
    auto bb = std::make_unique<BasicBlock>();
    bb->rip = code.rip();
    bb->kernel = code.kernelMode();

    Translator translator(bb->uops);
    GuestVirt rip = code.rip();
    for (int i = 0; i < MAX_BB_X86_INSNS; i++) {
        // Gather up to 15 bytes, stopping at an unmapped page.
        U8 bytes[MAX_X86_INSN_BYTES];
        Pfn first_mfn;
        GuestFault copy_fault = GuestFault::None;
        size_t avail = code.fetchCode(rip, bytes, MAX_X86_INSN_BYTES,
                                      &first_mfn, &copy_fault);
        if (avail == 0) {
            // Even the first byte is unfetchable.
            if (i == 0) {
                *fault = copy_fault;
                return nullptr;
            }
            // Mid-block: close the block; the fault (if ever reached)
            // is taken when fetch gets here again. All fetched bytes
            // fit on the starting page (a block is far smaller than a
            // page), so mfn_lo from instruction 0 covers the block.
            translator.sealWithJump(rip, rip);
            bb->end = BbEnd::SizeLimit;
            bb->bytes = (U32)(rip - bb->rip);
            bb->x86_count = (U32)i;
            bb->mfn_hi = bb->mfn_lo;
            return bb;
        }
        if (i == 0)
            bb->mfn_lo = first_mfn;

        X86Insn insn = decodeX86(bytes, avail, rip.raw());
        if (!insn.valid && insn.length == 0 && avail < MAX_X86_INSN_BYTES) {
            // Truncated by an unmapped page: the instruction straddles
            // into a fault. Raise #PF(fetch) at execution time via an
            // assist placed at this RIP.
            insn.valid = false;
            insn.length = 1;
        }

        BbEnd end = translator.translate(insn);
        GuestVirt end_byte_rip =
            rip + (insn.length ? insn.length - 1 : 0);
        Pfn end_mfn;
        if (code.translateExec(end_byte_rip, &end_mfn)
            == GuestFault::None)
            bb->mfn_hi = end_mfn;
        rip = GuestVirt(insn.nextRip());
        bb->x86_count++;

        if (end != BbEnd::None) {
            bb->end = end;
            break;
        }
        if (translator.uopCount() >= MAX_BB_UOPS
            || bb->x86_count >= MAX_BB_X86_INSNS) {
            translator.sealWithJump(rip, rip);
            bb->end = BbEnd::SizeLimit;
            break;
        }
    }
    if (bb->mfn_hi == Pfn(0))
        bb->mfn_hi = bb->mfn_lo;
    bb->bytes = (U32)(rip - bb->rip);
    ptl_assert(!bb->uops.empty());
    ptl_assert(bb->uops.back().eom);
    return bb;
}

int
BasicBlockCache::invalidateMfn(Pfn mfn)
{
    auto it = mfn_index.find(mfn.raw());
    if (it == mfn_index.end())
        return 0;
    gen++;
    int n = 0;
    // Collect the victim blocks, then erase them from the key map.
    std::unordered_set<const BasicBlock *> victims = std::move(it->second);
    mfn_index.erase(it);
    code_mfns.erase(mfn.raw());
    // Erase-only sweep over the victim set: membership decides the
    // outcome, not visit order — every victim is removed and the
    // counters see only the total, so unordered iteration is safe.
    for (auto bit = blocks.begin();  // simlint: nondet-taint-ok
         bit != blocks.end();) {
        if (victims.count(bit->second.get())) {
            // Also unhook from the other frame's index.
            const BasicBlock *bb = bit->second.get();
            Pfn other = (bb->mfn_lo == mfn) ? bb->mfn_hi : bb->mfn_lo;
            if (other != mfn) {
                auto oit = mfn_index.find(other.raw());
                if (oit != mfn_index.end())
                    oit->second.erase(bb);
            }
            bit = blocks.erase(bit);
            n++;
            count--;
        } else {
            ++bit;
        }
    }
    st_smc_invalidations += (U64)n;
    return n;
}

void
BasicBlockCache::invalidateAll()
{
    blocks.clear();
    mfn_index.clear();
    code_mfns.clear();
    count = 0;
    gen++;
}

}  // namespace ptl
