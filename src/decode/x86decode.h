/**
 * @file
 * x86-64 instruction byte decoder.
 *
 * Parses raw machine-code bytes (legacy prefixes, REX, one/two-byte
 * opcodes, ModRM/SIB, displacement, immediate) into a structured
 * X86Insn. This is the first half of the paper's "full x86-64 to uop
 * decoder" (Section 2.1); the second half — uop translation — lives in
 * decode/translate.*. The supported subset exactly mirrors what the
 * repository's assembler can emit plus common alternative encodings;
 * anything else decodes to an invalid-opcode marker which the
 * translator turns into a #UD-raising assist (never a host crash).
 */

#ifndef PTLSIM_DECODE_X86DECODE_H_
#define PTLSIM_DECODE_X86DECODE_H_

#include <string>

#include "lib/bitops.h"

namespace ptl {

constexpr int MAX_X86_INSN_BYTES = 15;

/** A decoded (but not yet translated) x86-64 instruction. */
struct X86Insn
{
    U64 rip = 0;
    U8 length = 0;          ///< total instruction bytes
    bool valid = false;     ///< false => undecodable (#UD)

    // Prefixes.
    bool prefix_66 = false;
    bool prefix_f2 = false;
    bool prefix_f3 = false;
    bool prefix_lock = false;
    bool has_rex = false;
    bool rex_w = false, rex_r = false, rex_x = false, rex_b = false;

    // Opcode.
    bool is_0f = false;     ///< two-byte (0F xx) opcode map
    U8 opcode = 0;          ///< primary opcode byte

    // ModRM / SIB.
    bool has_modrm = false;
    U8 modrm = 0;
    bool has_sib = false;
    U8 sib = 0;
    S64 disp = 0;

    // Immediate.
    U64 imm = 0;            ///< sign-extended where applicable
    U8 imm_bytes = 0;

    // ---- derived accessors ----
    U8 mod() const { return modrm >> 6; }
    /** ModRM.reg extended by REX.R. */
    int reg() const { return ((modrm >> 3) & 7) | (rex_r ? 8 : 0); }
    /** ModRM.rm extended by REX.B (register-direct forms). */
    int rm() const { return (modrm & 7) | (rex_b ? 8 : 0); }
    bool rmIsMem() const { return has_modrm && mod() != 3; }
    int sibScale() const { return 1 << (sib >> 6); }
    int sibIndex() const { return ((sib >> 3) & 7) | (rex_x ? 8 : 0); }
    int sibBase() const { return (sib & 7) | (rex_b ? 8 : 0); }

    /** Effective operand size in bytes for non-byte opcodes. */
    unsigned
    opSize() const
    {
        if (rex_w)
            return 8;
        if (prefix_66)
            return 2;
        return 4;
    }

    U64 nextRip() const { return rip + length; }

    /** Compact diagnostic rendering ("0f b6 /r len=4 ..."). */
    std::string toString() const;
};

/**
 * Decode one instruction from `bytes` (at least `avail` valid bytes,
 * which may be fewer than MAX_X86_INSN_BYTES near a page boundary; the
 * decoder reports invalid if the instruction is truncated).
 */
X86Insn decodeX86(const U8 *bytes, size_t avail, U64 rip);

}  // namespace ptl

#endif  // PTLSIM_DECODE_X86DECODE_H_
