/**
 * @file
 * x86 instruction -> uop translation.
 *
 * Implements the second half of the paper's decoder (Section 2.1):
 * each decoded x86 instruction becomes a short sequence of uops marked
 * with SOM/EOM boundaries for atomic commit. The translator tracks
 * which uop register last produced each condition-flag group (ZAPS /
 * CF / OF) so flag consumers name their true producer, inserting
 * collcc merge uops when the groups live in different producers —
 * PTLsim's split-flags renaming scheme. Complex and serializing
 * instructions become microcode assists; rep string instructions are
 * translated as self-looping basic blocks whose iteration commits
 * independently (making them interruptible and restartable, as x86
 * requires); locked RMW instructions become ld.acq/st.rel pairs.
 */

#ifndef PTLSIM_DECODE_TRANSLATE_H_
#define PTLSIM_DECODE_TRANSLATE_H_

#include <vector>

#include "decode/x86decode.h"
#include "lib/guestaddr.h"
#include "uop/uop.h"

namespace ptl {

/** Why a basic block ended. */
enum class BbEnd : U8 {
    None,        ///< block still open (translator appends more insns)
    CondBranch,
    UncondBranch,
    IndirectBranch,
    Call,
    IndirectCall,
    Ret,
    Assist,      ///< serializing microcode (syscall, hlt, rep handled
                 ///< separately...)
    SizeLimit,   ///< capped; ends with an internal continuation branch
};

/**
 * Per-basic-block translation state. Construct once per BB, call
 * translate() for each decoded instruction until it reports the block
 * ended, then (if the size limit ended it) sealWithJump().
 */
class Translator
{
  public:
    explicit Translator(std::vector<Uop> &sink) : out(&sink) {}

    /**
     * Append the uops for one instruction. Returns the block-ending
     * kind (None if the block continues).
     */
    BbEnd translate(const X86Insn &insn);

    /** Close an open block with an internal jump to `next_rip`. */
    void sealWithJump(GuestVirt rip, GuestVirt next_rip);

    /** Uop count appended so far. */
    size_t uopCount() const { return out->size(); }

  private:
    // ---- emission helpers ----
    Uop &emit(const Uop &u);
    Uop makeUop(UopOp op, unsigned size) const;
    int temp();                        ///< allocate a microcode temp
    void beginInsn(const X86Insn &insn);
    void endInsn();                    ///< mark SOM/EOM on the group

    // ---- flag tracking ----
    /** Register whose attached flags cover `groups`; emits collcc if
     *  the groups currently live in different producers. */
    int flagSource(U8 groups);
    void setFlagProducer(U8 groups, int reg);
    static U8 condNeeds(CondCode cc);

    // ---- operand helpers ----
    struct MemRef
    {
        int base = REG_zero;
        int index = REG_none;
        U8 scale_log = 0;
        S64 disp = 0;
    };
    MemRef memRef(const X86Insn &insn) const;
    Uop &emitLoad(const MemRef &m, int rd, unsigned size, bool sign,
                  bool locked = false);
    Uop &emitStore(const MemRef &m, int rc, unsigned size,
                   bool locked = false);
    /** Compute a memory operand's effective address into `rd`. */
    void emitLea(const MemRef &m, int rd);
    /** Write `src` into GPR `reg` honoring x86 partial-register rules
     *  (8/16-bit writes merge; 32-bit writes zero-extend). */
    void writeGpr(int reg, int src, unsigned size);
    void emitAssist(AssistId id);
    void emitInvalid();

    // ---- instruction families ----
    BbEnd doAluBlock(const X86Insn &insn);
    BbEnd doGroup1(const X86Insn &insn);
    BbEnd doGroup2Shift(const X86Insn &insn, int count_kind);
    BbEnd doGroup3(const X86Insn &insn);
    BbEnd doGroup5(const X86Insn &insn);
    BbEnd doMov(const X86Insn &insn);
    BbEnd doStringOp(const X86Insn &insn);
    BbEnd doTwoByte(const X86Insn &insn);
    BbEnd doX87(const X86Insn &insn);

    std::vector<Uop> *out;
    const X86Insn *cur = nullptr;
    size_t insn_start = 0;
    int next_temp = 0;
    int zaps_src = REG_zaps;
    int cf_src = REG_cf;
    int of_src = REG_of;
};

/** Translate one instruction into `out` (testing convenience). */
BbEnd translateOne(const X86Insn &insn, std::vector<Uop> &out);

}  // namespace ptl

#endif  // PTLSIM_DECODE_TRANSLATE_H_
