#include "workload/rsyncbench.h"

#include "kernel/guestlib.h"
#include "lib/logging.h"
#include "kernel/hypercalls.h"

namespace ptl {

namespace {

// ---- guest memory layout (inside the USER_DATA region) ----
constexpr U64 OLD_VA = USER_DATA_VA;                  // old archive
constexpr U64 NEW_VA = USER_DATA_VA + 0x800000;       // new archive
constexpr U64 OUT_VA = USER_DATA_VA + 0x1000000;      // reconstruction
constexpr U64 META_VA = USER_DATA_VA + 0x1800000;

constexpr U64 HASHTAB = META_VA;                      // 64K x 8 bytes
constexpr U64 FILETAB = META_VA + 0x80000;            // blocklist offsets
constexpr U64 VARS = META_VA + 0x90000;
constexpr U64 V_KEY_C2S_TX = VARS + 0;
constexpr U64 V_KEY_C2S_RX = VARS + 8;
constexpr U64 V_KEY_S2C_TX = VARS + 16;
constexpr U64 V_KEY_S2C_RX = VARS + 24;
constexpr U64 V_VERSION = VARS + 32;
constexpr U64 V_MISMATCH = VARS + 40;
constexpr U64 V_OUTPTR = VARS + 48;
constexpr U64 V_BLTAIL = VARS + 56;
constexpr U64 BUF_SSHC_TX = META_VA + 0xA0000;        // 16 KB each
constexpr U64 BUF_SSHC_RX = META_VA + 0xA4000;
constexpr U64 BUF_SSHD_RX = META_VA + 0xA8000;
constexpr U64 BUF_SSHD_TX = META_VA + 0xAC000;
constexpr U64 BUF_CLIENT = META_VA + 0xB0000;
constexpr U64 BUF_SERVER = META_VA + 0xB4000;
constexpr U64 DELTATAB = META_VA + 0xC0000;           // {off,len} pairs
constexpr U64 DEBUGTAB = META_VA + 0xE0000;           // per-file verify log
constexpr U64 BLOCKLIST = META_VA + 0x100000;         // 1 MB
constexpr U64 DELTA = META_VA + 0x200000;             // op streams

// Pipes and endpoints.
constexpr U64 P_C2T = 0;   // client -> ssh-client tx relay
constexpr U64 P_T2C = 1;   // ssh-client rx relay -> client
constexpr U64 P_D2S = 2;   // sshd rx relay -> server
constexpr U64 P_S2D = 3;   // server -> sshd tx relay
constexpr U64 P_RES = 4;   // server -> init (result)
constexpr U64 EP_CLIENT = 0;
constexpr U64 EP_SERVER = 1;

constexpr U64 BLOCK = 1024;
constexpr U64 MAX_PAYLOAD = 0x3000;
constexpr U64 BURN_ITERS = 30000;

constexpr U8 OP_END = 0;
constexpr U8 OP_COPY = 1;
constexpr U8 OP_LIT = 2;

/**
 * Emits the guest programs. Register conventions for the workload's
 * leaf helpers (emitted below, called with `call`):
 *
 *   fn_fnv(rdi=ptr, rsi=len) -> rax          clobbers rcx, rdx, rdi, rsi
 *   fn_weak(rdi=ptr, rsi=len) -> rax         clobbers rcx, rdx, rdi, rsi
 *       (result: a | b<<16, the rsync rolling checksum over the range)
 *   fn_cipher(rdi=buf, rsi=len, rdx=&state)  clobbers rax, rcx, rdi, rsi
 *   fn_burn(rdi=iters) -> rax                clobbers rcx, rdx, rdi
 *   fn_marker(rdi=id)                        clobbers rax
 *   fn_send_frame(rdi=fd, rsi=buf, rdx=len)  clobbers caller-saved
 *   fn_recv_frame(rdi=fd, rsi=buf) -> rax    clobbers caller-saved
 *   fn_netsend_frame(rdi=ep, rsi=buf, rdx=len)
 *   fn_netrecv_frame(rdi=ep, rsi=buf) -> rax
 *
 * Frames are [u64 length][payload]; a zero length is the end-of-stream
 * sentinel that shuts each tunnel stage down in turn.
 */
class RsyncEmitter
{
  public:
    RsyncEmitter(Assembler &as, GuestLib &gl) : a(as), lib(gl) {}

    struct Entries
    {
        U64 init;
        U64 client;
        U64 sshc_tx;
        U64 sshc_rx;
        U64 sshd_rx;
        U64 sshd_tx;
        U64 server;
    };

    Entries
    emit(U64 old_sectors_arg, U64 new_sectors_arg)
    {
        old_sectors = old_sectors_arg;
        new_sectors = new_sectors_arg;
        Label skip = a.newLabel();
        a.jmp(skip);
        emitHelpers();
        Label l_client = emitClient();
        Label l_sshc_tx = emitRelayPipeToNet(P_C2T, EP_SERVER,
                                             BUF_SSHC_TX, V_KEY_C2S_TX);
        Label l_sshc_rx = emitRelayNetToPipe(EP_CLIENT, P_T2C,
                                             BUF_SSHC_RX, V_KEY_S2C_RX);
        Label l_sshd_rx = emitRelayNetToPipe(EP_SERVER, P_D2S,
                                             BUF_SSHD_RX, V_KEY_C2S_RX);
        Label l_sshd_tx = emitRelayPipeToNet(P_S2D, EP_CLIENT,
                                             BUF_SSHD_TX, V_KEY_S2C_TX);
        Label l_server = emitServer();
        a.bind(skip);
        Label l_init = a.label();
        emitInit(l_client, l_sshc_tx, l_sshc_rx, l_sshd_rx, l_sshd_tx,
                 l_server);

        Entries out;
        out.init = a.labelVa(l_init);
        out.client = a.labelVa(l_client);
        out.sshc_tx = a.labelVa(l_sshc_tx);
        out.sshc_rx = a.labelVa(l_sshc_rx);
        out.sshd_rx = a.labelVa(l_sshd_rx);
        out.sshd_tx = a.labelVa(l_sshd_tx);
        out.server = a.labelVa(l_server);
        return out;
    }

  private:
    Assembler &a;
    GuestLib &lib;
    U64 old_sectors = 0;
    U64 new_sectors = 0;

    Label fn_fnv, fn_weak, fn_cipher, fn_burn, fn_marker;
    Label fn_send_frame, fn_recv_frame;
    Label fn_netsend_frame, fn_netrecv_frame;

    void
    emitHelpers()
    {
        // ---- fn_fnv(rdi=ptr, rsi=len) -> rax ----
        fn_fnv = a.label();
        {
            Label loop = a.newLabel(), done = a.newLabel();
            a.movImm64(R::rax, 0xcbf29ce484222325ULL);
            a.movImm64(R::rdx, 0x100000001b3ULL);
            a.bind(loop);
            a.test(R::rsi, R::rsi);
            a.jcc(COND_e, done);
            a.movzx8(R::rcx, Mem::at(R::rdi));
            a.xor_(R::rax, R::rcx);
            a.imul(R::rax, R::rdx);
            a.inc(R::rdi);
            a.dec(R::rsi);
            a.jmp(loop);
            a.bind(done);
            a.ret();
        }

        // ---- fn_weak(rdi=ptr, rsi=len) -> rax = a | b<<16 ----
        // a(k,l) = sum X_i mod 2^16 ; b(k,l) = sum (l-i+1) X_i mod 2^16.
        // Computed as: for each byte: a += X; b += a.
        fn_weak = a.label();
        {
            Label loop = a.newLabel(), done = a.newLabel();
            a.mov(R::rax, 0);   // a
            a.mov(R::rdx, 0);   // b
            a.bind(loop);
            a.test(R::rsi, R::rsi);
            a.jcc(COND_e, done);
            a.movzx8(R::rcx, Mem::at(R::rdi));
            a.add(R::rax, R::rcx);
            a.add(R::rdx, R::rax);
            a.inc(R::rdi);
            a.dec(R::rsi);
            a.jmp(loop);
            a.bind(done);
            a.and_(R::rax, 0xFFFF);
            a.and_(R::rdx, 0xFFFF);
            a.shl(R::rdx, 16);
            a.or_(R::rax, R::rdx);
            a.ret();
        }

        // ---- fn_cipher(rdi=buf, rsi=len, rdx=&state) ----
        // xorshift64 keystream, one 64-bit word at a time; the tail
        // bytes are XORed individually with the next word's low bytes.
        fn_cipher = a.label();
        {
            Label words = a.newLabel(), tail = a.newLabel();
            Label tail_loop = a.newLabel(), done = a.newLabel();
            a.push(R::rbx);
            a.mov(R::rbx, Mem::at(R::rdx));      // keystream state
            a.bind(words);
            a.cmp(R::rsi, 8);
            a.jcc(COND_b, tail);
            // state ^= state<<13; ^= state>>7; ^= state<<17
            a.mov(R::rcx, R::rbx);
            a.shl(R::rcx, 13);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rcx, R::rbx);
            a.shr(R::rcx, 7);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rcx, R::rbx);
            a.shl(R::rcx, 17);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rax, Mem::at(R::rdi));
            a.xor_(R::rax, R::rbx);
            a.mov(Mem::at(R::rdi), R::rax);
            a.add(R::rdi, 8);
            a.sub(R::rsi, 8);
            a.jmp(words);
            a.bind(tail);
            a.test(R::rsi, R::rsi);
            a.jcc(COND_e, done);
            a.mov(R::rcx, R::rbx);
            a.shl(R::rcx, 13);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rcx, R::rbx);
            a.shr(R::rcx, 7);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rcx, R::rbx);
            a.shl(R::rcx, 17);
            a.xor_(R::rbx, R::rcx);
            a.mov(R::rax, R::rbx);
            a.bind(tail_loop);
            a.movzx8(R::rcx, Mem::at(R::rdi));
            a.xor_(R::rcx, R::rax);
            a.mov8(Mem::at(R::rdi), R::rcx);
            a.shr(R::rax, 8);
            a.inc(R::rdi);
            a.dec(R::rsi);
            a.jcc(COND_ne, tail_loop);
            a.bind(done);
            a.mov(Mem::at(R::rdx), R::rbx);
            a.pop(R::rbx);
            a.ret();
        }

        // ---- fn_burn(rdi=iters) -> rax: key-exchange-style compute ----
        fn_burn = a.label();
        {
            Label loop = a.newLabel(), done = a.newLabel();
            a.movImm64(R::rax, 0x243F6A8885A308D3ULL);
            a.movImm64(R::rcx, 6364136223846793005ULL);
            a.bind(loop);
            a.test(R::rdi, R::rdi);
            a.jcc(COND_e, done);
            a.imul(R::rax, R::rcx);
            a.movImm64(R::rdx, 1442695040888963407ULL);
            a.add(R::rax, R::rdx);
            a.rol(R::rax, 7);
            a.dec(R::rdi);
            a.jmp(loop);
            a.bind(done);
            a.ret();
        }

        // ---- fn_marker(rdi=id) ----
        fn_marker = a.label();
        a.mov(R::rax, (U64)PTLCALL_MARKER);
        a.ptlcall();
        a.ret();

        // ---- fn_send_frame(rdi=fd, rsi=buf, rdx=len) ----
        fn_send_frame = a.label();
        {
            a.push(R::rbx);
            a.push(R::r12);
            a.push(R::r13);
            a.mov(R::rbx, R::rdi);
            a.mov(R::r12, R::rsi);
            a.mov(R::r13, R::rdx);
            a.push(R::r13);                  // header on the stack
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::rsp);
            a.mov(R::rdx, 8);
            a.call(lib.fn_write_all);
            a.add(R::rsp, 8);
            a.test(R::r13, R::r13);
            Label no_payload = a.newLabel();
            a.jcc(COND_e, no_payload);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::r12);
            a.mov(R::rdx, R::r13);
            a.call(lib.fn_write_all);
            a.bind(no_payload);
            a.pop(R::r13);
            a.pop(R::r12);
            a.pop(R::rbx);
            a.ret();
        }

        // ---- fn_recv_frame(rdi=fd, rsi=buf) -> rax=len ----
        fn_recv_frame = a.label();
        {
            a.push(R::rbx);
            a.push(R::r12);
            a.push(R::r13);
            a.mov(R::rbx, R::rdi);
            a.mov(R::r12, R::rsi);
            a.sub(R::rsp, 8);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::rsp);
            a.mov(R::rdx, 8);
            a.call(lib.fn_read_exact);
            a.pop(R::r13);                   // len
            Label empty = a.newLabel();
            a.test(R::r13, R::r13);
            a.jcc(COND_e, empty);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::r12);
            a.mov(R::rdx, R::r13);
            a.call(lib.fn_read_exact);
            a.bind(empty);
            a.mov(R::rax, R::r13);
            a.pop(R::r13);
            a.pop(R::r12);
            a.pop(R::rbx);
            a.ret();
        }

        // ---- fn_netsend_frame(rdi=ep, rsi=buf, rdx=len) ----
        fn_netsend_frame = a.label();
        {
            a.push(R::rbx);
            a.push(R::r12);
            a.push(R::r13);
            a.mov(R::rbx, R::rdi);
            a.mov(R::r12, R::rsi);
            a.mov(R::r13, R::rdx);
            a.push(R::r13);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::rsp);
            a.mov(R::rdx, 8);
            lib.syscall(GSYS_net_send);
            a.add(R::rsp, 8);
            a.test(R::r13, R::r13);
            Label no_payload = a.newLabel();
            a.jcc(COND_e, no_payload);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::r12);
            a.mov(R::rdx, R::r13);
            lib.syscall(GSYS_net_send);
            a.bind(no_payload);
            a.pop(R::r13);
            a.pop(R::r12);
            a.pop(R::rbx);
            a.ret();
        }

        // ---- fn_netrecv_frame(rdi=ep, rsi=buf) -> rax ----
        fn_netrecv_frame = a.label();
        {
            a.push(R::rbx);
            a.push(R::r12);
            a.push(R::r13);
            a.mov(R::rbx, R::rdi);
            a.mov(R::r12, R::rsi);
            a.sub(R::rsp, 8);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::rsp);
            a.mov(R::rdx, 8);
            a.call(lib.fn_net_recv_exact);
            a.pop(R::r13);
            Label empty = a.newLabel();
            a.test(R::r13, R::r13);
            a.jcc(COND_e, empty);
            a.mov(R::rdi, R::rbx);
            a.mov(R::rsi, R::r12);
            a.mov(R::rdx, R::r13);
            a.call(lib.fn_net_recv_exact);
            a.bind(empty);
            a.mov(R::rax, R::r13);
            a.pop(R::r13);
            a.pop(R::r12);
            a.pop(R::rbx);
            a.ret();
        }
    }

    /** Pipe -> cipher -> net relay (ssh transmit direction). */
    Label
    emitRelayPipeToNet(U64 pipe_fd, U64 dest_ep, U64 buf, U64 key_addr)
    {
        Label entry = a.label();
        Label loop = a.label();
        a.mov(R::rdi, pipe_fd);
        a.movImm64(R::rsi, buf);
        a.call(fn_recv_frame);
        a.mov(R::rbx, R::rax);               // frame length
        Label finish = a.newLabel();
        a.test(R::rbx, R::rbx);
        a.jcc(COND_e, finish);
        a.movImm64(R::rdi, buf);
        a.mov(R::rsi, R::rbx);
        a.movImm64(R::rdx, key_addr);
        a.call(fn_cipher);                   // encrypt payload
        a.mov(R::rdi, dest_ep);
        a.movImm64(R::rsi, buf);
        a.mov(R::rdx, R::rbx);
        a.call(fn_netsend_frame);
        a.jmp(loop);
        a.bind(finish);
        // Forward the end-of-stream sentinel, then exit.
        a.mov(R::rdi, dest_ep);
        a.movImm64(R::rsi, buf);
        a.mov(R::rdx, 0);
        a.call(fn_netsend_frame);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
        return entry;
    }

    /** Net -> decipher -> pipe relay (ssh receive direction). */
    Label
    emitRelayNetToPipe(U64 src_ep, U64 pipe_fd, U64 buf, U64 key_addr)
    {
        Label entry = a.label();
        Label loop = a.label();
        a.mov(R::rdi, src_ep);
        a.movImm64(R::rsi, buf);
        a.call(fn_netrecv_frame);
        a.mov(R::rbx, R::rax);
        Label finish = a.newLabel();
        a.test(R::rbx, R::rbx);
        a.jcc(COND_e, finish);
        a.movImm64(R::rdi, buf);
        a.mov(R::rsi, R::rbx);
        a.movImm64(R::rdx, key_addr);
        a.call(fn_cipher);                   // decrypt payload
        a.mov(R::rdi, pipe_fd);
        a.movImm64(R::rsi, buf);
        a.mov(R::rdx, R::rbx);
        a.call(fn_send_frame);
        a.jmp(loop);
        a.bind(finish);
        a.mov(R::rdi, pipe_fd);
        a.movImm64(R::rsi, buf);
        a.mov(R::rdx, 0);
        a.call(fn_send_frame);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
        return entry;
    }

    /** Archive iteration helper: set rbx = archive base; r12 = file
     *  count; then per index rcx: header entry at rbx + 8 + rcx*24. */

    Label emitClient();
    Label emitServer();
    void emitInit(Label l_client, Label l_sshc_tx, Label l_sshc_rx,
                  Label l_sshd_rx, Label l_sshd_tx, Label l_server);
    void emitClientDelta(Label &delta_fn);
};

// ---------------------------------------------------------------------
// Client (sender): phases b, c, d(receive), e, f
// ---------------------------------------------------------------------

/**
 * fn_delta: compute the delta op stream for one file.
 *   inputs (via registers):
 *     rdi = new data pointer, rsi = new length,
 *     rdx = blocklist record (0 = no basis -> all literal)
 *     rcx = delta output pointer
 *   returns rax = bytes of op stream written.
 * The op stream is the rsync output: copy ops referencing 1024-byte
 * blocks of the old file, literal ops carrying new bytes, then OP_END.
 */
void
RsyncEmitter::emitClientDelta(Label &delta_fn)
{
    delta_fn = a.label();
    // Stack frame: locals
    //   [rsp+0]  a (rolling)      [rsp+8]  b (rolling)
    //   [rsp+16] version          [rsp+24] nblocks
    //   [rsp+32] lit_start        [rsp+40] saved delta base
    a.push(R::rbx);
    a.push(R::rbp);
    a.push(R::r12);
    a.push(R::r13);
    a.push(R::r14);
    a.push(R::r15);
    a.sub(R::rsp, 48);
    a.mov(R::rbx, R::rdi);     // data
    a.mov(R::r12, R::rsi);     // len
    a.mov(R::r13, R::rdx);     // blocklist record (or 0)
    a.mov(R::r14, R::rcx);     // delta write ptr
    a.mov(Mem::at(R::rsp, 40), R::rcx);
    a.mov(R::r15, 0);          // pos
    a.mov(Mem::at(R::rsp, 32), R::r15);  // lit_start = 0

    Label all_literal = a.newLabel();
    Label build_done = a.newLabel();
    Label roll_outer = a.newLabel();
    Label emit_tail = a.newLabel();

    // No basis or tiny file: emit one big literal.
    a.test(R::r13, R::r13);
    a.jcc(COND_e, all_literal);
    a.cmp(R::r12, (S32)BLOCK);
    a.jcc(COND_b, all_literal);

    // ---- build the weak-hash table for this file's basis ----
    {
        // version = ++[V_VERSION]
        a.movImm64(R::rax, V_VERSION);
        a.mov(R::rcx, Mem::at(R::rax));
        a.inc(R::rcx);
        a.mov(Mem::at(R::rax), R::rcx);
        a.mov(Mem::at(R::rsp, 16), R::rcx);
        a.mov(R::rdx, Mem::at(R::r13, 8));   // nblocks (full blocks)
        a.mov(Mem::at(R::rsp, 24), R::rdx);
        // for b = 0 .. nblocks-1: insert
        a.mov(R::rbp, 0);
        Label ins_loop = a.label();
        Label ins_done = a.newLabel();
        a.cmp(R::rbp, Mem::at(R::rsp, 24));
        a.jcc(COND_nb, ins_done);
        // weak = rec[16 + b*16]
        a.mov(R::rax, R::rbp);
        a.shl(R::rax, 4);
        a.add(R::rax, R::r13);
        a.mov(R::rdi, Mem::at(R::rax, 16));  // weak32
        // entry = version32 | weakhi16<<32 | (b+1)<<48
        a.mov(R::rcx, R::rdi);
        a.shr(R::rcx, 16);
        a.and_(R::rcx, 0xFFFF);
        a.shl(R::rcx, 32);
        a.or_(R::rcx, Mem::at(R::rsp, 16));  // version (fits 32 bits)
        a.mov(R::rdx, R::rbp);
        a.inc(R::rdx);
        a.shl(R::rdx, 48);
        a.or_(R::rcx, R::rdx);
        // probe 8 slots from bucket = hash16(weak). Real rsync hashes
        // the weak sum into its table; without mixing, text data's
        // narrow rolling-sum distribution would cluster every block
        // into a handful of buckets (and a handful of table pages).
        a.imul(R::rax, R::rdi, (S32)0x9E3779B1);
        a.shr(R::rax, 16);
        a.and_(R::rax, 0xFFFF);
        a.mov(R::rdi, R::rax);
        a.mov(R::rsi, 0);
        Label probe = a.label();
        Label next_block = a.newLabel();
        a.cmp(R::rsi, 8);
        a.jcc(COND_e, next_block);           // table chain full: skip
        a.mov(R::rax, R::rdi);
        a.add(R::rax, R::rsi);
        a.and_(R::rax, 0xFFFF);
        a.shl(R::rax, 3);
        a.movImm64(R::rdx, HASHTAB);
        a.add(R::rax, R::rdx);
        a.mov(R::rdx, Mem::at(R::rax));
        a.mov32(R::rdx, R::rdx);             // low 32 = stored version
        a.cmp(R::rdx, Mem::at(R::rsp, 16));
        Label occupied = a.newLabel();
        a.jcc(COND_e, occupied);
        a.mov(Mem::at(R::rax), R::rcx);      // claim the slot
        a.jmp(next_block);
        a.bind(occupied);
        a.inc(R::rsi);
        a.jmp(probe);
        a.bind(next_block);
        a.inc(R::rbp);
        a.jmp(ins_loop);
        a.bind(ins_done);
    }

    // ---- rolling scan ----
    // Initialize a,b over [0, BLOCK).
    a.mov(R::rdi, R::rbx);
    a.mov(R::rsi, (U64)BLOCK);
    a.call(fn_weak);
    a.mov(R::rcx, R::rax);
    a.and_(R::rax, 0xFFFF);
    a.mov(Mem::at(R::rsp, 0), R::rax);       // a
    a.shr(R::rcx, 16);
    a.mov(Mem::at(R::rsp, 8), R::rcx);       // b

    a.bind(roll_outer);
    {
        // while pos + BLOCK <= len
        a.mov(R::rax, R::r15);
        a.add(R::rax, (S32)BLOCK);
        a.cmp(R::rax, R::r12);
        a.jcc(COND_nbe, emit_tail);

        // weak = a | b<<16; lookup
        a.mov(R::rdi, Mem::at(R::rsp, 8));
        a.shl(R::rdi, 16);
        a.or_(R::rdi, Mem::at(R::rsp, 0));   // weak32 in rdi
        // probe
        a.mov(R::rcx, R::rdi);
        a.shr(R::rcx, 16);
        a.and_(R::rcx, 0xFFFF);              // weakhi
        a.mov(R::rsi, 0);
        Label probe = a.label();
        Label slide = a.newLabel();
        Label candidate = a.newLabel();
        Label probe_next = a.newLabel();
        a.cmp(R::rsi, 8);
        a.jcc(COND_e, slide);
        a.imul(R::rax, R::rdi, (S32)0x9E3779B1);  // hash16(weak), as
        a.shr(R::rax, 16);                        // in the insert path
        a.and_(R::rax, 0xFFFF);
        a.add(R::rax, R::rsi);
        a.and_(R::rax, 0xFFFF);
        a.shl(R::rax, 3);
        a.movImm64(R::rdx, HASHTAB);
        a.add(R::rax, R::rdx);
        a.mov(R::rdx, Mem::at(R::rax));      // entry
        a.mov(R::rbp, R::rdx);
        a.mov32(R::rbp, R::rbp);
        a.cmp(R::rbp, Mem::at(R::rsp, 16));  // version match?
        a.jcc(COND_ne, slide);               // empty slot: no match
        a.mov(R::rbp, R::rdx);
        a.shr(R::rbp, 32);
        a.and_(R::rbp, 0xFFFF);
        a.cmp(R::rbp, R::rcx);               // weak-high match?
        a.jcc(COND_e, candidate);
        a.bind(probe_next);
        a.inc(R::rsi);
        a.jmp(probe);

        a.bind(candidate);
        {
            // block index = (entry>>48) - 1; verify strong checksum.
            a.mov(R::rbp, R::rdx);
            a.shr(R::rbp, 48);
            a.dec(R::rbp);                   // rbp = block idx
            // strong from blocklist: rec[16 + idx*16 + 8]
            a.push(R::rdi);
            a.push(R::rcx);
            a.push(R::rsi);
            a.push(R::rbp);
            a.mov(R::rdi, R::rbx);
            a.add(R::rdi, R::r15);
            a.mov(R::rsi, (U64)BLOCK);
            a.call(fn_fnv);                  // strong of window
            a.pop(R::rbp);
            a.mov(R::rcx, R::rbp);
            a.shl(R::rcx, 4);
            a.add(R::rcx, R::r13);
            a.cmp(R::rax, Mem::at(R::rcx, 24));  // 16 + 8 offset
            a.pop(R::rsi);
            a.pop(R::rcx);
            a.pop(R::rdi);
            a.jcc(COND_ne, probe_next);      // weak collision: continue

            // ---- MATCH: flush pending literal, emit copy ----
            // literal [lit_start, pos)
            a.mov(R::rdx, R::r15);
            a.sub(R::rdx, Mem::at(R::rsp, 32));
            Label no_lit = a.newLabel();
            a.test(R::rdx, R::rdx);
            a.jcc(COND_e, no_lit);
            // chunked literal emission
            {
                Label lit_loop = a.label();
                Label lit_done = a.newLabel();
                a.mov(R::rdx, R::r15);
                a.sub(R::rdx, Mem::at(R::rsp, 32));
                a.test(R::rdx, R::rdx);
                a.jcc(COND_e, lit_done);
                a.mov(R::rcx, (U64)MAX_PAYLOAD - 64);
                a.cmp(R::rdx, R::rcx);
                Label lit_sized = a.newLabel();
                a.jcc(COND_b, lit_sized);
                a.mov(R::rdx, R::rcx);
                a.bind(lit_sized);
                // [OP_LIT][u32 len][bytes]
                a.mov(R::rax, (U64)OP_LIT);
                a.mov8(Mem::at(R::r14), R::rax);
                a.mov32(Mem::at(R::r14, 1), R::rdx);
                a.lea(R::rdi, Mem::at(R::r14, 5));
                a.mov(R::rsi, R::rbx);
                a.add(R::rsi, Mem::at(R::rsp, 32));
                a.push(R::rdx);
                a.call(lib.fn_memcpy);
                a.pop(R::rdx);
                a.lea(R::r14, Mem::idx(R::r14, R::rdx, 1, 5));
                a.add(Mem::at(R::rsp, 32), R::rdx);  // lit_start += n
                a.jmp(lit_loop);
                a.bind(lit_done);
            }
            a.bind(no_lit);
            // copy op
            a.mov(R::rax, (U64)OP_COPY);
            a.mov8(Mem::at(R::r14), R::rax);
            a.mov32(Mem::at(R::r14, 1), R::rbp);
            a.add(R::r14, 5);
            // pos += BLOCK; lit_start = pos
            a.add(R::r15, (S32)BLOCK);
            a.mov(Mem::at(R::rsp, 32), R::r15);
            // re-init rolling if another window fits
            a.mov(R::rax, R::r15);
            a.add(R::rax, (S32)BLOCK);
            a.cmp(R::rax, R::r12);
            a.jcc(COND_nbe, emit_tail);
            a.mov(R::rdi, R::rbx);
            a.add(R::rdi, R::r15);
            a.mov(R::rsi, (U64)BLOCK);
            a.call(fn_weak);
            a.mov(R::rcx, R::rax);
            a.and_(R::rax, 0xFFFF);
            a.mov(Mem::at(R::rsp, 0), R::rax);
            a.shr(R::rcx, 16);
            a.mov(Mem::at(R::rsp, 8), R::rcx);
            a.jmp(roll_outer);
        }

        // ---- no match: slide the window one byte ----
        a.bind(slide);
        // a' = (a - X[pos] + X[pos+BLOCK]) & 0xFFFF
        // b' = (b - BLOCK*X[pos] + a') & 0xFFFF
        a.movzx8(R::rcx, Mem::idx(R::rbx, R::r15));          // X[pos]
        a.mov(R::rax, R::r15);
        a.add(R::rax, (S32)BLOCK);
        a.movzx8(R::rdx, Mem::idx(R::rbx, R::rax));          // X[pos+K]
        a.mov(R::rax, Mem::at(R::rsp, 0));
        a.sub(R::rax, R::rcx);
        a.add(R::rax, R::rdx);
        a.and_(R::rax, 0xFFFF);
        a.mov(Mem::at(R::rsp, 0), R::rax);                   // a'
        a.mov(R::rdx, R::rcx);
        a.shl(R::rdx, 10);                                   // BLOCK * X
        a.mov(R::rcx, Mem::at(R::rsp, 8));
        a.sub(R::rcx, R::rdx);
        a.add(R::rcx, R::rax);
        a.and_(R::rcx, 0xFFFF);
        a.mov(Mem::at(R::rsp, 8), R::rcx);                   // b'
        a.inc(R::r15);
        a.jmp(roll_outer);
    }

    // ---- all-literal fallback ----
    a.bind(all_literal);
    a.mov(R::r15, R::r12);                   // pos = len
    // (lit_start stays 0; fall through to the tail emitter)

    // ---- emit trailing literal [lit_start, len) + OP_END ----
    a.bind(emit_tail);
    a.mov(R::r15, R::r12);                   // everything left
    {
        Label lit_loop = a.label();
        Label lit_done = a.newLabel();
        a.mov(R::rdx, R::r15);
        a.sub(R::rdx, Mem::at(R::rsp, 32));
        a.test(R::rdx, R::rdx);
        a.jcc(COND_e, lit_done);
        a.mov(R::rcx, (U64)MAX_PAYLOAD - 64);
        a.cmp(R::rdx, R::rcx);
        Label lit_sized = a.newLabel();
        a.jcc(COND_b, lit_sized);
        a.mov(R::rdx, R::rcx);
        a.bind(lit_sized);
        a.mov(R::rax, (U64)OP_LIT);
        a.mov8(Mem::at(R::r14), R::rax);
        a.mov32(Mem::at(R::r14, 1), R::rdx);
        a.lea(R::rdi, Mem::at(R::r14, 5));
        a.mov(R::rsi, R::rbx);
        a.add(R::rsi, Mem::at(R::rsp, 32));
        a.push(R::rdx);
        a.call(lib.fn_memcpy);
        a.pop(R::rdx);
        a.lea(R::r14, Mem::idx(R::r14, R::rdx, 1, 5));
        a.add(Mem::at(R::rsp, 32), R::rdx);
        a.jmp(lit_loop);
        a.bind(lit_done);
    }
    a.bind(build_done);
    a.mov(R::rax, (U64)OP_END);
    a.mov8(Mem::at(R::r14), R::rax);
    a.inc(R::r14);
    a.mov(R::rax, R::r14);
    a.sub(R::rax, Mem::at(R::rsp, 40));      // bytes written
    a.add(R::rsp, 48);
    a.pop(R::r15);
    a.pop(R::r14);
    a.pop(R::r13);
    a.pop(R::r12);
    a.pop(R::rbp);
    a.pop(R::rbx);
    a.ret();
}

Label
RsyncEmitter::emitClient()
{
    Label delta_fn{};
    emitClientDelta(delta_fn);

    Label entry = a.label();

    // ---- phase b: ssh connect (handshake + key exchange burn) ----
    a.mov(R::rdi, (U64)PHASE_B_SSH_CONNECT);
    a.call(fn_marker);
    a.movImm64(R::rax, 0x4F4C4548ULL);       // "HELO"
    a.push(R::rax);
    a.mov(R::rdi, P_C2T);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    a.call(fn_send_frame);
    a.pop(R::rax);
    a.mov(R::rdi, (U64)BURN_ITERS);
    a.call(fn_burn);
    a.mov(R::rdi, P_T2C);
    a.movImm64(R::rsi, BUF_CLIENT);
    a.call(fn_recv_frame);                   // EHLO reply

    // ---- phase c: send the client file list ----
    a.mov(R::rdi, (U64)PHASE_C_CLIENT_LIST);
    a.call(fn_marker);
    a.movImm64(R::rbx, NEW_VA);
    a.mov(R::r12, Mem::at(R::rbx));          // file count
    // count frame
    a.push(R::r12);
    a.mov(R::rdi, P_C2T);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    a.call(fn_send_frame);
    a.pop(R::rax);
    // per-file [name_hash, length]
    a.mov(R::r13, 0);
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        a.mov(R::rax, R::r13);
        a.imul(R::rax, R::rax, 24);
        a.lea(R::rbp, Mem::idx(R::rbx, R::rax, 1, 8));  // header entry
        a.movImm64(R::r14, BUF_CLIENT);
        a.mov(R::rax, Mem::at(R::rbp, 0));
        a.mov(Mem::at(R::r14, 0), R::rax);
        a.mov(R::rax, Mem::at(R::rbp, 16));
        a.mov(Mem::at(R::r14, 8), R::rax);
        a.mov(R::rdi, P_C2T);
        a.mov(R::rsi, R::r14);
        a.mov(R::rdx, 16);
        a.call(fn_send_frame);
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- phase d: receive the server's block checksums ----
    a.mov(R::rdi, (U64)PHASE_D_SERVER_LIST);
    a.call(fn_marker);
    a.mov(R::r13, 0);                        // file index
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        // receive into the blocklist tail; record its offset
        a.movImm64(R::rax, V_BLTAIL);
        a.mov(R::rbp, Mem::at(R::rax));
        a.movImm64(R::rsi, BLOCKLIST);
        a.add(R::rsi, R::rbp);
        // FILETAB[i] = BLOCKLIST + tail
        a.movImm64(R::rax, FILETAB);
        a.mov(Mem::idx(R::rax, R::r13, 8), R::rsi);
        a.mov(R::rdi, P_T2C);
        a.call(fn_recv_frame);
        a.movImm64(R::rcx, V_BLTAIL);
        a.add(Mem::at(R::rcx), R::rax);      // tail += frame len
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- phase e: compute all deltas (stored, then transmitted) ----
    a.mov(R::rdi, (U64)PHASE_E_DELTAS);
    a.call(fn_marker);
    a.mov(R::r13, 0);
    a.movImm64(R::r15, DELTA);               // delta region cursor
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        // new file i: data ptr + len
        a.mov(R::rax, R::r13);
        a.imul(R::rax, R::rax, 24);
        a.lea(R::rbp, Mem::idx(R::rbx, R::rax, 1, 8));
        a.mov(R::rdi, Mem::at(R::rbp, 8));   // offset
        a.add(R::rdi, R::rbx);
        a.mov(R::rsi, Mem::at(R::rbp, 16));  // length
        // basis: FILETAB[i] if name hashes agree
        a.movImm64(R::rax, FILETAB);
        a.mov(R::rdx, Mem::idx(R::rax, R::r13, 8));
        a.mov(R::rax, Mem::at(R::rdx));      // basis name_hash
        a.cmp(R::rax, Mem::at(R::rbp, 0));
        Label basis_ok = a.newLabel();
        a.jcc(COND_e, basis_ok);
        a.mov(R::rdx, 0);                    // no basis: all literal
        a.bind(basis_ok);
        a.mov(R::rcx, R::r15);
        a.call(delta_fn);                    // rax = stream bytes
        // DELTATAB[i] = {offset(cursor), len}
        a.movImm64(R::rcx, DELTATAB);
        a.mov(R::rdx, R::r13);
        a.shl(R::rdx, 4);
        a.add(R::rcx, R::rdx);
        a.mov(Mem::at(R::rcx, 0), R::r15);
        a.mov(Mem::at(R::rcx, 8), R::rax);
        a.add(R::r15, R::rax);
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- phase f: transmit header + op stream per file ----
    a.mov(R::rdi, (U64)PHASE_F_TRANSMIT);
    a.call(fn_marker);
    a.mov(R::r13, 0);
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        // header frame: [name_hash][newlen][fnv(new data)]
        a.mov(R::rax, R::r13);
        a.imul(R::rax, R::rax, 24);
        a.lea(R::rbp, Mem::idx(R::rbx, R::rax, 1, 8));
        a.movImm64(R::r14, BUF_CLIENT);
        a.mov(R::rax, Mem::at(R::rbp, 0));
        a.mov(Mem::at(R::r14, 0), R::rax);
        a.mov(R::rax, Mem::at(R::rbp, 16));
        a.mov(Mem::at(R::r14, 8), R::rax);
        a.mov(R::rdi, Mem::at(R::rbp, 8));
        a.add(R::rdi, R::rbx);
        a.mov(R::rsi, Mem::at(R::rbp, 16));
        a.call(fn_fnv);
        a.mov(Mem::at(R::r14, 16), R::rax);
        a.mov(R::rdi, P_C2T);
        a.mov(R::rsi, R::r14);
        a.mov(R::rdx, 24);
        a.call(fn_send_frame);
        // op stream frames: walk ops, pack frames at op boundaries
        a.movImm64(R::rcx, DELTATAB);
        a.mov(R::rdx, R::r13);
        a.shl(R::rdx, 4);
        a.add(R::rcx, R::rdx);
        a.mov(R::r14, Mem::at(R::rcx, 0));   // stream ptr
        a.mov(R::r15, Mem::at(R::rcx, 8));   // bytes remaining
        {
            Label frames = a.label();
            Label frames_done = a.newLabel();
            a.test(R::r15, R::r15);
            a.jcc(COND_e, frames_done);
            // greedily take whole ops up to MAX_PAYLOAD
            a.mov(R::rbp, 0);                // chunk bytes
            Label scan = a.label();
            Label flush = a.newLabel();
            a.cmp(R::rbp, R::r15);
            a.jcc(COND_e, flush);            // stream exhausted
            // op size at r14+rbp
            a.lea(R::rax, Mem::idx(R::r14, R::rbp, 1));
            a.movzx8(R::rcx, Mem::at(R::rax));
            a.mov(R::rdx, 1);                // OP_END size
            a.cmp(R::rcx, (S32)OP_COPY);
            Label sized = a.newLabel();
            Label is_lit = a.newLabel();
            a.jcc(COND_ne, is_lit);
            a.mov(R::rdx, 5);
            a.jmp(sized);
            a.bind(is_lit);
            a.cmp(R::rcx, (S32)OP_LIT);
            a.jcc(COND_ne, sized);           // OP_END
            a.mov32(R::rdx, Mem::at(R::rax, 1));
            a.add(R::rdx, 5);
            a.bind(sized);
            // would it overflow the payload?
            a.mov(R::rax, R::rbp);
            a.add(R::rax, R::rdx);
            a.cmp(R::rax, (S32)MAX_PAYLOAD);
            a.jcc(COND_nbe, flush);
            a.mov(R::rbp, R::rax);
            a.jmp(scan);
            a.bind(flush);
            a.mov(R::rdi, P_C2T);
            a.mov(R::rsi, R::r14);
            a.mov(R::rdx, R::rbp);
            a.call(fn_send_frame);
            a.add(R::r14, R::rbp);
            a.sub(R::r15, R::rbp);
            a.jmp(frames);
            a.bind(frames_done);
        }
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- end of stream; client done ----
    a.mov(R::rdi, P_C2T);
    a.movImm64(R::rsi, BUF_CLIENT);
    a.mov(R::rdx, 0);
    a.call(fn_send_frame);
    a.mov(R::rdi, 0);
    lib.syscall(GSYS_exit);
    return entry;
}

// ---------------------------------------------------------------------
// Server (receiver): checksums + reconstruction + verification
// ---------------------------------------------------------------------

Label
RsyncEmitter::emitServer()
{
    Label entry = a.label();

    // Handshake reply.
    a.mov(R::rdi, P_D2S);
    a.movImm64(R::rsi, BUF_SERVER);
    a.call(fn_recv_frame);                   // HELO
    a.mov(R::rdi, (U64)BURN_ITERS);
    a.call(fn_burn);
    a.movImm64(R::rax, 0x4F4C4845ULL);       // "EHLO"
    a.push(R::rax);
    a.mov(R::rdi, P_S2D);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    a.call(fn_send_frame);
    a.pop(R::rax);

    // Client file list: count, then per-file entries (recorded only
    // as a structural sanity check; name hashes align by index).
    a.mov(R::rdi, P_D2S);
    a.movImm64(R::rsi, BUF_SERVER);
    a.call(fn_recv_frame);
    a.movImm64(R::rax, BUF_SERVER);
    a.mov(R::r12, Mem::at(R::rax));          // count
    a.mov(R::r13, 0);
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        a.mov(R::rdi, P_D2S);
        a.movImm64(R::rsi, BUF_SERVER);
        a.call(fn_recv_frame);
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- phase d: compute + send per-file block checksums ----
    a.movImm64(R::rbx, OLD_VA);
    a.mov(R::r13, 0);
    {
        Label loop = a.label();
        Label done = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, done);
        a.mov(R::rax, R::r13);
        a.imul(R::rax, R::rax, 24);
        a.lea(R::rbp, Mem::idx(R::rbx, R::rax, 1, 8));  // old header
        // frame: [name_hash][nblocks][ (weak u64)(strong u64) ... ]
        a.movImm64(R::r14, BUF_SERVER);
        a.mov(R::rax, Mem::at(R::rbp, 0));
        a.mov(Mem::at(R::r14, 0), R::rax);
        a.mov(R::r15, Mem::at(R::rbp, 16));  // old length
        a.shr(R::r15, 10);                   // full 1K blocks
        // Cap so the frame fits the payload limit.
        a.mov(R::rax, (U64)((MAX_PAYLOAD - 16) / 16));
        a.cmp(R::r15, R::rax);
        Label capped = a.newLabel();
        a.jcc(COND_b, capped);
        a.mov(R::r15, R::rax);
        a.bind(capped);
        a.mov(Mem::at(R::r14, 8), R::r15);
        // per block
        a.mov(R::rcx, 0);
        {
            Label bloop = a.label();
            Label bdone = a.newLabel();
            a.cmp(R::rcx, R::r15);
            a.jcc(COND_e, bdone);
            a.push(R::rcx);
            // data ptr = old base + file offset + b*1024
            a.mov(R::rdi, Mem::at(R::rbp, 8));
            a.add(R::rdi, R::rbx);
            a.mov(R::rax, R::rcx);
            a.shl(R::rax, 10);
            a.add(R::rdi, R::rax);
            a.push(R::rdi);
            a.mov(R::rsi, (U64)BLOCK);
            a.call(fn_weak);
            a.mov(R::rdx, R::rax);
            a.pop(R::rdi)
                ;
            a.mov(R::rsi, (U64)BLOCK);
            a.push(R::rdx);
            a.call(fn_fnv);
            a.pop(R::rdx);
            a.pop(R::rcx);
            // store at buf + 16 + b*16
            a.mov(R::rsi, R::rcx);
            a.shl(R::rsi, 4);
            a.lea(R::rsi, Mem::idx(R::r14, R::rsi, 1, 16));
            a.mov(Mem::at(R::rsi, 0), R::rdx);   // weak
            a.mov(Mem::at(R::rsi, 8), R::rax);   // strong
            a.inc(R::rcx);
            a.jmp(bloop);
            a.bind(bdone);
        }
        a.mov(R::rdi, P_S2D);
        a.mov(R::rsi, R::r14);
        a.mov(R::rdx, R::r15);
        a.shl(R::rdx, 4);
        a.add(R::rdx, 16);
        a.call(fn_send_frame);
        a.inc(R::r13);
        a.jmp(loop);
        a.bind(done);
    }

    // ---- reconstruction + verification ----
    a.mov(R::r13, 0);                        // file index
    {
        Label floop = a.label();
        Label fdone = a.newLabel();
        a.cmp(R::r13, R::r12);
        a.jcc(COND_e, fdone);
        // header frame: [name_hash][newlen][expected fnv]
        a.mov(R::rdi, P_D2S);
        a.movImm64(R::rsi, BUF_SERVER);
        a.call(fn_recv_frame);
        a.movImm64(R::rax, BUF_SERVER);
        a.mov(R::r14, Mem::at(R::rax, 8));   // newlen
        a.mov(R::r15, Mem::at(R::rax, 16));  // expected fnv
        a.push(R::r15);
        a.push(R::r14);
        // old file base (for copy ops)
        a.mov(R::rax, R::r13);
        a.imul(R::rax, R::rax, 24);
        a.lea(R::rbp, Mem::idx(R::rbx, R::rax, 1, 8));
        a.mov(R::r15, Mem::at(R::rbp, 8));
        a.add(R::r15, R::rbx);               // r15 = old data ptr
        // out base for this file
        a.movImm64(R::rax, V_OUTPTR);
        a.mov(R::r14, Mem::at(R::rax));      // r14 = out cursor
        a.push(R::r14);                      // out base
        // op frames (frames are packed at op boundaries; when the
        // cursor reaches the frame length, fetch the next frame)
        {
            Label frames = a.label();
            Label file_done = a.newLabel();
            a.mov(R::rdi, P_D2S);
            a.movImm64(R::rsi, BUF_SERVER);
            a.call(fn_recv_frame);
            a.push(R::rax);                  // frame length
            a.mov(R::rbp, 0);                // offset in frame
            Label ops = a.label();
            a.cmp(R::rbp, Mem::at(R::rsp));
            Label more = a.newLabel();
            a.jcc(COND_b, more);
            a.add(R::rsp, 8);                // frame exhausted
            a.jmp(frames);
            a.bind(more);
            a.movImm64(R::rax, BUF_SERVER);
            a.add(R::rax, R::rbp);
            a.movzx8(R::rcx, Mem::at(R::rax));
            a.cmp(R::rcx, (S32)OP_END);
            a.jcc(COND_e, file_done);
            a.cmp(R::rcx, (S32)OP_COPY);
            Label lit = a.newLabel();
            a.jcc(COND_ne, lit);
            // copy 1024 bytes of old block b
            a.mov32(R::rcx, Mem::at(R::rax, 1));
            a.shl(R::rcx, 10);
            a.mov(R::rsi, R::r15);
            a.add(R::rsi, R::rcx);
            a.mov(R::rdi, R::r14);
            a.mov(R::rdx, (U64)BLOCK);
            a.call(lib.fn_memcpy);
            a.add(R::r14, (S32)BLOCK);
            a.add(R::rbp, 5);
            a.jmp(ops);
            a.bind(lit);
            // literal: [u32 len][bytes]
            a.mov32(R::rdx, Mem::at(R::rax, 1));
            a.lea(R::rsi, Mem::at(R::rax, 5));
            a.mov(R::rdi, R::r14);
            a.push(R::rdx);
            a.call(lib.fn_memcpy);
            a.pop(R::rdx);
            a.add(R::r14, R::rdx);
            a.lea(R::rbp, Mem::idx(R::rbp, R::rdx, 1, 5));
            a.jmp(ops);
            a.bind(file_done);
            a.add(R::rsp, 8);                // drop the frame length
        }
        // verify: length + fnv (logging into the debug table)
        a.pop(R::rsi);                       // out base
        a.pop(R::rcx);                       // expected newlen
        a.pop(R::rdx);                       // expected fnv
        a.mov(R::rdi, R::r14);
        a.sub(R::rdi, R::rsi);               // reconstructed length
        // DEBUGTAB[i] = {newlen, reconlen, expected fnv, computed fnv}
        a.movImm64(R::rax, DEBUGTAB);
        a.mov(R::r8, R::r13);
        a.shl(R::r8, 5);
        a.add(R::r8, R::rax);
        a.mov(Mem::at(R::r8, 0), R::rcx);
        a.mov(Mem::at(R::r8, 8), R::rdi);
        a.mov(Mem::at(R::r8, 16), R::rdx);
        Label bad = a.newLabel(), good = a.newLabel();
        a.cmp(R::rdi, R::rcx);
        a.jcc(COND_ne, bad);
        a.push(R::rdx);
        a.push(R::r8);
        a.mov(R::rdi, R::rsi);
        a.mov(R::rsi, R::rcx);
        a.call(fn_fnv);
        a.pop(R::r8);
        a.pop(R::rdx);
        a.mov(Mem::at(R::r8, 24), R::rax);
        a.cmp(R::rax, R::rdx);
        a.jcc(COND_e, good);
        a.bind(bad);
        a.movImm64(R::rax, V_MISMATCH);
        a.inc(Mem::at(R::rax));
        a.bind(good);
        // advance the shared out cursor
        a.movImm64(R::rax, V_OUTPTR);
        a.mov(Mem::at(R::rax), R::r14);
        a.inc(R::r13);
        a.jmp(floop);
        a.bind(fdone);
    }

    // consume the end-of-stream frame, then report the result.
    a.mov(R::rdi, P_D2S);
    a.movImm64(R::rsi, BUF_SERVER);
    a.call(fn_recv_frame);
    a.movImm64(R::rax, V_MISMATCH);
    a.mov(R::rax, Mem::at(R::rax));
    a.push(R::rax);
    a.mov(R::rdi, P_RES);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    a.call(lib.fn_write_all);        // raw 8-byte verdict (unframed)
    a.pop(R::rax);
    a.mov(R::rdi, 0);
    lib.syscall(GSYS_exit);
    return entry;
}

// ---------------------------------------------------------------------
// Init / launcher
// ---------------------------------------------------------------------

void
RsyncEmitter::emitInit(Label l_client, Label l_sshc_tx, Label l_sshc_rx,
                       Label l_sshd_rx, Label l_sshd_tx, Label l_server)
{
    // phase a: page in both archives from the virtual disk.
    a.mov(R::rdi, (U64)PHASE_A_STARTUP);
    a.call(fn_marker);
    a.mov(R::rdi, 0);
    a.mov(R::rsi, old_sectors);
    a.movImm64(R::rdx, OLD_VA);
    lib.syscall(GSYS_disk_read);
    a.mov(R::rdi, old_sectors);
    a.mov(R::rsi, new_sectors);
    a.movImm64(R::rdx, NEW_VA);
    lib.syscall(GSYS_disk_read);

    // Initialize the reconstruction cursor.
    a.movImm64(R::rax, V_OUTPTR);
    a.movImm64(R::rcx, OUT_VA);
    a.mov(Mem::at(R::rax), R::rcx);

    // Spawn the pipeline: client, 4 ssh relays, server.
    for (Label entry : {l_client, l_sshc_tx, l_sshc_rx, l_sshd_rx,
                        l_sshd_tx, l_server}) {
        a.movLabel(R::rdi, entry);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
    }

    // Await the server's verdict.
    a.sub(R::rsp, 16);
    a.mov(R::rdi, P_RES);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    a.call(lib.fn_read_exact);
    a.mov(R::rbx, Mem::at(R::rsp));
    a.add(R::rsp, 16);

    // phase g: shutdown wait, then exit with the mismatch count.
    a.mov(R::rdi, (U64)PHASE_G_SHUTDOWN);
    a.call(fn_marker);
    a.mov(R::rdi, 2);
    lib.syscall(GSYS_sleep);
    a.mov(R::rdi, R::rbx);
    lib.syscall(GSYS_exit);
}

}  // namespace

// ---------------------------------------------------------------------
// RsyncBench: host-side assembly of the whole benchmark
// ---------------------------------------------------------------------

RsyncBench::RsyncBench(const SimConfig &config, const FileSetParams &files)
    : files_(generateFileSet(files))
{
    SimConfig cfg = config;
    cfg.guest_mem_bytes = std::max<U64>(cfg.guest_mem_bytes, 96ULL << 20);
    machine_ = std::make_unique<Machine>(cfg);
    builder_ = std::make_unique<KernelBuilder>(
        machine_->addressSpace(), machine_->vcpu(0),
        machine_->timerPeriodCycles());
    builder_->setUserDataBytes(0x2000000);   // 32 MB: archives + meta

    if (files_.old_archive.size() > 0x800000
        || files_.new_archive.size() > 0x400000)
        fatal("rsync file set too large for the guest layout "
              "(delta region bounds the new archive at 4 MB)");

    // Pack the disk image: old archive at sector 0, new following.
    old_sectors = alignUp(files_.old_archive.size(), DISK_SECTOR_BYTES)
                  / DISK_SECTOR_BYTES;
    new_sectors = alignUp(files_.new_archive.size(), DISK_SECTOR_BYTES)
                  / DISK_SECTOR_BYTES;
    std::vector<U8> disk((old_sectors + new_sectors) * DISK_SECTOR_BYTES,
                         0);
    std::copy(files_.old_archive.begin(), files_.old_archive.end(),
              disk.begin());
    std::copy(files_.new_archive.begin(), files_.new_archive.end(),
              disk.begin() + old_sectors * DISK_SECTOR_BYTES);
    machine_->disk().setImage(std::move(disk));

    emitGuest();
    machine_->finalizeCores();

    // Host-side initialization of the workload variables: matching
    // cipher seeds for each tunnel direction, zeroed counters.
    Context kctx;
    kctx.cr3 = builder_->taskCr3(0);
    kctx.kernel_mode = true;
    AddressSpace &as = machine_->addressSpace();
    auto store = [&](U64 va, U64 v) {
        GuestAccess acc = guestWrite(as, kctx, GuestVirt(va), 8, v);
        ptl_assert(acc.ok());
    };
    store(V_KEY_C2S_TX, 0x5E55C0DE5EEDULL);
    store(V_KEY_C2S_RX, 0x5E55C0DE5EEDULL);
    store(V_KEY_S2C_TX, 0xD0D0CACA2222ULL);
    store(V_KEY_S2C_RX, 0xD0D0CACA2222ULL);
    store(V_VERSION, 0);
    store(V_MISMATCH, 0);
    store(V_OUTPTR, OUT_VA);
    store(V_BLTAIL, 0);
}

RsyncBench::~RsyncBench() = default;

void
RsyncBench::emitGuest()
{
    Assembler &ua = builder_->userAsm();
    GuestLib lib(ua);
    Label lib_skip = ua.newLabel();
    ua.jmp(lib_skip);
    lib.emitRuntime();
    ua.bind(lib_skip);
    Label main_skip = ua.newLabel();
    ua.jmp(main_skip);
    RsyncEmitter emitter(ua, lib);
    // emit() internally jumps over the bodies and binds init last.
    RsyncEmitter::Entries entries = emitter.emit(old_sectors, new_sectors);
    ua.bind(main_skip);
    // Jump from the image entry to init.
    Label boot = ua.label();
    (void)boot;
    ua.movImm64(R::rax, entries.init);
    ua.jmp(R::rax);
    builder_->setInitTask(ua.labelVa(main_skip), 0);
    builder_->build();
}

RsyncBench::Result
RsyncBench::run(U64 max_cycles)
{
    Result out;
    Machine::RunResult r = machine_->run(max_cycles);
    out.shutdown = r.shutdown;
    out.mismatches = r.exit_code;
    out.cycles = machine_->timeKeeper().cycle().raw();
    return out;
}

}  // namespace ptl
