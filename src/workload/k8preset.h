/**
 * @file
 * The two Table 1 trials (Section 5).
 *
 * The paper compares a real 2.2 GHz Athlon 64 (via its hardware
 * performance counters) against PTLsim configured like a K8. The
 * silicon is substituted here by a *reference-machine trial*: the same
 * guest workload executed on the fast functional engine, instrumented
 * with structure models at real-K8 fidelity — the two-level TLB
 * (32 + 1024 entries, plus the PDE cache), the hardware prefetcher,
 * and K8 macro-op ("triad") accounting — while the simulation trial
 * runs the full out-of-order pipeline with PTLsim's model structures
 * (single 32-entry TLB, no prefetch, discrete uops). Every %diff row
 * of Table 1 then emerges from those structural differences.
 */

#ifndef PTLSIM_WORKLOAD_K8PRESET_H_
#define PTLSIM_WORKLOAD_K8PRESET_H_

#include <memory>
#include <string>

#include "branch/predictor.h"
#include "workload/rsyncbench.h"

namespace ptl {

/** The quantities Table 1 reports (raw counts; rates derived). */
struct Table1Metrics
{
    U64 cycles = 0;
    U64 insns = 0;
    U64 uops = 0;
    U64 l1d_misses = 0;
    U64 l1d_accesses = 0;
    U64 branches = 0;
    U64 mispredicts = 0;
    U64 dtlb_misses = 0;

    double l1dMissPct() const
    {
        return l1d_accesses ? 100.0 * l1d_misses / l1d_accesses : 0;
    }
    double mispredictPct() const
    {
        return branches ? 100.0 * mispredicts / branches : 0;
    }
    double dtlbMissPct() const
    {
        return l1d_accesses ? 100.0 * dtlb_misses / l1d_accesses : 0;
    }
};

/** The simulation trial: full OOO pipeline, K8-configured (the paper's
 *  "PTLsim" column). */
struct SimTrial
{
    std::unique_ptr<RsyncBench> bench;
    Table1Metrics metrics() const;
    RsyncBench::Result run(U64 max_cycles = 4'000'000'000ULL);
};

std::unique_ptr<SimTrial> makeSimTrial(const FileSetParams &files);

/** The reference-machine trial (the paper's "Native K8" column). */
struct NativeTrial
{
    std::unique_ptr<RsyncBench> bench;
    std::unique_ptr<MemoryHierarchy> hierarchy;
    std::unique_ptr<BranchPredictor> predictor;
    Table1Metrics metrics() const;
    RsyncBench::Result run(U64 max_cycles = 4'000'000'000ULL);
};

std::unique_ptr<NativeTrial> makeNativeTrial(const FileSetParams &files);

}  // namespace ptl

#endif  // PTLSIM_WORKLOAD_K8PRESET_H_
