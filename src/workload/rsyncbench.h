/**
 * @file
 * The rsync-over-ssh full-system benchmark (Section 5).
 *
 * The paper's evaluation workload: "rsync is a client server file
 * transfer system used to maintain two large sets of files by finding
 * and transferring only the differences", piped through an encrypted
 * ssh tunnel over the local TCP/IP stack, four processes in one
 * domain. This module reproduces that structure in guest x86-64:
 *
 *   task 0  init/launcher: loads both archives from the virtual disk
 *           (phase a), spawns the others, awaits the result (phase g)
 *   task 1  rsync client (sender, has the NEW files): handshake
 *           (phase b), file list (phase c), receives the server's
 *           block checksums (phase d), runs the real rsync rolling-
 *           checksum delta algorithm (phase e), transmits deltas
 *           (phase f)
 *   tasks 2-5  the ssh tunnel: two simplex relay pairs that move
 *           length-prefixed frames between kernel pipes and the
 *           latency-modeled network device, applying a keystream
 *           cipher to every payload byte (the "encryption")
 *   task 6  rsync server (receiver, has the OLD files): computes
 *           per-block checksums (weak rolling + strong FNV), then
 *           reconstructs every file from copy/literal delta ops and
 *           verifies a whole-file checksum
 *
 * The run self-validates: the server counts per-file checksum
 * mismatches and the domain's exit code is that count (0 = the delta
 * transfer reproduced every file bit-exactly). Phase boundaries are
 * announced with ptlcall markers so the Figure 2/3 time-lapse plots
 * can be annotated.
 *
 * Substitutions vs. the paper (see DESIGN.md): gzip compression is
 * omitted (the cipher provides the per-byte userspace compute), and
 * the file set is scaled down so the run simulates in minutes.
 */

#ifndef PTLSIM_WORKLOAD_RSYNCBENCH_H_
#define PTLSIM_WORKLOAD_RSYNCBENCH_H_

#include <memory>

#include "kernel/guestkernel.h"
#include "sys/machine.h"
#include "workload/fileset.h"

namespace ptl {

/** Phase marker ids (ptlcall PTLCALL_MARKER arguments). */
enum RsyncPhase : U64 {
    PHASE_A_STARTUP = 0xA,
    PHASE_B_SSH_CONNECT = 0xB,
    PHASE_C_CLIENT_LIST = 0xC,
    PHASE_D_SERVER_LIST = 0xD,
    PHASE_E_DELTAS = 0xE,
    PHASE_F_TRANSMIT = 0xF,
    PHASE_G_SHUTDOWN = 0x6,
};

class RsyncBench
{
  public:
    /** Build the machine, kernel and guest programs. */
    RsyncBench(const SimConfig &config, const FileSetParams &files);
    ~RsyncBench();

    Machine &machine() { return *machine_; }

    struct Result
    {
        bool shutdown = false;
        U64 mismatches = ~0ULL;  ///< exit code; 0 = bit-exact transfer
        U64 cycles = 0;
    };

    /** Run to completion (or `max_cycles`). */
    Result run(U64 max_cycles = 4'000'000'000ULL);

    const FileSet &fileSet() const { return files_; }

  private:
    void emitGuest();

    FileSet files_;
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<KernelBuilder> builder_;
    U64 old_sectors = 0;
    U64 new_sectors = 0;
};

}  // namespace ptl

#endif  // PTLSIM_WORKLOAD_RSYNCBENCH_H_
