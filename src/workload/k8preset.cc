#include "workload/k8preset.h"

#include "lib/logging.h"

namespace ptl {

namespace {

Table1Metrics
collect(Machine &machine, const std::string &core_prefix,
        const std::string &mem_prefix, bool k8_accounting)
{
    StatsTree &s = machine.stats();
    Table1Metrics m;
    // The reference trial's cycle count is the analytic timing model
    // (the stand-in for silicon's cycle counter); the sim trial's is
    // the pipeline's own clock.
    m.cycles = k8_accounting
                   ? s.get(core_prefix + "profile/modeled_cycles")
                   : machine.timeKeeper().cycle().raw();
    m.insns = s.get(core_prefix + "commit/insns");
    m.uops = s.get(core_prefix
                   + (k8_accounting ? "commit/k8ops" : "commit/uops"));
    m.l1d_misses = s.get(mem_prefix + "dcache/misses");
    m.l1d_accesses = s.get(mem_prefix + "dcache/accesses");
    m.branches = s.get(core_prefix + "branches/cond");
    m.mispredicts = s.get(core_prefix + "branches/mispredicted");
    m.dtlb_misses = s.get(mem_prefix + "dtlb/misses");
    return m;
}

}  // namespace

Table1Metrics
SimTrial::metrics() const
{
    return collect(bench->machine(), "core0/", "core0/", false);
}

RsyncBench::Result
SimTrial::run(U64 max_cycles)
{
    return bench->run(max_cycles);
}

std::unique_ptr<SimTrial>
makeSimTrial(const FileSetParams &files)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    auto trial = std::make_unique<SimTrial>();
    trial->bench = std::make_unique<RsyncBench>(cfg, files);
    return trial;
}

Table1Metrics
NativeTrial::metrics() const
{
    return collect(bench->machine(), "native/vcpu0/", "native/vcpu0/",
                   true);
}

RsyncBench::Result
NativeTrial::run(U64 max_cycles)
{
    return bench->run(max_cycles);
}

std::unique_ptr<NativeTrial>
makeNativeTrial(const FileSetParams &files)
{
    // Guest-visible machine identical to the sim trial; the profiling
    // structures attached to the functional engine model *real* K8
    // silicon: two-level TLB + PDE cache + hardware prefetcher.
    SimConfig cfg = SimConfig::preset("k8-native");
    cfg.core = "seq";        // unused: the run stays in native mode
    auto trial = std::make_unique<NativeTrial>();
    trial->bench = std::make_unique<RsyncBench>(cfg, files);
    Machine &machine = trial->bench->machine();
    trial->hierarchy = std::make_unique<MemoryHierarchy>(
        cfg, machine.addressSpace(), machine.stats(), "native/vcpu0/");
    trial->predictor = std::make_unique<BranchPredictor>(
        cfg, machine.stats(), "native/vcpu0/");
    machine.nativeEngine(0).attachProfiling(trial->hierarchy.get(),
                                            trial->predictor.get());
    machine.registerExtraTlbFlush(trial->hierarchy.get());
    machine.setMode(Machine::Mode::Native);
    return trial;
}

}  // namespace ptl
