#include "workload/fileset.h"

#include <cstring>

#include "lib/logging.h"
#include "lib/rng.h"

namespace ptl {

U64
fnv1a(const U8 *data, size_t n)
{
    U64 h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < n; i++) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

const char *const kWords[] = {
    "the", "quick", "cycle", "accurate", "full", "system", "x86",
    "simulator", "pipeline", "cache", "branch", "predictor", "uop",
    "commit", "fetch", "rename", "issue", "replay", "hypervisor",
    "domain", "kernel", "virtual", "memory", "physical", "address",
    "translation", "lookaside", "buffer", "interrupt", "event",
};
constexpr int kWordCount = (int)(sizeof(kWords) / sizeof(kWords[0]));

/** Append pseudo-text until `bytes` of content exist. */
void
appendText(std::vector<U8> &out, U64 bytes, Rng &rng)
{
    U64 start = out.size();
    int column = 0;
    while (out.size() - start < bytes) {
        const char *word = kWords[rng.below(kWordCount)];
        size_t len = std::strlen(word);
        out.insert(out.end(), word, word + len);
        column += (int)len + 1;
        if (column > 68) {
            out.push_back('\n');
            column = 0;
        } else {
            out.push_back(' ');
        }
    }
    out.resize(start + bytes);
}

struct FileBlob
{
    U64 name_hash;
    std::vector<U8> data;
};

std::vector<U8>
packArchive(const std::vector<FileBlob> &files)
{
    std::vector<U8> out;
    auto put64 = [&](U64 v) {
        for (int i = 0; i < 8; i++)
            out.push_back((U8)(v >> (i * 8)));
    };
    put64((U64)files.size());
    U64 header_bytes = 8 + files.size() * 24;
    U64 offset = header_bytes;
    for (const FileBlob &f : files) {
        put64(f.name_hash);
        put64(offset);
        put64(f.data.size());
        offset += f.data.size();
    }
    for (const FileBlob &f : files)
        out.insert(out.end(), f.data.begin(), f.data.end());
    return out;
}

}  // namespace

FileSet
generateFileSet(const FileSetParams &params)
{
    Rng rng(params.seed ^ 0xF11E5E7ULL);
    FileSet out;
    out.file_count = params.file_count;

    std::vector<FileBlob> old_files, new_files;
    for (int i = 0; i < params.file_count; i++) {
        FileBlob f;
        f.name_hash = fnv1a((const U8 *)&i, sizeof(i)) ^ params.seed;
        // Size: mean +- 75%, clamped.
        U64 bytes = params.mean_file_bytes / 4
                    + rng.below(params.mean_file_bytes * 3 / 2);
        bytes = std::min(std::max<U64>(bytes, 256), params.max_file_bytes);
        appendText(f.data, bytes, rng);
        old_files.push_back(f);

        FileBlob g = f;  // the "new" copy starts identical
        if (!rng.chance((U64)params.unchanged_pct, 100)) {
            // Edit: overwrite a few scattered spans and possibly
            // insert a fresh span (shifting alignment, which is what
            // exercises the rolling-checksum matcher).
            int edits = 1 + (int)rng.below(4);
            for (int e = 0; e < edits; e++) {
                U64 span = 16 + rng.below(
                    std::max<U64>(g.data.size() * params.edit_pct / 100
                                      / (U64)edits,
                                  17));
                U64 pos = rng.below(std::max<U64>(g.data.size() - 1, 1));
                span = std::min(span, (U64)g.data.size() - pos);
                Rng edit_rng(rng.next());
                std::vector<U8> repl;
                appendText(repl, span, edit_rng);
                std::copy(repl.begin(), repl.end(), g.data.begin() + pos);
            }
            if (rng.chance(1, 3)) {
                std::vector<U8> inserted;
                Rng ins_rng(rng.next());
                appendText(inserted, 64 + rng.below(512), ins_rng);
                U64 pos = rng.below((U64)g.data.size());
                g.data.insert(g.data.begin() + pos, inserted.begin(),
                              inserted.end());
            }
        }
        new_files.push_back(std::move(g));
    }

    out.old_archive = packArchive(old_files);
    out.new_archive = packArchive(new_files);
    for (const FileBlob &f : old_files)
        out.total_old_bytes += f.data.size();
    for (const FileBlob &f : new_files)
        out.total_new_bytes += f.data.size();
    return out;
}

ArchiveView
ArchiveView::parse(const std::vector<U8> &archive)
{
    ArchiveView view;
    view.raw = &archive;
    auto get64 = [&](U64 off) {
        U64 v = 0;
        for (int i = 0; i < 8; i++)
            v |= (U64)archive[off + i] << (i * 8);
        return v;
    };
    U64 count = get64(0);
    for (U64 i = 0; i < count; i++) {
        U64 base = 8 + i * 24;
        view.entries.push_back(
            {get64(base), get64(base + 8), get64(base + 16)});
    }
    return view;
}

}  // namespace ptl
