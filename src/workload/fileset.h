/**
 * @file
 * Synthetic file-set generation for the rsync benchmark.
 *
 * The paper's workload synchronizes two groups of text files (6186
 * files, 48 MB total, each under 300 KB) with rsync. This module
 * generates a deterministic, scaled-down equivalent: a corpus of
 * pseudo-text files and a "modified" copy of it (some files unchanged,
 * some edited in place, some with inserted blocks — the mix that gives
 * the rsync delta algorithm realistic work). Both groups are packed
 * into a flat archive format simple enough for the guest's assembled
 * code to parse:
 *
 *     [u64 file_count]
 *     file_count x { u64 name_hash; u64 data_offset; u64 length }
 *     raw file data...
 *
 * Offsets are relative to the archive start; everything little-endian.
 */

#ifndef PTLSIM_WORKLOAD_FILESET_H_
#define PTLSIM_WORKLOAD_FILESET_H_

#include <string>
#include <vector>

#include "lib/bitops.h"

namespace ptl {

struct FileSetParams
{
    int file_count = 120;        ///< files per group
    U64 mean_file_bytes = 8192;  ///< exponential-ish size distribution
    U64 max_file_bytes = 40960;  ///< paper: all under 300 KB (scaled)
    U64 seed = 42;
    /** Fraction (percent) of files left identical in the new copy. */
    int unchanged_pct = 40;
    /** Percent of bytes edited in modified files. */
    int edit_pct = 10;
};

struct FileSet
{
    std::vector<U8> old_archive;  ///< group A (receiver already has)
    std::vector<U8> new_archive;  ///< group B (sender's fresh copy)
    U64 total_old_bytes = 0;
    U64 total_new_bytes = 0;
    int file_count = 0;
};

/** Generate the two archives deterministically from `params`. */
FileSet generateFileSet(const FileSetParams &params);

/** FNV-1a over a byte range (the guest uses the same function). */
U64 fnv1a(const U8 *data, size_t n);

/** Parsed archive view (host-side verification helpers). */
struct ArchiveView
{
    struct Entry
    {
        U64 name_hash;
        U64 offset;
        U64 length;
    };
    std::vector<Entry> entries;
    const std::vector<U8> *raw;

    static ArchiveView parse(const std::vector<U8> &archive);
};

}  // namespace ptl

#endif  // PTLSIM_WORKLOAD_FILESET_H_
