/**
 * @file
 * Implementation of the pipeline invariant checker (see verify.h).
 *
 * The checker deliberately re-derives every occupancy counter and
 * ordering property from first principles (cursor arithmetic, sequence
 * numbers, reachability from the register maps) instead of trusting
 * the core's own bookkeeping — the entire point is to catch the core's
 * bookkeeping lying.
 */

#include "verify/verify.h"

#include <cstdarg>
#include <cstdlib>
#include <vector>

#include "core/ooo/ooocore.h"
#include "lib/logging.h"
#include "mem/coherence.h"
#include "mem/hierarchy.h"

namespace ptl {

VerifyStats::VerifyStats(StatsTree &stats, const std::string &prefix)
    : checks(stats.counter(prefix + "verify/checks")),
      violations(stats.counter(prefix + "verify/violations")),
      rob_order(stats.counter(prefix + "verify/rob/order")),
      rob_count(stats.counter(prefix + "verify/rob/count")),
      checkpoint(stats.counter(prefix + "verify/rob/checkpoint")),
      lsq_state(stats.counter(prefix + "verify/lsq/state")),
      lsq_age(stats.counter(prefix + "verify/lsq/age")),
      prf_leak(stats.counter(prefix + "verify/prf/leak")),
      prf_double_free(stats.counter(prefix + "verify/prf/double_free")),
      iq_state(stats.counter(prefix + "verify/iq/state")),
      mesi(stats.counter(prefix + "verify/mesi")),
      membackend(stats.counter(prefix + "verify/membackend"))
{
}

void
verifyCachedTranslation(const AddressSpace &aspace, Pfn cr3, GuestVirt va,
                        MemAccess kind, bool user_mode,
                        GuestFault cached_fault, GuestPhys cached_paddr,
                        bool entry_dirty)
{
    PageWalk walk = aspace.walk(cr3, va);
    GuestFault walked_fault = checkWalkAccess(walk, kind, user_mode);
    if (walked_fault != cached_fault)
        panic("transcache shadow walk mismatch at va %llx (cr3 %llx): "
              "cached fault %s vs walked %s",
              (unsigned long long)va.raw(), (unsigned long long)cr3.raw(),
              guestFaultName(cached_fault), guestFaultName(walked_fault));
    if (cached_fault != GuestFault::None)
        return;
    if (walk.paddr(va) != cached_paddr)
        panic("transcache shadow walk mismatch at va %llx (cr3 %llx): "
              "cached paddr %llx vs walked %llx",
              (unsigned long long)va.raw(), (unsigned long long)cr3.raw(),
              (unsigned long long)cached_paddr.raw(),
              (unsigned long long)walk.paddr(va).raw());
    if (entry_dirty && !walk.dirty)
        panic("transcache shadow walk mismatch at va %llx (cr3 %llx): "
              "entry claims leaf D set but the PTE is clean",
              (unsigned long long)va.raw(), (unsigned long long)cr3.raw());
}

InvariantChecker::InvariantChecker(StatsTree &stats,
                                   const std::string &prefix, Action act)
    : vstats(stats, prefix), action(act)
{
}

std::unique_ptr<CoreAuditor>
makeVerifyAuditor(const SimConfig &cfg, StatsTree &stats,
                  const std::string &prefix)
{
    if (!cfg.verify && std::getenv("PTLSIM_VERIFY") == nullptr)
        return nullptr;
    return std::make_unique<InvariantChecker>(
        stats, prefix, InvariantChecker::Action::Panic);
}

/**
 * Record one violation: bump the family counter and either panic (the
 * embedded production mode) or warn once per callsite (test mode).
 * Each use site gets its own ptl_warn_once flag, so a corrupted
 * structure audited every cycle cannot flood the log.
 */
#define VERIFY_VIOLATION(family, ...)                                     \
    do {                                                                  \
        (family)++;                                                       \
        vstats.violations++;                                              \
        nviol++;                                                          \
        if (action == Action::Panic)                                      \
            panic(__VA_ARGS__);                                           \
        ptl_warn_once(__VA_ARGS__);                                       \
    } while (0)

int
InvariantChecker::checkCore(const OooCore &core, SimCycle now)
{
    int nviol = 0;
    vstats.checks++;
    const unsigned long long cyc = now.raw();

    // ------------------------------------------------------------------
    // Physical register file: global (shared by all threads), so build
    // the reachability picture once up front.
    //
    //  referenced[p]  - p is named by some RAT entry or live ROB entry
    //  arch_refs[p]   - number of architectural RAT slots mapping to p
    //                   (must equal prf[p].refcount exactly)
    // ------------------------------------------------------------------
    size_t nprf = core.prf.size();
    std::vector<bool> referenced(nprf, false);
    std::vector<int> arch_refs(nprf, 0);
    std::vector<bool> in_free(nprf, false);

    for (const std::vector<int> *list : {&core.free_int, &core.free_fp}) {
        bool is_fp_list = (list == &core.free_fp);
        for (int p : *list) {
            if (p < 0 || (size_t)p >= nprf) {
                VERIFY_VIOLATION(vstats.prf_double_free,
                                 "[cycle %llu] verify: free-list entry %d "
                                 "out of range (prf size %zu)",
                                 cyc, p, nprf);
                continue;
            }
            if (in_free[p])
                VERIFY_VIOLATION(vstats.prf_double_free,
                                 "[cycle %llu] verify: phys %d appears "
                                 "twice in the free lists (double free)",
                                 cyc, p);
            in_free[p] = true;
            if (!core.prf[p].in_free_list)
                VERIFY_VIOLATION(vstats.prf_double_free,
                                 "[cycle %llu] verify: phys %d on a free "
                                 "list but in_free_list is false",
                                 cyc, p);
            if (core.prf[p].is_fp != is_fp_list)
                VERIFY_VIOLATION(vstats.prf_double_free,
                                 "[cycle %llu] verify: phys %d on the "
                                 "wrong partition's free list", cyc, p);
        }
    }
    // Conservation: every register is either on a free list or marked
    // allocated; the flag and the list membership must agree.
    for (size_t p = 0; p < nprf; p++) {
        if (core.prf[p].in_free_list && !in_free[p])
            VERIFY_VIOLATION(vstats.prf_leak,
                             "[cycle %llu] verify: phys %zu claims "
                             "in_free_list but is on no free list "
                             "(leaked from the pool)", cyc, p);
    }

    // ------------------------------------------------------------------
    // Per-thread structures.
    // ------------------------------------------------------------------
    for (size_t ti = 0; ti < core.threads.size(); ti++) {
        const OooCore::Thread &t = core.threads[ti];
        int rsize = (int)t.rob.size();

        // ---- RAT maps root the register reachability graph ----
        for (int r = 0; r < OooCore::RAT_SIZE; r++) {
            for (const S16 *rat : {t.arch_rat, t.spec_rat}) {
                int p = rat[r];
                if (p < 0 || (size_t)p >= nprf) {
                    VERIFY_VIOLATION(vstats.prf_leak,
                                     "[cycle %llu] verify: thread %zu "
                                     "RAT slot %d maps to invalid phys "
                                     "%d", cyc, ti, r, p);
                    continue;
                }
                referenced[p] = true;
                if (in_free[p])
                    VERIFY_VIOLATION(vstats.prf_double_free,
                                     "[cycle %llu] verify: thread %zu "
                                     "RAT slot %d maps to freed phys %d "
                                     "(use after free)", cyc, ti, r, p);
                if (rat == t.arch_rat)
                    arch_refs[p]++;
            }
        }

        // ---- ROB cursor / occupancy conservation ----
        if (t.rob_used < 0 || t.rob_used > rsize) {
            VERIFY_VIOLATION(vstats.rob_count,
                             "[cycle %llu] verify: thread %zu rob_used "
                             "%d outside [0, %d]", cyc, ti, t.rob_used,
                             rsize);
        } else {
            int span = (t.rob_tail - t.rob_head + rsize) % rsize;
            bool ok = (span == t.rob_used)
                      || (span == 0
                          && (t.rob_used == 0 || t.rob_used == rsize));
            if (!ok)
                VERIFY_VIOLATION(vstats.rob_count,
                                 "[cycle %llu] verify: thread %zu ROB "
                                 "cursors head=%d tail=%d span %d "
                                 "disagree with rob_used %d",
                                 cyc, ti, t.rob_head, t.rob_tail, span,
                                 t.rob_used);
        }

        // ---- walk the live window: age order, checkpoints, dests ----
        int used = std::min(std::max(t.rob_used, 0), rsize);
        U64 prev_seq = 0;
        bool have_prev = false;
        int idx = t.rob_head;
        for (int n = 0; n < used; n++, idx = (idx + 1) % rsize) {
            const OooCore::RobEntry &e = t.rob[idx];
            if (have_prev && e.seq <= prev_seq)
                VERIFY_VIOLATION(vstats.rob_order,
                                 "[cycle %llu] verify: thread %zu ROB "
                                 "age order broken at slot %d (seq %llu "
                                 "after %llu)", cyc, ti, idx,
                                 (unsigned long long)e.seq,
                                 (unsigned long long)prev_seq);
            prev_seq = e.seq;
            have_prev = true;

            if (e.checkpoint >= 0
                && (e.checkpoint >= rsize
                    || !t.checkpoint_used[e.checkpoint]))
                VERIFY_VIOLATION(vstats.checkpoint,
                                 "[cycle %llu] verify: thread %zu ROB "
                                 "slot %d holds checkpoint %d that is "
                                 "not marked in use", cyc, ti, idx,
                                 e.checkpoint);

            if (e.phys >= 0) {
                if ((size_t)e.phys >= nprf) {
                    VERIFY_VIOLATION(vstats.prf_leak,
                                     "[cycle %llu] verify: thread %zu "
                                     "ROB slot %d dest phys %d out of "
                                     "range", cyc, ti, idx, e.phys);
                } else {
                    if (in_free[e.phys])
                        VERIFY_VIOLATION(
                            vstats.prf_double_free,
                            "[cycle %llu] verify: thread %zu ROB slot "
                            "%d's dest phys %d is on a free list "
                            "(use after free)", cyc, ti, idx, e.phys);
                    referenced[e.phys] = true;
                }
            }
            for (int s = 0; s < 4; s++) {
                int p = e.src[s];
                if (p >= 0 && (size_t)p < nprf)
                    referenced[p] = true;
            }
        }

        // ---- LSQ vs. ROB consistency ----
        for (const std::vector<OooCore::LsqEntry> *lsq : {&t.ldq, &t.stq}) {
            bool is_ldq = (lsq == &t.ldq);
            int valid = 0;
            const OooCore::LsqEntry *newest_older = nullptr;
            for (size_t li = 0; li < lsq->size(); li++) {
                const OooCore::LsqEntry &l = (*lsq)[li];
                if (!l.valid)
                    continue;
                valid++;
                // Back-reference into the live ROB window.
                int pos = (l.rob - t.rob_head + rsize) % rsize;
                if (l.rob < 0 || l.rob >= rsize || pos >= used) {
                    VERIFY_VIOLATION(vstats.lsq_state,
                                     "[cycle %llu] verify: thread %zu "
                                     "%s slot %zu references dead ROB "
                                     "slot %d", cyc, ti,
                                     is_ldq ? "LDQ" : "STQ", li, l.rob);
                    continue;
                }
                const OooCore::RobEntry &e = t.rob[l.rob];
                bool kind_ok =
                    is_ldq ? e.uop.isLoad() : e.uop.isStore();
                if (!kind_ok || e.lsq != (int)li)
                    VERIFY_VIOLATION(vstats.lsq_state,
                                     "[cycle %llu] verify: thread %zu "
                                     "%s slot %zu and ROB slot %d "
                                     "back-references disagree "
                                     "(rob.lsq=%d)", cyc, ti,
                                     is_ldq ? "LDQ" : "STQ", li, l.rob,
                                     e.lsq);
                // Age consistency: the queue entry carries the same
                // program-order sequence number its ROB entry was
                // renamed with.
                else if (l.seq != e.seq)
                    VERIFY_VIOLATION(vstats.lsq_age,
                                     "[cycle %llu] verify: thread %zu "
                                     "%s slot %zu seq %llu disagrees "
                                     "with ROB slot %d seq %llu",
                                     cyc, ti, is_ldq ? "LDQ" : "STQ",
                                     li, (unsigned long long)l.seq,
                                     l.rob, (unsigned long long)e.seq);
                // Pairwise: ROB position order must match seq order
                // (track the entry with the largest seq seen so far and
                // compare window positions).
                if (newest_older) {
                    int pos_a = (newest_older->rob - t.rob_head + rsize)
                                % rsize;
                    bool seq_older = newest_older->seq < l.seq;
                    bool pos_older = pos_a < pos;
                    if (seq_older != pos_older)
                        VERIFY_VIOLATION(
                            vstats.lsq_age,
                            "[cycle %llu] verify: thread %zu %s age "
                            "order inverted between seq %llu and %llu",
                            cyc, ti, is_ldq ? "LDQ" : "STQ",
                            (unsigned long long)newest_older->seq,
                            (unsigned long long)l.seq);
                }
                if (!newest_older || l.seq > newest_older->seq)
                    newest_older = &l;
            }
            int expect = is_ldq ? t.ldq_used : t.stq_used;
            if (valid != expect)
                VERIFY_VIOLATION(vstats.lsq_state,
                                 "[cycle %llu] verify: thread %zu %s "
                                 "has %d valid entries but the "
                                 "occupancy counter says %d", cyc, ti,
                                 is_ldq ? "LDQ" : "STQ", valid, expect);
        }
    }

    // ------------------------------------------------------------------
    // Issue queues vs. the ROB scoreboard.
    // ------------------------------------------------------------------
    // How many valid queue slots reference each (thread, rob) pair;
    // used to prove InQueue entries sit in exactly one slot.
    std::vector<std::vector<int>> queued(core.threads.size());
    for (size_t ti = 0; ti < core.threads.size(); ti++)
        queued[ti].assign(core.threads[ti].rob.size(), 0);
    std::vector<int> int_inflight(core.threads.size(), 0);

    for (size_t qi = 0; qi < core.queues.size(); qi++) {
        const OooCore::IssueQueue &iq = core.queues[qi];
        int valid = 0;
        int waiting = 0;
        for (size_t si = 0; si < iq.slots.size(); si++) {
            const OooCore::IqEntry &slot = iq.slots[si];
            if (!slot.valid)
                continue;
            valid++;
            if (slot.ready_mask != OooCore::IQ_ALL_READY)
                waiting++;
            if (slot.thread < 0
                || (size_t)slot.thread >= core.threads.size()) {
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: iq[%zu] slot %zu "
                                 "names invalid thread %d", cyc, qi, si,
                                 slot.thread);
                continue;
            }
            const OooCore::Thread &t = core.threads[slot.thread];
            int rsize = (int)t.rob.size();
            int used = std::min(std::max(t.rob_used, 0), rsize);
            int pos = (slot.rob - t.rob_head + rsize) % rsize;
            if (slot.rob < 0 || slot.rob >= rsize || pos >= used) {
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: iq[%zu] slot %zu "
                                 "references dead ROB slot %d", cyc, qi,
                                 si, slot.rob);
                continue;
            }
            queued[slot.thread][slot.rob]++;
            if ((int)qi != core.fp_queue_index)
                int_inflight[slot.thread]++;
            const OooCore::RobEntry &e = t.rob[slot.rob];
            if (e.seq != slot.seq)
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: iq[%zu] slot %zu "
                                 "seq %llu disagrees with ROB slot %d "
                                 "seq %llu", cyc, qi, si,
                                 (unsigned long long)slot.seq, slot.rob,
                                 (unsigned long long)e.seq);
            // Wakeup bitmask coherence: each slot caches its source
            // physical tags at dispatch and accumulates ready bits
            // from broadcasts; the tags must mirror the ROB's renamed
            // sources, an absent source must have its bit pre-set,
            // and a set bit for a real source means the PRF agrees
            // the producer completed.
            for (int s = 0; s < 4; s++) {
                if ((int)slot.src[s] != e.src[s])
                    VERIFY_VIOLATION(vstats.iq_state,
                                     "[cycle %llu] verify: iq[%zu] slot "
                                     "%zu cached src%d tag %d disagrees "
                                     "with ROB slot %d src %d", cyc, qi,
                                     si, s, (int)slot.src[s], slot.rob,
                                     e.src[s]);
                bool bit = ((slot.ready_mask >> s) & 1) != 0;
                if (e.src[s] < 0 && !bit)
                    VERIFY_VIOLATION(vstats.iq_state,
                                     "[cycle %llu] verify: iq[%zu] slot "
                                     "%zu has no src%d but its ready "
                                     "bit is clear", cyc, qi, si, s);
                if (bit && e.src[s] >= 0 && (size_t)e.src[s] < nprf
                    && !core.prf[e.src[s]].ready)
                    VERIFY_VIOLATION(vstats.iq_state,
                                     "[cycle %llu] verify: iq[%zu] slot "
                                     "%zu src%d ready bit set but phys "
                                     "%d has not completed", cyc, qi,
                                     si, s, e.src[s]);
                if (!bit && e.src[s] >= 0 && (size_t)e.src[s] < nprf) {
                    // Missed-wakeup detector: every site that marks a
                    // physreg ready broadcasts in the same statement,
                    // so a completed source with a clear bit means a
                    // broadcast was lost.
                    if (core.prf[e.src[s]].ready)
                        VERIFY_VIOLATION(vstats.iq_state,
                                         "[cycle %llu] verify: iq[%zu] "
                                         "slot %zu src%d phys %d "
                                         "completed but its ready bit "
                                         "was never set (missed "
                                         "wakeup)", cyc, qi, si, s,
                                         e.src[s]);
                    // Subscription completeness: a still-waiting
                    // operand must be reachable by the producer's
                    // eventual broadcast — either on the waiter list
                    // or covered by the overflow full-scan fallback.
                    const OooCore::PhysWaiters &w =
                        core.waiters[(size_t)e.src[s]];
                    U16 code = (U16)(((int)qi << 8) | ((int)si << 2)
                                     | s);
                    bool subscribed = w.overflow;
                    for (int wi = 0; wi < (int)w.n && !subscribed; wi++)
                        if (w.e[wi] == code)
                            subscribed = true;
                    if (!subscribed)
                        VERIFY_VIOLATION(vstats.iq_state,
                                         "[cycle %llu] verify: iq[%zu] "
                                         "slot %zu src%d waits on phys "
                                         "%d but is not on its waiter "
                                         "list", cyc, qi, si, s,
                                         e.src[s]);
                }
            }
            // Scoreboard consistency: an entry still waiting in a
            // queue has not executed, so it must be InQueue and its
            // destination register must not be marked ready yet.
            if (e.state != OooCore::RobState::InQueue)
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: iq[%zu] slot %zu "
                                 "holds ROB slot %d in state %d (not "
                                 "InQueue)", cyc, qi, si, slot.rob,
                                 (int)e.state);
            else if (e.phys >= 0 && (size_t)e.phys < nprf
                     && core.prf[e.phys].ready)
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: iq[%zu] slot %zu "
                                 "ROB slot %d is un-issued but its dest "
                                 "phys %d is already marked ready",
                                 cyc, qi, si, slot.rob, e.phys);
        }
        if (valid != iq.used)
            VERIFY_VIOLATION(vstats.iq_state,
                             "[cycle %llu] verify: iq[%zu] has %d valid "
                             "slots but the occupancy counter says %d",
                             cyc, qi, valid, iq.used);
        if (waiting != iq.waiting)
            VERIFY_VIOLATION(vstats.iq_state,
                             "[cycle %llu] verify: iq[%zu] has %d "
                             "operand-waiting slots but the broadcast "
                             "skip counter says %d",
                             cyc, qi, waiting, iq.waiting);
    }
    for (size_t ti = 0; ti < core.threads.size(); ti++) {
        const OooCore::Thread &t = core.threads[ti];
        int rsize = (int)t.rob.size();
        int used = std::min(std::max(t.rob_used, 0), rsize);
        int idx = t.rob_head;
        for (int n = 0; n < used; n++, idx = (idx + 1) % rsize) {
            const OooCore::RobEntry &e = t.rob[idx];
            int q = queued[ti][idx];
            if (e.state == OooCore::RobState::InQueue && q != 1)
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: thread %zu ROB "
                                 "slot %d is InQueue but sits in %d "
                                 "issue-queue slots", cyc, ti, idx, q);
            if (e.state == OooCore::RobState::Done && q != 0)
                VERIFY_VIOLATION(vstats.iq_state,
                                 "[cycle %llu] verify: thread %zu ROB "
                                 "slot %d is Done but still sits in %d "
                                 "issue-queue slots", cyc, ti, idx, q);
        }
        if (core.threads.size() > 1
            && int_inflight[ti] != t.int_iq_inflight)
            VERIFY_VIOLATION(vstats.iq_state,
                             "[cycle %llu] verify: thread %zu occupies "
                             "%d integer queue slots but "
                             "int_iq_inflight says %d", cyc, ti,
                             int_inflight[ti], t.int_iq_inflight);
    }

    // ------------------------------------------------------------------
    // PRF leak / refcount conservation (needs the full reachability
    // picture, so runs after all threads and queues are walked).
    // ------------------------------------------------------------------
    for (size_t p = 0; p < nprf; p++) {
        const auto &reg = core.prf[p];
        if (!reg.in_free_list && !referenced[p])
            VERIFY_VIOLATION(vstats.prf_leak,
                             "[cycle %llu] verify: phys %zu is "
                             "allocated but unreachable from any RAT or "
                             "live ROB entry (leaked)", cyc, p);
        if (!reg.in_free_list && reg.refcount != arch_refs[p])
            VERIFY_VIOLATION(vstats.prf_leak,
                             "[cycle %llu] verify: phys %zu refcount %d "
                             "disagrees with %d architectural map "
                             "references", cyc, p, reg.refcount,
                             arch_refs[p]);
    }

    // ------------------------------------------------------------------
    // Memory-backend timing bookkeeping. The backend is a black box to
    // the core, so the audit goes through the deliberately narrow
    // AuditView rather than poking at model internals: whatever timing
    // model is configured, its queue depths and busy stamps must stay
    // self-consistent.
    // ------------------------------------------------------------------
    if (core.hierarchy != nullptr) {
        const MemBackend &backend = core.hierarchy->memBackend();
        MemBackend::AuditView view = backend.audit();
        if (view.deferred_capacity > 0
            && view.deferred_depth > view.deferred_capacity)
            VERIFY_VIOLATION(vstats.membackend,
                             "[cycle %llu] verify: %s deferred-write "
                             "queue holds %zu entries, over its "
                             "capacity of %zu", cyc, backend.name(),
                             view.deferred_depth, view.deferred_capacity);
        if (view.banked && view.max_bank_busy.never())
            VERIFY_VIOLATION(vstats.membackend,
                             "[cycle %llu] verify: %s bank busy stamp "
                             "saturated to CYCLE_NEVER (a request on "
                             "that bank would never complete)", cyc,
                             backend.name());
        if (!backend.nextDue().never() && view.deferred_depth == 0)
            VERIFY_VIOLATION(vstats.membackend,
                             "[cycle %llu] verify: %s reports pending "
                             "work via nextDue() but its deferred queue "
                             "is empty", cyc, backend.name());
    }

    return nviol;
}

int
InvariantChecker::checkCoherence(const CoherenceController &coherence,
                                 SimCycle now)
{
    int nviol = 0;
    vstats.checks++;
    std::string why;
    int bad = coherence.auditAll(&why);
    if (bad > 0) {
        // One violation record per audit pass (the audit string names
        // the first offending line and its holder census).
        VERIFY_VIOLATION(vstats.mesi,
                         "[cycle %llu] verify: %d MOESI directory "
                         "violations: %s", (unsigned long long)now.raw(), bad,
                         why.c_str());
    }
    return nviol;
}

// ---------------------------------------------------------------------
// Test hooks: surgical corruptions, one per invariant family.
// ---------------------------------------------------------------------

bool
VerifyTestHook::corruptRobCount(OooCore &core, int thread)
{
    OooCore::Thread &t = core.threads[thread];
    if (t.rob_used >= (int)t.rob.size())
        return false;
    t.rob_used++;  // conservation: cursors no longer explain the count
    return true;
}

bool
VerifyTestHook::corruptRobOrder(OooCore &core, int thread)
{
    OooCore::Thread &t = core.threads[thread];
    if (t.rob_used < 2)
        return false;
    int a = t.rob_head;
    int b = (a + 1) % (int)t.rob.size();
    std::swap(t.rob[a].seq, t.rob[b].seq);
    return true;
}

bool
VerifyTestHook::corruptLsqAge(OooCore &core, int thread)
{
    OooCore::Thread &t = core.threads[thread];
    OooCore::LsqEntry *first = nullptr;
    for (OooCore::LsqEntry &l : t.ldq) {
        if (!l.valid)
            continue;
        if (first) {
            std::swap(first->seq, l.seq);
            return true;
        }
        first = &l;
    }
    // Fewer than two in-flight loads: skew one entry's seq instead
    // (breaks the LSQ-vs-ROB agreement the same family checks).
    if (first) {
        first->seq += 1000;
        return true;
    }
    return false;
}

bool
VerifyTestHook::corruptPrfLeak(OooCore &core)
{
    // Allocate a register and abandon it: reachable from nothing.
    return core.allocPhys(false) >= 0;
}

bool
VerifyTestHook::corruptPrfDoubleFree(OooCore &core)
{
    if (core.free_int.empty())
        return false;
    core.free_int.push_back(core.free_int.front());
    return true;
}

bool
VerifyTestHook::corruptIqReady(OooCore &core)
{
    for (OooCore::IssueQueue &iq : core.queues) {
        for (OooCore::IqEntry &slot : iq.slots) {
            if (!slot.valid)
                continue;
            OooCore::Thread &t = core.threads[slot.thread];
            // Pretend the uop executed without leaving the queue.
            t.rob[slot.rob].state = OooCore::RobState::Done;
            return true;
        }
    }
    return false;
}

bool
VerifyTestHook::skewShadowReg(OooCore &core, int thread, int reg)
{
    OooCore::Thread &t = core.threads[thread];
    if (!t.shadow_ctx)
        return false;
    t.shadow_ctx->regs[reg] ^= 0x1;
    return true;
}

}  // namespace ptl
