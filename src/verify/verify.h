/**
 * @file
 * The pipeline invariant checker (the correctness-tooling layer).
 *
 * PTLsim's credibility rests on cycle-accurate correctness: the paper
 * validates the out-of-order core against native K8 silicon and ships
 * a sequential reference core precisely so the detailed model can be
 * cross-checked (Section 5). This subsystem turns the scattered
 * ptl_assert()s into a systematic, per-cycle audit of the
 * microarchitectural bookkeeping that every future optimisation PR is
 * regression-tested against:
 *
 *  - ROB age ordering (sequence numbers strictly increase from head to
 *    tail) and entry-count conservation against the head/tail cursors;
 *  - LSQ load/store consistency against the ROB: back-references,
 *    occupancy counters, and age ordering between queue slots;
 *  - physical register file leak and double-free detection (free-list
 *    duplicates, freed-but-mapped registers, allocated-but-unreachable
 *    registers, architectural refcount conservation);
 *  - issue-queue/scoreboard consistency: every queued uop references a
 *    live, un-issued ROB entry whose destination register is not yet
 *    marked ready, occupancy counters match, and per-thread SMT
 *    occupancy caps are accounted correctly;
 *  - MESI/MOESI directory legality across coherence peers (at most one
 *    M/E holder, M/E exclude sharers, at most one owner);
 *  - memory-backend timing bookkeeping (deferred-write queue depth
 *    within its configured capacity, bank busy stamps never saturated
 *    to CYCLE_NEVER, and nextDue() only armed while deferred work is
 *    actually pending).
 *
 * Every violation is reported through a structured VerifyStats counter
 * group; the checker either panic()s on the first violation (embedded
 * production mode) or counts and warns once per violation site (test
 * mode, used by tests/test_verify.cc to prove deliberate corruptions
 * are detected).
 *
 * The per-cycle hook in OooCore::cycle() is compile-time selectable
 * via the PTL_VERIFY CMake option and runtime-gated by the `verify`
 * config flag, so a release build (PTL_VERIFY=OFF) pays nothing.
 */

#ifndef PTLSIM_VERIFY_VERIFY_H_
#define PTLSIM_VERIFY_VERIFY_H_

#include <memory>
#include <string>

#include "core/coreapi.h"
#include "lib/bitops.h"
#include "mem/pagetable.h"
#include "stats/stats.h"

namespace ptl {

/** Structured counter group: one counter per invariant family. */
struct VerifyStats
{
    VerifyStats(StatsTree &stats, const std::string &prefix);

    Counter &checks;          ///< checker passes executed
    Counter &violations;      ///< total violations (all families)
    Counter &rob_order;       ///< ROB age-ordering breaks
    Counter &rob_count;       ///< ROB occupancy / cursor mismatches
    Counter &checkpoint;      ///< RAT-checkpoint bookkeeping breaks
    Counter &lsq_state;       ///< LSQ back-reference / occupancy breaks
    Counter &lsq_age;         ///< LSQ age-ordering breaks vs. the ROB
    Counter &prf_leak;        ///< allocated-but-unreachable registers
    Counter &prf_double_free; ///< free-list duplicates / freed-but-live
    Counter &iq_state;        ///< issue-queue / scoreboard breaks
    Counter &mesi;            ///< coherence directory legality breaks
    Counter &membackend;      ///< memory-backend bookkeeping breaks
};

/**
 * The invariant checker. One instance audits one OooCore (and,
 * optionally, the machine's coherence directory). Stateless between
 * calls apart from its counters.
 */
class InvariantChecker final : public CoreAuditor
{
  public:
    /** What to do when a violation is found. */
    enum class Action
    {
        Panic,  ///< cycle-stamped panic on the first violation
        Count,  ///< bump counters, warn once per violation site
    };

    InvariantChecker(StatsTree &stats, const std::string &prefix,
                     Action action = Action::Panic);

    /**
     * Audit one core's ROB/LSQ/PRF/issue-queue state. Returns the
     * number of violations found this pass (always 0 in Panic mode,
     * which does not return on a violation).
     */
    int checkCore(const OooCore &core, SimCycle now) override;

    /** Audit the MOESI directory across all registered peers. */
    int checkCoherence(const CoherenceController &coherence,
                       SimCycle now) override;

    VerifyStats &counters() { return vstats; }

  private:
    VerifyStats vstats;
    Action action;
};

/**
 * Standard wiring used by the machine and the test harnesses: build a
 * Panic-mode InvariantChecker when the config (or the PTLSIM_VERIFY
 * environment variable) opts in, nullptr otherwise. The result is
 * handed to CoreModel::attachAuditor(), which accepts nullptr.
 */
std::unique_ptr<CoreAuditor> makeVerifyAuditor(const SimConfig &cfg,
                                               StatsTree &stats,
                                               const std::string &prefix);

// The translation-cache shadow-walk checker verifyCachedTranslation()
// is declared in mem/transcache.h (the layer that owns the cache) and
// implemented in verify/invariant.cc, so the functional memory path
// never includes src/verify headers.

/**
 * Test-only access: deliberately corrupt core state so the test suite
 * can prove each invariant family actually detects its failure mode.
 * Every method returns false if the pipeline currently holds no state
 * suitable for that corruption (caller should cycle and retry).
 */
struct VerifyTestHook
{
    static bool corruptRobCount(OooCore &core, int thread);
    static bool corruptRobOrder(OooCore &core, int thread);
    static bool corruptLsqAge(OooCore &core, int thread);
    static bool corruptPrfLeak(OooCore &core);
    static bool corruptPrfDoubleFree(OooCore &core);
    static bool corruptIqReady(OooCore &core);
    /** Flip one bit in the lockstep checker's shadow architectural
     *  register, so the next commit diverges from the reference. */
    static bool skewShadowReg(OooCore &core, int thread, int reg);
};

}  // namespace ptl

#endif  // PTLSIM_VERIFY_VERIFY_H_
