/**
 * @file
 * The top-level simulated machine (the "domain" plus PTLsim itself).
 *
 * Owns every subsystem: guest physical memory, page tables, the basic
 * block cache, VCPU contexts, event channels, devices, the hypervisor
 * model, per-core models, the central EventQueue and the master cycle
 * loop. Implements:
 *
 *  - round-robin core advancement (Section 2.2), with the hot loop
 *    reduced to "fire events due now, tick cores until the queue
 *    head": no per-cycle device/replayer/flag polling survives;
 *  - native <-> simulation mode switching driven by ptlcalls and
 *    trigger points (Sections 2.3/4.1), with native mode running the
 *    fast functional engine at a configurable native IPC and
 *    round-robinning across running VCPUs;
 *  - cycle-in-mode accounting (user/kernel/idle) for Figure 2;
 *  - periodic statistics snapshots as self-rescheduling EventQueue
 *    events (every snapshot_interval cycles) feeding the Figure 2/3
 *    time-lapse plots;
 *  - idle fast-forwarding: when every VCPU is blocked, time jumps
 *    straight to the EventQueue head (which already includes the
 *    snapshot cadence), accumulating idle cycles.
 */

#ifndef PTLSIM_SYS_MACHINE_H_
#define PTLSIM_SYS_MACHINE_H_

#include <memory>
#include <optional>

#include "core/coreapi.h"
#include "core/seqcore.h"
#include "sys/eventq.h"
#include "sys/hypervisor.h"
#include "sys/tracereplay.h"

namespace ptl {

class Machine
{
  public:
    explicit Machine(const SimConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ---- subsystem access ----
    const SimConfig &config() const { return cfg; }
    PhysMem &physMem() { return *physmem; }
    AddressSpace &addressSpace() { return *aspace; }
    StatsTree &stats() { return stats_tree; }
    BasicBlockCache &bbCache() { return *bbcache; }
    TimeKeeper &timeKeeper() { return time; }
    EventQueue &eventQueue() { return eventq; }
    EventChannels &eventChannels() { return *events; }
    Console &console() { return *console_dev; }
    VirtualDisk &disk() { return *disk_dev; }
    VirtualNet &net() { return *net_dev; }
    Hypervisor &hypervisor() { return *hv; }
    InterlockController &interlocks() { return *interlock_ctrl; }
    Context &vcpu(int i) { return *contexts[i]; }
    int vcpuCount() const { return (int)contexts.size(); }

    /** Guest timer tick period in core cycles (freq / timer_hz) —
     *  the value the domain builder plants in kernel data. */
    U64 timerPeriodCycles() const { return time.frequency() / cfg.timer_hz; }

    /** Native-mode functional engine for VCPU i (profiling hooks for
     *  the reference-machine trials attach here). */
    FunctionalEngine &nativeEngine(int i) { return *native_engines[i]; }

    /**
     * Instantiate core models (config.core) once the guest image and
     * initial VCPU state are in place. VCPUs are distributed across
     * config-selected cores: with smt_threads > 1 a single core hosts
     * several VCPUs as hardware threads; otherwise one core per VCPU.
     */
    void finalizeCores();

    /** The memory hierarchy assembled for core i (finalizeCores). */
    MemoryHierarchy &coreHierarchy(int i) { return *hierarchies[i]; }
    int coreCount() const { return (int)cores.size(); }

    enum class Mode { Simulation, Native };
    Mode mode() const { return run_mode; }
    void setMode(Mode mode);

    struct RunResult
    {
        U64 cycles = 0;          ///< cycles simulated by this call
        bool shutdown = false;
        bool stalled = false;    ///< all VCPUs idle with nothing pending
        U64 exit_code = 0;
    };

    /** Run until shutdown or `max_cycles` elapse. */
    RunResult run(U64 max_cycles);

    /** Attach a trace replayer that injects recorded device events
     *  (scheduled on the EventQueue at each record's cycle stamp). */
    void attachReplayer(TraceReplayer *r);

    /** Record all device completions into `trace`. */
    void recordDevices(DeviceTrace *trace);

    /**
     * Arm a native-mode trigger point (Section 2.3): when native
     * execution reaches `rip`, the machine switches to simulation
     * mode. Any RIP is armable, including 0; cleared once it fires.
     */
    void setRipTrigger(U64 rip) { rip_trigger = rip; }
    void clearRipTrigger() { rip_trigger.reset(); }
    bool ripTriggerArmed() const { return rip_trigger.has_value(); }

    /** Total x86 instructions committed across all engines. */
    U64 totalCommittedInsns() const;

    /** Squash all in-flight core state (checkpoint restore, external
     *  architectural-state edits). */
    void flushCores();

    /** Cycle stamp of the most recent periodic stats snapshot. */
    SimCycle lastSnapshotCycle() const { return last_snapshot; }

    /**
     * Checkpoint-restore support: drop every scheduled event (they are
     * being rebuilt from serialized payloads), re-arm the periodic
     * snapshot from `last_snapshot_cycle`, re-arm an attached
     * replayer, and discard transient control requests. The caller
     * then restores timer/device events via the owning subsystems.
     */
    void rearmAfterRestore(SimCycle last_snapshot_cycle);

    /** Register an additional hierarchy whose TLBs must flush on guest
     *  CR3 switches (profiling structures attached to native mode). */
    void registerExtraTlbFlush(MemoryHierarchy *hierarchy)
    {
        extra_tlb_flush.push_back(hierarchy);
    }

  private:
    void accountModeCycles(CycleDelta elapsed);
    bool allVcpusIdle() const;
    void runNativeSlice(SimCycle limit);
    void armSnapshot();
    void armReplayer();
    void onControlEvent(SimCycle now);

    SimConfig cfg;
    StatsTree stats_tree;
    TimeKeeper time;
    EventQueue eventq;
    std::unique_ptr<PhysMem> physmem;
    std::unique_ptr<AddressSpace> aspace;
    std::unique_ptr<BasicBlockCache> bbcache;
    std::vector<std::unique_ptr<Context>> contexts;
    std::unique_ptr<EventChannels> events;
    std::unique_ptr<Console> console_dev;
    std::unique_ptr<VirtualDisk> disk_dev;
    std::unique_ptr<VirtualNet> net_dev;
    std::unique_ptr<Hypervisor> hv;
    std::unique_ptr<InterlockController> interlock_ctrl;
    std::unique_ptr<CoherenceController> coherence;
    // Per-core memory hierarchies, assembled here (machine level) and
    // handed to cores as narrow handles; declared before `cores` so
    // cores are destroyed first.
    std::vector<std::unique_ptr<MemoryHierarchy>> hierarchies;
    std::vector<std::unique_ptr<CoreModel>> cores;
    std::vector<std::unique_ptr<FunctionalEngine>> native_engines;
    TraceReplayer *replayer = nullptr;

    Mode run_mode = Mode::Simulation;
    SimCycle last_snapshot;
    EventHandle snapshot_event;
    bool control_armed = false;
    std::optional<U64> rip_trigger;   ///< armed native->sim trigger RIP
    size_t native_rr = 0;             ///< native-mode round-robin cursor
    std::vector<U64> native_insns;    ///< per-VCPU slice scratch
    std::vector<U8> native_parked;    ///< per-VCPU slice scratch
    std::vector<MemoryHierarchy *> extra_tlb_flush;

    Counter &st_cycles_user;
    Counter &st_cycles_kernel;
    Counter &st_cycles_idle;
    Counter &st_cycles_native;
    Counter &st_mode_switches;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_MACHINE_H_
