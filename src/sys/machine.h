/**
 * @file
 * The top-level simulated machine (the "domain" plus PTLsim itself).
 *
 * Owns every subsystem: guest physical memory, page tables, the basic
 * block cache, VCPU contexts, event channels, devices, the hypervisor
 * model, per-core models and the master cycle loop. Implements:
 *
 *  - round-robin core advancement (Section 2.2);
 *  - native <-> simulation mode switching driven by ptlcalls and
 *    trigger points (Sections 2.3/4.1), with native mode running the
 *    fast functional engine at a configurable native IPC;
 *  - cycle-in-mode accounting (user/kernel/idle) for Figure 2;
 *  - periodic statistics snapshots (every snapshot_interval cycles)
 *    feeding the Figure 2/3 time-lapse plots;
 *  - idle fast-forwarding: when every VCPU is blocked, time jumps to
 *    the next scheduled event, accumulating idle cycles.
 */

#ifndef PTLSIM_SYS_MACHINE_H_
#define PTLSIM_SYS_MACHINE_H_

#include <memory>

#include "core/coreapi.h"
#include "core/seqcore.h"
#include "sys/hypervisor.h"
#include "sys/tracereplay.h"

namespace ptl {

class Machine
{
  public:
    explicit Machine(const SimConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ---- subsystem access ----
    const SimConfig &config() const { return cfg; }
    PhysMem &physMem() { return *physmem; }
    AddressSpace &addressSpace() { return *aspace; }
    StatsTree &stats() { return stats_tree; }
    BasicBlockCache &bbCache() { return *bbcache; }
    TimeKeeper &timeKeeper() { return time; }
    EventChannels &eventChannels() { return *events; }
    Console &console() { return *console_dev; }
    VirtualDisk &disk() { return *disk_dev; }
    VirtualNet &net() { return *net_dev; }
    Hypervisor &hypervisor() { return *hv; }
    InterlockController &interlocks() { return *interlock_ctrl; }
    Context &vcpu(int i) { return *contexts[i]; }
    int vcpuCount() const { return (int)contexts.size(); }

    /** Native-mode functional engine for VCPU i (profiling hooks for
     *  the reference-machine trials attach here). */
    FunctionalEngine &nativeEngine(int i) { return *native_engines[i]; }

    /**
     * Instantiate core models (config.core) once the guest image and
     * initial VCPU state are in place. VCPUs are distributed across
     * config-selected cores: with smt_threads > 1 a single core hosts
     * several VCPUs as hardware threads; otherwise one core per VCPU.
     */
    void finalizeCores();

    enum class Mode { Simulation, Native };
    Mode mode() const { return run_mode; }
    void setMode(Mode mode);

    struct RunResult
    {
        U64 cycles = 0;          ///< cycles simulated by this call
        bool shutdown = false;
        bool stalled = false;    ///< all VCPUs idle with nothing pending
        U64 exit_code = 0;
    };

    /** Run until shutdown or `max_cycles` elapse. */
    RunResult run(U64 max_cycles);

    /** Attach a trace replayer that injects recorded device events. */
    void attachReplayer(TraceReplayer *r) { replayer = r; }

    /** Record all device completions into `trace`. */
    void recordDevices(DeviceTrace *trace);

    /**
     * Arm a native-mode trigger point (Section 2.3): when native
     * execution reaches `rip`, the machine switches to simulation
     * mode. Cleared once it fires.
     */
    void setRipTrigger(U64 rip) { rip_trigger = rip; }

    /** Total x86 instructions committed across all engines. */
    U64 totalCommittedInsns() const;

    /** Squash all in-flight core state (checkpoint restore, external
     *  architectural-state edits). */
    void flushCores();

    /** Register an additional hierarchy whose TLBs must flush on guest
     *  CR3 switches (profiling structures attached to native mode). */
    void registerExtraTlbFlush(MemoryHierarchy *hierarchy)
    {
        extra_tlb_flush.push_back(hierarchy);
    }

  private:
    void accountModeCycles(U64 cycles);
    void maybeSnapshot();
    U64 nextWakeCycle() const;
    bool allVcpusIdle() const;
    void runNativeSlice(U64 limit);

    SimConfig cfg;
    StatsTree stats_tree;
    TimeKeeper time;
    std::unique_ptr<PhysMem> physmem;
    std::unique_ptr<AddressSpace> aspace;
    std::unique_ptr<BasicBlockCache> bbcache;
    std::vector<std::unique_ptr<Context>> contexts;
    std::unique_ptr<EventChannels> events;
    std::unique_ptr<Console> console_dev;
    std::unique_ptr<VirtualDisk> disk_dev;
    std::unique_ptr<VirtualNet> net_dev;
    std::unique_ptr<Hypervisor> hv;
    std::unique_ptr<InterlockController> interlock_ctrl;
    std::unique_ptr<CoherenceController> coherence;
    std::vector<std::unique_ptr<CoreModel>> cores;
    std::vector<std::unique_ptr<FunctionalEngine>> native_engines;
    TraceReplayer *replayer = nullptr;

    Mode run_mode = Mode::Simulation;
    U64 last_snapshot = 0;
    U64 rip_trigger = 0;
    std::vector<MemoryHierarchy *> extra_tlb_flush;

    Counter &st_cycles_user;
    Counter &st_cycles_kernel;
    Counter &st_cycles_idle;
    Counter &st_cycles_native;
    Counter &st_mode_switches;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_MACHINE_H_
