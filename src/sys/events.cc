#include "sys/events.h"

#include "lib/logging.h"

namespace ptl {

EventChannels::EventChannels(std::vector<Context *> vcpu_list,
                             EventQueue &eventq, StatsTree &stats)
    : vcpus(std::move(vcpu_list)), pending_mask(vcpus.size(), 0),
      queue(&eventq),
      st_sent(stats.counter("events/sent")),
      st_scheduled(stats.counter("events/scheduled"))
{
    ptl_assert(!vcpus.empty());
}

void
EventChannels::bind(int port, int vcpu)
{
    ptl_assert(port >= 0 && port < MAX_EVENT_PORTS);
    ptl_assert(vcpu >= 0 && (size_t)vcpu < vcpus.size());
    port_vcpu[port] = vcpu;
}

void
EventChannels::send(int port)
{
    ptl_assert(port >= 0 && port < MAX_EVENT_PORTS);
    st_sent++;
    int vcpu = port_vcpu[port];
    pending_mask[vcpu] |= (U64(1) << port);
    Context *ctx = vcpus[vcpu];
    ctx->event_pending = true;
    // Wake a VCPU blocked in hlt; delivery happens at the next
    // instruction boundary if events are unmasked.
    ctx->running = true;
}

void
EventChannels::sendAt(SimCycle when, int port)
{
    ptl_assert(port >= 0 && port < MAX_EVENT_PORTS);
    st_scheduled++;
    EventQueue::Options opts;
    opts.name = "evchn";
    opts.kind = EVK_TIMER_PORT;
    opts.arg = (U64)port;
    queue->schedule(when, EVPRI_EVCHAN,
                    [this, port](SimCycle) { send(port); }, opts);
}

U64
EventChannels::consumePending(int vcpu)
{
    ptl_assert(vcpu >= 0 && (size_t)vcpu < vcpus.size());
    U64 mask = pending_mask[vcpu];
    pending_mask[vcpu] = 0;
    vcpus[vcpu]->event_pending = false;
    return mask;
}

}  // namespace ptl
