#include "sys/events.h"

#include "lib/logging.h"

namespace ptl {

EventChannels::EventChannels(std::vector<Context *> vcpu_list,
                             StatsTree &stats)
    : vcpus(std::move(vcpu_list)), pending_mask(vcpus.size(), 0),
      st_sent(stats.counter("events/sent")),
      st_scheduled(stats.counter("events/scheduled"))
{
    ptl_assert(!vcpus.empty());
}

void
EventChannels::bind(int port, int vcpu)
{
    ptl_assert(port >= 0 && port < MAX_EVENT_PORTS);
    ptl_assert(vcpu >= 0 && (size_t)vcpu < vcpus.size());
    port_vcpu[port] = vcpu;
}

void
EventChannels::send(int port)
{
    ptl_assert(port >= 0 && port < MAX_EVENT_PORTS);
    st_sent++;
    int vcpu = port_vcpu[port];
    pending_mask[vcpu] |= (U64(1) << port);
    Context *ctx = vcpus[vcpu];
    ctx->event_pending = true;
    // Wake a VCPU blocked in hlt; delivery happens at the next
    // instruction boundary if events are unmasked.
    ctx->running = true;
}

void
EventChannels::sendAt(U64 when, int port)
{
    st_scheduled++;
    queue.push({when, port, seq++});
}

int
EventChannels::processDue(U64 now)
{
    int n = 0;
    while (!queue.empty() && queue.top().when <= now) {
        int port = queue.top().port;
        queue.pop();
        send(port);
        n++;
    }
    return n;
}

U64
EventChannels::nextDue() const
{
    return queue.empty() ? ~0ULL : queue.top().when;
}

U64
EventChannels::consumePending(int vcpu)
{
    ptl_assert(vcpu >= 0 && (size_t)vcpu < vcpus.size());
    U64 mask = pending_mask[vcpu];
    pending_mask[vcpu] = 0;
    vcpus[vcpu]->event_pending = false;
    return mask;
}

void
EventChannels::clearScheduled()
{
    while (!queue.empty())
        queue.pop();
}

}  // namespace ptl
