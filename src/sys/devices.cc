#include "sys/devices.h"

#include <cstring>

#include "lib/logging.h"

namespace ptl {

VirtualDisk::VirtualDisk(EventChannels &channels, TimeKeeper &timekeeper,
                         int latency_us, AddressSpace &addrspace,
                         StatsTree &stats)
    : events(&channels), time(&timekeeper), aspace(&addrspace),
      latency_cycles(timekeeper.usToCycles((U64)latency_us)),
      st_reads(stats.counter("disk/reads")),
      st_sectors(stats.counter("disk/sectors"))
{
}

bool
VirtualDisk::read(const Context &ctx, U64 sector, U64 count, U64 dest_va)
{
    if (sector + count > sectorCount() || count == 0)
        return false;
    st_reads++;
    st_sectors += count;
    // Longer transfers take proportionally longer (seek + streaming).
    U64 ready = time->cycle() + latency_cycles
                + count * time->usToCycles(1);
    pending.push_back({ready, sector, count, dest_va, ctx.cr3});
    return true;
}

void
VirtualDisk::processDue(U64 now)
{
    while (!pending.empty() && pending.front().ready <= now) {
        Pending p = pending.front();
        pending.pop_front();
        // DMA the sectors into guest memory under the captured CR3.
        Context dma_ctx;
        dma_ctx.cr3 = p.cr3;
        dma_ctx.kernel_mode = true;
        size_t bytes = (size_t)(p.count * DISK_SECTOR_BYTES);
        size_t offset = (size_t)(p.sector * DISK_SECTOR_BYTES);
        GuestCopy g = guestCopyOut(*aspace, dma_ctx, p.dest_va,
                                   &image[offset], bytes);
        if (!g.ok())
            panic("disk DMA target unmapped at va %llx",
                  (unsigned long long)g.fault_va);
        if (trace) {
            trace->record(now, PORT_DISK, p.dest_va, p.cr3,
                          std::vector<U8>(image.begin() + offset,
                                          image.begin() + offset + bytes));
        }
        events->send(PORT_DISK);
    }
}

U64
VirtualDisk::nextDue() const
{
    return pending.empty() ? ~0ULL : pending.front().ready;
}

VirtualNet::VirtualNet(EventChannels &channels, TimeKeeper &timekeeper,
                       int latency_us, int endpoints, StatsTree &stats)
    : events(&channels), time(&timekeeper),
      latency_cycles(timekeeper.usToCycles((U64)latency_us)),
      rx((size_t)endpoints), last_ready((size_t)endpoints, 0),
      st_packets(stats.counter("net/packets")),
      st_bytes(stats.counter("net/bytes"))
{
}

void
VirtualNet::send(int to_ep, const U8 *data, size_t len)
{
    ptl_assert(to_ep >= 0 && to_ep < endpointCount());
    st_packets++;
    st_bytes += len;
    // Split into MTU-sized packets, each with the delivery latency
    // (pipelined: later fragments arrive a little later). Delivery is
    // FIFO per endpoint — a TCP-like byte stream — so a send can never
    // overtake the in-flight tail of an earlier send to the same
    // endpoint.
    size_t off = 0;
    U64 base = std::max(time->cycle() + latency_cycles,
                        last_ready[to_ep]);
    int frag = 0;
    while (off < len) {
        size_t chunk = std::min(len - off, NET_MTU);
        Packet p;
        p.ready = base + (U64)frag * time->usToCycles(2);
        last_ready[to_ep] = p.ready;
        p.to_ep = to_ep;
        p.data.assign(data + off, data + off + chunk);
        in_flight.push_back(std::move(p));
        off += chunk;
        frag++;
    }
}

size_t
VirtualNet::recv(int ep, U8 *out, size_t maxlen)
{
    ptl_assert(ep >= 0 && ep < endpointCount());
    std::deque<U8> &q = rx[ep];
    size_t n = std::min(maxlen, q.size());
    for (size_t i = 0; i < n; i++) {
        out[i] = q.front();
        q.pop_front();
    }
    return n;
}

void
VirtualNet::processDue(U64 now)
{
    // in_flight is in send order; delivery times are monotone per
    // destination but interleaved across destinations, so scan.
    for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->ready <= now) {
            rx[it->to_ep].insert(rx[it->to_ep].end(), it->data.begin(),
                                 it->data.end());
            if (trace)
                trace->record(now, PORT_NET_BASE + it->to_ep);
            events->send(PORT_NET_BASE + it->to_ep);
            it = in_flight.erase(it);
        } else {
            ++it;
        }
    }
}

U64
VirtualNet::nextDue() const
{
    U64 best = ~0ULL;
    for (const Packet &p : in_flight)
        best = std::min(best, p.ready);
    return best;
}

}  // namespace ptl
