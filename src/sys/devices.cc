#include "sys/devices.h"

#include <cstring>

#include "lib/logging.h"

namespace ptl {

VirtualDisk::VirtualDisk(EventChannels &channels, EventQueue &eventq,
                         TimeKeeper &timekeeper, int latency_us,
                         AddressSpace &addrspace, StatsTree &stats)
    : events(&channels), queue(&eventq), time(&timekeeper),
      aspace(&addrspace),
      latency_cycles(timekeeper.usToCycles((U64)latency_us)),
      st_reads(stats.counter("disk/reads")),
      st_sectors(stats.counter("disk/sectors"))
{
}

void
VirtualDisk::armCompletion(SimCycle ready)
{
    EventQueue::Options opts;
    opts.name = "disk";
    opts.kind = EVK_DEVICE;
    queue->schedule(ready, EVPRI_DISK,
                    [this](SimCycle now) { processDue(now); }, opts);
}

bool
VirtualDisk::read(const Context &ctx, U64 sector, U64 count,
                  GuestVirt dest_va)
{
    if (sector + count > sectorCount() || count == 0)
        return false;
    st_reads++;
    st_sectors += count;
    // Longer transfers take proportionally longer (seek + streaming).
    SimCycle ready = time->cycle() + latency_cycles
                     + count * time->usToCycles(1);
    pending.push_back({ready, sector, count, dest_va, ctx.cr3});
    armCompletion(ready);
    return true;
}

void
VirtualDisk::restorePending(const std::vector<Pending> &entries)
{
    pending.assign(entries.begin(), entries.end());
    for (const Pending &p : pending)
        armCompletion(p.ready);
}

void
VirtualDisk::processDue(SimCycle now)
{
    while (!pending.empty() && pending.front().ready <= now) {
        Pending p = pending.front();
        pending.pop_front();
        // DMA the sectors into guest memory under the captured CR3.
        Context dma_ctx;
        dma_ctx.cr3 = p.cr3;
        dma_ctx.kernel_mode = true;
        size_t bytes = (size_t)(p.count * DISK_SECTOR_BYTES);
        size_t offset = (size_t)(p.sector * DISK_SECTOR_BYTES);
        GuestCopy g = guestCopyOut(*aspace, dma_ctx, p.dest_va,
                                   &image[offset], bytes);
        if (!g.ok())
            panic("disk DMA target unmapped at va %llx",
                  (unsigned long long)g.fault_va.raw());
        if (trace) {
            trace->record(now, PORT_DISK, p.dest_va.raw(), p.cr3.raw(),
                          std::vector<U8>(image.begin() + offset,
                                          image.begin() + offset + bytes));
        }
        events->send(PORT_DISK);
    }
}

VirtualNet::VirtualNet(EventChannels &channels, EventQueue &eventq,
                       TimeKeeper &timekeeper, int latency_us,
                       int endpoints, StatsTree &stats)
    : events(&channels), queue(&eventq), time(&timekeeper),
      latency_cycles(timekeeper.usToCycles((U64)latency_us)),
      rx((size_t)endpoints), last_ready((size_t)endpoints, SimCycle(0)),
      st_packets(stats.counter("net/packets")),
      st_bytes(stats.counter("net/bytes"))
{
}

void
VirtualNet::armDelivery(SimCycle ready)
{
    EventQueue::Options opts;
    opts.name = "net";
    opts.kind = EVK_DEVICE;
    queue->schedule(ready, EVPRI_NET,
                    [this](SimCycle now) { processDue(now); }, opts);
}

void
VirtualNet::send(int to_ep, const U8 *data, size_t len)
{
    ptl_assert(to_ep >= 0 && to_ep < endpointCount());
    st_packets++;
    st_bytes += len;
    // Split into MTU-sized packets, each with the delivery latency
    // (pipelined: later fragments arrive a little later). Delivery is
    // FIFO per endpoint — a TCP-like byte stream — so a send can never
    // overtake the in-flight tail of an earlier send to the same
    // endpoint.
    size_t off = 0;
    SimCycle base = std::max(time->cycle() + latency_cycles,
                             last_ready[to_ep]);
    int frag = 0;
    while (off < len) {
        size_t chunk = std::min(len - off, NET_MTU);
        Packet p;
        p.ready = base + (U64)frag * time->usToCycles(2);
        last_ready[to_ep] = p.ready;
        p.to_ep = to_ep;
        p.data.assign(data + off, data + off + chunk);
        armDelivery(p.ready);
        in_flight.push_back(std::move(p));
        off += chunk;
        frag++;
    }
}

void
VirtualNet::restorePending(const std::vector<Packet> &packets,
                           const std::vector<SimCycle> &last_ready_floor)
{
    ptl_assert(last_ready_floor.size() == last_ready.size());
    in_flight.assign(packets.begin(), packets.end());
    last_ready = last_ready_floor;
    for (const Packet &p : in_flight)
        armDelivery(p.ready);
}

void
VirtualNet::restoreRx(const std::vector<std::vector<U8>> &queues)
{
    ptl_assert(queues.size() == rx.size());
    for (size_t i = 0; i < rx.size(); i++)
        rx[i].assign(queues[i].begin(), queues[i].end());
}

size_t
VirtualNet::recv(int ep, U8 *out, size_t maxlen)
{
    ptl_assert(ep >= 0 && ep < endpointCount());
    std::deque<U8> &q = rx[ep];
    size_t n = std::min(maxlen, q.size());
    for (size_t i = 0; i < n; i++) {
        out[i] = q.front();
        q.pop_front();
    }
    return n;
}

void
VirtualNet::processDue(SimCycle now)
{
    // in_flight is in send order; delivery times are monotone per
    // destination but interleaved across destinations, so scan.
    for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->ready <= now) {
            rx[it->to_ep].insert(rx[it->to_ep].end(), it->data.begin(),
                                 it->data.end());
            if (trace)
                trace->record(now, PORT_NET_BASE + it->to_ep);
            events->send(PORT_NET_BASE + it->to_ep);
            it = in_flight.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace ptl
