#include "sys/checkpoint.h"

#include "lib/logging.h"
#include "sys/machine.h"

namespace ptl {

MachineCheckpoint
captureCheckpoint(Machine &machine)
{
    MachineCheckpoint ckpt;
    ckpt.memory = machine.physMem().rawBytes();
    for (int i = 0; i < machine.vcpuCount(); i++)
        ckpt.contexts.push_back(machine.vcpu(i));
    ckpt.cycle = machine.timeKeeper().cycle();
    ckpt.hidden_cycles = machine.timeKeeper().hiddenCycles();
    ckpt.last_snapshot = machine.lastSnapshotCycle();
    // Pending guest-visible work. Timer deliveries are enumerated from
    // the EventQueue by tag, in firing order (so restore re-schedules
    // them in the same relative order); device payloads come from the
    // devices' own queues.
    for (const EventQueue::PendingEvent &e :
         machine.eventQueue().pendingSorted()) {
        if (e.kind == EVK_TIMER_PORT)
            ckpt.timer_events.push_back({e.due, (int)e.arg});
    }
    const std::deque<VirtualDisk::Pending> &dp =
        machine.disk().pendingTransfers();
    ckpt.disk_pending.assign(dp.begin(), dp.end());
    const std::deque<VirtualNet::Packet> &np = machine.net().inFlight();
    ckpt.net_pending.assign(np.begin(), np.end());
    ckpt.net_last_ready = machine.net().lastReady();
    for (const std::deque<U8> &q : machine.net().rxQueues())
        ckpt.net_rx.emplace_back(q.begin(), q.end());
    ckpt.evtchn_pending = machine.eventChannels().pendingMasks();
    // Quiesce the microarchitecture on the live machine too: cache,
    // TLB, and predictor contents are never serialized, so the only
    // way a restore can be cycle-exact is for the capture side to
    // resume from the same cold-microarch point the restore side will.
    machine.flushCores();
    return ckpt;
}

void
restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt)
{
    ptl_assert((int)ckpt.contexts.size() == machine.vcpuCount());
    machine.physMem().restoreRawBytes(ckpt.memory);
    for (int i = 0; i < machine.vcpuCount(); i++)
        machine.vcpu(i) = ckpt.contexts[i];
    // Roll virtual time back to the capture point.
    TimeKeeper &time = machine.timeKeeper();
    TimeKeeper fresh(time.frequency());
    fresh.advance(ckpt.cycle);
    fresh.hideGap(ckpt.hidden_cycles);
    time = fresh;
    // Derived state: translated code and all in-flight pipeline state
    // (flushCores also re-syncs the cores' architectural register
    // files from the restored contexts).
    machine.bbCache().invalidateAll();
    machine.addressSpace().flushTranslationCache();
    // Drop every scheduled event, re-arm the snapshot cadence at its
    // captured phase, then rebuild pending guest-visible work from the
    // serialized payloads.
    machine.rearmAfterRestore(ckpt.last_snapshot);
    for (const TimerEventRecord &t : ckpt.timer_events)
        machine.eventChannels().sendAt(t.when, t.port);
    machine.disk().restorePending(ckpt.disk_pending);
    machine.net().restorePending(ckpt.net_pending, ckpt.net_last_ready);
    machine.net().restoreRx(ckpt.net_rx);
    machine.eventChannels().restorePendingMasks(ckpt.evtchn_pending);
    machine.flushCores();
}

}  // namespace ptl
