#include "sys/checkpoint.h"

#include "lib/logging.h"
#include "sys/machine.h"

namespace ptl {

MachineCheckpoint
captureCheckpoint(Machine &machine)
{
    MachineCheckpoint ckpt;
    ckpt.memory = machine.physMem().rawBytes();
    for (int i = 0; i < machine.vcpuCount(); i++)
        ckpt.contexts.push_back(machine.vcpu(i));
    ckpt.cycle = machine.timeKeeper().cycle();
    ckpt.hidden_cycles = machine.timeKeeper().hiddenCycles();
    return ckpt;
}

void
restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt)
{
    ptl_assert((int)ckpt.contexts.size() == machine.vcpuCount());
    machine.physMem().restoreRawBytes(ckpt.memory);
    for (int i = 0; i < machine.vcpuCount(); i++)
        machine.vcpu(i) = ckpt.contexts[i];
    // Roll virtual time back to the capture point.
    TimeKeeper &time = machine.timeKeeper();
    TimeKeeper fresh(time.frequency());
    fresh.advance(ckpt.cycle);
    fresh.hideGap(ckpt.hidden_cycles);
    time = fresh;
    // Derived state: translated code, scheduled deliveries, and all
    // in-flight pipeline state (flushCores also re-syncs the cores'
    // architectural register files from the restored contexts).
    machine.bbCache().invalidateAll();
    machine.addressSpace().flushTranslationCache();
    machine.eventChannels().clearScheduled();
    machine.flushCores();
}

}  // namespace ptl
