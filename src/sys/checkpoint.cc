#include "sys/checkpoint.h"

#include "lib/logging.h"
#include "sys/machine.h"

namespace ptl {

void
MachineCheckpoint::serialize(Machine &machine)
{
    memory = machine.physMem().rawBytes();
    for (int i = 0; i < machine.vcpuCount(); i++)
        contexts.push_back(machine.vcpu(i));
    cycle = machine.timeKeeper().cycle();
    hidden_cycles = machine.timeKeeper().hiddenCycles();
    last_snapshot = machine.lastSnapshotCycle();
    // Pending guest-visible work. Timer deliveries are enumerated from
    // the EventQueue by tag, in firing order (so restore re-schedules
    // them in the same relative order); device payloads come from the
    // devices' own queues.
    for (const EventQueue::PendingEvent &e :
         machine.eventQueue().pendingSorted()) {
        if (e.kind == EVK_TIMER_PORT)
            timer_events.push_back({e.due, (int)e.arg});
    }
    const std::deque<VirtualDisk::Pending> &dp =
        machine.disk().pendingTransfers();
    disk_pending.assign(dp.begin(), dp.end());
    const std::deque<VirtualNet::Packet> &np = machine.net().inFlight();
    net_pending.assign(np.begin(), np.end());
    net_last_ready = machine.net().lastReady();
    for (const std::deque<U8> &q : machine.net().rxQueues())
        net_rx.emplace_back(q.begin(), q.end());
    evtchn_pending = machine.eventChannels().pendingMasks();
    // Quiesce the microarchitecture on the live machine too: cache,
    // TLB, and predictor contents are never serialized, so the only
    // way a restore can be cycle-exact is for the capture side to
    // resume from the same cold-microarch point the restore side will.
    machine.flushCores();
}

void
MachineCheckpoint::restore(Machine &machine) const
{
    ptl_assert((int)contexts.size() == machine.vcpuCount());
    machine.physMem().restoreRawBytes(memory);
    for (int i = 0; i < machine.vcpuCount(); i++)
        machine.vcpu(i) = contexts[i];
    // Roll virtual time back to the capture point (hidden TSC gap
    // included).
    machine.timeKeeper().restore(cycle, hidden_cycles);
    // Derived state: translated code and all in-flight pipeline state
    // (flushCores also re-syncs the cores' architectural register
    // files from the restored contexts).
    machine.bbCache().invalidateAll();
    machine.addressSpace().flushTranslationCache();
    // Drop every scheduled event, re-arm the snapshot cadence at its
    // captured phase, then rebuild pending guest-visible work from the
    // serialized payloads.
    machine.rearmAfterRestore(last_snapshot);
    for (const TimerEventRecord &t : timer_events)
        machine.eventChannels().sendAt(t.when, t.port);
    machine.disk().restorePending(disk_pending);
    machine.net().restorePending(net_pending, net_last_ready);
    machine.net().restoreRx(net_rx);
    machine.eventChannels().restorePendingMasks(evtchn_pending);
    machine.flushCores();
}

MachineCheckpoint
captureCheckpoint(Machine &machine)
{
    MachineCheckpoint ckpt;
    ckpt.serialize(machine);
    return ckpt;
}

void
restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt)
{
    ckpt.restore(machine);
}

}  // namespace ptl
