#include "sys/eventq.h"

#include <algorithm>

#include "lib/logging.h"

namespace ptl {

EventQueue::EventQueue(StatsTree &stats)
    : st_scheduled(stats.counter("eventq/scheduled")),
      st_fired(stats.counter("eventq/fired")),
      st_cancelled(stats.counter("eventq/cancelled")),
      st_peak_pending(stats.counter("eventq/peak_pending"))
{
}

EventHandle
EventQueue::schedule(SimCycle due, int priority, Callback cb,
                     const Options &opts)
{
    ptl_assert(cb != nullptr);
    Entry e;
    e.due = due;
    e.priority = priority;
    e.seq = next_seq++;
    const U64 id = next_id++;
    e.id = id;
    e.kind = opts.kind;
    e.arg = opts.arg;
    e.name = opts.name;
    e.wakes = opts.wakes;
    e.cb = std::move(cb);
    heap.push_back(std::move(e));
    std::push_heap(heap.begin(), heap.end(), laterFirst);
    if (opts.wakes)
        wake_count++;
    st_scheduled++;
    if (heap.size() > peak) {
        st_peak_pending += heap.size() - peak;
        peak = heap.size();
    }
    return EventHandle{id};
}

bool
EventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return false;
    for (auto it = heap.begin(); it != heap.end(); ++it) {
        if (it->id != h.id)
            continue;
        if (it->wakes)
            wake_count--;
        heap.erase(it);
        std::make_heap(heap.begin(), heap.end(), laterFirst);
        st_cancelled++;
        return true;
    }
    return false;
}

void
EventQueue::postCrossDomain(SimCycle due, int priority, Callback cb,
                            const Options &opts)
{
    ptl_assert(cb != nullptr);
    CrossPost p{due, priority, opts, std::move(cb)};
    {
        LockGuard g(inbox_mu);
        inbox.push_back(std::move(p));
    }
    // Release ordering pairs with the acquire load in drainInbox(): a
    // drainer that observes the flag also observes the push above.
    inbox_pending.store(true, std::memory_order_release);
}

void
EventQueue::drainInbox()
{
    if (!inbox_pending.load(std::memory_order_acquire))
        return;
    std::vector<CrossPost> posts;
    {
        LockGuard g(inbox_mu);
        posts.swap(inbox);
        inbox_pending.store(false, std::memory_order_relaxed);
    }
    // Admission through schedule() assigns seq/id on the OWNER thread,
    // so heap order stays a pure function of admission order. Posts
    // arriving from several threads are admitted in inbox order —
    // the epoch barrier, not this queue, makes that order
    // deterministic.
    for (CrossPost &p : posts)
        schedule(p.due, p.priority, std::move(p.cb), p.opts);
}

int
EventQueue::runDue(SimCycle now)
{
    ptl_assert(!in_run);
    in_run = true;
    drainInbox();
    int fired = 0;
    while (!heap.empty() && heap.front().due <= now) {
        std::pop_heap(heap.begin(), heap.end(), laterFirst);
        Entry e = std::move(heap.back());
        heap.pop_back();
        if (e.wakes)
            wake_count--;
        st_fired++;
        fired++;
        e.cb(now);
    }
    in_run = false;
    return fired;
}

void
EventQueue::clear()
{
    heap.clear();
    wake_count = 0;
    // Checkpoint restore re-arms everything from serialized payloads;
    // undrained cross-domain posts are stale work and drop with the
    // heap.
    {
        LockGuard g(inbox_mu);
        inbox.clear();
        inbox_pending.store(false, std::memory_order_relaxed);
    }
}

std::vector<EventQueue::PendingEvent>
EventQueue::pendingSorted() const
{
    std::vector<Entry const *> order;
    order.reserve(heap.size());
    for (const Entry &e : heap)
        order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const Entry *a, const Entry *b) {
                  return laterFirst(*b, *a);
              });
    std::vector<PendingEvent> out;
    out.reserve(order.size());
    for (const Entry *e : order) {
        out.push_back({e->due, e->priority, e->seq, e->kind, e->arg,
                       e->name, e->wakes});
    }
    return out;
}

}  // namespace ptl
