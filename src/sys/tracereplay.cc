#include "sys/tracereplay.h"

#include "lib/logging.h"
#include "sys/events.h"

namespace ptl {

TraceReplayer::TraceReplayer(const DeviceTrace &recorded,
                             EventChannels &channels, AddressSpace &addrspace)
    : trace(&recorded), events(&channels), aspace(&addrspace)
{
}

int
TraceReplayer::processDue(SimCycle now)
{
    int n = 0;
    const auto &records = trace->all();
    while (next < records.size() && records[next].cycle <= now) {
        const TraceRecord &r = records[next++];
        if (r.dma_va && !r.dma_data.empty()) {
            // DMA writes land via the recorded translation context.
            Context dma_ctx;
            dma_ctx.cr3 = Pfn(r.dma_cr3);
            dma_ctx.kernel_mode = true;
            GuestCopy g = guestCopyOut(*aspace, dma_ctx,
                                       GuestVirt(r.dma_va),
                                       r.dma_data.data(),
                                       r.dma_data.size());
            if (!g.ok())
                panic("trace replay: DMA target unmapped");
        }
        events->send(r.port);
        n++;
    }
    return n;
}

SimCycle
TraceReplayer::nextDue() const
{
    const auto &records = trace->all();
    return (next < records.size()) ? records[next].cycle : CYCLE_NEVER;
}

}  // namespace ptl
