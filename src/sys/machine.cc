#include "sys/machine.h"

#include "lib/logging.h"

namespace ptl {

Machine::Machine(const SimConfig &config)
    : cfg(config), time(config.core_freq_hz),
      st_cycles_user(stats_tree.counter("external/cycles_in_mode/user")),
      st_cycles_kernel(
          stats_tree.counter("external/cycles_in_mode/kernel")),
      st_cycles_idle(stats_tree.counter("external/cycles_in_mode/idle")),
      st_cycles_native(
          stats_tree.counter("external/cycles_in_mode/native")),
      st_mode_switches(stats_tree.counter("external/mode_switches"))
{
    cfg.validate();
    physmem = std::make_unique<PhysMem>(cfg.guest_mem_bytes, cfg.seed,
                                        cfg.shuffle_mfns);
    aspace = std::make_unique<AddressSpace>(*physmem);
    aspace->attachStats(stats_tree);
    bbcache = std::make_unique<BasicBlockCache>(*aspace, stats_tree);

    std::vector<Context *> vcpu_ptrs;
    for (int i = 0; i < cfg.vcpu_count; i++) {
        contexts.push_back(std::make_unique<Context>());
        contexts.back()->vcpu_id = i;
        vcpu_ptrs.push_back(contexts.back().get());
    }
    events = std::make_unique<EventChannels>(vcpu_ptrs, stats_tree);
    console_dev = std::make_unique<Console>(stats_tree);
    disk_dev = std::make_unique<VirtualDisk>(*events, time,
                                             cfg.disk_latency_us, *aspace,
                                             stats_tree);
    net_dev = std::make_unique<VirtualNet>(*events, time,
                                           cfg.net_latency_us, 8,
                                           stats_tree);
    hv = std::make_unique<Hypervisor>(time, *events, *console_dev,
                                      *disk_dev, *net_dev, *aspace,
                                      *bbcache, stats_tree);
    interlock_ctrl = std::make_unique<InterlockController>(stats_tree);

    for (int i = 0; i < cfg.vcpu_count; i++) {
        native_engines.push_back(std::make_unique<FunctionalEngine>(
            *contexts[i], *aspace, *bbcache, *hv, stats_tree,
            "native/vcpu" + std::to_string(i) + "/"));
    }

    // CR3 switches and SMC invalidations must flush core-side state.
    hv->setCr3SwitchHook([this](Context & /*ctx*/) {
        for (auto &core : cores) {
            core->flushPipeline();
            core->flushTlbs();
        }
        for (auto &engine : native_engines)
            engine->reposition();
        for (MemoryHierarchy *h : extra_tlb_flush)
            h->flushTlbs();
    });
    hv->setCodeWriteHook([this](U64 /*mfn*/) {
        for (auto &core : cores)
            core->flushPipeline();
    });
}

Machine::~Machine() = default;

void
Machine::finalizeCores()
{
    ptl_assert(cores.empty());
    // Distribute VCPUs: smt_threads per core.
    int threads_per_core = std::max(1, cfg.smt_threads);
    int core_count =
        (cfg.vcpu_count + threads_per_core - 1) / threads_per_core;
    if (core_count > 1 || cfg.coherence == CoherenceKind::Moesi) {
        coherence = std::make_unique<CoherenceController>(
            cfg.coherence, cfg.interconnect_latency, stats_tree);
    }
    for (int c = 0; c < core_count; c++) {
        CoreBuildParams params;
        params.config = &cfg;
        for (int t = 0; t < threads_per_core; t++) {
            int v = c * threads_per_core + t;
            if (v < cfg.vcpu_count)
                params.contexts.push_back(contexts[v].get());
        }
        params.aspace = aspace.get();
        params.bbcache = bbcache.get();
        params.sys = hv.get();
        params.stats = &stats_tree;
        params.prefix = "core" + std::to_string(c) + "/";
        params.coherence = coherence.get();
        params.interlocks = interlock_ctrl.get();
        cores.push_back(createCoreModel(cfg.core, params));
    }
}

void
Machine::setMode(Mode mode)
{
    if (mode == run_mode)
        return;
    st_mode_switches++;
    run_mode = mode;
    // Strict continuity (Section 4.1): all in-flight state is squashed
    // at an instruction boundary; architectural state lives in the
    // Contexts, so the other engine resumes seamlessly.
    for (auto &core : cores)
        core->flushPipeline();
    for (auto &engine : native_engines)
        engine->reposition();
}

void
Machine::recordDevices(DeviceTrace *trace)
{
    disk_dev->attachTrace(trace);
    net_dev->attachTrace(trace);
}

bool
Machine::allVcpusIdle() const
{
    for (const auto &ctx : contexts) {
        if (ctx->running)
            return false;
    }
    return true;
}

U64
Machine::nextWakeCycle() const
{
    U64 wake = events->nextDue();
    wake = std::min(wake, disk_dev->nextDue());
    wake = std::min(wake, net_dev->nextDue());
    if (replayer)
        wake = std::min(wake, replayer->nextDue());
    return wake;
}

void
Machine::accountModeCycles(U64 cycles)
{
    // Figure 2 accounting keys off VCPU 0, matching the paper's
    // single-VCPU benchmark domain.
    const Context &ctx = *contexts[0];
    if (!ctx.running)
        st_cycles_idle += cycles;
    else if (ctx.kernel_mode)
        st_cycles_kernel += cycles;
    else
        st_cycles_user += cycles;
    if (run_mode == Mode::Native)
        st_cycles_native += cycles;
}

void
Machine::maybeSnapshot()
{
    while (time.cycle() - last_snapshot >= cfg.snapshot_interval) {
        last_snapshot += cfg.snapshot_interval;
        stats_tree.takeSnapshot(last_snapshot);
    }
}

void
Machine::runNativeSlice(U64 limit)
{
    // Native mode: the fast functional engine at the configured native
    // IPC. Run in small instruction batches so events still land at
    // the right cycles.
    U64 budget_cycles = limit - time.cycle();
    U64 insns = 0;
    U64 max_insns =
        std::max<U64>(1, budget_cycles * cfg.native_ipc_x1000 / 1000);
    max_insns = std::min<U64>(max_insns, 64);
    for (U64 i = 0; i < max_insns; i++) {
        Context &ctx = *contexts[0];
        if (!ctx.running)
            break;
        FunctionalEngine::StepResult r = native_engines[0]->stepInsn(
            time.cycle());
        insns += (U64)r.insns + (r.event_delivered ? 1 : 0);
        if (r.idle || r.blocked_now)
            break;
        if (rip_trigger && ctx.rip == rip_trigger) {
            // Trigger point hit: seamlessly drop into simulation mode
            // at this exact instruction boundary (Section 2.3).
            rip_trigger = 0;
            setMode(Mode::Simulation);
            break;
        }
        if (hv->shutdownRequested() || hv->simSwitchRequested())
            break;
    }
    U64 cycles = std::max<U64>(1, insns * 1000 / cfg.native_ipc_x1000);
    cycles = std::min(cycles, std::max<U64>(1, budget_cycles));
    accountModeCycles(cycles);
    time.advance(cycles);
}

void
Machine::flushCores()
{
    for (auto &core : cores) {
        core->flushPipeline();
        core->flushTlbs();
    }
    for (auto &engine : native_engines)
        engine->reposition();
}

U64
Machine::totalCommittedInsns() const
{
    U64 total = 0;
    for (size_t c = 0; c < cores.size(); c++) {
        total += stats_tree.get("core" + std::to_string(c)
                                + "/commit/insns");
    }
    for (size_t v = 0; v < native_engines.size(); v++) {
        total += stats_tree.get("native/vcpu" + std::to_string(v)
                                + "/commit/insns");
    }
    return total;
}

Machine::RunResult
Machine::run(U64 max_cycles)
{
    RunResult result;
    U64 deadline = time.cycle() + max_cycles;
    if (last_snapshot == 0 && stats_tree.snapshotCount() == 0) {
        stats_tree.takeSnapshot(time.cycle());
        last_snapshot = time.cycle();
    }

    while (time.cycle() < deadline && !hv->shutdownRequested()) {
        U64 now = time.cycle();
        events->processDue(now);
        disk_dev->processDue(now);
        net_dev->processDue(now);
        if (replayer)
            replayer->processDue(now);

        // Mode-switch requests from ptlcalls.
        if (hv->nativeSwitchRequested()) {
            setMode(Mode::Native);
        } else if (hv->simSwitchRequested()) {
            setMode(Mode::Simulation);
        }
        if (hv->snapshotRequested())
            stats_tree.takeSnapshot(now);
        hv->clearModeRequests();

        if (allVcpusIdle()) {
            // Fast-forward to the next scheduled wake-up, bounded by
            // the snapshot cadence so time-lapse plots stay exact.
            U64 wake = nextWakeCycle();
            if (wake == ~0ULL) {
                // Nothing will ever wake the domain again.
                result.stalled = true;
                break;
            }
            U64 snap_next = last_snapshot + cfg.snapshot_interval;
            U64 target = std::min({wake, snap_next, deadline});
            target = std::max(target, now + 1);
            accountModeCycles(target - now);
            time.advance(target - now);
            maybeSnapshot();
            continue;
        }

        if (run_mode == Mode::Native) {
            U64 snap_next = last_snapshot + cfg.snapshot_interval;
            U64 limit = std::min({deadline, snap_next,
                                  std::max(nextWakeCycle(), now + 1)});
            runNativeSlice(std::max(limit, now + 1));
        } else {
            // Round-robin: advance each core by one cycle.
            accountModeCycles(1);
            for (auto &core : cores)
                core->cycle(now);
            time.tick();
        }
        maybeSnapshot();
    }

    result.cycles = time.cycle() - (deadline - max_cycles);
    result.shutdown = hv->shutdownRequested();
    result.exit_code = hv->exitCode();
    return result;
}

}  // namespace ptl
