#include "sys/machine.h"

#include <cstdlib>

#include "lib/logging.h"
#include "verify/verify.h"

namespace ptl {

Machine::Machine(const SimConfig &config)
    : cfg(config), time(config.core_freq_hz), eventq(stats_tree),
      st_cycles_user(stats_tree.counter("external/cycles_in_mode/user")),
      st_cycles_kernel(
          stats_tree.counter("external/cycles_in_mode/kernel")),
      st_cycles_idle(stats_tree.counter("external/cycles_in_mode/idle")),
      st_cycles_native(
          stats_tree.counter("external/cycles_in_mode/native")),
      st_mode_switches(stats_tree.counter("external/mode_switches"))
{
    cfg.validate();
    physmem = std::make_unique<PhysMem>(cfg.guest_mem_bytes, cfg.seed,
                                        cfg.shuffle_mfns);
    aspace = std::make_unique<AddressSpace>(*physmem);
    aspace->attachStats(stats_tree);
    // Shadow-walk every translation-cache hit only when verification is
    // requested (same gate as makeVerifyAuditor); the re-walk costs four
    // physical reads per hit on the hottest guest-access path.
    aspace->transCache().setShadowEnabled(
        cfg.verify || std::getenv("PTLSIM_VERIFY") != nullptr);
    bbcache = std::make_unique<BasicBlockCache>(
        stats_tree.counter("bbcache/hits"),
        stats_tree.counter("bbcache/misses"),
        stats_tree.counter("bbcache/smc_invalidations"));

    std::vector<Context *> vcpu_ptrs;
    for (int i = 0; i < cfg.vcpu_count; i++) {
        contexts.push_back(std::make_unique<Context>());
        contexts.back()->vcpu_id = i;
        vcpu_ptrs.push_back(contexts.back().get());
    }
    events = std::make_unique<EventChannels>(vcpu_ptrs, eventq,
                                             stats_tree);
    console_dev = std::make_unique<Console>(stats_tree);
    disk_dev = std::make_unique<VirtualDisk>(*events, eventq, time,
                                             cfg.disk_latency_us, *aspace,
                                             stats_tree);
    net_dev = std::make_unique<VirtualNet>(*events, eventq, time,
                                           cfg.net_latency_us, 8,
                                           stats_tree);
    hv = std::make_unique<Hypervisor>(time, *events, *console_dev,
                                      *disk_dev, *net_dev, *aspace,
                                      *bbcache, stats_tree);
    interlock_ctrl = std::make_unique<InterlockController>(stats_tree);

    for (int i = 0; i < cfg.vcpu_count; i++) {
        native_engines.push_back(std::make_unique<FunctionalEngine>(
            *contexts[i], *aspace, *bbcache, *hv, stats_tree,
            "native/vcpu" + std::to_string(i) + "/"));
    }

    // CR3 switches and SMC invalidations must flush core-side state.
    hv->setCr3SwitchHook([this](Context & /*ctx*/) {
        for (auto &core : cores) {
            core->flushPipeline();
            core->flushTlbs();
        }
        for (auto &engine : native_engines)
            engine->reposition();
        for (MemoryHierarchy *h : extra_tlb_flush)
            h->flushTlbs();
    });
    hv->setCodeWriteHook([this](Pfn /*mfn*/) {
        for (auto &core : cores)
            core->flushPipeline();
    });

    // Mode-switch / snapshot / shutdown requests raised mid-cycle are
    // handled at the next cycle boundary, exactly where the old master
    // loop's per-cycle flag poll sat. One pending control event covers
    // any number of same-cycle requests.
    hv->setAttentionHook([this] {
        if (control_armed)
            return;
        control_armed = true;
        EventQueue::Options opts;
        opts.name = "control";
        opts.kind = EVK_CONTROL;
        eventq.schedule(time.cycle() + cycles(1), EVPRI_CONTROL,
                        [this](SimCycle now) { onControlEvent(now); }, opts);
    });
}

Machine::~Machine() = default;

void
Machine::finalizeCores()
{
    ptl_assert(cores.empty());
    // Distribute VCPUs: smt_threads per core.
    int threads_per_core = std::max(1, cfg.smt_threads);
    int core_count =
        (cfg.vcpu_count + threads_per_core - 1) / threads_per_core;
    if (core_count > 1 || cfg.coherence == CoherenceKind::Moesi) {
        coherence = std::make_unique<CoherenceController>(
            cfg.coherence, cfg.interconnect_latency, stats_tree);
    }
    for (int c = 0; c < core_count; c++) {
        CoreBuildParams params;
        params.config = &cfg;
        for (int t = 0; t < threads_per_core; t++) {
            int v = c * threads_per_core + t;
            if (v < cfg.vcpu_count)
                params.contexts.push_back(contexts[v].get());
        }
        params.aspace = aspace.get();
        params.bbcache = bbcache.get();
        params.sys = hv.get();
        params.stats = &stats_tree;
        params.prefix = "core" + std::to_string(c) + "/";
        params.coherence = coherence.get();
        params.interlocks = interlock_ctrl.get();
        params.core_id = c;
        // Memory-hierarchy assembly happens here, at machine level:
        // the composition (cache geometry, replacement policies, the
        // memory backend) is pure config, and the core receives only
        // the narrow handle.
        hierarchies.push_back(std::make_unique<MemoryHierarchy>(
            cfg, *aspace, stats_tree, params.prefix, coherence.get()));
        params.hierarchy = hierarchies.back().get();
        cores.push_back(createCoreModel(cfg.core, params));
        // Verification is opt-in wiring done here, at machine assembly,
        // so the core layer itself never depends on src/verify.
        cores.back()->attachAuditor(
            makeVerifyAuditor(cfg, stats_tree, params.prefix));
    }
}

void
Machine::setMode(Mode mode)
{
    if (mode == run_mode)
        return;
    st_mode_switches++;
    run_mode = mode;
    // Strict continuity (Section 4.1): all in-flight state is squashed
    // at an instruction boundary; architectural state lives in the
    // Contexts, so the other engine resumes seamlessly.
    for (auto &core : cores)
        core->flushPipeline();
    for (auto &engine : native_engines)
        engine->reposition();
}

void
Machine::recordDevices(DeviceTrace *trace)
{
    disk_dev->attachTrace(trace);
    net_dev->attachTrace(trace);
}

void
Machine::attachReplayer(TraceReplayer *r)
{
    replayer = r;
    armReplayer();
}

void
Machine::armReplayer()
{
    if (!replayer || replayer->finished())
        return;
    EventQueue::Options opts;
    opts.name = "replay";
    // One event per distinct record cycle; the callback injects every
    // record due and re-arms for the next stamp.
    eventq.schedule(replayer->nextDue(), EVPRI_REPLAY,
                    [this](SimCycle now) {
                        replayer->processDue(now);
                        armReplayer();
                    },
                    opts);
}

void
Machine::armSnapshot()
{
    EventQueue::Options opts;
    opts.name = "snapshot";
    opts.kind = EVK_SNAPSHOT;
    // A snapshot alone must not keep an otherwise-dead domain alive
    // (the old loop broke out as stalled before considering the
    // snapshot cadence).
    opts.wakes = false;
    snapshot_event = eventq.schedule(
        last_snapshot + cycles(cfg.snapshot_interval), EVPRI_SNAPSHOT,
        [this](SimCycle now) {
            // Time never runs past the queue head, so `now` is exactly
            // the armed boundary; priority 0 orders the snapshot ahead
            // of deliveries due the same cycle (legacy interval edge).
            last_snapshot = now;
            stats_tree.takeSnapshot(now);
            armSnapshot();
        },
        opts);
}

void
Machine::onControlEvent(SimCycle now)
{
    control_armed = false;
    if (hv->nativeSwitchRequested())
        setMode(Mode::Native);
    else if (hv->simSwitchRequested())
        setMode(Mode::Simulation);
    if (hv->snapshotRequested())
        stats_tree.takeSnapshot(now);
    hv->clearModeRequests();
}

void
Machine::rearmAfterRestore(SimCycle last_snapshot_cycle)
{
    eventq.clear();
    control_armed = false;
    snapshot_event = {};
    hv->clearModeRequests();
    hv->clearShutdown();
    last_snapshot = last_snapshot_cycle;
    armSnapshot();
    armReplayer();
}

bool
Machine::allVcpusIdle() const
{
    for (const auto &ctx : contexts) {
        if (ctx->running)
            return false;
    }
    return true;
}

void
Machine::accountModeCycles(CycleDelta elapsed)
{
    const U64 n = elapsed.raw();
    // Figure 2 accounting keys off VCPU 0, matching the paper's
    // single-VCPU benchmark domain.
    const Context &ctx = *contexts[0];
    if (!ctx.running)
        st_cycles_idle += n;
    else if (ctx.kernel_mode)
        st_cycles_kernel += n;
    else
        st_cycles_user += n;
    if (run_mode == Mode::Native)
        st_cycles_native += n;
}

void
Machine::runNativeSlice(SimCycle limit)
{
    // Native mode: the fast functional engine at the configured native
    // IPC. Run in small instruction batches so events still land at
    // the right cycles. VCPUs notionally run in parallel on the bare
    // machine, so each gets the full per-slice instruction budget and
    // the slice costs as many cycles as its furthest-ahead VCPU; the
    // round-robin start cursor rotates so no VCPU permanently sees
    // events (or the trigger check) first.
    CycleDelta budget = limit - time.cycle();
    U64 max_insns =
        std::max<U64>(1, budget.raw() * cfg.native_ipc_x1000 / 1000);
    max_insns = std::min<U64>(max_insns, 64);

    const size_t n = contexts.size();
    native_insns.assign(n, 0);
    native_parked.assign(n, 0);
    bool stop = false;
    for (U64 i = 0; i < max_insns && !stop; i++) {
        bool stepped = false;
        for (size_t k = 0; k < n; k++) {
            size_t v = (native_rr + k) % n;
            Context &ctx = *contexts[v];
            if (native_parked[v] || !ctx.running)
                continue;
            FunctionalEngine::StepResult r =
                native_engines[v]->stepInsn(time.cycle());
            native_insns[v] += (U64)r.insns + (r.event_delivered ? 1 : 0);
            stepped = true;
            if (r.idle || r.blocked_now) {
                // Out of work for this slice; others keep running.
                native_parked[v] = 1;
                continue;
            }
            if (rip_trigger && ctx.rip == GuestVirt(*rip_trigger)) {
                // Trigger point hit: seamlessly drop into simulation
                // mode at this exact instruction boundary (Section
                // 2.3).
                rip_trigger.reset();
                setMode(Mode::Simulation);
                stop = true;
                break;
            }
            if (hv->shutdownRequested() || hv->simSwitchRequested()) {
                stop = true;
                break;
            }
        }
        if (!stepped)
            break;
    }
    native_rr = n ? (native_rr + 1) % n : 0;

    U64 lead_insns = 0;
    for (U64 c : native_insns)
        lead_insns = std::max(lead_insns, c);
    CycleDelta spent = cycles(
        std::max<U64>(1, lead_insns * 1000 / cfg.native_ipc_x1000));
    spent = std::min(spent, std::max(cycles(1), budget));
    accountModeCycles(spent);
    time.advance(spent);
}

void
Machine::flushCores()
{
    // Full microarchitectural quiesce: pipelines, TLBs, cache tags,
    // predictors, and absolute-cycle timing stamps (checkpoint restore
    // may have rolled virtual time backwards). Capture and restore
    // both come through here so the two sides resume identically.
    for (auto &core : cores)
        core->resetMicroarch(time.cycle());
    for (auto &engine : native_engines)
        engine->reposition();
}

U64
Machine::totalCommittedInsns() const
{
    U64 total = 0;
    for (size_t c = 0; c < cores.size(); c++) {
        total += stats_tree.get("core" + std::to_string(c)
                                + "/commit/insns");
    }
    for (size_t v = 0; v < native_engines.size(); v++) {
        total += stats_tree.get("native/vcpu" + std::to_string(v)
                                + "/commit/insns");
    }
    return total;
}

Machine::RunResult
Machine::run(U64 max_cycles)
{
    RunResult result;
    const SimCycle start = time.cycle();
    const SimCycle deadline = start + cycles(max_cycles);
    if (last_snapshot == SimCycle(0) && stats_tree.snapshotCount() == 0) {
        stats_tree.takeSnapshot(time.cycle());
        last_snapshot = time.cycle();
    }
    if (!snapshot_event.valid())
        armSnapshot();

    while (time.cycle() < deadline && !hv->shutdownRequested()) {
        // Fire everything due now: timer deliveries, device
        // completions, trace injection, the periodic snapshot, and
        // deferred control requests — in the fixed (cycle, priority,
        // seq) order that reproduces the old loop-top sequence.
        SimCycle now = time.cycle();
        eventq.runDue(now);
        if (hv->shutdownRequested())
            break;

        if (allVcpusIdle()) {
            SimCycle core_wake = CYCLE_NEVER;
            for (auto &core : cores)
                core_wake = std::min(core_wake, core->sleepUntil(now));
            if (eventq.wakePendingCount() == 0
                && core_wake == CYCLE_NEVER) {
                // Nothing will ever wake the domain again.
                result.stalled = true;
                break;
            }
            if (core_wake > now) {
                // Fast-forward straight to the next scheduled event
                // (the queue head already includes the snapshot
                // cadence) or the earliest core-declared wake-up.
                SimCycle target =
                    std::min({eventq.nextDue(), core_wake, deadline});
                target = std::max(target, now + cycles(1));
                accountModeCycles(target - now);
                time.advance(target - now);
                continue;
            }
            // A core still has autonomous in-flight work: fall through
            // and keep ticking cycle by cycle.
        }

        if (run_mode == Mode::Native) {
            SimCycle limit = std::min(
                deadline, std::max(eventq.nextDue(), now + cycles(1)));
            runNativeSlice(std::max(limit, now + cycles(1)));
        } else {
            // The hot loop: advance each core by one cycle, round
            // robin, until the queue head comes due. The per-cycle
            // overhead beyond the cores themselves is one O(1) heap
            // peek and the VCPU idle scan.
            do {
                accountModeCycles(cycles(1));
                SimCycle c = time.cycle();
                for (auto &core : cores)
                    core->cycle(c);
                time.tick();
            } while (time.cycle() < deadline
                     && time.cycle() < eventq.nextDue()
                     && !allVcpusIdle());
        }
    }

    result.cycles = (time.cycle() - start).raw();
    result.shutdown = hv->shutdownRequested();
    result.exit_code = hv->exitCode();
    return result;
}

}  // namespace ptl
