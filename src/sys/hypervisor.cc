#include "sys/hypervisor.h"

#include "lib/logging.h"

namespace ptl {

Hypervisor::Hypervisor(TimeKeeper &timekeeper, EventChannels &channels,
                       Console &cons, VirtualDisk &vdisk,
                       VirtualNet &vnet, AddressSpace &addrspace,
                       BasicBlockCache &bbs, StatsTree &stats)
    : time(&timekeeper), events(&channels), console(&cons), disk(&vdisk),
      net(&vnet), aspace(&addrspace), bbcache(&bbs),
      st_hypercalls(stats.counter("hypervisor/hypercalls")),
      st_ptlcalls(stats.counter("hypervisor/ptlcalls")),
      st_cr3_switches(stats.counter("hypervisor/cr3_switches"))
{
}

bool
Hypervisor::copyFromGuest(Context &ctx, GuestVirt va, size_t len,
                          std::vector<U8> &out)
{
    out.resize(len);
    return guestCopyIn(*aspace, ctx, out.data(), va, len).ok();
}

bool
Hypervisor::copyToGuest(Context &ctx, GuestVirt va, const U8 *data,
                        size_t len)
{
    return guestCopyOut(*aspace, ctx, va, data, len).ok();
}

U64
Hypervisor::hypercall(Context &ctx, U64 nr, U64 a1, U64 a2, U64 a3)
{
    st_hypercalls++;
    switch ((Hypercall)nr) {
      case HC_console_write: {
        if (a2 > 65536)
            return HC_ERROR;
        std::vector<U8> buf;
        if (!copyFromGuest(ctx, GuestVirt(a1), (size_t)a2, buf))
            return HC_ERROR;
        console->write(buf.data(), buf.size());
        return a2;
      }
      case HC_set_timer:
        events->sendAt(time->cycle() + cycles(a1), PORT_TIMER);
        return 0;
      case HC_stack_switch:
        ctx.kernel_sp = a1;
        return 0;
      case HC_set_callbacks:
        ctx.event_callback = a1;
        return 0;
      case HC_evtchn_pending:
        return events->consumePending(ctx.vcpu_id);
      case HC_new_baseptr: {
        if (a1 >= aspace->physMem().frameCount())
            return HC_ERROR;
        ctx.cr3 = Pfn(a1);
        st_cr3_switches++;
        // The new root may alias frames cached under walks the
        // translation cache never snooped being built; start clean.
        aspace->flushTranslationCache();
        if (cr3_hook)
            cr3_hook(ctx);
        return 0;
      }
      case HC_get_time_ns:
        return time->cyclesToNs(cycles(time->readTsc()));
      case HC_net_send: {
        if ((int)a1 >= net->endpointCount() || a3 > 1 << 20)
            return HC_ERROR;
        std::vector<U8> buf;
        if (!copyFromGuest(ctx, GuestVirt(a2), (size_t)a3, buf))
            return HC_ERROR;
        net->send((int)a1, buf.data(), buf.size());
        return a3;
      }
      case HC_net_recv: {
        if ((int)a1 >= net->endpointCount() || a3 > 1 << 20)
            return HC_ERROR;
        std::vector<U8> buf((size_t)a3);
        size_t n = net->recv((int)a1, buf.data(), buf.size());
        if (n && !copyToGuest(ctx, GuestVirt(a2), buf.data(), n))
            return HC_ERROR;
        return n;
      }
      case HC_disk_read:
        return disk->read(ctx, a1, a2, GuestVirt(a3)) ? 0 : HC_ERROR;
      case HC_shutdown:
        shutdown = true;
        exit_code = a1;
        requestAttention();
        return 0;
      case HC_net_available:
        if ((int)a1 >= net->endpointCount())
            return HC_ERROR;
        return net->available((int)a1);
      case HC_disk_sectors:
        return disk->sectorCount();
      case HC_vcpu_count:
        return (U64)events->vcpuCount();
      default:
        ptl_warn_once("unknown hypercall %llu", (unsigned long long)nr);
        return HC_ERROR;
    }
}

U64
Hypervisor::readTsc(const Context &ctx)
{
    return time->readTsc() - ctx.tsc_offset;
}

void
Hypervisor::vcpuBlock(Context &ctx)
{
    // If an event is already pending, hlt falls straight through
    // (the wakeup raced with the block), as on real hardware.
    if (ctx.event_pending)
        return;
    ctx.running = false;
}

U64
Hypervisor::ptlcall(Context &ctx, U64 op, U64 arg1, U64 /*arg2*/)
{
    st_ptlcalls++;
    switch ((PtlcallOp)op) {
      case PTLCALL_NOP:
        return 0;
      case PTLCALL_SWITCH_TO_SIM:
        want_sim = true;
        requestAttention();
        return 0;
      case PTLCALL_SWITCH_TO_NATIVE:
        want_native = true;
        requestAttention();
        return 0;
      case PTLCALL_KILL:
        shutdown = true;
        exit_code = arg1;
        requestAttention();
        return 0;
      case PTLCALL_SNAPSHOT:
        want_snapshot = true;
        requestAttention();
        return 0;
      case PTLCALL_MARKER:
        marks.push_back({time->cycle(), arg1});
        return 0;
      case PTLCALL_COMMAND: {
        // Command list as a NUL-terminated guest string (Section 4.1).
        char buf[256];
        GuestCopy g = guestCopyIn(*aspace, ctx, buf, GuestVirt(arg1),
                                  sizeof(buf));
        std::string cmd;
        for (size_t i = 0; i < g.copied && buf[i]; i++)
            cmd.push_back(buf[i]);
        command_log.push_back(cmd);
        // Interpret the classic commands inline.
        if (cmd.find("-native") != std::string::npos)
            want_native = true;
        if (cmd.find("-run") != std::string::npos)
            want_sim = true;
        if (cmd.find("-kill") != std::string::npos)
            shutdown = true;
        if (cmd.find("-snapshot") != std::string::npos)
            want_snapshot = true;
        requestAttention();
        return 0;
      }
      default:
        ptl_warn_once("unknown ptlcall op %llu", (unsigned long long)op);
        return HC_ERROR;
    }
}

void
Hypervisor::notifyCodeWrite(Pfn mfn)
{
    bbcache->invalidateMfn(mfn);
    if (code_hook)
        code_hook(mfn);
}

bool
Hypervisor::isCodeMfn(Pfn mfn) const
{
    return bbcache->isCodeMfn(mfn);
}

}  // namespace ptl
