/**
 * @file
 * Interrupt + DMA trace recording and injection (Section 4.2).
 *
 * The paper describes the record-and-replay scheme used by commercial
 * simulation flows: checkpoint the machine, record every incoming
 * interrupt and DMA write with its cycle stamp, then re-run from the
 * checkpoint injecting the recorded events at exactly the recorded
 * cycles — guaranteeing deterministic, infinitely repeatable
 * simulation of external bus traffic. DeviceTrace records; a replayer
 * (driven by the machine loop) injects.
 */

#ifndef PTLSIM_SYS_TRACEREPLAY_H_
#define PTLSIM_SYS_TRACEREPLAY_H_

#include <vector>

#include "lib/simtime.h"
#include "mem/pagetable.h"
#include "stats/stats.h"

namespace ptl {

class EventChannels;

/** One recorded external event: an interrupt, optionally with the DMA
 *  bytes the device wrote immediately before raising it. */
struct TraceRecord
{
    SimCycle cycle;
    int port = 0;
    U64 dma_va = 0;              ///< 0 = no DMA payload
    U64 dma_cr3 = 0;
    std::vector<U8> dma_data;
};

/** Recorder: devices append to it as they complete transfers. */
class DeviceTrace
{
  public:
    void
    record(SimCycle cycle, int port, U64 dma_va = 0, U64 dma_cr3 = 0,
           std::vector<U8> dma_data = {})
    {
        records.push_back(
            {cycle, port, dma_va, dma_cr3, std::move(dma_data)});
    }

    const std::vector<TraceRecord> &all() const { return records; }
    size_t size() const { return records.size(); }
    void clear() { records.clear(); }

  private:
    std::vector<TraceRecord> records;
};

/**
 * Injector: reads a recorded trace as a queue and applies each record
 * (DMA write + event) when the simulation reaches its cycle stamp.
 */
class TraceReplayer
{
  public:
    TraceReplayer(const DeviceTrace &trace, EventChannels &events,
                  AddressSpace &aspace);

    /** Inject everything stamped at or before `now`; returns count. */
    int processDue(SimCycle now);

    SimCycle nextDue() const;
    bool finished() const { return next >= trace->all().size(); }

  private:
    const DeviceTrace *trace;
    EventChannels *events;
    AddressSpace *aspace;
    size_t next = 0;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_TRACEREPLAY_H_
