/**
 * @file
 * The discrete-event simulation kernel.
 *
 * PTLsim's control logic (Section 2.2) advances cores in round robin
 * while everything else that "happens at a cycle" — timer deliveries,
 * device completions, trace injection, the stats-snapshot cadence,
 * hypervisor mode-switch requests — used to keep its own private
 * due-time and be re-polled by the master loop on every simulated
 * cycle. EventQueue centralizes all of that into one deterministic
 * scheduler, the same structure modern full-system simulators (gem5's
 * EventQueue) are built around:
 *
 *  - a binary min-heap keyed by (due_cycle, priority, insertion_seq),
 *    so same-cycle events fire in a reproducible order: priority
 *    encodes the legacy source order (snapshot, event channels, disk,
 *    net, replay, control) and the insertion sequence breaks remaining
 *    ties by schedule order;
 *  - O(1) nextDue(): the master loop's per-cycle cost drops to a
 *    single integer compare against the heap head;
 *  - cancellable handles (snapshot re-arming after checkpoint restore,
 *    aborted work);
 *  - serialization support: every entry carries an EventKind tag so
 *    checkpoint code can enumerate pending *guest-visible* work (timer
 *    deliveries) and rebuild it on restore. Callbacks themselves are
 *    derived state: each schedule site pairs payload-owning state in a
 *    subsystem (disk request queues, net packets) with a queue arm, so
 *    a checkpoint serializes the payloads and re-arms the queue.
 *
 * Determinism rule: for a fixed sequence of schedule() calls, runDue()
 * invokes callbacks in exactly (due, priority, seq) order, and a
 * callback may schedule further events (including for the current
 * cycle — they run in the same pass, after everything already due).
 */

#ifndef PTLSIM_SYS_EVENTQ_H_
#define PTLSIM_SYS_EVENTQ_H_

#include <atomic>
#include <functional>
#include <vector>

#include "lib/simtime.h"
#include "lib/threadsafety.h"
#include "stats/stats.h"

namespace ptl {

/**
 * Fixed same-cycle firing order. The values reproduce the legacy
 * master-loop processing order (event channels, then disk, then net,
 * then trace replay, then hypervisor requests), with the periodic
 * stats snapshot first: the old loop took a due snapshot immediately
 * after ticking to the boundary cycle, *before* processing deliveries
 * due at that cycle, so Figure 2/3 interval accounting stays
 * bit-identical.
 */
enum EventPriority : int {
    EVPRI_SNAPSHOT = 0,   ///< periodic stats snapshot
    EVPRI_EVCHAN = 1,     ///< event-channel (timer) deliveries
    EVPRI_DISK = 2,       ///< disk DMA completions
    EVPRI_NET = 3,        ///< network packet deliveries
    EVPRI_REPLAY = 4,     ///< recorded-trace injection
    EVPRI_CONTROL = 5,    ///< hypervisor mode-switch/snapshot requests
    EVPRI_GENERIC = 6,
};

/** Serializable identity of an event (checkpoint support). */
enum EventKind : U16 {
    EVK_GENERIC = 0,      ///< derived/bookkeeping; never serialized
    EVK_TIMER_PORT = 1,   ///< arg = event-channel port; serialized
    EVK_SNAPSHOT = 2,     ///< machine re-arms from last_snapshot
    EVK_CONTROL = 3,      ///< transient (due next cycle); dropped
    EVK_DEVICE = 4,       ///< payload serialized by the device itself
};

/** Cancellable reference to a scheduled event. */
struct EventHandle
{
    U64 id = 0;
    bool valid() const { return id != 0; }
};

class EventQueue
{
  public:
    using Callback = std::function<void(SimCycle now)>;

    explicit EventQueue(StatsTree &stats);

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Optional per-event metadata. */
    struct Options
    {
        const char *name = "";      ///< debug label (static storage)
        EventKind kind = EVK_GENERIC;
        U64 arg = 0;                ///< kind-specific payload
        bool wakes = true;          ///< counts as work for an all-idle
                                    ///< machine (stall detection)
    };

    /**
     * Schedule `cb` to fire at absolute cycle `due`. Events already in
     * the past (due <= now at the next runDue) fire on that pass.
     */
    EventHandle schedule(SimCycle due, int priority, Callback cb,
                         const Options &opts);

    EventHandle
    schedule(SimCycle due, int priority, Callback cb)
    {
        return schedule(due, priority, std::move(cb), Options());
    }

    /** Remove a pending event. Returns false if it already fired or
     *  was cancelled (handles are never reused). */
    bool cancel(EventHandle h);

    /** Cycle of the earliest pending event, CYCLE_NEVER if none. O(1):
     *  this is the master loop's per-cycle check. */
    SimCycle
    nextDue() const
    {
        return heap.empty() ? CYCLE_NEVER : heap.front().due;
    }

    /**
     * Fire every event with due <= now, in (due, priority, seq) order,
     * including events scheduled by the callbacks themselves. Returns
     * the number fired. Not reentrant.
     */
    int runDue(SimCycle now);

    bool empty() const { return heap.empty(); }
    size_t pendingCount() const { return heap.size(); }

    /** Pending events that can wake an all-idle machine. Zero here
     *  (with idle VCPUs) means the domain is stalled for good. */
    size_t wakePendingCount() const { return wake_count; }

    /** Drop every pending event (checkpoint restore; callers re-arm). */
    void clear();

    /** A pending event, minus its callback (introspection/serialize). */
    struct PendingEvent
    {
        SimCycle due;
        int priority = 0;
        U64 seq = 0;
        EventKind kind = EVK_GENERIC;
        U64 arg = 0;
        const char *name = "";
        bool wakes = true;
    };

    /** All pending events in firing order. */
    std::vector<PendingEvent> pendingSorted() const;

    /**
     * Post an event from ANOTHER Domain's thread (the one sanctioned
     * cross-domain channel — see layers.toml [concurrency]). The post
     * lands in a mutex-guarded inbox, not the heap: the owning
     * Domain's thread drains the inbox into the heap at the top of
     * its next runDue(), so heap order stays single-threaded and the
     * message still fires in deterministic (due, priority, seq)
     * order. Crossers due at cycle C must be posted before the
     * owner's runDue(C) — the epoch-barrier protocol in the sharding
     * design guarantees exactly that.
     *
     * Unlike schedule(), no handle is returned: a cross-domain poster
     * cannot cancel (cancellation would race the drain).
     */
    void postCrossDomain(SimCycle due, int priority, Callback cb,
                         const Options &opts) PTL_EXCLUDES(inbox_mu);

  private:
    struct Entry
    {
        SimCycle due;
        int priority;
        U64 seq;
        U64 id;
        EventKind kind;
        U64 arg;
        const char *name;
        bool wakes;
        Callback cb;
    };

    /** Min-heap comparator: `a` fires strictly after `b`. */
    static bool
    laterFirst(const Entry &a, const Entry &b)
    {
        if (a.due != b.due)
            return a.due > b.due;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq > b.seq;
    }

    /** A not-yet-admitted cross-domain post (no seq/id until drain). */
    struct CrossPost
    {
        SimCycle due;
        int priority;
        Options opts;
        Callback cb;
    };

    /** Move every inbox post into the heap (owner thread only). */
    void drainInbox() PTL_EXCLUDES(inbox_mu);

    std::vector<Entry> heap;
    U64 next_seq = 0;
    U64 next_id = 1;
    size_t wake_count = 0;
    size_t peak = 0;
    bool in_run = false;

    /** Cross-domain inbox: the only EventQueue state another thread
     *  may touch. inbox_pending is a lock-free fast-path flag so the
     *  per-cycle drain check costs one relaxed load, not a lock. */
    Mutex inbox_mu;
    std::vector<CrossPost> inbox PTL_GUARDED_BY(inbox_mu);
    std::atomic<bool> inbox_pending{false};

    Counter &st_scheduled;
    Counter &st_fired;
    Counter &st_cancelled;
    Counter &st_peak_pending;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_EVENTQ_H_
