/**
 * @file
 * Virtual time (Section 4.2, "The Nature of Time").
 *
 * The simulator owns the flow of time: every timer, TSC read and device
 * latency is keyed to the simulated cycle number, never to host wall
 * clock. Because cycle-accurate simulation runs thousands of times
 * slower than silicon, PTLsim virtualizes the timestamp counter and
 * subtracts a hidden delta across native<->simulation transitions so
 * the guest can never observe the gap (Section 4.1). TimeKeeper holds
 * the master cycle counter and that per-domain TSC offset.
 *
 * Time is strongly typed (lib/simtime.h): the master counter is a
 * SimCycle, the hidden TSC gap is a CycleDelta, and the wall-time
 * conversion helpers return CycleDelta — so a caller can arm
 * `now + nsToCycles(period)` but cannot accidentally treat a period
 * as an absolute stamp.
 */

#ifndef PTLSIM_SYS_TIMEKEEPER_H_
#define PTLSIM_SYS_TIMEKEEPER_H_

#include "lib/simtime.h"

namespace ptl {

class TimeKeeper
{
  public:
    explicit TimeKeeper(U64 core_freq_hz) : freq(core_freq_hz) {}

    SimCycle cycle() const { return now; }
    void advance(CycleDelta d) { now += d; }
    void tick() { ++now; }

    U64 frequency() const { return freq; }

    /** Convert guest-visible durations to cycles. */
    CycleDelta
    nsToCycles(U64 ns) const
    {
        return cycles(ns * freq / 1'000'000'000ULL);
    }
    CycleDelta
    usToCycles(U64 us) const
    {
        return cycles(us * freq / 1'000'000ULL);
    }
    CycleDelta
    msToCycles(U64 ms) const
    {
        return cycles(ms * freq / 1'000ULL);
    }
    U64
    cyclesToNs(CycleDelta d) const
    {
        return d.raw() * 1'000'000'000ULL / freq;
    }

    /**
     * Guest-visible TSC. The hidden offset absorbs any cycles that
     * should be invisible to the guest (e.g. time "lost" across a mode
     * transition in a real PTLsim/X deployment). The TSC itself is an
     * architectural register value, hence raw.
     */
    U64 readTsc() const { return (now - hidden).raw(); }

    /** Hide `d` cycles of elapsed time from the guest's clocks. */
    void hideGap(CycleDelta d) { hidden += d; }
    CycleDelta hiddenCycles() const { return hidden; }

    /** Checkpoint restore: warp to an absolute point (time may roll
     *  backwards; callers must re-base all absolute-cycle state). */
    void
    restore(SimCycle at, CycleDelta hidden_gap)
    {
        now = at;
        hidden = hidden_gap;
    }

  private:
    U64 freq;
    SimCycle now;
    CycleDelta hidden;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_TIMEKEEPER_H_
