/**
 * @file
 * Virtual time (Section 4.2, "The Nature of Time").
 *
 * The simulator owns the flow of time: every timer, TSC read and device
 * latency is keyed to the simulated cycle number, never to host wall
 * clock. Because cycle-accurate simulation runs thousands of times
 * slower than silicon, PTLsim virtualizes the timestamp counter and
 * subtracts a hidden delta across native<->simulation transitions so
 * the guest can never observe the gap (Section 4.1). TimeKeeper holds
 * the master cycle counter and that per-domain TSC offset.
 */

#ifndef PTLSIM_SYS_TIMEKEEPER_H_
#define PTLSIM_SYS_TIMEKEEPER_H_

#include "lib/bitops.h"

namespace ptl {

class TimeKeeper
{
  public:
    explicit TimeKeeper(U64 core_freq_hz) : freq(core_freq_hz) {}

    U64 cycle() const { return now; }
    void advance(U64 cycles) { now += cycles; }
    void tick() { now++; }

    U64 frequency() const { return freq; }

    /** Convert guest-visible durations to cycles. */
    U64 nsToCycles(U64 ns) const { return ns * freq / 1'000'000'000ULL; }
    U64 usToCycles(U64 us) const { return us * freq / 1'000'000ULL; }
    U64 msToCycles(U64 ms) const { return ms * freq / 1'000ULL; }
    U64 cyclesToNs(U64 cycles) const
    {
        return cycles * 1'000'000'000ULL / freq;
    }

    /**
     * Guest-visible TSC. The hidden offset absorbs any cycles that
     * should be invisible to the guest (e.g. time "lost" across a mode
     * transition in a real PTLsim/X deployment).
     */
    U64 readTsc() const { return now - hidden; }

    /** Hide `cycles` of elapsed time from the guest's clocks. */
    void hideGap(U64 cycles) { hidden += cycles; }
    U64 hiddenCycles() const { return hidden; }

  private:
    U64 freq;
    U64 now = 0;
    U64 hidden = 0;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_TIMEKEEPER_H_
