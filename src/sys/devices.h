/**
 * @file
 * Virtual devices: console, block device, network.
 *
 * These play the role of Xen's split (frontend/backend) paravirtual
 * drivers: the guest kernel requests I/O via hypercalls, the device
 * models complete it after a configurable latency measured in
 * simulated cycles, and completion is signaled on an event channel.
 * All completions flow through the machine's central EventQueue, so
 * I/O timing is fully deterministic (Section 4.2); a DeviceTrace can
 * record every interrupt + DMA for the paper's record-and-replay
 * injection scheme. Each device owns its in-flight payload queue
 * (serialized by checkpoints) and arms a queue event per request; the
 * event callback drains everything due, so spurious later events for
 * an already-drained head are harmless no-ops.
 */

#ifndef PTLSIM_SYS_DEVICES_H_
#define PTLSIM_SYS_DEVICES_H_

#include <deque>
#include <string>
#include <vector>

#include "sys/events.h"
#include "sys/timekeeper.h"
#include "sys/tracereplay.h"

namespace ptl {

/** Console output sink (the PTLmon-proxied console of Section 4). */
class Console
{
  public:
    explicit Console(StatsTree &stats)
        : st_bytes(stats.counter("console/bytes"))
    {
    }

    void
    write(const void *data, size_t n)
    {
        text.append((const char *)data, n);
        st_bytes += n;
    }

    const std::string &output() const { return text; }
    void clear() { text.clear(); }

  private:
    std::string text;
    Counter &st_bytes;
};

constexpr U64 DISK_SECTOR_BYTES = 512;

/** Paravirtual block device with DMA latency + completion events. */
class VirtualDisk
{
  public:
    /** One in-flight transfer (public: checkpoints serialize these). */
    struct Pending
    {
        SimCycle ready;
        U64 sector;
        U64 count;
        GuestVirt dest_va;
        Pfn cr3;
    };

    VirtualDisk(EventChannels &events, EventQueue &queue,
                TimeKeeper &time, int latency_us, AddressSpace &aspace,
                StatsTree &stats);

    void setImage(std::vector<U8> data) { image = std::move(data); }
    const std::vector<U8> &imageData() const { return image; }
    U64 sectorCount() const { return image.size() / DISK_SECTOR_BYTES; }

    /**
     * Begin an asynchronous read of `count` sectors into the guest at
     * `dest_va` (translated under the requesting context's CR3 at
     * completion time). Returns false on out-of-range requests.
     */
    bool read(const Context &ctx, U64 sector, U64 count,
              GuestVirt dest_va);

    /** Complete any transfers due at `now` (DMA copy + event).
     *  Normally fired by the EventQueue; FIFO completion order. */
    void processDue(SimCycle now);

    /** In-flight transfers, oldest first (checkpoint capture). */
    const std::deque<Pending> &pendingTransfers() const
    {
        return pending;
    }

    /** Replace the in-flight queue and re-arm completion events
     *  (checkpoint restore; call after EventQueue::clear()). */
    void restorePending(const std::vector<Pending> &entries);

    void attachTrace(DeviceTrace *t) { trace = t; }

  private:
    void armCompletion(SimCycle ready);

    EventChannels *events;
    EventQueue *queue;
    TimeKeeper *time;
    AddressSpace *aspace;
    CycleDelta latency_cycles;
    std::vector<U8> image;
    std::deque<Pending> pending;
    DeviceTrace *trace = nullptr;
    Counter &st_reads;
    Counter &st_sectors;
};

constexpr size_t NET_MTU = 1500;

/**
 * Paravirtual network: endpoint-addressed byte streams with a
 * configurable delivery latency. Both benchmark endpoints live in the
 * same domain (as in the paper's rsync-over-ssh setup), so this models
 * the loopback path through a "netfront/netback"-style device pair —
 * crucially *with* latency, so the guest spends real idle time waiting
 * for packets instead of spinning at simulator speed (Section 4.2's
 * time-dilation discussion).
 */
class VirtualNet
{
  public:
    /** One in-flight packet (public: checkpoints serialize these). */
    struct Packet
    {
        SimCycle ready;
        int to_ep;
        std::vector<U8> data;
    };

    VirtualNet(EventChannels &events, EventQueue &queue,
               TimeKeeper &time, int latency_us, int endpoints,
               StatsTree &stats);

    int endpointCount() const { return (int)rx.size(); }

    /** Queue `len` bytes for delivery to endpoint `to_ep`. */
    void send(int to_ep, const U8 *data, size_t len);

    /** Dequeue up to `maxlen` delivered bytes at `ep`; returns count. */
    size_t recv(int ep, U8 *out, size_t maxlen);

    size_t available(int ep) const { return rx[ep].size(); }

    /** Deliver all packets due at `now`, in send order. Normally
     *  fired by the EventQueue. */
    void processDue(SimCycle now);

    /** In-flight packets, send order (checkpoint capture). */
    const std::deque<Packet> &inFlight() const { return in_flight; }
    const std::vector<SimCycle> &lastReady() const { return last_ready; }

    /** Delivered-but-unread bytes per endpoint (checkpoint capture). */
    const std::vector<std::deque<U8>> &rxQueues() const { return rx; }

    /** Restore the delivered-but-unread queues (checkpoint). */
    void restoreRx(const std::vector<std::vector<U8>> &queues);

    /** Replace the in-flight queue and re-arm delivery events
     *  (checkpoint restore; call after EventQueue::clear()). */
    void restorePending(const std::vector<Packet> &packets,
                        const std::vector<SimCycle> &last_ready_floor);

    void attachTrace(DeviceTrace *t) { trace = t; }

  private:
    void armDelivery(SimCycle ready);

    EventChannels *events;
    EventQueue *queue;
    TimeKeeper *time;
    CycleDelta latency_cycles;
    std::deque<Packet> in_flight;
    std::vector<std::deque<U8>> rx;
    std::vector<SimCycle> last_ready;  ///< per-endpoint FIFO ordering floor
    DeviceTrace *trace = nullptr;
    Counter &st_packets;
    Counter &st_bytes;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_DEVICES_H_
