/**
 * @file
 * Xen-style event channels and the deferred-event queue.
 *
 * Paravirtual guests receive all asynchronous notifications (timer
 * ticks, device completions, inter-domain signals) as *events* on
 * numbered ports — "functionally similar to the IO-APIC hardware on
 * the bare CPU" (Section 3). The deferred queue is how the hypervisor
 * model keys deliveries to exact future cycle numbers, which is what
 * makes the whole machine deterministic (the paper's -maskints mode).
 */

#ifndef PTLSIM_SYS_EVENTS_H_
#define PTLSIM_SYS_EVENTS_H_

#include <vector>

#include "core/context.h"
#include "kernel/hypercalls.h"
#include "lib/logging.h"
#include "stats/stats.h"
#include "sys/eventq.h"

namespace ptl {

/**
 * Per-domain event channel state. Cycle-keyed deliveries live on the
 * machine's central EventQueue (kind EVK_TIMER_PORT, priority
 * EVPRI_EVCHAN), so pending timer events are enumerable for
 * checkpoints and the master loop never polls this module.
 */
class EventChannels
{
  public:
    EventChannels(std::vector<Context *> vcpus, EventQueue &queue,
                  StatsTree &stats);

    /** Raise `port` immediately: sets the pending bit, marks the
     *  bound VCPU's event_pending, and wakes it if blocked. */
    void send(int port);

    /** Schedule `port` to be raised at absolute cycle `when`. */
    void sendAt(SimCycle when, int port);

    /**
     * Read-and-clear the pending port bitmask for `vcpu` (the
     * evtchn_pending hypercall the guest kernel's upcall handler
     * uses). Clears the VCPU's event_pending flag.
     */
    U64 consumePending(int vcpu);

    /** Bind a port to a VCPU (default: all ports to VCPU 0). */
    void bind(int port, int vcpu);

    /** True if any port is pending for `vcpu`. */
    bool anyPending(int vcpu) const { return pending_mask[vcpu] != 0; }

    /** Raised-but-unconsumed port bitmasks (checkpoint capture). */
    const std::vector<U64> &pendingMasks() const { return pending_mask; }

    /** Restore the raised-but-unconsumed bitmasks (checkpoint). */
    void
    restorePendingMasks(const std::vector<U64> &masks)
    {
        ptl_assert(masks.size() == pending_mask.size());
        pending_mask = masks;
    }

    int vcpuCount() const { return (int)vcpus.size(); }

  private:
    std::vector<Context *> vcpus;
    std::vector<U64> pending_mask;  ///< per-vcpu bitmask of ports
    int port_vcpu[MAX_EVENT_PORTS] = {};
    EventQueue *queue;
    Counter &st_sent;
    Counter &st_scheduled;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_EVENTS_H_
