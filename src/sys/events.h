/**
 * @file
 * Xen-style event channels and the deferred-event queue.
 *
 * Paravirtual guests receive all asynchronous notifications (timer
 * ticks, device completions, inter-domain signals) as *events* on
 * numbered ports — "functionally similar to the IO-APIC hardware on
 * the bare CPU" (Section 3). The deferred queue is how the hypervisor
 * model keys deliveries to exact future cycle numbers, which is what
 * makes the whole machine deterministic (the paper's -maskints mode).
 */

#ifndef PTLSIM_SYS_EVENTS_H_
#define PTLSIM_SYS_EVENTS_H_

#include <queue>
#include <vector>

#include "core/context.h"
#include "stats/stats.h"

namespace ptl {

constexpr int MAX_EVENT_PORTS = 64;

/** Well-known ports used by the kernel/hypervisor pair. */
enum EventPort : int {
    PORT_TIMER = 0,
    PORT_DISK = 1,
    PORT_NET_BASE = 2,     ///< one port per network endpoint (2..)
    PORT_USER_BASE = 16,   ///< dynamically allocated
};

/** Per-domain event channel state + cycle-keyed delivery queue. */
class EventChannels
{
  public:
    EventChannels(std::vector<Context *> vcpus, StatsTree &stats);

    /** Raise `port` immediately: sets the pending bit, marks the
     *  bound VCPU's event_pending, and wakes it if blocked. */
    void send(int port);

    /** Schedule `port` to be raised at absolute cycle `when`. */
    void sendAt(U64 when, int port);

    /** Deliver everything due at or before `now`. Returns count. */
    int processDue(U64 now);

    /** Cycle of the earliest scheduled delivery (or ~0 if none). */
    U64 nextDue() const;

    /**
     * Read-and-clear the pending port bitmask for `vcpu` (the
     * evtchn_pending hypercall the guest kernel's upcall handler
     * uses). Clears the VCPU's event_pending flag.
     */
    U64 consumePending(int vcpu);

    /** Bind a port to a VCPU (default: all ports to VCPU 0). */
    void bind(int port, int vcpu);

    /** True if any port is pending for `vcpu`. */
    bool anyPending(int vcpu) const { return pending_mask[vcpu] != 0; }

    int vcpuCount() const { return (int)vcpus.size(); }

    /** Drop all scheduled deliveries (checkpoint restore). */
    void clearScheduled();

  private:
    struct Scheduled
    {
        U64 when;
        int port;
        U64 seq;   ///< tie-break for determinism
        bool operator>(const Scheduled &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::vector<Context *> vcpus;
    std::vector<U64> pending_mask;  ///< per-vcpu bitmask of ports
    int port_vcpu[MAX_EVENT_PORTS] = {};
    std::priority_queue<Scheduled, std::vector<Scheduled>,
                        std::greater<Scheduled>>
        queue;
    U64 seq = 0;
    Counter &st_sent;
    Counter &st_scheduled;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_EVENTS_H_
