/**
 * @file
 * Domain checkpoint and restore.
 *
 * Section 4.2's record-and-replay flow starts from "a checkpoint of
 * the target machine's physical memory and register state". We capture
 * exactly that — all machine frames, every VCPU Context, and the
 * virtual-time state — plus the guest-visible pending work: scheduled
 * timer deliveries (enumerated from the machine's EventQueue by their
 * EVK_TIMER_PORT tags) and the devices' in-flight DMA/packet queues.
 * The EventQueue itself is derived state: restore drops it wholesale
 * and each subsystem re-arms its own events from the serialized
 * payloads, so a checkpoint taken mid-I/O resumes with identical
 * completion timing.
 *
 * MachineCheckpoint carries a serialize/restore pair, which puts it
 * under simlint's checkpoint-coverage rule: every data member added
 * here must be written by serialize() AND consumed by restore() (or
 * carry an explicit `// simlint: transient` waiver), so a field can
 * never again be captured but silently dropped on restore.
 */

#ifndef PTLSIM_SYS_CHECKPOINT_H_
#define PTLSIM_SYS_CHECKPOINT_H_

#include <vector>

#include "core/context.h"
#include "sys/devices.h"

namespace ptl {

class Machine;

/** A pending event-channel delivery (EventQueue EVK_TIMER_PORT tag). */
struct TimerEventRecord
{
    SimCycle when;
    int port = 0;
};

struct MachineCheckpoint
{
    std::vector<U8> memory;         ///< all machine frames
    std::vector<Context> contexts;  ///< per-VCPU architectural state
    SimCycle cycle;
    CycleDelta hidden_cycles;       ///< TSC-offset state
    SimCycle last_snapshot;         ///< periodic-snapshot phase

    // Guest-visible pending work (in-flight at capture time).
    std::vector<TimerEventRecord> timer_events;
    std::vector<VirtualDisk::Pending> disk_pending;
    std::vector<VirtualNet::Packet> net_pending;
    std::vector<SimCycle> net_last_ready;  ///< per-endpoint FIFO floors
    std::vector<std::vector<U8>> net_rx;  ///< delivered, unread bytes
    std::vector<U64> evtchn_pending;  ///< raised, unconsumed port masks

    /** Capture the domain's state into this checkpoint (in-flight
     *  device work and scheduled timer deliveries included). */
    void serialize(Machine &machine);

    /**
     * Restore this checkpoint into `machine`: memory, contexts,
     * virtual time, pending timer deliveries and device queues roll
     * back; translated code, scheduled bookkeeping events and core
     * pipeline state are dropped and rebuilt (they are derived state).
     */
    void restore(Machine &machine) const;
};

/** Capture the domain's state at the current point. */
MachineCheckpoint captureCheckpoint(Machine &machine);

/** Restore a previously captured checkpoint. */
void restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt);

}  // namespace ptl

#endif  // PTLSIM_SYS_CHECKPOINT_H_
