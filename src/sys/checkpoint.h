/**
 * @file
 * Domain checkpoint and restore.
 *
 * Section 4.2's record-and-replay flow starts from "a checkpoint of
 * the target machine's physical memory and register state". We capture
 * exactly that — all machine frames, every VCPU Context, and the
 * virtual-time state — plus the guest-visible pending work: scheduled
 * timer deliveries (enumerated from the machine's EventQueue by their
 * EVK_TIMER_PORT tags) and the devices' in-flight DMA/packet queues.
 * The EventQueue itself is derived state: restore drops it wholesale
 * and each subsystem re-arms its own events from the serialized
 * payloads, so a checkpoint taken mid-I/O resumes with identical
 * completion timing.
 */

#ifndef PTLSIM_SYS_CHECKPOINT_H_
#define PTLSIM_SYS_CHECKPOINT_H_

#include <vector>

#include "core/context.h"
#include "sys/devices.h"

namespace ptl {

class Machine;

/** A pending event-channel delivery (EventQueue EVK_TIMER_PORT tag). */
struct TimerEventRecord
{
    U64 when = 0;
    int port = 0;
};

struct MachineCheckpoint
{
    std::vector<U8> memory;         ///< all machine frames
    std::vector<Context> contexts;  ///< per-VCPU architectural state
    U64 cycle = 0;
    U64 hidden_cycles = 0;          ///< TSC-offset state
    U64 last_snapshot = 0;          ///< periodic-snapshot phase

    // Guest-visible pending work (in-flight at capture time).
    std::vector<TimerEventRecord> timer_events;
    std::vector<VirtualDisk::Pending> disk_pending;
    std::vector<VirtualNet::Packet> net_pending;
    std::vector<U64> net_last_ready;  ///< per-endpoint FIFO floors
    std::vector<std::vector<U8>> net_rx;  ///< delivered, unread bytes
    std::vector<U64> evtchn_pending;  ///< raised, unconsumed port masks
};

/** Capture the domain's state at the current point (in-flight device
 *  work and scheduled timer deliveries included). */
MachineCheckpoint captureCheckpoint(Machine &machine);

/**
 * Restore a previously captured checkpoint: memory, contexts, virtual
 * time, pending timer deliveries and device queues roll back;
 * translated code, scheduled bookkeeping events and core pipeline
 * state are dropped and rebuilt (they are derived state).
 */
void restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt);

}  // namespace ptl

#endif  // PTLSIM_SYS_CHECKPOINT_H_
