/**
 * @file
 * Domain checkpoint and restore.
 *
 * Section 4.2's record-and-replay flow starts from "a checkpoint of
 * the target machine's physical memory and register state". We capture
 * exactly that: all machine frames, every VCPU Context, and the
 * virtual-time state. Device queues are intentionally not captured —
 * checkpoints are taken at quiesced points (no in-flight DMA), which
 * is also how Xen's save/restore behaves for paravirtual domains.
 */

#ifndef PTLSIM_SYS_CHECKPOINT_H_
#define PTLSIM_SYS_CHECKPOINT_H_

#include <vector>

#include "core/context.h"

namespace ptl {

class Machine;

struct MachineCheckpoint
{
    std::vector<U8> memory;         ///< all machine frames
    std::vector<Context> contexts;  ///< per-VCPU architectural state
    U64 cycle = 0;
    U64 hidden_cycles = 0;          ///< TSC-offset state
};

/** Capture the domain's state at the current (quiesced) point. */
MachineCheckpoint captureCheckpoint(Machine &machine);

/**
 * Restore a previously captured checkpoint: memory, contexts and
 * virtual time roll back; translated code and scheduled events are
 * dropped (they are derived state).
 */
void restoreCheckpoint(Machine &machine, const MachineCheckpoint &ckpt);

}  // namespace ptl

#endif  // PTLSIM_SYS_CHECKPOINT_H_
