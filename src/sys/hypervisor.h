/**
 * @file
 * The hypervisor model: PTLsim/X's view of Xen.
 *
 * Implements the SystemInterface that microcode assists call into:
 * hypercalls, the virtualized TSC, VCPU blocking, and the ptlcall
 * breakout. This is the in-process equivalent of the PTLsim-enhanced
 * Xen hypervisor plus the PTLmon domain-0 proxy of Section 4 — console
 * writes, device I/O and timer programming all terminate here.
 */

#ifndef PTLSIM_SYS_HYPERVISOR_H_
#define PTLSIM_SYS_HYPERVISOR_H_

#include <functional>
#include <string>
#include <vector>

#include "core/context.h"
#include "decode/bbcache.h"
#include "sys/devices.h"
#include "sys/events.h"
#include "kernel/hypercalls.h"
#include "sys/timekeeper.h"

namespace ptl {

/** A recorded ptlcall marker (benchmark phase boundaries). */
struct PtlMarker
{
    SimCycle cycle;
    U64 id;
};

class Hypervisor : public SystemInterface
{
  public:
    Hypervisor(TimeKeeper &time, EventChannels &events, Console &console,
               VirtualDisk &disk, VirtualNet &net, AddressSpace &aspace,
               BasicBlockCache &bbcache, StatsTree &stats);

    // ---- SystemInterface ----
    U64 hypercall(Context &ctx, U64 nr, U64 a1, U64 a2, U64 a3) override;
    U64 readTsc(const Context &ctx) override;
    void vcpuBlock(Context &ctx) override;
    U64 ptlcall(Context &ctx, U64 op, U64 arg1, U64 arg2) override;
    void notifyCodeWrite(Pfn mfn) override;
    bool isCodeMfn(Pfn mfn) const override;

    // ---- machine-facing state ----
    bool shutdownRequested() const { return shutdown; }
    U64 exitCode() const { return exit_code; }
    bool simSwitchRequested() const { return want_sim; }
    bool nativeSwitchRequested() const { return want_native; }
    bool snapshotRequested() const { return want_snapshot; }
    void clearModeRequests()
    {
        want_sim = want_native = want_snapshot = false;
    }

    /** Roll back a shutdown (checkpoint restore to a live domain). */
    void clearShutdown()
    {
        shutdown = false;
        exit_code = 0;
    }
    const std::vector<PtlMarker> &markers() const { return marks; }
    const std::vector<std::string> &commands() const { return command_log; }

    /** Hook invoked after a guest CR3 switch (cores flush TLBs). */
    void setCr3SwitchHook(std::function<void(Context &)> hook)
    {
        cr3_hook = std::move(hook);
    }

    /** Hook invoked on SMC invalidations (cores flush pipelines). */
    void setCodeWriteHook(std::function<void(Pfn)> hook)
    {
        code_hook = std::move(hook);
    }

    /**
     * Hook invoked whenever a machine-facing request flag is raised
     * (mode switch, snapshot, shutdown). The machine uses it to
     * schedule a control event on its EventQueue for the next cycle,
     * so the master loop never polls these flags per cycle.
     */
    void setAttentionHook(std::function<void()> hook)
    {
        attention_hook = std::move(hook);
    }

  private:
    void
    requestAttention()
    {
        if (attention_hook)
            attention_hook();
    }

    /** Copy a guest buffer out (for console/net hypercalls). */
    bool copyFromGuest(Context &ctx, GuestVirt va, size_t len,
                       std::vector<U8> &out);
    bool copyToGuest(Context &ctx, GuestVirt va, const U8 *data,
                     size_t len);

    TimeKeeper *time;
    EventChannels *events;
    Console *console;
    VirtualDisk *disk;
    VirtualNet *net;
    AddressSpace *aspace;
    BasicBlockCache *bbcache;

    bool shutdown = false;
    U64 exit_code = 0;
    bool want_sim = false;
    bool want_native = false;
    bool want_snapshot = false;
    std::vector<PtlMarker> marks;
    std::vector<std::string> command_log;
    std::function<void(Context &)> cr3_hook;
    std::function<void(Pfn)> code_hook;
    std::function<void()> attention_hook;

    Counter &st_hypercalls;
    Counter &st_ptlcalls;
    Counter &st_cr3_switches;
};

}  // namespace ptl

#endif  // PTLSIM_SYS_HYPERVISOR_H_
