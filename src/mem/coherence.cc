#include "mem/coherence.h"

#include <algorithm>

#include "lib/logging.h"
#include "mem/hierarchy.h"

namespace ptl {

CoherenceController::CoherenceController(CoherenceKind kind,
                                         int interconnect_latency,
                                         StatsTree &stats)
    : kind_(kind), interconnect(interconnect_latency),
      xfers(stats.counter("coherence/cache_to_cache_transfers")),
      invalidations(stats.counter("coherence/invalidations")),
      upgrades(stats.counter("coherence/upgrades"))
{
}

int
CoherenceController::registerCore(MemoryHierarchy *hierarchy)
{
    cores.push_back(hierarchy);
    return (int)cores.size() - 1;
}

CoherenceController::DirEntry &
CoherenceController::entry(GuestPhys line_addr)
{
    DirEntry &e = directory[line_addr.raw()];
    if (e.per_core.size() < cores.size())
        e.per_core.resize(cores.size(), LineState::Invalid);
    return e;
}

LineState
CoherenceController::directoryState(int core, GuestPhys line_addr) const
{
    auto it = directory.find(line_addr.raw());
    if (it == directory.end()
        || (size_t)core >= it->second.per_core.size())
        return LineState::Invalid;
    return it->second.per_core[core];
}

CoherenceResult
CoherenceController::onReadMiss(int core, GuestPhys line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    bool any_peer = false;
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        LineState s = e.per_core[c];
        if (s == LineState::Invalid)
            continue;
        any_peer = true;
        switch (s) {
          case LineState::Modified:
            // Dirty supplier keeps responsibility: M -> Owned.
            e.per_core[c] = LineState::Owned;
            cores[c]->downgradeLine(line_addr);  // timing-array view
            out.peer_supplied = true;
            break;
          case LineState::Exclusive:
            e.per_core[c] = LineState::Shared;
            cores[c]->downgradeLine(line_addr);
            out.peer_supplied = true;
            break;
          case LineState::Owned:
          case LineState::Shared:
            out.peer_supplied = true;
            break;
          case LineState::Invalid:
            break;
        }
    }
    if (out.peer_supplied) {
        xfers++;
        out.extra_latency = transferLatency();
    }
    e.per_core[core] = any_peer ? LineState::Shared : LineState::Exclusive;
    checkInvariants(line_addr);
    return out;
}

CoherenceResult
CoherenceController::onWriteMiss(int core, GuestPhys line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        if (e.per_core[c] != LineState::Invalid) {
            if (lineDirty(e.per_core[c]) || e.per_core[c] == LineState::Exclusive)
                out.peer_supplied = true;
            e.per_core[c] = LineState::Invalid;
            cores[c]->invalidateLine(line_addr);
            invalidations++;
        }
    }
    if (out.peer_supplied) {
        xfers++;
        out.extra_latency = transferLatency();
    }
    e.per_core[core] = LineState::Modified;
    checkInvariants(line_addr);
    return out;
}

CoherenceResult
CoherenceController::onUpgrade(int core, GuestPhys line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    bool had_sharers = false;
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        if (e.per_core[c] != LineState::Invalid) {
            had_sharers = true;
            e.per_core[c] = LineState::Invalid;
            cores[c]->invalidateLine(line_addr);
            invalidations++;
        }
    }
    upgrades++;
    if (had_sharers)
        out.extra_latency = transferLatency();
    e.per_core[core] = LineState::Modified;
    checkInvariants(line_addr);
    return out;
}

void
CoherenceController::onEvict(int core, GuestPhys line_addr,
                             LineState state)
{
    DirEntry &e = entry(line_addr);
    e.per_core[core] = LineState::Invalid;
    // M/O evictions write back to memory; timing already charged by the
    // evicting hierarchy. S/E evictions are silent, as in real MOESI.
    (void)state;
}

int
CoherenceController::auditLine(GuestPhys line_addr,
                               std::string *why) const
{
    auto it = directory.find(line_addr.raw());
    if (it == directory.end())
        return 0;
    int modified = 0, exclusive = 0, owned = 0, shared = 0;
    for (LineState s : it->second.per_core) {
        switch (s) {
          case LineState::Modified: modified++; break;
          case LineState::Exclusive: exclusive++; break;
          case LineState::Owned: owned++; break;
          case LineState::Shared: shared++; break;
          case LineState::Invalid: break;
        }
    }
    int bad = 0;
    auto flag = [&](const std::string &msg) {
        bad++;
        if (why && why->empty())
            *why = msg;
    };
    if (modified > 1)
        flag(strprintf("%d Modified holders of line %llx", modified,
                       (unsigned long long)line_addr.raw()));
    if (exclusive > 1)
        flag(strprintf("%d Exclusive holders of line %llx", exclusive,
                       (unsigned long long)line_addr.raw()));
    if (owned > 1)
        flag(strprintf("%d Owned holders of line %llx", owned,
                       (unsigned long long)line_addr.raw()));
    if ((modified || exclusive)
        && (shared || owned || modified + exclusive > 1))
        flag(strprintf("M/E coexists with other holders of line %llx",
                       (unsigned long long)line_addr.raw()));
    return bad;
}

std::vector<U64>
CoherenceController::sortedLines() const
{
    // Audit paths walk the unordered directory through this sorted
    // snapshot so their visit order — and therefore the first
    // violation reported in `why` — is identical across runs,
    // libstdc++ versions, and ASLR seeds.
    std::vector<U64> lines;
    lines.reserve(directory.size());
    for (const auto &[line, e] : directory)  // simlint: nondet-taint-ok
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

int
CoherenceController::auditAll(std::string *why) const
{
    int bad = 0;
    for (U64 line : sortedLines())
        bad += auditLine(GuestPhys(line), why);
    return bad;
}

void
CoherenceController::corruptStateForTest(int core, GuestPhys line_addr,
                                         LineState s)
{
    DirEntry &e = entry(line_addr);
    if ((size_t)core >= e.per_core.size())
        e.per_core.resize((size_t)core + 1, LineState::Invalid);
    e.per_core[core] = s;
}

void
CoherenceController::checkInvariants(GuestPhys line_addr) const
{
    std::string why;
    if (auditLine(line_addr, &why) > 0)
        panic("coherence: %s", why.c_str());
}

void
CoherenceController::checkAllInvariants() const
{
    for (U64 line : sortedLines())
        checkInvariants(GuestPhys(line));
}

}  // namespace ptl
