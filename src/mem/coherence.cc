#include "mem/coherence.h"

#include "lib/logging.h"
#include "mem/hierarchy.h"

namespace ptl {

CoherenceController::CoherenceController(CoherenceKind kind,
                                         int interconnect_latency,
                                         StatsTree &stats)
    : kind_(kind), interconnect(interconnect_latency),
      xfers(stats.counter("coherence/cache_to_cache_transfers")),
      invalidations(stats.counter("coherence/invalidations")),
      upgrades(stats.counter("coherence/upgrades"))
{
}

int
CoherenceController::registerCore(MemoryHierarchy *hierarchy)
{
    cores.push_back(hierarchy);
    return (int)cores.size() - 1;
}

CoherenceController::DirEntry &
CoherenceController::entry(U64 line_addr)
{
    DirEntry &e = directory[line_addr];
    if (e.per_core.size() < cores.size())
        e.per_core.resize(cores.size(), LineState::Invalid);
    return e;
}

LineState
CoherenceController::directoryState(int core, U64 line_addr) const
{
    auto it = directory.find(line_addr);
    if (it == directory.end()
        || (size_t)core >= it->second.per_core.size())
        return LineState::Invalid;
    return it->second.per_core[core];
}

CoherenceResult
CoherenceController::onReadMiss(int core, U64 line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    bool any_peer = false;
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        LineState s = e.per_core[c];
        if (s == LineState::Invalid)
            continue;
        any_peer = true;
        switch (s) {
          case LineState::Modified:
            // Dirty supplier keeps responsibility: M -> Owned.
            e.per_core[c] = LineState::Owned;
            cores[c]->downgradeLine(line_addr);  // timing-array view
            out.peer_supplied = true;
            break;
          case LineState::Exclusive:
            e.per_core[c] = LineState::Shared;
            cores[c]->downgradeLine(line_addr);
            out.peer_supplied = true;
            break;
          case LineState::Owned:
          case LineState::Shared:
            out.peer_supplied = true;
            break;
          case LineState::Invalid:
            break;
        }
    }
    if (out.peer_supplied) {
        xfers++;
        out.extra_latency = transferLatency();
    }
    e.per_core[core] = any_peer ? LineState::Shared : LineState::Exclusive;
    checkInvariants(line_addr);
    return out;
}

CoherenceResult
CoherenceController::onWriteMiss(int core, U64 line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        if (e.per_core[c] != LineState::Invalid) {
            if (lineDirty(e.per_core[c]) || e.per_core[c] == LineState::Exclusive)
                out.peer_supplied = true;
            e.per_core[c] = LineState::Invalid;
            cores[c]->invalidateLine(line_addr);
            invalidations++;
        }
    }
    if (out.peer_supplied) {
        xfers++;
        out.extra_latency = transferLatency();
    }
    e.per_core[core] = LineState::Modified;
    checkInvariants(line_addr);
    return out;
}

CoherenceResult
CoherenceController::onUpgrade(int core, U64 line_addr)
{
    CoherenceResult out;
    DirEntry &e = entry(line_addr);
    bool had_sharers = false;
    for (int c = 0; c < (int)cores.size(); c++) {
        if (c == core)
            continue;
        if (e.per_core[c] != LineState::Invalid) {
            had_sharers = true;
            e.per_core[c] = LineState::Invalid;
            cores[c]->invalidateLine(line_addr);
            invalidations++;
        }
    }
    upgrades++;
    if (had_sharers)
        out.extra_latency = transferLatency();
    e.per_core[core] = LineState::Modified;
    checkInvariants(line_addr);
    return out;
}

void
CoherenceController::onEvict(int core, U64 line_addr, LineState state)
{
    DirEntry &e = entry(line_addr);
    e.per_core[core] = LineState::Invalid;
    // M/O evictions write back to memory; timing already charged by the
    // evicting hierarchy. S/E evictions are silent, as in real MOESI.
    (void)state;
}

void
CoherenceController::checkInvariants(U64 line_addr) const
{
    auto it = directory.find(line_addr);
    if (it == directory.end())
        return;
    int modified = 0, exclusive = 0, owned = 0, shared = 0;
    for (LineState s : it->second.per_core) {
        switch (s) {
          case LineState::Modified: modified++; break;
          case LineState::Exclusive: exclusive++; break;
          case LineState::Owned: owned++; break;
          case LineState::Shared: shared++; break;
          case LineState::Invalid: break;
        }
    }
    if (modified > 1)
        panic("coherence: %d Modified holders of line %llx", modified,
              (unsigned long long)line_addr);
    if (exclusive > 1)
        panic("coherence: %d Exclusive holders of line %llx", exclusive,
              (unsigned long long)line_addr);
    if (owned > 1)
        panic("coherence: %d Owned holders of line %llx", owned,
              (unsigned long long)line_addr);
    if ((modified || exclusive) && (shared || owned || modified + exclusive > 1))
        panic("coherence: M/E coexists with other holders of line %llx",
              (unsigned long long)line_addr);
}

void
CoherenceController::checkAllInvariants() const
{
    for (const auto &[line, e] : directory)
        checkInvariants(line);
}

}  // namespace ptl
