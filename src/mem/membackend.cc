#include "mem/membackend.h"

#include <algorithm>
#include <deque>

#include "lib/logging.h"

namespace ptl {

namespace {

// serialize() stream tags: first word identifies the model, second
// the layout version, so restore() can reject a stream written by a
// different backend or build instead of misreading it.
constexpr U64 TAG_FIXED = 0xF1A7'0001;
constexpr U64 TAG_BANKED = 0xBA2C'0001;
constexpr U64 TAG_HYBRID = 0x4B1D'0001;

/**
 * The pre-refactor timing model: every access to main memory costs a
 * flat cfg.mem_latency. Stateless, so serialize() carries only the
 * stream tag and the default configuration stays bit-identical to
 * the original inline `latency += cfg.mem_latency`.
 */
class FixedLatencyBackend final : public MemBackend
{
  public:
    FixedLatencyBackend(const SimConfig &cfg, StatsTree &stats,
                        const std::string &prefix)
        : lat(cycles((U64)cfg.mem_latency)),
          st_reads(stats.counter(prefix + "membackend/reads")),
          st_writes(stats.counter(prefix + "membackend/writes"))
    {
    }

    SimCycle
    request(GuestPhys /*line_addr*/, bool is_write, SimCycle now) override
    {
        (is_write ? st_writes : st_reads)++;
        return now + lat;
    }

    void resetTimebase() override {}

    void serialize(std::vector<U64> &out) const override;
    bool restore(const std::vector<U64> &words) override;

    AuditView audit() const override { return {}; }

    const char *name() const override { return "fixed"; }

  private:
    CycleDelta lat;       // simlint: transient (config-derived)
    Counter &st_reads;    // simlint: transient (stats tree owns values)
    Counter &st_writes;   // simlint: transient (stats tree owns values)
};

void
FixedLatencyBackend::serialize(std::vector<U64> &out) const
{
    out.push_back(TAG_FIXED);
}

bool
FixedLatencyBackend::restore(const std::vector<U64> &words)
{
    return words.size() == 1 && words[0] == TAG_FIXED;
}

/**
 * Rank/bank/row-buffer DRAM. A line maps to a bank by row
 * interleaving (consecutive rows rotate across banks, so consecutive
 * lines share a bank's open row); each bank keeps one open row and a
 * busy-until stamp. An access starts when its bank is free, then
 * pays t_cas on a row hit, t_rcd + t_cas on a closed bank, or
 * t_rp + t_rcd + t_cas on a row conflict.
 */
class BankedDramBackend final : public MemBackend
{
  public:
    BankedDramBackend(const SimConfig &cfg, StatsTree &stats,
                      const std::string &prefix)
        : p(cfg.membackend), banks((size_t)p.dram_banks),
          st_reads(stats.counter(prefix + "membackend/reads")),
          st_writes(stats.counter(prefix + "membackend/writes")),
          st_row_hits(stats.counter(prefix + "membackend/row_hits")),
          st_row_conflicts(
              stats.counter(prefix + "membackend/row_conflicts")),
          st_busy_waits(stats.counter(prefix + "membackend/busy_waits"))
    {
    }

    SimCycle
    request(GuestPhys line_addr, bool is_write, SimCycle now) override
    {
        (is_write ? st_writes : st_reads)++;
        Bank &b = banks[bankOf(line_addr)];
        U64 row = rowOf(line_addr);
        if (b.busy_until > now)
            st_busy_waits++;
        SimCycle start = std::max(now, b.busy_until);
        CycleDelta access;
        if (b.row_valid && b.open_row == row) {
            st_row_hits++;
            access = cycles((U64)p.t_cas);
        } else if (b.row_valid) {
            st_row_conflicts++;
            access = cycles((U64)(p.t_rp + p.t_rcd + p.t_cas));
        } else {
            access = cycles((U64)(p.t_rcd + p.t_cas));
        }
        b.busy_until = start + access;
        b.open_row = row;
        b.row_valid = true;
        return b.busy_until;
    }

    void
    resetTimebase() override
    {
        for (Bank &b : banks)
            b = Bank{};
    }

    void serialize(std::vector<U64> &out) const override;
    bool restore(const std::vector<U64> &words) override;

    AuditView
    audit() const override
    {
        AuditView v;
        v.banked = true;
        for (const Bank &b : banks)
            v.max_bank_busy = std::max(v.max_bank_busy, b.busy_until);
        return v;
    }

    const char *name() const override { return "banked-dram"; }

  private:
    struct Bank
    {
        SimCycle busy_until;
        U64 open_row = 0;
        bool row_valid = false;
    };

    size_t
    bankOf(GuestPhys line_addr) const
    {
        return (size_t)((line_addr.raw() / (U64)p.row_bytes)
                        % (U64)p.dram_banks);
    }
    U64
    rowOf(GuestPhys line_addr) const
    {
        return line_addr.raw() / ((U64)p.row_bytes * (U64)p.dram_banks);
    }

    MemBackendParams p;        // simlint: transient (config-derived)
    std::vector<Bank> banks;
    Counter &st_reads;         // simlint: transient (stats tree)
    Counter &st_writes;        // simlint: transient (stats tree)
    Counter &st_row_hits;      // simlint: transient (stats tree)
    Counter &st_row_conflicts; // simlint: transient (stats tree)
    Counter &st_busy_waits;    // simlint: transient (stats tree)
};

void
BankedDramBackend::serialize(std::vector<U64> &out) const
{
    out.push_back(TAG_BANKED);
    out.push_back((U64)banks.size());
    for (const Bank &b : banks) {
        out.push_back(b.busy_until.raw());
        out.push_back(b.open_row);
        out.push_back(b.row_valid ? 1 : 0);
    }
}

bool
BankedDramBackend::restore(const std::vector<U64> &words)
{
    if (words.size() < 2 || words[0] != TAG_BANKED
        || words[1] != banks.size()
        || words.size() != 2 + 3 * banks.size())
        return false;
    size_t i = 2;
    for (Bank &b : banks) {
        b.busy_until = SimCycle(words[i++]);
        b.open_row = words[i++];
        b.row_valid = words[i++] != 0;
    }
    return true;
}

/**
 * eDRAM cache fronting a PCM store. The set-associative eDRAM tag
 * array absorbs hits at edram_latency; a miss fetches the line from
 * PCM (pcm_read_latency, per-bank busy stamps). PCM writes are slow
 * and asymmetric, so dirty eDRAM victims are not written through:
 * they enter a bounded deferred-write queue that drains FIFO onto
 * idle banks as simulated time passes — and synchronously (a forced
 * drain) when the queue is full.
 *
 * All drain decisions depend only on typed stamps, never on how
 * often drainTo() is called, so the model is deterministic under any
 * pump cadence (including skip-ahead cores).
 */
class HybridBackend final : public MemBackend
{
  public:
    HybridBackend(const SimConfig &cfg, StatsTree &stats,
                  const std::string &prefix)
        : p(cfg.membackend),
          line_bytes(p.edram_line_bytes), ways(p.edram_ways),
          sets(edramSets(p)),
          edram((size_t)sets * ways), banks((size_t)p.dram_banks),
          st_edram_hits(stats.counter(prefix + "membackend/edram_hits")),
          st_edram_misses(
              stats.counter(prefix + "membackend/edram_misses")),
          st_pcm_reads(stats.counter(prefix + "membackend/pcm_reads")),
          st_pcm_writes(stats.counter(prefix + "membackend/pcm_writes")),
          st_deferred_enq(
              stats.counter(prefix + "membackend/deferred_enqueued")),
          st_deferred_drains(
              stats.counter(prefix + "membackend/deferred_drained")),
          st_deferred_forced(
              stats.counter(prefix + "membackend/deferred_forced"))
    {
    }

    SimCycle
    request(GuestPhys line_addr, bool is_write, SimCycle now) override
    {
        drainTo(now);
        GuestPhys line = line_addr.alignedDown((U64)line_bytes);
        int set = setOf(line);
        U64 tag = tagOf(line);
        EdramLine *base = &edram[(size_t)set * ways];
        for (int w = 0; w < ways; w++) {
            if (base[w].valid && base[w].tag == tag) {
                st_edram_hits++;
                base[w].stamp = ++tick;
                if (is_write)
                    base[w].dirty = true;
                return now + cycles((U64)p.edram_latency);
            }
        }
        st_edram_misses++;
        // Fetch the line from PCM (write misses allocate too: the
        // store merges into the fetched line inside the eDRAM).
        PcmBank &b = banks[bankOf(line)];
        SimCycle start = std::max(now, b.busy_until);
        b.busy_until = start + cycles((U64)p.pcm_read_latency);
        st_pcm_reads++;
        // Victim: invalid way first, else least-recently used.
        int way = -1;
        for (int w = 0; w < ways; w++) {
            if (!base[w].valid) {
                way = w;
                break;
            }
        }
        if (way < 0) {
            way = 0;
            for (int w = 1; w < ways; w++) {
                if (base[w].stamp < base[way].stamp)
                    way = w;
            }
        }
        EdramLine &v = base[way];
        if (v.valid && v.dirty)
            enqueueDeferred(lineAddrOf(set, v.tag), now);
        v.tag = tag;
        v.valid = true;
        v.dirty = is_write;
        v.stamp = ++tick;
        return b.busy_until + cycles((U64)p.edram_latency);
    }

    SimCycle
    nextDue() const override
    {
        if (deferred.empty())
            return CYCLE_NEVER;
        const DeferredWrite &w = deferred.front();
        return std::max(w.enq, banks[bankOf(w.line)].busy_until);
    }

    void
    drainTo(SimCycle now) override
    {
        // FIFO drain onto idle banks: the head write issues once its
        // bank's busy-until stamp has passed. Start stamps depend
        // only on (enq, busy_until), never on the call cadence.
        while (!deferred.empty()) {
            const DeferredWrite &w = deferred.front();
            PcmBank &b = banks[bankOf(w.line)];
            if (b.busy_until > now)
                break;
            SimCycle start = std::max(b.busy_until, w.enq);
            if (start > now)
                break;
            b.busy_until = start + cycles((U64)p.pcm_write_latency);
            st_pcm_writes++;
            st_deferred_drains++;
            deferred.pop_front();
        }
    }

    void
    resetTimebase() override
    {
        // Quiesce to a cold memory model: the machine checkpoint
        // protocol resets BOTH the capturing and the restoring side,
        // so a cold model on each keeps resumes cycle-exact.
        for (PcmBank &b : banks)
            b = PcmBank{};
        deferred.clear();
        std::fill(edram.begin(), edram.end(), EdramLine{});
        tick = 0;
    }

    void serialize(std::vector<U64> &out) const override;
    bool restore(const std::vector<U64> &words) override;

    AuditView
    audit() const override
    {
        AuditView v;
        v.banked = true;
        v.deferred_depth = deferred.size();
        v.deferred_capacity = (size_t)p.deferred_writes;
        for (const PcmBank &b : banks)
            v.max_bank_busy = std::max(v.max_bank_busy, b.busy_until);
        return v;
    }

    const char *name() const override { return "hybrid"; }

  private:
    struct EdramLine
    {
        U64 tag = 0;
        U64 stamp = 0;
        bool valid = false;
        bool dirty = false;
    };
    struct DeferredWrite
    {
        GuestPhys line;
        SimCycle enq;
    };
    struct PcmBank
    {
        SimCycle busy_until;
    };

    static int
    edramSets(const MemBackendParams &mp)
    {
        CacheParams geom;
        geom.size_bytes = mp.edram_size_bytes;
        geom.ways = mp.edram_ways;
        geom.line_bytes = mp.edram_line_bytes;
        return geom.sets();
    }

    int setOf(GuestPhys line) const
    {
        return (int)((line.raw() / (U64)line_bytes) & (U64)(sets - 1));
    }
    U64 tagOf(GuestPhys line) const
    {
        return (line.raw() / (U64)line_bytes) / (U64)sets;
    }
    GuestPhys lineAddrOf(int set, U64 tag) const
    {
        return GuestPhys((tag * (U64)sets + (U64)set) * (U64)line_bytes);
    }
    size_t bankOf(GuestPhys line) const
    {
        return (size_t)((line.raw() / (U64)p.row_bytes)
                        % (U64)p.dram_banks);
    }

    void
    enqueueDeferred(GuestPhys line, SimCycle now)
    {
        if ((int)deferred.size() >= p.deferred_writes) {
            // Queue full: the oldest write drains synchronously,
            // stalling on its (possibly busy) bank.
            const DeferredWrite &w = deferred.front();
            PcmBank &b = banks[bankOf(w.line)];
            SimCycle start = std::max({now, b.busy_until, w.enq});
            b.busy_until = start + cycles((U64)p.pcm_write_latency);
            st_pcm_writes++;
            st_deferred_forced++;
            deferred.pop_front();
        }
        deferred.push_back(DeferredWrite{line, now});
        st_deferred_enq++;
    }

    MemBackendParams p;         // simlint: transient (config-derived)
    int line_bytes;             // simlint: transient (config-derived)
    int ways;                   // simlint: transient (config-derived)
    int sets;                   // simlint: transient (config-derived)
    std::vector<EdramLine> edram;
    std::vector<PcmBank> banks;
    std::deque<DeferredWrite> deferred;
    U64 tick = 0;
    Counter &st_edram_hits;     // simlint: transient (stats tree)
    Counter &st_edram_misses;   // simlint: transient (stats tree)
    Counter &st_pcm_reads;      // simlint: transient (stats tree)
    Counter &st_pcm_writes;     // simlint: transient (stats tree)
    Counter &st_deferred_enq;   // simlint: transient (stats tree)
    Counter &st_deferred_drains; // simlint: transient (stats tree)
    Counter &st_deferred_forced; // simlint: transient (stats tree)
};

void
HybridBackend::serialize(std::vector<U64> &out) const
{
    out.push_back(TAG_HYBRID);
    out.push_back(tick);
    out.push_back((U64)edram.size());
    for (const EdramLine &l : edram) {
        out.push_back(l.tag);
        out.push_back(l.stamp);
        out.push_back((l.valid ? 1 : 0) | (l.dirty ? 2 : 0));
    }
    out.push_back((U64)banks.size());
    for (const PcmBank &b : banks)
        out.push_back(b.busy_until.raw());
    out.push_back((U64)deferred.size());
    for (const DeferredWrite &w : deferred) {
        out.push_back(w.line.raw());
        out.push_back(w.enq.raw());
    }
}

bool
HybridBackend::restore(const std::vector<U64> &words)
{
    size_t i = 0;
    auto next = [&](U64 &v) {
        if (i >= words.size())
            return false;
        v = words[i++];
        return true;
    };
    U64 tag = 0, n = 0;
    if (!next(tag) || tag != TAG_HYBRID || !next(tick) || !next(n)
        || n != edram.size())
        return false;
    for (EdramLine &l : edram) {
        U64 flags = 0;
        if (!next(l.tag) || !next(l.stamp) || !next(flags))
            return false;
        l.valid = (flags & 1) != 0;
        l.dirty = (flags & 2) != 0;
    }
    if (!next(n) || n != banks.size())
        return false;
    for (PcmBank &b : banks) {
        U64 raw = 0;
        if (!next(raw))
            return false;
        b.busy_until = SimCycle(raw);
    }
    if (!next(n))
        return false;
    deferred.clear();
    for (U64 k = 0; k < n; k++) {
        U64 line = 0, enq = 0;
        if (!next(line) || !next(enq))
            return false;
        deferred.push_back(DeferredWrite{GuestPhys(line), SimCycle(enq)});
    }
    return i == words.size();
}

}  // namespace

std::unique_ptr<MemBackend>
makeMemBackend(const SimConfig &cfg, StatsTree &stats,
               const std::string &prefix)
{
    switch (cfg.membackend.kind) {
    case MemBackendKind::Fixed:
        return std::make_unique<FixedLatencyBackend>(cfg, stats, prefix);
    case MemBackendKind::BankedDram:
        return std::make_unique<BankedDramBackend>(cfg, stats, prefix);
    case MemBackendKind::Hybrid:
        return std::make_unique<HybridBackend>(cfg, stats, prefix);
    }
    fatal("unknown memory backend kind %d", (int)cfg.membackend.kind);
}

}  // namespace ptl
