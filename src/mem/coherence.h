/**
 * @file
 * Multi-core cache coherence.
 *
 * The paper's default multi-core configuration uses an "instant
 * visibility" model — line movements between the per-core cache
 * hierarchies cost zero cycles — while noting that the infrastructure
 * is in place for MOESI-compatible protocols to be plugged in, and
 * listing a full MOESI interconnect as future work (Section 7). Both
 * are implemented here behind one interface: a directory tracks each
 * line's per-core MOESI state; the instant model performs the same
 * state transitions with no transfer latency, the MOESI model charges
 * the configured interconnect latency for cache-to-cache transfers,
 * upgrades and invalidations.
 */

#ifndef PTLSIM_MEM_COHERENCE_H_
#define PTLSIM_MEM_COHERENCE_H_

#include <unordered_map>
#include <vector>

#include "lib/config.h"
#include "mem/cache.h"
#include "stats/stats.h"

namespace ptl {

class MemoryHierarchy;

/** Outcome of a coherence request. */
struct CoherenceResult
{
    int extra_latency = 0;     ///< interconnect cycles added to the miss
    bool peer_supplied = false;///< line came from a peer cache, not DRAM
};

/** Directory-based coherence across per-core cache hierarchies. */
class CoherenceController
{
  public:
    CoherenceController(CoherenceKind kind, int interconnect_latency,
                        StatsTree &stats);

    /** Register a core's hierarchy; returns its core id. */
    int registerCore(MemoryHierarchy *hierarchy);

    int coreCount() const { return (int)cores.size(); }

    /** Core `core` suffered a read miss on `line_addr`. */
    CoherenceResult onReadMiss(int core, GuestPhys line_addr);

    /** Core `core` suffered a write miss on `line_addr`. */
    CoherenceResult onWriteMiss(int core, GuestPhys line_addr);

    /** Core `core` writes a line it holds in Shared state. */
    CoherenceResult onUpgrade(int core, GuestPhys line_addr);

    /** Core `core` evicted `line_addr` from its outermost level. */
    void onEvict(int core, GuestPhys line_addr, LineState state);

    /** The state the directory believes `core` holds `line_addr` in. */
    LineState directoryState(int core, GuestPhys line_addr) const;

    /**
     * Verify the MOESI invariants for one line: at most one M or E
     * holder, M/E exclude all sharers, at most one O holder. panic()s
     * on violation (tests call this after randomized traffic).
     */
    void checkInvariants(GuestPhys line_addr) const;

    /** Run checkInvariants over every line the directory knows. */
    void checkAllInvariants() const;

    /**
     * Non-fatal audit of one line's MOESI legality: returns the number
     * of violated invariants (0 = legal) and, if `why` is non-null,
     * appends a description of the first problem. Used by the
     * invariant checker (src/verify), which decides panic vs. count.
     */
    int auditLine(GuestPhys line_addr,
                  std::string *why = nullptr) const;

    /** Audit every directory line; returns total violations. */
    int auditAll(std::string *why = nullptr) const;

    /** Test-only: force the directory's view of one (core, line) pair
     *  so tests can prove illegal states are detected. */
    void corruptStateForTest(int core, GuestPhys line_addr, LineState s);

    CoherenceKind kind() const { return kind_; }

  private:
    struct DirEntry
    {
        std::vector<LineState> per_core;
    };

    DirEntry &entry(GuestPhys line_addr);
    /** Directory keys in sorted order (deterministic audit walks). */
    std::vector<U64> sortedLines() const;
    int transferLatency() const
    {
        return kind_ == CoherenceKind::Moesi ? interconnect : 0;
    }

    CoherenceKind kind_;
    int interconnect;
    std::vector<MemoryHierarchy *> cores;
    std::unordered_map<U64, DirEntry> directory;
    Counter &xfers;
    Counter &invalidations;
    Counter &upgrades;
};

}  // namespace ptl

#endif  // PTLSIM_MEM_COHERENCE_H_
