/**
 * @file
 * Set-associative cache tag arrays.
 *
 * PTLsim's caches are physically tagged (Section 4.3) and are timing
 * models: line *data* always lives in PhysMem (the integrated simulator
 * keeps one architectural copy of memory), while these arrays track
 * presence, dirtiness/coherence state, and banking. The K8's
 * pseudo-dual-ported L1D (8 banks on 64-bit boundaries, 1-cycle replay
 * on conflict — Section 5) is modeled via bankOf().
 *
 * Victim selection is delegated to a pluggable ReplacementPolicy
 * (mem/replacement.h) chosen per level from CacheParams::repl; the
 * default LRU policy reproduces the original hardwired behavior
 * stamp for stamp.
 */

#ifndef PTLSIM_MEM_CACHE_H_
#define PTLSIM_MEM_CACHE_H_

#include <memory>
#include <vector>

#include "lib/config.h"
#include "lib/counter.h"
#include "lib/simtime.h"
#include "mem/physmem.h"
#include "mem/replacement.h"

namespace ptl {

/** MOESI line states (Invalid/Shared/Exclusive/Owned/Modified). */
enum class LineState : U8 { Invalid, Shared, Exclusive, Owned, Modified };

inline bool
lineDirty(LineState s)
{
    return s == LineState::Modified || s == LineState::Owned;
}

/** One cache level's tag array. */
class CacheArray
{
  public:
    /**
     * @param evictions optional counter bumped per valid-line
     *        displacement (the per-level policy-eviction stat)
     * @param seed determinism seed for stochastic policies
     */
    explicit CacheArray(const CacheParams &params,
                        Counter *evictions = nullptr, U64 seed = 0);

    struct Line
    {
        U64 tag = 0;
        LineState state = LineState::Invalid;
        bool prefetched = false;  ///< brought in by the prefetcher,
                                  ///< not yet demanded (stream tagging)
        bool valid() const { return state != LineState::Invalid; }
    };

    /** Displaced-line report from insert(). */
    struct Eviction
    {
        bool valid = false;
        GuestPhys line_addr;
        LineState state = LineState::Invalid;
    };

    /** Find the line containing paddr; nullptr on miss. */
    Line *lookup(GuestPhys paddr, bool touch_lru = true);

    /**
     * Install the line containing paddr in `state`, evicting the
     * policy's victim way if necessary (reported through `evicted`).
     */
    Line *insert(GuestPhys paddr, LineState state,
                 Eviction *evicted = nullptr);

    /** Invalidate the line containing paddr if present. */
    void invalidate(GuestPhys paddr);

    /** Invalidate every line (used by -perfctr style cache flushes). */
    void invalidateAll();

    /** L1D bank index of an access (64-bit interleaving). */
    int
    bankOf(GuestPhys paddr) const
    {
        return (int)((paddr.raw() >> 3) % banks_);
    }

    GuestPhys
    lineAddr(GuestPhys paddr) const
    {
        return paddr.alignedDown((U64)line_bytes);
    }
    int lineBytes() const { return line_bytes; }
    int banks() const { return banks_; }
    CycleDelta latency() const { return latency_; }
    int mshrCount() const { return mshr_count; }
    bool enabled() const { return sets > 0; }
    const char *replName() const { return repl ? repl->name() : "none"; }

    /** Visit every valid line (coherence invariant checks in tests). */
    template <typename F>
    void
    forEachLine(F &&fn) const
    {
        for (int s = 0; s < sets; s++) {
            for (int w = 0; w < ways; w++) {
                const Line &line = lines[(size_t)s * ways + w];
                if (line.valid())
                    fn(GuestPhys((line.tag * sets + s) * (U64)line_bytes),
                       line);
            }
        }
    }

  private:
    unsigned setOf(GuestPhys paddr) const
    {
        return (unsigned)((paddr.raw() / line_bytes) & (U64)(sets - 1));
    }
    U64 tagOf(GuestPhys paddr) const
    {
        return (paddr.raw() / line_bytes) / sets;
    }

    int sets;
    int ways;
    int line_bytes;
    CycleDelta latency_;
    int mshr_count;
    int banks_;
    std::unique_ptr<ReplacementPolicy> repl;
    Counter *evictions_;  // simlint: stats-ok (optional, owner-bound)
    std::vector<Line> lines;
};

}  // namespace ptl

#endif  // PTLSIM_MEM_CACHE_H_
