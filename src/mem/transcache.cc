#include "mem/transcache.h"

#include "mem/pagetable.h"

namespace ptl {

void
TranslationCache::insert(Pfn cr3, Vpn vpn, const PageWalk &walk, bool wrote)
{
    Entry &e = slots[vpn.raw() & (ENTRIES - 1)];
    e.vpn = vpn;
    e.cr3 = cr3;
    e.mfn = walk.mfn;
    e.epoch = epoch;
    e.writable = walk.writable;
    e.user = walk.user;
    e.noexec = walk.noexec;
    // The walker just set D on a write; otherwise D is known set only
    // if the leaf already carried it.
    e.dirty = wrote || walk.dirty;
}

void
TranslationCache::attachStats(StatsTree &stats)
{
    c_hits = &stats.counter("transcache/hits");
    c_misses = &stats.counter("transcache/misses");
    c_flushes = &stats.counter("transcache/flushes");
    c_shadow = &stats.counter("transcache/shadow_checks");
    // Fold in anything counted before the tree was attached so the
    // stats view matches the cache's own totals.
    *c_hits += n_hits;
    *c_misses += n_misses;
    *c_flushes += n_flushes;
}

}  // namespace ptl
