#include "mem/hierarchy.h"

#include "lib/logging.h"

namespace ptl {

MemoryHierarchy::MemoryHierarchy(const SimConfig &config,
                                 AddressSpace &addrspace, StatsTree &stats,
                                 const std::string &prefix,
                                 CoherenceController *coherence_ctl)
    : cfg(config), aspace(&addrspace), coherence(coherence_ctl),
      l1i(config.l1i,
          &stats.counter(prefix + "icache/policy_evictions"),
          config.seed ^ 0x11),
      l1d(config.l1d,
          &stats.counter(prefix + "dcache/policy_evictions"),
          config.seed ^ 0x1d),
      l2(config.l2, &stats.counter(prefix + "l2/policy_evictions"),
         config.seed ^ 0x22),
      l3(config.l3, &stats.counter(prefix + "l3/policy_evictions"),
         config.seed ^ 0x33),
      backend(makeMemBackend(config, stats, prefix)),
      dtlb(config.dtlb_entries, config.dtlb_entries),   // fully associative
      itlb(config.itlb_entries, config.itlb_entries),
      tlb2(config.tlb2_entries ? config.tlb2_entries : config.tlb2_ways,
           config.tlb2_ways),
      tlb2_enabled(config.tlb2_entries > 0),
      pde_cache(24),
      pde_enabled(config.pde_cache),
      st_d_accesses(stats.counter(prefix + "dcache/accesses")),
      st_d_misses(stats.counter(prefix + "dcache/misses")),
      st_d_bank_conflicts(stats.counter(prefix + "dcache/bank_conflicts")),
      st_i_accesses(stats.counter(prefix + "icache/accesses")),
      st_i_misses(stats.counter(prefix + "icache/misses")),
      st_l2_accesses(stats.counter(prefix + "l2/accesses")),
      st_l2_misses(stats.counter(prefix + "l2/misses")),
      st_l3_accesses(stats.counter(prefix + "l3/accesses")),
      st_l3_misses(stats.counter(prefix + "l3/misses")),
      st_mem_accesses(stats.counter(prefix + "mem/accesses")),
      st_dtlb_accesses(stats.counter(prefix + "dtlb/accesses")),
      st_dtlb_hits(stats.counter(prefix + "dtlb/hits")),
      st_dtlb_misses(stats.counter(prefix + "dtlb/misses")),
      st_dtlb_l2_hits(stats.counter(prefix + "dtlb/l2_hits")),
      st_itlb_accesses(stats.counter(prefix + "itlb/accesses")),
      st_itlb_hits(stats.counter(prefix + "itlb/hits")),
      st_itlb_misses(stats.counter(prefix + "itlb/misses")),
      st_walks(stats.counter(prefix + "walker/walks")),
      st_walk_loads(stats.counter(prefix + "walker/loads")),
      st_prefetches(stats.counter(prefix + "dcache/prefetches")),
      st_mshr_full(stats.counter(prefix + "dcache/mshr_full")),
      st_writebacks(stats.counter(prefix + "mem/writebacks"))
{
    if (coherence)
        core_id = coherence->registerCore(this);
}

CycleDelta
MemoryHierarchy::missPath(GuestPhys paddr, bool is_write, bool is_fetch,
                          SimCycle now)
{
    // Ask the coherence fabric first: a peer cache may supply the line.
    CoherenceResult coh;
    if (coherence) {
        GuestPhys line = l1d.lineAddr(paddr);
        coh = is_write ? coherence->onWriteMiss(core_id, line)
                       : coherence->onReadMiss(core_id, line);
    }
    LineState fill_state =
        is_write ? LineState::Modified
                 : ((coherence && coh.peer_supplied) ? LineState::Shared
                                                     : LineState::Exclusive);
    CycleDelta upstream = (l2.enabled() ? l2.latency() : cycles(0))
                          + (l3.enabled() ? l3.latency() : cycles(0));
    CycleDelta latency;
    st_l2_accesses++;
    if (l2.enabled() && l2.lookup(paddr)) {
        latency = l2.latency();
        CacheArray::Line *l2line = l2.lookup(paddr);
        if (is_write)
            l2line->state = LineState::Modified;
        // Tagged stream prefetch: the first demand touch of a
        // prefetched line keeps the stream running one line ahead.
        if (cfg.hw_prefetch && l2line->prefetched && !is_fetch) {
            l2line->prefetched = false;
            issuePrefetch(l2.lineAddr(paddr) + (U64)l2.lineBytes(), now);
        }
    } else {
        st_l2_misses++;
        bool filled = false;
        if (l3.enabled()) {
            st_l3_accesses++;
            if (l3.lookup(paddr)) {
                latency = (l2.enabled() ? l2.latency() : cycles(0))
                          + l3.latency();
                filled = true;
            } else {
                st_l3_misses++;
            }
        }
        if (!filled) {
            if (coh.peer_supplied) {
                latency = (l2.enabled() ? l2.latency() : cycles(0))
                          + cycles((U64)coh.extra_latency);
            } else {
                st_mem_accesses++;
                // The memory leg is the backend's call: the request is
                // issued once the upstream levels have been traversed,
                // and the fill completes at whatever absolute cycle
                // the timing model reports (with FixedLatencyBackend
                // this reduces exactly to the old scalar addition).
                SimCycle done = backend->request(l1d.lineAddr(paddr),
                                                 is_write, now + upstream);
                latency = (done - now) + cycles((U64)coh.extra_latency);
            }
            if (l3.enabled()) {
                CacheArray::Eviction ev;
                l3.insert(paddr, fill_state, &ev);
            }
        }
        if (l2.enabled()) {
            CacheArray::Eviction ev;
            l2.insert(paddr, fill_state, &ev);
            if (ev.valid) {
                // Enforce inclusion and report the eviction upstream;
                // dirty victims write back through the backend.
                l1d.invalidate(ev.line_addr);
                l1i.invalidate(ev.line_addr);
                if (lineDirty(ev.state)) {
                    st_writebacks++;
                    st_mem_accesses++;
                    backend->request(ev.line_addr, true, now);
                }
                if (coherence)
                    coherence->onEvict(core_id, ev.line_addr, ev.state);
            }
        }
    }
    (is_fetch ? l1i : l1d).insert(paddr, fill_state);
    return latency;
}

MemResult
MemoryHierarchy::dataAccess(GuestPhys paddr, bool is_write, SimCycle now,
                            bool no_banking)
{
    MemResult out;
    // Bank-conflict model: the K8 L1D is pseudo-dual-ported with 8
    // banks on 64-bit boundaries; two same-cycle accesses to one bank
    // force a 1-cycle replay of the collider (Section 5).
    if (cfg.enforce_banking && !no_banking && l1d.banks() > 1) {
        if (now != bank_cycle) {
            bank_cycle = now;
            bank_mask = 0;
        }
        U32 bit = 1u << l1d.bankOf(paddr);
        if (bank_mask & bit) {
            st_d_bank_conflicts++;
            out.bank_conflict = true;
            out.latency = cycles(1);
            return out;
        }
        bank_mask |= bit;
    }

    st_d_accesses++;
    if (CacheArray::Line *line = l1d.lookup(paddr)) {
        out.l1_hit = true;
        out.latency = l1d.latency();
        // A hit on a line whose fill is still in flight waits for it.
        GuestPhys line_addr = l1d.lineAddr(paddr);
        for (const Mshr &m : mshrs) {
            if (m.line == line_addr && m.ready > now)
                out.latency = std::max(out.latency, m.ready - now);
        }
        if (is_write) {
            if (coherence && line->state == LineState::Shared) {
                CoherenceResult coh =
                    coherence->onUpgrade(core_id, l1d.lineAddr(paddr));
                out.latency += cycles((U64)coh.extra_latency);
            }
            line->state = LineState::Modified;
            if (CacheArray::Line *l2line = l2.lookup(paddr))
                l2line->state = LineState::Modified;
        }
        return out;
    }

    st_d_misses++;
    GuestPhys line_addr = l1d.lineAddr(paddr);

    // MSHR check: merge with an outstanding miss to the same line, or
    // fail the access if all miss buffers are busy.
    int active = 0;
    for (const Mshr &m : mshrs) {
        if (m.ready > now) {
            active++;
            if (m.line == line_addr) {
                out.latency = m.ready - now;
                return out;
            }
        }
    }
    if (active >= l1d.mshrCount()) {
        st_mshr_full++;
        out.mshr_full = true;
        out.latency = cycles(1);
        return out;
    }

    out.latency = l1d.latency() + missPath(paddr, is_write, false, now);
    mshrs.push_back({line_addr, now + out.latency});
    // Garbage-collect completed entries opportunistically.
    if (mshrs.size() > 4 * (size_t)l1d.mshrCount()) {
        std::erase_if(mshrs, [&](const Mshr &m) { return m.ready <= now; });
    }

    // K8-style next-line hardware prefetch (reference machine only).
    if (cfg.hw_prefetch && !is_write)
        issuePrefetch(line_addr + (U64)l1d.lineBytes(), now);
    return out;
}

void
MemoryHierarchy::issuePrefetch(GuestPhys next_line, SimCycle now)
{
    // K8's hardware prefetcher streams into the L2: demand accesses
    // still record an L1 miss but fill from the fast L2 instead of
    // paying a memory access. The fill itself still occupies the
    // backend (a banked model sees it as a row-hit bulk access that
    // pipelines behind the demand miss that triggered it).
    if (!l2.enabled() || l2.lookup(next_line, false))
        return;
    st_prefetches++;
    backend->request(next_line, false, now);
    CacheArray::Eviction ev;
    CacheArray::Line *line =
        l2.insert(next_line, LineState::Exclusive, &ev);
    line->prefetched = true;
    if (ev.valid) {
        l1d.invalidate(ev.line_addr);
        l1i.invalidate(ev.line_addr);
        if (coherence)
            coherence->onEvict(core_id, ev.line_addr, ev.state);
    }
}

MemResult
MemoryHierarchy::fetchAccess(GuestPhys paddr, SimCycle now)
{
    MemResult out;
    st_i_accesses++;
    if (l1i.lookup(paddr)) {
        out.l1_hit = true;
        out.latency = l1i.latency();
        return out;
    }
    st_i_misses++;
    out.latency = l1i.latency() + missPath(paddr, false, true, now);
    // Sequential code prefetch: real front ends (including the K8's)
    // stream the next line. The bulk fill goes through the backend —
    // issued right behind the demand miss, so a banked model sees
    // consecutive lines of straight-line code pipeline in the open
    // row instead of each paying a full random-access latency.
    GuestPhys next = l1i.lineAddr(paddr) + (U64)l1i.lineBytes();
    if (!l1i.lookup(next, false)) {
        bool from_memory = !(l2.enabled() && l2.lookup(next, false));
        if (from_memory)
            backend->request(next, false, now);
        if (l2.enabled() && from_memory) {
            CacheArray::Eviction ev;
            l2.insert(next, LineState::Exclusive, &ev);
            if (ev.valid) {
                l1d.invalidate(ev.line_addr);
                l1i.invalidate(ev.line_addr);
                if (coherence)
                    coherence->onEvict(core_id, ev.line_addr, ev.state);
            }
        }
        l1i.insert(next, LineState::Exclusive);
    }
    return out;
}

CycleDelta
MemoryHierarchy::walkTiming(Pfn /*cr3*/, GuestVirt va,
                            const PageWalk &walk,
                            bool is_write, SimCycle now)
{
    // The walk engine injects one dependent load per level; the PDE
    // cache (when configured) jumps straight to the leaf table.
    int first_level = 0;
    if (pde_enabled) {
        if (pde_cache.lookup(va) != GuestPhys(0)) {
            first_level = 3;
        } else if (walk.levels == 4) {
            GuestPhys leaf_table = walk.pte_addr[3].pageBase();
            pde_cache.insert(va, leaf_table);
        }
    }
    CycleDelta latency;
    for (int level = first_level; level < walk.levels; level++) {
        st_walk_loads++;
        MemResult r =
            dataAccess(walk.pte_addr[level], false, now + latency, true);
        latency += r.latency;
    }
    if (walk.present
        && aspace->setAccessedDirty(walk, is_write)) {
        // Microcode performs a locked RMW on the changed PTE.
        MemResult r =
            dataAccess(walk.pte_addr[3], true, now + latency, true);
        latency += r.latency;
    }
    return latency;
}

TranslateResult
MemoryHierarchy::translateCommon(Pfn cr3, GuestVirt va, MemAccess kind,
                                 bool user_mode, SimCycle now, Tlb &tlb,
                                 Counter &hits, Counter &misses)
{
    TranslateResult out;
    Vpn vpn = va.vpn();
    bool is_write = (kind == MemAccess::Write);

    if (const TlbEntry *e = tlb.lookup(vpn)) {
        bool needs_dirty_walk = is_write && !e->dirty;
        if (!needs_dirty_walk) {
            hits++;
            out.tlb_hit = true;
            // Permission check straight from the cached entry.
            if (is_write && !e->writable) {
                out.fault = GuestFault::PageFaultWrite;
                return out;
            }
            if (user_mode && !e->user) {
                out.fault = (kind == MemAccess::Execute)
                                ? GuestFault::PageFaultFetch
                                : (is_write ? GuestFault::PageFaultWrite
                                            : GuestFault::PageFaultRead);
                return out;
            }
            if (kind == MemAccess::Execute && e->noexec) {
                out.fault = GuestFault::PageFaultFetch;
                return out;
            }
            out.paddr = e->mfn.pageBase().withOffset(va.pageOffset());
            return out;
        }
        // First store to a clean page: hardware re-walks to set D.
        tlb.flushVpn(vpn);
    }

    // L2 TLB (real K8 organization; absent from the PTLsim model).
    // Note: an L1-TLB miss that hits the L2 TLB is *not* counted in
    // `misses` — that counter mirrors the K8 perf event (translations
    // requiring a page walk), which is what Table 1 reports.
    if (tlb2_enabled && kind != MemAccess::Execute) {
        if (const TlbEntry *e2 = tlb2.lookup(vpn)) {
            bool dirty_ok = !is_write || e2->dirty;
            if (dirty_ok) {
                st_dtlb_l2_hits++;
                out.tlb2_hit = true;
                out.latency = cycles(2);
                GuestFault f = GuestFault::None;
                if (is_write && !e2->writable)
                    f = GuestFault::PageFaultWrite;
                else if (user_mode && !e2->user)
                    f = is_write ? GuestFault::PageFaultWrite
                                 : GuestFault::PageFaultRead;
                if (f != GuestFault::None) {
                    out.fault = f;
                    return out;
                }
                tlb.insert(*e2);
                out.paddr = e2->mfn.pageBase().withOffset(va.pageOffset());
                return out;
            }
            tlb2.flushVpn(vpn);
        }
    }

    // Hardware page walk.
    misses++;
    st_walks++;
    PageWalk walk = aspace->walk(cr3, va);
    out.latency += walkTiming(cr3, va, walk, is_write, now);
    out.fault = checkWalkAccess(walk, kind, user_mode);
    if (out.fault != GuestFault::None)
        return out;

    TlbEntry e;
    e.vpn = vpn;
    e.mfn = walk.mfn;
    e.writable = walk.writable;
    e.user = walk.user;
    e.noexec = walk.noexec;
    // The TLB caches the D bit: pages already dirtied need no re-walk
    // on a later store through a read-inserted entry.
    e.dirty = is_write || walk.dirty;
    tlb.insert(e);
    if (tlb2_enabled && kind != MemAccess::Execute)
        tlb2.insert(e);
    out.paddr = walk.paddr(va);
    return out;
}

TranslateResult
MemoryHierarchy::translateData(Pfn cr3, GuestVirt va, bool is_write,
                               bool user_mode, SimCycle now)
{
    st_dtlb_accesses++;
    return translateCommon(cr3, va,
                           is_write ? MemAccess::Write : MemAccess::Read,
                           user_mode, now, dtlb, st_dtlb_hits,
                           st_dtlb_misses);
}

TranslateResult
MemoryHierarchy::translateFetch(Pfn cr3, GuestVirt va, bool user_mode,
                                SimCycle now)
{
    st_itlb_accesses++;
    return translateCommon(cr3, va, MemAccess::Execute, user_mode, now,
                           itlb, st_itlb_hits, st_itlb_misses);
}

void
MemoryHierarchy::flushTlbs()
{
    dtlb.flushAll();
    itlb.flushAll();
    if (tlb2_enabled)
        tlb2.flushAll();
    if (pde_enabled)
        pde_cache.flushAll();
}

void
MemoryHierarchy::flushTlbVpn(Vpn vpn)
{
    dtlb.flushVpn(vpn);
    itlb.flushVpn(vpn);
    if (tlb2_enabled)
        tlb2.flushVpn(vpn);
}

void
MemoryHierarchy::flushCaches()
{
    l1i.invalidateAll();
    l1d.invalidateAll();
    l2.invalidateAll();
    l3.invalidateAll();
    mshrs.clear();
}

void
MemoryHierarchy::invalidateLine(GuestPhys line_addr)
{
    l1d.invalidate(line_addr);
    l1i.invalidate(line_addr);
    l2.invalidate(line_addr);
    l3.invalidate(line_addr);
    // Pending fills of an invalidated line are dead; drop them so a
    // later miss goes back through the coherence fabric.
    std::erase_if(mshrs,
                  [&](const Mshr &m) { return m.line == line_addr; });
}

void
MemoryHierarchy::downgradeLine(GuestPhys line_addr)
{
    for (CacheArray *arr : {&l1d, &l2, &l3}) {
        if (!arr->enabled())
            continue;
        if (CacheArray::Line *line = arr->lookup(line_addr, false)) {
            if (line->state != LineState::Invalid)
                line->state = LineState::Shared;
        }
    }
}

}  // namespace ptl
