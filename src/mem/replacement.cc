#include "mem/replacement.h"

#include <algorithm>

#include "lib/logging.h"

namespace ptl {

ReplacementPolicy::ReplacementPolicy(ReplKind kind, int sets, int ways,
                                     U64 seed)
    : kind_(kind), ways_(ways), rng_(seed)
{
    switch (kind_) {
    case ReplKind::Lru:
        // Exact LRU with a single global tick, replicating the original
        // CacheArray behavior stamp for stamp: every touch gets the
        // next tick value, and the victim is the way with the smallest
        // stamp (way order breaks ties, which only arise among
        // never-touched ways).
        stamp_.assign((size_t)sets * ways, 0);
        break;
    case ReplKind::TreePlru:
        // Tree pseudo-LRU: ways-1 direction bits per set arranged as a
        // binary tree. A touch flips every node on the way's root path
        // to point AWAY from it; the victim walk follows the bits down.
        if (!isPow2((U64)ways))
            fatal("tree-plru requires a power-of-two way count (got %d)",
                  ways);
        bits_.assign((size_t)sets * (ways > 1 ? ways - 1 : 1), 0);
        break;
    case ReplKind::Random:
        // Seeded random: draws from the deterministic xoshiro rng, so
        // two runs with the same seed produce identical victim
        // sequences — random in distribution, not in reproducibility.
        break;
    }
}

void
ReplacementPolicy::touchTree(int set, int way)
{
    if (ways_ < 2)
        return;
    U8 *tree = &bits_[(size_t)set * (ways_ - 1)];
    int node = 0, lo = 0, hi = ways_;
    while (hi - lo > 1) {
        int mid = (lo + hi) / 2;
        bool right = way >= mid;
        tree[node] = right ? 0 : 1;  // point away from the touched half
        node = 2 * node + (right ? 2 : 1);
        (right ? lo : hi) = mid;
    }
}

int
ReplacementPolicy::victim(int set)
{
    switch (kind_) {
    case ReplKind::Lru: {
        const U64 *base = &stamp_[(size_t)set * ways_];
        int v = 0;
        for (int w = 1; w < ways_; w++) {
            if (base[w] < base[v])
                v = w;
        }
        return v;
    }
    case ReplKind::TreePlru: {
        if (ways_ < 2)
            return 0;
        const U8 *tree = &bits_[(size_t)set * (ways_ - 1)];
        int node = 0, lo = 0, hi = ways_;
        while (hi - lo > 1) {
            bool right = tree[node] != 0;
            node = 2 * node + (right ? 2 : 1);
            (right ? lo : hi) = (lo + hi) / 2;
        }
        return lo;
    }
    case ReplKind::Random:
        return (int)rng_.below((U64)ways_);
    }
    fatal("unknown replacement policy kind %d", (int)kind_);
}

void
ReplacementPolicy::reset()
{
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(bits_.begin(), bits_.end(), 0);
    tick_ = 0;
    // The random rng stream deliberately continues across resets:
    // reseeding on every cache flush would correlate victims across
    // flush epochs.
}

const char *
ReplacementPolicy::name() const
{
    switch (kind_) {
    case ReplKind::Lru:
        return "lru";
    case ReplKind::TreePlru:
        return "tree-plru";
    case ReplKind::Random:
        return "random";
    }
    return "?";
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplKind kind, int sets, int ways, U64 seed)
{
    return std::make_unique<ReplacementPolicy>(kind, sets, ways, seed);
}

}  // namespace ptl
