/**
 * @file
 * Pluggable main-memory timing backends.
 *
 * The original hierarchy bottomed out in one scalar (cfg.mem_latency
 * added inline on the miss path), which made memory-technology
 * studies impossible without forking the cache code. MemBackend is
 * the narrow request/complete interface the hierarchy now calls
 * instead: a request issued at `now` returns the absolute SimCycle at
 * which the line is available, and all backend-internal state (bank
 * busy stamps, open rows, deferred writes) advances deterministically
 * from those typed stamps.
 *
 * Three models ship behind the interface (selected by
 * SimConfig::membackend.kind, i.e. purely from config):
 *
 *  - FixedLatencyBackend: every access costs cfg.mem_latency. This is
 *    the bit-identical default — the pre-refactor timing.
 *  - BankedDramBackend: rank/bank/row-buffer model. Accesses map to a
 *    bank by row interleaving; an access to the bank's open row pays
 *    t_cas, a conflict pays t_rp + t_rcd + t_cas, and a busy bank
 *    queues behind its busy-until stamp.
 *  - HybridBackend: an eDRAM cache fronting a PCM store. Reads that
 *    miss the eDRAM pay the PCM array read; PCM's slow asymmetric
 *    writes are absorbed by a bounded deferred-write queue that
 *    drains FIFO onto idle banks (or synchronously when full).
 *
 * Layering: mem/ sits below sys/, so backends cannot see the event
 * queue. The inversion is nextDue()/drainTo(): backends self-drain
 * lazily from the typed stamps whenever they are called (the result
 * depends only on simulated time, not call cadence), and cores fold
 * nextDue() into their sleep hints so skip-ahead never overshoots
 * pending deferred work.
 *
 * Checkpointing: serialize()/restore() round-trip the complete timing
 * state as a flat word stream (unit-testable mid-flight). Machine
 * checkpoints instead quiesce the microarchitecture on BOTH capture
 * and restore (resetTimebase), which keeps resumes cycle-exact by
 * construction.
 */

#ifndef PTLSIM_MEM_MEMBACKEND_H_
#define PTLSIM_MEM_MEMBACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "lib/config.h"
#include "lib/guestaddr.h"
#include "lib/simtime.h"
#include "stats/stats.h"

namespace ptl {

/** Main-memory timing model: the narrow hierarchy-to-memory seam. */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * Introspection snapshot for the invariant checker and tests:
     * live deferred-write occupancy and the latest bank stamp.
     */
    struct AuditView
    {
        size_t deferred_depth = 0;     ///< queued deferred writes
        size_t deferred_capacity = 0;  ///< 0 when the model has none
        SimCycle max_bank_busy;        ///< latest busy-until stamp
        bool banked = false;           ///< model has per-bank stamps
    };

    /**
     * Issue a line-granular access at `now`; returns the absolute
     * cycle at which the data is available (>= now).
     */
    virtual SimCycle request(GuestPhys line_addr, bool is_write,
                             SimCycle now) = 0;

    /**
     * Earliest cycle at which internal deferred work wants service,
     * or CYCLE_NEVER. Cores fold this into their sleep hints.
     */
    virtual SimCycle nextDue() const { return CYCLE_NEVER; }

    /** Run internal maintenance (deferred-write drains) up to `now`. */
    virtual void drainTo(SimCycle now) { (void)now; }

    /**
     * Virtual time warped (checkpoint capture/restore): drop every
     * absolute stamp so the rolled-back clock sees a quiesced memory.
     */
    virtual void resetTimebase() = 0;

    /** Flat-word checkpoint of the complete timing state. */
    virtual void serialize(std::vector<U64> &out) const = 0;

    /** Inverse of serialize(); false on a malformed stream. */
    virtual bool restore(const std::vector<U64> &words) = 0;

    virtual AuditView audit() const { return {}; }

    virtual const char *name() const = 0;
};

/**
 * Build the backend selected by cfg.membackend, registering its
 * counters under `prefix` + "membackend/".
 */
std::unique_ptr<MemBackend> makeMemBackend(const SimConfig &cfg,
                                           StatsTree &stats,
                                           const std::string &prefix);

}  // namespace ptl

#endif  // PTLSIM_MEM_MEMBACKEND_H_
