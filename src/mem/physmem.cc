#include "mem/physmem.h"

#include <cstring>

#include "lib/logging.h"
#include "lib/rng.h"

namespace ptl {

PhysMem::PhysMem(U64 bytes, U64 seed, bool shuffle)
    : frame_count(alignUp(bytes, PAGE_SIZE) >> PAGE_SHIFT),
      data(frame_count * PAGE_SIZE, 0)
{
    free_list.resize(frame_count);
    for (U64 i = 0; i < frame_count; i++)
        free_list[i] = i;
    if (shuffle) {
        // Fisher-Yates with the deterministic RNG: guest-contiguous
        // allocations land on scattered machine frames, like Xen.
        Rng rng(seed ^ 0x5EED5EEDULL);
        for (U64 i = frame_count - 1; i > 0; i--) {
            U64 j = rng.below(i + 1);
            std::swap(free_list[i], free_list[j]);
        }
    }
}

void
PhysMem::restoreRawBytes(const std::vector<U8> &bytes)
{
    if (bytes.size() != data.size())
        fatal("checkpoint memory size mismatch");
    data = bytes;
}

U64
PhysMem::allocFrame()
{
    if (next_free >= free_list.size())
        fatal("guest physical memory exhausted (%llu frames)",
              (unsigned long long)frame_count);
    return free_list[next_free++];
}

void
PhysMem::checkFrame(U64 mfn) const
{
    if (mfn >= frame_count)
        panic("machine frame %llu out of range (%llu frames)",
              (unsigned long long)mfn, (unsigned long long)frame_count);
}

U8 *
PhysMem::frameData(U64 mfn)
{
    checkFrame(mfn);
    return data.data() + mfn * PAGE_SIZE;
}

const U8 *
PhysMem::frameData(U64 mfn) const
{
    checkFrame(mfn);
    return data.data() + mfn * PAGE_SIZE;
}

U64
PhysMem::read(U64 paddr, unsigned bytes) const
{
    ptl_assert(bytes >= 1 && bytes <= 8);
    U64 v = 0;
    readBytes(paddr, &v, bytes);
    return v;
}

void
PhysMem::write(U64 paddr, U64 value, unsigned bytes)
{
    ptl_assert(bytes >= 1 && bytes <= 8);
    writeBytes(paddr, &value, bytes);
}

void
PhysMem::readBytes(U64 paddr, void *out, size_t n) const
{
    U8 *dst = (U8 *)out;
    while (n > 0) {
        U64 mfn = pageOf(paddr);
        U64 off = pageOffset(paddr);
        size_t chunk = std::min<size_t>(n, PAGE_SIZE - off);
        std::memcpy(dst, frameData(mfn) + off, chunk);
        dst += chunk;
        paddr += chunk;
        n -= chunk;
    }
}

void
PhysMem::writeBytes(U64 paddr, const void *in, size_t n)
{
    const U8 *src = (const U8 *)in;
    while (n > 0) {
        U64 mfn = pageOf(paddr);
        U64 off = pageOffset(paddr);
        size_t chunk = std::min<size_t>(n, PAGE_SIZE - off);
        std::memcpy(frameData(mfn) + off, src, chunk);
        src += chunk;
        paddr += chunk;
        n -= chunk;
    }
}

}  // namespace ptl
