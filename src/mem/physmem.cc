#include "mem/physmem.h"

#include <cstring>

#include "lib/logging.h"
#include "lib/rng.h"

namespace ptl {

PhysMem::PhysMem(U64 bytes, U64 seed, bool shuffle)
    : frame_count(alignUp(bytes, PAGE_SIZE) >> PAGE_SHIFT),
      data(frame_count * PAGE_SIZE, 0)
{
    free_list.resize(frame_count);
    for (U64 i = 0; i < frame_count; i++)
        free_list[i] = i;
    if (shuffle) {
        // Fisher-Yates with the deterministic RNG: guest-contiguous
        // allocations land on scattered machine frames, like Xen.
        Rng rng(seed ^ 0x5EED5EEDULL);
        for (U64 i = frame_count - 1; i > 0; i--) {
            U64 j = rng.below(i + 1);
            std::swap(free_list[i], free_list[j]);
        }
    }
}

void
PhysMem::restoreRawBytes(const std::vector<U8> &bytes)
{
    if (bytes.size() != data.size())
        fatal("checkpoint memory size mismatch");
    data = bytes;
}

Pfn
PhysMem::allocFrame()
{
    if (next_free >= free_list.size())
        fatal("guest physical memory exhausted (%llu frames)",
              (unsigned long long)frame_count);
    return Pfn(free_list[next_free++]);
}

void
PhysMem::checkFrame(Pfn mfn) const
{
    if (mfn.raw() >= frame_count)
        panic("machine frame %llu out of range (%llu frames)",
              (unsigned long long)mfn.raw(),
              (unsigned long long)frame_count);
}

U8 *
PhysMem::frameData(Pfn mfn)
{
    checkFrame(mfn);
    return data.data() + mfn.raw() * PAGE_SIZE;
}

const U8 *
PhysMem::frameData(Pfn mfn) const
{
    checkFrame(mfn);
    return data.data() + mfn.raw() * PAGE_SIZE;
}

U64
PhysMem::read(GuestPhys paddr, unsigned bytes) const
{
    ptl_assert(bytes >= 1 && bytes <= 8);
    U64 v = 0;
    readBytes(paddr, &v, bytes);
    return v;
}

void
PhysMem::write(GuestPhys paddr, U64 value, unsigned bytes)
{
    ptl_assert(bytes >= 1 && bytes <= 8);
    writeBytes(paddr, &value, bytes);
}

void
PhysMem::readBytes(GuestPhys paddr, void *out, size_t n) const
{
    U8 *dst = (U8 *)out;
    while (n > 0) {
        Pfn mfn = paddr.pfn();
        U64 off = paddr.pageOffset();
        size_t chunk = std::min<size_t>(n, PAGE_SIZE - off);
        std::memcpy(dst, frameData(mfn) + off, chunk);
        dst += chunk;
        paddr += chunk;
        n -= chunk;
    }
}

void
PhysMem::writeBytes(GuestPhys paddr, const void *in, size_t n)
{
    const U8 *src = (const U8 *)in;
    while (n > 0) {
        Pfn mfn = paddr.pfn();
        U64 off = paddr.pageOffset();
        size_t chunk = std::min<size_t>(n, PAGE_SIZE - off);
        std::memcpy(frameData(mfn) + off, src, chunk);
        src += chunk;
        paddr += chunk;
        n -= chunk;
    }
}

}  // namespace ptl
