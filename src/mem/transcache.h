/**
 * @file
 * The functional-path translation cache (a software TLB).
 *
 * PTLsim's simulation speed (Section 5) rests on simulator-internal
 * caches that are transparent to the modeled microarchitecture: the
 * basic block cache avoids re-decoding x86 instructions, and the
 * functional memory path must avoid re-walking the 4-level page tables
 * for every guest byte it touches. This cache memoizes completed walks
 * for guestTranslate(): a direct-mapped VPN-indexed array of entries
 * tagged with (vpn, cr3) carrying the leaf frame, the effective
 * permission bits, and whether the leaf Dirty bit is known set.
 *
 * It is distinct from the *modeled* TLBs in src/mem/tlb.h: those have
 * K8 geometry, cost cycles, and appear in Table 1; this cache has no
 * timing effect whatsoever — it only makes the functional simulator
 * faster, exactly like gem5's cached translations in its atomic CPU.
 *
 * Invalidation contract (see DESIGN.md "Simulator-internal caches"):
 * the epoch counter is bumped (an O(1) whole-cache flush) whenever
 * page-table state may have changed — AddressSpace::map/mapRange/
 * unmap/createRoot/cloneRoot, a guest store landing on any frame a
 * cached walk traversed (snooped in the guest-write paths the same way
 * notifyCodeWrite snoops self-modifying code), guest CR3 reloads
 * (HC_new_baseptr), and checkpoint restore. A/D semantics are
 * preserved by construction: entries are inserted only after the
 * walker set the Accessed bits, and a write through an entry whose
 * Dirty bit is not known set is treated as a miss so the uncached
 * walker runs and sets D exactly as hardware microcode would.
 */

#ifndef PTLSIM_MEM_TRANSCACHE_H_
#define PTLSIM_MEM_TRANSCACHE_H_

#include "mem/physmem.h"
#include "stats/stats.h"

namespace ptl {

struct PageWalk;

class TranslationCache
{
  public:
    /** Direct-mapped slot count (power of two). */
    static constexpr size_t ENTRIES = 4096;

    struct Entry
    {
        Vpn vpn;
        Pfn cr3;
        Pfn mfn;
        U64 epoch = 0;           ///< valid iff epoch == cache epoch
        bool writable = false;
        bool user = false;
        bool noexec = false;
        bool dirty = false;      ///< leaf D bit known set
    };

    /**
     * Tag-match probe; returns nullptr on a tag or epoch mismatch.
     * Does not touch the hit/miss counters: the caller decides whether
     * a match is usable (a write through a clean entry is a miss).
     */
    Entry *
    probe(Pfn cr3, Vpn vpn)
    {
        Entry &e = slots[vpn.raw() & (ENTRIES - 1)];
        if (e.epoch == epoch && e.vpn == vpn && e.cr3 == cr3)
            return &e;
        return nullptr;
    }

    /** Record a completed, access-checked walk (A/D bits already set). */
    void insert(Pfn cr3, Vpn vpn, const PageWalk &walk, bool wrote);

    /** Drop every entry (O(1) epoch bump). */
    void
    flushAll()
    {
        epoch++;
        n_flushes++;
        if (c_flushes)
            (*c_flushes)++;
    }

    void
    countHit()
    {
        n_hits++;
        if (c_hits)
            (*c_hits)++;
    }

    void
    countMiss()
    {
        n_misses++;
        if (c_misses)
            (*c_misses)++;
    }

    void
    countShadowCheck()
    {
        if (c_shadow)
            (*c_shadow)++;
    }

    /** Mirror the counters into a stats tree (transcache/...). */
    void attachStats(StatsTree &stats);

    U64 hits() const { return n_hits; }
    U64 misses() const { return n_misses; }
    U64 flushes() const { return n_flushes; }

    /** PTL_VERIFY shadow mode: re-walk on every hit and compare. */
    bool shadowEnabled() const { return shadow; }
    void setShadowEnabled(bool on) { shadow = on; }

  private:
    std::vector<Entry> slots{ENTRIES};
    U64 epoch = 1;               ///< entries start invalid (epoch 0)
    bool shadow = true;

    U64 n_hits = 0;
    U64 n_misses = 0;
    U64 n_flushes = 0;
    Counter *c_hits = nullptr;
    Counter *c_misses = nullptr;
    Counter *c_flushes = nullptr;
    Counter *c_shadow = nullptr;
};

class AddressSpace;
enum class MemAccess : U8;
enum class GuestFault : U8;

/**
 * PTL_VERIFY shadow mode for this cache: on every cached hit,
 * guestTranslate() re-runs the uncached 4-level walk and panics
 * unless the cached outcome — fault kind, machine-physical address,
 * and the claimed leaf Dirty state — is byte-identical to what the
 * walker produces. Declared here (the layer that owns the cache) so
 * the functional path never depends on src/verify; the checking
 * implementation lives in verify/invariant.cc. Runtime-gated by
 * setShadowEnabled() (default on), compiled out when PTL_VERIFY=OFF.
 */
void verifyCachedTranslation(const AddressSpace &aspace, Pfn cr3,
                             GuestVirt va, MemAccess kind, bool user_mode,
                             GuestFault cached_fault,
                             GuestPhys cached_paddr, bool entry_dirty);

}  // namespace ptl

#endif  // PTLSIM_MEM_TRANSCACHE_H_
