/**
 * @file
 * The per-core memory hierarchy: TLBs + hardware walk engine + caches.
 *
 * One MemoryHierarchy instance owns a core's L1I / banked L1D / L2 / L3
 * tag arrays, its DTLB/ITLB (plus the optional L2 TLB and PDE cache of
 * the k8-native reference configuration), the miss-buffer (MSHR) pool,
 * and the hardware page-table walk engine that injects four dependent
 * loads through the data cache on a TLB miss (Section 4.3). All timing
 * decisions are made on machine-physical addresses; functional data
 * always lives in PhysMem.
 *
 * Below the last cache level the hierarchy bottoms out in a pluggable
 * MemBackend (mem/membackend.h): demand fills, writebacks and bulk
 * prefetch fills all go through backend->request(), so swapping the
 * memory technology (fixed latency, banked DRAM, eDRAM+PCM hybrid) is
 * a config change, not a cache-code fork.
 */

#ifndef PTLSIM_MEM_HIERARCHY_H_
#define PTLSIM_MEM_HIERARCHY_H_

#include <memory>
#include <string>
#include <vector>

#include "lib/config.h"
#include "lib/simtime.h"
#include "mem/cache.h"
#include "mem/coherence.h"
#include "mem/membackend.h"
#include "mem/pagetable.h"
#include "mem/tlb.h"
#include "stats/stats.h"

namespace ptl {

/** Timing outcome of a cache access. */
struct MemResult
{
    CycleDelta latency;       ///< cycles until the data is available
    bool l1_hit = false;
    bool mshr_full = false;   ///< no miss buffer free: replay the op
    bool bank_conflict = false;///< L1D bank busy this cycle: 1-cycle replay
};

/** Timing + fault outcome of an address translation. */
struct TranslateResult
{
    CycleDelta latency;       ///< extra cycles (0 on a TLB hit)
    bool tlb_hit = false;
    bool tlb2_hit = false;
    GuestFault fault = GuestFault::None;
    GuestPhys paddr;          ///< machine-physical address (if no fault)
};

class MemoryHierarchy
{
  public:
    /**
     * @param prefix stats path prefix, e.g. "core0/"
     * @param coherence optional cross-core controller (multi-core)
     */
    MemoryHierarchy(const SimConfig &config, AddressSpace &aspace,
                    StatsTree &stats, const std::string &prefix,
                    CoherenceController *coherence = nullptr);

    /**
     * Data-side cache access at machine-physical `paddr`.
     * @param no_banking suppress bank-conflict modeling (walk engine)
     */
    MemResult dataAccess(GuestPhys paddr, bool is_write, SimCycle now,
                         bool no_banking = false);

    /** Instruction-side access (L1I -> L2 -> L3 -> memory). */
    MemResult fetchAccess(GuestPhys paddr, SimCycle now);

    /**
     * Data translation: DTLB lookup, then (on miss) L2 TLB, then the
     * hardware walk engine. Performs the microcode A/D-bit updates.
     */
    TranslateResult translateData(Pfn cr3, GuestVirt va, bool is_write,
                                  bool user_mode, SimCycle now);

    /** Instruction translation via the ITLB. */
    TranslateResult translateFetch(Pfn cr3, GuestVirt va, bool user_mode,
                                   SimCycle now);

    /** CR3 reload: drop all TLB state (x86 has no ASIDs here). */
    void flushTlbs();

    /** Flush one page's translations (invlpg; SMC handling). */
    void flushTlbVpn(Vpn vpn);

    /** Flush all cache tags (the paper's -perfctr pre-run flush). */
    void flushCaches();

    /**
     * Virtual time warped (checkpoint restore): drop in-flight miss
     * tracking, the per-cycle bank occupancy, and the backend's
     * absolute bank/queue stamps, which would otherwise charge
     * phantom multi-thousand-cycle fill waits against the rolled-back
     * clock.
     */
    void
    resetTimebase()
    {
        mshrs.clear();
        bank_cycle = CYCLE_NEVER;
        bank_mask = 0;
        backend->resetTimebase();
    }

    /** The main-memory timing model this hierarchy bottoms out in. */
    MemBackend &memBackend() { return *backend; }

    /**
     * Earliest cycle at which the backend has deferred work due, or
     * CYCLE_NEVER. Cores fold this into their sleep hints so
     * skip-ahead never overshoots a pending deferred-write drain.
     */
    SimCycle backendNextDue() const { return backend->nextDue(); }

    /** Pump the backend's lazy maintenance up to `now`. */
    void drainBackend(SimCycle now) { backend->drainTo(now); }

    /** Coherence downgrade from a peer core. */
    void invalidateLine(GuestPhys line_addr);

    /** Make a peer's write visible: downgrade M/E/O to Shared. */
    void downgradeLine(GuestPhys line_addr);

    int coreId() const { return core_id; }
    const SimConfig &config() const { return cfg; }
    AddressSpace &addressSpace() { return *aspace; }

  private:
    /** Shared L1-miss path: L2 -> L3 -> backend/coherence. */
    CycleDelta missPath(GuestPhys paddr, bool is_write, bool is_fetch,
                        SimCycle now);
    /** Bring `next_line` into L1D/L2 ahead of demand (stream prefetch). */
    void issuePrefetch(GuestPhys next_line, SimCycle now);
    TranslateResult translateCommon(Pfn cr3, GuestVirt va, MemAccess kind,
                                    bool user_mode, SimCycle now, Tlb &tlb,
                                    Counter &hits, Counter &misses);
    CycleDelta walkTiming(Pfn cr3, GuestVirt va, const PageWalk &walk,
                          bool is_write, SimCycle now);

    SimConfig cfg;
    AddressSpace *aspace;
    CoherenceController *coherence;
    int core_id = 0;

    CacheArray l1i;
    CacheArray l1d;
    CacheArray l2;
    CacheArray l3;
    std::unique_ptr<MemBackend> backend;
    Tlb dtlb;
    Tlb itlb;
    Tlb tlb2;              ///< 0-entry sentinel when disabled
    bool tlb2_enabled;
    PdeCache pde_cache;
    bool pde_enabled;

    struct Mshr { GuestPhys line; SimCycle ready; };
    std::vector<Mshr> mshrs;

    // L1D banking: per-cycle bank occupancy bitmap.
    SimCycle bank_cycle = CYCLE_NEVER;
    U32 bank_mask = 0;

    // Statistics.
    Counter &st_d_accesses;
    Counter &st_d_misses;
    Counter &st_d_bank_conflicts;
    Counter &st_i_accesses;
    Counter &st_i_misses;
    Counter &st_l2_accesses;
    Counter &st_l2_misses;
    Counter &st_l3_accesses;
    Counter &st_l3_misses;
    Counter &st_mem_accesses;
    Counter &st_dtlb_accesses;
    Counter &st_dtlb_hits;
    Counter &st_dtlb_misses;
    Counter &st_dtlb_l2_hits;
    Counter &st_itlb_accesses;
    Counter &st_itlb_hits;
    Counter &st_itlb_misses;
    Counter &st_walks;
    Counter &st_walk_loads;
    Counter &st_prefetches;
    Counter &st_mshr_full;
    Counter &st_writebacks;
};

}  // namespace ptl

#endif  // PTLSIM_MEM_HIERARCHY_H_
