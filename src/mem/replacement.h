/**
 * @file
 * Pluggable cache replacement policies.
 *
 * PTLsim's original tag arrays hardwired global-tick LRU into the
 * lookup/insert paths. This interface extracts victim selection so a
 * level's policy is a config choice (CacheParams::repl): exact LRU
 * (the bit-identical default), tree pseudo-LRU (one bit per tree node,
 * the common hardware approximation), and seeded random (draws from
 * the deterministic xoshiro rng so runs stay reproducible).
 *
 * The policy is a sealed tagged type rather than a class hierarchy:
 * touch() sits on the per-access hot path (every cache hit in every
 * level calls it), so dispatch is an inlined branch on the kind, not a
 * vtable call. New policies are added here and selected through
 * ReplKind — the interface stays three methods either way.
 *
 * Contract with CacheArray: the array itself handles invalid ways
 * (an invalid way is always filled first, in way order, exactly as
 * the original scan did); victim(set) is consulted only when every
 * way of the set holds a valid line. touch(set, way) is called on
 * every hit and on every fill.
 */

#ifndef PTLSIM_MEM_REPLACEMENT_H_
#define PTLSIM_MEM_REPLACEMENT_H_

#include <memory>
#include <vector>

#include "lib/config.h"
#include "lib/rng.h"

namespace ptl {

/** Victim-selection policy for one set-associative array. */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(ReplKind kind, int sets, int ways, U64 seed);

    /** Record a use of (set, way): a hit or a fill. */
    void
    touch(int set, int way)
    {
        if (kind_ == ReplKind::Lru)
            stamp_[(size_t)set * ways_ + way] = ++tick_;
        else if (kind_ == ReplKind::TreePlru)
            touchTree(set, way);
        // Random keeps no recency state.
    }

    /** Pick the victim way; called only when every way is valid. */
    int victim(int set);

    /** Drop all recency state (full-array invalidation). */
    void reset();

    const char *name() const;

  private:
    void touchTree(int set, int way);

    ReplKind kind_;
    int ways_;
    U64 tick_ = 0;            ///< lru: global recency clock
    std::vector<U64> stamp_;  ///< lru: last-touch tick per (set, way)
    std::vector<U8> bits_;    ///< tree-plru: ways-1 tree nodes per set
    Rng rng_;                 ///< random: seeded, deterministic
};

/** Build the policy selected by `kind` for a sets x ways array. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplKind kind, int sets, int ways, U64 seed);

}  // namespace ptl

#endif  // PTLSIM_MEM_REPLACEMENT_H_
