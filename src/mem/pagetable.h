/**
 * @file
 * Real 4-level x86-64 page tables.
 *
 * The paper (Section 4.3) stresses that full-system fidelity requires
 * the *actual* page table pages to exist in guest physical memory: the
 * hardware walker's four dependent loads hit or miss in the data cache,
 * page table lines compete with user data for cache capacity, and the
 * microcode must set the Accessed/Dirty tracking bits that x86 kernels
 * expect. This module implements genuine x86-64 PTE encodings stored in
 * PhysMem frames, a builder used by the domain constructor (the role
 * Xen's domain builder plays for paravirtual guests), and a functional
 * walker that reports the machine-physical address of every PTE it
 * touched — which is exactly what the timing-level walk engine needs to
 * inject its dependent loads.
 */

#ifndef PTLSIM_MEM_PAGETABLE_H_
#define PTLSIM_MEM_PAGETABLE_H_

#include "mem/physmem.h"
#include "mem/transcache.h"
#include "uop/uopexec.h"   // GuestFault

namespace ptl {

/** x86-64 page table entry bits. */
struct Pte
{
    static constexpr U64 P = 1ULL << 0;    ///< present
    static constexpr U64 RW = 1ULL << 1;   ///< writable
    static constexpr U64 US = 1ULL << 2;   ///< user accessible
    static constexpr U64 A = 1ULL << 5;    ///< accessed
    static constexpr U64 D = 1ULL << 6;    ///< dirty (leaf only)
    static constexpr U64 NX = 1ULL << 63;  ///< no-execute
    static constexpr U64 ADDR_MASK = 0x000ffffffffff000ULL;
};

/** Kind of memory access, for permission checks. */
enum class MemAccess : U8 { Read, Write, Execute };

/** Result of walking the page table tree for one virtual address. */
struct PageWalk
{
    bool present = false;
    bool writable = false;
    bool user = false;
    bool noexec = false;
    bool dirty = false;      ///< leaf D bit already set
    Pfn mfn;                 ///< leaf machine frame
    GuestPhys pte_addr[4];   ///< machine-physical address of each level's PTE
    int levels = 0;          ///< number of levels actually touched

    /** Machine-physical address for `va` under this translation: the
     *  one legal virt->phys bridge (walked leaf frame + page offset). */
    GuestPhys
    paddr(GuestVirt va) const
    {
        return mfn.pageBase().withOffset(va.pageOffset());
    }
};

/** Permission/fault check for a completed walk. */
GuestFault checkWalkAccess(const PageWalk &walk, MemAccess kind,
                           bool user_mode);

/**
 * The same check over raw permission bits, shared between the walker
 * and the translation cache so cached entries fault byte-identically
 * to an uncached walk.
 */
GuestFault checkPageAccess(bool present, bool writable, bool user,
                           bool noexec, MemAccess kind, bool user_mode);

/**
 * Builder + functional walker over page tables living in PhysMem.
 * The Pfn-typed "cr3" values handled here are root table MFNs,
 * matching how the real CR3 register holds the PML4 base address.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(PhysMem &phys)
        : mem(&phys), pt_frame(phys.frameCount(), false)
    {
    }

    /** Allocate an empty PML4 root; returns its MFN (a CR3 value). */
    Pfn createRoot();

    /**
     * Allocate a new root whose PML4 entries alias `src_cr3`'s. Used to
     * give each guest task its own CR3 (so task switches reload CR3 and
     * flush TLBs, as on real hardware) while sharing one address space.
     */
    Pfn cloneRoot(Pfn src_cr3);

    /**
     * Map one 4 KB page. `flags` is a combination of Pte::RW / Pte::US /
     * Pte::NX; P is implied. Intermediate tables are allocated on demand
     * (always with RW|US so leaf flags govern permissions).
     */
    void map(Pfn cr3, GuestVirt va, Pfn mfn, U64 flags);

    /** Map a contiguous virtual range, allocating fresh frames. */
    void mapRange(Pfn cr3, GuestVirt va, U64 bytes, U64 flags);

    /** Remove a mapping (marks the leaf not-present). */
    void unmap(Pfn cr3, GuestVirt va);

    /** Pure functional walk; does not modify A/D bits. */
    PageWalk walk(Pfn cr3, GuestVirt va) const;

    /**
     * Set the Accessed bit along the walk path and (for writes) the
     * Dirty bit in the leaf — the tracking-bit updates x86 operating
     * systems expect the hardware/microcode to perform transparently.
     * Returns true if any PTE actually changed (i.e. microcode had to
     * do a locked RMW on the page table).
     */
    bool setAccessedDirty(const PageWalk &walk, bool is_write);

    PhysMem &physMem() { return *mem; }

    // ---- functional-path translation cache (simulator-internal) ----

    TranslationCache &transCache() { return tcache; }
    const TranslationCache &transCache() const { return tcache; }

    /** Drop every cached translation (CR3 reload, checkpoint restore). */
    void flushTranslationCache() { tcache.flushAll(); }

    /** Mirror the transcache counters into `stats` (transcache/...). */
    void attachStats(StatsTree &stats) { tcache.attachStats(stats); }

    /**
     * True if `mfn` holds page-table state some cached translation's
     * walk traversed. Guest-write paths snoop this the same way
     * notifyCodeWrite snoops self-modifying code.
     */
    bool
    isPageTableFrame(Pfn mfn) const
    {
        return mfn.raw() < pt_frame.size() && pt_frame[mfn.raw()];
    }

    /** A guest store just landed on `mfn`: invalidate cached
     *  translations if it backs live page-table state. */
    void
    notifyGuestStore(Pfn mfn)
    {
        if (isPageTableFrame(mfn))
            tcache.flushAll();
    }

    /** Record the table frames a (successful) walk traversed, so
     *  guest stores to them are snooped. Called before caching. */
    void registerWalkFrames(const PageWalk &walk);

  private:
    Pfn allocTable();

    PhysMem *mem;
    TranslationCache tcache;
    std::vector<bool> pt_frame;  ///< per-MFN "backs page tables" bit
};

/** Per-level index of a canonical 48-bit virtual address (0 = PML4). */
inline unsigned
pageTableIndex(GuestVirt va, int level)
{
    return (unsigned)bits(va.raw(), 39 - 9 * level, 9);
}

}  // namespace ptl

#endif  // PTLSIM_MEM_PAGETABLE_H_
