/**
 * @file
 * MFN-indirected guest physical memory.
 *
 * Under Xen paravirtualization, a domain does not own a linear span of
 * physical memory starting at address zero: the hypervisor hands it an
 * arbitrary, generally non-contiguous set of machine frame numbers
 * (MFNs). PTLsim maps all of the domain's frames into its own address
 * space and performs *every* cache/memory operation on machine-physical
 * addresses (Sections 3 and 4.3 of the paper). PhysMem models exactly
 * that: a pool of 4 KB machine frames, an allocator that (optionally,
 * and by default) hands frames out in a seeded-shuffled order so that
 * guest-contiguous pages land on scattered machine addresses — which is
 * what makes physically-tagged cache conflict behaviour differ from a
 * virtually-tagged userspace simulator.
 */

#ifndef PTLSIM_MEM_PHYSMEM_H_
#define PTLSIM_MEM_PHYSMEM_H_

#include <cstddef>
#include <vector>

#include "lib/bitops.h"
#include "lib/guestaddr.h"

namespace ptl {

/** The machine's physical memory, organized as 4 KB frames. */
class PhysMem
{
  public:
    /**
     * @param bytes   total machine memory (rounded up to whole frames)
     * @param seed    determinism seed for the allocation order shuffle
     * @param shuffle hand out MFNs in shuffled (non-contiguous) order
     */
    PhysMem(U64 bytes, U64 seed = 42, bool shuffle = true);

    U64 frameCount() const { return frame_count; }
    U64 freeFrames() const { return free_list.size() - next_free; }

    /** Allocate one machine frame; fatal() when exhausted. */
    Pfn allocFrame();

    /** Raw pointer to a frame's 4 KB of data. */
    U8 *frameData(Pfn mfn);
    const U8 *frameData(Pfn mfn) const;

    /**
     * Byte-addressed machine-physical accessors. Accesses may cross
     * frame boundaries (the simulator's unaligned-access support relies
     * on this). `bytes` must be 1..8 for the value forms.
     */
    U64 read(GuestPhys paddr, unsigned bytes) const;
    void write(GuestPhys paddr, U64 value, unsigned bytes);
    void readBytes(GuestPhys paddr, void *out, size_t n) const;
    void writeBytes(GuestPhys paddr, const void *in, size_t n);

    /** Whole-memory access for checkpoint capture/restore. */
    const std::vector<U8> &rawBytes() const { return data; }
    void restoreRawBytes(const std::vector<U8> &bytes);

  private:
    void checkFrame(Pfn mfn) const;

    U64 frame_count;
    std::vector<U8> data;        ///< frame_count * PAGE_SIZE bytes
    std::vector<U64> free_list;  ///< allocation order (possibly shuffled)
    size_t next_free = 0;
};

}  // namespace ptl

#endif  // PTLSIM_MEM_PHYSMEM_H_
