/**
 * @file
 * Translation lookaside buffers.
 *
 * PTLsim's model carries a single-level 32-entry DTLB/ITLB pair; real
 * K8 silicon adds a 1024-entry 4-way L2 TLB and a 24-entry PDE cache
 * that short-circuits most of the 4-level walk. Both organizations are
 * modeled here: the paper's Table 1 DTLB rows (PTLsim ~2.4x the native
 * miss count) are a direct structural consequence of that difference,
 * and the k8-native reference preset enables the extra levels.
 */

#ifndef PTLSIM_MEM_TLB_H_
#define PTLSIM_MEM_TLB_H_

#include <vector>

#include "lib/bitops.h"
#include "mem/pagetable.h"

namespace ptl {

/** A cached translation. */
struct TlbEntry
{
    Vpn vpn;
    Pfn mfn;
    bool writable = false;
    bool user = false;
    bool noexec = false;
    bool dirty = false;   ///< leaf D bit known set (else stores re-walk)
    bool valid = false;
    U64 lru = 0;
};

/** One set-associative TLB level (entries == ways => fully associative). */
class Tlb
{
  public:
    Tlb(int entries, int ways);

    /** Look up a virtual page number; nullptr on miss. Updates LRU. */
    const TlbEntry *lookup(Vpn vpn);

    /** Install a translation (evicts LRU within the set). */
    void insert(const TlbEntry &entry);

    /** Drop every entry (CR3 reload / explicit flush). */
    void flushAll();

    /** Drop one page's translation (invlpg / SMC handling). */
    void flushVpn(Vpn vpn);

    int entryCount() const { return (int)entries.size(); }

  private:
    int sets;
    int ways;
    U64 tick = 0;
    std::vector<TlbEntry> entries;  ///< sets x ways
};

/**
 * Page-directory-entry cache: maps va[47:21] to the machine-physical
 * base of the last-level page table, reducing a 4-load walk to 1 load.
 * Present on real K8 (24 entries); absent from the PTLsim model.
 */
class PdeCache
{
  public:
    explicit PdeCache(int entries = 24) : capacity(entries) {}

    /** Returns the level-3 table base paddr, or 0 on miss. */
    GuestPhys lookup(GuestVirt va);
    void insert(GuestVirt va, GuestPhys table_paddr);
    void flushAll();

  private:
    struct Node { U64 key; GuestPhys table_paddr; U64 lru; };
    static U64 keyOf(GuestVirt va) { return va.raw() >> 21; }

    int capacity;
    U64 tick = 0;
    std::vector<Node> nodes;
};

}  // namespace ptl

#endif  // PTLSIM_MEM_TLB_H_
