#include "mem/tlb.h"

#include "lib/logging.h"

namespace ptl {

Tlb::Tlb(int entry_count, int way_count)
    : sets(entry_count / way_count), ways(way_count),
      entries((size_t)entry_count)
{
    ptl_assert(entry_count > 0 && way_count > 0);
    ptl_assert(entry_count % way_count == 0);
    ptl_assert(isPow2((U64)sets));
}

const TlbEntry *
Tlb::lookup(Vpn vpn)
{
    unsigned set = (unsigned)(vpn.raw() & (U64)(sets - 1));
    TlbEntry *base = &entries[(size_t)set * ways];
    for (int w = 0; w < ways; w++) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lru = ++tick;
            return &base[w];
        }
    }
    return nullptr;
}

void
Tlb::insert(const TlbEntry &entry)
{
    unsigned set = (unsigned)(entry.vpn.raw() & (U64)(sets - 1));
    TlbEntry *base = &entries[(size_t)set * ways];
    int victim = 0;
    for (int w = 0; w < ways; w++) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lru < base[victim].lru)
            victim = w;
    }
    base[victim] = entry;
    base[victim].valid = true;
    base[victim].lru = ++tick;
}

void
Tlb::flushAll()
{
    for (TlbEntry &e : entries)
        e.valid = false;
}

void
Tlb::flushVpn(Vpn vpn)
{
    unsigned set = (unsigned)(vpn.raw() & (U64)(sets - 1));
    TlbEntry *base = &entries[(size_t)set * ways];
    for (int w = 0; w < ways; w++) {
        if (base[w].valid && base[w].vpn == vpn)
            base[w].valid = false;
    }
}

GuestPhys
PdeCache::lookup(GuestVirt va)
{
    U64 key = keyOf(va);
    for (Node &n : nodes) {
        if (n.key == key) {
            n.lru = ++tick;
            return n.table_paddr;
        }
    }
    return GuestPhys(0);
}

void
PdeCache::insert(GuestVirt va, GuestPhys table_paddr)
{
    U64 key = keyOf(va);
    for (Node &n : nodes) {
        if (n.key == key) {
            n.table_paddr = table_paddr;
            n.lru = ++tick;
            return;
        }
    }
    if ((int)nodes.size() < capacity) {
        nodes.push_back({key, table_paddr, ++tick});
        return;
    }
    Node *victim = &nodes[0];
    for (Node &n : nodes) {
        if (n.lru < victim->lru)
            victim = &n;
    }
    *victim = {key, table_paddr, ++tick};
}

void
PdeCache::flushAll()
{
    nodes.clear();
}

}  // namespace ptl
