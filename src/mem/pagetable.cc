#include "mem/pagetable.h"

#include <cstring>

#include "lib/logging.h"

namespace ptl {

GuestFault
checkPageAccess(bool present, bool writable, bool user, bool noexec,
                MemAccess kind, bool user_mode)
{
    auto fault_kind = [&] {
        switch (kind) {
          case MemAccess::Read: return GuestFault::PageFaultRead;
          case MemAccess::Write: return GuestFault::PageFaultWrite;
          default: return GuestFault::PageFaultFetch;
        }
    };
    if (!present)
        return fault_kind();
    if (kind == MemAccess::Write && !writable)
        return fault_kind();
    if (user_mode && !user)
        return fault_kind();
    if (kind == MemAccess::Execute && noexec)
        return fault_kind();
    return GuestFault::None;
}

GuestFault
checkWalkAccess(const PageWalk &walk, MemAccess kind, bool user_mode)
{
    return checkPageAccess(walk.present, walk.writable, walk.user,
                           walk.noexec, kind, user_mode);
}

U64
AddressSpace::allocTable()
{
    U64 mfn = mem->allocFrame();
    std::memset(mem->frameData(mfn), 0, PAGE_SIZE);
    return mfn;
}

U64
AddressSpace::createRoot()
{
    tcache.flushAll();
    return allocTable();
}

U64
AddressSpace::cloneRoot(U64 src_cr3)
{
    U64 mfn = allocTable();
    std::memcpy(mem->frameData(mfn), mem->frameData(src_cr3), PAGE_SIZE);
    tcache.flushAll();
    return mfn;
}

void
AddressSpace::map(U64 cr3, U64 va, U64 mfn, U64 flags)
{
    ptl_assert(pageOffset(va) == 0);
    U64 table = cr3;
    for (int level = 0; level < 3; level++) {
        U64 pte_addr = (table << PAGE_SHIFT)
                       + pageTableIndex(va, level) * 8;
        U64 pte = mem->read(pte_addr, 8);
        if (!(pte & Pte::P)) {
            U64 next = allocTable();
            pte = (next << PAGE_SHIFT) | Pte::P | Pte::RW | Pte::US;
            mem->write(pte_addr, pte, 8);
        }
        table = (pte & Pte::ADDR_MASK) >> PAGE_SHIFT;
    }
    U64 leaf_addr = (table << PAGE_SHIFT) + pageTableIndex(va, 3) * 8;
    U64 leaf = (mfn << PAGE_SHIFT) | Pte::P
               | (flags & (Pte::RW | Pte::US | Pte::NX));
    mem->write(leaf_addr, leaf, 8);
    tcache.flushAll();
}

void
AddressSpace::mapRange(U64 cr3, U64 va, U64 bytes, U64 flags)
{
    ptl_assert(pageOffset(va) == 0);
    for (U64 off = 0; off < alignUp(bytes, PAGE_SIZE); off += PAGE_SIZE)
        map(cr3, va + off, mem->allocFrame(), flags);
}

void
AddressSpace::unmap(U64 cr3, U64 va)
{
    PageWalk w = walk(cr3, va);
    if (!w.present)
        return;
    mem->write(w.pte_addr[3], 0, 8);
    tcache.flushAll();
}

PageWalk
AddressSpace::walk(U64 cr3, U64 va) const
{
    PageWalk out;
    // Effective permissions are the AND across levels on real x86;
    // our intermediate tables are always RW|US so the leaf governs.
    U64 table = cr3;
    for (int level = 0; level < 4; level++) {
        U64 pte_addr = (table << PAGE_SHIFT)
                       + pageTableIndex(va, level) * 8;
        out.pte_addr[level] = pte_addr;
        out.levels = level + 1;
        U64 pte = mem->read(pte_addr, 8);
        if (!(pte & Pte::P))
            return out;  // not present at this level
        if (level == 3) {
            out.present = true;
            out.writable = pte & Pte::RW;
            out.user = pte & Pte::US;
            out.noexec = pte & Pte::NX;
            out.dirty = pte & Pte::D;
            out.mfn = (pte & Pte::ADDR_MASK) >> PAGE_SHIFT;
        }
        table = (pte & Pte::ADDR_MASK) >> PAGE_SHIFT;
    }
    return out;
}

void
AddressSpace::registerWalkFrames(const PageWalk &walk)
{
    for (int level = 0; level < walk.levels; level++) {
        U64 mfn = pageOf(walk.pte_addr[level]);
        if (mfn < pt_frame.size())
            pt_frame[mfn] = true;
    }
}

bool
AddressSpace::setAccessedDirty(const PageWalk &walk, bool is_write)
{
    ptl_assert(walk.present);
    bool changed = false;
    for (int level = 0; level < 4; level++) {
        U64 pte = mem->read(walk.pte_addr[level], 8);
        U64 want = pte | Pte::A;
        if (level == 3 && is_write)
            want |= Pte::D;
        if (want != pte) {
            mem->write(walk.pte_addr[level], want, 8);
            changed = true;
        }
    }
    return changed;
}

}  // namespace ptl
