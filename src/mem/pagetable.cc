#include "mem/pagetable.h"

#include <cstring>

#include "lib/logging.h"

namespace ptl {

GuestFault
checkPageAccess(bool present, bool writable, bool user, bool noexec,
                MemAccess kind, bool user_mode)
{
    auto fault_kind = [&] {
        switch (kind) {
          case MemAccess::Read: return GuestFault::PageFaultRead;
          case MemAccess::Write: return GuestFault::PageFaultWrite;
          default: return GuestFault::PageFaultFetch;
        }
    };
    if (!present)
        return fault_kind();
    if (kind == MemAccess::Write && !writable)
        return fault_kind();
    if (user_mode && !user)
        return fault_kind();
    if (kind == MemAccess::Execute && noexec)
        return fault_kind();
    return GuestFault::None;
}

GuestFault
checkWalkAccess(const PageWalk &walk, MemAccess kind, bool user_mode)
{
    return checkPageAccess(walk.present, walk.writable, walk.user,
                           walk.noexec, kind, user_mode);
}

Pfn
AddressSpace::allocTable()
{
    Pfn mfn = mem->allocFrame();
    std::memset(mem->frameData(mfn), 0, PAGE_SIZE);
    return mfn;
}

Pfn
AddressSpace::createRoot()
{
    tcache.flushAll();
    return allocTable();
}

Pfn
AddressSpace::cloneRoot(Pfn src_cr3)
{
    Pfn mfn = allocTable();
    std::memcpy(mem->frameData(mfn), mem->frameData(src_cr3), PAGE_SIZE);
    tcache.flushAll();
    return mfn;
}

void
AddressSpace::map(Pfn cr3, GuestVirt va, Pfn mfn, U64 flags)
{
    ptl_assert(va.pageOffset() == 0);
    Pfn table = cr3;
    for (int level = 0; level < 3; level++) {
        GuestPhys pte_addr =
            table.pageBase().withOffset(pageTableIndex(va, level) * 8);
        U64 pte = mem->read(pte_addr, 8);
        if (!(pte & Pte::P)) {
            Pfn next = allocTable();
            pte = next.pageBase().raw() | Pte::P | Pte::RW | Pte::US;
            mem->write(pte_addr, pte, 8);
        }
        table = Pfn((pte & Pte::ADDR_MASK) >> PAGE_SHIFT);
    }
    GuestPhys leaf_addr =
        table.pageBase().withOffset(pageTableIndex(va, 3) * 8);
    U64 leaf = mfn.pageBase().raw() | Pte::P
               | (flags & (Pte::RW | Pte::US | Pte::NX));
    mem->write(leaf_addr, leaf, 8);
    tcache.flushAll();
}

void
AddressSpace::mapRange(Pfn cr3, GuestVirt va, U64 bytes, U64 flags)
{
    ptl_assert(va.pageOffset() == 0);
    for (U64 off = 0; off < alignUp(bytes, PAGE_SIZE); off += PAGE_SIZE)
        map(cr3, va + off, mem->allocFrame(), flags);
}

void
AddressSpace::unmap(Pfn cr3, GuestVirt va)
{
    PageWalk w = walk(cr3, va);
    if (!w.present)
        return;
    mem->write(w.pte_addr[3], 0, 8);
    tcache.flushAll();
}

PageWalk
AddressSpace::walk(Pfn cr3, GuestVirt va) const
{
    PageWalk out;
    // Effective permissions are the AND across levels on real x86;
    // our intermediate tables are always RW|US so the leaf governs.
    Pfn table = cr3;
    for (int level = 0; level < 4; level++) {
        GuestPhys pte_addr =
            table.pageBase().withOffset(pageTableIndex(va, level) * 8);
        out.pte_addr[level] = pte_addr;
        out.levels = level + 1;
        U64 pte = mem->read(pte_addr, 8);
        if (!(pte & Pte::P))
            return out;  // not present at this level
        if (level == 3) {
            out.present = true;
            out.writable = pte & Pte::RW;
            out.user = pte & Pte::US;
            out.noexec = pte & Pte::NX;
            out.dirty = pte & Pte::D;
            out.mfn = Pfn((pte & Pte::ADDR_MASK) >> PAGE_SHIFT);
        }
        table = Pfn((pte & Pte::ADDR_MASK) >> PAGE_SHIFT);
    }
    return out;
}

void
AddressSpace::registerWalkFrames(const PageWalk &walk)
{
    for (int level = 0; level < walk.levels; level++) {
        Pfn mfn = walk.pte_addr[level].pfn();
        if (mfn.raw() < pt_frame.size())
            pt_frame[mfn.raw()] = true;
    }
}

bool
AddressSpace::setAccessedDirty(const PageWalk &walk, bool is_write)
{
    ptl_assert(walk.present);
    bool changed = false;
    for (int level = 0; level < 4; level++) {
        U64 pte = mem->read(walk.pte_addr[level], 8);
        U64 want = pte | Pte::A;
        if (level == 3 && is_write)
            want |= Pte::D;
        if (want != pte) {
            mem->write(walk.pte_addr[level], want, 8);
            changed = true;
        }
    }
    return changed;
}

}  // namespace ptl
