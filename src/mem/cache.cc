#include "mem/cache.h"

#include "lib/logging.h"

namespace ptl {

CacheArray::CacheArray(const CacheParams &params)
    : sets(params.sets()), ways(params.ways),
      line_bytes(params.line_bytes), latency_(params.latency),
      mshr_count(params.mshr_count), banks_(params.banks),
      lines((size_t)sets * (sets ? params.ways : 0))
{
}

CacheArray::Line *
CacheArray::lookup(U64 paddr, bool touch_lru)
{
    if (!enabled())
        return nullptr;
    unsigned set = setOf(paddr);
    U64 tag = tagOf(paddr);
    Line *base = &lines[(size_t)set * ways];
    for (int w = 0; w < ways; w++) {
        if (base[w].valid() && base[w].tag == tag) {
            if (touch_lru)
                base[w].lru = ++tick;
            return &base[w];
        }
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::insert(U64 paddr, LineState state, Eviction *evicted)
{
    ptl_assert(enabled());
    if (Line *hit = lookup(paddr)) {
        hit->state = state;
        return hit;
    }
    unsigned set = setOf(paddr);
    Line *base = &lines[(size_t)set * ways];
    Line *victim = &base[0];
    for (int w = 0; w < ways; w++) {
        if (!base[w].valid()) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (evicted) {
        evicted->valid = victim->valid();
        if (evicted->valid) {
            evicted->line_addr =
                (victim->tag * sets + set) * (U64)line_bytes;
            evicted->state = victim->state;
        }
    }
    victim->tag = tagOf(paddr);
    victim->state = state;
    victim->lru = ++tick;
    victim->prefetched = false;
    return victim;
}

void
CacheArray::invalidate(U64 paddr)
{
    if (Line *line = lookup(paddr, false))
        line->state = LineState::Invalid;
}

void
CacheArray::invalidateAll()
{
    for (Line &line : lines)
        line.state = LineState::Invalid;
}

}  // namespace ptl
