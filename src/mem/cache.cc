#include "mem/cache.h"

#include "lib/logging.h"

namespace ptl {

CacheArray::CacheArray(const CacheParams &params, Counter *evictions,
                       U64 seed)
    : sets(params.sets()), ways(params.ways),
      line_bytes(params.line_bytes),
      latency_(cycles((U64)params.latency)),
      mshr_count(params.mshr_count), banks_(params.banks),
      repl(sets ? makeReplacementPolicy(params.repl, sets, params.ways,
                                        seed)
                : nullptr),
      evictions_(evictions),
      lines((size_t)sets * (sets ? params.ways : 0))
{
}

CacheArray::Line *
CacheArray::lookup(GuestPhys paddr, bool touch_lru)
{
    if (!enabled())
        return nullptr;
    unsigned set = setOf(paddr);
    U64 tag = tagOf(paddr);
    Line *base = &lines[(size_t)set * ways];
    for (int w = 0; w < ways; w++) {
        if (base[w].valid() && base[w].tag == tag) {
            if (touch_lru)
                repl->touch((int)set, w);
            return &base[w];
        }
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::insert(GuestPhys paddr, LineState state, Eviction *evicted)
{
    ptl_assert(enabled());
    if (Line *hit = lookup(paddr)) {
        hit->state = state;
        return hit;
    }
    unsigned set = setOf(paddr);
    Line *base = &lines[(size_t)set * ways];
    // An invalid way is always filled first (way order), exactly as
    // the original scan did; the policy arbitrates only full sets.
    int way = -1;
    for (int w = 0; w < ways; w++) {
        if (!base[w].valid()) {
            way = w;
            break;
        }
    }
    if (way < 0)
        way = repl->victim((int)set);
    Line *victim = &base[way];
    if (evicted) {
        evicted->valid = victim->valid();
        if (evicted->valid) {
            evicted->line_addr =
                GuestPhys((victim->tag * sets + set) * (U64)line_bytes);
            evicted->state = victim->state;
        }
    }
    if (victim->valid() && evictions_)
        (*evictions_)++;
    victim->tag = tagOf(paddr);
    victim->state = state;
    victim->prefetched = false;
    repl->touch((int)set, way);
    return victim;
}

void
CacheArray::invalidate(GuestPhys paddr)
{
    if (Line *line = lookup(paddr, false))
        line->state = LineState::Invalid;
}

void
CacheArray::invalidateAll()
{
    for (Line &line : lines)
        line.state = LineState::Invalid;
    if (repl)
        repl->reset();
}

}  // namespace ptl
