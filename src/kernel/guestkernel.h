/**
 * @file
 * The paravirtual guest kernel, and the domain builder that boots it.
 *
 * The paper's guest is SuSE Linux under Xen paravirtualization; this
 * repository substitutes a small paravirtual kernel written in real
 * x86-64 (emitted through the in-tree assembler) that exercises the
 * same full-system phenomena PTLsim's evaluation leans on:
 *
 *  - syscall/sysret transitions between user and kernel mode;
 *  - a timer tick driven by hypervisor events, with a tick handler
 *    that runs in kernel mode (the small kernel peaks marked (t) in
 *    Figure 2);
 *  - a round-robin scheduler whose context switches reload CR3
 *    through the MMUEXT_NEW_BASEPTR hypercall (flushing TLBs, so task
 *    switches cost real TLB misses);
 *  - blocking pipes for IPC, network endpoints with delivery latency,
 *    and a DMA block device — all of which put the domain to sleep in
 *    hlt while waiting (the idle fraction of Figure 2);
 *  - per-task kernel stacks switched via the stack_switch hypercall.
 *
 * Scheduling is cooperative at syscall boundaries (the tick handler
 * does not preempt user code); the rsync-style workload is syscall-
 * dense, so scheduling behaviour is preserved. See DESIGN.md.
 */

#ifndef PTLSIM_KERNEL_GUESTKERNEL_H_
#define PTLSIM_KERNEL_GUESTKERNEL_H_

#include <memory>

#include "core/context.h"
#include "kernel/guestabi.h"
#include "mem/pagetable.h"
#include "xasm/assembler.h"

namespace ptl {

/**
 * Builds the kernel image, page tables, kernel data structures and
 * initial VCPU state inside a machine's guest memory (the role Xen's
 * domain builder plays for paravirtual guests). It deliberately takes
 * only what it writes — the address space, boot VCPU, and the timer
 * period to plant in kernel data — not the whole Machine, so the
 * kernel layer never depends on the machine assembly layer above it
 * (callers pass machine.timerPeriodCycles() for the period).
 */
class KernelBuilder
{
  public:
    KernelBuilder(AddressSpace &aspace, Context &vcpu0,
                  U64 timer_period_cycles);

    /** Assembler positioned at USER_TEXT_VA: user programs go here. */
    Assembler &userAsm() { return user_asm; }

    /** Entry point + argument for the init task (task 0). */
    void setInitTask(U64 entry, U64 arg);

    /** Bytes of user data region mapped at USER_DATA_VA (RW, user). */
    void setUserDataBytes(U64 bytes) { user_data_bytes = bytes; }

    /**
     * Construct everything and set the boot VCPU to the kernel boot
     * entry. After this, machine.finalizeCores() + machine.run()
     * boots the guest.
     */
    void build();

    /** Per-task CR3 roots (available after build()). */
    Pfn taskCr3(int task) const { return task_cr3[task]; }

  private:
    void buildAddressSpace();
    void buildKernelData();
    void emitKernel(Assembler &a);

    AddressSpace *aspace;
    Context *vcpu0;
    U64 timer_period;
    Assembler user_asm;
    U64 init_entry = 0;
    U64 init_arg = 0;
    U64 user_data_bytes = 4 << 20;
    Pfn base_cr3;
    Pfn task_cr3[MAX_TASKS];
    U64 boot_entry_va = 0;
    U64 syscall_entry_va = 0;
    bool built = false;
};

}  // namespace ptl

#endif  // PTLSIM_KERNEL_GUESTKERNEL_H_
