#include "kernel/guestkernel.h"

#include "kernel/hypercalls.h"
#include "lib/logging.h"

namespace ptl {

/*
 * Register conventions inside the kernel:
 *
 *  - Syscalls clobber rax, rcx, rdx, rsi, rdi, r8-r11 and preserve
 *    rbx, rbp, rsp, r12-r15 (standard SysV caller/callee split).
 *  - schedule() preserves callee-saved registers only; any kernel path
 *    that may block keeps its live state in callee-saved registers.
 *  - wake_channel(rdi=channel) clobbers rax, rcx, rdx.
 *  - block_on(rdi=channel) clobbers all caller-saved registers.
 *  - The event upcall saves/restores every caller-saved register and
 *    touches no callee-saved ones except rbx (which it saves too), so
 *    interrupted contexts are fully preserved.
 *  - The hypercall gate (0f 34) takes nr in rax, args in rdi/rsi/rdx,
 *    returns in rax, and preserves all other registers.
 */

KernelBuilder::KernelBuilder(AddressSpace &as, Context &v0,
                             U64 timer_period_cycles)
    : aspace(&as), vcpu0(&v0), timer_period(timer_period_cycles),
      user_asm(USER_TEXT_VA)
{
}

void
KernelBuilder::setInitTask(U64 entry, U64 arg)
{
    init_entry = entry;
    init_arg = arg;
}

void
KernelBuilder::buildAddressSpace()
{
    AddressSpace &as = *aspace;
    base_cr3 = as.createRoot();
    // Kernel regions: supervisor-only.
    as.mapRange(base_cr3, GuestVirt(KERNEL_TEXT_VA), KERNEL_TEXT_BYTES,
                Pte::RW);
    as.mapRange(base_cr3, GuestVirt(KDATA_VA), KDATA_BYTES,
                Pte::RW | Pte::NX);
    as.mapRange(base_cr3, GuestVirt(KSTACKS_VA),
                (U64)MAX_TASKS * KSTACK_BYTES, Pte::RW | Pte::NX);
    // User regions.
    as.mapRange(base_cr3, GuestVirt(USER_TEXT_VA), USER_TEXT_BYTES,
                Pte::RW | Pte::US);
    as.mapRange(base_cr3, GuestVirt(USER_DATA_VA), user_data_bytes,
                Pte::RW | Pte::US | Pte::NX);
    for (int t = 0; t < MAX_TASKS; t++) {
        as.mapRange(base_cr3,
                    GuestVirt(userStackTop(t) - USER_STACK_BYTES),
                    USER_STACK_BYTES, Pte::RW | Pte::US | Pte::NX);
    }
    // Each task gets its own CR3 (an aliasing root), so context
    // switches reload CR3 and flush TLBs like real process switches.
    for (int t = 0; t < MAX_TASKS; t++)
        task_cr3[t] = as.cloneRoot(base_cr3);
}

void
KernelBuilder::buildKernelData()
{
    // The host-side domain builder pre-initializes all static kernel
    // data, so the assembled boot path stays small.
    Context kctx;
    kctx.cr3 = base_cr3;
    kctx.kernel_mode = true;
    AddressSpace &as = *aspace;
    auto store = [&](U64 va, U64 value) {
        GuestAccess a = guestWrite(as, kctx, GuestVirt(va), 8, value);
        ptl_assert(a.ok());
    };

    store(KDATA_VA + KD_CURRENT, 0);
    store(KDATA_VA + KD_JIFFIES, 0);
    store(KDATA_VA + KD_TIMER_PERIOD, timer_period);
    store(KDATA_VA + KD_TICKS_SEEN, 0);

    for (int t = 0; t < MAX_TASKS; t++) {
        U64 base = KDATA_VA + KD_TASKS + (U64)t * TASK_ENTRY_BYTES;
        store(base + TASK_STATE, (t == 0) ? TASK_RUNNABLE : TASK_FREE);
        store(base + TASK_SAVED_RSP, 0);
        store(base + TASK_CR3, task_cr3[t].raw());
        store(base + TASK_WAIT, 0);
        store(base + TASK_KSTACK_TOP, kernelStackTop(t));
        store(base + TASK_SLEEP_DEADLINE, 0);
        store(base + TASK_USER_STACK_TOP, userStackTop(t) - 64);
    }
    for (int p = 0; p < MAX_PIPES; p++) {
        U64 base = KDATA_VA + KD_PIPES + (U64)p * PIPE_ENTRY_BYTES;
        store(base + 0, 0);   // head
        store(base + 8, 0);   // tail
    }
}

void
KernelBuilder::emitKernel(Assembler &a)
{
    const U64 kd = KDATA_VA;
    const U64 ktasks = KDATA_VA + KD_TASKS;

    Label task_start = a.newLabel();
    Label schedule = a.newLabel();
    Label wake_channel = a.newLabel();
    Label block_on = a.newLabel();
    Label event_upcall = a.newLabel();
    Label syscall_entry = a.newLabel();
    Label syscall_ret = a.newLabel();
    Label fatal_fault = a.newLabel();
    Label fault_msg = a.newLabel();

    // =================================================================
    // Boot entry (VCPU 0 starts here in kernel mode, events masked).
    // =================================================================
    // Register the event upcall and arm the first timer tick.
    a.movLabel(R::rdi, event_upcall);
    a.mov(R::rax, HC_set_callbacks);
    a.hypercall();
    a.movImm64(R::rbx, kd);
    a.mov(R::rdi, Mem::at(R::rbx, (S32)KD_TIMER_PERIOD));
    a.mov(R::rax, HC_set_timer);
    a.hypercall();
    // Switch to task 0's kernel stack and launch init via task_start.
    a.movImm64(R::rax, ktasks);
    a.mov(R::rdx, Mem::at(R::rax, (S32)TASK_KSTACK_TOP));
    a.mov(R::rdi, R::rdx);
    a.mov(R::rax, HC_stack_switch);
    a.hypercall();
    a.mov(R::rsp, R::rdx);
    a.movImm64(R::rax, init_arg);
    a.push(R::rax);
    a.movImm64(R::rax, init_entry);
    a.push(R::rax);
    a.movImm64(R::rax, ktasks);
    a.mov(R::rax, Mem::at(R::rax, (S32)TASK_USER_STACK_TOP));
    a.push(R::rax);
    a.jmp(task_start);

    // =================================================================
    // task_start: stack holds [user_rsp][user_entry][arg]; drop to
    // user mode via sysret (which unmasks events).
    // =================================================================
    a.bind(task_start);
    a.mov(R::rdi, Mem::at(R::rsp, 16));   // arg
    a.mov(R::rcx, Mem::at(R::rsp, 8));    // user entry
    a.mov(R::r11, 0);                     // clean flags image
    a.sysret();

    // =================================================================
    // wake_channel(rdi = channel): mark blocked tasks runnable.
    // Clobbers rax, rcx, rdx.
    // =================================================================
    a.bind(wake_channel);
    a.movImm64(R::rax, ktasks);
    a.mov(R::rcx, 0);
    {
        Label loop = a.label();
        Label next = a.newLabel();
        Label done = a.newLabel();
        a.cmp(R::rcx, MAX_TASKS);
        a.jcc(COND_e, done);
        a.mov(R::rdx, Mem::at(R::rax, (S32)TASK_STATE));
        a.cmp(R::rdx, (S32)TASK_BLOCKED);
        a.jcc(COND_ne, next);
        a.mov(R::rdx, Mem::at(R::rax, (S32)TASK_WAIT));
        a.cmp(R::rdx, R::rdi);
        a.jcc(COND_ne, next);
        a.movStoreImm32(Mem::at(R::rax, (S32)TASK_STATE),
                        (S32)TASK_RUNNABLE);
        a.bind(next);
        a.add(R::rax, (S32)TASK_ENTRY_BYTES);
        a.inc(R::rcx);
        a.jmp(loop);
        a.bind(done);
    }
    a.ret();

    // =================================================================
    // block_on(rdi = channel): mark current task blocked + schedule.
    // Clobbers caller-saved registers.
    // =================================================================
    a.bind(block_on);
    a.movImm64(R::rax, kd);
    a.mov(R::rcx, Mem::at(R::rax, (S32)KD_CURRENT));
    a.mov(R::rdx, R::rcx);
    a.shl(R::rdx, 6);
    a.movImm64(R::r8, ktasks);
    a.add(R::rdx, R::r8);
    a.movStoreImm32(Mem::at(R::rdx, (S32)TASK_STATE), (S32)TASK_BLOCKED);
    a.mov(Mem::at(R::rdx, (S32)TASK_WAIT), R::rdi);
    a.call(schedule);
    a.ret();

    // =================================================================
    // schedule: save current, pick next runnable (round robin), switch
    // kernel stack + CR3, restore. Idles in sti;hlt when nothing runs.
    // =================================================================
    a.bind(schedule);
    a.push(R::rbx);
    a.push(R::rbp);
    a.push(R::r12);
    a.push(R::r13);
    a.push(R::r14);
    a.push(R::r15);
    a.movImm64(R::rbx, kd);
    a.mov(R::r12, Mem::at(R::rbx, (S32)KD_CURRENT));
    a.movImm64(R::r14, ktasks);
    a.mov(R::r13, R::r12);
    a.shl(R::r13, 6);
    a.add(R::r13, R::r14);
    a.mov(Mem::at(R::r13, (S32)TASK_SAVED_RSP), R::rsp);
    {
        Label scan_init = a.newLabel();
        Label scan_loop = a.newLabel();
        Label scan_next = a.newLabel();
        Label idle = a.newLabel();
        Label found = a.newLabel();
        a.bind(scan_init);
        a.mov(R::r15, 1);                  // offset from current
        a.bind(scan_loop);
        a.cmp(R::r15, MAX_TASKS + 1);
        a.jcc(COND_e, idle);
        a.mov(R::rax, R::r12);
        a.add(R::rax, R::r15);
        a.and_(R::rax, MAX_TASKS - 1);     // idx = (cur + off) % 8
        a.mov(R::rcx, R::rax);
        a.shl(R::rcx, 6);
        a.add(R::rcx, R::r14);             // &task[idx]
        a.mov(R::rdx, Mem::at(R::rcx, (S32)TASK_STATE));
        a.cmp(R::rdx, (S32)TASK_RUNNABLE);
        a.jcc(COND_e, found);
        a.bind(scan_next);
        a.inc(R::r15);
        a.jmp(scan_loop);
        a.bind(idle);
        // Nothing runnable: unmask events and halt; the upcall will
        // mark tasks runnable, then we rescan. This is where all of
        // Figure 2's idle cycles accumulate.
        a.sti();
        a.hlt();
        a.cli();
        a.jmp(scan_init);
        a.bind(found);
        // rax = next index, rcx = &task[next].
        a.mov(Mem::at(R::rbx, (S32)KD_CURRENT), R::rax);
        a.mov(R::rdi, Mem::at(R::rcx, (S32)TASK_KSTACK_TOP));
        a.mov(R::rax, HC_stack_switch);
        a.hypercall();
        a.mov(R::rdi, Mem::at(R::rcx, (S32)TASK_CR3));
        a.mov(R::rax, HC_new_baseptr);
        a.hypercall();
        a.mov(R::rsp, Mem::at(R::rcx, (S32)TASK_SAVED_RSP));
    }
    a.pop(R::r15);
    a.pop(R::r14);
    a.pop(R::r13);
    a.pop(R::r12);
    a.pop(R::rbp);
    a.pop(R::rbx);
    a.ret();

    // =================================================================
    // Event upcall. Frame: [rsp]=fault word, +8 rip, +16 flags word,
    // +24 saved rsp. Events are masked on entry.
    // =================================================================
    a.bind(event_upcall);
    a.push(R::rax);
    a.push(R::rcx);
    a.push(R::rdx);
    a.push(R::rbx);
    a.push(R::rsi);
    a.push(R::rdi);
    a.push(R::r8);
    a.push(R::r9);
    a.push(R::r10);
    a.push(R::r11);
    // Synchronous faults arrive through the same entry with a nonzero
    // fault word; this kernel treats any guest fault as fatal.
    a.mov(R::rax, Mem::at(R::rsp, 80));
    a.test(R::rax, R::rax);
    a.jcc(COND_ne, fatal_fault);
    // Collect and clear pending event ports.
    a.mov(R::rax, HC_evtchn_pending);
    a.hypercall();
    a.mov(R::rbx, R::rax);
    {
        Label no_timer = a.newLabel();
        a.test(R::rbx, 1 << PORT_TIMER);
        a.jcc(COND_e, no_timer);
        // Timer tick: jiffies++, re-arm, wake expired sleepers.
        a.movImm64(R::r9, kd);
        a.inc(Mem::at(R::r9, (S32)KD_JIFFIES));
        a.inc(Mem::at(R::r9, (S32)KD_TICKS_SEEN));
        a.mov(R::rdi, Mem::at(R::r9, (S32)KD_TIMER_PERIOD));
        a.mov(R::rax, HC_set_timer);
        a.hypercall();
        a.mov(R::r10, Mem::at(R::r9, (S32)KD_JIFFIES));
        a.movImm64(R::r8, ktasks);
        a.mov(R::rcx, 0);
        Label sl_loop = a.label();
        Label sl_next = a.newLabel();
        a.cmp(R::rcx, MAX_TASKS);
        a.jcc(COND_e, no_timer);
        a.mov(R::rax, Mem::at(R::r8, (S32)TASK_STATE));
        a.cmp(R::rax, (S32)TASK_BLOCKED);
        a.jcc(COND_ne, sl_next);
        a.mov(R::rax, Mem::at(R::r8, (S32)TASK_WAIT));
        a.cmp(R::rax, (S32)CH_SLEEP);
        a.jcc(COND_ne, sl_next);
        a.mov(R::rax, Mem::at(R::r8, (S32)TASK_SLEEP_DEADLINE));
        a.cmp(R::rax, R::r10);
        a.jcc(COND_nbe, sl_next);          // deadline > jiffies: keep
        a.movStoreImm32(Mem::at(R::r8, (S32)TASK_STATE),
                        (S32)TASK_RUNNABLE);
        a.bind(sl_next);
        a.add(R::r8, (S32)TASK_ENTRY_BYTES);
        a.inc(R::rcx);
        a.jmp(sl_loop);
        a.bind(no_timer);
    }
    {
        Label no_disk = a.newLabel();
        a.test(R::rbx, 1 << PORT_DISK);
        a.jcc(COND_e, no_disk);
        a.mov(R::rdi, (U64)CH_DISK);
        a.call(wake_channel);
        a.bind(no_disk);
    }
    for (int ep = 0; ep < 8; ep++) {
        Label no_net = a.newLabel();
        a.test(R::rbx, 1 << (PORT_NET_BASE + ep));
        a.jcc(COND_e, no_net);
        a.mov(R::rdi, (U64)(CH_NET + ep));
        a.call(wake_channel);
        a.bind(no_net);
    }
    a.pop(R::r11);
    a.pop(R::r10);
    a.pop(R::r9);
    a.pop(R::r8);
    a.pop(R::rdi);
    a.pop(R::rsi);
    a.pop(R::rbx);
    a.pop(R::rdx);
    a.pop(R::rcx);
    a.pop(R::rax);
    a.add(R::rsp, 8);                      // drop the fault word
    a.iretq();

    // Fatal fault: report and shut the domain down.
    a.bind(fatal_fault);
    a.movLabel(R::rdi, fault_msg);
    a.mov(R::rsi, 13);
    a.mov(R::rax, HC_console_write);
    a.hypercall();
    a.mov(R::rdi, 0xDEAD);
    a.mov(R::rax, HC_shutdown);
    a.hypercall();
    {
        Label self = a.label();
        a.jmp(self);
    }

    // =================================================================
    // Syscall entry (MSR_LSTAR). On entry: rsp = kstack-8 with the
    // user rsp at [rsp]; rcx = user rip; r11 = user rflags.
    // =================================================================
    a.bind(syscall_entry);
    a.push(R::rcx);
    a.push(R::r11);

    Label h_write = a.newLabel(), h_read = a.newLabel();
    Label h_yield = a.newLabel(), h_exit = a.newLabel();
    Label h_getpid = a.newLabel(), h_sleep = a.newLabel();
    Label h_console = a.newLabel(), h_spawn = a.newLabel();
    Label h_net_send = a.newLabel(), h_net_recv = a.newLabel();
    Label h_disk = a.newLabel(), h_time = a.newLabel();
    Label h_bad = a.newLabel();

    auto dispatch = [&](GuestSyscall nr, Label target) {
        a.cmp(R::rax, (S32)nr);
        a.jcc(COND_e, target);
    };
    dispatch(GSYS_write, h_write);
    dispatch(GSYS_read, h_read);
    dispatch(GSYS_yield, h_yield);
    dispatch(GSYS_exit, h_exit);
    dispatch(GSYS_getpid, h_getpid);
    dispatch(GSYS_sleep, h_sleep);
    dispatch(GSYS_console, h_console);
    dispatch(GSYS_spawn, h_spawn);
    dispatch(GSYS_net_send, h_net_send);
    dispatch(GSYS_net_recv, h_net_recv);
    dispatch(GSYS_disk_read, h_disk);
    dispatch(GSYS_time_ns, h_time);
    a.bind(h_bad);
    a.mov(R::rax, (U64)-1);
    a.jmp(syscall_ret);

    a.bind(syscall_ret);
    a.pop(R::r11);
    a.pop(R::rcx);
    a.sysret();

    // ---- write(fd, buf, len) ----
    a.bind(h_write);
    {
        Label retry = a.newLabel(), have_space = a.newLabel();
        Label nset = a.newLabel(), c1set = a.newLabel();
        Label no_chunk2 = a.newLabel(), done = a.newLabel();
        Label bad = a.newLabel(), zero = a.newLabel();
        a.push(R::rbx);
        a.push(R::r12);
        a.push(R::r13);
        a.push(R::r14);
        a.push(R::r15);
        a.push(R::rbp);
        a.mov(R::rbx, R::rdi);             // fd
        a.mov(R::r12, R::rsi);             // buf
        a.mov(R::r13, R::rdx);             // len
        a.cmp(R::rbx, MAX_PIPES);
        a.jcc(COND_nb, bad);
        a.test(R::r13, R::r13);
        a.jcc(COND_e, zero);
        a.bind(retry);
        a.movImm64(R::r14, KDATA_VA + KD_PIPES);
        a.mov(R::rax, R::rbx);
        a.shl(R::rax, 4);
        a.add(R::r14, R::rax);             // &pipe[fd]
        a.mov(R::rax, Mem::at(R::r14, 0)); // head
        a.mov(R::rcx, Mem::at(R::r14, 8)); // tail
        a.mov(R::rbp, R::rcx);
        a.sub(R::rbp, R::rax);             // count
        a.mov(R::rax, (U64)PIPE_RING_BYTES);
        a.sub(R::rax, R::rbp);             // space
        a.test(R::rax, R::rax);
        a.jcc(COND_ne, have_space);
        a.lea(R::rdi, Mem::at(R::rbx, (S32)CH_PIPE_WRITE));
        a.call(block_on);
        a.jmp(retry);
        a.bind(have_space);
        // r15 = n = min(len, space)
        a.mov(R::r15, R::r13);
        a.cmp(R::rax, R::r13);
        a.jcc(COND_nb, nset);
        a.mov(R::r15, R::rax);
        a.bind(nset);
        // rbp = ring base for this fd
        a.movImm64(R::rbp, KDATA_VA + KD_PIPE_RINGS);
        a.mov(R::rax, R::rbx);
        a.shl(R::rax, (U8)log2Exact(PIPE_RING_BYTES));   // ring stride
        a.add(R::rbp, R::rax);
        a.mov(R::rcx, Mem::at(R::r14, 8)); // tail
        a.and_(R::rcx, (S32)(PIPE_RING_BYTES - 1));
        a.mov(R::rdx, (U64)PIPE_RING_BYTES);
        a.sub(R::rdx, R::rcx);             // room to ring end
        // r8 = chunk1 = min(n, room)
        a.mov(R::r8, R::r15);
        a.cmp(R::rdx, R::r15);
        a.jcc(COND_nb, c1set);
        a.mov(R::r8, R::rdx);
        a.bind(c1set);
        a.mov(R::rdi, R::rbp);
        a.add(R::rdi, R::rcx);
        a.mov(R::rsi, R::r12);
        a.mov(R::rcx, R::r8);
        a.cld();
        a.repMovsb();
        // chunk 2 wraps to the ring start (rsi continues).
        a.mov(R::r9, R::r15);
        a.sub(R::r9, R::r8);
        a.test(R::r9, R::r9);
        a.jcc(COND_e, no_chunk2);
        a.mov(R::rdi, R::rbp);
        a.mov(R::rcx, R::r9);
        a.repMovsb();
        a.bind(no_chunk2);
        a.mov(R::rax, Mem::at(R::r14, 8));
        a.add(R::rax, R::r15);
        a.mov(Mem::at(R::r14, 8), R::rax); // tail += n
        a.lea(R::rdi, Mem::at(R::rbx, (S32)CH_PIPE_READ));
        a.call(wake_channel);
        a.mov(R::rax, R::r15);
        a.jmp(done);
        a.bind(bad);
        a.mov(R::rax, (U64)-1);
        a.jmp(done);
        a.bind(zero);
        a.mov(R::rax, 0);
        a.bind(done);
        a.pop(R::rbp);
        a.pop(R::r15);
        a.pop(R::r14);
        a.pop(R::r13);
        a.pop(R::r12);
        a.pop(R::rbx);
        a.jmp(syscall_ret);
    }

    // ---- read(fd, buf, len) ----
    a.bind(h_read);
    {
        Label retry = a.newLabel(), have_data = a.newLabel();
        Label nset = a.newLabel(), c1set = a.newLabel();
        Label no_chunk2 = a.newLabel(), done = a.newLabel();
        Label bad = a.newLabel(), zero = a.newLabel();
        a.push(R::rbx);
        a.push(R::r12);
        a.push(R::r13);
        a.push(R::r14);
        a.push(R::r15);
        a.push(R::rbp);
        a.mov(R::rbx, R::rdi);             // fd
        a.mov(R::r12, R::rsi);             // buf
        a.mov(R::r13, R::rdx);             // len
        a.cmp(R::rbx, MAX_PIPES);
        a.jcc(COND_nb, bad);
        a.test(R::r13, R::r13);
        a.jcc(COND_e, zero);
        a.bind(retry);
        a.movImm64(R::r14, KDATA_VA + KD_PIPES);
        a.mov(R::rax, R::rbx);
        a.shl(R::rax, 4);
        a.add(R::r14, R::rax);
        a.mov(R::rax, Mem::at(R::r14, 0)); // head
        a.mov(R::rcx, Mem::at(R::r14, 8)); // tail
        a.mov(R::rbp, R::rcx);
        a.sub(R::rbp, R::rax);             // count
        a.test(R::rbp, R::rbp);
        a.jcc(COND_ne, have_data);
        a.lea(R::rdi, Mem::at(R::rbx, (S32)CH_PIPE_READ));
        a.call(block_on);
        a.jmp(retry);
        a.bind(have_data);
        // r15 = n = min(len, count)
        a.mov(R::r15, R::r13);
        a.cmp(R::rbp, R::r13);
        a.jcc(COND_nb, nset);
        a.mov(R::r15, R::rbp);
        a.bind(nset);
        a.movImm64(R::rbp, KDATA_VA + KD_PIPE_RINGS);
        a.mov(R::rax, R::rbx);
        a.shl(R::rax, (U8)log2Exact(PIPE_RING_BYTES));   // ring stride
        a.add(R::rbp, R::rax);             // ring base
        a.mov(R::rcx, Mem::at(R::r14, 0)); // head
        a.and_(R::rcx, (S32)(PIPE_RING_BYTES - 1));
        a.mov(R::rdx, (U64)PIPE_RING_BYTES);
        a.sub(R::rdx, R::rcx);
        a.mov(R::r8, R::r15);
        a.cmp(R::rdx, R::r15);
        a.jcc(COND_nb, c1set);
        a.mov(R::r8, R::rdx);
        a.bind(c1set);
        a.mov(R::rsi, R::rbp);
        a.add(R::rsi, R::rcx);
        a.mov(R::rdi, R::r12);
        a.mov(R::rcx, R::r8);
        a.cld();
        a.repMovsb();
        a.mov(R::r9, R::r15);
        a.sub(R::r9, R::r8);
        a.test(R::r9, R::r9);
        a.jcc(COND_e, no_chunk2);
        a.mov(R::rsi, R::rbp);
        a.mov(R::rcx, R::r9);
        a.repMovsb();
        a.bind(no_chunk2);
        a.mov(R::rax, Mem::at(R::r14, 0));
        a.add(R::rax, R::r15);
        a.mov(Mem::at(R::r14, 0), R::rax); // head += n
        a.lea(R::rdi, Mem::at(R::rbx, (S32)CH_PIPE_WRITE));
        a.call(wake_channel);
        a.mov(R::rax, R::r15);
        a.jmp(done);
        a.bind(bad);
        a.mov(R::rax, (U64)-1);
        a.jmp(done);
        a.bind(zero);
        a.mov(R::rax, 0);
        a.bind(done);
        a.pop(R::rbp);
        a.pop(R::r15);
        a.pop(R::r14);
        a.pop(R::r13);
        a.pop(R::r12);
        a.pop(R::rbx);
        a.jmp(syscall_ret);
    }

    // ---- yield ----
    a.bind(h_yield);
    a.call(schedule);
    a.mov(R::rax, 0);
    a.jmp(syscall_ret);

    // ---- exit(code) ----
    a.bind(h_exit);
    {
        Label not_init = a.newLabel();
        a.movImm64(R::rax, kd);
        a.mov(R::rcx, Mem::at(R::rax, (S32)KD_CURRENT));
        a.test(R::rcx, R::rcx);
        a.jcc(COND_ne, not_init);
        a.mov(R::rax, HC_shutdown);
        a.hypercall();
        Label self = a.label();
        a.jmp(self);
        a.bind(not_init);
        a.mov(R::rdx, R::rcx);
        a.shl(R::rdx, 6);
        a.movImm64(R::r8, ktasks);
        a.add(R::rdx, R::r8);
        a.movStoreImm32(Mem::at(R::rdx, (S32)TASK_STATE),
                        (S32)TASK_ZOMBIE);
        a.call(schedule);
        Label self2 = a.label();
        a.jmp(self2);                      // a zombie never resumes
    }

    // ---- getpid ----
    a.bind(h_getpid);
    a.movImm64(R::rax, kd);
    a.mov(R::rax, Mem::at(R::rax, (S32)KD_CURRENT));
    a.jmp(syscall_ret);

    // ---- sleep(ticks) ----
    a.bind(h_sleep);
    a.movImm64(R::rax, kd);
    a.mov(R::rcx, Mem::at(R::rax, (S32)KD_CURRENT));
    a.mov(R::rdx, R::rcx);
    a.shl(R::rdx, 6);
    a.movImm64(R::r8, ktasks);
    a.add(R::rdx, R::r8);
    a.mov(R::r9, Mem::at(R::rax, (S32)KD_JIFFIES));
    a.add(R::r9, R::rdi);
    a.mov(Mem::at(R::rdx, (S32)TASK_SLEEP_DEADLINE), R::r9);
    a.mov(R::rdi, (U64)CH_SLEEP);
    a.call(block_on);
    a.mov(R::rax, 0);
    a.jmp(syscall_ret);

    // ---- console(buf, len): args already in hypercall position ----
    a.bind(h_console);
    a.mov(R::rax, HC_console_write);
    a.hypercall();
    a.jmp(syscall_ret);

    // ---- spawn(entry, arg) ----
    a.bind(h_spawn);
    {
        Label loop = a.newLabel(), found = a.newLabel();
        Label fail = a.newLabel(), out = a.newLabel();
        a.push(R::rbx);
        a.push(R::r12);
        a.push(R::r13);
        a.mov(R::r12, R::rdi);             // entry
        a.mov(R::r13, R::rsi);             // arg
        a.movImm64(R::rbx, ktasks);
        a.mov(R::rcx, 0);
        a.bind(loop);
        a.cmp(R::rcx, MAX_TASKS);
        a.jcc(COND_e, fail);
        a.mov(R::rax, Mem::at(R::rbx, (S32)TASK_STATE));
        a.test(R::rax, R::rax);
        a.jcc(COND_e, found);
        a.add(R::rbx, (S32)TASK_ENTRY_BYTES);
        a.inc(R::rcx);
        a.jmp(loop);
        a.bind(found);
        // Craft the new task's kernel stack so schedule() "returns"
        // into task_start.
        a.mov(R::rdx, Mem::at(R::rbx, (S32)TASK_KSTACK_TOP));
        a.mov(Mem::at(R::rdx, -8), R::r13);    // arg
        a.mov(Mem::at(R::rdx, -16), R::r12);   // user entry
        a.mov(R::rax, Mem::at(R::rbx, (S32)TASK_USER_STACK_TOP));
        a.mov(Mem::at(R::rdx, -24), R::rax);   // user rsp
        a.movLabel(R::rax, task_start);
        a.mov(Mem::at(R::rdx, -32), R::rax);   // return target
        a.mov(R::rax, 0);
        for (int off = 40; off <= 80; off += 8)
            a.mov(Mem::at(R::rdx, -off), R::rax);  // callee-saved = 0
        a.lea(R::rax, Mem::at(R::rdx, -80));
        a.mov(Mem::at(R::rbx, (S32)TASK_SAVED_RSP), R::rax);
        a.movStoreImm32(Mem::at(R::rbx, (S32)TASK_STATE),
                        (S32)TASK_RUNNABLE);
        a.mov(R::rax, R::rcx);             // pid
        a.jmp(out);
        a.bind(fail);
        a.mov(R::rax, (U64)-1);
        a.bind(out);
        a.pop(R::r13);
        a.pop(R::r12);
        a.pop(R::rbx);
        a.jmp(syscall_ret);
    }

    // ---- net_send(ep, buf, len) ----
    a.bind(h_net_send);
    a.mov(R::rax, HC_net_send);
    a.hypercall();
    a.jmp(syscall_ret);

    // ---- net_recv(ep, buf, maxlen): blocks until >= 1 byte ----
    a.bind(h_net_recv);
    {
        Label retry = a.newLabel(), done = a.newLabel();
        a.push(R::rbx);
        a.push(R::r12);
        a.push(R::r13);
        a.mov(R::rbx, R::rdi);
        a.mov(R::r12, R::rsi);
        a.mov(R::r13, R::rdx);
        a.bind(retry);
        a.mov(R::rdi, R::rbx);
        a.mov(R::rsi, R::r12);
        a.mov(R::rdx, R::r13);
        a.mov(R::rax, HC_net_recv);
        a.hypercall();
        a.test(R::rax, R::rax);
        a.jcc(COND_ne, done);
        a.lea(R::rdi, Mem::at(R::rbx, (S32)CH_NET));
        a.call(block_on);
        a.jmp(retry);
        a.bind(done);
        a.pop(R::r13);
        a.pop(R::r12);
        a.pop(R::rbx);
        a.jmp(syscall_ret);
    }

    // ---- disk_read(sector, count, dest): blocks for DMA ----
    a.bind(h_disk);
    a.mov(R::rax, HC_disk_read);
    a.hypercall();
    a.mov(R::rdi, (U64)CH_DISK);
    a.call(block_on);
    a.mov(R::rax, 0);
    a.jmp(syscall_ret);

    // ---- time_ns ----
    a.bind(h_time);
    a.mov(R::rax, HC_get_time_ns);
    a.hypercall();
    a.jmp(syscall_ret);

    // Read-only data.
    a.align(8);
    a.bind(fault_msg);
    a.dbs("KERNEL FAULT\n", 13);

    // Stash entry points for build() to wire into the contexts.
    boot_entry_va = KERNEL_TEXT_VA;
    syscall_entry_va = a.labelVa(syscall_entry);
}

void
KernelBuilder::build()
{
    ptl_assert(!built);
    ptl_assert(init_entry != 0);
    built = true;

    buildAddressSpace();
    buildKernelData();

    // Emit and install the kernel image.
    Assembler kasm(KERNEL_TEXT_VA);
    emitKernel(kasm);
    std::vector<U8> kernel_image = kasm.finalize();
    if (kernel_image.size() > KERNEL_TEXT_BYTES)
        fatal("kernel image too large (%zu bytes)", kernel_image.size());

    Context kctx;
    kctx.cr3 = base_cr3;
    kctx.kernel_mode = true;
    AddressSpace &as = *aspace;
    auto write_image = [&](U64 va, const std::vector<U8> &image) {
        GuestCopy g = guestCopyOut(as, kctx, GuestVirt(va), image.data(),
                                   image.size());
        ptl_assert(g.ok());
    };
    write_image(KERNEL_TEXT_VA, kernel_image);

    // Install the user image.
    std::vector<U8> user_image = user_asm.finalize();
    if (user_image.size() > USER_TEXT_BYTES)
        fatal("user image too large (%zu bytes)", user_image.size());
    write_image(USER_TEXT_VA, user_image);

    // Initial VCPU state: kernel boot entry, events masked.
    Context &ctx = *vcpu0;
    ctx.cr3 = task_cr3[0];
    ctx.kernel_mode = true;
    ctx.rip = GuestVirt(boot_entry_va);
    ctx.regs[REG_rsp] = kernelStackTop(0);
    ctx.lstar = syscall_entry_va;
    ctx.kernel_sp = kernelStackTop(0);
    ctx.event_mask = true;
    ctx.running = true;
}

}  // namespace ptl
