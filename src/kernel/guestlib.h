/**
 * @file
 * Guest userspace runtime ("libc") emitted into the user image.
 *
 * User programs in this repository are assembled x86-64; GuestLib
 * provides the shared routines they call: syscall wrappers with
 * retry loops (write_all / read_exact / net_recv_exact), memcpy /
 * memset via rep-string instructions, a deterministic xorshift PRNG,
 * and console printing helpers. Register convention matches the
 * kernel ABI: functions clobber caller-saved registers only.
 */

#ifndef PTLSIM_KERNEL_GUESTLIB_H_
#define PTLSIM_KERNEL_GUESTLIB_H_

#include "kernel/guestabi.h"
#include "xasm/assembler.h"

namespace ptl {

class GuestLib
{
  public:
    explicit GuestLib(Assembler &as) : a(&as) {}

    /** Emit every library function; call once, anywhere in the image
     *  that straight-line execution cannot fall into. */
    void emitRuntime();

    /** Emit `mov rax, nr ; syscall` (args must be in rdi/rsi/rdx). */
    void syscall(GuestSyscall nr);

    // Function labels (valid after emitRuntime()):
    Label fn_memcpy;         ///< (rdi=dst, rsi=src, rdx=len)
    Label fn_memset;         ///< (rdi=dst, rsi=byte, rdx=len)
    Label fn_write_all;      ///< (rdi=fd, rsi=buf, rdx=len) blocks
    Label fn_read_exact;     ///< (rdi=fd, rsi=buf, rdx=len) blocks
    Label fn_net_recv_exact; ///< (rdi=ep, rsi=buf, rdx=len) blocks
    Label fn_print;          ///< (rdi=buf, rsi=len) to console
    Label fn_print_u64;      ///< (rdi=value) prints hex + newline
    Label fn_rand;           ///< (rdi=&state) -> rax (xorshift64)

  private:
    Assembler *a;
    bool emitted = false;
};

}  // namespace ptl

#endif  // PTLSIM_KERNEL_GUESTLIB_H_
