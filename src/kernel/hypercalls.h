/**
 * @file
 * The guest <-> hypervisor ABI: hypercall numbers, ptlcall ops, and
 * the well-known event-port assignments.
 *
 * Shared by the hypervisor model (src/sys) and the guest kernel
 * builder (src/kernel). It lives in the kernel module -- below the
 * machine-assembly layer -- because both sides of the paravirtual
 * interface must agree on these numbers, exactly like Xen's public
 * ABI headers. Hypercalls are issued from guest kernel mode
 * via the 0f 34 paravirtual gate with the number in rax and arguments
 * in rdi/rsi/rdx (result in rax); this mirrors how Xen paravirtual
 * guests "make hypercalls into the hypervisor to request services that
 * cannot be easily or quickly virtualized" (Section 3).
 */

#ifndef PTLSIM_KERNEL_HYPERCALLS_H_
#define PTLSIM_KERNEL_HYPERCALLS_H_

#include "lib/bitops.h"

namespace ptl {

enum Hypercall : U64 {
    HC_console_write = 1,   ///< a1 = buffer VA, a2 = length
    HC_set_timer = 2,       ///< a1 = cycles from now (one-shot)
    HC_stack_switch = 3,    ///< a1 = new kernel stack top (Xen-alike)
    HC_set_callbacks = 4,   ///< a1 = event/fault upcall entry RIP
    HC_evtchn_pending = 5,  ///< returns + clears pending port bitmask
    HC_new_baseptr = 6,     ///< a1 = new CR3 root MFN (MMUEXT_NEW_BASEPTR)
    HC_get_time_ns = 7,     ///< virtual nanoseconds since boot
    HC_net_send = 8,        ///< a1 = dest endpoint, a2 = buf VA, a3 = len
    HC_net_recv = 9,        ///< a1 = endpoint, a2 = buf VA, a3 = max
    HC_disk_read = 10,      ///< a1 = sector, a2 = count, a3 = dest VA
    HC_shutdown = 11,       ///< a1 = exit code; terminates the domain
    HC_net_available = 12,  ///< a1 = endpoint; bytes waiting
    HC_disk_sectors = 13,   ///< total sectors on the virtual disk
    HC_vcpu_count = 14,     ///< VCPUs in this domain
};

/** Returned by hypercalls on bad arguments. */
constexpr U64 HC_ERROR = ~0ULL;

/**
 * ptlcall (opcode 0f 37) operations: the simulator breakout interface
 * of Section 4.1. rax selects the op; rdi/rsi carry arguments.
 */
enum PtlcallOp : U64 {
    PTLCALL_NOP = 0,
    PTLCALL_SWITCH_TO_SIM = 1,     ///< "-run": enter cycle-accurate mode
    PTLCALL_SWITCH_TO_NATIVE = 2,  ///< "-native": back to full speed
    PTLCALL_KILL = 3,              ///< "-kill": stop and record stats
    PTLCALL_SNAPSHOT = 4,          ///< force a stats snapshot now
    PTLCALL_MARKER = 5,            ///< rdi = marker id (phase boundaries)
    PTLCALL_COMMAND = 6,           ///< rdi = VA of a command string
};

constexpr int MAX_EVENT_PORTS = 64;

/** Well-known event ports used by the kernel/hypervisor pair. */
enum EventPort : int {
    PORT_TIMER = 0,
    PORT_DISK = 1,
    PORT_NET_BASE = 2,     ///< one port per network endpoint (2..)
    PORT_USER_BASE = 16,   ///< dynamically allocated
};

}  // namespace ptl

#endif  // PTLSIM_KERNEL_HYPERCALLS_H_
