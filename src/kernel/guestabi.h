/**
 * @file
 * Guest ABI: memory layout, syscall numbers, kernel data offsets.
 *
 * Shared between the kernel builder (which emits the kernel's x86-64
 * code and pre-initializes kernel data structures in guest memory) and
 * user programs / tests that need the constants.
 */

#ifndef PTLSIM_KERNEL_GUESTABI_H_
#define PTLSIM_KERNEL_GUESTABI_H_

#include "lib/bitops.h"

namespace ptl {

// ---------------------------------------------------------------------
// Virtual memory layout
// ---------------------------------------------------------------------

constexpr U64 KERNEL_TEXT_VA = 0xffff800000000000ULL;
constexpr U64 KDATA_VA = 0xffff800000400000ULL;
constexpr U64 KSTACKS_VA = 0xffff800000800000ULL;
constexpr U64 USER_TEXT_VA = 0x0000000000400000ULL;
constexpr U64 USER_DATA_VA = 0x0000000010000000ULL;
constexpr U64 USER_STACKS_VA = 0x00007f0000000000ULL;

constexpr U64 KERNEL_TEXT_BYTES = 256 * 1024;
constexpr U64 KDATA_BYTES = 256 * 1024;        ///< vars + pipe rings
constexpr int MAX_TASKS = 8;
constexpr U64 KSTACK_BYTES = 16 * 1024;        ///< per task
constexpr U64 USER_STACK_BYTES = 64 * 1024;    ///< per task
constexpr U64 USER_TEXT_BYTES = 256 * 1024;

constexpr U64
kernelStackTop(int task)
{
    return KSTACKS_VA + (U64)(task + 1) * KSTACK_BYTES;
}

constexpr U64
userStackTop(int task)
{
    // Leave a guard page between stacks.
    return USER_STACKS_VA + (U64)(task + 1) * (USER_STACK_BYTES + 4096);
}

// ---------------------------------------------------------------------
// Kernel data structure offsets (within KDATA_VA)
// ---------------------------------------------------------------------

constexpr U64 KD_CURRENT = 0x000;       ///< current task index
constexpr U64 KD_JIFFIES = 0x008;
constexpr U64 KD_TIMER_PERIOD = 0x010;  ///< cycles between ticks
constexpr U64 KD_TICKS_SEEN = 0x018;    ///< diagnostic counter

constexpr U64 KD_TASKS = 0x100;         ///< task table
constexpr U64 TASK_ENTRY_BYTES = 64;
// Task entry fields:
constexpr U64 TASK_STATE = 0;           ///< 0 free 1 runnable 2 blocked 3 zombie
constexpr U64 TASK_SAVED_RSP = 8;
constexpr U64 TASK_CR3 = 16;
constexpr U64 TASK_WAIT = 24;           ///< wait channel when blocked
constexpr U64 TASK_KSTACK_TOP = 32;
constexpr U64 TASK_SLEEP_DEADLINE = 40; ///< jiffies
constexpr U64 TASK_USER_STACK_TOP = 48;

constexpr U64 TASK_FREE = 0;
constexpr U64 TASK_RUNNABLE = 1;
constexpr U64 TASK_BLOCKED = 2;
constexpr U64 TASK_ZOMBIE = 3;

constexpr int MAX_PIPES = 8;
constexpr U64 KD_PIPES = 0x600;         ///< pipe head/tail table
constexpr U64 PIPE_ENTRY_BYTES = 16;    ///< {head u64, tail u64}
constexpr U64 PIPE_RING_BYTES = 16384;  ///< Linux-like pipe capacity
constexpr U64 KD_PIPE_RINGS = 0x1000;   ///< MAX_PIPES rings

// Wait channels.
constexpr U64 CH_PIPE_READ = 0x100;     ///< + fd
constexpr U64 CH_PIPE_WRITE = 0x200;    ///< + fd
constexpr U64 CH_SLEEP = 0x300;
constexpr U64 CH_NET = 0x400;           ///< + endpoint
constexpr U64 CH_DISK = 0x500;

// ---------------------------------------------------------------------
// Syscalls (nr in rax; args rdi/rsi/rdx; result rax)
// ---------------------------------------------------------------------

enum GuestSyscall : U64 {
    GSYS_write = 1,       ///< (fd, buf, len) -> bytes written (>=1; blocks)
    GSYS_read = 2,        ///< (fd, buf, len) -> bytes read (>=1; blocks)
    GSYS_yield = 3,
    GSYS_exit = 4,        ///< (code); task 0 exiting shuts the domain down
    GSYS_getpid = 5,
    GSYS_sleep = 6,       ///< (ticks) block for N timer ticks
    GSYS_console = 7,     ///< (buf, len)
    GSYS_spawn = 8,       ///< (entry, arg) -> pid or -1
    GSYS_net_send = 9,    ///< (endpoint, buf, len) -> len
    GSYS_net_recv = 10,   ///< (endpoint, buf, maxlen) -> n (>=1; blocks)
    GSYS_disk_read = 11,  ///< (sector, count, dest) -> 0 (blocks for DMA)
    GSYS_time_ns = 12,    ///< () -> virtual ns since boot
};

}  // namespace ptl

#endif  // PTLSIM_KERNEL_GUESTABI_H_
