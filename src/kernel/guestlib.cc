#include "kernel/guestlib.h"

#include "lib/logging.h"

namespace ptl {

void
GuestLib::syscall(GuestSyscall nr)
{
    a->mov(R::rax, (U64)nr);
    a->syscall();
}

void
GuestLib::emitRuntime()
{
    ptl_assert(!emitted);
    emitted = true;
    Assembler &as = *a;

    // ---- memcpy(dst, src, len) ----
    fn_memcpy = as.label();
    as.mov(R::rcx, R::rdx);
    as.cld();
    as.repMovsb();
    as.ret();

    // ---- memset(dst, byte, len) ----
    fn_memset = as.label();
    as.mov(R::rax, R::rsi);
    as.mov(R::rcx, R::rdx);
    as.cld();
    as.repStosb();
    as.ret();

    // ---- write_all(fd, buf, len): loop until everything written ----
    fn_write_all = as.label();
    {
        Label loop = as.newLabel(), done = as.newLabel();
        as.push(R::rbx);
        as.push(R::r12);
        as.push(R::r13);
        as.mov(R::rbx, R::rdi);
        as.mov(R::r12, R::rsi);
        as.mov(R::r13, R::rdx);
        as.bind(loop);
        as.test(R::r13, R::r13);
        as.jcc(COND_e, done);
        as.mov(R::rdi, R::rbx);
        as.mov(R::rsi, R::r12);
        as.mov(R::rdx, R::r13);
        syscall(GSYS_write);
        as.add(R::r12, R::rax);
        as.sub(R::r13, R::rax);
        as.jmp(loop);
        as.bind(done);
        as.pop(R::r13);
        as.pop(R::r12);
        as.pop(R::rbx);
        as.ret();
    }

    // ---- read_exact(fd, buf, len): loop until len bytes read ----
    fn_read_exact = as.label();
    {
        Label loop = as.newLabel(), done = as.newLabel();
        as.push(R::rbx);
        as.push(R::r12);
        as.push(R::r13);
        as.mov(R::rbx, R::rdi);
        as.mov(R::r12, R::rsi);
        as.mov(R::r13, R::rdx);
        as.bind(loop);
        as.test(R::r13, R::r13);
        as.jcc(COND_e, done);
        as.mov(R::rdi, R::rbx);
        as.mov(R::rsi, R::r12);
        as.mov(R::rdx, R::r13);
        syscall(GSYS_read);
        as.add(R::r12, R::rax);
        as.sub(R::r13, R::rax);
        as.jmp(loop);
        as.bind(done);
        as.pop(R::r13);
        as.pop(R::r12);
        as.pop(R::rbx);
        as.ret();
    }

    // ---- net_recv_exact(ep, buf, len) ----
    fn_net_recv_exact = as.label();
    {
        Label loop = as.newLabel(), done = as.newLabel();
        as.push(R::rbx);
        as.push(R::r12);
        as.push(R::r13);
        as.mov(R::rbx, R::rdi);
        as.mov(R::r12, R::rsi);
        as.mov(R::r13, R::rdx);
        as.bind(loop);
        as.test(R::r13, R::r13);
        as.jcc(COND_e, done);
        as.mov(R::rdi, R::rbx);
        as.mov(R::rsi, R::r12);
        as.mov(R::rdx, R::r13);
        syscall(GSYS_net_recv);
        as.add(R::r12, R::rax);
        as.sub(R::r13, R::rax);
        as.jmp(loop);
        as.bind(done);
        as.pop(R::r13);
        as.pop(R::r12);
        as.pop(R::rbx);
        as.ret();
    }

    // ---- print(buf, len) ----
    fn_print = as.label();
    syscall(GSYS_console);
    as.ret();

    // ---- print_u64(value): 16 hex digits + newline ----
    fn_print_u64 = as.label();
    {
        Label digits = as.newLabel();
        Label loop = as.newLabel(), done = as.newLabel();
        as.sub(R::rsp, 32);
        as.mov(R::r8, R::rdi);
        as.mov(R::rcx, 0);
        as.bind(loop);
        as.cmp(R::rcx, 16);
        as.jcc(COND_e, done);
        as.rol(R::r8, 4);
        as.mov(R::rax, R::r8);
        as.and_(R::rax, 15);
        as.movLabel(R::rdx, digits);
        as.movzx8(R::rax, Mem::idx(R::rdx, R::rax));
        as.mov8(Mem::idx(R::rsp, R::rcx), R::rax);
        as.inc(R::rcx);
        as.jmp(loop);
        as.bind(done);
        as.mov(R::rax, 10);  // '\n'
        as.mov8(Mem::at(R::rsp, 16), R::rax);
        as.mov(R::rdi, R::rsp);
        as.mov(R::rsi, 17);
        syscall(GSYS_console);
        as.add(R::rsp, 32);
        as.ret();
        as.bind(digits);
        as.dbs("0123456789abcdef", 16);
    }

    // ---- rand(&state): xorshift64 ----
    fn_rand = as.label();
    as.mov(R::rax, Mem::at(R::rdi));
    as.mov(R::rcx, R::rax);
    as.shl(R::rcx, 13);
    as.xor_(R::rax, R::rcx);
    as.mov(R::rcx, R::rax);
    as.shr(R::rcx, 7);
    as.xor_(R::rax, R::rcx);
    as.mov(R::rcx, R::rax);
    as.shl(R::rcx, 17);
    as.xor_(R::rax, R::rcx);
    as.mov(Mem::at(R::rdi), R::rax);
    as.ret();
}

}  // namespace ptl
