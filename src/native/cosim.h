/**
 * @file
 * Native-mode co-simulation validation (Section 2.3).
 *
 * PTLsim's signature capability: a virtual machine can be moved
 * between native execution and the cycle-accurate models at arbitrary
 * instruction boundaries, and this transition must be architecturally
 * invisible. This module provides the validation machinery:
 *
 *  - compareContexts(): field-by-field architectural state diff;
 *  - hashGuestMemory(): whole-memory fingerprint;
 *  - ModeSwitchValidator: runs a user-built machine twice — once
 *    purely in one mode, once ping-ponging between native and
 *    simulation every N cycles — and verifies the final architectural
 *    state and memory image are identical (the machine must be
 *    deterministic, i.e. -maskints style);
 *  - findDivergenceInsn(): the paper's self-debugging binary search —
 *    given two run configurations, find the first committed
 *    instruction count at which their architectural states diverge.
 */

#ifndef PTLSIM_NATIVE_COSIM_H_
#define PTLSIM_NATIVE_COSIM_H_

#include <functional>
#include <memory>
#include <string>

#include "sys/machine.h"

namespace ptl {

/** Result of an architectural state comparison. */
struct ContextDiff
{
    bool equal = true;
    std::string description;   ///< first differing field, if any
};

/** Compare the architectural (guest-visible) parts of two contexts. */
ContextDiff compareContexts(const Context &a, const Context &b);

/** FNV-1a hash over all guest machine frames. */
U64 hashGuestMemory(const PhysMem &mem);

/** Builds a fully configured machine ready to run. */
using MachineFactory = std::function<std::unique_ptr<Machine>()>;

struct CosimResult
{
    bool equal = false;
    std::string diff;
    U64 switches = 0;      ///< mode transitions performed
    U64 insns = 0;
};

/**
 * Run two identically-built machines: the reference entirely in
 * `ref_mode`, the subject alternating modes every `switch_cycles`.
 * Both run to shutdown (or `budget` cycles); final VCPU state and
 * memory must match exactly.
 */
CosimResult validateModeSwitching(const MachineFactory &factory,
                                  Machine::Mode ref_mode,
                                  U64 switch_cycles,
                                  U64 budget = 1ULL << 34);

/**
 * Self-debugging search (Section 2.3): find the smallest committed-
 * instruction count N such that running configuration A for N
 * instructions and configuration B for N instructions yields different
 * architectural state. Returns ~0 if they agree up to `max_insns`.
 * Factories must build deterministic machines.
 */
U64 findDivergenceInsn(const MachineFactory &factory_a,
                       const MachineFactory &factory_b, U64 max_insns);

/** Run a machine until at least `insns` instructions have committed
 *  (or shutdown); returns the exact count reached. */
U64 runUntilInsns(Machine &machine, U64 insns, U64 budget = 1ULL << 34);

}  // namespace ptl

#endif  // PTLSIM_NATIVE_COSIM_H_
