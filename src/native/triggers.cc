#include "native/triggers.h"

#include <sstream>

#include "lib/logging.h"

namespace ptl {

U64
parseScaledCount(const std::string &token)
{
    if (token.empty())
        fatal("empty count in command list");
    U64 scale = 1;
    std::string digits = token;
    switch (token.back()) {
      case 'k': case 'K': scale = 1'000ULL; break;
      case 'm': case 'M': scale = 1'000'000ULL; break;
      case 'b': case 'B': case 'g': case 'G':
        scale = 1'000'000'000ULL;
        break;
      default: break;
    }
    if (scale != 1)
        digits.pop_back();
    return std::strtoull(digits.c_str(), nullptr, 0) * scale;
}

std::vector<CommandPhase>
parseCommandList(const std::string &text)
{
    std::vector<CommandPhase> phases;
    CommandPhase cur;
    bool any = false;
    std::istringstream in(text);
    std::string tok;
    auto next_token = [&](const char *what) {
        std::string value;
        if (!(in >> value))
            fatal("command list: %s needs an argument", what);
        return value;
    };
    while (in >> tok) {
        any = true;
        if (tok == ":") {
            phases.push_back(cur);
            cur = CommandPhase{};
        } else if (tok == "-run") {
            cur.to_sim = true;
        } else if (tok == "-native") {
            cur.to_native = true;
        } else if (tok == "-snapshot") {
            cur.snapshot = true;
        } else if (tok == "-kill") {
            cur.kill = true;
        } else if (tok == "-stopinsns") {
            cur.stop_insns = parseScaledCount(next_token("-stopinsns"));
        } else if (tok == "-stopcycles") {
            cur.stop_cycles = parseScaledCount(next_token("-stopcycles"));
        } else if (tok == "-trigger-rip") {
            cur.trigger_rip =
                std::strtoull(next_token("-trigger-rip").c_str(),
                              nullptr, 16);
        } else if (tok == "-core") {
            cur.core = next_token("-core");
        } else {
            fatal("command list: unknown directive '%s'", tok.c_str());
        }
    }
    if (any)
        phases.push_back(cur);
    return phases;
}

Machine::RunResult
CommandRunner::run(const std::string &command_list, U64 default_budget)
{
    Machine::RunResult last;
    for (const CommandPhase &phase : parseCommandList(command_list)) {
        if (!phase.core.empty() && phase.core != machine->config().core) {
            warn("command list requested core '%s' but the machine was "
                 "built with '%s'",
                 phase.core.c_str(), machine->config().core.c_str());
        }
        if (phase.snapshot)
            machine->stats().takeSnapshot(machine->timeKeeper().cycle());
        if (phase.kill)
            return last;
        if (phase.to_native)
            machine->setMode(Machine::Mode::Native);
        if (phase.to_sim)
            machine->setMode(Machine::Mode::Simulation);
        if (phase.trigger_rip)
            machine->setRipTrigger(phase.trigger_rip);

        U64 insn_start = machine->totalCommittedInsns();
        const SimCycle cycle_start = machine->timeKeeper().cycle();
        U64 budget = phase.stop_cycles ? phase.stop_cycles
                                       : default_budget;
        // Run in slices, checking the instruction bound between them.
        while (true) {
            U64 elapsed =
                (machine->timeKeeper().cycle() - cycle_start).raw();
            if (elapsed >= budget)
                break;
            U64 slice = std::min<U64>(budget - elapsed, 10'000);
            if (phase.stop_insns) {
                // Tighten the slice near the instruction bound so the
                // overshoot stays within a few commit groups.
                U64 done = machine->totalCommittedInsns() - insn_start;
                U64 remaining =
                    (done < phase.stop_insns) ? phase.stop_insns - done : 1;
                slice = std::min(slice, std::max<U64>(remaining / 2, 8));
            }
            last = machine->run(slice);
            if (last.shutdown)
                return last;
            if (last.stalled)
                break;
            if (phase.stop_insns
                && machine->totalCommittedInsns() - insn_start
                       >= phase.stop_insns)
                break;
            if (phase.trigger_rip
                && machine->mode() == Machine::Mode::Simulation)
                break;  // trigger fired
            if (!phase.stop_insns && !phase.stop_cycles
                && !phase.trigger_rip) {
                // Unbounded phase: keep running until shutdown/budget.
                continue;
            }
        }
    }
    return last;
}

}  // namespace ptl
