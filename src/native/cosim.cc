#include "native/cosim.h"

#include "lib/logging.h"

namespace ptl {

ContextDiff
compareContexts(const Context &a, const Context &b)
{
    ContextDiff out;
    auto fail = [&](const std::string &what, U64 va, U64 vb) {
        out.equal = false;
        out.description = strprintf("%s: %llx vs %llx", what.c_str(),
                                    (unsigned long long)va,
                                    (unsigned long long)vb);
    };
    for (int r = 0; r < NUM_UOP_REGS; r++) {
        if (r >= REG_temp0 && r <= REG_temp7)
            continue;  // microcode temps are not architectural
        if (r == REG_zero || r == REG_none || r == REG_reserved41
            || r == REG_zaps || r == REG_cf || r == REG_of)
            continue;
        if (a.regs[r] != b.regs[r]) {
            fail(uopRegName(r), a.regs[r], b.regs[r]);
            return out;
        }
    }
    if (a.rip != b.rip) {
        fail("rip", a.rip.raw(), b.rip.raw());
        return out;
    }
    if (a.flags != b.flags) {
        fail("flags", a.flags, b.flags);
        return out;
    }
    if (a.kernel_mode != b.kernel_mode) {
        fail("kernel_mode", a.kernel_mode, b.kernel_mode);
        return out;
    }
    if (a.cr3 != b.cr3) {
        fail("cr3", a.cr3.raw(), b.cr3.raw());
        return out;
    }
    if (a.event_mask != b.event_mask) {
        fail("event_mask", a.event_mask, b.event_mask);
        return out;
    }
    if (a.x87_top != b.x87_top) {
        fail("x87_top", (U64)a.x87_top, (U64)b.x87_top);
        return out;
    }
    for (int i = 0; i < a.x87_top; i++) {
        if (a.x87_stack[i] != b.x87_stack[i]) {
            fail("x87_stack", a.x87_stack[i], b.x87_stack[i]);
            return out;
        }
    }
    return out;
}

U64
hashGuestMemory(const PhysMem &mem)
{
    U64 h = 0xcbf29ce484222325ULL;
    for (U8 byte : mem.rawBytes()) {
        h ^= byte;
        h *= 0x100000001b3ULL;
    }
    return h;
}

U64
runUntilInsns(Machine &machine, U64 insns, U64 budget)
{
    U64 spent = 0;
    while (machine.totalCommittedInsns() < insns && spent < budget) {
        Machine::RunResult r = machine.run(2'000);
        spent += r.cycles;
        if (r.shutdown || r.stalled)
            break;
    }
    return machine.totalCommittedInsns();
}

CosimResult
validateModeSwitching(const MachineFactory &factory, Machine::Mode ref_mode,
                      U64 switch_cycles, U64 budget)
{
    CosimResult out;

    std::unique_ptr<Machine> ref = factory();
    ref->setMode(ref_mode);
    U64 spent = 0;
    while (spent < budget) {
        Machine::RunResult r = ref->run(budget - spent);
        spent += r.cycles;
        if (r.shutdown || r.stalled)
            break;
    }

    std::unique_ptr<Machine> subject = factory();
    Machine::Mode mode = Machine::Mode::Simulation;
    spent = 0;
    while (spent < budget) {
        subject->setMode(mode);
        out.switches++;
        Machine::RunResult r = subject->run(switch_cycles);
        spent += r.cycles;
        if (r.shutdown || r.stalled)
            break;
        mode = (mode == Machine::Mode::Simulation)
                   ? Machine::Mode::Native
                   : Machine::Mode::Simulation;
    }

    out.insns = subject->totalCommittedInsns();
    ContextDiff diff = compareContexts(ref->vcpu(0), subject->vcpu(0));
    if (!diff.equal) {
        out.diff = "context: " + diff.description;
        return out;
    }
    if (hashGuestMemory(ref->physMem())
        != hashGuestMemory(subject->physMem())) {
        out.diff = "guest memory images differ";
        return out;
    }
    out.equal = true;
    return out;
}

U64
findDivergenceInsn(const MachineFactory &factory_a,
                   const MachineFactory &factory_b, U64 max_insns)
{
    // Step exactly N instructions on the functional engine (the paper
    // performs this comparison at single-instruction granularity by
    // re-entering native mode at different points).
    auto step_exact = [](Machine &m, U64 n) {
        FunctionalEngine &engine = m.nativeEngine(0);
        U64 done = 0;
        while (done < n) {
            FunctionalEngine::StepResult r = engine.stepInsn(SimCycle(done));
            if (r.idle)
                break;
            done += (U64)r.insns;
            if (r.insns == 0 && !r.event_delivered
                && r.fault_delivered == GuestFault::None)
                break;
        }
        return done;
    };
    auto agree_at = [&](U64 n) {
        std::unique_ptr<Machine> ma = factory_a();
        std::unique_ptr<Machine> mb = factory_b();
        U64 ra = step_exact(*ma, n);
        U64 rb = step_exact(*mb, n);
        if (ra != rb)
            return false;
        return compareContexts(ma->vcpu(0), mb->vcpu(0)).equal;
    };
    if (agree_at(max_insns))
        return ~0ULL;
    // Binary search the first divergence point, as the paper describes
    // doing with repeated native-mode switches.
    U64 lo = 0, hi = max_insns;  // agree at lo, diverge by hi
    while (lo + 1 < hi) {
        U64 mid = lo + (hi - lo) / 2;
        if (agree_at(mid))
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

}  // namespace ptl
