/**
 * @file
 * PTLsim command lists and trigger points (Sections 2.3 / 4.1).
 *
 * The ptlcall interface lets guest code (or the user via the ptlctl
 * wrapper) submit command lists such as
 *
 *     "-core smt -run -stopinsns 10m : -native"
 *
 * "This command tells PTLsim to switch back to simulation mode,
 * execute 10 million x86 instructions under PTLsim's SMT core, then
 * switch back to native mode." This module parses such command lists
 * and executes them phase by phase against a Machine. Supported
 * directives per phase (phases separated by ':'):
 *
 *   -run                switch to simulation mode
 *   -native             switch to native mode
 *   -stopinsns <n[kmb]> bound the phase at n committed instructions
 *   -stopcycles <n[kmb]> bound the phase at n cycles
 *   -trigger-rip <hex>  (native phases) drop to simulation at this RIP
 *   -snapshot           take a statistics snapshot at phase start
 *   -kill               shut the domain down
 *   -core <name>        recorded (the core model is fixed at build
 *                       time in this reproduction; a mismatch warns)
 */

#ifndef PTLSIM_NATIVE_TRIGGERS_H_
#define PTLSIM_NATIVE_TRIGGERS_H_

#include <string>
#include <vector>

#include "sys/machine.h"

namespace ptl {

/** One parsed phase of a command list. */
struct CommandPhase
{
    bool to_native = false;
    bool to_sim = false;
    bool snapshot = false;
    bool kill = false;
    U64 stop_insns = 0;     ///< 0 = unbounded
    U64 stop_cycles = 0;    ///< 0 = unbounded
    U64 trigger_rip = 0;
    std::string core;       ///< requested core model (informational)
};

/** Parse a command list; fatal() on malformed input. */
std::vector<CommandPhase> parseCommandList(const std::string &text);

/** Parse "10m"/"64k"/"2b"-style counts. */
U64 parseScaledCount(const std::string &token);

/** Executes command lists against a machine. */
class CommandRunner
{
  public:
    explicit CommandRunner(Machine &m) : machine(&m) {}

    /**
     * Run all phases. Phases without a stop bound run until the
     * domain shuts down or `default_budget` cycles elapse.
     */
    Machine::RunResult run(const std::string &command_list,
                           U64 default_budget = 1ULL << 40);

  private:
    Machine *machine;
};

}  // namespace ptl

#endif  // PTLSIM_NATIVE_TRIGGERS_H_
