/**
 * @file
 * Clang -Wthread-safety capability annotations and an annotated mutex.
 *
 * The sharding plan (ROADMAP "shard the machine") runs one host
 * thread per simulated Domain. The static side of getting there is
 * simlint's shared-state / cross-domain-access rules; this header is
 * the compiler-checked side: structures that really are shared
 * (the stats registration index, the event queue's cross-domain
 * inbox) declare their lock with PTL_GUARDED_BY, and clang's
 * -Wthread-safety analysis then rejects unlocked access paths at
 * compile time.
 *
 * Under gcc (the default toolchain here) every macro expands to
 * nothing — the annotations are free documentation — and the dynamic
 * checker (the `tsan` CMake preset, PTL_SANITIZE=thread) covers the
 * same structures at runtime. A clang build gets the full static
 * analysis with no code changes.
 */

#ifndef PTLSIM_LIB_THREADSAFETY_H_
#define PTLSIM_LIB_THREADSAFETY_H_

#include <mutex>

#if defined(__clang__)
#define PTL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PTL_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PTL_CAPABILITY(x) PTL_THREAD_ANNOTATION(capability(x))

/** RAII types that acquire on construction, release on destruction. */
#define PTL_SCOPED_CAPABILITY PTL_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define PTL_GUARDED_BY(x) PTL_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by `x`. */
#define PTL_PT_GUARDED_BY(x) PTL_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the caller to hold `...` (not acquired here). */
#define PTL_REQUIRES(...) \
    PTL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires `...` and returns holding it. */
#define PTL_ACQUIRE(...) \
    PTL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases `...`. */
#define PTL_RELEASE(...) \
    PTL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function must NOT be called while holding `...` (deadlock guard). */
#define PTL_EXCLUDES(...) PTL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch: function body is exempt from the analysis. */
#define PTL_NO_THREAD_SAFETY_ANALYSIS \
    PTL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ptl {

/** std::mutex wearing the capability annotations. */
class PTL_CAPABILITY("mutex") Mutex
{
  public:
    void lock() PTL_ACQUIRE() { mu_.lock(); }
    void unlock() PTL_RELEASE() { mu_.unlock(); }
    bool try_lock() PTL_THREAD_ANNOTATION(try_acquire_capability(true))
    {
        return mu_.try_lock();
    }

  private:
    std::mutex mu_;
};

/** std::lock_guard<Mutex> the analysis can see through. */
class PTL_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) PTL_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~LockGuard() PTL_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

}  // namespace ptl

#endif  // PTLSIM_LIB_THREADSAFETY_H_
