/**
 * @file
 * Strong types for simulated time.
 *
 * PTLsim keys every timer, device latency and pipeline stamp to the
 * simulated cycle number (Section 4.2, "The Nature of Time"), and the
 * event-kernel refactor exposed how fragile raw `U64` cycle arithmetic
 * is: absolute stamps (an MSHR fill time, a fetch backoff deadline)
 * look exactly like durations (a cache latency, a timer period), so
 * nothing stops code from adding two absolute stamps, comparing a
 * stamp against a duration, or parking a core forever by restoring a
 * stale future stamp across a checkpoint time warp.
 *
 * Two wrapper types make those confusions compile errors:
 *
 *  - SimCycle    an absolute point on the simulated clock;
 *  - CycleDelta  a duration (a number of cycles).
 *
 * The only arithmetic that type-checks is the arithmetic that makes
 * sense:
 *
 *     SimCycle   + CycleDelta -> SimCycle      (arming a deadline)
 *     SimCycle   - CycleDelta -> SimCycle      (rebasing a stamp)
 *     SimCycle   - SimCycle   -> CycleDelta    (elapsed time)
 *     CycleDelta +/- CycleDelta, CycleDelta * n, CycleDelta / n
 *
 * Comparisons only work within a kind. Construction from a raw
 * integer is explicit (`SimCycle(0)`, `cycles(100)`), and the escape
 * hatch back to an integer is the explicit `.raw()` — which is the
 * token the `simlint` raw-cycle rule keys on at review time.
 *
 * CYCLE_NEVER is the typed "no cycle scheduled / never" sentinel.
 * Adding a duration to CYCLE_NEVER saturates (stays CYCLE_NEVER)
 * instead of silently wrapping to a small cycle number — the exact
 * bug the old `~0ULL` sentinels invited.
 *
 * Everything here is constexpr and trivially copyable: at any
 * optimization level above -O0 the wrappers compile to the same code
 * as raw U64 arithmetic (bench_simspeed guards the parity).
 */

#ifndef PTLSIM_LIB_SIMTIME_H_
#define PTLSIM_LIB_SIMTIME_H_

#include <compare>

#include "lib/bitops.h"

namespace ptl {

/** A duration measured in simulated cycles. */
class CycleDelta
{
  public:
    constexpr CycleDelta() = default;
    explicit constexpr CycleDelta(U64 count) : n(count) {}

    /** Escape hatch to a raw count (stats, logging, serialization). */
    constexpr U64 raw() const { return n; }

    constexpr CycleDelta operator+(CycleDelta o) const
    {
        return CycleDelta(n + o.n);
    }
    constexpr CycleDelta operator-(CycleDelta o) const
    {
        return CycleDelta(n - o.n);
    }
    constexpr CycleDelta operator*(U64 k) const { return CycleDelta(n * k); }
    constexpr CycleDelta operator/(U64 k) const { return CycleDelta(n / k); }

    CycleDelta &
    operator+=(CycleDelta o)
    {
        n += o.n;
        return *this;
    }
    CycleDelta &
    operator-=(CycleDelta o)
    {
        n -= o.n;
        return *this;
    }

    constexpr auto operator<=>(const CycleDelta &) const = default;

  private:
    U64 n = 0;
};

/** Duration literal helper: `cycles(100)` reads as what it is. */
constexpr CycleDelta
cycles(U64 n)
{
    return CycleDelta(n);
}

constexpr CycleDelta
operator*(U64 k, CycleDelta d)
{
    return d * k;
}

/** An absolute point on the simulated clock. */
class SimCycle
{
  public:
    /** Raw value of the "never" sentinel (serialization format). */
    static constexpr U64 NEVER_RAW = ~U64(0);

    constexpr SimCycle() = default;
    explicit constexpr SimCycle(U64 stamp) : n(stamp) {}

    /** Escape hatch to a raw stamp (stats, logging, serialization). */
    constexpr U64 raw() const { return n; }

    /** True for the CYCLE_NEVER sentinel. */
    constexpr bool never() const { return n == NEVER_RAW; }

    /**
     * Arm a deadline. Saturates: CYCLE_NEVER plus any duration is
     * still CYCLE_NEVER (no wraparound to cycle 0 and change).
     */
    constexpr SimCycle
    operator+(CycleDelta d) const
    {
        return never() ? *this : SimCycle(n + d.raw());
    }

    /** Rebase a stamp earlier (time-warp math). Not saturating. */
    constexpr SimCycle
    operator-(CycleDelta d) const
    {
        return SimCycle(n - d.raw());
    }

    /** Elapsed time between two points. */
    constexpr CycleDelta
    operator-(SimCycle o) const
    {
        return CycleDelta(n - o.n);
    }

    SimCycle &
    operator+=(CycleDelta d)
    {
        *this = *this + d;
        return *this;
    }

    /** Advance one cycle (the master loop's tick). */
    SimCycle &
    operator++()
    {
        n++;
        return *this;
    }

    constexpr auto operator<=>(const SimCycle &) const = default;

  private:
    U64 n = 0;
};

/**
 * "No cycle scheduled / never": the canonical unreachable point on
 * the simulated clock, shared by the event queue, core sleep hints,
 * MSHR/bank occupancy sentinels and device arming.
 */
inline constexpr SimCycle CYCLE_NEVER{SimCycle::NEVER_RAW};

}  // namespace ptl

#endif  // PTLSIM_LIB_SIMTIME_H_
