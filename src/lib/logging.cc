#include "lib/logging.h"

#include <cstdio>
#include <cstdlib>

namespace ptl {

namespace {

void (*log_sink)(const std::string &) = nullptr;
bool log_quiet = false;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
emit(const std::string &line)
{
    if (log_quiet)
        return;
    if (log_sink) {
        log_sink(line);
    } else {
        std::fputs(line.c_str(), stderr);
        std::fputc('\n', stderr);
    }
}

}  // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
setLogSink(void (*sink)(const std::string &))
{
    log_sink = sink;
}

void
setLogQuiet(bool quiet)
{
    log_quiet = quiet;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char * /*file*/, int /*line*/, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn: " + vstrprintf(fmt, ap));
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(vstrprintf(fmt, ap));
    va_end(ap);
}

}  // namespace ptl
