#include "lib/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ptl {

namespace {

// The logging configuration is genuinely process-wide (every Domain
// thread warns through the same sink), so it stays global — but as
// lock-free atomics: a sink/quiet flip by one thread while another
// emits must read either the old or the new value, never a torn one.
std::atomic<void (*)(const std::string &)>
    log_sink{nullptr};  // simlint: shared-guarded(atomic)
std::atomic<bool> log_quiet{false};  // simlint: shared-guarded(atomic)

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
emit(const std::string &line)
{
    if (log_quiet.load(std::memory_order_relaxed))
        return;
    if (auto *sink = log_sink.load(std::memory_order_acquire)) {
        sink(line);
    } else {
        std::fputs(line.c_str(), stderr);
        std::fputc('\n', stderr);
    }
}

}  // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
setLogSink(void (*sink)(const std::string &))
{
    log_sink.store(sink, std::memory_order_release);
}

void
setLogQuiet(bool quiet)
{
    log_quiet.store(quiet, std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char * /*file*/, int /*line*/, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn: " + vstrprintf(fmt, ap));
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(vstrprintf(fmt, ap));
    va_end(ap);
}

}  // namespace ptl
