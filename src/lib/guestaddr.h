/**
 * @file
 * Strong types for the three address spaces.
 *
 * PTLsim's full-system mode constantly juggles guest-virtual
 * addresses, machine-physical addresses and machine frame numbers
 * (Sections 3 and 4.3: every cache and memory operation happens on
 * machine-physical addresses, while the pipeline, decoder and guest
 * kernel think in virtual addresses). Represented as raw U64 they are
 * interchangeable by accident: a virtual address indexes PhysMem, a
 * frame number is handed to a byte-addressed API, a page offset is
 * added to the wrong base. The paper's own RIPVirtPhys split exists
 * because exactly this bug class bit the original authors.
 *
 * Four wrapper types make those confusions compile errors, the same
 * playbook lib/simtime.h applied to cycles:
 *
 *  - GuestVirt  a guest-virtual byte address (RIPs included);
 *  - GuestPhys  a machine-physical byte address;
 *  - Vpn        a virtual page number  (GuestVirt >> 12);
 *  - Pfn        a machine frame number (GuestPhys >> 12; the code
 *               historically calls these MFNs, after Xen).
 *
 * The sealed algebra:
 *
 *     GuestVirt + bytes / - bytes  -> GuestVirt   (same-kind offset)
 *     GuestVirt - GuestVirt        -> U64         (byte distance)
 *     GuestVirt::vpn()             -> Vpn
 *     GuestVirt::pageOffset()      -> U64
 *     Vpn::pageBase()              -> GuestVirt
 *     GuestPhys + bytes / - bytes  -> GuestPhys
 *     GuestPhys - GuestPhys        -> U64
 *     GuestPhys::pfn()             -> Pfn
 *     Pfn::pageBase()              -> GuestPhys
 *
 * Comparisons only work within a kind. There is NO operation taking a
 * GuestVirt to a GuestPhys: translation (AddressSpace::walk and the
 * transcache in mem/) is the only bridge, and it goes through
 * PageWalk::paddr(), which combines a walked leaf Pfn with the
 * virtual page offset. Construction from a raw integer is explicit,
 * and the escape hatch back is the explicit `.raw()` — the token the
 * simlint address-kind rule keys on: a `.raw()` value that re-enters
 * address arithmetic, or crosses to a parameter of the opposite
 * kind, is a finding.
 *
 * Everything is constexpr and trivially copyable; at -O1+ the
 * wrappers compile to raw U64 arithmetic (bench_simspeed guards the
 * parity, exactly as it does for SimCycle).
 */

#ifndef PTLSIM_LIB_GUESTADDR_H_
#define PTLSIM_LIB_GUESTADDR_H_

#include <compare>

#include "lib/bitops.h"

namespace ptl {

constexpr unsigned PAGE_SHIFT = 12;
constexpr U64 PAGE_SIZE = 1ULL << PAGE_SHIFT;
constexpr U64 PAGE_MASK = PAGE_SIZE - 1;

/** Raw-value page helpers (implementation plumbing; typed code uses
 *  the member forms below). */
constexpr U64 pageOf(U64 addr) { return addr >> PAGE_SHIFT; }
constexpr U64 pageOffset(U64 addr) { return addr & PAGE_MASK; }

class GuestVirt;
class GuestPhys;

/** A virtual page number: GuestVirt >> PAGE_SHIFT. */
class Vpn
{
  public:
    constexpr Vpn() = default;
    explicit constexpr Vpn(U64 n) : n_(n) {}

    /** Escape hatch (hash/index math, logging, serialization). */
    constexpr U64 raw() const { return n_; }

    /** First byte of the page (back to the virtual byte space). */
    constexpr GuestVirt pageBase() const;

    /** The page `pages` further on (loop stepping). */
    constexpr Vpn operator+(U64 pages) const { return Vpn(n_ + pages); }

    constexpr auto operator<=>(const Vpn &) const = default;

  private:
    U64 n_ = 0;
};

/** A machine frame number (MFN in the Xen-derived code). */
class Pfn
{
  public:
    constexpr Pfn() = default;
    explicit constexpr Pfn(U64 n) : n_(n) {}

    /** Escape hatch (frame indexing, logging, serialization). */
    constexpr U64 raw() const { return n_; }

    /** First byte of the frame (back to the physical byte space). */
    constexpr GuestPhys pageBase() const;

    constexpr Pfn operator+(U64 frames) const { return Pfn(n_ + frames); }

    constexpr auto operator<=>(const Pfn &) const = default;

  private:
    U64 n_ = 0;
};

/** A guest-virtual byte address (data addresses and RIPs). */
class GuestVirt
{
  public:
    constexpr GuestVirt() = default;
    explicit constexpr GuestVirt(U64 a) : a_(a) {}

    /** Escape hatch to the raw bit pattern (register images, hashes,
     *  logging, serialization) — the address-kind lint token. */
    constexpr U64 raw() const { return a_; }

    constexpr Vpn vpn() const { return Vpn(a_ >> PAGE_SHIFT); }
    constexpr U64 pageOffset() const { return a_ & PAGE_MASK; }
    constexpr GuestVirt pageBase() const
    {
        return GuestVirt(a_ & ~PAGE_MASK);
    }

    /** Same-kind byte offset (negative offsets via wraparound, like
     *  pointer math). */
    constexpr GuestVirt withOffset(U64 bytes) const
    {
        return GuestVirt(a_ + bytes);
    }
    constexpr GuestVirt operator+(U64 bytes) const
    {
        return GuestVirt(a_ + bytes);
    }
    constexpr GuestVirt operator-(U64 bytes) const
    {
        return GuestVirt(a_ - bytes);
    }
    GuestVirt &
    operator+=(U64 bytes)
    {
        a_ += bytes;
        return *this;
    }

    /** Byte distance between two virtual addresses. */
    constexpr U64 operator-(GuestVirt o) const { return a_ - o.a_; }

    constexpr GuestVirt alignedDown(U64 align) const
    {
        return GuestVirt(a_ & ~(align - 1));
    }

    constexpr auto operator<=>(const GuestVirt &) const = default;

  private:
    U64 a_ = 0;
};

/** A machine-physical byte address. */
class GuestPhys
{
  public:
    constexpr GuestPhys() = default;
    explicit constexpr GuestPhys(U64 a) : a_(a) {}

    /** Escape hatch to the raw bit pattern (PhysMem indexing, bank
     *  hashes, logging, serialization) — the address-kind lint
     *  token. */
    constexpr U64 raw() const { return a_; }

    constexpr Pfn pfn() const { return Pfn(a_ >> PAGE_SHIFT); }
    constexpr U64 pageOffset() const { return a_ & PAGE_MASK; }
    constexpr GuestPhys pageBase() const
    {
        return GuestPhys(a_ & ~PAGE_MASK);
    }

    constexpr GuestPhys withOffset(U64 bytes) const
    {
        return GuestPhys(a_ + bytes);
    }
    constexpr GuestPhys operator+(U64 bytes) const
    {
        return GuestPhys(a_ + bytes);
    }
    constexpr GuestPhys operator-(U64 bytes) const
    {
        return GuestPhys(a_ - bytes);
    }
    GuestPhys &
    operator+=(U64 bytes)
    {
        a_ += bytes;
        return *this;
    }

    /** Byte distance between two physical addresses. */
    constexpr U64 operator-(GuestPhys o) const { return a_ - o.a_; }

    /** Containing aligned block (cache lines, banks). */
    constexpr GuestPhys alignedDown(U64 align) const
    {
        return GuestPhys(a_ & ~(align - 1));
    }

    constexpr auto operator<=>(const GuestPhys &) const = default;

  private:
    U64 a_ = 0;
};

constexpr GuestVirt
Vpn::pageBase() const
{
    return GuestVirt(n_ << PAGE_SHIFT);
}

constexpr GuestPhys
Pfn::pageBase() const
{
    return GuestPhys(n_ << PAGE_SHIFT);
}

}  // namespace ptl

#endif  // PTLSIM_LIB_GUESTADDR_H_
