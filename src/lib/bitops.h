/**
 * @file
 * Bit-manipulation helpers shared across the simulator.
 */

#ifndef PTLSIM_LIB_BITOPS_H_
#define PTLSIM_LIB_BITOPS_H_

#include <bit>
#include <cstdint>

namespace ptl {

using U8 = std::uint8_t;
using U16 = std::uint16_t;
using U32 = std::uint32_t;
using U64 = std::uint64_t;
using S8 = std::int8_t;
using S16 = std::int16_t;
using S32 = std::int32_t;
using S64 = std::int64_t;

/** Extract bits [lo, lo+count) of value. */
constexpr U64
bits(U64 value, unsigned lo, unsigned count)
{
    return (count >= 64) ? (value >> lo)
                         : ((value >> lo) & ((U64(1) << count) - 1));
}

/** Test bit i of value. */
constexpr bool
bit(U64 value, unsigned i)
{
    return (value >> i) & 1;
}

/** A mask with the low n bits set (n in [0, 64]). */
constexpr U64
lowMask(unsigned n)
{
    return (n >= 64) ? ~U64(0) : ((U64(1) << n) - 1);
}

/** Mask covering the low `bytes` bytes (bytes in [1, 8]). */
constexpr U64
byteMask(unsigned bytes)
{
    return lowMask(bytes * 8);
}

/** Sign-extend the low `bytes` bytes of value to 64 bits. */
constexpr U64
signExtend(U64 value, unsigned bytes)
{
    unsigned shift = 64 - bytes * 8;
    return (bytes >= 8) ? value
                        : U64(S64(value << shift) >> shift);
}

/** True if x is a power of two (x > 0). */
constexpr bool
isPow2(U64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(U64 x)
{
    return std::countr_zero(x);
}

/** Round x up to the next multiple of align (align a power of two). */
constexpr U64
alignUp(U64 x, U64 align)
{
    return (x + align - 1) & ~(align - 1);
}

constexpr U64
alignDown(U64 x, U64 align)
{
    return x & ~(align - 1);
}

}  // namespace ptl

#endif  // PTLSIM_LIB_BITOPS_H_
