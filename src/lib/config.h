/**
 * @file
 * Simulator configuration.
 *
 * All tunable parameters of every core model, the cache hierarchy, the
 * branch predictors and the full-system substrate live in SimConfig.
 * Named presets ("default", "k8") mirror the paper's configurations;
 * individual fields can then be overridden via "name=value" option
 * strings, echoing PTLsim's command-list style configuration.
 */

#ifndef PTLSIM_LIB_CONFIG_H_
#define PTLSIM_LIB_CONFIG_H_

#include <string>
#include <vector>

#include "lib/bitops.h"

namespace ptl {

/** Branch predictor family selector. */
enum class PredictorKind { Bimodal, Gshare, Hybrid, Taken, NotTaken };

/** Cache coherence protocol selector (paper default vs. future work). */
enum class CoherenceKind { InstantVisibility, Moesi };

/** SMT fetch priority policy. */
enum class SmtPolicy { RoundRobin, Icount };

/** Cache replacement policy selector (per level). */
enum class ReplKind { Lru, TreePlru, Random };

/** Main-memory timing model selector (src/mem/membackend.h). */
enum class MemBackendKind { Fixed, BankedDram, Hybrid };

/** One cache level's geometry and timing. */
struct CacheParams
{
    U64 size_bytes = 0;       ///< total capacity; 0 disables the level
    int ways = 1;             ///< associativity
    int line_bytes = 64;      ///< line size
    int latency = 1;          ///< hit latency in cycles
    int mshr_count = 8;       ///< outstanding-miss buffers
    int banks = 1;            ///< pseudo-dual-port banking (1 = unbanked)
    ReplKind repl = ReplKind::Lru;  ///< victim-selection policy

    int sets() const;         ///< derived set count (validates geometry)
};

/**
 * Main-memory backend parameters (the versioned `memory` config
 * block). `version` gates the JSON schema: applyMemoryJson() rejects
 * blocks written for a different layout instead of misreading them.
 *
 * The banked-DRAM defaults are chosen so a row-buffer CONFLICT costs
 * t_rp + t_rcd + t_cas = 112 cycles — exactly the flat mem_latency of
 * the fixed backend — while an open-row hit pays only t_cas.
 */
struct MemBackendParams
{
    int version = 1;
    MemBackendKind kind = MemBackendKind::Fixed;

    // -- banked DRAM timing (also the hybrid model's bank substrate) --
    int dram_banks = 8;          ///< independent banks (power of two)
    int row_bytes = 2048;        ///< open-row (row buffer) granularity
    int t_cas = 40;              ///< row-buffer hit: column access only
    int t_rcd = 36;              ///< row activate (RAS-to-CAS)
    int t_rp = 36;               ///< row precharge on a conflict

    // -- hybrid eDRAM + PCM --
    U64 edram_size_bytes = 4 << 20;  ///< eDRAM cache capacity
    int edram_ways = 8;
    int edram_line_bytes = 64;
    int edram_latency = 24;      ///< eDRAM hit latency
    int pcm_read_latency = 160;  ///< PCM array read
    int pcm_write_latency = 480; ///< PCM cell write (asymmetric)
    int deferred_writes = 16;    ///< deferred-write queue capacity
};

/** Complete simulator configuration. */
struct SimConfig
{
    // ---- global machine ----
    U64 core_freq_hz = 2'200'000'000ULL;  ///< simulated core frequency
    int vcpu_count = 1;                   ///< VCPUs in the domain
    U64 snapshot_interval = 2'200'000;    ///< stats snapshot cadence (cycles)
    U64 timer_hz = 1000;                  ///< guest timer tick frequency
    U64 guest_mem_bytes = 64ULL << 20;    ///< domain physical memory
    U64 seed = 42;                        ///< global determinism seed
    bool shuffle_mfns = true;             ///< non-contiguous MFN assignment

    // ---- core selection ----
    std::string core = "ooo";             ///< registered core model name
    int smt_threads = 1;                  ///< hardware threads per core

    // ---- out-of-order core ----
    int fetch_width = 3;
    int frontend_width = 3;               ///< rename/dispatch per cycle
    int issue_width_per_cluster = 3;
    int commit_width = 3;
    int fetch_queue_size = 24;
    int rob_size = 72;
    int ldq_size = 44;
    int stq_size = 44;
    int int_prf_size = 128;
    int fp_prf_size = 128;
    int int_iq_count = 3;                 ///< K8-style integer lanes
    int int_iq_size = 8;
    int fp_iq_size = 36;
    int fp_cluster_delay = 2;             ///< cycles between int/fp clusters
    int frontend_stages = 7;              ///< fetch-to-dispatch depth
    int mispredict_penalty = 10;          ///< redirect bubble on mispredict
    bool load_hoisting = false;           ///< speculative load-before-store
    bool enforce_banking = true;          ///< model L1D bank conflicts
    bool skip_ahead = true;               ///< OoO core jumps quiesced cycles

    // ---- uop latencies ----
    int lat_alu = 1;
    int lat_mul = 3;
    int lat_div = 23;
    int lat_fp = 4;
    int lat_ld = 3;                       ///< L1D hit load-to-use

    // ---- memory hierarchy ----
    CacheParams l1i{64 << 10, 2, 64, 1, 8, 1};
    CacheParams l1d{64 << 10, 2, 64, 3, 8, 8};
    CacheParams l2{1 << 20, 16, 64, 10, 16, 1};
    CacheParams l3{0, 16, 64, 25, 16, 1};  ///< disabled in the K8 preset
    int mem_latency = 112;                ///< DRAM access cycles
    MemBackendParams membackend;          ///< main-memory timing model
    int dtlb_entries = 32;
    int itlb_entries = 32;
    int tlb2_entries = 0;                 ///< L2 TLB (0 = absent, as in PTLsim)
    int tlb2_ways = 4;
    bool pde_cache = false;               ///< K8 page-directory-entry cache
    bool hw_prefetch = false;             ///< K8-style next-line prefetcher
    CoherenceKind coherence = CoherenceKind::InstantVisibility;
    int interconnect_latency = 20;        ///< MOESI line-transfer cycles

    // ---- branch prediction ----
    PredictorKind predictor = PredictorKind::Hybrid;
    int gshare_entries = 16384;
    int gshare_history = 12;
    int bimodal_entries = 4096;
    int meta_entries = 4096;
    int btb_entries = 1024;
    int btb_ways = 4;
    int ras_entries = 16;

    // ---- SMT ----
    SmtPolicy smt_policy = SmtPolicy::RoundRobin;
    int smt_deadlock_timeout = 50000;     ///< cycles before rescue flush

    // ---- native mode / co-simulation ----
    U64 native_ipc_x1000 = 2200;          ///< assumed native IPC (x86) * 1000
    bool commit_checker = false;          ///< lockstep compare vs. reference

    // ---- correctness tooling (src/verify) ----
    bool verify = false;                  ///< per-cycle invariant checker
    int verify_interval = 1;              ///< audit every N cycles (0 = off)

    // ---- devices / timing (Section 4.2) ----
    int net_latency_us = 50;              ///< loopback packet delivery delay
    int disk_latency_us = 200;            ///< virtual disk DMA latency
    bool mask_external_interrupts = true; ///< paper's -maskints determinism

    /** Look up a preset by name ("default", "k8") and return it. */
    static SimConfig preset(const std::string &name);

    /**
     * Apply one "name=value" override (e.g. "rob_size=72",
     * "predictor=gshare"). Unknown names are fatal().
     */
    void applyOption(const std::string &option);

    /** Apply a whitespace-separated option list. */
    void applyOptions(const std::string &options);

    /**
     * Apply a versioned `memory` JSON block (the experiment-file
     * reproducibility path). Accepts a flat object of scalars and
     * one level of nesting; nested keys map to "group_key" option
     * names, e.g.
     *
     *   {"version": 1, "backend": "banked",
     *    "dram": {"banks": 8, "t_cas": 40},
     *    "l1d": {"repl": "tree-plru"}}
     *
     * A missing or mismatched "version" is fatal().
     */
    void applyMemoryJson(const std::string &json);

    /** Sanity-check derived quantities; fatal() on invalid geometry. */
    void validate() const;
};

}  // namespace ptl

#endif  // PTLSIM_LIB_CONFIG_H_
