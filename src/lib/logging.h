/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a ptlsim bug);
 *            prints a message and aborts so a core dump is produced.
 * fatal()  - the simulation cannot continue due to a user-level problem
 *            (bad configuration, malformed guest image); exits with code 1.
 * warn()   - something is modeled approximately; simulation continues.
 * inform() - plain status output.
 */

#ifndef PTLSIM_LIB_LOGGING_H_
#define PTLSIM_LIB_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>

namespace ptl {

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Route all warn()/inform() output through this sink (default stderr). */
void setLogSink(void (*sink)(const std::string &line));

/** Silence warn()/inform() (tests use this to keep output clean). */
void setLogQuiet(bool quiet);

}  // namespace ptl

#define panic(...)  ::ptl::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...)  ::ptl::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...)   ::ptl::warnImpl(__FILE__, __LINE__, __VA_ARGS__)
#define inform(...) ::ptl::informImpl(__VA_ARGS__)

/**
 * Assert a simulator invariant; compiled in all build types.
 *
 * The condition is captured into a local exactly once, so expressions
 * with side effects (pop(), i++) behave identically whether or not the
 * assertion fires, and the macro body never re-stringifies an already
 * evaluated expression. do/while(0) keeps it statement-safe inside
 * unbraced if/else arms.
 */
#define ptl_assert(cond)                                                  \
    do {                                                                  \
        const bool _ptl_assert_ok = static_cast<bool>(cond);              \
        if (__builtin_expect(!_ptl_assert_ok, 0))                         \
            panic("assertion failed: %s", #cond);                         \
    } while (0)

/**
 * Emit a warning the first time this callsite is reached, then stay
 * silent. The invariant checker (src/verify) uses this for non-fatal
 * drift so a per-cycle violation cannot flood the log.
 *
 * The once-flag is atomic (test_and_set semantics via exchange): once
 * the machine shards, the same callsite can be reached from several
 * Domain threads in the same instant, and "warn at most once" must
 * still hold without a data race on the flag.
 */
#define ptl_warn_once(...)                                                \
    do {                                                                  \
        static std::atomic<bool> _ptl_warned_once{false};                 \
        if (!_ptl_warned_once.exchange(true,                              \
                                       std::memory_order_relaxed)) {      \
            warn(__VA_ARGS__);                                            \
        }                                                                 \
    } while (0)

#endif  // PTLSIM_LIB_LOGGING_H_
