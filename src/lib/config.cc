#include "lib/config.h"

#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "lib/logging.h"

namespace ptl {

int
CacheParams::sets() const
{
    if (size_bytes == 0)
        return 0;
    U64 lines = size_bytes / line_bytes;
    if (lines % ways != 0)
        fatal("cache geometry: %llu lines not divisible by %d ways",
              (unsigned long long)lines, ways);
    U64 sets = lines / ways;
    if (!isPow2(sets))
        fatal("cache geometry: set count %llu not a power of two",
              (unsigned long long)sets);
    return (int)sets;
}

SimConfig
SimConfig::preset(const std::string &name)
{
    SimConfig c;
    if (name == "default") {
        // A generic modern 4-wide OOO core, PTLsim's out-of-box shape.
        c.fetch_width = 4;
        c.frontend_width = 4;
        c.issue_width_per_cluster = 4;
        c.commit_width = 4;
        c.rob_size = 128;
        c.ldq_size = 48;
        c.stq_size = 48;
        c.int_iq_count = 1;
        c.int_iq_size = 32;
        c.fp_iq_size = 32;
        c.fp_cluster_delay = 0;
        c.load_hoisting = true;
        c.enforce_banking = false;
        c.l1d.banks = 1;
        return c;
    }
    if (name == "k8") {
        // Section 5: PTLsim configured like a 2.2 GHz AMD Athlon 64 (K8).
        // 72-entry ROB, 44-entry LDQ/STQ, three 8-entry integer issue
        // queues, 36-entry FP queue two cycles away, 128-entry register
        // files sized so the ROB is the bottleneck, no load hoisting,
        // 8-bank L1D, 64K 2-way L1 caches, 1M 16-way L2 at 10 cycles,
        // memory at 112 cycles, 32-entry DTLB/ITLB, 16K gshare predictor.
        c.core_freq_hz = 2'200'000'000ULL;
        c.fetch_width = 3;
        c.frontend_width = 3;
        c.issue_width_per_cluster = 3;
        c.commit_width = 3;
        c.rob_size = 72;
        c.ldq_size = 44;
        c.stq_size = 44;
        c.int_prf_size = 128;
        c.fp_prf_size = 128;
        c.int_iq_count = 3;
        c.int_iq_size = 8;
        c.fp_iq_size = 36;
        c.fp_cluster_delay = 2;
        c.load_hoisting = false;
        c.enforce_banking = true;
        c.l1i = CacheParams{64 << 10, 2, 64, 1, 8, 1};
        c.l1d = CacheParams{64 << 10, 2, 64, 3, 8, 8};
        c.l2 = CacheParams{1 << 20, 16, 64, 10, 16, 1};
        c.l3.size_bytes = 0;
        c.mem_latency = 112;
        c.dtlb_entries = 32;
        c.itlb_entries = 32;
        c.tlb2_entries = 0;
        c.pde_cache = false;
        c.predictor = PredictorKind::Gshare;
        c.gshare_entries = 16384;
        c.gshare_history = 12;
        return c;
    }
    if (name == "k8-native") {
        // The reference-machine trial of Table 1: identical guest-visible
        // machine, but structure models matching real K8 silicon — the
        // two-level TLB (32 L1 + 1024-entry 4-way L2 + PDE cache) and the
        // hardware prefetcher that PTLsim's model lacks.
        SimConfig c2 = preset("k8");
        c2.tlb2_entries = 1024;
        c2.tlb2_ways = 4;
        c2.pde_cache = true;
        c2.hw_prefetch = true;
        return c2;
    }
    fatal("unknown config preset '%s'", name.c_str());
}

namespace {

PredictorKind
parsePredictor(const std::string &v)
{
    if (v == "bimodal") return PredictorKind::Bimodal;
    if (v == "gshare") return PredictorKind::Gshare;
    if (v == "hybrid") return PredictorKind::Hybrid;
    if (v == "taken") return PredictorKind::Taken;
    if (v == "nottaken") return PredictorKind::NotTaken;
    fatal("unknown predictor kind '%s'", v.c_str());
}

CoherenceKind
parseCoherence(const std::string &v)
{
    if (v == "instant") return CoherenceKind::InstantVisibility;
    if (v == "moesi") return CoherenceKind::Moesi;
    fatal("unknown coherence kind '%s'", v.c_str());
}

SmtPolicy
parseSmtPolicy(const std::string &v)
{
    if (v == "roundrobin") return SmtPolicy::RoundRobin;
    if (v == "icount") return SmtPolicy::Icount;
    fatal("unknown SMT policy '%s'", v.c_str());
}

ReplKind
parseRepl(const std::string &v)
{
    if (v == "lru") return ReplKind::Lru;
    if (v == "tree-plru" || v == "plru") return ReplKind::TreePlru;
    if (v == "random") return ReplKind::Random;
    fatal("unknown replacement policy '%s'", v.c_str());
}

MemBackendKind
parseBackend(const std::string &v)
{
    if (v == "fixed") return MemBackendKind::Fixed;
    if (v == "banked" || v == "banked-dram") return MemBackendKind::BankedDram;
    if (v == "hybrid") return MemBackendKind::Hybrid;
    fatal("unknown memory backend '%s'", v.c_str());
}

}  // namespace

void
SimConfig::applyOption(const std::string &option)
{
    auto eq = option.find('=');
    if (eq == std::string::npos)
        fatal("malformed option '%s' (expected name=value)", option.c_str());
    std::string name = option.substr(0, eq);
    std::string value = option.substr(eq + 1);

    auto as_u64 = [&]() -> U64 { return std::strtoull(value.c_str(), nullptr, 0); };
    auto as_int = [&]() -> int { return (int)std::strtol(value.c_str(), nullptr, 0); };
    auto as_bool = [&]() -> bool {
        if (value == "1" || value == "true" || value == "on") return true;
        if (value == "0" || value == "false" || value == "off") return false;
        fatal("option %s: bad boolean '%s'", name.c_str(), value.c_str());
    };

    const std::map<std::string, std::function<void()>> setters = {
        {"core_freq_hz", [&] { core_freq_hz = as_u64(); }},
        {"vcpu_count", [&] { vcpu_count = as_int(); }},
        {"snapshot_interval", [&] { snapshot_interval = as_u64(); }},
        {"timer_hz", [&] { timer_hz = as_u64(); }},
        {"guest_mem_bytes", [&] { guest_mem_bytes = as_u64(); }},
        {"seed", [&] { seed = as_u64(); }},
        {"shuffle_mfns", [&] { shuffle_mfns = as_bool(); }},
        {"core", [&] { core = value; }},
        {"smt_threads", [&] { smt_threads = as_int(); }},
        {"fetch_width", [&] { fetch_width = as_int(); }},
        {"frontend_width", [&] { frontend_width = as_int(); }},
        {"issue_width_per_cluster", [&] { issue_width_per_cluster = as_int(); }},
        {"commit_width", [&] { commit_width = as_int(); }},
        {"fetch_queue_size", [&] { fetch_queue_size = as_int(); }},
        {"rob_size", [&] { rob_size = as_int(); }},
        {"ldq_size", [&] { ldq_size = as_int(); }},
        {"stq_size", [&] { stq_size = as_int(); }},
        {"int_prf_size", [&] { int_prf_size = as_int(); }},
        {"fp_prf_size", [&] { fp_prf_size = as_int(); }},
        {"int_iq_count", [&] { int_iq_count = as_int(); }},
        {"int_iq_size", [&] { int_iq_size = as_int(); }},
        {"fp_iq_size", [&] { fp_iq_size = as_int(); }},
        {"fp_cluster_delay", [&] { fp_cluster_delay = as_int(); }},
        {"frontend_stages", [&] { frontend_stages = as_int(); }},
        {"mispredict_penalty", [&] { mispredict_penalty = as_int(); }},
        {"load_hoisting", [&] { load_hoisting = as_bool(); }},
        {"enforce_banking", [&] { enforce_banking = as_bool(); }},
        {"skip_ahead", [&] { skip_ahead = as_bool(); }},
        {"lat_alu", [&] { lat_alu = as_int(); }},
        {"lat_mul", [&] { lat_mul = as_int(); }},
        {"lat_div", [&] { lat_div = as_int(); }},
        {"lat_fp", [&] { lat_fp = as_int(); }},
        {"lat_ld", [&] { lat_ld = as_int(); }},
        {"l1i_size", [&] { l1i.size_bytes = as_u64(); }},
        {"l1i_ways", [&] { l1i.ways = as_int(); }},
        {"l1i_repl", [&] { l1i.repl = parseRepl(value); }},
        {"l1d_size", [&] { l1d.size_bytes = as_u64(); }},
        {"l1d_ways", [&] { l1d.ways = as_int(); }},
        {"l1d_latency", [&] { l1d.latency = as_int(); }},
        {"l1d_banks", [&] { l1d.banks = as_int(); }},
        {"l1d_repl", [&] { l1d.repl = parseRepl(value); }},
        {"l2_size", [&] { l2.size_bytes = as_u64(); }},
        {"l2_ways", [&] { l2.ways = as_int(); }},
        {"l2_latency", [&] { l2.latency = as_int(); }},
        {"l2_repl", [&] { l2.repl = parseRepl(value); }},
        {"l3_size", [&] { l3.size_bytes = as_u64(); }},
        {"l3_ways", [&] { l3.ways = as_int(); }},
        {"l3_latency", [&] { l3.latency = as_int(); }},
        {"l3_repl", [&] { l3.repl = parseRepl(value); }},
        {"mem_latency", [&] { mem_latency = as_int(); }},
        {"mem_backend", [&] { membackend.kind = parseBackend(value); }},
        {"dram_banks", [&] { membackend.dram_banks = as_int(); }},
        {"dram_row_bytes", [&] { membackend.row_bytes = as_int(); }},
        {"dram_t_cas", [&] { membackend.t_cas = as_int(); }},
        {"dram_t_rcd", [&] { membackend.t_rcd = as_int(); }},
        {"dram_t_rp", [&] { membackend.t_rp = as_int(); }},
        {"edram_size", [&] { membackend.edram_size_bytes = as_u64(); }},
        {"edram_ways", [&] { membackend.edram_ways = as_int(); }},
        {"edram_line_bytes", [&] { membackend.edram_line_bytes = as_int(); }},
        {"edram_latency", [&] { membackend.edram_latency = as_int(); }},
        {"pcm_read_latency", [&] { membackend.pcm_read_latency = as_int(); }},
        {"pcm_write_latency", [&] { membackend.pcm_write_latency = as_int(); }},
        {"deferred_writes", [&] { membackend.deferred_writes = as_int(); }},
        {"dtlb_entries", [&] { dtlb_entries = as_int(); }},
        {"itlb_entries", [&] { itlb_entries = as_int(); }},
        {"tlb2_entries", [&] { tlb2_entries = as_int(); }},
        {"tlb2_ways", [&] { tlb2_ways = as_int(); }},
        {"pde_cache", [&] { pde_cache = as_bool(); }},
        {"hw_prefetch", [&] { hw_prefetch = as_bool(); }},
        {"coherence", [&] { coherence = parseCoherence(value); }},
        {"interconnect_latency", [&] { interconnect_latency = as_int(); }},
        {"predictor", [&] { predictor = parsePredictor(value); }},
        {"gshare_entries", [&] { gshare_entries = as_int(); }},
        {"gshare_history", [&] { gshare_history = as_int(); }},
        {"bimodal_entries", [&] { bimodal_entries = as_int(); }},
        {"meta_entries", [&] { meta_entries = as_int(); }},
        {"btb_entries", [&] { btb_entries = as_int(); }},
        {"btb_ways", [&] { btb_ways = as_int(); }},
        {"ras_entries", [&] { ras_entries = as_int(); }},
        {"smt_policy", [&] { smt_policy = parseSmtPolicy(value); }},
        {"smt_deadlock_timeout", [&] { smt_deadlock_timeout = as_int(); }},
        {"native_ipc_x1000", [&] { native_ipc_x1000 = as_u64(); }},
        {"commit_checker", [&] { commit_checker = as_bool(); }},
        {"verify", [&] { verify = as_bool(); }},
        {"verify_interval", [&] { verify_interval = as_int(); }},
        {"net_latency_us", [&] { net_latency_us = as_int(); }},
        {"disk_latency_us", [&] { disk_latency_us = as_int(); }},
        {"mask_external_interrupts", [&] { mask_external_interrupts = as_bool(); }},
    };

    auto it = setters.find(name);
    if (it == setters.end())
        fatal("unknown config option '%s'", name.c_str());
    it->second();
}

void
SimConfig::applyOptions(const std::string &options)
{
    std::istringstream in(options);
    std::string tok;
    while (in >> tok)
        applyOption(tok);
}

namespace {

/**
 * Minimal JSON reader for the `memory` experiment block: one object,
 * string/number/bool scalars, at most one level of nested objects.
 * Emits (path, value) pairs with nested keys joined as "group.key".
 * No external dependency — the toolchain image carries no JSON
 * library and the schema is deliberately tiny.
 */
class MemoryJsonReader
{
  public:
    explicit MemoryJsonReader(const std::string &text) : s(text) {}

    std::vector<std::pair<std::string, std::string>>
    parse()
    {
        std::vector<std::pair<std::string, std::string>> out;
        skipWs();
        expect('{');
        parseObject("", out, /*depth=*/0);
        skipWs();
        if (pos != s.size())
            fatal("memory JSON: trailing garbage at offset %zu", pos);
        return out;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t'
                                  || s[pos] == '\n' || s[pos] == '\r'))
            pos++;
    }

    void
    expect(char c)
    {
        if (pos >= s.size() || s[pos] != c)
            fatal("memory JSON: expected '%c' at offset %zu", c, pos);
        pos++;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\')
                fatal("memory JSON: escapes are not supported");
            out += s[pos++];
        }
        expect('"');
        return out;
    }

    std::string
    parseScalar()
    {
        if (s[pos] == '"')
            return parseString();
        size_t start = pos;
        while (pos < s.size() && (std::isalnum((unsigned char)s[pos])
                                  || s[pos] == '-' || s[pos] == '+'
                                  || s[pos] == '.' || s[pos] == '_'))
            pos++;
        if (pos == start)
            fatal("memory JSON: expected a value at offset %zu", pos);
        return s.substr(start, pos - start);
    }

    void
    parseObject(const std::string &prefix,
                std::vector<std::pair<std::string, std::string>> &out,
                int depth)
    {
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            pos++;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            std::string path = prefix.empty() ? key : prefix + "." + key;
            if (pos < s.size() && s[pos] == '{') {
                if (depth >= 1)
                    fatal("memory JSON: object nesting too deep at '%s'",
                          path.c_str());
                pos++;
                parseObject(path, out, depth + 1);
            } else {
                out.emplace_back(path, parseScalar());
            }
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                pos++;
                continue;
            }
            expect('}');
            return;
        }
    }

    const std::string &s;
    size_t pos = 0;
};

/** Map a "group.key" JSON path onto a flat applyOption() name. */
std::string
memoryJsonOption(const std::string &path)
{
    if (path == "backend")
        return "mem_backend";
    if (path == "mem_latency")
        return "mem_latency";
    auto dot = path.find('.');
    if (dot == std::string::npos)
        fatal("memory JSON: unknown key '%s'", path.c_str());
    std::string group = path.substr(0, dot);
    std::string key = path.substr(dot + 1);
    if (group == "l1i" || group == "l1d" || group == "l2" || group == "l3")
        return group + "_" + key;
    if (group == "dram")
        return "dram_" + key;
    if (group == "edram")
        return "edram_" + key;
    if (group == "pcm") {
        if (key == "deferred_writes")
            return "deferred_writes";
        return "pcm_" + key;
    }
    fatal("memory JSON: unknown key '%s'", path.c_str());
}

}  // namespace

void
SimConfig::applyMemoryJson(const std::string &json)
{
    MemoryJsonReader reader(json);
    auto pairs = reader.parse();
    bool versioned = false;
    for (const auto &[path, value] : pairs) {
        if (path == "version") {
            if (value != "1")
                fatal("memory JSON: unsupported version '%s' "
                      "(this build reads version 1)", value.c_str());
            versioned = true;
            continue;
        }
        // Normalize eDRAM size alias: "size" reads naturally in JSON.
        std::string opt = memoryJsonOption(path);
        if (opt == "edram_size_bytes")
            opt = "edram_size";
        applyOption(opt + "=" + value);
    }
    if (!versioned)
        fatal("memory JSON: missing required \"version\" key");
}

void
SimConfig::validate() const
{
    if (vcpu_count < 1 || vcpu_count > 32)
        fatal("vcpu_count %d out of range [1, 32]", vcpu_count);
    if (smt_threads < 1 || smt_threads > 16)
        fatal("smt_threads %d out of range [1, 16] (paper limit)", smt_threads);
    if (rob_size < 4 || ldq_size < 2 || stq_size < 2)
        fatal("pipeline structure sizes too small");
    if (int_prf_size < rob_size / 2)
        fatal("int_prf_size %d too small for rob_size %d",
              int_prf_size, rob_size);
    // Force geometry checks.
    (void)l1i.sets();
    (void)l1d.sets();
    (void)l2.sets();
    (void)l3.sets();
    if (!isPow2((U64)dtlb_entries) || !isPow2((U64)itlb_entries))
        fatal("TLB entry counts must be powers of two");
    if (tlb2_entries && !isPow2((U64)tlb2_entries))
        fatal("tlb2_entries must be a power of two");
    if (!isPow2((U64)btb_entries) || !isPow2((U64)gshare_entries)
        || !isPow2((U64)bimodal_entries) || !isPow2((U64)meta_entries))
        fatal("predictor table sizes must be powers of two");
    if (membackend.version != 1)
        fatal("membackend version %d unsupported", membackend.version);
    if (membackend.dram_banks < 1 || !isPow2((U64)membackend.dram_banks))
        fatal("dram_banks %d must be a power of two",
              membackend.dram_banks);
    if (membackend.row_bytes < l1d.line_bytes
        || !isPow2((U64)membackend.row_bytes))
        fatal("dram row_bytes %d must be a power of two >= the line size",
              membackend.row_bytes);
    if (membackend.t_cas < 1 || membackend.t_rcd < 0 || membackend.t_rp < 0)
        fatal("DRAM timing parameters out of range");
    if (membackend.kind == MemBackendKind::Hybrid) {
        CacheParams edram;
        edram.size_bytes = membackend.edram_size_bytes;
        edram.ways = membackend.edram_ways;
        edram.line_bytes = membackend.edram_line_bytes;
        (void)edram.sets();  // force geometry checks
        if (membackend.pcm_read_latency < 1
            || membackend.pcm_write_latency < 1)
            fatal("PCM latencies must be positive");
        if (membackend.deferred_writes < 1)
            fatal("deferred_writes %d must be positive",
                  membackend.deferred_writes);
    }
}

}  // namespace ptl
