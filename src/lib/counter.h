/**
 * @file
 * The statistics event counter.
 *
 * Counter lives in lib/ (layer 1), below the StatsTree that owns
 * counter storage (stats/, layer 3), so that low-layer modules — the
 * decoder's basic-block cache, for instance — can hold `Counter &`
 * handles without depending on the statistics tree itself. Handles
 * are handed out by StatsTree::counter() and stay valid for the
 * tree's lifetime.
 */

#ifndef PTLSIM_LIB_COUNTER_H_
#define PTLSIM_LIB_COUNTER_H_

#include "lib/bitops.h"

namespace ptl {

/** A single monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void add(U64 n) { _value += n; }
    Counter &operator+=(U64 n) { _value += n; return *this; }
    Counter &operator++() { ++_value; return *this; }
    void operator++(int) { ++_value; }

    U64 value() const { return _value; }

  private:
    U64 _value = 0;
};

}  // namespace ptl

#endif  // PTLSIM_LIB_COUNTER_H_
