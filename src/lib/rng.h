/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Everything stochastic in the simulator (file-set generation, MFN
 * shuffling, workload content) draws from an explicitly seeded Xoshiro
 * generator so that every run is exactly reproducible, matching the
 * paper's emphasis on fully deterministic simulation.
 */

#ifndef PTLSIM_LIB_RNG_H_
#define PTLSIM_LIB_RNG_H_

#include <cstdint>

#include "lib/bitops.h"

namespace ptl {

/** xoshiro256** deterministic RNG. */
class Rng
{
  public:
    explicit Rng(U64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(U64 seed)
    {
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ULL;
            U64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    U64
    next()
    {
        U64 result = rotl(state[1] * 5, 7) * 9;
        U64 t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    U64
    below(U64 bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    U64
    range(U64 lo, U64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability num/den. */
    bool
    chance(U64 num, U64 den)
    {
        return below(den) < num;
    }

  private:
    static U64 rotl(U64 x, int k) { return (x << k) | (x >> (64 - k)); }

    U64 state[4];
};

}  // namespace ptl

#endif  // PTLSIM_LIB_RNG_H_
