#include "uop/uopexec.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "lib/logging.h"

namespace ptl {

const char *
guestFaultName(GuestFault fault)
{
    switch (fault) {
      case GuestFault::None: return "none";
      case GuestFault::DivideError: return "#DE";
      case GuestFault::InvalidOpcode: return "#UD";
      case GuestFault::PageFaultRead: return "#PF(read)";
      case GuestFault::PageFaultWrite: return "#PF(write)";
      case GuestFault::PageFaultFetch: return "#PF(fetch)";
      case GuestFault::GeneralProtection: return "#GP";
      case GuestFault::MicrocodeCheck: return "#CHK";
    }
    return "?";
}

namespace {

/** x86 PF: set if the low byte of the result has even parity. */
bool
parity8(U64 result)
{
    return (std::popcount((unsigned)(result & 0xff)) & 1) == 0;
}

U64
msbMask(unsigned size)
{
    return U64(1) << (size * 8 - 1);
}

U16
zsp(U64 masked_result, unsigned size)
{
    U16 f = 0;
    if (masked_result == 0)
        f |= FLAG_ZF;
    if (masked_result & msbMask(size))
        f |= FLAG_SF;
    if (parity8(masked_result))
        f |= FLAG_PF;
    return f;
}

struct AluResult
{
    U64 value;
    U16 flags;
};

AluResult
doAdd(U64 a, U64 b, bool carry_in, unsigned size)
{
    U64 mask = byteMask(size);
    a &= mask;
    b &= mask;
    U64 r = (a + b + (carry_in ? 1 : 0)) & mask;
    U16 f = zsp(r, size);
    bool cf;
    if (size == 8) {
        U64 s = a + b;
        cf = s < a || (carry_in && s + 1 == 0);
    } else {
        // Sum fits in 64 bits for sub-64-bit widths; carry is overflow
        // past the masked width.
        cf = (a + b + (carry_in ? 1 : 0)) > mask;
    }
    if (cf)
        f |= FLAG_CF;
    if ((a ^ r) & (b ^ r) & msbMask(size))
        f |= FLAG_OF;
    if ((a ^ b ^ r) & 0x10)
        f |= FLAG_AF;
    return {r, f};
}

AluResult
doSub(U64 a, U64 b, bool borrow_in, unsigned size)
{
    U64 mask = byteMask(size);
    a &= mask;
    b &= mask;
    U64 r = (a - b - (borrow_in ? 1 : 0)) & mask;
    U16 f = zsp(r, size);
    bool cf = (a < b) || (borrow_in && a == b);
    if (cf)
        f |= FLAG_CF;
    if ((a ^ b) & (a ^ r) & msbMask(size))
        f |= FLAG_OF;
    if ((a ^ b ^ r) & 0x10)
        f |= FLAG_AF;
    return {r, f};
}

}  // namespace

U16
flagsForLogic(U64 result, unsigned size)
{
    return zsp(result & byteMask(size), size);
}

UopOutcome
executeUop(const Uop &u, U64 ra, U64 rb, U64 rc,
           U16 rff, U16 raf, U16 rbf, U16 rcf)
{
    UopOutcome out;
    if (u.rb_imm)
        rb = (U64)u.imm;
    const unsigned size = u.size;
    const U64 mask = byteMask(size);

    switch (u.op) {
      case UopOp::Nop:
        break;
      case UopOp::Mov:
        out.value = rb & mask;
        out.flags = flagsForLogic(out.value, size);
        break;
      case UopOp::MergeLo:
        out.value = (ra & ~mask) | (rb & mask);
        break;
      case UopOp::Sext:
        out.value = signExtend(rb, size);
        break;
      case UopOp::And: case UopOp::Or: case UopOp::Xor: case UopOp::Nand: {
        U64 r;
        switch (u.op) {
          case UopOp::And: r = ra & rb; break;
          case UopOp::Or: r = ra | rb; break;
          case UopOp::Xor: r = ra ^ rb; break;
          default: r = ~(ra & rb); break;
        }
        r &= mask;
        out.value = r;
        out.flags = flagsForLogic(r, size);  // CF = OF = 0
        break;
      }
      case UopOp::Add: {
        auto res = doAdd(ra, rb, false, size);
        out.value = res.value;
        out.flags = res.flags;
        break;
      }
      case UopOp::Sub: {
        auto res = doSub(ra, rb, false, size);
        out.value = res.value;
        out.flags = res.flags;
        break;
      }
      case UopOp::Adc: {
        auto res = doAdd(ra, rb, rff & FLAG_CF, size);
        out.value = res.value;
        out.flags = res.flags;
        break;
      }
      case UopOp::Sbb: {
        auto res = doSub(ra, rb, rff & FLAG_CF, size);
        out.value = res.value;
        out.flags = res.flags;
        break;
      }
      case UopOp::Shl: case UopOp::Shr: case UopOp::Sar: {
        unsigned countmask = (size == 8) ? 63 : 31;
        unsigned count = (unsigned)(rb & countmask);
        U64 a = ra & mask;
        if (count == 0) {
            // x86: zero shift count leaves flags untouched; pass through.
            out.value = a;
            out.flags = rff;
            break;
        }
        unsigned bits = size * 8;
        U64 r;
        bool cf;
        if (u.op == UopOp::Shl) {
            r = (count >= bits) ? 0 : (a << count);
            cf = (count <= bits) && bit(a, bits - count);
            r &= mask;
            out.flags = zsp(r, size) | (cf ? FLAG_CF : 0);
            // OF defined for count==1: MSB(result) != CF.
            if (count == 1 && (bool)(r & msbMask(size)) != cf)
                out.flags |= FLAG_OF;
        } else if (u.op == UopOp::Shr) {
            r = (count >= bits) ? 0 : (a >> count);
            cf = (count <= bits) && bit(a, count - 1);
            out.flags = zsp(r, size) | (cf ? FLAG_CF : 0);
            if (count == 1 && (a & msbMask(size)))
                out.flags |= FLAG_OF;
        } else {  // Sar
            S64 sa = (S64)signExtend(a, size);
            unsigned c = (count >= bits) ? bits - 1 : count;
            r = (U64)(sa >> c) & mask;
            cf = (count <= bits) ? bit((U64)sa, count - 1) : (sa < 0);
            out.flags = zsp(r, size) | (cf ? FLAG_CF : 0);
            // OF = 0 for sar.
        }
        out.value = r;
        break;
      }
      case UopOp::Rol: case UopOp::Ror: {
        unsigned bits = size * 8;
        unsigned count = (unsigned)(rb & ((size == 8) ? 63 : 31)) % bits;
        U64 a = ra & mask;
        if (count == 0 && (rb & ((size == 8) ? 63 : 31)) == 0) {
            out.value = a;
            out.flags = rff;
            break;
        }
        U64 r;
        if (u.op == UopOp::Rol)
            r = ((a << count) | (a >> (bits - count) % bits)) & mask;
        else
            r = ((a >> count) | (a << (bits - count) % bits)) & mask;
        if (count == 0)
            r = a;
        bool cf = (u.op == UopOp::Rol) ? (r & 1) : (r & msbMask(size));
        out.value = r;
        out.flags = (U16)((rff & ~(FLAG_CF | FLAG_OF)) | (cf ? FLAG_CF : 0));
        bool msb = r & msbMask(size);
        bool msb1 = r & (msbMask(size) >> 1);
        if ((u.op == UopOp::Rol && msb != cf)
            || (u.op == UopOp::Ror && msb != msb1))
            out.flags |= FLAG_OF;
        break;
      }
      case UopOp::Mull: {
        __int128 p = (__int128)(S64)signExtend(ra, size)
                     * (S64)signExtend(rb, size);
        out.value = (U64)p & mask;
        // imul semantics: CF = OF = product doesn't fit in `size`.
        bool fits = p == (__int128)(S64)signExtend((U64)p, size);
        out.flags = zsp(out.value, size) | (fits ? 0 : (FLAG_CF | FLAG_OF));
        break;
      }
      case UopOp::Mulh: {
        unsigned __int128 p = (unsigned __int128)(ra & mask) * (rb & mask);
        U64 hi = (size == 8) ? (U64)(p >> 64)
                             : (U64)((p >> (size * 8)) & mask);
        out.value = hi;
        out.flags = (hi != 0) ? (FLAG_CF | FLAG_OF) : 0;
        break;
      }
      case UopOp::Mulhs: {
        __int128 p = (__int128)(S64)signExtend(ra, size)
                     * (S64)signExtend(rb, size);
        U64 hi = (size == 8) ? (U64)((unsigned __int128)p >> 64)
                             : (U64)(((unsigned __int128)p >> (size * 8)) & mask);
        out.value = hi;
        bool fits = p == (__int128)(S64)signExtend((U64)p, size);
        out.flags = fits ? 0 : (FLAG_CF | FLAG_OF);
        break;
      }
      case UopOp::DivQ: case UopOp::DivR: {
        // Dividend is rc:ra (high:low), divisor rb; unsigned.
        U64 lo = ra & mask, hi = rc & mask, d = rb & mask;
        if (d == 0) {
            out.fault = GuestFault::DivideError;
            break;
        }
        unsigned __int128 dividend =
            ((unsigned __int128)hi << (size * 8)) | lo;
        unsigned __int128 q = dividend / d;
        unsigned __int128 r = dividend % d;
        if (q > (unsigned __int128)mask) {
            out.fault = GuestFault::DivideError;
            break;
        }
        out.value = (u.op == UopOp::DivQ) ? (U64)q : (U64)r;
        break;
      }
      case UopOp::DivQs: case UopOp::DivRs: {
        U64 lo = ra & mask, hi = rc & mask;
        S64 d = (S64)signExtend(rb, size);
        if (d == 0) {
            out.fault = GuestFault::DivideError;
            break;
        }
        __int128 dividend =
            (__int128)((unsigned __int128)hi << (size * 8) | lo);
        // Sign-extend the 2*size-bit dividend.
        int total_bits = size * 16;
        if (total_bits < 128) {
            dividend = (__int128)((unsigned __int128)dividend
                                  << (128 - total_bits));
            dividend >>= (128 - total_bits);
        }
        __int128 q = dividend / d;
        __int128 r = dividend % d;
        __int128 min_q = -((__int128)1 << (size * 8 - 1));
        __int128 max_q = ((__int128)1 << (size * 8 - 1)) - 1;
        if (q < min_q || q > max_q) {
            out.fault = GuestFault::DivideError;
            break;
        }
        out.value = (U64)((u.op == UopOp::DivQs) ? q : r) & mask;
        break;
      }
      case UopOp::Bt: case UopOp::Bts: case UopOp::Btr: case UopOp::Btc: {
        unsigned idx = (unsigned)(rb & (size * 8 - 1));
        bool was_set = bit(ra & mask, idx);
        U64 r = ra & mask;
        if (u.op == UopOp::Bts) r |= (U64(1) << idx);
        if (u.op == UopOp::Btr) r &= ~(U64(1) << idx);
        if (u.op == UopOp::Btc) r ^= (U64(1) << idx);
        out.value = r;
        out.flags = was_set ? FLAG_CF : 0;
        break;
      }
      case UopOp::Bsf: case UopOp::Bsr: {
        U64 a = ra & mask;
        if (a == 0) {
            out.value = 0;
            out.flags = FLAG_ZF;
        } else {
            out.value = (u.op == UopOp::Bsf)
                            ? (U64)std::countr_zero(a)
                            : (U64)(63 - std::countl_zero(a));
            out.flags = 0;
        }
        break;
      }
      case UopOp::Bswap: {
        U64 a = ra & mask;
        U64 r = 0;
        for (unsigned i = 0; i < size; i++)
            r |= ((a >> (i * 8)) & 0xff) << ((size - 1 - i) * 8);
        out.value = r;
        break;
      }
      case UopOp::Sel:
        out.value = (evaluateCond(u.cond, rff) ? rb : ra) & mask;
        break;
      case UopOp::Set:
        out.value = evaluateCond(u.cond, rff) ? 1 : 0;
        break;
      case UopOp::CollCC:
        out.flags = (U16)((raf & FLAG_ZAPS_MASK) | (rbf & FLAG_CF)
                          | (rcf & FLAG_OF));
        out.value = out.flags;
        break;
      case UopOp::MovCcr:
        out.flags = (U16)(rb & (FLAG_ZAPS_MASK | FLAG_CF | FLAG_OF | FLAG_DF));
        out.value = out.flags;
        break;
      case UopOp::MovRcc:
        out.value = (U64)rff | 0x2;  // bit 1 of RFLAGS always reads 1
        break;
      case UopOp::Bru:
        out.value = (U64)u.imm;
        out.taken = true;
        break;
      case UopOp::BrCC:
        out.taken = evaluateCond(u.cond, rff);
        out.value = out.taken ? (U64)u.imm : (U64)u.imm2;
        break;
      case UopOp::Jmp:
        out.value = ra;
        out.taken = true;
        break;
      case UopOp::Chk:
        if (evaluateCond(u.cond, rff))
            out.fault = GuestFault::MicrocodeCheck;
        break;
      case UopOp::Fence:
      case UopOp::Prefetch:
        break;
      case UopOp::Addf: case UopOp::Subf: case UopOp::Mulf:
      case UopOp::Divf: case UopOp::Minf: case UopOp::Maxf: {
        double a = std::bit_cast<double>(ra);
        double b = std::bit_cast<double>(rb);
        double r;
        switch (u.op) {
          case UopOp::Addf: r = a + b; break;
          case UopOp::Subf: r = a - b; break;
          case UopOp::Mulf: r = a * b; break;
          case UopOp::Divf: r = a / b; break;
          case UopOp::Minf: r = (b < a) ? b : a; break;
          default: r = (a < b) ? b : a; break;
        }
        out.value = std::bit_cast<U64>(r);
        break;
      }
      case UopOp::Sqrtf:
        out.value = std::bit_cast<U64>(
            std::sqrt(std::bit_cast<double>(ra)));
        break;
      case UopOp::Cmpf: {
        // comisd semantics: ZF/PF/CF encode the comparison; SF/OF/AF = 0.
        double a = std::bit_cast<double>(ra);
        double b = std::bit_cast<double>(rb);
        if (std::isnan(a) || std::isnan(b))
            out.flags = FLAG_ZF | FLAG_PF | FLAG_CF;
        else if (a > b)
            out.flags = 0;
        else if (a < b)
            out.flags = FLAG_CF;
        else
            out.flags = FLAG_ZF;
        break;
      }
      case UopOp::Cvtif:
        out.value = std::bit_cast<U64>((double)(S64)ra);
        break;
      case UopOp::Cvtfi: {
        double a = std::bit_cast<double>(ra);
        out.value = (U64)(S64)a;
        break;
      }
      case UopOp::Ld: case UopOp::Lds: case UopOp::St:
        panic("memory uop %s routed to executeUop", uopInfo(u.op).name);
      case UopOp::Assist:
        panic("assist uop routed to executeUop");
    }
    return out;
}

}  // namespace ptl
