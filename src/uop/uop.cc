#include "uop/uop.h"

#include <sstream>

#include "lib/logging.h"

namespace ptl {

bool
evaluateCond(CondCode cond, U16 f)
{
    bool cf = f & FLAG_CF;
    bool zf = f & FLAG_ZF;
    bool sf = f & FLAG_SF;
    bool of = f & FLAG_OF;
    bool pf = f & FLAG_PF;
    switch (cond) {
      case COND_o: return of;
      case COND_no: return !of;
      case COND_b: return cf;
      case COND_nb: return !cf;
      case COND_e: return zf;
      case COND_ne: return !zf;
      case COND_be: return cf || zf;
      case COND_nbe: return !(cf || zf);
      case COND_s: return sf;
      case COND_ns: return !sf;
      case COND_p: return pf;
      case COND_np: return !pf;
      case COND_l: return sf != of;
      case COND_nl: return sf == of;
      case COND_le: return zf || (sf != of);
      case COND_nle: return !zf && (sf == of);
      case COND_always: return true;
    }
    panic("bad condition code %d", (int)cond);
}

U8
condFlagGroups(CondCode cond)
{
    switch (cond) {
      case COND_o: case COND_no:
        return SETFLAG_OF;
      case COND_b: case COND_nb:
        return SETFLAG_CF;
      case COND_e: case COND_ne: case COND_s: case COND_ns:
      case COND_p: case COND_np:
        return SETFLAG_ZAPS;
      case COND_be: case COND_nbe:
        return SETFLAG_CF | SETFLAG_ZAPS;
      case COND_l: case COND_nl: case COND_le: case COND_nle:
        return SETFLAG_ZAPS | SETFLAG_OF;
      default:
        return SETFLAG_ALL;
    }
}

U8
uopFlagGroupsNeeded(const Uop &u)
{
    if (u.rf == REG_none)
        return 0;
    switch (u.op) {
      case UopOp::BrCC: case UopOp::Sel: case UopOp::Set: case UopOp::Chk:
        return condFlagGroups(u.cond);
      case UopOp::Adc: case UopOp::Sbb:
        return SETFLAG_CF;
      case UopOp::Shl: case UopOp::Shr: case UopOp::Sar:
      case UopOp::Rol: case UopOp::Ror:
      case UopOp::MovRcc:
        return SETFLAG_ALL;
      default:
        return 0;
    }
}

void
Uop::precomputeSched()
{
    sched_cls = (U8)uopInfo(op).cls;
    sched_fgroups = uopFlagGroupsNeeded(*this);
    sched_wrd = writesRd() ? 1 : 0;
}

namespace {

constexpr UopInfo kUopInfo[] = {
    {"nop", UopClass::IntAlu, false},
    {"mov", UopClass::IntAlu, true},
    {"mergelo", UopClass::IntAlu, true},
    {"sext", UopClass::IntAlu, true},
    {"and", UopClass::IntAlu, true},
    {"or", UopClass::IntAlu, true},
    {"xor", UopClass::IntAlu, true},
    {"nand", UopClass::IntAlu, true},
    {"add", UopClass::IntAlu, true},
    {"sub", UopClass::IntAlu, true},
    {"adc", UopClass::IntAlu, true},
    {"sbb", UopClass::IntAlu, true},
    {"shl", UopClass::IntAlu, true},
    {"shr", UopClass::IntAlu, true},
    {"sar", UopClass::IntAlu, true},
    {"rol", UopClass::IntAlu, true},
    {"ror", UopClass::IntAlu, true},
    {"mull", UopClass::IntMul, true},
    {"mulh", UopClass::IntMul, true},
    {"mulhs", UopClass::IntMul, true},
    {"divq", UopClass::IntDiv, true},
    {"divr", UopClass::IntDiv, true},
    {"divqs", UopClass::IntDiv, true},
    {"divrs", UopClass::IntDiv, true},
    {"bt", UopClass::IntAlu, false},
    {"bts", UopClass::IntAlu, true},
    {"btr", UopClass::IntAlu, true},
    {"btc", UopClass::IntAlu, true},
    {"bsf", UopClass::IntAlu, true},
    {"bsr", UopClass::IntAlu, true},
    {"bswap", UopClass::IntAlu, true},
    {"sel", UopClass::IntAlu, true},
    {"set", UopClass::IntAlu, true},
    {"collcc", UopClass::IntAlu, true},
    {"movccr", UopClass::IntAlu, true},
    {"movrcc", UopClass::IntAlu, true},
    {"bru", UopClass::Branch, false},
    {"br", UopClass::Branch, false},
    {"jmp", UopClass::Branch, false},
    {"chk", UopClass::Branch, false},
    {"ld", UopClass::Load, true},
    {"lds", UopClass::Load, true},
    {"st", UopClass::Store, false},
    {"fence", UopClass::Fence, false},
    {"prefetch", UopClass::Load, false},
    {"addf", UopClass::Fpu, true},
    {"subf", UopClass::Fpu, true},
    {"mulf", UopClass::Fpu, true},
    {"divf", UopClass::FpDiv, true},
    {"minf", UopClass::Fpu, true},
    {"maxf", UopClass::Fpu, true},
    {"sqrtf", UopClass::FpDiv, true},
    {"cmpf", UopClass::Fpu, false},
    {"cvtif", UopClass::Fpu, true},
    {"cvtfi", UopClass::Fpu, true},
    {"assist", UopClass::AssistOp, true},
};

static_assert(sizeof(kUopInfo) / sizeof(kUopInfo[0])
                  == (size_t)UopOp::Assist + 1,
              "kUopInfo out of sync with UopOp");

constexpr const char *kRegNames[NUM_UOP_REGS] = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    "xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7",
    "xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14", "xmm15",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "zero", "r41?", "zaps", "cf", "of", "fsbase", "gsbase", "none",
};

constexpr const char *kCondNames[] = {
    "o", "no", "b", "nb", "e", "ne", "be", "nbe",
    "s", "ns", "p", "np", "l", "nl", "le", "nle", "always",
};

}  // namespace

const UopInfo &
uopInfo(UopOp op)
{
    return kUopInfo[(size_t)op];
}

const char *
uopRegName(int reg)
{
    ptl_assert(reg >= 0 && reg < NUM_UOP_REGS);
    return kRegNames[reg];
}

const char *
condName(CondCode cond)
{
    return kCondNames[(int)cond];
}

std::string
Uop::toString() const
{
    std::ostringstream out;
    if (som)
        out << "| ";
    else
        out << "  ";
    out << uopInfo(op).name;
    if (op == UopOp::BrCC || op == UopOp::Sel || op == UopOp::Set
        || op == UopOp::Chk)
        out << '.' << condName(cond);
    out << '.' << (int)size * 8;
    if (writesRd())
        out << ' ' << uopRegName(rd) << " =";
    if (isMem()) {
        out << " [" << uopRegName(ra);
        if (!rb_imm && rb != REG_zero)
            out << " + " << uopRegName(rb) << "<<" << (int)scale;
        if (imm)
            out << " + " << imm;
        out << "]";
        if (isStore())
            out << " := " << uopRegName(rc);
    } else {
        out << ' ' << uopRegName(ra);
        if (rb_imm)
            out << ", #" << imm;
        else if (rb != REG_zero || rc != REG_zero)
            out << ", " << uopRegName(rb);
        if (rc != REG_zero && !isStore())
            out << ", " << uopRegName(rc);
    }
    if (rf != REG_none)
        out << " [flags " << uopRegName(rf) << "]";
    if (setflags) {
        out << " {";
        if (setflags & SETFLAG_ZAPS) out << "zaps";
        if (setflags & SETFLAG_CF) out << " cf";
        if (setflags & SETFLAG_OF) out << " of";
        out << "}";
    }
    if (locked)
        out << " LOCK";
    if (eom)
        out << " ;";
    return out.str();
}

}  // namespace ptl
