/**
 * @file
 * Functional execution of uops.
 *
 * This is the single definition of uop semantics shared by every engine
 * in the simulator: the sequential core, the out-of-order core's
 * integrated execute stage, the SMT core, and the native-mode functional
 * emulator all call executeUop(). PTLsim is an *integrated* simulator
 * (Section 6.1): the same code computes correct values and feeds the
 * timing model, so functional bugs surface immediately as guest crashes.
 */

#ifndef PTLSIM_UOP_UOPEXEC_H_
#define PTLSIM_UOP_UOPEXEC_H_

#include "uop/uop.h"

namespace ptl {

/** Guest-visible fault classes raised during execution. */
enum class GuestFault : U8 {
    None,
    DivideError,        ///< #DE
    InvalidOpcode,      ///< #UD
    PageFaultRead,      ///< #PF on a data read
    PageFaultWrite,     ///< #PF on a data write
    PageFaultFetch,     ///< #PF on instruction fetch
    GeneralProtection,  ///< #GP (e.g. hypercall from user mode)
    MicrocodeCheck,     ///< chk uop fired (internal speculation assert)
};

const char *guestFaultName(GuestFault fault);

/** Result of functionally executing one non-memory uop. */
struct UopOutcome
{
    U64 value = 0;          ///< result value (branches: actual next RIP)
    U16 flags = 0;          ///< produced flag word (per setflags groups)
    bool taken = false;     ///< branch outcome
    GuestFault fault = GuestFault::None;
};

/**
 * Execute one uop functionally.
 *
 * @param u       the uop (if u.rb_imm, the rb operand is taken from u.imm)
 * @param ra,rb,rc source register *values*
 * @param rff     flag word attached to the rf register
 * @param raf,rbf,rcf flag words of ra/rb/rc (used by collcc)
 *
 * Memory and assist uops are not handled here; callers perform address
 * generation via uopMemAddr() and route Ld/St/Assist through their own
 * memory system / microcode layers.
 */
UopOutcome executeUop(const Uop &u, U64 ra, U64 rb, U64 rc,
                      U16 rff = 0, U16 raf = 0, U16 rbf = 0, U16 rcf = 0);

/** Effective address of a memory uop: ra + (rb << scale) + imm. */
inline U64
uopMemAddr(const Uop &u, U64 ra, U64 rb)
{
    U64 index = u.rb_imm ? 0 : (rb << u.scale);
    return ra + index + (U64)u.imm;
}

/** Compute ZF/PF/SF (and AF=0) for a size-masked result. */
U16 flagsForLogic(U64 result, unsigned size);

}  // namespace ptl

#endif  // PTLSIM_UOP_UOPEXEC_H_
