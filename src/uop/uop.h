/**
 * @file
 * The internal uop (micro-operation) instruction set.
 *
 * Like the Pentium 4 / K8 / Core 2 processors it models, PTLsim never
 * executes x86 instructions directly: the decoder translates each x86
 * instruction into a short sequence of RISC-like uops that are tailored
 * to x86's nuances (Section 2.1 of the paper):
 *
 *  - every uop carries an operand size (1/2/4/8 bytes);
 *  - results carry the x86 condition flags they produce, split into the
 *    three independently renamed groups ZAPS (ZF/AF/PF/SF), CF and OF;
 *  - flag consumers (adc, jcc, cmov, setcc) name the uop register whose
 *    attached flags they read, and collcc merges split flag groups;
 *  - loads/stores handle unaligned accesses transparently;
 *  - SOM/EOM (start/end of macro-op) bits mark x86 instruction
 *    boundaries so the commit unit can retire x86 ops atomically;
 *  - complex/serializing operations (syscall, hypercalls, hlt, CR writes,
 *    rdtsc, ptlcall, x87 stack ops) become "assists": microcode handlers
 *    invoked when the owning uop reaches the commit point.
 */

#ifndef PTLSIM_UOP_UOP_H_
#define PTLSIM_UOP_UOP_H_

#include <string>

#include "lib/bitops.h"

namespace ptl {

// ---------------------------------------------------------------------
// Uop register space
// ---------------------------------------------------------------------

/** Architectural + temporary register indices used by uops. */
enum UopReg : U8 {
    // x86-64 integer registers, in encoding order.
    REG_rax, REG_rcx, REG_rdx, REG_rbx, REG_rsp, REG_rbp, REG_rsi, REG_rdi,
    REG_r8, REG_r9, REG_r10, REG_r11, REG_r12, REG_r13, REG_r14, REG_r15,
    // Scalar FP / XMM low halves.
    REG_xmm0 = 16, REG_xmm1, REG_xmm2, REG_xmm3, REG_xmm4, REG_xmm5,
    REG_xmm6, REG_xmm7, REG_xmm8, REG_xmm9, REG_xmm10, REG_xmm11,
    REG_xmm12, REG_xmm13, REG_xmm14, REG_xmm15,
    // Microcode temporaries (live only within one x86 instruction).
    REG_temp0 = 32, REG_temp1, REG_temp2, REG_temp3,
    REG_temp4, REG_temp5, REG_temp6, REG_temp7,
    // Always-zero source.
    REG_zero = 40,
    // Reserved slot (historical REG_rip; translator embeds RIPs as imms).
    REG_reserved41 = 41,
    // Condition-flag rename groups (value parts unused).
    REG_zaps = 42, REG_cf = 43, REG_of = 44,
    // Segment bases surviving in x86-64.
    REG_fsbase = 45, REG_gsbase = 46,
    REG_none = 47,   ///< "no register" marker
    NUM_UOP_REGS = 48,
};

/** True for registers holding floating point values. */
constexpr bool
isFpReg(int r)
{
    return r >= REG_xmm0 && r <= REG_xmm15;
}

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

/** Flag bits, at their x86 RFLAGS positions. */
enum FlagBits : U16 {
    FLAG_CF = 1 << 0,
    FLAG_PF = 1 << 2,
    FLAG_AF = 1 << 4,
    FLAG_ZF = 1 << 6,
    FLAG_SF = 1 << 7,
    FLAG_DF = 1 << 10,
    FLAG_OF = 1 << 11,
};

constexpr U16 FLAG_ZAPS_MASK = FLAG_ZF | FLAG_AF | FLAG_PF | FLAG_SF;

/** Which flag groups a uop produces (renamed independently). */
enum SetFlags : U8 {
    SETFLAG_ZAPS = 1 << 0,
    SETFLAG_CF = 1 << 1,
    SETFLAG_OF = 1 << 2,
    SETFLAG_ALL = SETFLAG_ZAPS | SETFLAG_CF | SETFLAG_OF,
};

/** x86 condition codes (jcc/setcc/cmovcc encodings 0..15). */
enum CondCode : U8 {
    COND_o, COND_no, COND_b, COND_nb, COND_e, COND_ne, COND_be, COND_nbe,
    COND_s, COND_ns, COND_p, COND_np, COND_l, COND_nl, COND_le, COND_nle,
    COND_always,   ///< internal: unconditional
};

/** Evaluate an x86 condition code against a flags word. */
bool evaluateCond(CondCode cond, U16 flags);

/** Flag groups (SetFlags mask) a condition code reads. */
U8 condFlagGroups(CondCode cond);

struct Uop;

/** Flag groups a uop consumes through its rf operand (0 if none). */
U8 uopFlagGroupsNeeded(const Uop &u);

// ---------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------

enum class UopOp : U8 {
    Nop,
    // Data movement / integer ALU. "rb" may be an immediate.
    Mov,        ///< rd = rb (zero-extended to size)
    MergeLo,    ///< rd = merge low `size` bytes of rb into ra (x86 partial writes)
    Sext,       ///< rd = sign_extend(rb[size])
    And, Or, Xor, Nand,
    Add, Sub, Adc, Sbb,
    Shl, Shr, Sar, Rol, Ror,
    Mull,       ///< low 64 bits of ra*rb
    Mulh,       ///< high 64 bits, unsigned
    Mulhs,      ///< high 64 bits, signed
    DivQ,       ///< unsigned quotient of (rb:ra)/rc; #DE on overflow/0
    DivR,       ///< unsigned remainder
    DivQs,      ///< signed quotient
    DivRs,      ///< signed remainder
    Bt, Bts, Btr, Btc,
    Bsf, Bsr,
    Bswap,
    Sel,        ///< rd = cond(rf) ? rb : ra   (cmov)
    Set,        ///< rd = cond(rf) ? 1 : 0     (setcc)
    CollCC,     ///< merge flag groups: ZAPS from ra, CF from rb, OF from rc
    MovCcr,     ///< rd.flags = low bits of rb value (popf-style)
    MovRcc,     ///< rd = flags word of rf (pushf-style)
    // Branches. imm = taken target RIP, imm2 = sequential RIP.
    Bru,        ///< unconditional direct branch
    BrCC,       ///< conditional direct branch on cond(rf)
    Jmp,        ///< indirect branch to ra (call/ret/jmp reg)
    Chk,        ///< microcode check: raise exception imm2 if cond(rf)
    // Memory. addr = ra + (rb << scale) + imm ; loads write rd.
    Ld,         ///< zero-extending load of `size` bytes
    Lds,        ///< sign-extending load
    St,         ///< store low `size` bytes of rc
    Fence,      ///< memory fence; imm: 1=load, 2=store, 3=full
    Prefetch,   ///< software prefetch hint
    // Scalar double-precision FP (operates on xmm registers).
    Addf, Subf, Mulf, Divf, Minf, Maxf, Sqrtf,
    Cmpf,       ///< sets ZAPS/CF like comisd
    Cvtif,      ///< int64 -> double
    Cvtfi,      ///< double -> int64 (truncating)
    // Microcoded system operations, executed at the commit point.
    Assist,
};

/** Assist (microcode handler) identifiers; stored in Uop::imm. */
enum class AssistId : U16 {
    Syscall,        ///< user -> kernel transition via MSR_LSTAR
    Sysret,         ///< kernel -> user return (sysretq path)
    Hypercall,      ///< guest kernel -> hypervisor (paravirtual gate)
    Iret,           ///< return from event/exception frame
    Hlt,            ///< block VCPU until next event
    Ptlcall,        ///< 0f 37 simulator breakout opcode
    Rdtsc,          ///< read virtualized timestamp counter
    Cpuid,
    Cli, Sti,       ///< virtual event-mask clear/set
    Pushf, Popf,    ///< full RFLAGS save/restore (includes IF semantics)
    InvalidOpcode,  ///< #UD delivery
    PageFaultAssist,///< #PF delivery (used by microcode checks)
    X87Fld, X87Fstp, X87Fadd, X87Fmul,  ///< minimal legacy x87 stack ops
};

/** Functional-unit class of a uop (issue port / latency selection). */
enum class UopClass : U8 {
    IntAlu, IntMul, IntDiv, Load, Store, Branch, Fpu, FpDiv, Fence, AssistOp,
};

/** Static properties of each opcode. */
struct UopInfo
{
    const char *name;
    UopClass cls;
    bool writes_rd;
};

const UopInfo &uopInfo(UopOp op);

// ---------------------------------------------------------------------
// The uop itself
// ---------------------------------------------------------------------

/**
 * One decoded micro-operation. 'rb_imm' selects immediate mode for rb.
 * For memory ops, the address is ra + (rb << scale) + imm and 'rc' is
 * the store data source. 'rf' names the register whose attached flags
 * are consumed (REG_none if no flag input).
 */
struct Uop
{
    UopOp op = UopOp::Nop;
    U8 size = 8;               ///< operand size in bytes (1/2/4/8)
    U8 rd = REG_none;          ///< destination register
    U8 ra = REG_zero;          ///< source A
    U8 rb = REG_zero;          ///< source B (or immediate if rb_imm)
    U8 rc = REG_zero;          ///< source C (store data, div high half)
    U8 rf = REG_none;          ///< flag-source register
    CondCode cond = COND_always;
    U8 setflags = 0;           ///< SetFlags mask this uop produces
    bool rb_imm = false;       ///< rb operand comes from imm
    bool locked = false;       ///< part of an interlocked (LOCK) x86 op
    bool internal = false;     ///< microcode-internal (not from x86 bytes)
    bool som = false;          ///< first uop of its x86 instruction
    bool eom = false;          ///< last uop of its x86 instruction
    bool unaligned = false;    ///< may legally cross line/page boundaries
    bool hint_call = false;    ///< branch is a call (push RAS)
    bool hint_ret = false;     ///< branch is a return (pop RAS)
    U8 scale = 0;              ///< index shift for memory addressing
    // Cached scheduling metadata, precomputed once per basic block at
    // decode time (BasicBlockCache) so rename/issue never re-derive it
    // per dynamic uop. The defaults must describe a default-constructed
    // Nop (IntAlu class, no flag inputs, no destination) because the
    // fetch stage builds fault pseudo-uops without going through the
    // decoder. These fields live in what was struct padding.
    U8 sched_cls = 0;          ///< cached uopInfo(op).cls
    U8 sched_fgroups = 0;      ///< cached uopFlagGroupsNeeded(*this)
    U8 sched_wrd = 0;          ///< cached writesRd()
    S64 imm = 0;               ///< immediate / displacement / branch target
    S64 imm2 = 0;              ///< sequential RIP for branches; aux imm
    U64 rip = 0;               ///< RIP of the owning x86 instruction
    U64 ripseq = 0;            ///< RIP of the next sequential instruction

    bool isLoad() const { return op == UopOp::Ld || op == UopOp::Lds; }
    bool isStore() const { return op == UopOp::St; }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isBranch() const
    {
        return op == UopOp::Bru || op == UopOp::BrCC || op == UopOp::Jmp;
    }
    bool isAssist() const { return op == UopOp::Assist; }
    AssistId assist() const { return (AssistId)(U16)imm; }
    UopClass cls() const { return uopInfo(op).cls; }
    bool writesRd() const { return uopInfo(op).writes_rd && rd != REG_none; }

    /** Fill the sched_* cache; call after all other fields are final. */
    void precomputeSched();

    // Cached equivalents of cls()/writesRd()/uopFlagGroupsNeeded() for
    // the scheduler hot paths; valid once precomputeSched() has run.
    UopClass schedCls() const { return (UopClass)sched_cls; }
    bool schedWritesRd() const { return sched_wrd != 0; }
    U8 schedFlagGroups() const { return sched_fgroups; }

    /** Human-readable disassembly of this uop. */
    std::string toString() const;
};

const char *uopRegName(int reg);
const char *condName(CondCode cond);

}  // namespace ptl

#endif  // PTLSIM_UOP_UOP_H_
