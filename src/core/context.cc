#include "core/context.h"

#include <bit>
#include <cstring>

#include "lib/logging.h"
#include "mem/transcache.h"

#ifndef PTL_VERIFY
#define PTL_VERIFY 1
#endif

namespace ptl {

namespace {

#if PTL_VERIFY
/** Shadow mode: re-walk a cached hit and panic on any divergence. */
inline void
shadowCheck(AddressSpace &aspace, const Context &ctx, GuestVirt va,
            MemAccess kind, const GuestAccess &out, bool entry_dirty)
{
    TranslationCache &tc = aspace.transCache();
    if (!tc.shadowEnabled())
        return;
    tc.countShadowCheck();
    verifyCachedTranslation(aspace, ctx.cr3, va, kind, !ctx.kernel_mode,
                            out.fault, out.paddr, entry_dirty);
}
#else
inline void
shadowCheck(AddressSpace &, const Context &, GuestVirt, MemAccess,
            const GuestAccess &, bool)
{
}
#endif

}  // namespace

GuestAccess
guestTranslate(AddressSpace &aspace, const Context &ctx, GuestVirt va,
               MemAccess kind)
{
    GuestAccess out;
    TranslationCache &tc = aspace.transCache();
    const Vpn vpn = va.vpn();
    const bool user_mode = !ctx.kernel_mode;
    if (TranslationCache::Entry *e = tc.probe(ctx.cr3, vpn)) {
        // A write through an entry whose leaf D bit is not known set
        // falls through to the walker, which sets D exactly as the
        // hardware/microcode walk would (first-store re-walk).
        GuestFault f = checkPageAccess(true, e->writable, e->user,
                                       e->noexec, kind, user_mode);
        if (f != GuestFault::None) {
            tc.countHit();
            out.fault = f;
            shadowCheck(aspace, ctx, va, kind, out, e->dirty);
            return out;
        }
        if (kind != MemAccess::Write || e->dirty) {
            tc.countHit();
            out.paddr = e->mfn.pageBase().withOffset(va.pageOffset());
            shadowCheck(aspace, ctx, va, kind, out, e->dirty);
            return out;
        }
    }
    tc.countMiss();
    PageWalk walk = aspace.walk(ctx.cr3, va);
    out.fault = checkWalkAccess(walk, kind, user_mode);
    if (out.fault != GuestFault::None)
        return out;
    aspace.setAccessedDirty(walk, kind == MemAccess::Write);
    aspace.registerWalkFrames(walk);
    tc.insert(ctx.cr3, vpn, walk, kind == MemAccess::Write);
    out.paddr = walk.paddr(va);
    return out;
}

GuestAccess
guestRead(AddressSpace &aspace, const Context &ctx, GuestVirt va,
          unsigned bytes, U64 &value_out)
{
    value_out = 0;
    U8 buf[8];
    unsigned done = 0;
    GuestAccess first;
    while (done < bytes) {
        GuestAccess a =
            guestTranslate(aspace, ctx, va + done, MemAccess::Read);
        if (!a.ok()) {
            a.paddr = GuestPhys(0);
            return a;
        }
        if (done == 0)
            first = a;
        unsigned chunk = (unsigned)std::min<U64>(
            bytes - done, PAGE_SIZE - (va + done).pageOffset());
        aspace.physMem().readBytes(a.paddr, buf + done, chunk);
        done += chunk;
    }
    for (unsigned i = 0; i < bytes; i++)
        value_out |= (U64)buf[i] << (i * 8);
    return first;
}

GuestAccess
guestWrite(AddressSpace &aspace, const Context &ctx, GuestVirt va,
           unsigned bytes, U64 value)
{
    // Pre-check both pages so a cross-page store is all-or-nothing
    // (x86 stores are atomic with respect to faults); the copy below
    // reuses these translations instead of re-walking per chunk.
    GuestAccess first =
        guestTranslate(aspace, ctx, va, MemAccess::Write);
    if (!first.ok())
        return first;
    U8 buf[8];
    for (unsigned i = 0; i < bytes; i++)
        buf[i] = (U8)(value >> (i * 8));
    unsigned first_chunk = (unsigned)std::min<U64>(
        bytes, PAGE_SIZE - va.pageOffset());
    if (first_chunk < bytes) {
        GuestAccess second =
            guestTranslate(aspace, ctx, va + bytes - 1, MemAccess::Write);
        if (!second.ok())
            return second;
        aspace.physMem().writeBytes(first.paddr, buf, first_chunk);
        aspace.physMem().writeBytes(second.paddr.pageBase(),
                                    buf + first_chunk,
                                    bytes - first_chunk);
        aspace.notifyGuestStore(first.paddr.pfn());
        aspace.notifyGuestStore(second.paddr.pfn());
    } else {
        aspace.physMem().writeBytes(first.paddr, buf, bytes);
        aspace.notifyGuestStore(first.paddr.pfn());
    }
    return first;
}

GuestCopy
guestCopyIn(AddressSpace &aspace, const Context &ctx, void *dst,
            GuestVirt va, size_t len, MemAccess kind)
{
    GuestCopy out;
    U8 *p = (U8 *)dst;
    while (out.copied < len) {
        GuestVirt cur = va + out.copied;
        size_t chunk = (size_t)std::min<U64>(
            len - out.copied, PAGE_SIZE - cur.pageOffset());
        GuestAccess a = guestTranslate(aspace, ctx, cur, kind);
        if (!a.ok()) {
            out.fault = a.fault;
            out.fault_va = cur;
            return out;
        }
        if (out.copied == 0)
            out.first_paddr = a.paddr;
        aspace.physMem().readBytes(a.paddr, p + out.copied, chunk);
        out.copied += chunk;
    }
    return out;
}

GuestCopy
guestCopyOut(AddressSpace &aspace, const Context &ctx, GuestVirt va,
             const void *src, size_t len)
{
    GuestCopy out;
    const U8 *p = (const U8 *)src;
    while (out.copied < len) {
        GuestVirt cur = va + out.copied;
        size_t chunk = (size_t)std::min<U64>(
            len - out.copied, PAGE_SIZE - cur.pageOffset());
        GuestAccess a = guestTranslate(aspace, ctx, cur, MemAccess::Write);
        if (!a.ok()) {
            out.fault = a.fault;
            out.fault_va = cur;
            return out;
        }
        if (out.copied == 0)
            out.first_paddr = a.paddr;
        aspace.physMem().writeBytes(a.paddr, p + out.copied, chunk);
        aspace.notifyGuestStore(a.paddr.pfn());
        out.copied += chunk;
    }
    return out;
}

GuestCopy
guestFill(AddressSpace &aspace, const Context &ctx, GuestVirt va,
          U8 value, size_t len)
{
    GuestCopy out;
    U8 page[PAGE_SIZE];
    std::memset(page, value, sizeof(page));
    while (out.copied < len) {
        GuestVirt cur = va + out.copied;
        size_t chunk = (size_t)std::min<U64>(
            len - out.copied, PAGE_SIZE - cur.pageOffset());
        GuestAccess a = guestTranslate(aspace, ctx, cur, MemAccess::Write);
        if (!a.ok()) {
            out.fault = a.fault;
            out.fault_va = cur;
            return out;
        }
        if (out.copied == 0)
            out.first_paddr = a.paddr;
        aspace.physMem().writeBytes(a.paddr, page, chunk);
        aspace.notifyGuestStore(a.paddr.pfn());
        out.copied += chunk;
    }
    return out;
}

namespace {

/** Pack the saved-state word for event/fault/iret frames. */
U64
packFlagsWord(const Context &ctx)
{
    return (U64)ctx.flags | ((U64)ctx.kernel_mode << 16)
           | ((U64)ctx.event_mask << 17);
}

/** Push an interrupt-style frame; returns new rsp or fault. */
GuestAccess
pushFrame(Context &ctx, AddressSpace &aspace, U64 fault_word, U64 &new_rsp)
{
    // Frame layout (descending):
    //   [sp+24] saved rsp
    //   [sp+16] saved flags | kernel_mode<<16 | event_mask<<17
    //   [sp+8]  saved (interrupted) rip
    //   [sp+0]  fault word: (kind << 48) | fault address
    U64 target_sp = ctx.kernel_mode ? ctx.regs[REG_rsp] : ctx.kernel_sp;
    U64 sp = target_sp - 32;
    // The kernel stack is always mapped kernel-writable; translate in
    // kernel mode (delivery itself runs in microcode at CPL0).
    Context kctx = ctx;
    kctx.kernel_mode = true;
    GuestAccess a;
    a = guestWrite(aspace, kctx, GuestVirt(sp + 24), 8,
                   ctx.regs[REG_rsp]);
    if (!a.ok()) return a;
    a = guestWrite(aspace, kctx, GuestVirt(sp + 16), 8,
                   packFlagsWord(ctx));
    if (!a.ok()) return a;
    a = guestWrite(aspace, kctx, GuestVirt(sp + 8), 8, ctx.rip.raw());
    if (!a.ok()) return a;
    a = guestWrite(aspace, kctx, GuestVirt(sp + 0), 8, fault_word);
    if (!a.ok()) return a;
    new_rsp = sp;
    return a;
}

}  // namespace

AssistResult
deliverEvent(Context &ctx, AddressSpace &aspace)
{
    AssistResult out;
    ptl_assert(!ctx.event_mask);
    ptl_assert(ctx.event_callback != 0);
    U64 new_rsp = 0;
    GuestAccess a = pushFrame(ctx, aspace, 0, new_rsp);
    if (!a.ok()) {
        out.fault = a.fault;
        return out;
    }
    ctx.regs[REG_rsp] = new_rsp;
    ctx.kernel_mode = true;
    ctx.event_mask = true;
    ctx.event_pending = false;
    ctx.rip = GuestVirt(ctx.event_callback);
    out.next_rip = ctx.rip;
    return out;
}

AssistResult
deliverFault(Context &ctx, AddressSpace &aspace, GuestFault fault,
             GuestVirt fault_rip, GuestVirt fault_addr)
{
    AssistResult out;
    if (ctx.event_callback == 0) {
        // No registered handler: the domain is dead (a real machine
        // would triple-fault and reset). Halt the VCPU permanently;
        // the simulator itself stays healthy.
        warn("guest fault %s at rip %llx (addr %llx) with no handler: "
             "halting VCPU %d",
             guestFaultName(fault), (unsigned long long)fault_rip.raw(),
             (unsigned long long)fault_addr.raw(), ctx.vcpu_id);
        ctx.running = false;
        ctx.event_pending = false;
        out.fault = fault;
        out.next_rip = fault_rip;
        return out;
    }
    GuestVirt saved_rip = ctx.rip;
    ctx.rip = fault_rip;
    U64 word = ((U64)fault << 48) | (fault_addr.raw() & lowMask(48));
    U64 new_rsp = 0;
    GuestAccess a = pushFrame(ctx, aspace, word, new_rsp);
    if (!a.ok()) {
        // Double fault: the kernel stack itself is bad; domain death.
        warn("double fault delivering %s at rip %llx: halting VCPU %d",
             guestFaultName(fault), (unsigned long long)fault_rip.raw(),
             ctx.vcpu_id);
        ctx.rip = saved_rip;
        ctx.running = false;
        ctx.event_pending = false;
        out.fault = fault;
        out.next_rip = fault_rip;
        return out;
    }
    (void)saved_rip;
    ctx.regs[REG_rsp] = new_rsp;
    ctx.kernel_mode = true;
    ctx.event_mask = true;
    ctx.rip = GuestVirt(ctx.event_callback);
    out.next_rip = ctx.rip;
    return out;
}

AssistResult
executeAssist(AssistId id, Context &ctx, AddressSpace &aspace,
              SystemInterface &sys, GuestVirt ripseq)
{
    AssistResult out;
    out.next_rip = ripseq;

    switch (id) {
      case AssistId::Syscall: {
        if (ctx.kernel_mode || ctx.lstar == 0) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        // rcx <- return rip, r11 <- rflags (real x86-64 semantics);
        // microcode then switches to the kernel stack registered via
        // the stack_switch hypercall and pushes the user rsp.
        ctx.regs[REG_rcx] = ripseq.raw();
        ctx.regs[REG_r11] = ctx.flags;
        U64 user_rsp = ctx.regs[REG_rsp];
        ctx.saved_user_rsp = user_rsp;
        Context kctx = ctx;
        kctx.kernel_mode = true;
        GuestAccess a =
            guestWrite(aspace, kctx, GuestVirt(ctx.kernel_sp - 8), 8,
                       user_rsp);
        if (!a.ok()) {
            out.fault = a.fault;
            return out;
        }
        ctx.regs[REG_rsp] = ctx.kernel_sp - 8;
        ctx.kernel_mode = true;
        ctx.event_mask = true;
        out.next_rip = GuestVirt(ctx.lstar);
        return out;
      }
      case AssistId::Sysret: {
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        // rsp must point at the saved user-rsp slot; rip <- rcx,
        // rflags <- r11, drop to user mode with events unmasked.
        U64 user_rsp = 0;
        GuestAccess a =
            guestRead(aspace, ctx, GuestVirt(ctx.regs[REG_rsp]), 8,
                      user_rsp);
        if (!a.ok()) {
            out.fault = a.fault;
            return out;
        }
        ctx.regs[REG_rsp] = user_rsp;
        ctx.flags = (U16)(ctx.regs[REG_r11]
                          & (FLAG_ZAPS_MASK | FLAG_CF | FLAG_OF | FLAG_DF));
        ctx.kernel_mode = false;
        ctx.event_mask = false;
        out.next_rip = GuestVirt(ctx.regs[REG_rcx]);
        return out;
      }
      case AssistId::Hypercall: {
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        ctx.regs[REG_rax] =
            sys.hypercall(ctx, ctx.regs[REG_rax], ctx.regs[REG_rdi],
                          ctx.regs[REG_rsi], ctx.regs[REG_rdx]);
        return out;
      }
      case AssistId::Iret: {
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        U64 rip = 0, word = 0, rsp = 0;
        GuestVirt sp = GuestVirt(ctx.regs[REG_rsp]);
        GuestAccess a = guestRead(aspace, ctx, sp, 8, rip);
        if (a.ok()) a = guestRead(aspace, ctx, sp + 8, 8, word);
        if (a.ok()) a = guestRead(aspace, ctx, sp + 16, 8, rsp);
        if (!a.ok()) {
            out.fault = a.fault;
            return out;
        }
        ctx.regs[REG_rsp] = rsp;
        ctx.flags = (U16)(word
                          & (FLAG_ZAPS_MASK | FLAG_CF | FLAG_OF | FLAG_DF));
        ctx.kernel_mode = bit(word, 16);
        ctx.event_mask = bit(word, 17);
        out.next_rip = GuestVirt(rip);
        return out;
      }
      case AssistId::Hlt: {
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        sys.vcpuBlock(ctx);
        out.blocked = true;
        return out;
      }
      case AssistId::Ptlcall: {
        ctx.regs[REG_rax] =
            sys.ptlcall(ctx, ctx.regs[REG_rax], ctx.regs[REG_rdi],
                        ctx.regs[REG_rsi]);
        return out;
      }
      case AssistId::Rdtsc: {
        U64 tsc = sys.readTsc(ctx);
        ctx.regs[REG_rax] = (U32)tsc;
        ctx.regs[REG_rdx] = tsc >> 32;
        return out;
      }
      case AssistId::Cpuid: {
        // Synthetic, deterministic CPUID: vendor "PTLsimVirtual".
        switch ((U32)ctx.regs[REG_rax]) {
          case 0:
            ctx.regs[REG_rax] = 1;
            ctx.regs[REG_rbx] = 0x4c545030;  // "0PTL"-ish tags
            ctx.regs[REG_rcx] = 0x4d495334;
            ctx.regs[REG_rdx] = 0x78383673;
            break;
          default:
            ctx.regs[REG_rax] = 0x00100f00;  // K8-like family/model
            ctx.regs[REG_rbx] = 0;
            ctx.regs[REG_rcx] = 0;
            ctx.regs[REG_rdx] = 1 << 25;     // sse-ish feature bit
            break;
        }
        return out;
      }
      case AssistId::Cli:
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        ctx.event_mask = true;
        return out;
      case AssistId::Sti:
        if (!ctx.kernel_mode) {
            out.fault = GuestFault::GeneralProtection;
            return out;
        }
        ctx.event_mask = false;
        return out;
      case AssistId::X87Fld: {
        // ra carried the effective address in temp0 by convention.
        U64 value = 0;
        GuestAccess a =
            guestRead(aspace, ctx, GuestVirt(ctx.regs[REG_temp0]), 8,
                      value);
        if (!a.ok()) {
            out.fault = a.fault;
            return out;
        }
        if (ctx.x87_top >= 8) {
            out.fault = GuestFault::InvalidOpcode;  // stack overflow
            return out;
        }
        ctx.x87_stack[ctx.x87_top++] = value;
        return out;
      }
      case AssistId::X87Fstp: {
        if (ctx.x87_top == 0) {
            out.fault = GuestFault::InvalidOpcode;
            return out;
        }
        U64 value = ctx.x87_stack[--ctx.x87_top];
        GuestAccess a =
            guestWrite(aspace, ctx, GuestVirt(ctx.regs[REG_temp0]), 8,
                       value);
        if (!a.ok()) {
            ctx.x87_top++;  // restore on fault
            out.fault = a.fault;
            return out;
        }
        return out;
      }
      case AssistId::X87Fadd: case AssistId::X87Fmul: {
        if (ctx.x87_top < 2) {
            out.fault = GuestFault::InvalidOpcode;
            return out;
        }
        double b = std::bit_cast<double>(ctx.x87_stack[ctx.x87_top - 1]);
        double a = std::bit_cast<double>(ctx.x87_stack[ctx.x87_top - 2]);
        double r = (id == AssistId::X87Fadd) ? (a + b) : (a * b);
        ctx.x87_top--;
        ctx.x87_stack[ctx.x87_top - 1] = std::bit_cast<U64>(r);
        return out;
      }
      case AssistId::InvalidOpcode:
        out.fault = GuestFault::InvalidOpcode;
        return out;
      case AssistId::PageFaultAssist:
        out.fault = GuestFault::PageFaultRead;
        return out;
      case AssistId::Pushf: case AssistId::Popf:
        panic("pushf/popf are translated inline, not via assists");
    }
    panic("unhandled assist %d", (int)id);
}

}  // namespace ptl
