/**
 * @file
 * The per-VCPU Context structure.
 *
 * Section 4.4: "The Context structure in PTLsim is central to
 * multi-processor support. Each VCPU has one Context structure
 * encapsulating all information about that VCPU, including its
 * architectural registers, x86 machine state registers (MSRs), page
 * tables and internal PTLsim state." Cores update the architectural
 * state here as they commit; microcode (assists) and every other
 * subsystem read and write it.
 */

#ifndef PTLSIM_CORE_CONTEXT_H_
#define PTLSIM_CORE_CONTEXT_H_

#include "decode/bbcache.h"
#include "mem/pagetable.h"
#include "uop/uop.h"
#include "uop/uopexec.h"

namespace ptl {

/** Architectural state of one virtual CPU. */
struct Context
{
    int vcpu_id = 0;

    // ---- architectural registers ----
    /** Values for the uop register space: GPRs, XMM low halves,
     *  fs/gs bases. Temp slots are scratch (microcode-local). */
    U64 regs[NUM_UOP_REGS] = {};
    GuestVirt rip;
    U16 flags = 0;             ///< ZAPS | CF | OF | DF image

    // ---- system state ----
    Pfn cr3;                   ///< page table root MFN
    bool kernel_mode = false;
    bool running = true;       ///< false while blocked in hlt

    // MSR-equivalents and paravirtual registration state.
    U64 lstar = 0;             ///< syscall entry point
    U64 kernel_sp = 0;         ///< kernel stack top (stack_switch hypercall)
    U64 event_callback = 0;    ///< registered event-channel upcall entry
    U64 saved_user_rsp = 0;    ///< scratch used by syscall microcode

    // Virtual interrupt (event channel) delivery state.
    bool event_mask = true;    ///< true = events blocked (virtual IF=0)
    bool event_pending = false;

    // Minimal legacy x87 state (microcoded; reduced performance).
    U64 x87_stack[8] = {};
    int x87_top = 0;           ///< number of valid stack slots

    // Time virtualization: offset subtracted from the virtual TSC so
    // native<->simulation transitions are seamless (Section 4.1).
    U64 tsc_offset = 0;

    U64
    reg(int r) const
    {
        return (r == REG_zero) ? 0 : regs[r];
    }

    void
    setReg(int r, U64 value)
    {
        if (r != REG_zero && r != REG_none)
            regs[r] = value;
    }

    /** Apply a uop's produced flag groups to the architectural flags. */
    void
    applyFlags(U16 produced, U8 setmask)
    {
        U16 keep = 0;
        if (!(setmask & SETFLAG_ZAPS))
            keep |= FLAG_ZAPS_MASK;
        if (!(setmask & SETFLAG_CF))
            keep |= FLAG_CF;
        if (!(setmask & SETFLAG_OF))
            keep |= FLAG_OF;
        keep |= FLAG_DF;  // DF only changes via explicit transfers
        flags = (U16)((flags & keep) | (produced & ~keep));
    }
};

/** Functional guest-virtual memory access (page tables + PhysMem). */
struct GuestAccess
{
    GuestFault fault = GuestFault::None;
    GuestPhys paddr;
    bool ok() const { return fault == GuestFault::None; }
};

/**
 * Translate a guest VA under ctx's CR3/privilege; sets A/D bits.
 * Served from the address space's simulator-internal translation
 * cache (src/mem/transcache.h) when possible; a miss — including the
 * first write through an entry whose Dirty bit is not known set —
 * runs the full 4-level walk and refills the cache.
 */
GuestAccess guestTranslate(AddressSpace &aspace, const Context &ctx,
                           GuestVirt va, MemAccess kind);

/** Read guest-virtual memory functionally (may cross pages). */
GuestAccess guestRead(AddressSpace &aspace, const Context &ctx,
                      GuestVirt va, unsigned bytes, U64 &value_out);

/** Write guest-virtual memory functionally (may cross pages). */
GuestAccess guestWrite(AddressSpace &aspace, const Context &ctx,
                       GuestVirt va, unsigned bytes, U64 value);

/**
 * Result of a bulk guest-memory transfer. A fault stops the transfer
 * at the first byte of the faulting page: `copied` bytes were fully
 * transferred, matching what a byte-at-a-time loop would have done
 * (per-byte faults always occur at page granularity).
 */
struct GuestCopy
{
    GuestFault fault = GuestFault::None;
    GuestVirt fault_va;     ///< VA of the first untransferred byte
    GuestPhys first_paddr;  ///< machine-physical address of byte 0
    size_t copied = 0;
    bool ok() const { return fault == GuestFault::None; }
};

/**
 * Bulk guest-virtual memory helpers: translate once per page and move
 * page-sized chunks, instead of one walk per byte. `kind` lets the
 * decoder fetch instruction bytes with Execute permission checks.
 */
GuestCopy guestCopyIn(AddressSpace &aspace, const Context &ctx, void *dst,
                      GuestVirt va, size_t len,
                      MemAccess kind = MemAccess::Read);

/** Copy host memory into the guest (DMA, domain building). */
GuestCopy guestCopyOut(AddressSpace &aspace, const Context &ctx,
                       GuestVirt va, const void *src, size_t len);

/** Fill a guest-virtual range with one byte value. */
GuestCopy guestFill(AddressSpace &aspace, const Context &ctx, GuestVirt va,
                    U8 value, size_t len);

/**
 * Adapter giving the decode-layer basic block cache (which cannot see
 * Context or AddressSpace — layering) a window onto guest code: the
 * cache pulls bytes and frame numbers through the CodeSource
 * interface it owns, and this class implements it with the vcpu's
 * translation context. Stack-allocate around each get() call; holds
 * non-owning pointers only.
 */
class ContextCodeSource final : public CodeSource
{
  public:
    ContextCodeSource(AddressSpace &as, const Context &c)
        : aspace(&as), ctx(&c)
    {
    }

    GuestVirt rip() const override { return ctx->rip; }
    bool kernelMode() const override { return ctx->kernel_mode; }

    GuestFault
    translateExec(GuestVirt va, Pfn *mfn) const override
    {
        GuestAccess a = guestTranslate(*aspace, *ctx, va,
                                       MemAccess::Execute);
        if (!a.ok())
            return a.fault;
        *mfn = a.paddr.pfn();
        return GuestFault::None;
    }

    size_t
    fetchCode(GuestVirt va, U8 *dst, size_t len, Pfn *first_mfn,
              GuestFault *fault) const override
    {
        GuestCopy g = guestCopyIn(*aspace, *ctx, dst, va, len,
                                  MemAccess::Execute);
        *first_mfn = g.first_paddr.pfn();
        *fault = g.fault;
        return g.copied;
    }

  private:
    AddressSpace *aspace;
    const Context *ctx;
};

/**
 * Hooks microcode (assists) uses to reach the rest of the machine:
 * implemented by the hypervisor model in src/sys.
 */
class SystemInterface
{
  public:
    virtual ~SystemInterface() = default;

    /** Paravirtual hypercall (0f 34 gate): nr in rax, args rdi/rsi/rdx. */
    virtual U64 hypercall(Context &ctx, U64 nr, U64 a1, U64 a2, U64 a3) = 0;

    /** Current virtualized TSC value for rdtsc. */
    virtual U64 readTsc(const Context &ctx) = 0;

    /** VCPU executed hlt: block until the next event. */
    virtual void vcpuBlock(Context &ctx) = 0;

    /** ptlcall (0f 37) breakout: rax selects the operation. */
    virtual U64 ptlcall(Context &ctx, U64 op, U64 arg1, U64 arg2) = 0;

    /** A store hit a code page: invalidate translated code (SMC). */
    virtual void notifyCodeWrite(Pfn mfn) = 0;

    /** True if `mfn` currently backs decoded basic blocks. */
    virtual bool isCodeMfn(Pfn mfn) const = 0;
};

/** Result of running an assist (microcode handler). */
struct AssistResult
{
    GuestVirt next_rip;
    GuestFault fault = GuestFault::None;
    bool blocked = false;     ///< VCPU went to sleep (hlt)
    bool exit_requested = false;  ///< ptlcall asked to stop simulation
};

/**
 * Execute one microcode assist. `ripseq` is the RIP of the next
 * sequential instruction (where execution resumes unless the assist
 * redirects). The assist may read/modify ctx, guest memory, and the
 * system interface.
 */
AssistResult executeAssist(AssistId id, Context &ctx, AddressSpace &aspace,
                           SystemInterface &sys, GuestVirt ripseq);

/**
 * Deliver a pending event (virtual interrupt) to the guest: builds the
 * interrupt frame on the kernel stack and redirects to the registered
 * event callback, exactly as PTLsim's microcode does for x86 exception
 * delivery (Section 2.1). Returns the new RIP, or a fault if the frame
 * cannot be pushed.
 */
AssistResult deliverEvent(Context &ctx, AddressSpace &aspace);

/** Deliver a synchronous guest fault (#PF/#DE/#UD/#GP) to the kernel's
 *  registered handler via the same frame format; the fault kind and
 *  faulting address are passed in the frame. */
AssistResult deliverFault(Context &ctx, AddressSpace &aspace,
                          GuestFault fault, GuestVirt fault_rip,
                          GuestVirt fault_addr);

}  // namespace ptl

#endif  // PTLSIM_CORE_CONTEXT_H_
