#include "core/interlock.h"

namespace ptl {

InterlockController::InterlockController(StatsTree &stats)
    : st_acquires(stats.counter("interlock/acquires")),
      st_contention(stats.counter("interlock/contention"))
{
}

bool
InterlockController::acquire(GuestPhys paddr, int owner)
{
    auto [it, inserted] = locks.try_emplace(keyOf(paddr), owner);
    if (!inserted && it->second != owner) {
        st_contention++;
        return false;
    }
    if (inserted)
        st_acquires++;
    return true;
}

bool
InterlockController::heldByOther(GuestPhys paddr, int owner) const
{
    auto it = locks.find(keyOf(paddr));
    return it != locks.end() && it->second != owner;
}

void
InterlockController::release(GuestPhys paddr, int owner)
{
    auto it = locks.find(keyOf(paddr));
    if (it != locks.end() && it->second == owner)
        locks.erase(it);
}

void
InterlockController::releaseAll(int owner)
{
    // Erase-only sweep: which entries survive depends solely on the
    // predicate, never on visit order, so unordered iteration cannot
    // leak into architectural or stats state.
    for (auto it = locks.begin();  // simlint: nondet-taint-ok
         it != locks.end();) {
        if (it->second == owner)
            it = locks.erase(it);
        else
            ++it;
    }
}

}  // namespace ptl
