/**
 * @file
 * The memory interlock controller.
 *
 * Section 4.4: interlocked x86 instructions (LOCK prefix, xchg, xadd,
 * cmpxchg) acquire a lock on a physical memory location by sending the
 * address to an interlock controller shared by all SMT threads within
 * a core (and by all cores). Loads/stores from other threads that hit
 * a locked address are replayed until the owning x86 instruction
 * commits and releases the lock.
 */

#ifndef PTLSIM_CORE_INTERLOCK_H_
#define PTLSIM_CORE_INTERLOCK_H_

#include <algorithm>
#include <unordered_map>
#include <vector>
#include <utility>

#include "lib/bitops.h"
#include "lib/guestaddr.h"
#include "stats/stats.h"

namespace ptl {

class InterlockController
{
  public:
    explicit InterlockController(StatsTree &stats);

    /** Try to acquire the lock covering `paddr` for `owner` (a unique
     *  thread/core id). Returns false if another owner holds it. */
    bool acquire(GuestPhys paddr, int owner);

    /** True if a different owner holds the lock covering `paddr`. */
    bool heldByOther(GuestPhys paddr, int owner) const;

    /** True if anyone (including `owner`) holds the lock. */
    bool held(GuestPhys paddr) const { return locks.count(keyOf(paddr)) != 0; }

    /** Release one lock held by `owner`. */
    void release(GuestPhys paddr, int owner);

    /** Release every lock held by `owner` (commit or flush). */
    void releaseAll(int owner);

    size_t heldCount() const { return locks.size(); }

    /** Snapshot of held locks (diagnostics): (key << 3, owner),
     *  sorted by address so the report is run-to-run stable. */
    std::vector<std::pair<U64, int>>
    heldLocks() const
    {
        std::vector<std::pair<U64, int>> out;
        for (const auto &[key, owner] : locks)  // simlint: nondet-taint-ok
            out.push_back({key << 3, owner});
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    /** Locks cover naturally aligned 8-byte regions. */
    static U64 keyOf(GuestPhys paddr) { return paddr.raw() >> 3; }

    std::unordered_map<U64, int> locks;  ///< key -> owner
    Counter &st_acquires;
    Counter &st_contention;
};

}  // namespace ptl

#endif  // PTLSIM_CORE_INTERLOCK_H_
