#include "core/coreapi.h"

#include <map>

#include "lib/logging.h"
#include "lib/threadsafety.h"

namespace ptl {

// Defined in seqcore.cc / ooo/ooocore.cc; referencing them here forces
// the linker to pull the model objects out of the static library.
void registerSeqCoreModel();
void registerOooCoreModels();

namespace {

// The model registry is genuinely process-wide shared state: plug-ins
// register from static initializers in arbitrary translation units,
// and once the machine shards, Domain threads instantiate cores
// concurrently. registry_mu guards the map; the one-shot builtin
// hookup goes through std::call_once so it cannot race either.
Mutex registry_mu;  // simlint: shared-guarded(self)

std::map<std::string, CoreFactory> &
registryLocked() PTL_REQUIRES(registry_mu)
{
    static std::map<std::string, CoreFactory>
        r PTL_GUARDED_BY(registry_mu);  // simlint: shared-guarded(registry_mu)
    return r;
}

void
ensureBuiltins()
{
    static std::once_flag once;  // simlint: shared-guarded(std::call_once)
    // The callback registers via registerCoreModel, which takes
    // registry_mu itself — so it must run OUTSIDE any registry_mu
    // hold, which is why lookups call this before locking.
    std::call_once(once, [] {
        registerSeqCoreModel();
        registerOooCoreModels();
    });
}

}  // namespace

void
registerCoreModel(const std::string &name, CoreFactory factory)
{
    LockGuard g(registry_mu);
    registryLocked()[name] = std::move(factory);
}

std::unique_ptr<CoreModel>
createCoreModel(const std::string &name, const CoreBuildParams &params)
{
    ensureBuiltins();
    CoreFactory factory;
    {
        LockGuard g(registry_mu);
        auto it = registryLocked().find(name);
        if (it == registryLocked().end())
            fatal("unknown core model '%s'", name.c_str());
        factory = it->second;  // copy: run the factory unlocked
    }
    return factory(params);
}

std::vector<std::string>
coreModelNames()
{
    ensureBuiltins();
    LockGuard g(registry_mu);
    std::vector<std::string> names;
    for (const auto &[name, factory] : registryLocked())
        names.push_back(name);
    return names;
}

}  // namespace ptl
