#include "core/coreapi.h"

#include <map>

#include "lib/logging.h"

namespace ptl {

// Defined in seqcore.cc / ooo/ooocore.cc; referencing them here forces
// the linker to pull the model objects out of the static library.
void registerSeqCoreModel();
void registerOooCoreModels();

namespace {

std::map<std::string, CoreFactory> &
registry()
{
    static std::map<std::string, CoreFactory> r;
    static bool builtins_registered = false;
    if (!builtins_registered) {
        builtins_registered = true;
        registerSeqCoreModel();
        registerOooCoreModels();
    }
    return r;
}

}  // namespace

void
registerCoreModel(const std::string &name, CoreFactory factory)
{
    registry()[name] = std::move(factory);
}

std::unique_ptr<CoreModel>
createCoreModel(const std::string &name, const CoreBuildParams &params)
{
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown core model '%s'", name.c_str());
    return it->second(params);
}

std::vector<std::string>
coreModelNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

}  // namespace ptl
