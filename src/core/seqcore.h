/**
 * @file
 * The uop-level functional engine and the in-order sequential core.
 *
 * PTLsim is an integrated simulator: one definition of uop semantics
 * feeds every execution engine. FunctionalEngine executes whole x86
 * instructions (uop sequence per instruction, atomically committed,
 * with precise fault delivery and event injection between
 * instructions). It backs:
 *
 *  - the sequential in-order core model ("seq") used for rapid testing
 *    and microcode debugging (Section 2.2);
 *  - native-mode execution (Section 2.3) — full speed, no timing
 *    structures — in src/native;
 *  - the reference half of co-simulation / commit checking;
 *  - the "k8-native" reference-machine trial of Table 1, where it runs
 *    with profiling attached to real-K8-fidelity TLB/cache/predictor
 *    structure models.
 */

#ifndef PTLSIM_CORE_SEQCORE_H_
#define PTLSIM_CORE_SEQCORE_H_

#include <memory>

#include "branch/predictor.h"
#include "core/coreapi.h"
#include "mem/hierarchy.h"

namespace ptl {

class FunctionalEngine
{
  public:
    FunctionalEngine(Context &ctx, AddressSpace &aspace,
                     BasicBlockCache &bbcache, SystemInterface &sys,
                     StatsTree &stats, const std::string &prefix);

    /**
     * Attach structure models: every load/store then exercises the
     * hierarchy's TLBs/caches and every branch trains the predictor,
     * without changing functional behaviour.
     */
    void attachProfiling(MemoryHierarchy *hierarchy,
                         BranchPredictor *predictor);

    struct StepResult
    {
        int insns = 0;              ///< x86 instructions completed
        int uops = 0;
        CycleDelta mem_stall;       ///< profiling-estimated stall cycles
        bool idle = false;          ///< VCPU is blocked (hlt)
        bool blocked_now = false;   ///< this step executed hlt
        bool event_delivered = false;
        GuestFault fault_delivered = GuestFault::None;
    };

    /**
     * Deliver a pending event if possible, otherwise execute exactly
     * one x86 instruction (committing atomically). `now` is used only
     * for profiling-mode cache timing.
     */
    StepResult stepInsn(SimCycle now = SimCycle(0));

    /** Forget the cached block position (after external RIP changes). */
    void reposition();

    /**
     * The next uop stepInsn() would execute, or nullptr if the decode
     * position cannot be (re)acquired without faulting. Re-acquires
     * the cached block exactly as stepInsn() would; used by the OoO
     * core's lockstep checker to recognize pseudo-op re-executions.
     */
    const Uop *peekUop();

    Context &context() { return *ctx; }

  private:
    struct PendingWrite
    {
        GuestVirt va;
        U64 value;
        U8 size;
        bool locked;
    };

    U64 readReg(int reg) const;
    U16 readFlags(int reg) const;

    Context *ctx;
    AddressSpace *aspace;
    BasicBlockCache *bbcache;
    SystemInterface *sys;
    MemoryHierarchy *hier = nullptr;
    BranchPredictor *bp = nullptr;

    // Per-register attached flags (the flags each producer left).
    U16 regflags[NUM_UOP_REGS] = {};

    // Per-instruction speculative state (committed at EOM). Flags are
    // tracked separately: only setflags-producing uops attach flags to
    // their destination (so value-only writers like mov/setcc never
    // clobber a producer's flags that a later consumer still names).
    bool pending_valid[NUM_UOP_REGS] = {};
    bool pending_hasflags[NUM_UOP_REGS] = {};
    U64 pending_value[NUM_UOP_REGS] = {};
    U16 pending_flags[NUM_UOP_REGS] = {};

    // Cached decode position.
    const BasicBlock *cur_bb = nullptr;
    size_t uop_idx = 0;
    U64 bb_generation = 0;

    Counter &st_insns;
    Counter &st_uops;
    Counter &st_k8ops;
    Counter &st_modeled_cycles;
    Counter &st_branches;
    Counter &st_cond_branches;
    Counter &st_mispredicts;
    Counter &st_indirect_branches;
    Counter &st_indirect_mispredicts;
    Counter &st_loads;
    Counter &st_stores;
    Counter &st_events;
    Counter &st_faults;
    Counter &st_assists;
};

/** The in-order sequential core model ("seq"). */
class SeqCore : public CoreModel
{
  public:
    explicit SeqCore(const CoreBuildParams &params);

    void cycle(SimCycle now) override;
    bool allIdle() const override;
    void flushPipeline() override;
    void flushTlbs() override;
    void resetTimebase(SimCycle now) override;
    void resetMicroarch(SimCycle now) override;
    std::string name() const override { return "seq"; }

    FunctionalEngine &engine(int thread) { return *engines[thread]; }

  private:
    std::vector<Context *> contexts;
    std::vector<std::unique_ptr<FunctionalEngine>> engines;
    MemoryHierarchy *hierarchy;        ///< owned by the machine builder
    std::unique_ptr<BranchPredictor> predictor;
    std::vector<SimCycle> stall_until;
    size_t next_thread = 0;
};

}  // namespace ptl

#endif  // PTLSIM_CORE_SEQCORE_H_
