#include "core/seqcore.h"

#include <algorithm>
#include <cstring>

#include "lib/logging.h"
#include "uop/uopexec.h"

namespace ptl {

FunctionalEngine::FunctionalEngine(Context &context, AddressSpace &addrspace,
                                   BasicBlockCache &bbs,
                                   SystemInterface &system, StatsTree &stats,
                                   const std::string &prefix)
    : ctx(&context), aspace(&addrspace), bbcache(&bbs), sys(&system),
      st_insns(stats.counter(prefix + "commit/insns")),
      st_uops(stats.counter(prefix + "commit/uops")),
      st_k8ops(stats.counter(prefix + "commit/k8ops")),
      st_modeled_cycles(stats.counter(prefix + "profile/modeled_cycles")),
      st_branches(stats.counter(prefix + "branches/total")),
      st_cond_branches(stats.counter(prefix + "branches/cond")),
      st_mispredicts(stats.counter(prefix + "branches/mispredicted")),
      st_indirect_branches(stats.counter(prefix + "branches/indirect")),
      st_indirect_mispredicts(
          stats.counter(prefix + "branches/indirect_mispredicted")),
      st_loads(stats.counter(prefix + "commit/loads")),
      st_stores(stats.counter(prefix + "commit/stores")),
      st_events(stats.counter(prefix + "commit/events_delivered")),
      st_faults(stats.counter(prefix + "commit/faults_delivered")),
      st_assists(stats.counter(prefix + "commit/assists"))
{
}

void
FunctionalEngine::attachProfiling(MemoryHierarchy *hierarchy,
                                  BranchPredictor *predictor)
{
    hier = hierarchy;
    bp = predictor;
}

void
FunctionalEngine::reposition()
{
    cur_bb = nullptr;
    uop_idx = 0;
}

const Uop *
FunctionalEngine::peekUop()
{
    if (!cur_bb || uop_idx >= cur_bb->uops.size()
        || bb_generation != bbcache->generation()) {
        GuestFault ff = GuestFault::None;
        ContextCodeSource code(*aspace, *ctx);
        cur_bb = bbcache->get(code, &ff);
        uop_idx = 0;
        bb_generation = bbcache->generation();
        if (!cur_bb)
            return nullptr;
    }
    return &cur_bb->uops[uop_idx];
}

U64
FunctionalEngine::readReg(int reg) const
{
    if (reg == REG_zero || reg == REG_none)
        return 0;
    if (pending_valid[reg])
        return pending_value[reg];
    return ctx->regs[reg];
}

U16
FunctionalEngine::readFlags(int reg) const
{
    if (reg == REG_none)
        return 0;
    if (pending_hasflags[reg])
        return pending_flags[reg];
    return regflags[reg];
}

FunctionalEngine::StepResult
FunctionalEngine::stepInsn(SimCycle now)
{
    StepResult res;
    if (!ctx->running) {
        res.idle = true;
        return res;
    }

    // Virtual interrupt delivery between instructions (Section 2.1).
    if (ctx->event_pending && !ctx->event_mask
        && ctx->event_callback != 0) {
        deliverEvent(*ctx, *aspace);
        st_events++;
        reposition();
        res.event_delivered = true;
        return res;
    }

    // (Re)acquire the decode position.
    if (!cur_bb || uop_idx >= cur_bb->uops.size()
        || bb_generation != bbcache->generation()) {
        GuestFault ff = GuestFault::None;
        ContextCodeSource code(*aspace, *ctx);
        cur_bb = bbcache->get(code, &ff);
        uop_idx = 0;
        bb_generation = bbcache->generation();
        if (!cur_bb) {
            st_faults++;
            deliverFault(*ctx, *aspace, ff, ctx->rip, ctx->rip);
            res.fault_delivered = ff;
            reposition();
            return res;
        }
        if (bp && hier) {
            // Profile the instruction fetch path once per block.
            TranslateResult t = hier->translateFetch(
                ctx->cr3, ctx->rip, !ctx->kernel_mode, now);
            if (t.fault == GuestFault::None)
                hier->fetchAccess(t.paddr, now);
        }
    }

    // The flag-group pseudo-registers always reflect current flags.
    regflags[REG_zaps] = regflags[REG_cf] = regflags[REG_of] = ctx->flags;

    std::memset(pending_valid, 0, sizeof(pending_valid));
    std::memset(pending_hasflags, 0, sizeof(pending_hasflags));
    int mem_uops_this_insn = 0;
    // One x86 instruction never expands past a block's uop budget, so
    // inline arrays avoid a heap allocation per simulated instruction.
    PendingWrite stores[MAX_BB_UOPS];
    int n_stores = 0;
    struct FlagUpdate { U16 flags; U8 setmask; };
    FlagUpdate flag_updates[MAX_BB_UOPS];
    int n_flag_updates = 0;
    GuestVirt insn_rip = ctx->rip;
    GuestVirt next_rip;
    bool redirect = false;
    GuestFault fault = GuestFault::None;
    GuestVirt fault_addr;
    int uops_done = 0;

    size_t i = uop_idx;
    for (; i < cur_bb->uops.size(); i++) {
        const Uop &u = cur_bb->uops[i];
        uops_done++;

        if (u.isMem()) {
            GuestVirt va =
                GuestVirt(uopMemAddr(u, readReg(u.ra), readReg(u.rb)));
            if (u.isLoad()) {
                mem_uops_this_insn++;
                st_loads++;
                // Forward from this instruction's own pending stores.
                U64 value = 0;
                GuestAccess a = guestRead(*aspace, *ctx, va, u.size, value);
                if (!a.ok()) {
                    fault = a.fault;
                    fault_addr = va;
                    break;
                }
                for (int s = 0; s < n_stores; s++) {
                    const PendingWrite &w = stores[s];
                    if (w.va == va && w.size >= u.size)
                        value = w.value & byteMask(u.size);
                }
                if (hier) {
                    TranslateResult t = hier->translateData(
                        ctx->cr3, va, false, !ctx->kernel_mode, now);
                    if (t.fault == GuestFault::None) {
                        MemResult m = hier->dataAccess(t.paddr, false, now,
                                                       true);
                        // Analytic stall: miss penalty with a 2x
                        // memory-level-parallelism discount (the real
                        // OOO K8 overlaps misses); hits are covered by
                        // the pipelined base throughput.
                        res.mem_stall +=
                            t.latency
                            + (m.l1_hit ? cycles(0) : m.latency / 2);
                    }
                }
                if (u.op == UopOp::Lds)
                    value = signExtend(value, u.size);
                pending_valid[u.rd] = true;
                pending_value[u.rd] = value;
                if (u.eom)
                    break;
            } else {
                mem_uops_this_insn++;
                st_stores++;
                // Validate the translation now; apply at EOM.
                GuestAccess a =
                    guestTranslate(*aspace, *ctx, va, MemAccess::Write);
                if (!a.ok()) {
                    fault = a.fault;
                    fault_addr = va;
                    break;
                }
                if (va.vpn() != (va + u.size - 1).vpn()) {
                    GuestAccess b = guestTranslate(
                        *aspace, *ctx, va + u.size - 1, MemAccess::Write);
                    if (!b.ok()) {
                        fault = b.fault;
                        fault_addr = va + u.size - 1;
                        break;
                    }
                }
                if (hier) {
                    TranslateResult t = hier->translateData(
                        ctx->cr3, va, true, !ctx->kernel_mode, now);
                    if (t.fault == GuestFault::None) {
                        hier->dataAccess(t.paddr, true, now, true);
                        // Stores retire off the critical path; only
                        // the translation stall is architectural.
                        res.mem_stall += t.latency;
                    }
                }
                ptl_assert(n_stores < (int)MAX_BB_UOPS);
                stores[n_stores++] =
                    {va, readReg(u.rc) & byteMask(u.size), u.size,
                     u.locked};
                if (u.eom)
                    break;
            }
            continue;
        }

        if (u.isAssist()) {
            // Assists are the final uop: commit earlier effects first.
            for (int r = 0; r < NUM_UOP_REGS; r++) {
                if (pending_valid[r])
                    ctx->setReg(r, pending_value[r]);
                if (pending_hasflags[r])
                    regflags[r] = pending_flags[r];
            }
            for (int s = 0; s < n_stores; s++)
                guestWrite(*aspace, *ctx, stores[s].va, stores[s].size,
                           stores[s].value);
            st_assists++;
            AssistResult ar = executeAssist(u.assist(), *ctx, *aspace,
                                            *sys, GuestVirt(u.ripseq));
            if (ar.fault != GuestFault::None) {
                fault = ar.fault;
                fault_addr = insn_rip;
                n_stores = 0;
                std::memset(pending_valid, 0, sizeof(pending_valid));
                break;
            }
            next_rip = ar.next_rip;
            redirect = true;
            if (ar.blocked)
                res.blocked_now = true;
            n_stores = 0;
            std::memset(pending_valid, 0, sizeof(pending_valid));
            ptl_assert(u.eom);
            break;
        }

        UopOutcome out = executeUop(u, readReg(u.ra), readReg(u.rb),
                                    readReg(u.rc), readFlags(u.rf),
                                    readFlags(u.ra), readFlags(u.rb),
                                    readFlags(u.rc));
        if (out.fault != GuestFault::None) {
            fault = out.fault;
            fault_addr = insn_rip;
            break;
        }

        if (u.isBranch()) {
            ptl_assert(u.eom);
            st_branches++;
            if (u.op == UopOp::BrCC) {
                st_cond_branches++;
                if (bp) {
                    BranchPrediction p = bp->predict(u.rip);
                    if (p.taken != out.taken) {
                        st_mispredicts++;
                        // Analytic timing: redirect bubble.
                        res.mem_stall += cycles(10);
                    }
                    bp->resolve(u.rip, p, out.taken);
                }
            } else if (u.op == UopOp::Jmp) {
                st_indirect_branches++;
                if (bp) {
                    U64 predicted = u.hint_ret ? bp->popReturn()
                                               : bp->predictTarget(u.rip);
                    if (predicted != out.value)
                        st_indirect_mispredicts++;
                    if (!u.hint_ret)
                        bp->updateTarget(u.rip, out.value);
                }
            }
            if (bp && u.hint_call)
                bp->pushReturn(u.ripseq);
            if (out.taken || u.op == UopOp::Jmp) {
                next_rip = GuestVirt(out.value);
                redirect = true;
            } else {
                next_rip = GuestVirt((U64)u.imm2);
            }
            break;  // branches always end their instruction
        }

        if (u.writesRd()) {
            pending_valid[u.rd] = true;
            pending_value[u.rd] = out.value;
        }
        if (u.setflags) {
            ptl_assert(n_flag_updates < (int)MAX_BB_UOPS);
            flag_updates[n_flag_updates++] = {out.flags, u.setflags};
            if (u.rd != REG_none && u.rd != REG_zero) {
                pending_hasflags[u.rd] = true;
                pending_flags[u.rd] = out.flags;
            }
        }
        if (u.eom)
            break;
    }

    if (fault != GuestFault::None) {
        st_faults++;
        res.fault_delivered = fault;
        deliverFault(*ctx, *aspace, fault, insn_rip, fault_addr);
        reposition();
        return res;
    }

    // ---- atomic commit of this x86 instruction ----
    for (int r = 0; r < NUM_UOP_REGS; r++) {
        if (pending_valid[r])
            ctx->setReg(r, pending_value[r]);
        if (pending_hasflags[r])
            regflags[r] = pending_flags[r];
    }
    for (int f = 0; f < n_flag_updates; f++)
        ctx->applyFlags(flag_updates[f].flags, flag_updates[f].setmask);

    // Capture block-relative facts before store commit: an SMC store
    // below may invalidate cur_bb (repositioning this engine), and an
    // assist's hypercall hooks may already have done so.
    GuestVirt fall_rip;
    bool more_in_block = false;
    if (cur_bb != nullptr) {
        fall_rip = GuestVirt(
            cur_bb->uops[std::min(i, cur_bb->uops.size() - 1)].ripseq);
        more_in_block = (i + 1 < cur_bb->uops.size());
    }

    bool smc = false;
    for (int s = 0; s < n_stores; s++) {
        const PendingWrite &w = stores[s];
        guestWrite(*aspace, *ctx, w.va, w.size, w.value);
        GuestAccess a = guestTranslate(*aspace, *ctx, w.va,
                                       MemAccess::Write);
        if (a.ok() && sys->isCodeMfn(a.paddr.pfn())) {
            sys->notifyCodeWrite(a.paddr.pfn());
            smc = true;
        }
        if (w.size > 1) {
            GuestAccess b = guestTranslate(*aspace, *ctx,
                                           w.va + w.size - 1,
                                           MemAccess::Write);
            if (b.ok() && b.paddr.pfn() != a.paddr.pfn()
                && sys->isCodeMfn(b.paddr.pfn())) {
                sys->notifyCodeWrite(b.paddr.pfn());
                smc = true;
            }
        }
    }

    st_insns++;
    st_uops += (U64)uops_done;
    // K8 "macro-op" accounting: the K8 front end fuses a memory access
    // with its consuming/producing ALU operation into one macro-op
    // ("uop triads"), so its op counters read lower than PTLsim's
    // discrete uop counts (the paper's +31% uop row).
    st_k8ops += (U64)std::max(1, uops_done - mem_uops_this_insn);
    if (hier) {
        // First-order analytic timing for the profiling/reference
        // trials (stands in for silicon's measured cycle counter):
        // macro-ops retire at a sustained ~1.5/cycle (midway between
        // the K8's 3-wide peak and typical integer-code throughput),
        // plus cache/TLB/mispredict stall cycles reported by the
        // structure models. Indicative only — see EXPERIMENTS.md.
        int ops = std::max(1, uops_done - mem_uops_this_insn);
        U64 base = (U64)std::max(1, (ops * 2 + 2) / 3);
        st_modeled_cycles += base + res.mem_stall.raw();
    }
    res.insns = 1;
    res.uops = uops_done;

    if (redirect || next_rip != GuestVirt(0)) {
        ctx->rip = next_rip;
    } else {
        // Non-branch EOM: fall through sequentially.
        ctx->rip = fall_rip;
    }

    // Advance within the block or drop the position.
    if (!redirect && more_in_block && !smc && cur_bb != nullptr) {
        uop_idx = i + 1;
    } else {
        reposition();
    }
    return res;
}

// ---------------------------------------------------------------------
// SeqCore
// ---------------------------------------------------------------------

SeqCore::SeqCore(const CoreBuildParams &params)
    : contexts(params.contexts), hierarchy(params.hierarchy)
{
    ptl_assert(hierarchy != nullptr);
    predictor = std::make_unique<BranchPredictor>(*params.config,
                                                  *params.stats,
                                                  params.prefix);
    for (Context *ctx : contexts) {
        engines.push_back(std::make_unique<FunctionalEngine>(
            *ctx, *params.aspace, *params.bbcache, *params.sys,
            *params.stats, params.prefix));
        engines.back()->attachProfiling(hierarchy, predictor.get());
        stall_until.push_back(SimCycle(0));
    }
}

void
SeqCore::cycle(SimCycle now)
{
    // Round-robin across hardware threads, one instruction at a time;
    // memory stalls show up as per-thread stall windows.
    for (size_t n = 0; n < engines.size(); n++) {
        size_t t = (next_thread + n) % engines.size();
        if (!contexts[t]->running || stall_until[t] > now)
            continue;
        FunctionalEngine::StepResult r = engines[t]->stepInsn(now);
        stall_until[t] = now + cycles((U64)std::max(1, r.uops))
                         + r.mem_stall;
        next_thread = t + 1;
        return;
    }
}

bool
SeqCore::allIdle() const
{
    for (const Context *ctx : contexts) {
        if (ctx->running)
            return false;
    }
    return true;
}

void
SeqCore::flushPipeline()
{
    for (auto &e : engines)
        e->reposition();
}

void
SeqCore::flushTlbs()
{
    hierarchy->flushTlbs();
}

void
SeqCore::resetMicroarch(SimCycle now)
{
    flushPipeline();
    hierarchy->flushTlbs();
    hierarchy->flushCaches();
    predictor->reset();
    resetTimebase(now);
}

void
SeqCore::resetTimebase(SimCycle /*now*/)
{
    // Per-thread stall windows are absolute cycle stamps; after a time
    // warp they must not outlive the old clock. Same for the memory
    // hierarchy's in-flight miss buffers.
    std::fill(stall_until.begin(), stall_until.end(), SimCycle(0));
    hierarchy->resetTimebase();
}

void
registerSeqCoreModel()
{
    registerCoreModel("seq", [](const CoreBuildParams &p) {
        return std::make_unique<SeqCore>(p);
    });
}

}  // namespace ptl
