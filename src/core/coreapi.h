/**
 * @file
 * The pluggable core-model interface.
 *
 * Section 2.2: "Models can be added as plug-ins by simply registering a
 * C++ class with PTLsim and recompiling. ... multiple core instances
 * can operate in parallel; the simulator control logic automatically
 * advances each core by one cycle in round robin order." The machine
 * (src/sys/machine.*) instantiates one CoreModel per physical core from
 * this registry and ticks them round-robin.
 */

#ifndef PTLSIM_CORE_COREAPI_H_
#define PTLSIM_CORE_COREAPI_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/interlock.h"
#include "decode/bbcache.h"
#include "lib/config.h"
#include "mem/coherence.h"
#include "stats/stats.h"

namespace ptl {

class MemoryHierarchy;

/** Everything a core model needs to build itself. */
struct CoreBuildParams
{
    const SimConfig *config = nullptr;
    std::vector<Context *> contexts;   ///< VCPUs mapped onto this core
    AddressSpace *aspace = nullptr;
    BasicBlockCache *bbcache = nullptr;
    SystemInterface *sys = nullptr;
    StatsTree *stats = nullptr;
    std::string prefix;                ///< stats path prefix ("core0/")
    CoherenceController *coherence = nullptr;  ///< nullptr if single core
    InterlockController *interlocks = nullptr;
    /** This core's memory hierarchy (TLBs + caches + backend),
     *  assembled and owned by the machine builder — cores keep only
     *  this narrow handle, so the cache/memory composition is decided
     *  at machine-assembly level, not inside each core model.
     *  Required: core constructors assert it is non-null. */
    MemoryHierarchy *hierarchy = nullptr;
    /** Machine-assigned core index, unique within this Machine. It
     *  feeds the interlock owner encoding, so the assembler (Machine
     *  or test harness) must keep it distinct per core sharing an
     *  InterlockController. Assigned here rather than drawn from a
     *  process-wide counter so core identity is a pure function of
     *  machine assembly, not of construction history. */
    int core_id = 0;
};

class OooCore;

/**
 * An external per-cycle auditor of a core's microarchitectural state.
 * The concrete implementation (src/verify's InvariantChecker) lives
 * *above* the core layer; the core only holds this interface, so the
 * dependency points downward: verify implements a core-owned contract
 * instead of the core reaching up into the verification subsystem.
 * Whoever assembles the machine (src/sys, or a test harness) decides
 * whether to attach one.
 */
class CoreAuditor
{
  public:
    virtual ~CoreAuditor() = default;

    /** Audit one core's pipeline state; returns violations found. */
    virtual int checkCore(const OooCore &core, SimCycle now) = 0;

    /** Audit the coherence directory across all registered peers. */
    virtual int checkCoherence(const CoherenceController &coherence,
                               SimCycle now) = 0;
};

/** One simulated physical core (may host multiple SMT threads). */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /**
     * Hand the core an auditor to run on its per-cycle verify hook.
     * Passing nullptr detaches. Models without a verify hook ignore
     * the attachment (the default).
     */
    virtual void attachAuditor(std::unique_ptr<CoreAuditor> auditor)
    {
        (void)auditor;
    }

    /** Advance the core by one clock cycle. */
    virtual void cycle(SimCycle now) = 0;

    /** True when every hardware thread is blocked (hlt). */
    virtual bool allIdle() const = 0;

    /**
     * Earliest cycle at which this core needs to run again if no new
     * external event arrives (the machine's idle fast-forward hint).
     * The default is conservative: an idle core never wakes on its
     * own, and a core with any runnable thread needs the very next
     * cycle. Models with autonomous in-flight work (e.g. a draining
     * writeback queue) override this to report its completion cycle.
     */
    virtual SimCycle
    sleepUntil(SimCycle now) const
    {
        return allIdle() ? CYCLE_NEVER : now;
    }

    /** Squash all in-flight state (SMC, external invalidation,
     *  native-mode transitions). */
    virtual void flushPipeline() = 0;

    /** CR3 reload: drop cached translations (no ASIDs on this x86). */
    virtual void flushTlbs() {}

    /**
     * Virtual time just moved discontinuously (checkpoint restore can
     * roll it backwards). Any absolute-cycle bookkeeping — stall
     * windows, fetch backoffs, commit watchdogs — must be re-based to
     * `now`, or a stale future stamp from before the warp silently
     * parks the core until wall-clock catches back up.
     */
    virtual void resetTimebase(SimCycle now) { (void)now; }

    /**
     * Forget every microarchitectural warm-up artifact: in-flight
     * pipeline state, TLB and cache tags, branch-predictor tables,
     * and absolute-cycle timing stamps. Checkpoint capture and
     * restore both quiesce cores through this, so the continuation
     * of a just-captured run and a later restore of that checkpoint
     * resume from the identical (architectural + cold-microarch)
     * state — which is what makes a round trip cycle-exact even
     * though cache/predictor contents are never serialized.
     */
    virtual void
    resetMicroarch(SimCycle now)
    {
        flushPipeline();
        flushTlbs();
        resetTimebase(now);
    }

    virtual std::string name() const = 0;

    /** Human-readable pipeline state (debugging aid, PTLsim-style). */
    virtual std::string debugState() const { return ""; }
};

using CoreFactory =
    std::function<std::unique_ptr<CoreModel>(const CoreBuildParams &)>;

/** Register a core model under `name` (call at static-init time). */
void registerCoreModel(const std::string &name, CoreFactory factory);

/** Instantiate a registered core model; fatal() on unknown name. */
std::unique_ptr<CoreModel> createCoreModel(const std::string &name,
                                           const CoreBuildParams &params);

/** Names of all registered models. */
std::vector<std::string> coreModelNames();

/** Helper object whose constructor registers a model. */
struct CoreModelRegistration
{
    CoreModelRegistration(const std::string &name, CoreFactory factory)
    {
        registerCoreModel(name, std::move(factory));
    }
};

}  // namespace ptl

#endif  // PTLSIM_CORE_COREAPI_H_
