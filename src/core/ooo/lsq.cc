/**
 * @file
 * OOO core load/store queue behaviour (Section 2.2's replay machinery
 * and Section 4.4's interlocks):
 *
 *  - loads translate through the DTLB (paying hardware-walk latency on
 *    a miss), search the store queue for older stores by physical
 *    address, forward fully-overlapping ready data, and replay on
 *    partial overlaps or (with hoisting disabled) unresolved older
 *    store addresses;
 *  - with load hoisting enabled, loads speculate past unresolved
 *    stores; a store that later resolves onto an overlapping younger
 *    issued load marks it for a flush-and-refetch at commit;
 *  - interlocked (LOCK) accesses acquire the physical-address lock in
 *    the shared interlock controller; any other thread touching the
 *    locked address replays until the owning instruction commits;
 *  - L1D bank conflicts and MSHR exhaustion force 1-2 cycle replays.
 */

#include "core/ooo/ooocore.h"
#include "lib/logging.h"

namespace ptl {

namespace {

bool
rangesOverlap(GuestVirt a, unsigned alen, GuestVirt b, unsigned blen)
{
    return a < b + blen && b < a + alen;
}

bool
rangesOverlap(GuestPhys a, unsigned alen, GuestPhys b, unsigned blen)
{
    return a < b + blen && b < a + alen;
}

/**
 * Memory disambiguation predicate. Stores land in physical memory, so
 * two accesses conflict when their *physical* ranges overlap — a
 * virtual-only check misses stores and loads reaching one frame
 * through different mappings (the kind of aliasing the guest kernel's
 * per-task CR3 roots and the transcache tests' alias windows set up).
 * The recorded paddr covers the first page's fragment only, so the
 * virtual ranges are checked too: that catches the page-crossing tail
 * the physical range cannot represent. (Tails aliased through two
 * *different* mappings remain invisible to both checks; split accesses
 * are rare enough that the conservative pre-commit replay below makes
 * this a non-issue in practice.)
 */
bool
accessesConflict(GuestVirt a_va, GuestPhys a_paddr, unsigned a_size,
                 GuestVirt b_va, GuestPhys b_paddr, unsigned b_size)
{
    return rangesOverlap(a_paddr, a_size, b_paddr, b_size)
           || rangesOverlap(a_va, a_size, b_va, b_size);
}

}  // namespace

bool
OooCore::issueLoad(SimCycle now, Thread &t, RobEntry &e)
{
    const Uop &u = e.uop;
    LsqEntry &l = t.ldq[e.lsq];
    Context &ctx = *t.ctx;

    U64 ra = (e.src[0] >= 0) ? prf[e.src[0]].value : 0;
    U64 rb = (u.rb_imm || e.src[1] < 0) ? 0 : prf[e.src[1]].value;
    GuestVirt va = GuestVirt(uopMemAddr(u, ra, rb));

    TranslateResult tr = hierarchy->translateData(
        ctx.cr3, va, false, !ctx.kernel_mode, now);
    l.va = va;
    l.size = u.size;
    if (tr.fault != GuestFault::None) {
        e.fault = tr.fault;
        e.fault_addr = va;
        e.state = RobState::Done;
        l.addr_known = true;
        if (e.phys >= 0) {
            prf[e.phys].ready = true;
            prf[e.phys].ready_cycle = now + cycles(1);
            broadcastReady(e.phys);
        }
        return true;
    }
    CycleDelta latency = tr.latency;
    GuestPhys paddr = tr.paddr;
    l.paddr = paddr;
    l.addr_known = true;

    // Interlock semantics (Section 4.4): replay while another thread
    // holds the physical address; locked loads acquire the lock and
    // hold it until their x86 instruction commits. A locked load also
    // replays while *any* earlier locked instruction (even from this
    // thread) holds the address, which serializes back-to-back RMWs
    // and prevents a stale read under a lock about to be released.
    int owner = ownerId(t);
    if (interlocks->heldByOther(paddr, owner)) {
        st_load_replays++;
        e.retry_cycle = now + cycles(2);
        return false;
    }
    if (u.locked && !l.lock_acquired) {
        // Program-order acquisition: a younger locked load grabbing
        // the lock ahead of an older one would deadlock against
        // in-order commit (priority inversion), so replay until every
        // older locked access in this thread has issued and acquired.
        for (const LsqEntry &older : t.ldq) {
            if (older.valid && older.locked && older.seq < l.seq
                && !older.lock_acquired) {
                st_load_replays++;
                e.retry_cycle = now + cycles(2);
                return false;
            }
        }
        if (interlocks->held(paddr)) {
            st_load_replays++;
            e.retry_cycle = now + cycles(2);
            return false;
        }
        bool got = interlocks->acquire(paddr, owner);
        ptl_assert(got);
        l.lock_acquired = true;
        t.holds_locks = true;
    }

    // Store queue search: youngest older store wins.
    bool must_wait = false;
    const LsqEntry *fwd = nullptr;
    for (const LsqEntry &s : t.stq) {
        if (!s.valid || s.seq >= l.seq)
            continue;
        if (!s.addr_known) {
            if (!cfg.load_hoisting)
                must_wait = true;  // conservative: wait for addresses
            continue;
        }
        if (!accessesConflict(s.va, s.paddr, s.size, va, paddr, u.size))
            continue;
        if (s.paddr == paddr && s.size >= u.size) {
            if (!fwd || s.seq > fwd->seq)
                fwd = &s;
        } else {
            // Partial overlap: wait until the store commits.
            must_wait = true;
        }
    }
    if (must_wait) {
        st_load_replays++;
        e.retry_cycle = now + cycles(2);
        return false;
    }

    U64 value = 0;
    if (fwd) {
        st_load_forwards++;
        value = fwd->data & byteMask(u.size);
        latency += cycles((U64)cfg.lat_ld);
    } else {
        // Data cache access (physical address).
        MemResult m = hierarchy->dataAccess(paddr, false, now);
        if (m.mshr_full || m.bank_conflict) {
            st_load_replays++;
            e.retry_cycle = now + cycles(m.bank_conflict ? 1 : 2);
            return false;
        }
        latency += m.latency;
        // Unaligned accesses crossing a line (or page) cost extra and
        // may touch a second translation.
        GuestVirt last_byte = va + u.size - 1;
        if (va.alignedDown(64) != last_byte.alignedDown(64))
            latency += cycles(1);
        if (va.vpn() != last_byte.vpn()) {
            TranslateResult tr2 = hierarchy->translateData(
                ctx.cr3, last_byte, false, !ctx.kernel_mode, now);
            if (tr2.fault != GuestFault::None) {
                e.fault = tr2.fault;
                e.fault_addr = last_byte;
                e.state = RobState::Done;
                if (e.phys >= 0) {
                    prf[e.phys].ready = true;
                    prf[e.phys].ready_cycle = now + cycles(1);
                    broadcastReady(e.phys);
                }
                return true;
            }
            latency += tr2.latency;
            // Read the two fragments from their physical frames: the
            // second fragment starts at the next page's origin.
            unsigned first_len =
                (unsigned)(PAGE_SIZE - va.pageOffset());
            U64 lo = aspace->physMem().read(paddr, first_len);
            U64 hi = aspace->physMem().read(
                tr2.paddr.pageBase(), u.size - first_len);
            value = lo | (hi << (first_len * 8));
        } else {
            value = aspace->physMem().read(paddr, u.size);
        }
    }

    if (u.op == UopOp::Lds)
        value = signExtend(value, u.size);
    e.result = value;
    e.state = RobState::Done;
    if (e.phys >= 0) {
        PhysReg &reg = prf[e.phys];
        reg.value = value;
        reg.flags = 0;
        reg.ready = true;
        reg.ready_cycle =
            now + std::max(latency, cycles((U64)cfg.lat_ld));
        reg.cluster = (S8)e.cluster;
        broadcastReady(e.phys);
    }
    return true;
}

bool
OooCore::issueStore(SimCycle now, Thread &t, RobEntry &e)
{
    const Uop &u = e.uop;
    LsqEntry &s = t.stq[e.lsq];
    Context &ctx = *t.ctx;

    U64 ra = (e.src[0] >= 0) ? prf[e.src[0]].value : 0;
    U64 rb = (u.rb_imm || e.src[1] < 0) ? 0 : prf[e.src[1]].value;
    GuestVirt va = GuestVirt(uopMemAddr(u, ra, rb));

    TranslateResult tr = hierarchy->translateData(
        ctx.cr3, va, true, !ctx.kernel_mode, now);
    s.va = va;
    s.size = u.size;
    if (tr.fault == GuestFault::None
        && va.vpn() != (va + u.size - 1).vpn()) {
        TranslateResult tr2 = hierarchy->translateData(
            ctx.cr3, va + u.size - 1, true, !ctx.kernel_mode, now);
        if (tr2.fault != GuestFault::None)
            tr.fault = tr2.fault;
    }
    if (tr.fault != GuestFault::None) {
        e.fault = tr.fault;
        e.fault_addr = va;
        e.state = RobState::Done;
        s.addr_known = true;
        return true;
    }
    s.paddr = tr.paddr;

    int owner = ownerId(t);
    if (interlocks->heldByOther(tr.paddr, owner)) {
        st_load_replays++;
        e.retry_cycle = now + cycles(2);
        return false;
    }
    // A locked store runs under the lock its instruction's ld.acq
    // already holds; nothing to acquire here.

    s.data = ((e.src[2] >= 0) ? prf[e.src[2]].value : 0) & byteMask(u.size);
    s.addr_known = true;
    e.state = RobState::Done;

    // Load hoisting violation scan (Section 2.2's replay support):
    // younger loads that already executed against this address must be
    // squashed and re-executed.
    if (cfg.load_hoisting) {
        for (const LsqEntry &l : t.ldq) {
            if (!l.valid || l.seq <= s.seq || !l.addr_known)
                continue;
            if (accessesConflict(l.va, l.paddr, l.size,
                                 s.va, s.paddr, s.size)) {
                RobEntry &le = t.rob[l.rob];
                if (le.state == RobState::Done
                    && le.fault == GuestFault::None)
                    le.hoist_violation = true;
            }
        }
    }
    return true;
}

}  // namespace ptl
