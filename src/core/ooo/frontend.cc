/**
 * @file
 * OOO core frontend: fetch (from the basic block cache, with I-side
 * timing and branch prediction) and rename/dispatch.
 */

#include <cstring>

#include "core/ooo/ooocore.h"
#include "lib/logging.h"

namespace ptl {

void
OooCore::stageFetch(SimCycle now)
{
    int tid = pickFetchThread(now);
    if (tid < 0) {
        st_fetch_stall++;
        return;
    }
    Thread &t = threads[tid];

    for (int n = 0; n < cfg.fetch_width; n++) {
        if ((int)t.fetch_queue.size() >= cfg.fetch_queue_size) {
            st_fetch_stall++;
            return;
        }
        if (t.fetch_faulted || t.fetch_stall_until > now)
            return;

        // (Re)acquire the fetch block.
        if (!t.fetch_bb || t.fetch_idx >= t.fetch_bb->uops.size()
            || t.bb_generation != bbcache->generation()) {
            Context fctx = *t.ctx;
            fctx.rip = t.fetch_rip;
            GuestFault ff = GuestFault::None;
            ContextCodeSource code(*aspace, fctx);
            const BasicBlock *bb = bbcache->get(code, &ff);
            if (!bb) {
                // Speculative fetch fault: carried by a pseudo-uop and
                // delivered precisely if/when it reaches commit.
                Thread::FetchedUop fu;
                fu.uop.op = UopOp::Nop;
                fu.uop.som = true;
                fu.uop.eom = true;
                fu.uop.rip = t.fetch_rip.raw();
                fu.uop.ripseq = t.fetch_rip.raw();
                fu.fetch_fault = ff;
                fu.ready_at = now + cycles((U64)cfg.frontend_stages);
                t.fetch_queue.push_back(fu);
                t.fetch_faulted = true;
                cycle_activity = true;
                return;
            }
            t.fetch_bb = bb;
            t.fetch_idx = 0;
            t.bb_generation = bbcache->generation();
            // Charge I-TLB/I-cache miss penalties at block boundaries
            // (hits are pipelined into the frontend depth).
            TranslateResult tr = hierarchy->translateFetch(
                t.ctx->cr3, t.fetch_rip, !t.ctx->kernel_mode, now);
            CycleDelta extra = tr.latency;
            if (tr.fault == GuestFault::None) {
                MemResult fa = hierarchy->fetchAccess(tr.paddr, now);
                if (!fa.l1_hit)
                    extra += fa.latency;
            }
            if (extra > cycles(0)) {
                t.fetch_stall_until = now + extra;
                cycle_activity = true;
                return;
            }
        }

        const Uop &u = t.fetch_bb->uops[t.fetch_idx];
        Thread::FetchedUop fu;
        fu.uop = u;
        fu.ready_at = now + cycles((U64)cfg.frontend_stages);

        if (u.isBranch()) {
            bool last = (t.fetch_idx + 1 >= t.fetch_bb->uops.size());
            switch (u.op) {
              case UopOp::BrCC: {
                fu.pred = predictor->predict(u.rip);
                if (fu.pred.taken) {
                    fu.predicted_next = (U64)u.imm;
                    t.fetch_rip = GuestVirt((U64)u.imm);
                    t.fetch_bb = nullptr;
                } else {
                    fu.predicted_next = (U64)u.imm2;
                    if (last) {
                        t.fetch_rip = GuestVirt((U64)u.imm2);
                        t.fetch_bb = nullptr;
                    }
                }
                break;
              }
              case UopOp::Bru:
                if (u.hint_call)
                    predictor->pushReturn(u.ripseq);
                fu.predicted_next = (U64)u.imm;
                t.fetch_rip = GuestVirt((U64)u.imm);
                t.fetch_bb = nullptr;
                break;
              case UopOp::Jmp: {
                U64 predicted = u.hint_ret ? predictor->popReturn()
                                           : predictor->predictTarget(u.rip);
                if (u.hint_call)
                    predictor->pushReturn(u.ripseq);
                if (!predicted)
                    predicted = u.ripseq;  // cold BTB: guess fallthrough
                fu.predicted_next = predicted;
                t.fetch_rip = GuestVirt(predicted);
                t.fetch_bb = nullptr;
                break;
              }
              default:
                break;
            }
            // RAS recovery point: the stack as it stands after this
            // branch's own push/pop (fetch runs ahead of rename, so
            // the checkpoint must be taken here, not at rename).
            fu.ras_top = predictor->rasTop();
            t.fetch_idx++;
            t.fetch_queue.push_back(fu);
            cycle_activity = true;
            continue;
        }

        if (u.isAssist()) {
            // Serializing: stop fetching until the assist commits and
            // redirects the front end.
            t.fetch_idx++;
            t.fetch_queue.push_back(fu);
            t.fetch_faulted = true;
            cycle_activity = true;
            return;
        }

        t.fetch_idx++;
        t.fetch_queue.push_back(fu);
        cycle_activity = true;
    }
}

bool
OooCore::renameOne(SimCycle now, Thread &t, int tid)
{
    Thread::FetchedUop &fu = t.fetch_queue.front();
    const Uop &u = fu.uop;

    if (t.rob_used >= (int)t.rob.size())
        return false;
    // schedWritesRd/schedCls/schedFlagGroups read the metadata cached
    // at decode (Uop::precomputeSched) instead of re-deriving it from
    // the uop table for every dynamic instance.
    bool writes_rd = u.schedWritesRd();
    bool needs_phys = writes_rd || u.setflags != 0;
    bool fp = writes_rd && isFpReg(u.rd);
    if (needs_phys && (fp ? free_fp.empty() : free_int.empty()))
        return false;

    bool direct_done =
        u.isAssist() || u.op == UopOp::Nop
        || fu.fetch_fault != GuestFault::None;
    int qidx = -1;
    if (!direct_done) {
        UopClass cls = u.schedCls();
        if (cls == UopClass::Fpu || cls == UopClass::FpDiv) {
            qidx = fp_queue_index;
        } else if (cls == UopClass::IntMul || cls == UopClass::IntDiv) {
            qidx = 0;  // the multiply/divide lane
        } else {
            // Least-occupied integer lane.
            qidx = 0;
            for (int q = 1; q < cfg.int_iq_count; q++) {
                if (queues[q].used < queues[qidx].used)
                    qidx = q;
            }
        }
        if (queues[qidx].used >= (int)queues[qidx].slots.size())
            return false;
        // SMT deadlock prevention: cap each thread's integer-queue
        // occupancy so a thread spinning in replays (e.g. waiting on
        // an interlock) cannot wedge every shared slot and starve the
        // lock holder out of dispatch.
        if (qidx != fp_queue_index && threads.size() > 1) {
            int total = cfg.int_iq_count * cfg.int_iq_size;
            int cap = std::max(2, total / (int)threads.size());
            if (t.int_iq_inflight >= cap)
                return false;
        }
    }
    if (u.isLoad() && t.ldq_used >= (int)t.ldq.size())
        return false;
    if (u.isStore() && t.stq_used >= (int)t.stq.size())
        return false;

    // Allocate the ROB slot (its index doubles as the checkpoint id).
    int idx = t.rob_tail;
    bool wants_checkpoint = (u.op == UopOp::BrCC || u.op == UopOp::Jmp);
    if (wants_checkpoint && t.checkpoint_used[idx])
        return false;

    t.rob_tail = robNext(t, idx);
    t.rob_used++;
    U64 seq = t.next_seq++;
    RobEntry &e = t.rob[idx];
    e = RobEntry{};
    e.uop = u;
    e.seq = seq;
    e.thread = tid;
    e.pred = fu.pred;
    e.predicted_next = fu.predicted_next;
    e.fault = fu.fetch_fault;
    e.fault_addr = GuestVirt(u.rip);

    // ---- rename sources ----
    auto lookup = [&](int reg) -> int {
        if (reg == REG_zero || reg == REG_none)
            return -1;
        if (reg == REG_zaps)
            return t.spec_rat[FLAG_RAT_BASE + 0];
        if (reg == REG_cf)
            return t.spec_rat[FLAG_RAT_BASE + 1];
        if (reg == REG_of)
            return t.spec_rat[FLAG_RAT_BASE + 2];
        return t.spec_rat[reg];
    };
    if (u.op == UopOp::CollCC) {
        // collcc reads the three *flag group* producers by definition
        // (its register operands name them, but intervening value-only
        // writers may have redirected the register map).
        e.src[0] = t.spec_rat[FLAG_RAT_BASE + 0];
        e.src[1] = t.spec_rat[FLAG_RAT_BASE + 1];
        e.src[2] = t.spec_rat[FLAG_RAT_BASE + 2];
    } else {
        e.src[0] = lookup(u.ra);
        e.src[1] = u.rb_imm ? -1 : lookup(u.rb);
        e.src[2] = lookup(u.rc);
    }
    U8 fgroups = u.schedFlagGroups();
    if (fgroups) {
        int g = (fgroups & SETFLAG_ZAPS) ? 0 : (fgroups & SETFLAG_CF) ? 1 : 2;
        e.src[3] = t.spec_rat[FLAG_RAT_BASE + g];
    }

    // ---- allocate destination ----
    if (needs_phys) {
        e.phys = allocPhys(fp);
        ptl_assert(e.phys >= 0);
        prf[e.phys].cluster =
            (S8)((qidx >= 0) ? queues[qidx].cluster : 0);
        if (writes_rd)
            t.spec_rat[u.rd] = (S16)e.phys;
        if (u.setflags & SETFLAG_ZAPS)
            t.spec_rat[FLAG_RAT_BASE + 0] = (S16)e.phys;
        if (u.setflags & SETFLAG_CF)
            t.spec_rat[FLAG_RAT_BASE + 1] = (S16)e.phys;
        if (u.setflags & SETFLAG_OF)
            t.spec_rat[FLAG_RAT_BASE + 2] = (S16)e.phys;
    }

    // ---- LSQ allocation ----
    if (u.isLoad() || u.isStore()) {
        std::vector<LsqEntry> &lsq = u.isLoad() ? t.ldq : t.stq;
        int slot = -1;
        for (size_t i = 0; i < lsq.size(); i++) {
            if (!lsq[i].valid) {
                slot = (int)i;
                break;
            }
        }
        ptl_assert(slot >= 0);
        lsq[slot] = LsqEntry{};
        lsq[slot].valid = true;
        lsq[slot].rob = idx;
        lsq[slot].seq = seq;
        lsq[slot].locked = u.locked;
        e.lsq = slot;
        (u.isLoad() ? t.ldq_used : t.stq_used)++;
    }

    // ---- checkpoint for recoverable branches ----
    if (wants_checkpoint) {
        RatCheckpoint &c = t.checkpoints[idx];
        std::memcpy(c.map, t.spec_rat, sizeof(c.map));
        c.ras_top = fu.ras_top;       // fetch-time snapshot
        c.history = fu.pred.history;
        t.checkpoint_used[idx] = true;
        e.checkpoint = idx;
    }

    // ---- initial scheduling state ----
    if (direct_done) {
        e.state = RobState::Done;
        if (e.phys >= 0) {
            prf[e.phys].ready = true;
            prf[e.phys].ready_cycle = now;
        }
    } else {
        e.state = RobState::InQueue;
        IssueQueue &iq = queues[qidx];
        e.cluster = iq.cluster;
        for (IqEntry &slot : iq.slots) {
            if (!slot.valid) {
                slot.valid = true;
                slot.thread = (S16)tid;
                slot.rob = (S16)idx;
                slot.seq = seq;
                // Seed the wakeup state: sources that already executed
                // set their ready bits here (folding their
                // bypass-adjusted ready times into wake_cycle); the
                // rest are completed by broadcastReady when their
                // producers finish. Rename runs after issue, so a
                // producer completing this very cycle is visible in
                // the PRF by now — no broadcast can be missed.
                slot.wake_cycle = SimCycle(0);
                int slot_idx = (int)(&slot - iq.slots.data());
                U8 mask = 0;
                for (int s = 0; s < 4; s++) {
                    int p = e.src[s];
                    slot.src[s] = (S16)p;
                    if (p < 0) {
                        mask |= (U8)(1 << s);
                        continue;
                    }
                    const PhysReg &r = prf[p];
                    if (r.ready) {
                        mask |= (U8)(1 << s);
                        SimCycle eff =
                            effectiveReadyCycle(r, iq.cluster);
                        if (eff > slot.wake_cycle)
                            slot.wake_cycle = eff;
                    } else {
                        addWaiter(p, qidx, slot_idx, s);
                    }
                }
                slot.ready_mask = mask;
                // A fully-ready insert can issue next cycle at the
                // earliest (select already ran this cycle).
                if (mask == IQ_ALL_READY) {
                    SimCycle at =
                        std::max(slot.wake_cycle, now + cycles(1));
                    if (at < iq.next_wake)
                        iq.next_wake = at;
                } else {
                    iq.waiting++;
                }
                iq.used++;
                if (qidx != fp_queue_index)
                    t.int_iq_inflight++;
                break;
            }
        }
    }
    return true;
}

void
OooCore::stageRename(SimCycle now)
{
    int budget = cfg.frontend_width;
    int n = (int)threads.size();
    for (int k = 0; k < n && budget > 0; k++) {
        int tid = (next_rename_thread + k) % n;
        Thread &t = threads[tid];
        while (budget > 0 && !t.fetch_queue.empty()) {
            if (t.fetch_queue.front().ready_at > now)
                break;
            if (!renameOne(now, t, tid)) {
                st_rename_stall++;
                break;
            }
            t.fetch_queue.pop_front();
            budget--;
            cycle_activity = true;
        }
    }
    next_rename_thread++;
}

}  // namespace ptl
