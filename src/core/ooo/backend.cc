/**
 * @file: see below — OOO core backend.
 * OOO core backend: issue/execute (with broadcast wakeup via physical
 * register ready times), branch resolution with checkpoint recovery,
 * and the in-order commit unit with atomic x86 semantics, precise
 * exceptions, assists, event delivery and the commit checker.
 */

#include <algorithm>
#include <cstring>

#include "core/ooo/ooocore.h"
#include "lib/logging.h"

namespace ptl {

namespace {

int
classLatency(const SimConfig &cfg, UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu: return cfg.lat_alu;
      case UopClass::IntMul: return cfg.lat_mul;
      case UopClass::IntDiv: return cfg.lat_div;
      case UopClass::Fpu: return cfg.lat_fp;
      case UopClass::FpDiv: return cfg.lat_div;
      // Memory and control classes get their latency from the cache
      // hierarchy / branch redirect paths, not the execution unit.
      case UopClass::Load: return 1;
      case UopClass::Store: return 1;
      case UopClass::Branch: return 1;
      case UopClass::Fence: return 1;
      case UopClass::AssistOp: return 1;
    }
    return 1;
}

}  // namespace

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

void
OooCore::stageIssue(SimCycle now)
{
    // Structural hazard: one integer multiplier, one divider per core.
    bool mul_used = false, div_used = false;

    for (IssueQueue &iq : queues) {
        if (iq.used == 0) {
            iq.next_wake = CYCLE_NEVER;
            continue;
        }
        // Queue-level skip: next_wake lower-bounds the earliest cycle
        // any entry here can issue (broadcasts and inserts lower it),
        // so while it lies in the future the whole scan is provably a
        // no-op.
        if (iq.next_wake > now) {
            st_select_fast_skips++;
            continue;
        }
        int issued = 0;
        while (issued < cfg.issue_width_per_cluster) {
            // Oldest-first (collapsing queue) selection over entries
            // whose ready mask filled and whose wake stamp arrived.
            // Not-ready slots cost one 32-byte IqEntry read; the
            // 168-byte RobEntry is only touched for candidates.
            int best = -1;
            U64 best_seq = ~0ULL;
            for (size_t i = 0; i < iq.slots.size(); i++) {
                IqEntry &slot = iq.slots[i];
                if (!slot.valid || slot.seq >= best_seq
                    || slot.ready_mask != IQ_ALL_READY
                    || slot.wake_cycle > now)
                    continue;
                RobEntry &e = threads[slot.thread].rob[slot.rob];
                if (e.retry_cycle > now)
                    continue;
                UopClass cls = e.uop.schedCls();
                if ((cls == UopClass::IntMul && mul_used)
                    || (cls == UopClass::IntDiv && div_used))
                    continue;
                best = (int)i;
                best_seq = slot.seq;
            }
            if (best < 0)
                break;
            UopClass cls =
                threads[iq.slots[best].thread].rob[iq.slots[best].rob]
                    .uop.schedCls();
            cycle_activity = true;  // issue or replay both mutate state
            bool ok = issueOne(now, iq, best);
            if (cls == UopClass::IntMul)
                mul_used = true;
            if (cls == UopClass::IntDiv)
                div_used = true;
            issued++;  // the port is consumed even by a replayed op
            (void)ok;
        }
        // Recompute the skip bound from the surviving candidates. An
        // entry still issuable right now (width- or hazard-limited this
        // cycle) clamps to now+1; partially-ready entries contribute
        // nothing — the broadcast that completes their mask lowers
        // next_wake at that moment.
        SimCycle next = CYCLE_NEVER;
        for (const IqEntry &slot : iq.slots) {
            if (!slot.valid || slot.ready_mask != IQ_ALL_READY)
                continue;
            const RobEntry &e = threads[slot.thread].rob[slot.rob];
            SimCycle at = std::max(slot.wake_cycle, e.retry_cycle);
            if (at <= now)
                at = now + cycles(1);
            if (at < next)
                next = at;
        }
        iq.next_wake = next;
    }
}

bool
OooCore::issueOne(SimCycle now, IssueQueue &iq, int slot_idx)
{
    IqEntry &slot = iq.slots[slot_idx];
    Thread &t = threads[slot.thread];
    RobEntry &e = t.rob[slot.rob];
    const Uop &u = e.uop;

    if (u.isLoad() || u.isStore()) {
        bool ok = u.isLoad() ? issueLoad(now, t, e) : issueStore(now, t, e);
        if (!ok)
            return false;  // replay: stays in the queue
        slot.valid = false;
        iq.used--;
        if (&iq != &queues[fp_queue_index])
            t.int_iq_inflight--;
        return true;
    }

    auto value_of = [&](int phys) -> U64 {
        return (phys >= 0) ? prf[phys].value : 0;
    };
    auto flags_of = [&](int phys) -> U16 {
        return (phys >= 0) ? prf[phys].flags : 0;
    };

    UopOutcome out = executeUop(u, value_of(e.src[0]), value_of(e.src[1]),
                                value_of(e.src[2]), flags_of(e.src[3]),
                                flags_of(e.src[0]), flags_of(e.src[1]),
                                flags_of(e.src[2]));
    e.result = out.value;
    e.outflags = out.flags;
    if (out.fault != GuestFault::None) {
        e.fault = out.fault;
        e.fault_addr = GuestVirt(u.rip);
    }
    if (e.phys >= 0) {
        PhysReg &reg = prf[e.phys];
        reg.value = out.value;
        reg.flags = out.flags;
        reg.ready = true;
        reg.ready_cycle =
            now + cycles((U64)classLatency(cfg, u.schedCls()));
        reg.cluster = (S8)iq.cluster;
        broadcastReady(e.phys);
    }
    e.state = RobState::Done;
    slot.valid = false;
    iq.used--;
    if (&iq != &queues[fp_queue_index])
        t.int_iq_inflight--;

    if (u.isBranch())
        resolveBranch(now, t, slot.rob, e);
    return true;
}

// ---------------------------------------------------------------------
// Branch resolution
// ---------------------------------------------------------------------

void
OooCore::resolveBranch(SimCycle now, Thread &t, int rob_idx, RobEntry &e)
{
    const Uop &u = e.uop;
    e.actual_next = e.result;  // executeUop yields the true next RIP
    st_branches++;

    if (u.op == UopOp::BrCC) {
        st_cond_branches++;
        bool taken =
            (e.actual_next != (U64)u.imm2) || ((U64)u.imm == (U64)u.imm2);
        predictor->resolve(u.rip, e.pred, taken);
    } else if (u.op == UopOp::Jmp) {
        st_indirect_branches++;
        if (!u.hint_ret)
            predictor->updateTarget(u.rip, e.actual_next);
    }

    if (e.actual_next == e.predicted_next)
        return;

    // Misprediction: squash younger work, restore the RAT checkpoint,
    // repair the RAS, redirect fetch after the configured penalty.
    if (u.op == UopOp::BrCC)
        st_mispredicts++;
    else
        st_indirect_mispredicts++;

    squashYounger(t, rob_idx, now);
    if (e.checkpoint >= 0) {
        RatCheckpoint &c = t.checkpoints[e.checkpoint];
        std::memcpy(t.spec_rat, c.map, sizeof(t.spec_rat));
        predictor->rasRestore(c.ras_top);
        t.checkpoint_used[e.checkpoint] = false;
        e.checkpoint = -1;
    } else {
        panic("mispredicted branch without checkpoint (%s at %llx)",
              uopInfo(u.op).name, (unsigned long long)u.rip);
    }
    e.predicted_next = e.actual_next;  // now resolved correctly
    redirectFetch(t, GuestVirt(e.actual_next), now,
                  cycles((U64)cfg.mispredict_penalty));
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

/**
 * Lockstep self-validation (Section 2.3): replay each instruction the
 * pipeline commits on the functional reference engine (the same engine
 * backing SeqCore) against a shadow context, then require the full
 * architectural state — RIP, every register, the flags image, and the
 * memory effects — to be bit-identical. Divergences are simulator
 * bugs; panic with a cycle-stamped report so the offending commit can
 * be replayed.
 *
 * The reference steps BEFORE the pipeline's stores land in guest
 * memory (lockstepStepReference), so a read-modify-write instruction's
 * reference load sees pre-instruction memory rather than the value
 * this very commit is about to write. Register state is then compared
 * after the pipeline finishes committing the group (lockstepCompare).
 */
void
OooCore::lockstepStepReference(Thread &t, SimCycle now, GuestVirt insn_rip,
                               const Uop &first_uop)
{
    Context &shadow = *t.shadow_ctx;
    st_lockstep_commits++;

    if (shadow.rip != insn_rip)
        panic("[cycle %llu] lockstep divergence: pipeline committed rip "
              "%llx but the reference is at %llx (RIP stream desync)",
              (unsigned long long)now.raw(),
              (unsigned long long)insn_rip.raw(),
              (unsigned long long)shadow.rip.raw());

    // A mispredicted not-taken branch inside a multi-pseudo-op
    // translation (a rep string loop's exit check) redirects fetch to
    // the instruction's own rip, so the pipeline re-fetches and
    // re-commits pseudo-ops the reference has already executed. The
    // re-execution starts from the same committed state and is
    // idempotent; recognize it by the committing group's first uop
    // differing from the reference's pending uop, and skip the step
    // (the post-commit state compare still runs).
    const Uop *ref_next = t.checker->peekUop();
    if (ref_next
        && (ref_next->rip != first_uop.rip || ref_next->op != first_uop.op
            || ref_next->rd != first_uop.rd || ref_next->ra != first_uop.ra
            || ref_next->imm != first_uop.imm)) {
        st_lockstep_skips++;
        return;
    }

    // The reference never delivers events on its own: the pipeline
    // resyncs the shadow explicitly whenever it takes one.
    shadow.event_pending = false;
    FunctionalEngine::StepResult r = t.checker->stepInsn(now);
    if (r.fault_delivered != GuestFault::None)
        panic("[cycle %llu] lockstep divergence at rip %llx: pipeline "
              "committed cleanly but the reference faulted (%s)",
              (unsigned long long)now.raw(),
              (unsigned long long)insn_rip.raw(),
              guestFaultName(r.fault_delivered));
}

/** The reference just wrote this instruction's stores to guest memory;
 *  the pipeline is about to write the same locations from its STQ.
 *  Compare what the reference left there against the STQ data. */
void
OooCore::lockstepCheckStore(Thread &t, SimCycle now, GuestVirt insn_rip,
                            const LsqEntry &s, int size)
{
    U64 ref_value = 0;
    GuestAccess a = guestRead(*aspace, *t.ctx, s.va, (unsigned)size,
                              ref_value);
    U64 mask = size >= 8 ? ~0ULL : (1ULL << (size * 8)) - 1;
    if (a.ok() && ((ref_value ^ s.data) & mask) != 0)
        panic("[cycle %llu] lockstep divergence after commit of rip "
              "%llx:\n  store [%llx]: pipeline %llx vs reference %llx\n",
              (unsigned long long)now.raw(),
              (unsigned long long)insn_rip.raw(),
              (unsigned long long)s.va.raw(),
              (unsigned long long)(s.data & mask),
              (unsigned long long)(ref_value & mask));
}

void
OooCore::lockstepCompare(Thread &t, SimCycle now, GuestVirt insn_rip)
{
    Context &shadow = *t.shadow_ctx;
    Context &arch = *t.ctx;

    std::string diff;
    if (shadow.rip != arch.rip)
        diff += strprintf("  rip: pipeline %llx vs reference %llx\n",
                          (unsigned long long)arch.rip.raw(),
                          (unsigned long long)shadow.rip.raw());
    if (shadow.flags != arch.flags)
        diff += strprintf("  flags: pipeline %04x vs reference %04x\n",
                          arch.flags, shadow.flags);
    for (int reg = 0; reg < NUM_UOP_REGS; reg++) {
        if (shadow.regs[reg] != arch.regs[reg])
            diff += strprintf("  %s: pipeline %llx vs reference %llx\n",
                              uopRegName(reg),
                              (unsigned long long)arch.regs[reg],
                              (unsigned long long)shadow.regs[reg]);
    }
    if (!diff.empty())
        panic("[cycle %llu] lockstep divergence after commit of rip "
              "%llx:\n%s", (unsigned long long)now.raw(),
              (unsigned long long)insn_rip.raw(), diff.c_str());
}

/** Re-seed the lockstep shadow from the real context after microcode
 *  (assists), event or fault delivery mutated it out of band. */
void
OooCore::lockstepResync(Thread &t)
{
    if (!t.shadow_ctx)
        return;
    *t.shadow_ctx = *t.ctx;
    t.checker->reposition();
}

void
OooCore::runChecker(Thread &t, const RobEntry &e)
{
    const Uop &u = e.uop;
    Context &ctx = *t.ctx;
    st_checker_commits++;
    if (u.isAssist() || u.op == UopOp::Nop)
        return;
    U64 ra = ctx.reg(u.ra);
    U64 rb = ctx.reg(u.rb);
    U64 rc = ctx.reg(u.rc);
    if (u.isMem()) {
        GuestVirt va = GuestVirt(uopMemAddr(u, ra, rb));
        const LsqEntry &l = u.isLoad() ? t.ldq[e.lsq] : t.stq[e.lsq];
        if (va != l.va)
            panic("checker: %s at rip %llx address mismatch "
                  "(lsq %llx vs arch %llx)",
                  uopInfo(u.op).name, (unsigned long long)u.rip,
                  (unsigned long long)l.va.raw(),
                  (unsigned long long)va.raw());
        if (u.isStore() && threads.size() == 1
            && (l.data != (rc & byteMask(u.size))))
            panic("checker: store data mismatch at rip %llx",
                  (unsigned long long)u.rip);
        return;
    }
    // Flags consumed in program order equal the committed flag image.
    UopOutcome out = executeUop(u, ra, rb, rc, ctx.flags, ctx.flags,
                                ctx.flags, ctx.flags);
    if (u.isBranch()) {
        if (out.value != e.actual_next)
            panic("checker: branch at rip %llx resolved to %llx, "
                  "arch replay gives %llx",
                  (unsigned long long)u.rip,
                  (unsigned long long)e.actual_next,
                  (unsigned long long)out.value);
        return;
    }
    if (u.writesRd() && out.value != prf[e.phys].value)
        panic("checker: %s at rip %llx value mismatch "
              "(pipeline %llx vs arch replay %llx)",
              uopInfo(u.op).name, (unsigned long long)u.rip,
              (unsigned long long)prf[e.phys].value,
              (unsigned long long)out.value);
    if (u.setflags) {
        U16 mask = 0;
        if (u.setflags & SETFLAG_ZAPS)
            mask |= FLAG_ZAPS_MASK;
        if (u.setflags & SETFLAG_CF)
            mask |= FLAG_CF;
        if (u.setflags & SETFLAG_OF)
            mask |= FLAG_OF;
        if ((out.flags & mask) != (e.outflags & mask))
            panic("checker: %s at rip %llx flags mismatch",
                  uopInfo(u.op).name, (unsigned long long)u.rip);
    }
}

void
OooCore::commitUopState(Thread &t, RobEntry &e)
{
    const Uop &u = e.uop;
    Context &ctx = *t.ctx;

    if (cfg.commit_checker)
        runChecker(t, e);

    if (u.isLoad())
        st_loads++;
    if (u.isStore()) {
        st_stores++;
        LsqEntry &s = t.stq[e.lsq];
        GuestAccess a = guestWrite(*aspace, ctx, s.va, u.size, s.data);
        ptl_assert(a.ok());  // faults were resolved at issue
        hierarchy->dataAccess(s.paddr, true, now_cache, true);
        // Self-modifying code detection on the touched frame(s).
        Pfn first = s.paddr.pfn();
        if (sys->isCodeMfn(first))
            pending_smc.push_back(first);
        if (s.va.vpn() != (s.va + u.size - 1).vpn()) {
            GuestAccess b = guestTranslate(*aspace, ctx,
                                           s.va + u.size - 1,
                                           MemAccess::Write);
            if (b.ok() && sys->isCodeMfn(b.paddr.pfn()))
                pending_smc.push_back(b.paddr.pfn());
        }
    }
    if (u.schedWritesRd()) {
        ctx.setReg(u.rd, prf[e.phys].value);
        int old = t.arch_rat[u.rd];
        t.arch_rat[u.rd] = (S16)e.phys;
        addRefPhys(e.phys);
        dropRefPhys(old);
    }
    if (u.setflags) {
        ctx.applyFlags(e.outflags, u.setflags);
        for (int g = 0; g < NUM_FLAG_GROUPS; g++) {
            if (!(u.setflags & (1 << g)))
                continue;
            int old = t.arch_rat[FLAG_RAT_BASE + g];
            t.arch_rat[FLAG_RAT_BASE + g] = (S16)e.phys;
            addRefPhys(e.phys);
            dropRefPhys(old);
        }
    }
    if (e.lsq >= 0) {
        LsqEntry &l = u.isLoad() ? t.ldq[e.lsq] : t.stq[e.lsq];
        if (l.lock_acquired)
            interlocks->release(l.paddr, ownerId(t));
        l.valid = false;
        (u.isLoad() ? t.ldq_used : t.stq_used)--;
        e.lsq = -1;
    }
    if (e.checkpoint >= 0) {
        t.checkpoint_used[e.checkpoint] = false;
        e.checkpoint = -1;
    }
    st_commit_uops++;
}

bool
OooCore::commitThread(SimCycle now, Thread &t, int &budget)
{
    Context &ctx = *t.ctx;

    // Every attempt re-derives why commit is blocked; stale stamps
    // from earlier cycles must not linger into the sleep decision.
    t.commit_wake = CYCLE_NEVER;

    // Event (virtual interrupt) delivery at instruction boundaries.
    bool at_boundary =
        (t.rob_used == 0) || t.rob[t.rob_head].uop.som;
    if (at_boundary && ctx.running && ctx.event_pending && !ctx.event_mask
        && ctx.event_callback != 0) {
        deliverEvent(ctx, *aspace);
        flushThread(t);  // after delivery: flush re-syncs PRF from ctx
        st_events++;
        lockstepResync(t);
        redirectFetch(t, ctx.rip, now, cycles(1));
        t.last_commit_cycle = now;
        return true;
    }
    if (t.rob_used == 0)
        return false;

    // Locate the head instruction group [head .. EOM].
    int group[64];
    int count = 0;
    int idx = t.rob_head;
    bool complete = false;
    for (int n = 0; n < t.rob_used && count < 64; n++) {
        group[count++] = idx;
        if (t.rob[idx].uop.eom) {
            complete = true;
            break;
        }
        idx = robNext(t, idx);
    }
    if (!complete)
        return false;  // instruction not fully renamed yet

    // Readiness / fault scan in program order.
    GuestFault fault = GuestFault::None;
    GuestVirt fault_addr;
    bool hoist_violation = false;
    for (int n = 0; n < count; n++) {
        RobEntry &e = t.rob[group[n]];
        if (e.state != RobState::Done)
            return false;
        if (e.phys >= 0 && prf[e.phys].ready) {
            // Writeback completeness goes through the same readiness
            // predicate issue uses (same-cluster view, so the bypass
            // adjustment degenerates to the raw ready_cycle) instead
            // of re-reading the stamp ad hoc.
            const PhysReg &reg = prf[e.phys];
            SimCycle wb = effectiveReadyCycle(reg, reg.cluster);
            if (wb > now) {
                if (wb < t.commit_wake)
                    t.commit_wake = wb;
                return false;  // writeback not complete yet
            }
        }
        if (e.uop.isStore() && e.lsq >= 0
            && e.fault == GuestFault::None) {
            // Interlocks are checked at issue, but the write lands at
            // commit: re-check so a plain store cannot slip inside
            // another thread's locked read-modify-write window.
            const LsqEntry &s = t.stq[e.lsq];
            if (!s.lock_acquired
                && interlocks->heldByOther(s.paddr, ownerId(t))) {
                // The lock owner is another thread or core; its
                // release is invisible to this core's activity
                // tracking, so poll every cycle while asleep.
                t.commit_wake = now + cycles(1);
                return false;
            }
        }
        if (e.hoist_violation) {
            hoist_violation = true;
            break;
        }
        if (e.fault != GuestFault::None) {
            fault = e.fault;
            fault_addr = e.fault_addr;
            break;
        }
    }

    GuestVirt insn_rip = GuestVirt(t.rob[t.rob_head].uop.rip);

    if (hoist_violation) {
        // Speculative load issued before a conflicting older store:
        // flush and re-execute the instruction (replay storm model).
        st_hoist_flushes++;
        flushThread(t);
        ctx.rip = insn_rip;
        redirectFetch(t, insn_rip, now, cycles(2));
        // The refetch restarts from the instruction boundary, which
        // for multi-pseudo-op translations (rep string loops) can
        // re-commit a pseudo-op the reference already stepped past.
        // No reference memory writes are lost: the flushed group never
        // committed, so the reference never stepped it.
        lockstepResync(t);
        t.last_commit_cycle = now;
        budget = 0;
        return true;
    }

    if (fault != GuestFault::None) {
        st_faults++;
        deliverFault(ctx, *aspace, fault, insn_rip, fault_addr);
        flushThread(t);
        lockstepResync(t);
        redirectFetch(t, ctx.rip, now, cycles(1));
        t.last_commit_cycle = now;
        budget = 0;
        return true;
    }

    // Assist groups: commit the leading uops, run the microcode, then
    // flush (assists are serializing).
    bool has_assist = t.rob[group[count - 1]].uop.isAssist();

    pending_smc.clear();

    // Assist microcode has system side effects that must not run
    // twice, so assist groups resync the shadow instead of replaying.
    bool do_lockstep = lockstep_enabled && t.checker && !has_assist;
    if (do_lockstep) {
        // The reference performs SMC stores itself and consumes the
        // code-mfn flag as it does; capture the pipeline's view of
        // which code frames this group touches before that happens.
        for (int n = 0; n < count; n++) {
            const RobEntry &e = t.rob[group[n]];
            if (!e.uop.isStore() || e.lsq < 0)
                continue;
            const LsqEntry &s = t.stq[e.lsq];
            if (sys->isCodeMfn(s.paddr.pfn()))
                pending_smc.push_back(s.paddr.pfn());
            if (s.va.vpn() != (s.va + e.uop.size - 1).vpn()) {
                GuestAccess b = guestTranslate(*aspace, *t.ctx,
                                               s.va + e.uop.size - 1,
                                               MemAccess::Write);
                if (b.ok() && sys->isCodeMfn(b.paddr.pfn()))
                    pending_smc.push_back(b.paddr.pfn());
            }
        }
        lockstepStepReference(t, now, insn_rip, t.rob[group[0]].uop);
        for (int n = 0; n < count; n++) {
            const RobEntry &e = t.rob[group[n]];
            if (e.uop.isStore() && e.lsq >= 0)
                lockstepCheckStore(t, now, insn_rip, t.stq[e.lsq],
                                   e.uop.size);
        }
    }
    for (int n = 0; n < count; n++) {
        RobEntry &e = t.rob[group[n]];
        if (e.uop.isAssist())
            break;  // executed below, after older effects apply
        commitUopState(t, e);
        if (has_assist) {
            // Pop committed leading uops now so the post-assist flush
            // cannot force-free their (architecturally live) registers.
            t.rob_head = robNext(t, t.rob_head);
            t.rob_used--;
        }
    }

    if (has_assist) {
        RobEntry &e = t.rob[group[count - 1]];
        st_assists++;
        st_commit_uops++;
        AssistResult ar = executeAssist(e.uop.assist(), ctx, *aspace,
                                        *sys, GuestVirt(e.uop.ripseq));
        if (ar.fault != GuestFault::None) {
            st_faults++;
            deliverFault(ctx, *aspace, ar.fault, insn_rip, insn_rip);
            flushThread(t);
            lockstepResync(t);
            redirectFetch(t, ctx.rip, now, cycles(1));
            t.last_commit_cycle = now;
            budget = 0;
            return true;
        }
        ctx.rip = ar.next_rip;
        st_commit_insns++;
        flushThread(t);
        // Assists run microcode with system side effects (hypercalls,
        // TSC reads) that must not execute twice: resync the lockstep
        // shadow instead of replaying.
        lockstepResync(t);
        redirectFetch(t, ctx.rip, now, cycles(1));
        t.last_commit_cycle = now;
        budget = 0;
        return true;
    }

    // Pop the group and update RIP.
    RobEntry &last = t.rob[group[count - 1]];
    ctx.rip = GuestVirt(last.uop.isBranch() ? last.actual_next
                                            : last.uop.ripseq);
    if (trace_commits) {
        std::fprintf(stderr, "[%llu] T%d commit rip=%llx next=%llx %s\n",
                     (unsigned long long)now.raw(),
                     (int)(&t - threads.data()),
                     (unsigned long long)insn_rip.raw(),
                     (unsigned long long)ctx.rip.raw(),
                     uopInfo(last.uop.op).name);
    }
    for (int n = 0; n < count; n++) {
        t.rob_head = robNext(t, t.rob_head);
        t.rob_used--;
    }
    st_commit_insns++;
    budget -= count;
    t.last_commit_cycle = now;

    if (do_lockstep)
        lockstepCompare(t, now, insn_rip);

    if (!pending_smc.empty()) {
        // Committed stores hit translated code: invalidate and restart
        // the front end (our own pipeline is flushed by the hook).
        std::vector<Pfn> mfns = pending_smc;
        pending_smc.clear();
        GuestVirt next = ctx.rip;
        for (Pfn mfn : mfns)
            sys->notifyCodeWrite(mfn);
        // Everything younger in flight may be stale translated code.
        flushThread(t);
        redirectFetch(t, next, now, cycles(2));
        budget = 0;
        return true;
    }
    return true;
}

void
OooCore::stageCommit(SimCycle now)
{
    int budget = cfg.commit_width;
    int n = (int)threads.size();
    for (int k = 0; k < n && budget > 0; k++) {
        int tid = (next_commit_thread + k) % n;
        // Keep committing groups from this thread while budget lasts.
        while (budget > 0) {
            if (!commitThread(now, threads[tid], budget))
                break;
            cycle_activity = true;
        }
    }
    next_commit_thread++;
}

}  // namespace ptl
