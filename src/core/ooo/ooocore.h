/**
 * @file
 * The out-of-order superscalar core model (Section 2.2).
 *
 * "The default core model is a modern superscalar out of order design,
 * based on a combination of features from the Intel Pentium 4, AMD K8
 * and Intel Core 2." The structures modeled here:
 *
 *  - fetch of pre-decoded uops from the basic block cache, with
 *    I-TLB/I-cache timing charged per block and branch prediction at
 *    fetch (direction predictor, BTB, return address stack);
 *  - a frontend pipeline of configurable depth feeding rename;
 *  - register renaming onto physical register files (configurable
 *    count/size); each physical register carries its value *and* the
 *    condition flags it produced, with the ZAPS/CF/OF groups renamed
 *    independently (PTLsim's split-flags scheme);
 *  - clustered issue queues (e.g. the K8's three 8-entry integer lanes
 *    plus a 36-entry FP queue two cycles away) with oldest-first
 *    select, per-cluster issue width, and inter-cluster bypass delay;
 *  - a load/store queue with store-to-load forwarding by physical
 *    address, replay on partial overlaps / unresolved older stores
 *    (load hoisting configurable; the K8 preset disables it),
 *    L1D bank-conflict replays, MSHR back-pressure, and hardware
 *    page-walk latency injected on DTLB misses;
 *  - an interlock controller for LOCK-prefixed instructions shared by
 *    all threads and cores (Section 4.4);
 *  - atomic commit of x86 instructions (SOM/EOM groups), precise
 *    exceptions, microcode assists executed at the head of the ROB,
 *    and event (virtual interrupt) delivery at instruction boundaries;
 *  - misprediction recovery via per-branch RAT checkpoints;
 *  - an SMT mode: up to 16 hardware threads with per-thread fetch
 *    queues, ROBs, LDQ/STQ and rename state, sharing issue queues,
 *    functional units and the cache hierarchy, with round-robin or
 *    ICOUNT fetch policies and a deadlock-rescue flush (Section 2.2);
 *  - an optional commit-time checker that runs every committed x86
 *    instruction through the functional reference engine and compares
 *    architectural state (the TFSim-style self-validation the paper
 *    describes integrating).
 */

#ifndef PTLSIM_CORE_OOO_OOOCORE_H_
#define PTLSIM_CORE_OOO_OOOCORE_H_

#include <deque>
#include <memory>

#include "branch/predictor.h"
#include "core/coreapi.h"
#include "core/seqcore.h"
#include "mem/hierarchy.h"

namespace ptl {

class InvariantChecker;
struct VerifyTestHook;

class OooCore : public CoreModel
{
  public:
    OooCore(const CoreBuildParams &params, bool smt);
    ~OooCore() override;

    void cycle(SimCycle now) override;
    bool allIdle() const override;
    void flushPipeline() override;
    void flushTlbs() override;
    void resetTimebase(SimCycle now) override;
    void resetMicroarch(SimCycle now) override;
    std::string name() const override { return smt ? "smt" : "ooo"; }
    std::string debugState() const override;

    /**
     * Skip-ahead hint for the machine's idle fast-forward: when the
     * whole pipeline is quiesced, the earliest cycle any state here
     * can change; `now` while busy. cycle() honors the same stamp
     * internally, so callers that tick every cycle (the benchmark
     * loop, the machine's busy loop) get the fast path even without
     * consulting the hint.
     */
    SimCycle
    sleepUntil(SimCycle now) const override
    {
        if (allIdle())
            return CYCLE_NEVER;
        return (cfg.skip_ahead && idle_until > now) ? idle_until : now;
    }

    /** Accept (or detach, with nullptr) the per-cycle auditor. */
    void
    attachAuditor(std::unique_ptr<CoreAuditor> auditor) override
    {
        verifier = std::move(auditor);
        // The auditor cadence bounds how far cycle() may skip ahead;
        // drop any sleep armed under the old cadence.
        idle_until = SimCycle(0);
    }

    /** Invariant check: every interlock owned by this core's threads
     *  must be held by a live LSQ entry. panic()s on an orphan. */
    void validateInterlocks() const;

    /**
     * Run the attached auditor once (ROB/LSQ/PRF/issue queues, plus
     * the coherence directory when multi-core). Returns the violation
     * count, or 0 when no auditor is attached (the `verify` config
     * flag is off). Panics on the first violation.
     */
    int verifyNow(SimCycle now);

  private:
    friend class InvariantChecker;   // src/verify: reads all pipeline state
    friend struct VerifyTestHook;    // src/verify: test-only corruption
    // ---- physical registers ----
    // Packed by access pattern (hot value/stamp first, bookkeeping
    // last): 24 bytes instead of the naive 40, and the issue/commit
    // paths touch only the first 16.
    struct PhysReg
    {
        U64 value = 0;
        SimCycle ready_cycle;  ///< cycle the value becomes readable
        U16 flags = 0;
        bool ready = false;
        bool in_free_list = true;
        bool is_fp = false;
        S8 cluster = 0;        ///< producing cluster (bypass delay)
        S16 refcount = 0;      ///< references from architectural maps
    };

    static constexpr int NUM_FLAG_GROUPS = 3;  // ZAPS, CF, OF
    static constexpr int RAT_SIZE = NUM_UOP_REGS + NUM_FLAG_GROUPS;
    static constexpr int FLAG_RAT_BASE = NUM_UOP_REGS;

    struct RatCheckpoint
    {
        S16 map[RAT_SIZE];
        int ras_top;
        U64 history;
    };

    enum class RobState : U8 { Waiting, InQueue, Issued, Done };

    // Fields are ordered by alignment (U64s, then pred, then ints,
    // then bytes) so the entry packs into 168 bytes; the ROB is the
    // hottest array in the simulator and every byte of padding here
    // costs cache footprint in rename/issue/commit.
    struct RobEntry
    {
        Uop uop;
        U64 seq = 0;            ///< global program-order sequence
        SimCycle retry_cycle;   ///< earliest (re)issue attempt
        GuestVirt fault_addr;
        U64 predicted_next = 0;
        U64 actual_next = 0;
        U64 result = 0;
        BranchPrediction pred;  ///< branch resolution state
        int thread = 0;
        int phys = -1;          ///< destination physical register
        int src[4] = {-1, -1, -1, -1};  ///< ra, rb, rc, rf phys
        int cluster = 0;
        int lsq = -1;           ///< LDQ/STQ slot (by kind)
        int checkpoint = -1;
        RobState state = RobState::Waiting;
        GuestFault fault = GuestFault::None;
        bool mispredicted = false;
        bool hoist_violation = false;  ///< memory replay bookkeeping
        U16 outflags = 0;
    };

    struct LsqEntry
    {
        bool valid = false;
        int rob = -1;
        GuestVirt va;
        GuestPhys paddr;
        U8 size = 0;
        bool addr_known = false;
        bool locked = false;
        bool lock_acquired = false;  ///< this entry owns the interlock
        U64 data = 0;           ///< store data
        U64 seq = 0;            ///< global program-order sequence
    };

    /**
     * One issue-queue slot. Select no longer re-derives operand
     * readiness from the PRF every cycle: each slot caches its source
     * physical-register tags at dispatch and keeps a 4-bit ready mask,
     * with bits set either at dispatch (source already executed) or by
     * tag broadcast when the producing PhysReg completes
     * (broadcastReady). wake_cycle accumulates the latest effective
     * (bypass-adjusted) ready cycle over the known-ready sources, so a
     * fully-masked entry is issuable exactly when
     * max(wake_cycle, rob.retry_cycle) <= now. 32 bytes; the select
     * scan never touches the 168-byte RobEntry for not-ready slots.
     */
    struct IqEntry
    {
        U64 seq = 0;
        SimCycle wake_cycle;   ///< max effective ready cycle seen so far
        S16 src[4] = {-1, -1, -1, -1};  ///< cached source phys tags
        S16 rob = -1;
        S16 thread = 0;
        U8 ready_mask = 0;     ///< bit s set = src[s] value broadcast seen
        bool valid = false;
    };
    static constexpr U8 IQ_ALL_READY = 0xF;

    struct IssueQueue
    {
        std::vector<IqEntry> slots;
        int cluster = 0;
        int used = 0;
        /** Valid slots whose ready mask is still incomplete. Broadcast
         *  skips the whole queue when zero — entries that already have
         *  every operand cannot match a new tag. */
        int waiting = 0;
        /**
         * Lower bound on the earliest cycle any entry here can issue;
         * select skips the whole queue while next_wake > now. Lowered
         * by dispatch inserts and ready broadcasts, recomputed from
         * scratch after every full select scan. Entry removal
         * (issue/squash/flush) may leave it conservatively early,
         * which only costs one extra scan — never a missed issue.
         */
        SimCycle next_wake;
    };

    /** All per-hardware-thread state (Section 2.2's SMT split). */
    struct Thread
    {
        Context *ctx = nullptr;
        // Fetch state.
        GuestVirt fetch_rip;
        const BasicBlock *fetch_bb = nullptr;
        size_t fetch_idx = 0;
        U64 bb_generation = 0;
        SimCycle fetch_stall_until;
        bool fetch_faulted = false;
        GuestFault fetch_fault = GuestFault::None;
        // Fetch queue: uops waiting for rename (with ready-at cycle).
        struct FetchedUop
        {
            Uop uop;
            SimCycle ready_at;
            BranchPrediction pred;
            U64 predicted_next = 0;
            int ras_top = 0;    ///< RAS state right after this uop fetched
            GuestFault fetch_fault = GuestFault::None;
        };
        std::deque<FetchedUop> fetch_queue;
        // Rename state.
        S16 spec_rat[RAT_SIZE];
        S16 arch_rat[RAT_SIZE];
        // ROB (circular).
        std::vector<RobEntry> rob;
        int rob_head = 0, rob_tail = 0, rob_used = 0;
        // LSQ.
        std::vector<LsqEntry> ldq;
        std::vector<LsqEntry> stq;
        int ldq_used = 0, stq_used = 0;
        // Checkpoints (parallel to ROB capacity).
        std::vector<RatCheckpoint> checkpoints;
        std::vector<bool> checkpoint_used;
        U64 next_seq = 0;
        SimCycle last_commit_cycle;
        bool holds_locks = false;
        int int_iq_inflight = 0;  ///< integer IQ slots held (SMT cap)
        /**
         * Why the last commitThread attempt this cycle could not make
         * progress, as a wake-up stamp: the blocking writeback's
         * ready_cycle, now+1 while polling another owner's interlock,
         * or CYCLE_NEVER when unblocking requires some other pipeline
         * event (which is covered by the other sleep sources).
         * Recomputed on every commit attempt, so it is always fresh
         * when sleepCore() reads it at the end of the same cycle.
         */
        SimCycle commit_wake = CYCLE_NEVER;
        bool slept_running = false;  ///< ctx->running snapshot at sleep
        // Commit checker.
        std::unique_ptr<Context> shadow_ctx;
        std::unique_ptr<FunctionalEngine> checker;
    };

    // ---- pipeline stages (called in reverse order each cycle) ----
    void stageCommit(SimCycle now);
    void stageIssue(SimCycle now);
    void stageRename(SimCycle now);
    void stageFetch(SimCycle now);

    // ---- helpers ----
    int allocPhys(bool fp);
    void freePhys(int phys);
    void addRefPhys(int phys);
    void dropRefPhys(int phys);
    bool physReadyFor(int phys, int consumer_cluster, SimCycle now) const;
    /** Cycle `reg`'s value is usable from `consumer_cluster`, with the
     *  inter-cluster bypass delay applied. The single readiness
     *  predicate shared by dispatch seeding, wakeup broadcast and the
     *  commit-time writeback check. */
    SimCycle effectiveReadyCycle(const PhysReg &reg,
                                 int consumer_cluster) const
    {
        SimCycle eff = reg.ready_cycle;
        bool prod_fp = ((int)reg.cluster == cfg.int_iq_count);
        bool cons_fp = (consumer_cluster == cfg.int_iq_count);
        if (prod_fp != cons_fp)
            eff += cycles((U64)cfg.fp_cluster_delay);
        return eff;
    }
    /** Tag broadcast: `phys` just completed (its PhysReg ready bit and
     *  ready_cycle are final); set the matching ready-mask bits in
     *  every waiting issue-queue slot and lower queue wake stamps.
     *  Walks the per-physreg waiter list (exact consumers) instead of
     *  scanning every slot; falls back to broadcastScan on overflow. */
    void broadcastReady(int phys);
    /** Full-scan fallback for broadcastReady (waiter list overflowed). */
    void broadcastScan(int phys);
    /**
     * Per-physreg wakeup subscription: IQ slots whose source `s` still
     * waits on this tag, encoded (queue << 8) | (slot << 2) | s.
     * Appended at dispatch, drained (and cleared) by the tag
     * broadcast. Entries can go stale — squash/flush invalidates the
     * slot, or the slot is reused — so the broadcast re-validates each
     * one against slot.valid, the mirrored src tag, and the ready bit
     * (the bit check also makes duplicate entries harmless). A list
     * that outlives its producer (squashed before completing) is wiped
     * when the physreg is reallocated.
     */
    struct PhysWaiters
    {
        static constexpr int CAP = 6;
        U16 e[CAP];
        U8 n = 0;
        bool overflow = false;
    };
    void
    addWaiter(int phys, int queue, int slot, int s)
    {
        PhysWaiters &w = waiters[(size_t)phys];
        if (w.n < PhysWaiters::CAP)
            w.e[w.n++] = (U16)((queue << 8) | (slot << 2) | s);
        else
            w.overflow = true;
    }
    /** Compute this core's next-interesting cycle after a cycle with
     *  no pipeline activity, snapshot per-thread running state, and
     *  arm idle_until. */
    void sleepCore(SimCycle now);
    RobEntry &robAt(Thread &t, int idx) { return t.rob[idx]; }
    int robNext(const Thread &t, int idx) const
    {
        return (idx + 1) % (int)t.rob.size();
    }
    void flushThread(Thread &t);
    void squashYounger(Thread &t, int rob_idx, SimCycle now);
    void redirectFetch(Thread &t, GuestVirt rip, SimCycle now,
                       CycleDelta penalty);
    bool issueOne(SimCycle now, IssueQueue &iq, int slot);
    bool issueLoad(SimCycle now, Thread &t, RobEntry &e);
    bool issueStore(SimCycle now, Thread &t, RobEntry &e);
    void resolveBranch(SimCycle now, Thread &t, int rob_idx, RobEntry &e);
    bool commitThread(SimCycle now, Thread &t, int &budget);
    void commitUopState(Thread &t, RobEntry &e);
    void runChecker(Thread &t, const RobEntry &eom_entry);
    void lockstepStepReference(Thread &t, SimCycle now, GuestVirt insn_rip,
                               const Uop &first_uop);
    void lockstepCheckStore(Thread &t, SimCycle now, GuestVirt insn_rip,
                            const LsqEntry &s, int size);
    void lockstepCompare(Thread &t, SimCycle now, GuestVirt insn_rip);
    void lockstepResync(Thread &t);
    int pickFetchThread(SimCycle now);
    int ownerId(const Thread &t) const;

    // ---- members ----
    SimConfig cfg;
    bool smt;
    AddressSpace *aspace;
    BasicBlockCache *bbcache;
    SystemInterface *sys;
    StatsTree *stats;
    InterlockController *interlocks;
    CoherenceController *coherence;
    int core_id = 0;

    /** Per-cycle auditor attached by the machine (verify=1). */
    std::unique_ptr<CoreAuditor> verifier;
    /** Lockstep reference compare is only sound when this core's
     *  commits are the sole writers of guest memory (no SMT siblings,
     *  no coherence peers); otherwise the per-uop replay checker
     *  still runs but full-context lockstep is skipped. */
    bool lockstep_enabled = false;

    MemoryHierarchy *hierarchy;        ///< owned by the machine builder
    std::unique_ptr<BranchPredictor> predictor;
    std::vector<Thread> threads;
    std::vector<PhysReg> prf;
    std::vector<PhysWaiters> waiters;   ///< parallel to prf
    std::vector<int> free_int, free_fp;
    std::vector<IssueQueue> queues;   ///< int queues then FP queue
    int fp_queue_index = 0;
    int next_fetch_thread = 0;
    int next_rename_thread = 0;
    int next_commit_thread = 0;
    SimCycle now_cache;
    /**
     * Skip-ahead state: while now < idle_until, cycle() takes a fast
     * path that only checks the externally-visible wake conditions
     * (running-flag flips, deliverable events) — no pipeline state can
     * change until then, by construction of sleepCore(). Cleared by
     * everything that mutates core state from outside a cycle
     * (flushPipeline, resetTimebase, attachAuditor).
     */
    SimCycle idle_until;
    /** Did any stage make forward progress this cycle? Only a cycle
     *  with zero activity may arm idle_until. Transient, reset at the
     *  top of every evaluated cycle. */
    bool cycle_activity = false;
    std::vector<Pfn> pending_smc;   ///< code MFNs hit by committed stores
    bool trace_commits = false;     ///< PTLSIM_TRACE=1 commit logging
    bool renameOne(SimCycle now, Thread &t, int tid);

    // Statistics.
    Counter &st_commit_insns;
    Counter &st_commit_uops;
    Counter &st_cycles;
    Counter &st_branches;
    Counter &st_cond_branches;
    Counter &st_mispredicts;
    Counter &st_indirect_branches;
    Counter &st_indirect_mispredicts;
    Counter &st_loads;
    Counter &st_stores;
    Counter &st_load_forwards;
    Counter &st_load_replays;
    Counter &st_events;
    Counter &st_faults;
    Counter &st_assists;
    Counter &st_flushes;
    Counter &st_fetch_stall;
    Counter &st_rename_stall;
    Counter &st_hoist_flushes;
    Counter &st_deadlock_rescues;
    Counter &st_checker_commits;
    Counter &st_lockstep_commits;
    Counter &st_lockstep_skips;
    Counter &st_skipped_cycles;
    Counter &st_wakeup_broadcasts;
    Counter &st_select_fast_skips;
};

}  // namespace ptl

#endif  // PTLSIM_CORE_OOO_OOOCORE_H_
