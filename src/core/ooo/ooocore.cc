#include "core/ooo/ooocore.h"

#include <cstring>
#include <cstdlib>

#include "lib/logging.h"

#ifndef PTL_VERIFY
#define PTL_VERIFY 1
#endif

namespace ptl {

OooCore::OooCore(const CoreBuildParams &params, bool smt_mode)
    : cfg(*params.config), smt(smt_mode), aspace(params.aspace),
      bbcache(params.bbcache), sys(params.sys), stats(params.stats),
      interlocks(params.interlocks), coherence(params.coherence),
      st_commit_insns(stats->counter(params.prefix + "commit/insns")),
      st_commit_uops(stats->counter(params.prefix + "commit/uops")),
      st_cycles(stats->counter(params.prefix + "cycles")),
      st_branches(stats->counter(params.prefix + "branches/total")),
      st_cond_branches(stats->counter(params.prefix + "branches/cond")),
      st_mispredicts(
          stats->counter(params.prefix + "branches/mispredicted")),
      st_indirect_branches(
          stats->counter(params.prefix + "branches/indirect")),
      st_indirect_mispredicts(
          stats->counter(params.prefix + "branches/indirect_mispredicted")),
      st_loads(stats->counter(params.prefix + "commit/loads")),
      st_stores(stats->counter(params.prefix + "commit/stores")),
      st_load_forwards(stats->counter(params.prefix + "lsq/forwards")),
      st_load_replays(stats->counter(params.prefix + "lsq/replays")),
      st_events(stats->counter(params.prefix + "commit/events_delivered")),
      st_faults(stats->counter(params.prefix + "commit/faults_delivered")),
      st_assists(stats->counter(params.prefix + "commit/assists")),
      st_flushes(stats->counter(params.prefix + "pipeline/flushes")),
      st_fetch_stall(stats->counter(params.prefix + "pipeline/fetch_stalls")),
      st_rename_stall(
          stats->counter(params.prefix + "pipeline/rename_stalls")),
      st_hoist_flushes(stats->counter(params.prefix + "lsq/hoist_flushes")),
      st_deadlock_rescues(
          stats->counter(params.prefix + "smt/deadlock_rescues")),
      st_checker_commits(stats->counter(params.prefix + "checker/commits")),
      st_lockstep_commits(
          stats->counter(params.prefix + "checker/lockstep_commits")),
      st_lockstep_skips(
          stats->counter(params.prefix + "checker/lockstep_skips")),
      st_skipped_cycles(
          stats->counter(params.prefix + "ooocore/skipped_cycles")),
      st_wakeup_broadcasts(
          stats->counter(params.prefix + "ooocore/wakeup_broadcasts")),
      st_select_fast_skips(
          stats->counter(params.prefix + "ooocore/select_fast_skips"))
{
    core_id = params.core_id;
    trace_commits = std::getenv("PTLSIM_TRACE") != nullptr;
    ptl_assert(!params.contexts.empty());
    ptl_assert((int)params.contexts.size() <= 16);  // paper's SMT limit

    hierarchy = params.hierarchy;
    ptl_assert(hierarchy != nullptr);
    predictor = std::make_unique<BranchPredictor>(cfg, *stats,
                                                  params.prefix);

    // Physical register files: one pool, int partition then fp. The
    // configured sizes are the *rename* pool; each hardware thread
    // additionally pins one physical register per architectural slot,
    // so reserve those on top (otherwise a 16-thread SMT core could
    // not even hold its architectural state).
    int nthreads = (int)params.contexts.size();
    int int_arch = nthreads * (NUM_UOP_REGS - 16 + NUM_FLAG_GROUPS);
    int fp_arch = nthreads * 16;
    int int_total = cfg.int_prf_size + int_arch;
    int fp_total = cfg.fp_prf_size + fp_arch;
    prf.resize((size_t)int_total + (size_t)fp_total);
    waiters.resize(prf.size());
    for (int i = 0; i < int_total; i++)
        free_int.push_back(i);
    for (int i = 0; i < fp_total; i++) {
        prf[(size_t)int_total + i].is_fp = true;
        free_fp.push_back(int_total + i);
    }

    // Clustered issue queues: N integer lanes + one FP queue.
    for (int q = 0; q < cfg.int_iq_count; q++) {
        IssueQueue iq;
        iq.slots.resize((size_t)cfg.int_iq_size);
        iq.cluster = q;
        queues.push_back(std::move(iq));
    }
    {
        IssueQueue fpq;
        fpq.slots.resize((size_t)cfg.fp_iq_size);
        fpq.cluster = cfg.int_iq_count;
        fp_queue_index = (int)queues.size();
        queues.push_back(std::move(fpq));
    }

    // Per-thread structures.
    threads.resize(params.contexts.size());
    for (size_t i = 0; i < params.contexts.size(); i++) {
        Thread &t = threads[i];
        t.ctx = params.contexts[i];
        t.rob.resize((size_t)cfg.rob_size);
        t.ldq.resize((size_t)cfg.ldq_size);
        t.stq.resize((size_t)cfg.stq_size);
        t.checkpoints.resize((size_t)cfg.rob_size);
        t.checkpoint_used.assign((size_t)cfg.rob_size, false);
        // Initialize the register maps: one phys per arch slot,
        // preloaded from the context.
        for (int r = 0; r < RAT_SIZE; r++) {
            bool fp = (r < NUM_UOP_REGS) && isFpReg(r);
            int p = allocPhys(fp);
            ptl_assert(p >= 0);
            prf[p].value = (r < NUM_UOP_REGS) ? t.ctx->reg(r) : 0;
            prf[p].flags = t.ctx->flags;
            prf[p].ready = true;
            prf[p].ready_cycle = SimCycle(0);
            t.arch_rat[r] = (S16)p;
            t.spec_rat[r] = (S16)p;
            addRefPhys(p);
        }
        t.fetch_rip = t.ctx->rip;
    }

    // Commit checker (Section 2.3's TFSim-style self-validation): the
    // per-uop architectural replay always runs under commit_checker;
    // the full lockstep compare against the functional reference
    // engine additionally requires that this pipeline is the only
    // writer of guest memory, since the reference re-applies committed
    // stores (idempotent only without racing SMT siblings or peers).
    lockstep_enabled = cfg.commit_checker && threads.size() == 1
                       && coherence == nullptr;
    if (lockstep_enabled) {
        for (size_t i = 0; i < threads.size(); i++) {
            Thread &t = threads[i];
            t.shadow_ctx = std::make_unique<Context>(*t.ctx);
            t.checker = std::make_unique<FunctionalEngine>(
                *t.shadow_ctx, *aspace, *bbcache, *sys, *stats,
                params.prefix + "checker/t" + std::to_string(i) + "/");
        }
    }

    // The per-cycle invariant auditor (if any) arrives later via
    // attachAuditor(): whoever assembles the machine decides, so this
    // core never depends on the verification layer above it.
}

OooCore::~OooCore() = default;

int
OooCore::verifyNow(SimCycle now)
{
    if (!verifier)
        return 0;
    int n = verifier->checkCore(*this, now);
    if (coherence)
        n += verifier->checkCoherence(*coherence, now);
    return n;
}

int
OooCore::allocPhys(bool fp)
{
    std::vector<int> &list = fp ? free_fp : free_int;
    if (list.empty())
        return -1;
    int p = list.back();
    list.pop_back();
    PhysReg &reg = prf[p];
    reg.ready = false;
    reg.ready_cycle = CYCLE_NEVER;
    reg.refcount = 0;
    reg.in_free_list = false;
    // Drop waiter entries left behind if the previous owner was
    // squashed before it could broadcast.
    waiters[(size_t)p].n = 0;
    waiters[(size_t)p].overflow = false;
    return p;
}

void
OooCore::freePhys(int phys)
{
    if (phys < 0)
        return;
    PhysReg &reg = prf[phys];
    ptl_assert(!reg.in_free_list);
    ptl_assert(reg.refcount == 0);
    reg.in_free_list = true;
    (reg.is_fp ? free_fp : free_int).push_back(phys);
}

void
OooCore::addRefPhys(int phys)
{
    if (phys >= 0)
        prf[phys].refcount++;
}

void
OooCore::dropRefPhys(int phys)
{
    if (phys < 0)
        return;
    PhysReg &reg = prf[phys];
    ptl_assert(reg.refcount > 0);
    if (--reg.refcount == 0 && !reg.in_free_list)
        freePhys(phys);
}

bool
OooCore::physReadyFor(int phys, int consumer_cluster, SimCycle now) const
{
    if (phys < 0)
        return true;
    const PhysReg &reg = prf[phys];
    if (!reg.ready)
        return false;
    // Inter-cluster bypass delay (e.g. K8's FP cluster 2 cycles away).
    return effectiveReadyCycle(reg, consumer_cluster) <= now;
}

void
OooCore::broadcastReady(int phys)
{
    const PhysReg &reg = prf[phys];
    st_wakeup_broadcasts++;
    PhysWaiters &w = waiters[(size_t)phys];
    if (w.overflow) {
        w.n = 0;
        w.overflow = false;
        broadcastScan(phys);
        return;
    }
    for (int i = 0; i < (int)w.n; i++) {
        U16 code = w.e[i];
        IssueQueue &iq = queues[code >> 8];
        IqEntry &slot = iq.slots[(code >> 2) & 0x3F];
        int s = code & 3;
        // Re-validate: the slot may have been squashed or reused since
        // the entry was pushed; the ready-bit check also de-dups.
        if (!slot.valid || (int)slot.src[s] != phys
            || (slot.ready_mask & (U8)(1 << s)))
            continue;
        slot.ready_mask |= (U8)(1 << s);
        SimCycle eff = effectiveReadyCycle(reg, iq.cluster);
        if (eff > slot.wake_cycle)
            slot.wake_cycle = eff;
        if (slot.ready_mask == IQ_ALL_READY) {
            iq.waiting--;
            if (slot.wake_cycle < iq.next_wake)
                iq.next_wake = slot.wake_cycle;
        }
    }
    w.n = 0;
}

void
OooCore::broadcastScan(int phys)
{
    const PhysReg &reg = prf[phys];
    for (IssueQueue &iq : queues) {
        if (iq.waiting == 0)
            continue;
        SimCycle eff = effectiveReadyCycle(reg, iq.cluster);
        for (IqEntry &slot : iq.slots) {
            if (!slot.valid || slot.ready_mask == IQ_ALL_READY)
                continue;
            U8 mask = slot.ready_mask;
            for (int s = 0; s < 4; s++) {
                if (!(mask & (1 << s)) && (int)slot.src[s] == phys)
                    mask |= 1 << s;
            }
            if (mask == slot.ready_mask)
                continue;
            slot.ready_mask = mask;
            if (eff > slot.wake_cycle)
                slot.wake_cycle = eff;
            // Last operand arrived: the entry is now a select
            // candidate, so the queue's skip stamp must cover it.
            // (retry_cycle is still zero here — replays require a
            // prior issue attempt, which requires a full mask.)
            if (mask == IQ_ALL_READY) {
                iq.waiting--;
                if (slot.wake_cycle < iq.next_wake)
                    iq.next_wake = slot.wake_cycle;
            }
        }
    }
}

int
OooCore::ownerId(const Thread &t) const
{
    return core_id * 16 + (int)(&t - threads.data());
}

void
OooCore::redirectFetch(Thread &t, GuestVirt rip, SimCycle now,
                       CycleDelta penalty)
{
    t.fetch_rip = rip;
    t.fetch_bb = nullptr;
    t.fetch_idx = 0;
    t.fetch_queue.clear();
    t.fetch_stall_until = now + penalty;
    t.fetch_faulted = false;
}

void
OooCore::squashYounger(Thread &t, int rob_idx, SimCycle /*now*/)
{
    // Walk from the tail back to (but excluding) rob_idx, undoing
    // allocations in reverse order.
    while (t.rob_used > 0) {
        int last = (t.rob_tail + (int)t.rob.size() - 1) % (int)t.rob.size();
        if (last == rob_idx)
            break;
        RobEntry &e = t.rob[last];
        // Remove from its issue queue. Only InQueue entries hold a
        // slot (invariant-checked), and the dispatching queue's index
        // equals the entry's cluster, so the search is one queue, not
        // all of them.
        if (e.state == RobState::InQueue) {
            IssueQueue &iq = queues[e.cluster];
            int tid = (int)(&t - threads.data());
            for (IqEntry &slot : iq.slots) {
                if (slot.valid && (int)slot.thread == tid
                    && (int)slot.rob == last) {
                    if (slot.ready_mask != IQ_ALL_READY)
                        iq.waiting--;
                    slot.valid = false;
                    iq.used--;
                    if (e.cluster != queues[fp_queue_index].cluster)
                        t.int_iq_inflight--;
                    break;
                }
            }
        }
        // Release LSQ slots (and any interlock a squashed load held).
        if (e.lsq >= 0) {
            LsqEntry &l =
                e.uop.isLoad() ? t.ldq[e.lsq] : t.stq[e.lsq];
            if (l.lock_acquired)
                interlocks->release(l.paddr, ownerId(t));
            l.valid = false;
            (e.uop.isLoad() ? t.ldq_used : t.stq_used)--;
        }
        // Return the speculative physical register.
        if (e.phys >= 0) {
            prf[e.phys].refcount = 0;
            freePhys(e.phys);
        }
        if (e.checkpoint >= 0)
            t.checkpoint_used[e.checkpoint] = false;
        t.rob_tail = last;
        t.rob_used--;
    }
}

void
OooCore::flushThread(Thread &t)
{
    st_flushes++;
    int tid = (int)(&t - threads.data());
    // Drop everything in flight.
    while (t.rob_used > 0) {
        int last = (t.rob_tail + (int)t.rob.size() - 1) % (int)t.rob.size();
        RobEntry &e = t.rob[last];
        if (e.phys >= 0) {
            prf[e.phys].refcount = 0;
            freePhys(e.phys);
        }
        if (e.checkpoint >= 0)
            t.checkpoint_used[e.checkpoint] = false;
        t.rob_tail = last;
        t.rob_used--;
    }
    t.rob_head = t.rob_tail = 0;
    for (IssueQueue &iq : queues) {
        for (IqEntry &slot : iq.slots) {
            if (slot.valid && slot.thread == tid) {
                if (slot.ready_mask != IQ_ALL_READY)
                    iq.waiting--;
                slot.valid = false;
                iq.used--;
            }
        }
    }
    t.int_iq_inflight = 0;
    for (LsqEntry &e : t.ldq)
        e.valid = false;
    for (LsqEntry &e : t.stq)
        e.valid = false;
    t.ldq_used = t.stq_used = 0;
    t.fetch_queue.clear();
    std::memcpy(t.spec_rat, t.arch_rat, sizeof(t.spec_rat));
    std::fill(t.checkpoint_used.begin(), t.checkpoint_used.end(), false);
    interlocks->releaseAll(ownerId(t));
    t.holds_locks = false;
    t.fetch_bb = nullptr;
    t.fetch_faulted = false;
    t.fetch_rip = t.ctx->rip;
    // Microcode (assists, event/fault delivery) mutates the Context
    // directly; reload the architectural physical registers so the
    // restarted pipeline reads the true committed state.
    for (int r = 0; r < NUM_UOP_REGS; r++) {
        PhysReg &reg = prf[t.arch_rat[r]];
        reg.value = t.ctx->reg(r);
        reg.ready = true;
        reg.ready_cycle = SimCycle(0);
    }
    for (int g = 0; g < NUM_FLAG_GROUPS; g++) {
        PhysReg &reg = prf[t.arch_rat[FLAG_RAT_BASE + g]];
        reg.flags = t.ctx->flags;
        reg.ready = true;
        reg.ready_cycle = SimCycle(0);
    }
}

void
OooCore::flushPipeline()
{
    for (Thread &t : threads) {
        flushThread(t);
        // External flushes mean the context may have been advanced
        // outside this core (native mode, checkpoint restore, CR3
        // switch); the lockstep shadow must restart from the new state.
        lockstepResync(t);
    }
    // The flush itself is pipeline activity the sleep decision never
    // saw; force a full evaluation next cycle.
    idle_until = SimCycle(0);
}

void
OooCore::flushTlbs()
{
    hierarchy->flushTlbs();
}

void
OooCore::resetMicroarch(SimCycle now)
{
    flushPipeline();
    hierarchy->flushTlbs();
    hierarchy->flushCaches();
    predictor->reset();
    resetTimebase(now);
}

void
OooCore::resetTimebase(SimCycle now)
{
    // Fetch backoffs and the commit watchdog hold absolute cycle
    // stamps; after a time warp the former would park fetch until the
    // old clock value recurs and the latter would see a gigantic
    // unsigned gap and fire spuriously.
    for (Thread &t : threads) {
        t.fetch_stall_until = SimCycle(0);
        t.last_commit_cycle = now;
        t.commit_wake = CYCLE_NEVER;
    }
    // Skip-ahead bookkeeping also holds absolute stamps: a stale
    // idle_until or queue wake bound from before the warp would point
    // at cycles that now lie in the far future and park the core.
    idle_until = SimCycle(0);
    for (IssueQueue &iq : queues)
        iq.next_wake = SimCycle(0);
    for (PhysWaiters &w : waiters) {
        w.n = 0;
        w.overflow = false;
    }
    hierarchy->resetTimebase();
}

bool
OooCore::allIdle() const
{
    for (const Thread &t : threads) {
        if (t.ctx->running)
            return false;
    }
    return true;
}

int
OooCore::pickFetchThread(SimCycle now)
{
    int n = (int)threads.size();
    if (cfg.smt_policy == SmtPolicy::Icount && n > 1) {
        // ICOUNT: fetch for the thread with the fewest uops in flight.
        int best = -1;
        int best_count = INT32_MAX;
        for (int i = 0; i < n; i++) {
            Thread &t = threads[i];
            if (!t.ctx->running || t.fetch_stall_until > now
                || t.fetch_faulted)
                continue;
            int inflight = t.rob_used + (int)t.fetch_queue.size();
            if (inflight < best_count) {
                best_count = inflight;
                best = i;
            }
        }
        return best;
    }
    for (int k = 0; k < n; k++) {
        int i = (next_fetch_thread + k) % n;
        Thread &t = threads[i];
        if (!t.ctx->running || t.fetch_stall_until > now || t.fetch_faulted)
            continue;
        next_fetch_thread = i + 1;
        return i;
    }
    return -1;
}

void
OooCore::cycle(SimCycle now)
{
    // Skip-ahead fast path: a previous cycle proved no pipeline state
    // can change before idle_until, so only the externally-driven wake
    // conditions need checking — a VCPU running-flag flip or an event
    // becoming deliverable. Everything else (wakeups, replays, fetch
    // stalls, the commit watchdog, the audit cadence) is already
    // folded into idle_until by sleepCore().
    if (now < idle_until) {
        bool wake = false;
        for (Thread &t : threads) {
            const Context &c = *t.ctx;
            if (c.running != t.slept_running
                || (c.running && c.event_pending && !c.event_mask
                    && c.event_callback != 0)) {
                wake = true;
                break;
            }
        }
        if (!wake) {
            now_cache = now;
            st_cycles++;
            st_skipped_cycles++;
            // Keep the SMT arbitration rotors bit-identical with a
            // cycle-by-cycle run: the fetch rotor only moves when an
            // eligible thread exists (its queue is necessarily full
            // during a quiesced cycle, so picking it fetches nothing),
            // and the rename/commit rotors move unconditionally.
            if (threads.size() > 1)
                (void)pickFetchThread(now);
            next_rename_thread++;
            next_commit_thread++;
            return;
        }
        idle_until = SimCycle(0);
    }

    now_cache = now;
    st_cycles++;
    cycle_activity = false;
    stageCommit(now);
    stageIssue(now);
    stageRename(now);
    stageFetch(now);

    // SMT deadlock rescue (Section 2.2's deadlock prevention schemes):
    // a thread that has not committed for a long time gets flushed and
    // refetched, releasing any structural resources it wedged.
    for (Thread &t : threads) {
        if (!t.ctx->running) {
            t.last_commit_cycle = now;
            continue;
        }
        if (t.rob_used > 0
            && now - t.last_commit_cycle
                   > cycles((U64)cfg.smt_deadlock_timeout)) {
            st_deadlock_rescues++;
            flushThread(t);
            t.last_commit_cycle = now;
            cycle_activity = true;
        }
    }

#if PTL_VERIFY
    // End-of-cycle invariant audit (src/verify): all pipeline stages
    // have run, so every structure should be self-consistent.
    if (verifier && cfg.verify_interval > 0
        && now.raw() % (U64)cfg.verify_interval == 0)
        verifyNow(now);
#endif

    if (cfg.skip_ahead && !cycle_activity)
        sleepCore(now);
    else
        idle_until = SimCycle(0);
}

/**
 * The pipeline just completed a cycle with zero activity: no commit,
 * no issue attempt, no rename, no fetch progress, no rescue. Compute
 * the earliest future cycle at which any structure could change and
 * arm idle_until. Soundness argument, per source:
 *
 *  - Issue: every select candidate (full ready mask) is bounded by its
 *    queue's next_wake; entries still waiting on operands are woken by
 *    a broadcast, and the producing entry's own issue is itself
 *    bounded (transitively grounding every dependence chain).
 *  - Commit: commitThread records why its last attempt this cycle
 *    blocked (commit_wake); the remaining reasons (incomplete group,
 *    un-issued entry) resolve only via rename/issue events that are
 *    activity when they fire.
 *  - Frontend: a thread whose fetch could proceed would have fetched
 *    (= activity), so fetch is stalled (wake at fetch_stall_until),
 *    faulted (waits on commit), or queue-full (waits on rename, which
 *    waits on front().ready_at or on resources freed by activity).
 *  - Watchdog: the rescue deadline for any thread with in-flight work.
 *  - Audit: never skip past the next verifier cadence point.
 */
void
OooCore::sleepCore(SimCycle now)
{
    SimCycle wake = CYCLE_NEVER;
    auto fold = [&wake](SimCycle c) {
        if (c < wake)
            wake = c;
    };
    for (const IssueQueue &iq : queues) {
        if (iq.used > 0)
            fold(iq.next_wake);
    }
    for (Thread &t : threads) {
        t.slept_running = t.ctx->running;
        if (!t.ctx->running)
            continue;
        fold(t.commit_wake);
        if (!t.fetch_faulted
            && (int)t.fetch_queue.size() < cfg.fetch_queue_size)
            fold(std::max(t.fetch_stall_until, now + cycles(1)));
        if (!t.fetch_queue.empty()
            && t.fetch_queue.front().ready_at > now)
            fold(t.fetch_queue.front().ready_at);
        if (t.rob_used > 0)
            fold(t.last_commit_cycle
                 + cycles((U64)cfg.smt_deadlock_timeout + 1));
    }
#if PTL_VERIFY
    if (verifier && cfg.verify_interval > 0) {
        U64 iv = (U64)cfg.verify_interval;
        fold(SimCycle((now.raw() / iv + 1) * iv));
    }
#endif
    // Memory backend deferred work (e.g. the hybrid model's
    // deferred-write queue): drain everything due by now, then never
    // skip past the next due stamp. After drainTo(now) the head's
    // bank is busy past `now`, so the fold is strictly in the future
    // and the core cannot wedge re-arming the same cycle.
    hierarchy->drainBackend(now);
    SimCycle backend_due = hierarchy->backendNextDue();
    if (!backend_due.never())
        fold(std::max(backend_due, now + cycles(1)));
    idle_until = wake;
}

void
OooCore::validateInterlocks() const
{
    for (const auto &[paddr, owner] : interlocks->heldLocks()) {
        if (owner / 16 != core_id)
            continue;
        int tid = owner % 16;
        if (tid >= (int)threads.size())
            panic("interlock owner %d has no thread", owner);
        const Thread &t = threads[tid];
        bool found = false;
        for (const LsqEntry &l : t.ldq)
            found |= (l.valid && l.lock_acquired
                      && (l.paddr.raw() >> 3) == (paddr >> 3));
        for (const LsqEntry &l : t.stq)
            found |= (l.valid && l.lock_acquired
                      && (l.paddr.raw() >> 3) == (paddr >> 3));
        if (!found)
            panic("orphaned interlock paddr=%llx owner=%d",
                  (unsigned long long)paddr, owner);
    }
}

std::string
OooCore::debugState() const
{
    std::string out;
    for (size_t i = 0; i < threads.size(); i++) {
        const Thread &t = threads[i];
        out += strprintf(
            "thread %zu: rip=%llx running=%d rob=%d fq=%zu "
            "fetch_rip=%llx stalled_until=%llu faulted=%d\n",
            i, (unsigned long long)t.ctx->rip.raw(),
            (int)t.ctx->running,
            t.rob_used, t.fetch_queue.size(),
            (unsigned long long)t.fetch_rip.raw(),
            (unsigned long long)t.fetch_stall_until.raw(),
            (int)t.fetch_faulted);
        int idx = t.rob_head;
        for (int n = 0; n < std::min(t.rob_used, 8); n++) {
            const RobEntry &e = t.rob[idx];
            out += strprintf(
                "  rob[%d] %s rip=%llx state=%d retry=%llu fault=%s "
                "phys=%d ready=%d rdy_cyc=%llu srcs=%d,%d,%d,%d\n",
                idx, uopInfo(e.uop.op).name,
                (unsigned long long)e.uop.rip, (int)e.state,
                (unsigned long long)e.retry_cycle.raw(),
                guestFaultName(e.fault), e.phys,
                e.phys >= 0 ? (int)prf[e.phys].ready : -1,
                e.phys >= 0
                    ? (unsigned long long)prf[e.phys].ready_cycle.raw()
                    : 0ULL,
                e.src[0], e.src[1], e.src[2], e.src[3]);
            idx = (idx + 1) % (int)t.rob.size();
        }
    }
    for (size_t q = 0; q < queues.size(); q++)
        out += strprintf("iq[%zu] used=%d\n", q, queues[q].used);
    out += strprintf("free_int=%zu free_fp=%zu\n", free_int.size(),
                     free_fp.size());
    return out;
}

void
registerOooCoreModels()
{
    registerCoreModel("ooo", [](const CoreBuildParams &p) {
        return std::make_unique<OooCore>(p, false);
    });
    registerCoreModel("smt", [](const CoreBuildParams &p) {
        return std::make_unique<OooCore>(p, true);
    });
}

}  // namespace ptl
