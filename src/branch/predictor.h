/**
 * @file
 * Branch prediction: bimodal, gshare, and hybrid (meta-chooser)
 * direction predictors, a set-associative BTB for indirect targets,
 * and a return address stack. All table geometries are configurable,
 * matching the paper's "branch prediction is also fully configurable"
 * (Section 2.2). The K8 preset uses the 16K-entry gshare-like global
 * history predictor from Section 5.
 */

#ifndef PTLSIM_BRANCH_PREDICTOR_H_
#define PTLSIM_BRANCH_PREDICTOR_H_

#include <string>
#include <vector>

#include "lib/config.h"
#include "stats/stats.h"

namespace ptl {

/** Opaque per-prediction state returned by predict() and consumed by
 *  resolve(); lets the core repair speculative global history after a
 *  misprediction. */
struct BranchPrediction
{
    bool taken = false;
    U64 history = 0;      ///< global history *before* this prediction
};

class BranchPredictor
{
  public:
    BranchPredictor(const SimConfig &config, StatsTree &stats,
                    const std::string &prefix);

    /** Predict a conditional branch at `rip`; speculatively updates
     *  global history with the predicted direction. */
    BranchPrediction predict(U64 rip);

    /**
     * Resolve a conditional branch: train the tables with the actual
     * outcome and, on a misprediction, repair the speculative global
     * history from the prediction-time snapshot.
     */
    void resolve(U64 rip, const BranchPrediction &pred, bool taken);

    /** Predicted target of an indirect branch / call at `rip`; 0 if
     *  the BTB has no entry. */
    U64 predictTarget(U64 rip);

    /** Train the BTB with an observed indirect target. */
    void updateTarget(U64 rip, U64 target);

    // Return address stack.
    void pushReturn(U64 return_rip);
    U64 popReturn();                 ///< 0 if empty
    int rasTop() const { return ras_top; }
    void rasRestore(int top) { ras_top = top; }

    /** Drop all predictor state (the paper's pre-run cache flush). */
    void reset();

  private:
    unsigned bimodalIndex(U64 rip) const;
    unsigned gshareIndex(U64 rip, U64 history) const;
    unsigned metaIndex(U64 rip) const;
    static bool counterTaken(U8 c) { return c >= 2; }
    static U8 counterUpdate(U8 c, bool taken);

    PredictorKind kind;
    U64 history_mask;
    U64 global_history = 0;
    std::vector<U8> bimodal;   ///< 2-bit counters
    std::vector<U8> gshare;
    std::vector<U8> meta;      ///< 2-bit chooser: >=2 selects gshare

    struct BtbEntry { U64 tag = 0; U64 target = 0; bool valid = false;
                      U64 lru = 0; };
    int btb_sets;
    int btb_ways;
    U64 btb_tick = 0;
    std::vector<BtbEntry> btb;

    std::vector<U64> ras;
    int ras_top = 0;           ///< count of valid entries (wraps)

    Counter &st_predictions;
    Counter &st_btb_hits;
    Counter &st_btb_misses;
    Counter &st_ras_pushes;
    Counter &st_ras_pops;
};

}  // namespace ptl

#endif  // PTLSIM_BRANCH_PREDICTOR_H_
