#include "branch/predictor.h"

#include "lib/logging.h"

namespace ptl {

BranchPredictor::BranchPredictor(const SimConfig &config, StatsTree &stats,
                                 const std::string &prefix)
    : kind(config.predictor),
      history_mask(lowMask((unsigned)config.gshare_history)),
      bimodal((size_t)config.bimodal_entries, 1),
      gshare((size_t)config.gshare_entries, 1),
      meta((size_t)config.meta_entries, 2),
      btb_sets(config.btb_entries / config.btb_ways),
      btb_ways(config.btb_ways),
      btb((size_t)config.btb_entries),
      ras((size_t)config.ras_entries),
      st_predictions(stats.counter(prefix + "branchpred/predictions")),
      st_btb_hits(stats.counter(prefix + "branchpred/btb_hits")),
      st_btb_misses(stats.counter(prefix + "branchpred/btb_misses")),
      st_ras_pushes(stats.counter(prefix + "branchpred/ras_pushes")),
      st_ras_pops(stats.counter(prefix + "branchpred/ras_pops"))
{
    ptl_assert(isPow2((U64)btb_sets));
}

unsigned
BranchPredictor::bimodalIndex(U64 rip) const
{
    return (unsigned)((rip >> 2) & (bimodal.size() - 1));
}

unsigned
BranchPredictor::gshareIndex(U64 rip, U64 history) const
{
    return (unsigned)(((rip >> 2) ^ (history & history_mask))
                      & (gshare.size() - 1));
}

unsigned
BranchPredictor::metaIndex(U64 rip) const
{
    return (unsigned)((rip >> 2) & (meta.size() - 1));
}

U8
BranchPredictor::counterUpdate(U8 c, bool taken)
{
    if (taken)
        return (U8)std::min<int>(c + 1, 3);
    return (U8)std::max<int>(c - 1, 0);
}

BranchPrediction
BranchPredictor::predict(U64 rip)
{
    st_predictions++;
    BranchPrediction out;
    out.history = global_history;
    switch (kind) {
      case PredictorKind::Taken:
        out.taken = true;
        break;
      case PredictorKind::NotTaken:
        out.taken = false;
        break;
      case PredictorKind::Bimodal:
        out.taken = counterTaken(bimodal[bimodalIndex(rip)]);
        break;
      case PredictorKind::Gshare:
        out.taken = counterTaken(gshare[gshareIndex(rip, global_history)]);
        break;
      case PredictorKind::Hybrid: {
        bool g = counterTaken(gshare[gshareIndex(rip, global_history)]);
        bool b = counterTaken(bimodal[bimodalIndex(rip)]);
        out.taken = counterTaken(meta[metaIndex(rip)]) ? g : b;
        break;
      }
    }
    // Speculative history update with the predicted direction.
    global_history = ((global_history << 1) | (out.taken ? 1 : 0));
    return out;
}

void
BranchPredictor::resolve(U64 rip, const BranchPrediction &pred, bool taken)
{
    bool g_said = counterTaken(gshare[gshareIndex(rip, pred.history)]);
    bool b_said = counterTaken(bimodal[bimodalIndex(rip)]);
    gshare[gshareIndex(rip, pred.history)] =
        counterUpdate(gshare[gshareIndex(rip, pred.history)], taken);
    bimodal[bimodalIndex(rip)] =
        counterUpdate(bimodal[bimodalIndex(rip)], taken);
    if (kind == PredictorKind::Hybrid && g_said != b_said) {
        // Train the chooser toward whichever component was right.
        meta[metaIndex(rip)] =
            counterUpdate(meta[metaIndex(rip)], g_said == taken);
    }
    if (pred.taken != taken) {
        // Repair speculative history: replace the mispredicted bit.
        global_history = ((pred.history << 1) | (taken ? 1 : 0));
    }
}

U64
BranchPredictor::predictTarget(U64 rip)
{
    unsigned set = (unsigned)((rip >> 2) & (U64)(btb_sets - 1));
    BtbEntry *base = &btb[(size_t)set * btb_ways];
    for (int w = 0; w < btb_ways; w++) {
        if (base[w].valid && base[w].tag == rip) {
            base[w].lru = ++btb_tick;
            st_btb_hits++;
            return base[w].target;
        }
    }
    st_btb_misses++;
    return 0;
}

void
BranchPredictor::updateTarget(U64 rip, U64 target)
{
    unsigned set = (unsigned)((rip >> 2) & (U64)(btb_sets - 1));
    BtbEntry *base = &btb[(size_t)set * btb_ways];
    int victim = 0;
    for (int w = 0; w < btb_ways; w++) {
        if (base[w].valid && base[w].tag == rip) {
            base[w].target = target;
            base[w].lru = ++btb_tick;
            return;
        }
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lru < base[victim].lru)
            victim = w;
    }
    base[victim] = {rip, target, true, ++btb_tick};
}

void
BranchPredictor::pushReturn(U64 return_rip)
{
    st_ras_pushes++;
    ras[(size_t)(ras_top % (int)ras.size())] = return_rip;
    ras_top++;
}

U64
BranchPredictor::popReturn()
{
    if (ras_top == 0)
        return 0;
    ras_top--;
    st_ras_pops++;
    return ras[(size_t)(ras_top % (int)ras.size())];
}

void
BranchPredictor::reset()
{
    std::fill(bimodal.begin(), bimodal.end(), 1);
    std::fill(gshare.begin(), gshare.end(), 1);
    std::fill(meta.begin(), meta.end(), 2);
    for (BtbEntry &e : btb)
        e.valid = false;
    global_history = 0;
    ras_top = 0;
}

}  // namespace ptl
