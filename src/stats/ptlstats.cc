#include "stats/ptlstats.h"

#include <algorithm>
#include <sstream>

#include "lib/logging.h"

namespace ptl {

U64
SnapshotDelta::get(const std::string &path) const
{
    for (const auto &[name, value] : deltas) {
        if (name == path)
            return value;
    }
    return 0;
}

SnapshotDelta
subtractSnapshots(const StatsTree &tree, size_t from, size_t to)
{
    ptl_assert(from < tree.snapshotCount());
    ptl_assert(to < tree.snapshotCount());
    ptl_assert(from <= to);
    const StatsSnapshot &a = tree.snapshot(from);
    const StatsSnapshot &b = tree.snapshot(to);
    SnapshotDelta out;
    out.from_cycle = a.cycle;
    out.to_cycle = b.cycle;
    std::vector<std::string> paths = tree.paths();
    for (size_t i = 0; i < paths.size(); i++) {
        U64 va = (i < a.values.size()) ? a.values[i] : 0;
        U64 vb = (i < b.values.size()) ? b.values[i] : 0;
        ptl_assert(vb >= va);
        if (vb != va)
            out.deltas.emplace_back(paths[i], vb - va);
    }
    return out;
}

std::string
renderTimeLapse(const std::vector<TimeLapseSeries> &series, double max_pct,
                int width)
{
    std::ostringstream out;
    size_t n = 0;
    for (const TimeLapseSeries &s : series)
        n = std::max(n, s.values.size());
    out << "      ";
    for (const TimeLapseSeries &s : series)
        out << "[" << s.label << "] ";
    out << "(column = value / " << max_pct << "% x " << width << ")\n";
    for (size_t i = 0; i < n; i++) {
        std::string row((size_t)width, ' ');
        for (size_t k = 0; k < series.size(); k++) {
            if (i >= series[k].values.size())
                continue;
            double v = std::min(series[k].values[i], max_pct);
            int col = (int)(v / max_pct * (width - 1) + 0.5);
            char mark =
                series[k].label.empty() ? '*' : series[k].label[0];
            row[(size_t)col] = mark;
        }
        out << strprintf("%5zu |%s|\n", i, row.c_str());
    }
    return out.str();
}

std::string
renderStackedTimeLapse(const std::vector<TimeLapseSeries> &series,
                       int width)
{
    std::ostringstream out;
    size_t n = 0;
    for (const TimeLapseSeries &s : series)
        n = std::max(n, s.values.size());
    for (size_t i = 0; i < n; i++) {
        double total = 0;
        for (const TimeLapseSeries &s : series)
            total += (i < s.values.size()) ? s.values[i] : 0;
        std::string row;
        if (total > 0) {
            for (const TimeLapseSeries &s : series) {
                double v = (i < s.values.size()) ? s.values[i] : 0;
                int cells = (int)(v / total * width + 0.5);
                char mark = s.label.empty() ? '#' : s.label[0];
                row.append((size_t)std::min(cells,
                                            width - (int)row.size()),
                           mark);
            }
        }
        row.resize((size_t)width, ' ');
        out << strprintf("%5zu |%s|\n", i, row.c_str());
    }
    return out.str();
}

std::string
topCounters(const StatsTree &tree, const std::string &prefix, size_t count)
{
    std::vector<std::pair<U64, std::string>> rows;
    for (const std::string &path : tree.paths()) {
        if (path.rfind(prefix, 0) == 0 && tree.get(path) > 0)
            rows.emplace_back(tree.get(path), path);
    }
    std::sort(rows.rbegin(), rows.rend());
    std::ostringstream out;
    for (size_t i = 0; i < rows.size() && i < count; i++) {
        out << strprintf("%-50s %14llu\n", rows[i].second.c_str(),
                         (unsigned long long)rows[i].first);
    }
    return out.str();
}

}  // namespace ptl
