#include "stats/stats.h"

#include <sstream>

#include "lib/logging.h"

namespace ptl {

Counter &
StatsTree::counter(const std::string &path)
{
    LockGuard g(registry_mu_);
    auto it = index.find(path);
    if (it != index.end())
        return storage[it->second];
    index.emplace(path, storage.size());
    order.push_back(path);
    storage.emplace_back();
    // The reference escapes the lock by design: deque storage is
    // stable, and the handle is domain-local (see class comment), so
    // post-registration increments need no serialization.
    return storage.back();
}

U64
StatsTree::get(const std::string &path) const
{
    LockGuard g(registry_mu_);
    auto it = index.find(path);
    return (it == index.end()) ? 0 : storage[it->second].value();
}

bool
StatsTree::has(const std::string &path) const
{
    LockGuard g(registry_mu_);
    return index.count(path) != 0;
}

void
StatsTree::takeSnapshot(SimCycle cycle)
{
    LockGuard g(registry_mu_);
    StatsSnapshot snap;
    snap.cycle = cycle;
    snap.values.reserve(storage.size());
    for (const Counter &c : storage)
        snap.values.push_back(c.value());
    snapshots.push_back(std::move(snap));
}

std::vector<U64>
StatsTree::deltaSeriesLocked(const std::string &path) const
{
    std::vector<U64> out;
    auto it = index.find(path);
    if (it == index.end() || snapshots.size() < 2)
        return out;
    size_t idx = it->second;
    out.reserve(snapshots.size() - 1);
    for (size_t i = 1; i < snapshots.size(); i++) {
        // Counters registered after an early snapshot appear as 0 there.
        U64 prev = idx < snapshots[i - 1].values.size()
                       ? snapshots[i - 1].values[idx] : 0;
        U64 cur = idx < snapshots[i].values.size()
                      ? snapshots[i].values[idx] : 0;
        ptl_assert(cur >= prev);
        out.push_back(cur - prev);
    }
    return out;
}

std::vector<U64>
StatsTree::deltaSeries(const std::string &path) const
{
    LockGuard g(registry_mu_);
    return deltaSeriesLocked(path);
}

std::vector<double>
StatsTree::rateSeries(const std::string &numerator,
                      const std::string &denominator) const
{
    // One hold across both series so the snapshot set cannot change
    // between the two extractions (and no recursive lock).
    LockGuard g(registry_mu_);
    std::vector<U64> num = deltaSeriesLocked(numerator);
    std::vector<U64> den = deltaSeriesLocked(denominator);
    std::vector<double> out;
    out.reserve(num.size());
    for (size_t i = 0; i < num.size() && i < den.size(); i++)
        out.push_back(den[i] ? 100.0 * (double)num[i] / (double)den[i] : 0.0);
    return out;
}

std::vector<std::string>
StatsTree::paths() const
{
    LockGuard g(registry_mu_);
    return order;
}

std::string
StatsTree::renderTable(const std::string &prefix) const
{
    LockGuard g(registry_mu_);
    size_t width = 0;
    for (const auto &p : order)
        if (p.rfind(prefix, 0) == 0)
            width = std::max(width, p.size());
    std::ostringstream out;
    for (size_t i = 0; i < order.size(); i++) {
        if (order[i].rfind(prefix, 0) != 0)
            continue;
        out << order[i];
        out << std::string(width - order[i].size() + 2, ' ');
        out << storage[i].value() << '\n';
    }
    return out.str();
}

void
StatsTree::reset()
{
    LockGuard g(registry_mu_);
    for (Counter &c : storage)
        c = Counter();
    snapshots.clear();
}

}  // namespace ptl
