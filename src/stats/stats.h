/**
 * @file
 * PTLstats-style statistics tree with snapshot support.
 *
 * PTLsim exposes a hierarchical tree of event counters and a snapshot
 * facility: the full counter state can be checkpointed at any cycle, and
 * the PTLstats tools subtract snapshots to produce per-interval deltas
 * and the time-lapse plots of Figures 2 and 3. This module reproduces
 * that workflow: components register named counters (slash-separated
 * paths such as "dcache/misses" or "external/cycles_in_mode/kernel"),
 * the simulation takes a snapshot every N cycles, and analysis code
 * extracts per-interval series or renders summary tables.
 */

#ifndef PTLSIM_STATS_STATS_H_
#define PTLSIM_STATS_STATS_H_

#include "lib/simtime.h"

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "lib/bitops.h"
#include "lib/counter.h"
#include "lib/threadsafety.h"

namespace ptl {

/** One snapshot: the cycle it was taken at plus all counter values. */
struct StatsSnapshot
{
    SimCycle cycle;
    std::vector<U64> values;  ///< indexed by counter registration order
};

/**
 * The statistics tree. Counter handles returned by counter() remain
 * valid for the lifetime of the tree (stable storage).
 *
 * Concurrency contract (shard-readiness): the REGISTRATION side —
 * counter()/get()/has(), snapshots, series extraction, rendering —
 * is serialized on registry_mu_, because once the machine shards,
 * Domain threads register counters and the control thread snapshots
 * concurrently. The INCREMENT side is deliberately unlocked: a
 * Counter& handle is domain-local by construction (each Domain
 * increments only counters it registered under its own prefix), so
 * the hot `st_hits++` path stays a plain add. A counter shared
 * across Domains would need its own discipline — none exists today.
 */
class StatsTree
{
  public:
    StatsTree() = default;
    StatsTree(const StatsTree &) = delete;
    StatsTree &operator=(const StatsTree &) = delete;

    /** Find or create the counter at `path`. */
    Counter &counter(const std::string &path);

    /** Current value of the counter at `path` (0 if absent). */
    U64 get(const std::string &path) const;

    /** True if a counter at `path` has been registered. */
    bool has(const std::string &path) const;

    /** Record a snapshot of every counter, stamped with `cycle`. */
    void takeSnapshot(SimCycle cycle);

    size_t snapshotCount() const
    {
        LockGuard g(registry_mu_);
        return snapshots.size();
    }
    /** The lock covers the indexing; the returned reference is only
     *  stable until the next takeSnapshot()/reset() (vector growth
     *  relocates) — callers read snapshots between, not during,
     *  snapshot operations. */
    const StatsSnapshot &snapshot(size_t i) const
    {
        LockGuard g(registry_mu_);
        return snapshots[i];
    }

    /**
     * Per-interval deltas of one counter across consecutive snapshots
     * (PTLstats "subtract snapshots" operation). Result has
     * snapshotCount()-1 entries; empty if fewer than 2 snapshots.
     */
    std::vector<U64> deltaSeries(const std::string &path) const;

    /**
     * Per-interval ratio (numerator delta / denominator delta) as a
     * percentage; intervals with zero denominator yield 0.
     */
    std::vector<double> rateSeries(const std::string &numerator,
                                   const std::string &denominator) const;

    /** All registered counter paths in registration order. */
    std::vector<std::string> paths() const;

    /** Render all counters matching `prefix` as an aligned text table. */
    std::string renderTable(const std::string &prefix = "") const;

    /** Reset all counters to zero and drop snapshots. */
    void reset();

  private:
    /** deltaSeries body without the lock (rateSeries composes two
     *  series under one registry_mu_ hold). */
    std::vector<U64> deltaSeriesLocked(const std::string &path) const
        PTL_REQUIRES(registry_mu_);

    /** Guards registration order and snapshot state; mutable so
     *  const readers (get, paths, series) can serialize too. */
    mutable Mutex registry_mu_;
    std::deque<Counter> storage
        PTL_GUARDED_BY(registry_mu_);         ///< stable counter storage
    std::vector<std::string> order
        PTL_GUARDED_BY(registry_mu_);         ///< path per storage index
    std::map<std::string, size_t> index
        PTL_GUARDED_BY(registry_mu_);         ///< path -> storage index
    std::vector<StatsSnapshot> snapshots PTL_GUARDED_BY(registry_mu_);
};

}  // namespace ptl

#endif  // PTLSIM_STATS_STATS_H_
