#include "xasm/assembler.h"

#include <cstring>

namespace ptl {

namespace {

inline int rnum(R r) { return (int)r; }
inline int xnum(X x) { return (int)x; }

inline U8
scaleLog(U8 scale)
{
    switch (scale) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
    }
    panic("invalid SIB scale %d", scale);
}

}  // namespace

// ---------------------------------------------------------------------
// Labels, layout, fixups
// ---------------------------------------------------------------------

Label
Assembler::newLabel()
{
    Label l;
    l.id = (int)label_pos.size();
    label_pos.push_back(-1);
    return l;
}

void
Assembler::bind(Label l)
{
    ptl_assert(l.valid() && (size_t)l.id < label_pos.size());
    ptl_assert(label_pos[l.id] < 0);
    label_pos[l.id] = (S64)code.size();
}

U64
Assembler::labelVa(Label l) const
{
    ptl_assert(l.valid() && label_pos[l.id] >= 0);
    return base + (U64)label_pos[l.id];
}

void
Assembler::align(unsigned boundary, U8 fill)
{
    while ((base + code.size()) % boundary != 0)
        code.push_back(fill);
}

void
Assembler::dbs(const void *data, size_t n)
{
    const U8 *p = (const U8 *)data;
    code.insert(code.end(), p, p + n);
}

void
Assembler::dd(U32 v)
{
    for (int i = 0; i < 4; i++)
        code.push_back((U8)(v >> (i * 8)));
}

void
Assembler::dq(U64 v)
{
    for (int i = 0; i < 8; i++)
        code.push_back((U8)(v >> (i * 8)));
}

void
Assembler::dq(Label l)
{
    fixups.push_back({code.size(), l.id, true});
    dq(0);
}

void
Assembler::space(size_t n, U8 fill)
{
    code.insert(code.end(), n, fill);
}

std::vector<U8>
Assembler::finalize()
{
    ptl_assert(!finalized);
    finalized = true;
    for (const Fixup &f : fixups) {
        if (label_pos[f.label] < 0)
            fatal("assembler: unbound label %d", f.label);
        U64 target = base + (U64)label_pos[f.label];
        if (f.absolute64) {
            for (int i = 0; i < 8; i++)
                code[f.offset + i] = (U8)(target >> (i * 8));
        } else {
            S64 rel = (S64)target - (S64)(base + f.offset + 4);
            if (rel < INT32_MIN || rel > INT32_MAX)
                fatal("assembler: rel32 out of range");
            for (int i = 0; i < 4; i++)
                code[f.offset + i] = (U8)((U64)rel >> (i * 8));
        }
    }
    return code;
}

// ---------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------

void
Assembler::emitRex(bool w, int reg, int index, int base_reg, bool force)
{
    U8 rex = 0x40 | ((U8)w << 3) | (((reg >> 3) & 1) << 2)
             | (((index >> 3) & 1) << 1) | ((base_reg >> 3) & 1);
    if (rex != 0x40 || force)
        code.push_back(rex);
}

void
Assembler::emitModRmMem(int reg, const Mem &m)
{
    int b = rnum(m.base);
    bool need_sib = m.has_index || (b & 7) == 4;  // rsp/r12 base forces SIB
    U8 mod;
    bool disp8 = false, disp32 = false;
    if (m.disp == 0 && (b & 7) != 5) {            // rbp/r13 need a disp
        mod = 0;
    } else if (m.disp >= -128 && m.disp <= 127) {
        mod = 1;
        disp8 = true;
    } else {
        mod = 2;
        disp32 = true;
    }
    if (need_sib) {
        code.push_back((U8)((mod << 6) | ((reg & 7) << 3) | 4));
        int idx = m.has_index ? rnum(m.index) : 4;  // 4 = no index
        if (m.has_index)
            ptl_assert(m.index != R::rsp);
        code.push_back((U8)((scaleLog(m.has_index ? m.scale : 1) << 6)
                            | ((idx & 7) << 3) | (b & 7)));
    } else {
        code.push_back((U8)((mod << 6) | ((reg & 7) << 3) | (b & 7)));
    }
    if (disp8) {
        code.push_back((U8)(S8)m.disp);
    } else if (disp32) {
        dd((U32)m.disp);
    }
}

void
Assembler::emitModRmReg(int reg, int rm)
{
    code.push_back((U8)(0xC0 | ((reg & 7) << 3) | (rm & 7)));
}

void
Assembler::emitRel32(Label target)
{
    fixups.push_back({code.size(), target.id, false});
    dd(0);
}

void
Assembler::aluRR(U8 opcode, R dst, R src)
{
    emitRex(true, rnum(src), 0, rnum(dst));
    code.push_back(opcode);
    emitModRmReg(rnum(src), rnum(dst));
}

void
Assembler::aluRI(unsigned ext, R dst, S32 imm)
{
    emitRex(true, 0, 0, rnum(dst));
    if (imm >= -128 && imm <= 127) {
        code.push_back(0x83);
        emitModRmReg((int)ext, rnum(dst));
        code.push_back((U8)(S8)imm);
    } else {
        code.push_back(0x81);
        emitModRmReg((int)ext, rnum(dst));
        dd((U32)imm);
    }
}

void
Assembler::shiftImm(unsigned ext, R r, U8 count)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xC1);
    emitModRmReg((int)ext, rnum(r));
    code.push_back(count);
}

void
Assembler::shiftCl(unsigned ext, R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xD3);
    emitModRmReg((int)ext, rnum(r));
}

// ---------------------------------------------------------------------
// Moves
// ---------------------------------------------------------------------

void
Assembler::mov(R dst, R src)
{
    aluRR(0x89, dst, src);
}

void
Assembler::mov32(R dst, R src)
{
    emitRex(false, rnum(src), 0, rnum(dst));
    code.push_back(0x89);
    emitModRmReg(rnum(src), rnum(dst));
}

void
Assembler::mov(R dst, U64 imm)
{
    if (imm <= 0x7fffffffULL) {
        // mov r32, imm32 zero-extends: shortest form.
        emitRex(false, 0, 0, rnum(dst));
        code.push_back((U8)(0xB8 + (rnum(dst) & 7)));
        dd((U32)imm);
    } else if ((S64)imm >= INT32_MIN && (S64)imm < 0) {
        emitRex(true, 0, 0, rnum(dst));
        code.push_back(0xC7);
        emitModRmReg(0, rnum(dst));
        dd((U32)imm);
    } else if (imm <= 0xffffffffULL) {
        emitRex(false, 0, 0, rnum(dst));
        code.push_back((U8)(0xB8 + (rnum(dst) & 7)));
        dd((U32)imm);
    } else {
        movImm64(dst, imm);
    }
}

void
Assembler::movImm64(R dst, U64 imm)
{
    emitRex(true, 0, 0, rnum(dst));
    code.push_back((U8)(0xB8 + (rnum(dst) & 7)));
    dq(imm);
}

void
Assembler::movLabel(R dst, Label l)
{
    emitRex(true, 0, 0, rnum(dst));
    code.push_back((U8)(0xB8 + (rnum(dst) & 7)));
    fixups.push_back({code.size(), l.id, true});
    dq(0);
}

void
Assembler::mov(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x8B);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::mov(Mem dst, R src)
{
    emitRex(true, rnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base));
    code.push_back(0x89);
    emitModRmMem(rnum(src), dst);
}

void
Assembler::mov32(R dst, Mem src)
{
    emitRex(false, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x8B);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::mov32(Mem dst, R src)
{
    emitRex(false, rnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base));
    code.push_back(0x89);
    emitModRmMem(rnum(src), dst);
}

void
Assembler::mov8(R dst, Mem src)
{
    emitRex(false, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base), true);
    code.push_back(0x8A);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::mov8(Mem dst, R src)
{
    emitRex(false, rnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base), true);
    code.push_back(0x88);
    emitModRmMem(rnum(src), dst);
}

void
Assembler::mov16(Mem dst, R src)
{
    code.push_back(0x66);
    emitRex(false, rnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base));
    code.push_back(0x89);
    emitModRmMem(rnum(src), dst);
}

void
Assembler::movzx8(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0F);
    code.push_back(0xB6);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::movzx16(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0F);
    code.push_back(0xB7);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::movsx8(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0F);
    code.push_back(0xBE);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::movsx16(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0F);
    code.push_back(0xBF);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::movsxd(R dst, R src)
{
    emitRex(true, rnum(dst), 0, rnum(src));
    code.push_back(0x63);
    emitModRmReg(rnum(dst), rnum(src));
}

void
Assembler::movStoreImm32(Mem dst, S32 imm)
{
    emitRex(true, 0, dst.has_index ? rnum(dst.index) : 0, rnum(dst.base));
    code.push_back(0xC7);
    emitModRmMem(0, dst);
    dd((U32)imm);
}

void
Assembler::lea(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x8D);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::xchg(R reg, Mem m)
{
    emitRex(true, rnum(reg), m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0x87);
    emitModRmMem(rnum(reg), m);
}

// ---------------------------------------------------------------------
// Integer ALU
// ---------------------------------------------------------------------

void Assembler::add(R dst, R src) { aluRR(0x01, dst, src); }
void Assembler::add(R dst, S32 imm) { aluRI(0, dst, imm); }

void
Assembler::add(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x03);
    emitModRmMem(rnum(dst), src);
}

void
Assembler::add(Mem dst, R src)
{
    emitRex(true, rnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base));
    code.push_back(0x01);
    emitModRmMem(rnum(src), dst);
}

void Assembler::sub(R dst, R src) { aluRR(0x29, dst, src); }
void Assembler::sub(R dst, S32 imm) { aluRI(5, dst, imm); }

void
Assembler::sub(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x2B);
    emitModRmMem(rnum(dst), src);
}
void Assembler::adc(R dst, R src) { aluRR(0x11, dst, src); }
void Assembler::adc(R dst, S32 imm) { aluRI(2, dst, imm); }
void Assembler::sbb(R dst, R src) { aluRR(0x19, dst, src); }
void Assembler::sbb(R dst, S32 imm) { aluRI(3, dst, imm); }
void Assembler::and_(R dst, R src) { aluRR(0x21, dst, src); }
void Assembler::and_(R dst, S32 imm) { aluRI(4, dst, imm); }
void Assembler::or_(R dst, R src) { aluRR(0x09, dst, src); }
void Assembler::or_(R dst, S32 imm) { aluRI(1, dst, imm); }

void
Assembler::or_(R dst, Mem src)
{
    emitRex(true, rnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0B);
    emitModRmMem(rnum(dst), src);
}
void Assembler::xor_(R dst, R src) { aluRR(0x31, dst, src); }
void Assembler::xor_(R dst, S32 imm) { aluRI(6, dst, imm); }
void Assembler::cmp(R a, R b) { aluRR(0x39, a, b); }
void Assembler::cmp(R a, S32 imm) { aluRI(7, a, imm); }

void
Assembler::cmp8(Mem a, S8 imm)
{
    emitRex(false, 7, a.has_index ? rnum(a.index) : 0, rnum(a.base));
    code.push_back(0x80);
    emitModRmMem(7, a);
    code.push_back((U8)imm);
}

void
Assembler::cmp(R a, Mem b)
{
    emitRex(true, rnum(a), b.has_index ? rnum(b.index) : 0, rnum(b.base));
    code.push_back(0x3B);
    emitModRmMem(rnum(a), b);
}

void Assembler::test(R a, R b) { aluRR(0x85, a, b); }

void
Assembler::test(R a, S32 imm)
{
    emitRex(true, 0, 0, rnum(a));
    code.push_back(0xF7);
    emitModRmReg(0, rnum(a));
    dd((U32)imm);
}

void
Assembler::inc(R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xFF);
    emitModRmReg(0, rnum(r));
}

void
Assembler::dec(R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xFF);
    emitModRmReg(1, rnum(r));
}

void
Assembler::inc(Mem m)
{
    emitRex(true, 0, m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0xFF);
    emitModRmMem(0, m);
}

void
Assembler::neg(R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xF7);
    emitModRmReg(3, rnum(r));
}

void
Assembler::not_(R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0xF7);
    emitModRmReg(2, rnum(r));
}

void
Assembler::imul(R dst, R src)
{
    emitRex(true, rnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back(0xAF);
    emitModRmReg(rnum(dst), rnum(src));
}

void
Assembler::imul(R dst, R src, S32 imm)
{
    emitRex(true, rnum(dst), 0, rnum(src));
    if (imm >= -128 && imm <= 127) {
        code.push_back(0x6B);
        emitModRmReg(rnum(dst), rnum(src));
        code.push_back((U8)(S8)imm);
    } else {
        code.push_back(0x69);
        emitModRmReg(rnum(dst), rnum(src));
        dd((U32)imm);
    }
}

void
Assembler::mul(R src)
{
    emitRex(true, 0, 0, rnum(src));
    code.push_back(0xF7);
    emitModRmReg(4, rnum(src));
}

void
Assembler::div(R src)
{
    emitRex(true, 0, 0, rnum(src));
    code.push_back(0xF7);
    emitModRmReg(6, rnum(src));
}

void
Assembler::idiv(R src)
{
    emitRex(true, 0, 0, rnum(src));
    code.push_back(0xF7);
    emitModRmReg(7, rnum(src));
}

void Assembler::shl(R r, U8 count) { shiftImm(4, r, count); }
void Assembler::shr(R r, U8 count) { shiftImm(5, r, count); }
void Assembler::sar(R r, U8 count) { shiftImm(7, r, count); }
void Assembler::shlCl(R r) { shiftCl(4, r); }
void Assembler::shrCl(R r) { shiftCl(5, r); }
void Assembler::sarCl(R r) { shiftCl(7, r); }
void Assembler::rol(R r, U8 count) { shiftImm(0, r, count); }
void Assembler::ror(R r, U8 count) { shiftImm(1, r, count); }

void
Assembler::bsf(R dst, R src)
{
    emitRex(true, rnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back(0xBC);
    emitModRmReg(rnum(dst), rnum(src));
}

void
Assembler::bsr(R dst, R src)
{
    emitRex(true, rnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back(0xBD);
    emitModRmReg(rnum(dst), rnum(src));
}

void
Assembler::bswap(R r)
{
    emitRex(true, 0, 0, rnum(r));
    code.push_back(0x0F);
    code.push_back((U8)(0xC8 + (rnum(r) & 7)));
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

void
Assembler::jmp(Label target)
{
    code.push_back(0xE9);
    emitRel32(target);
}

void
Assembler::jmp(R target)
{
    emitRex(false, 0, 0, rnum(target));
    code.push_back(0xFF);
    emitModRmReg(4, rnum(target));
}

void
Assembler::jcc(CondCode cc, Label target)
{
    ptl_assert(cc <= COND_nle);
    code.push_back(0x0F);
    code.push_back((U8)(0x80 + cc));
    emitRel32(target);
}

void
Assembler::call(Label target)
{
    code.push_back(0xE8);
    emitRel32(target);
}

void
Assembler::call(R target)
{
    emitRex(false, 0, 0, rnum(target));
    code.push_back(0xFF);
    emitModRmReg(2, rnum(target));
}

void
Assembler::ret()
{
    code.push_back(0xC3);
}

void
Assembler::setcc(CondCode cc, R dst8)
{
    ptl_assert(cc <= COND_nle);
    emitRex(false, 0, 0, rnum(dst8), true);
    code.push_back(0x0F);
    code.push_back((U8)(0x90 + cc));
    emitModRmReg(0, rnum(dst8));
    // Zero-extend the byte into the full register.
    emitRex(true, rnum(dst8), 0, rnum(dst8));
    code.push_back(0x0F);
    code.push_back(0xB6);
    emitModRmReg(rnum(dst8), rnum(dst8));
}

void
Assembler::cmovcc(CondCode cc, R dst, R src)
{
    ptl_assert(cc <= COND_nle);
    emitRex(true, rnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back((U8)(0x40 + cc));
    emitModRmReg(rnum(dst), rnum(src));
}

// ---------------------------------------------------------------------
// Stack / string / atomics / system
// ---------------------------------------------------------------------

void
Assembler::push(R r)
{
    emitRex(false, 0, 0, rnum(r));
    code.push_back((U8)(0x50 + (rnum(r) & 7)));
}

void
Assembler::pop(R r)
{
    emitRex(false, 0, 0, rnum(r));
    code.push_back((U8)(0x58 + (rnum(r) & 7)));
}

void Assembler::pushfq() { code.push_back(0x9C); }
void Assembler::popfq() { code.push_back(0x9D); }

void
Assembler::repMovsb()
{
    code.push_back(0xF3);
    code.push_back(0xA4);
}

void
Assembler::repStosb()
{
    code.push_back(0xF3);
    code.push_back(0xAA);
}

void Assembler::cld() { code.push_back(0xFC); }

void
Assembler::lockXadd(Mem m, R src)
{
    code.push_back(0xF0);
    emitRex(true, rnum(src), m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0x0F);
    code.push_back(0xC1);
    emitModRmMem(rnum(src), m);
}

void
Assembler::lockCmpxchg(Mem m, R src)
{
    code.push_back(0xF0);
    emitRex(true, rnum(src), m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0x0F);
    code.push_back(0xB1);
    emitModRmMem(rnum(src), m);
}

void
Assembler::lockAdd(Mem m, R src)
{
    code.push_back(0xF0);
    emitRex(true, rnum(src), m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0x01);
    emitModRmMem(rnum(src), m);
}

void
Assembler::lockInc(Mem m)
{
    code.push_back(0xF0);
    emitRex(true, 0, m.has_index ? rnum(m.index) : 0, rnum(m.base));
    code.push_back(0xFF);
    emitModRmMem(0, m);
}

void Assembler::syscall() { code.push_back(0x0F); code.push_back(0x05); }
void Assembler::sysret() { code.push_back(0x0F); code.push_back(0x07); }
void Assembler::hypercall() { code.push_back(0x0F); code.push_back(0x34); }
void Assembler::ptlcall() { code.push_back(0x0F); code.push_back(0x37); }
void Assembler::hlt() { code.push_back(0xF4); }
void Assembler::rdtsc() { code.push_back(0x0F); code.push_back(0x31); }
void Assembler::cpuid() { code.push_back(0x0F); code.push_back(0xA2); }
void Assembler::iretq() { code.push_back(0x48); code.push_back(0xCF); }
void Assembler::cli() { code.push_back(0xFA); }
void Assembler::sti() { code.push_back(0xFB); }
void Assembler::nop() { code.push_back(0x90); }
void Assembler::pause() { code.push_back(0xF3); code.push_back(0x90); }
void Assembler::ud2() { code.push_back(0x0F); code.push_back(0x0B); }

// ---------------------------------------------------------------------
// Scalar SSE / x87
// ---------------------------------------------------------------------

void
Assembler::movsd(X dst, Mem src)
{
    code.push_back(0xF2);
    emitRex(false, xnum(dst), src.has_index ? rnum(src.index) : 0,
            rnum(src.base));
    code.push_back(0x0F);
    code.push_back(0x10);
    emitModRmMem(xnum(dst), src);
}

void
Assembler::movsd(Mem dst, X src)
{
    code.push_back(0xF2);
    emitRex(false, xnum(src), dst.has_index ? rnum(dst.index) : 0,
            rnum(dst.base));
    code.push_back(0x0F);
    code.push_back(0x11);
    emitModRmMem(xnum(src), dst);
}

void
Assembler::movqXR(X dst, R src)
{
    code.push_back(0x66);
    emitRex(true, xnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back(0x6E);
    emitModRmReg(xnum(dst), rnum(src));
}

void
Assembler::movqRX(R dst, X src)
{
    code.push_back(0x66);
    emitRex(true, xnum(src), 0, rnum(dst));
    code.push_back(0x0F);
    code.push_back(0x7E);
    emitModRmReg(xnum(src), rnum(dst));
}

namespace {

void
sseArith(std::vector<U8> &code, U8 opcode, X dst, X src,
         void (*rex)(std::vector<U8> &, int, int))
{
    code.push_back(0xF2);
    rex(code, xnum(dst), xnum(src));
    code.push_back(0x0F);
    code.push_back(opcode);
    code.push_back((U8)(0xC0 | ((xnum(dst) & 7) << 3) | (xnum(src) & 7)));
}

void
sseRex(std::vector<U8> &code, int reg, int rm)
{
    U8 rex = 0x40 | (((reg >> 3) & 1) << 2) | ((rm >> 3) & 1);
    if (rex != 0x40)
        code.push_back(rex);
}

}  // namespace

void Assembler::addsd(X dst, X src) { sseArith(code, 0x58, dst, src, sseRex); }
void Assembler::subsd(X dst, X src) { sseArith(code, 0x5C, dst, src, sseRex); }
void Assembler::mulsd(X dst, X src) { sseArith(code, 0x59, dst, src, sseRex); }
void Assembler::divsd(X dst, X src) { sseArith(code, 0x5E, dst, src, sseRex); }
void Assembler::sqrtsd(X dst, X src) { sseArith(code, 0x51, dst, src, sseRex); }

void
Assembler::comisd(X a, X b)
{
    code.push_back(0x66);
    sseRex(code, xnum(a), xnum(b));
    code.push_back(0x0F);
    code.push_back(0x2F);
    code.push_back((U8)(0xC0 | ((xnum(a) & 7) << 3) | (xnum(b) & 7)));
}

void
Assembler::cvtsi2sd(X dst, R src)
{
    code.push_back(0xF2);
    emitRex(true, xnum(dst), 0, rnum(src));
    code.push_back(0x0F);
    code.push_back(0x2A);
    emitModRmReg(xnum(dst), rnum(src));
}

void
Assembler::cvttsd2si(R dst, X src)
{
    code.push_back(0xF2);
    emitRex(true, rnum(dst), 0, xnum(src));
    code.push_back(0x0F);
    code.push_back(0x2C);
    emitModRmReg(rnum(dst), xnum(src));
}

void
Assembler::fldQ(Mem src)
{
    emitRex(false, 0, src.has_index ? rnum(src.index) : 0, rnum(src.base));
    code.push_back(0xDD);
    emitModRmMem(0, src);
}

void
Assembler::fstpQ(Mem dst)
{
    emitRex(false, 3, dst.has_index ? rnum(dst.index) : 0, rnum(dst.base));
    code.push_back(0xDD);
    emitModRmMem(3, dst);
}

void
Assembler::faddp()
{
    code.push_back(0xDE);
    code.push_back(0xC1);
}

void
Assembler::fmulp()
{
    code.push_back(0xDE);
    code.push_back(0xC9);
}

}  // namespace ptl
