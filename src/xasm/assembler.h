/**
 * @file
 * An x86-64 subset assembler.
 *
 * The paper's guest software (a SuSE Linux image plus rsync/ssh) was
 * built with a normal GCC toolchain. This environment has no guest
 * toolchain, so the repository carries its own assembler: guest kernels
 * and workloads are written against this API and assembled into *real
 * x86-64 machine code bytes*, which then flow through the simulator's
 * full decode -> uop -> basic-block-cache path exactly like compiler
 * output would (variable-length instructions, REX prefixes, ModRM/SIB
 * forms, page-crossing instructions, locked RMW ops, rep string ops).
 *
 * The supported subset is the integer + scalar-SSE + minimal-x87 core
 * that real compiled code is made of; the decoder in src/decode mirrors
 * it (and the decoder/assembler pair is round-trip tested).
 */

#ifndef PTLSIM_XASM_ASSEMBLER_H_
#define PTLSIM_XASM_ASSEMBLER_H_

#include <map>
#include <string>
#include <vector>

#include "lib/bitops.h"
#include "lib/logging.h"
#include "uop/uop.h"   // CondCode

namespace ptl {

/** General-purpose registers, in x86 encoding order. */
enum class R : U8 {
    rax, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
    r8, r9, r10, r11, r12, r13, r14, r15,
};

/** XMM registers. */
enum class X : U8 {
    xmm0, xmm1, xmm2, xmm3, xmm4, xmm5, xmm6, xmm7,
    xmm8, xmm9, xmm10, xmm11, xmm12, xmm13, xmm14, xmm15,
};

/** Memory operand: [base + index*scale + disp]. */
struct Mem
{
    R base = R::rax;
    bool has_index = false;
    R index = R::rax;
    U8 scale = 1;        ///< 1, 2, 4 or 8
    S32 disp = 0;

    static Mem
    at(R base, S32 disp = 0)
    {
        Mem m;
        m.base = base;
        m.disp = disp;
        return m;
    }

    static Mem
    idx(R base, R index, U8 scale = 1, S32 disp = 0)
    {
        Mem m;
        m.base = base;
        m.has_index = true;
        m.index = index;
        m.scale = scale;
        m.disp = disp;
        return m;
    }
};

/** Operand width for explicitly sized memory forms. */
enum class W : U8 { b = 1, w = 2, d = 4, q = 8 };

/** Opaque label handle. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * The assembler. Instructions append machine code at the current
 * position; finalize() resolves label fixups and returns the image.
 */
class Assembler
{
  public:
    /** @param base_va guest virtual address the image will be loaded at */
    explicit Assembler(U64 base_va) : base(base_va) {}

    // ---- labels and layout ----
    Label newLabel();
    Label label() { Label l = newLabel(); bind(l); return l; }
    void bind(Label l);
    U64 labelVa(Label l) const;        ///< valid only after bind
    U64 here() const { return base + code.size(); }
    void align(unsigned boundary, U8 fill = 0x90);
    void db(U8 byte) { code.push_back(byte); }
    void dbs(const void *data, size_t n);
    void dd(U32 v);
    void dq(U64 v);
    void dq(Label l);                  ///< 64-bit absolute, fixed up later
    void space(size_t n, U8 fill = 0); ///< reserve n bytes

    // ---- moves ----
    void mov(R dst, R src);                 // 64-bit
    void mov32(R dst, R src);
    void mov(R dst, U64 imm);               // movabs or shorter form
    void movImm64(R dst, U64 imm);          // always 10-byte movabs
    void movLabel(R dst, Label l);          // movabs of label address
    void mov(R dst, Mem src);               // 64-bit load
    void mov(Mem dst, R src);               // 64-bit store
    void mov32(R dst, Mem src);             // 32-bit load (zero-extends)
    void mov32(Mem dst, R src);
    void mov8(R dst, Mem src);              // 8-bit load into low byte
    void mov8(Mem dst, R src);
    void mov16(Mem dst, R src);
    void movzx8(R dst, Mem src);
    void movzx16(R dst, Mem src);
    void movsx8(R dst, Mem src);
    void movsx16(R dst, Mem src);
    void movsxd(R dst, R src);              // 32 -> 64 sign extend
    void movStoreImm32(Mem dst, S32 imm);   // mov qword [m], imm32 (sext)
    void lea(R dst, Mem src);
    void xchg(R reg, Mem m);                // implicitly locked

    // ---- integer ALU ----
    void add(R dst, R src);
    void add(R dst, S32 imm);
    void add(R dst, Mem src);
    void add(Mem dst, R src);
    void sub(R dst, R src);
    void sub(R dst, S32 imm);
    void sub(R dst, Mem src);
    void adc(R dst, R src);
    void adc(R dst, S32 imm);
    void sbb(R dst, R src);
    void sbb(R dst, S32 imm);
    void and_(R dst, R src);
    void and_(R dst, S32 imm);
    void or_(R dst, R src);
    void or_(R dst, S32 imm);
    void or_(R dst, Mem src);
    void xor_(R dst, R src);
    void xor_(R dst, S32 imm);
    void cmp(R a, R b);
    void cmp(R a, S32 imm);
    void cmp8(Mem a, S8 imm);
    void cmp(R a, Mem b);
    void test(R a, R b);
    void test(R a, S32 imm);
    void inc(R r);
    void dec(R r);
    void inc(Mem m);
    void neg(R r);
    void not_(R r);
    void imul(R dst, R src);                // 0F AF
    void imul(R dst, R src, S32 imm);       // 69/6B
    void mul(R src);                        // rdx:rax = rax * src
    void div(R src);                        // rax, rdx = rdx:rax / src
    void idiv(R src);
    void shl(R r, U8 count);
    void shr(R r, U8 count);
    void sar(R r, U8 count);
    void shlCl(R r);
    void shrCl(R r);
    void sarCl(R r);
    void rol(R r, U8 count);
    void ror(R r, U8 count);
    void bsf(R dst, R src);
    void bsr(R dst, R src);
    void bswap(R r);

    // ---- control flow ----
    void jmp(Label target);
    void jmp(R target);
    void jcc(CondCode cc, Label target);
    void call(Label target);
    void call(R target);
    void ret();
    void setcc(CondCode cc, R dst8);        // also zeroes upper bits first
    void cmovcc(CondCode cc, R dst, R src);

    // ---- stack ----
    void push(R r);
    void pop(R r);
    void pushfq();
    void popfq();

    // ---- string ops ----
    void repMovsb();                        // F3 A4
    void repStosb();                        // F3 AA
    void cld();

    // ---- atomics ----
    void lockXadd(Mem m, R src);            // F0 0F C1
    void lockCmpxchg(Mem m, R src);         // F0 0F B1 (rax implicit)
    void lockAdd(Mem m, R src);
    void lockInc(Mem m);

    // ---- system ----
    void syscall();                         // 0F 05
    void sysret();                          // 0F 07 (kernel->user return)
    void hypercall();                       // 0F 34 (paravirtual gate)
    void ptlcall();                         // 0F 37 (simulator breakout)
    void hlt();
    void rdtsc();
    void cpuid();
    void iretq();
    void cli();
    void sti();
    void nop();
    void pause();
    void ud2();                             // 0F 0B guaranteed #UD

    // ---- scalar double SSE ----
    void movsd(X dst, Mem src);
    void movsd(Mem dst, X src);
    void movqXR(X dst, R src);
    void movqRX(R dst, X src);
    void addsd(X dst, X src);
    void subsd(X dst, X src);
    void mulsd(X dst, X src);
    void divsd(X dst, X src);
    void sqrtsd(X dst, X src);
    void comisd(X a, X b);
    void cvtsi2sd(X dst, R src);
    void cvttsd2si(R dst, X src);

    // ---- minimal x87 ----
    void fldQ(Mem src);                     // DD /0
    void fstpQ(Mem dst);                    // DD /3
    void faddp();                           // DE C1
    void fmulp();                           // DE C9

    /** Resolve all fixups; fatal() if any label is unbound. */
    std::vector<U8> finalize();

    U64 baseVa() const { return base; }
    size_t size() const { return code.size(); }

  private:
    struct Fixup
    {
        size_t offset;      ///< position of the field in `code`
        int label;
        bool absolute64;    ///< else rel32 relative to end of field
    };

    void emitRex(bool w, int reg, int index, int base_reg, bool force = false);
    void emitModRmMem(int reg, const Mem &m);
    void emitModRmReg(int reg, int rm);
    void emitRel32(Label target);
    void aluRR(U8 opcode, R dst, R src);               // MR form
    void aluRI(unsigned ext, R dst, S32 imm);
    void shiftImm(unsigned ext, R r, U8 count);
    void shiftCl(unsigned ext, R r);

    U64 base;
    std::vector<U8> code;
    std::vector<S64> label_pos;   ///< -1 while unbound
    std::vector<Fixup> fixups;
    bool finalized = false;
};

}  // namespace ptl

#endif  // PTLSIM_XASM_ASSEMBLER_H_
