/**
 * Memory-backend comparison: the same streaming workload on the
 * K8-configured out-of-order core under each main-memory timing model,
 * every one selected purely from the versioned `memory` config JSON —
 * no code changes between runs:
 *
 *   - "fixed":  the flat 112-cycle latency (the pre-refactor default)
 *   - "banked": rank/bank/row-buffer DRAM (open rows reward streams)
 *   - "hybrid": an eDRAM cache fronting PCM with deferred writes
 *
 * The guest walks a 1 MB buffer twice with a 64-byte stride, and each
 * address depends on the previous load (a pointer-chase idiom), so the
 * run is latency-bound: one miss outstanding at a time, and the
 * backend's per-access schedule shows directly in the completion cycle
 * count. Sequential lines stay in the open DRAM row, so the banked
 * model's 40-cycle row hits beat the flat 112-cycle latency, while the
 * hybrid model's working set overflows its eDRAM and exposes PCM reads.
 * The banked run also prints its row-buffer hit/conflict census.
 *
 *   $ ./memory_backends
 */

#include <cstdio>

#include "core/coreapi.h"
#include "core/seqcore.h"
#include "xasm/assembler.h"

using namespace ptl;

namespace {

class BareSystem : public SystemInterface
{
  public:
    explicit BareSystem(BasicBlockCache &bbs) : bbcache(&bbs) {}
    U64 hypercall(Context &, U64, U64, U64, U64) override { return 0; }
    U64 readTsc(const Context &) override { return 0; }
    void vcpuBlock(Context &ctx) override { ctx.running = false; }
    U64 ptlcall(Context &, U64, U64, U64) override { return 0; }
    void notifyCodeWrite(Pfn mfn) override { bbcache->invalidateMfn(mfn); }
    bool isCodeMfn(Pfn mfn) const override
    {
        return bbcache->isCodeMfn(mfn);
    }

  private:
    BasicBlockCache *bbcache;
};

constexpr U64 BUF_BASE = 0x600000;
constexpr U64 BUF_BYTES = 1 << 20;

/** Run the stride workload under one memory JSON; returns cycles. */
U64
runWorkload(const char *label, const char *memory_json)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(memory_json);
    cfg.validate();

    PhysMem mem(32 << 20, 1, true);
    AddressSpace aspace(mem);
    StatsTree stats;
    BasicBlockCache bbcache(stats.counter("bbcache/hits"),
                            stats.counter("bbcache/misses"),
                            stats.counter("bbcache/smc_invalidations"));
    BareSystem sys(bbcache);
    InterlockController interlocks(stats);

    Pfn cr3 = aspace.createRoot();
    aspace.mapRange(cr3, GuestVirt(0x400000), 16 * PAGE_SIZE, Pte::RW | Pte::US);
    aspace.mapRange(cr3, GuestVirt(BUF_BASE), BUF_BYTES + PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);
    aspace.mapRange(cr3, GuestVirt(0x7F0000), 16 * PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);

    // Two passes over the buffer, one line per iteration; the next
    // address depends on the loaded value (masked to zero, but the
    // dataflow edge is real), so misses serialize and every backend
    // pays its full per-access latency. Pass one is cold, pass two
    // mostly hits the on-chip caches.
    Assembler a(0x400000);
    a.mov(R::r8, 2);
    Label pass = a.label();
    a.movImm64(R::rbx, BUF_BASE);
    a.mov(R::rcx, BUF_BYTES / 64);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rsi, Mem::at(R::rbx));
    a.add(R::rax, R::rsi);
    a.and_(R::rsi, 0);        // keep the chain, lose the value
    a.add(R::rbx, R::rsi);    // address of the next load waits on it
    a.add(R::rbx, 64);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.dec(R::r8);
    a.jcc(COND_ne, pass);
    a.hlt();
    std::vector<U8> image = a.finalize();

    Context ctx;
    ctx.cr3 = cr3;
    ctx.kernel_mode = true;
    ctx.rip = GuestVirt(0x400000);
    ctx.regs[REG_rsp] = 0x7FF000;
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc =
            guestTranslate(aspace, ctx, GuestVirt(0x400000 + i),
                           MemAccess::Write);
        mem.writeBytes(acc.paddr, &image[i], 1);
    }

    CoreBuildParams params;
    params.config = &cfg;
    params.contexts = {&ctx};
    params.aspace = &aspace;
    params.bbcache = &bbcache;
    params.sys = &sys;
    params.stats = &stats;
    params.prefix = "core0/";
    params.interlocks = &interlocks;
    auto hierarchy = std::make_unique<MemoryHierarchy>(cfg, aspace, stats,
                                                       params.prefix);
    params.hierarchy = hierarchy.get();
    auto core = createCoreModel("ooo", params);

    U64 cycle = 0;
    while (!core->allIdle() && cycle < 100'000'000)
        core->cycle(SimCycle(cycle++));

    std::printf("%-8s %9llu cycles  (IPC %.3f, %llu line fills)\n",
                label, (unsigned long long)cycle,
                (double)stats.get("core0/commit/insns") / (double)cycle,
                (unsigned long long)stats.get("core0/mem/accesses"));
    if (stats.get("core0/membackend/row_hits")
        + stats.get("core0/membackend/row_conflicts") > 0) {
        std::printf("         row buffer: %llu hits, %llu conflicts, "
                    "%llu busy waits\n",
                    (unsigned long long)
                        stats.get("core0/membackend/row_hits"),
                    (unsigned long long)
                        stats.get("core0/membackend/row_conflicts"),
                    (unsigned long long)
                        stats.get("core0/membackend/busy_waits"));
    }
    if (stats.get("core0/membackend/pcm_reads") > 0) {
        std::printf("         eDRAM: %llu hits / %llu misses; PCM: "
                    "%llu reads, %llu writes (%llu deferred drains)\n",
                    (unsigned long long)
                        stats.get("core0/membackend/edram_hits"),
                    (unsigned long long)
                        stats.get("core0/membackend/edram_misses"),
                    (unsigned long long)
                        stats.get("core0/membackend/pcm_reads"),
                    (unsigned long long)
                        stats.get("core0/membackend/pcm_writes"),
                    (unsigned long long)
                        stats.get("core0/membackend/deferred_drained"));
    }
    return cycle;
}

}  // namespace

int
main()
{
    std::printf("1 MB stride-64 stream, two passes, K8 OoO core:\n\n");
    U64 fixed = runWorkload("fixed", R"({"version": "1",
                                         "backend": "fixed"})");
    U64 banked = runWorkload("banked", R"({"version": "1",
                                           "backend": "banked",
                                           "dram": {"banks": "8",
                                                    "row_bytes": "2048"}})");
    U64 hybrid = runWorkload("hybrid", R"({"version": "1",
                                           "backend": "hybrid",
                                           "edram": {"size": "262144"},
                                           "l1d": {"repl": "tree-plru"}})");
    std::printf("\nbanked vs fixed: %+.1f%%   hybrid vs fixed: %+.1f%%\n",
                100.0 * ((double)banked - (double)fixed) / (double)fixed,
                100.0 * ((double)hybrid - (double)fixed) / (double)fixed);
    // A sequential stream should profit from open DRAM rows.
    return banked < fixed ? 0 : 1;
}
