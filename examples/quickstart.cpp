/**
 * Quickstart: assemble a guest program with the in-tree x86-64
 * assembler, run it on the K8-configured out-of-order core, and read
 * the statistics tree — the minimal end-to-end use of the library.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/coreapi.h"
#include "verify/verify.h"
#include "core/seqcore.h"
#include "xasm/assembler.h"

using namespace ptl;

namespace {

/** Minimal bare-metal system interface: hlt just stops the VCPU. */
class BareSystem : public SystemInterface
{
  public:
    explicit BareSystem(BasicBlockCache &bbs) : bbcache(&bbs) {}
    U64 hypercall(Context &, U64, U64, U64, U64) override { return 0; }
    U64 readTsc(const Context &) override { return 0; }
    void vcpuBlock(Context &ctx) override { ctx.running = false; }
    U64 ptlcall(Context &, U64, U64, U64) override { return 0; }
    void notifyCodeWrite(Pfn mfn) override { bbcache->invalidateMfn(mfn); }
    bool isCodeMfn(Pfn mfn) const override
    {
        return bbcache->isCodeMfn(mfn);
    }

  private:
    BasicBlockCache *bbcache;
};

}  // namespace

int
main()
{
    // 1. A guest machine: physical memory, page tables, decoded-code
    //    cache, statistics.
    PhysMem mem(32 << 20, /*seed=*/1, /*shuffle=*/true);
    AddressSpace aspace(mem);
    StatsTree stats;
    BasicBlockCache bbcache(stats.counter("bbcache/hits"),
                            stats.counter("bbcache/misses"),
                            stats.counter("bbcache/smc_invalidations"));
    BareSystem sys(bbcache);
    InterlockController interlocks(stats);

    // 2. Map code, data and a stack; 4-level x86-64 page tables are
    //    built for real in guest memory.
    Pfn cr3 = aspace.createRoot();
    aspace.mapRange(cr3, GuestVirt(0x400000), 16 * PAGE_SIZE, Pte::RW | Pte::US);
    aspace.mapRange(cr3, GuestVirt(0x600000), 16 * PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);
    aspace.mapRange(cr3, GuestVirt(0x7F0000), 16 * PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);

    // 3. Assemble a program: sum of squares of 1..100, kept in memory.
    Assembler a(0x400000);
    a.movImm64(R::rbx, 0x600000);
    a.mov(R::rcx, 100);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.imul(R::rdx, R::rcx);
    a.add(R::rax, R::rdx);
    a.mov(Mem::at(R::rbx), R::rax);      // running total in memory
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    std::vector<U8> image = a.finalize();

    Context ctx;
    ctx.cr3 = cr3;
    ctx.kernel_mode = true;              // bare metal: allow hlt
    ctx.rip = GuestVirt(0x400000);
    ctx.regs[REG_rsp] = 0x7FF000;
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc =
            guestTranslate(aspace, ctx, GuestVirt(0x400000 + i),
                           MemAccess::Write);
        mem.writeBytes(acc.paddr, &image[i], 1);
    }

    // 4. Instantiate the K8-configured out-of-order core model from
    //    the plug-in registry and clock it until the program halts.
    SimConfig cfg = SimConfig::preset("k8");
    CoreBuildParams params;
    params.config = &cfg;
    params.contexts = {&ctx};
    params.aspace = &aspace;
    params.bbcache = &bbcache;
    params.sys = &sys;
    params.stats = &stats;
    params.prefix = "core0/";
    params.interlocks = &interlocks;
    auto hierarchy = std::make_unique<MemoryHierarchy>(cfg, aspace, stats,
                                                       params.prefix);
    params.hierarchy = hierarchy.get();
    auto core = createCoreModel("ooo", params);
    core->attachAuditor(makeVerifyAuditor(cfg, stats, params.prefix));

    U64 cycle = 0;
    while (!core->allIdle() && cycle < 1'000'000)
        core->cycle(SimCycle(cycle++));

    // 5. Results: architectural state + the PTLstats counter tree.
    U64 result = 0;
    guestRead(aspace, ctx, GuestVirt(0x600000), 8, result);
    std::printf("sum of squares 1..100 = %llu (expected 338350)\n",
                (unsigned long long)result);
    std::printf("rax = %llu\n", (unsigned long long)ctx.regs[REG_rax]);
    std::printf("\nsimulated %llu cycles, IPC %.2f\n",
                (unsigned long long)cycle,
                (double)stats.get("core0/commit/insns") / (double)cycle);
    std::printf("\nselected statistics:\n%s",
                stats.renderTable("core0/commit/").c_str());
    std::printf("%s", stats.renderTable("core0/branches/").c_str());
    std::printf("%s", stats.renderTable("bbcache/").c_str());
    return result == 338350 ? 0 : 1;
}
