/**
 * Full-system example: boot the paravirtual guest kernel and run the
 * paper's rsync-over-ssh client/server benchmark (Section 5) on the
 * out-of-order core, then print the phase timeline and the key
 * statistics PTLstats would report.
 *
 *   $ ./rsync_fullsystem [--files N]
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "workload/k8preset.h"

using namespace ptl;

int
main(int argc, char **argv)
{
    FileSetParams files;
    files.file_count = 40;
    files.mean_file_bytes = 6144;
    for (int i = 1; i + 1 < argc; i++) {
        if (std::strcmp(argv[i], "--files") == 0)
            files.file_count = std::atoi(argv[i + 1]);
    }

    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.snapshot_interval = 1'000'000;
    std::printf("building the domain: %d files per group...\n",
                files.file_count);
    RsyncBench bench(cfg, files);
    std::printf("file set: old %llu bytes, new %llu bytes\n",
                (unsigned long long)bench.fileSet().total_old_bytes,
                (unsigned long long)bench.fileSet().total_new_bytes);

    std::printf("booting and running (K8-configured OOO core)...\n");
    RsyncBench::Result r = bench.run();
    std::printf("domain shut down: %s; mismatched files: %" PRIu64 "\n",
                r.shutdown ? "yes" : "NO", r.mismatches);

    Machine &m = bench.machine();
    StatsTree &s = m.stats();
    std::printf("\nphase timeline (ptlcall markers):\n");
    const char *names[] = {"", "", "", "", "", "", "(g) shutdown", "",
                           "", "", "(a) startup/page-in",
                           "(b) ssh connect", "(c) client file list",
                           "(d) server file list", "(e) compute deltas",
                           "(f) transmit data"};
    for (const PtlMarker &mark : m.hypervisor().markers()) {
        const char *name =
            (mark.id < 16) ? names[mark.id] : "user marker";
        std::printf("  cycle %12" PRIu64 "  %s\n", mark.cycle, name);
    }

    U64 user = s.get("external/cycles_in_mode/user");
    U64 kernel = s.get("external/cycles_in_mode/kernel");
    U64 idle = s.get("external/cycles_in_mode/idle");
    U64 total = user + kernel + idle;
    std::printf("\ncycles: %" PRIu64 " total — user %.1f%%, kernel "
                "%.1f%%, idle %.1f%%\n",
                total, 100.0 * user / total, 100.0 * kernel / total,
                100.0 * idle / total);
    std::printf("x86 insns committed: %" PRIu64 " (IPC %.2f)\n",
                s.get("core0/commit/insns"),
                (double)s.get("core0/commit/insns") / total);
    std::printf("uops: %" PRIu64 "  loads: %" PRIu64 "  stores: %"
                PRIu64 "\n",
                s.get("core0/commit/uops"), s.get("core0/commit/loads"),
                s.get("core0/commit/stores"));
    std::printf("branches: %" PRIu64 " cond, %.2f%% mispredicted\n",
                s.get("core0/branches/cond"),
                100.0 * s.get("core0/branches/mispredicted")
                    / std::max<U64>(1, s.get("core0/branches/cond")));
    std::printf("L1D: %" PRIu64 " accesses, %.2f%% miss; DTLB: %.3f%% "
                "miss (%" PRIu64 " walks)\n",
                s.get("core0/dcache/accesses"),
                100.0 * s.get("core0/dcache/misses")
                    / std::max<U64>(1, s.get("core0/dcache/accesses")),
                100.0 * s.get("core0/dtlb/misses")
                    / std::max<U64>(1, s.get("core0/dtlb/accesses")),
                s.get("core0/walker/walks"));
    std::printf("syscall path: %" PRIu64 " assists; events delivered: %"
                PRIu64 "; CR3 switches: %" PRIu64 "\n",
                s.get("core0/commit/assists"),
                s.get("core0/commit/events_delivered"),
                s.get("hypervisor/cr3_switches"));
    std::printf("network: %" PRIu64 " packets, %" PRIu64 " bytes "
                "(vs %llu bytes of file data)\n",
                s.get("net/packets"), s.get("net/bytes"),
                (unsigned long long)bench.fileSet().total_new_bytes);
    std::printf("snapshots taken: %zu\n", s.snapshotCount());
    return (r.shutdown && r.mismatches == 0) ? 0 : 1;
}
