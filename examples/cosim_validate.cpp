/**
 * Native-mode co-simulation example (Sections 2.3 / 4.1):
 *
 *  1. run a deterministic machine purely in simulation mode, purely in
 *     native mode, and ping-ponging between them — final architectural
 *     state and guest memory must be identical (seamless transitions);
 *  2. drive a PTLsim-style command list ("-run -stopinsns ... :
 *     -native") against the machine;
 *  3. use the self-debugging divergence binary search to locate a
 *     deliberately-injected one-byte guest code difference.
 *
 *   $ ./cosim_validate
 */

#include <cinttypes>
#include <cstdio>

#include "native/cosim.h"
#include "native/triggers.h"
#include "xasm/assembler.h"

using namespace ptl;

namespace {

std::unique_ptr<Machine>
buildMachine(U8 patched_imm)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.guest_mem_bytes = 16 << 20;
    auto m = std::make_unique<Machine>(cfg);
    AddressSpace &as = m->addressSpace();
    Pfn cr3 = as.createRoot();
    as.mapRange(cr3, GuestVirt(0x400000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US);
    as.mapRange(cr3, GuestVirt(0x600000), 64 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);
    as.mapRange(cr3, GuestVirt(0x7F0000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);

    Assembler a(0x400000);
    a.mov(R::rax, 1);            // <- the immediate we may patch
    a.mov(R::rcx, 300);
    Label top = a.label();
    a.imul(R::rax, R::rax, 2654435761U);
    a.add(R::rax, 12345);
    a.movImm64(R::rbx, 0x600000);
    a.mov(R::rdx, R::rax);
    a.and_(R::rdx, 0x3FF8);
    a.mov(Mem::idx(R::rbx, R::rdx, 1), R::rax);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    std::vector<U8> image = a.finalize();
    image[1] = patched_imm;      // first byte of "mov rax, imm32"

    Context &ctx = m->vcpu(0);
    ctx.cr3 = cr3;
    ctx.kernel_mode = true;
    ctx.rip = GuestVirt(0x400000);
    ctx.regs[REG_rsp] = 0x7FF000;
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc =
            guestTranslate(as, ctx, GuestVirt(0x400000 + i),
                           MemAccess::Write);
        m->physMem().writeBytes(acc.paddr, &image[i], 1);
    }
    m->finalizeCores();
    return m;
}

}  // namespace

int
main()
{
    // 1. Seamless mode switching.
    std::printf("== mode-switch validation ==\n");
    MachineFactory factory = [] { return buildMachine(1); };
    CosimResult vs_sim =
        validateModeSwitching(factory, Machine::Mode::Simulation, 500);
    std::printf("alternating vs pure-simulation: %s (%" PRIu64
                " switches, %" PRIu64 " insns)%s%s\n",
                vs_sim.equal ? "IDENTICAL" : "DIVERGED", vs_sim.switches,
                vs_sim.insns, vs_sim.equal ? "" : " — ",
                vs_sim.diff.c_str());
    CosimResult vs_native =
        validateModeSwitching(factory, Machine::Mode::Native, 777);
    std::printf("alternating vs pure-native:     %s (%" PRIu64
                " switches)\n",
                vs_native.equal ? "IDENTICAL" : "DIVERGED",
                vs_native.switches);

    // 2. Command lists.
    std::printf("\n== command list ==\n");
    auto m = buildMachine(1);
    CommandRunner runner(*m);
    runner.run("-core ooo -run -stopinsns 200 : -native -stopinsns 800 "
               ": -run");
    std::printf("'-run -stopinsns 200 : -native -stopinsns 800 : -run' "
                "-> %" PRIu64 " insns, %" PRIu64 " mode switches, "
                "halted=%s\n",
                m->totalCommittedInsns(),
                m->stats().get("external/mode_switches"),
                m->vcpu(0).running ? "no" : "yes");

    // 3. Divergence binary search (self-debugging).
    std::printf("\n== divergence search ==\n");
    MachineFactory good = [] { return buildMachine(1); };
    MachineFactory patched = [] { return buildMachine(2); };
    U64 same = findDivergenceInsn(good, good, 1024);
    std::printf("identical configs: %s\n",
                same == ~0ULL ? "no divergence (as expected)"
                              : "UNEXPECTED divergence");
    U64 where = findDivergenceInsn(good, patched, 1024);
    std::printf("one patched immediate: first divergence at committed "
                "instruction %" PRIu64 " (expected 1)\n", where);

    bool ok = vs_sim.equal && vs_native.equal && same == ~0ULL
              && where == 1;
    std::printf("\n%s\n", ok ? "CO-SIMULATION: ALL CHECKS PASS"
                             : "CO-SIMULATION: FAILURES");
    return ok ? 0 : 1;
}
