/**
 * SMT example: two hardware threads on one K8-like core hammer a
 * shared counter with LOCK-prefixed instructions — the cross-thread
 * interlock semantics of Section 4.4 ("PTLsim faithfully models all
 * lock contention in terms of real interlocked x86 instructions").
 * Userspace-only simulators with "pseudo-SMT" cannot run this: the
 * threads genuinely share memory and the interlock controller
 * arbitrates the locked read-modify-writes.
 *
 *   $ ./smt_contention
 */

#include <cstdio>

#include "core/coreapi.h"
#include "verify/verify.h"
#include "core/seqcore.h"
#include "xasm/assembler.h"

using namespace ptl;

namespace {

class BareSystem : public SystemInterface
{
  public:
    explicit BareSystem(BasicBlockCache &bbs) : bbcache(&bbs) {}
    U64 hypercall(Context &, U64, U64, U64, U64) override { return 0; }
    U64 readTsc(const Context &) override { return 0; }
    void vcpuBlock(Context &ctx) override { ctx.running = false; }
    U64 ptlcall(Context &, U64, U64, U64) override { return 0; }
    void notifyCodeWrite(Pfn mfn) override { bbcache->invalidateMfn(mfn); }
    bool isCodeMfn(Pfn mfn) const override
    {
        return bbcache->isCodeMfn(mfn);
    }

  private:
    BasicBlockCache *bbcache;
};

constexpr int ITERS = 2000;

}  // namespace

int
main()
{
    PhysMem mem(32 << 20, 3, true);
    AddressSpace aspace(mem);
    StatsTree stats;
    BasicBlockCache bbcache(stats.counter("bbcache/hits"),
                            stats.counter("bbcache/misses"),
                            stats.counter("bbcache/smc_invalidations"));
    BareSystem sys(bbcache);
    InterlockController interlocks(stats);

    Pfn cr3 = aspace.createRoot();
    aspace.mapRange(cr3, GuestVirt(0x400000), 16 * PAGE_SIZE, Pte::RW | Pte::US);
    aspace.mapRange(cr3, GuestVirt(0x600000), 16 * PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);
    aspace.mapRange(cr3, GuestVirt(0x7E0000), 32 * PAGE_SIZE,
                    Pte::RW | Pte::US | Pte::NX);

    // Each thread adds (thread_id + 1) to the shared counter with
    // `lock xadd`, ITERS times, and also bumps a private counter.
    Assembler a(0x400000);
    a.movImm64(R::rbx, 0x600000);
    a.mov(R::rcx, ITERS);
    a.mov(R::rdx, R::rdi);
    a.inc(R::rdx);
    Label top = a.label();
    a.mov(R::rax, R::rdx);
    a.lockXadd(Mem::at(R::rbx), R::rax);
    a.inc(Mem::idx(R::rbx, R::rdi, 8, 64));   // private progress slot
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    std::vector<U8> image = a.finalize();

    Context ctx[2];
    for (int t = 0; t < 2; t++) {
        ctx[t].vcpu_id = t;
        ctx[t].cr3 = cr3;
        ctx[t].kernel_mode = true;
        ctx[t].rip = GuestVirt(0x400000);
        ctx[t].regs[REG_rsp] = 0x7FF000 - (U64)t * 0x8000;
        ctx[t].regs[REG_rdi] = (U64)t;      // thread id
    }
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc = guestTranslate(aspace, ctx[0],
                                         GuestVirt(0x400000 + i),
                                         MemAccess::Write);
        mem.writeBytes(acc.paddr, &image[i], 1);
    }

    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "smt";
    cfg.smt_threads = 2;
    CoreBuildParams params;
    params.config = &cfg;
    params.contexts = {&ctx[0], &ctx[1]};
    params.aspace = &aspace;
    params.bbcache = &bbcache;
    params.sys = &sys;
    params.stats = &stats;
    params.prefix = "core0/";
    params.interlocks = &interlocks;
    auto hierarchy = std::make_unique<MemoryHierarchy>(cfg, aspace, stats,
                                                       params.prefix);
    params.hierarchy = hierarchy.get();
    auto core = createCoreModel("smt", params);
    core->attachAuditor(makeVerifyAuditor(cfg, stats, params.prefix));

    U64 cycle = 0;
    while (!core->allIdle() && cycle < 100'000'000)
        core->cycle(SimCycle(cycle++));

    U64 shared = 0, p0 = 0, p1 = 0;
    guestRead(aspace, ctx[0], GuestVirt(0x600000), 8, shared);
    guestRead(aspace, ctx[0], GuestVirt(0x600040), 8, p0);
    guestRead(aspace, ctx[0], GuestVirt(0x600048), 8, p1);
    U64 expected = (U64)ITERS * 3;  // 1 + 2 per round

    std::printf("two SMT threads x %d locked xadds\n", ITERS);
    std::printf("shared counter = %llu (expected %llu) %s\n",
                (unsigned long long)shared,
                (unsigned long long)expected,
                shared == expected ? "ATOMIC" : "LOST UPDATES!");
    std::printf("per-thread progress: T0=%llu T1=%llu\n",
                (unsigned long long)p0, (unsigned long long)p1);
    std::printf("cycles: %llu; committed insns: %llu (both threads)\n",
                (unsigned long long)cycle,
                (unsigned long long)stats.get("core0/commit/insns"));
    std::printf("interlock acquires: %llu, lsq replays (incl. lock "
                "contention): %llu\n",
                (unsigned long long)stats.get("interlock/acquires"),
                (unsigned long long)stats.get("core0/lsq/replays"));
    return shared == expected ? 0 : 1;
}
