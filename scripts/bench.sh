#!/usr/bin/env bash
# Simulation-throughput benchmark driver: runs bench_simspeed from a
# release build tree and records per-engine cycles/sec, insns/sec and
# IPC under a label in BENCH_simspeed.json at the repo root, so
# perf-sensitive PRs can check in a before/after pair.
#
# Usage: scripts/bench.sh <label> [build-dir]
#   label:     key to store this run under (e.g. "baseline",
#              "transcache"); an existing entry with the same label is
#              overwritten.
#   build-dir: tree containing bench/bench_simspeed (default:
#              $BUILD_DIR, then build-release)
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:?usage: scripts/bench.sh <label> [build-dir]}"
build_dir="${2:-${BUILD_DIR:-$repo_root/build-release}}"
bench="$build_dir/bench/bench_simspeed"
out_json="$repo_root/BENCH_simspeed.json"

if [ ! -x "$bench" ]; then
    echo "bench.sh: $bench not found; configure and build first:" >&2
    echo "  cmake --preset release && cmake --build build-release -j" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$bench" --benchmark_min_time=1 --benchmark_format=json \
         --benchmark_out="$raw" --benchmark_out_format=json >&2

python3 - "$raw" "$out_json" "$label" <<'EOF'
import json
import sys

raw_path, out_path, label = sys.argv[1], sys.argv[2], sys.argv[3]
raw = json.load(open(raw_path))

def host_fingerprint():
    """CPU model, core count and scaling governor: enough to tell
    whether two entries in the label-keyed history are comparable —
    a governor change alone moves the throughput numbers well past
    the noise band."""
    model = "unknown"
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    governor = "unknown"
    try:
        with open("/sys/devices/system/cpu/cpu0/cpufreq/"
                  "scaling_governor") as f:
            governor = f.read().strip()
    except OSError:
        pass
    import os
    return {"cpu_model": model,
            "cores": os.cpu_count() or 0,
            "scaling_governor": governor}


run = {"host": raw.get("context", {}).get("host_name", "unknown"),
       "fingerprint": host_fingerprint(),
       "benchmarks": {}}
for b in raw["benchmarks"]:
    entry = {}
    for key in ("sim_cycles_per_s", "guest_insns_per_s", "ipc",
                "requests_per_s"):
        if key in b:
            entry[key] = round(float(b[key]), 3 if key == "ipc" else 1)
    run["benchmarks"][b["name"]] = entry

try:
    merged = json.load(open(out_path))
except (FileNotFoundError, ValueError):
    merged = {}

# Monotonic sequence number so "the previous entry" is well defined
# even though the file is label-keyed; entries recorded before seq was
# introduced count as 0 in label order.
prev_label = None
prev_seq = -1
for k, v in merged.items():
    if k == label:
        continue
    s = v.get("seq", 0)
    if s > prev_seq or (s == prev_seq and prev_label is not None
                        and k > prev_label):
        prev_seq, prev_label = s, k
run["seq"] = max([v.get("seq", 0) for v in merged.values()] + [0]) + 1

merged[label] = run
json.dump(merged, open(out_path, "w"), indent=2, sort_keys=True)
print(f"bench.sh: recorded '{label}' (seq {run['seq']}) in {out_path}",
      file=sys.stderr)

# Machine-readable delta vs the previous entry on stdout.
delta = {"label": label, "previous": prev_label, "benchmarks": {}}
if prev_label is not None:
    prev = merged[prev_label]["benchmarks"]
    for name, entry in run["benchmarks"].items():
        if name not in prev:
            continue
        d = {}
        for key, new in entry.items():
            old = prev[name].get(key)
            if old:
                d[key] = {"old": old, "new": new,
                          "delta_pct": round(100.0 * (new - old) / old,
                                             1)}
        delta["benchmarks"][name] = d
print(json.dumps(delta, indent=2, sort_keys=True))
EOF
