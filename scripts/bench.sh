#!/usr/bin/env bash
# Simulation-throughput benchmark driver: runs bench_simspeed from a
# release build tree and records per-engine cycles/sec, insns/sec and
# IPC under a label in BENCH_simspeed.json at the repo root, so
# perf-sensitive PRs can check in a before/after pair.
#
# Usage: scripts/bench.sh <label> [build-dir]
#   label:     key to store this run under (e.g. "baseline",
#              "transcache"); an existing entry with the same label is
#              overwritten.
#   build-dir: tree containing bench/bench_simspeed (default:
#              $BUILD_DIR, then build-release)
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:?usage: scripts/bench.sh <label> [build-dir]}"
build_dir="${2:-${BUILD_DIR:-$repo_root/build-release}}"
bench="$build_dir/bench/bench_simspeed"
out_json="$repo_root/BENCH_simspeed.json"

if [ ! -x "$bench" ]; then
    echo "bench.sh: $bench not found; configure and build first:" >&2
    echo "  cmake --preset release && cmake --build build-release -j" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$bench" --benchmark_min_time=1 --benchmark_format=json \
         --benchmark_out="$raw" --benchmark_out_format=json >&2

python3 - "$raw" "$out_json" "$label" <<'EOF'
import json
import sys

raw_path, out_path, label = sys.argv[1], sys.argv[2], sys.argv[3]
raw = json.load(open(raw_path))

run = {"host": raw.get("context", {}).get("host_name", "unknown"),
       "benchmarks": {}}
for b in raw["benchmarks"]:
    entry = {}
    for key in ("sim_cycles_per_s", "guest_insns_per_s", "ipc"):
        if key in b:
            entry[key] = round(float(b[key]), 3 if key == "ipc" else 1)
    run["benchmarks"][b["name"]] = entry

try:
    merged = json.load(open(out_path))
except (FileNotFoundError, ValueError):
    merged = {}
merged[label] = run
json.dump(merged, open(out_path, "w"), indent=2, sort_keys=True)
print(f"bench.sh: recorded '{label}' in {out_path}")
EOF
