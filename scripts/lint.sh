#!/usr/bin/env bash
# clang-tidy lint gate over src/. Registered as the `lint`-labelled
# CTest (see tests/CMakeLists.txt); exits 77 — the CTest skip code —
# when clang-tidy is not installed so developer environments without
# LLVM skip rather than fail. Under CI (CI=1/true) a missing
# clang-tidy is a hard failure instead: the gate must never be
# skipped silently on the merge path.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir: a configured build tree containing compile_commands.json
#              (default: build)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
    if [ "${CI:-0}" = "1" ] || [ "${CI:-}" = "true" ]; then
        # On CI a missing clang-tidy means the image is broken; a
        # silent skip here once let lint rot for weeks. Fail loudly.
        echo "lint.sh: clang-tidy not found but CI=${CI} — the CI" \
             "image must install clang-tidy; refusing to skip" >&2
        exit 1
    fi
    echo "lint.sh: clang-tidy not found; skipping lint gate" >&2
    exit 77
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint.sh: $build_dir/compile_commands.json missing;" \
         "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on)" >&2
    exit 1
fi

cd "$repo_root"
sources=$(find src -name '*.cc' | sort)

status=0
for f in $sources; do
    "$tidy" -p "$build_dir" --quiet "$f" || status=1
done

exit $status
