#!/usr/bin/env bash
# Full correctness sweep: build and run the entire test suite under
# AddressSanitizer and then UndefinedBehaviorSanitizer, using the
# presets from CMakePresets.json. Intended as the pre-merge gate for
# changes touching src/.
#
# Usage: scripts/check.sh [jobs]
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"
cd "$repo_root"

for preset in asan ubsan; do
    echo "==== [$preset] configure ===="
    cmake --preset "$preset"
    echo "==== [$preset] build ===="
    cmake --build --preset "$preset" -j "$jobs"
    echo "==== [$preset] test ===="
    ctest --preset "$preset" -j "$jobs"
done

echo "check.sh: ASan and UBSan suites passed"
