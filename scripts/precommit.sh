#!/bin/sh
# Fast pre-commit gate: simlint over the changed files only, plus a
# clang-format check of the staged diff. Wire it up once per clone:
#
#   git config core.hooksPath scripts/hooks
#
# (scripts/hooks/pre-commit just execs this script, so the gate stays
# versioned with the tree.) Everything here is advisory-fast: simlint
# reuses the build/simlint-cache index, so a warm run is milliseconds.
set -u

repo_root=$(git rev-parse --show-toplevel) || exit 2
cd "$repo_root" || exit 2

fail=0

# ---- simlint over the diff ------------------------------------------
# Compare against the merge-base with origin/main when the clone has
# one (the PR base): on a multi-commit branch, diffing against the
# branch tip itself would hide everything already committed, so the
# gate must see the full branch delta. Fall back to HEAD so detached
# or offline clones still get a gate over their uncommitted work.
base=HEAD
if git rev-parse --verify --quiet origin/main >/dev/null; then
    base=$(git merge-base origin/main HEAD 2>/dev/null) || base=HEAD
fi

if command -v python3 >/dev/null 2>&1; then
    python3 scripts/simlint.py --diff "$base" src || fail=1

    # The fixture self-test only guards the analyzer itself, so plain
    # commits skip it (it re-indexes every fixture uncached, which is
    # the slow path). Run it only when this commit touches the lint
    # tooling.
    tooling_changed=$( { git diff --name-only "$base" --;
                         git diff --cached --name-only --; } \
                       2>/dev/null \
                       | grep -c -E '^(tools/simlint/|scripts/simlint\.py)' )
    if [ "${tooling_changed:-0}" -gt 0 ]; then
        python3 scripts/simlint.py --self-test || fail=1
    fi
else
    echo "precommit: python3 not found; skipping simlint" >&2
fi

# ---- clang-format over the staged changes ---------------------------
# Only meaningful when the tree carries a style file; --dry-run
# -Werror makes any reformat a failure without touching the files.
if [ -f .clang-format ] && command -v clang-format >/dev/null 2>&1; then
    staged=$(git diff --cached --name-only --diff-filter=ACMR \
             -- '*.cc' '*.h' '*.cpp' '*.hpp')
    if [ -n "$staged" ]; then
        # shellcheck disable=SC2086
        clang-format --dry-run -Werror $staged || fail=1
    fi
elif ! command -v clang-format >/dev/null 2>&1; then
    echo "precommit: clang-format not found; skipping format check" >&2
fi

exit $fail
