#!/usr/bin/env python3
"""simlint driver: PTLsim-specific static analysis over src/.

Two-pass: pass 1 builds (or loads from cache) a per-file semantic
index — includes, classes/members, enums, function bodies, switches,
event-callback bodies — keyed by content hash under
build/simlint-cache/; pass 2 runs the rules against the index, so
warm runs only re-analyze files whose content changed.

Usage:
  scripts/simlint.py [options] [paths...]

  paths        files or directories to analyze (default: src/ at the
               repository root). Directories are walked for
               .h/.cc/.cpp files.

Options:
  --rules R1,R2    run only the named rules (see --help-rules below)
  --diff BASE      report findings only for files changed vs the git
                   ref BASE (the whole tree is still indexed — rules
                   are cross-file — but the warm cache makes that
                   cheap); changed headers are closed over reverse
                   includes, so a finding reported at an including
                   .cc definition site still surfaces; intended for
                   pre-commit
  --self-test      run every rule against its golden fixtures under
                   tools/simlint/fixtures/<rule>/: each bad* fixture
                   must trip exactly its own rule, each good* fixture
                   must be clean under ALL rules
  --explain RULE   print the named rule's documentation followed by a
                   unified diff from its bad fixture to its good one
                   — the minimal edit that takes code from flagged to
                   clean; exits without analyzing anything
  --summary        print a per-rule findings/timing table, waiver
                   usage counts, and index cache statistics
                   (markdown; used for the CI job summary)
  --summary-json F write the same data as JSON to file F ('-' for
                   stdout): per-rule findings/timings, waiver counts,
                   cache stats, and the full findings list — the
                   machine-readable artifact the CI lint job renders
                   its step summary from
  --no-cache       bypass the semantic-index cache entirely
  --cache-dir DIR  cache location (default: build/simlint-cache)
  --baseline FILE  ratchet: per-rule finding counts and per-waiver
                   line counts must not exceed FILE (exit 1 if they
                   do; tightening is reported as a suggestion)
  --update-baseline  rewrite FILE from the current run instead of
                   checking it

Under CI=1 findings are emitted as GitHub workflow annotations
(::error file=...,line=...::) so they surface inline on PRs; the
plain `path:line: [rule] message` format is used locally.

Rules and waivers (line-scoped `// simlint: <waiver>` comments):
  layering             layering-ok     module DAG (layers.toml)
  checkpoint-coverage  transient       serialize/restore field parity
  stats-coverage       stats-ok        counter registration + snapshot
  enum-exhaustiveness  enum-ok         switches over registered enums
  event-discipline     event-ok        EventQueue callback hygiene
  raw-cycle            raw-cycle-ok    SimCycle/CycleDelta discipline
  nondeterminism       nondet-ok       entropy / iteration order
  lock-discipline      lock-ok(..)     guarded state lock-held on all
                                       CFG paths (flow-sensitive)
  checkpoint-symmetry  ckpt-sym-ok(..) serialize/restore ordered
                                       stream parity (flow-sensitive)
  simcycle-escape      raw-escape-ok(..) .raw() taint back into cycle
                                       math (flow-sensitive)

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage or
configuration error.
"""

import argparse
import glob as globmod
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from simlint import index as index_mod  # noqa: E402
from simlint import layers as layers_mod  # noqa: E402
from simlint import rules as rules_pkg  # noqa: E402

SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")
LAYERS_TOML = os.path.join(REPO_ROOT, "tools", "simlint", "layers.toml")
DEFAULT_CACHE_DIR = os.path.join(REPO_ROOT, "build", "simlint-cache")


def collect_files(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(SOURCE_EXTS):
                        out.append(os.path.join(dirpath, n))
        elif os.path.isfile(p):
            out.append(p)
        else:
            print("simlint: no such path: %s" % p, file=sys.stderr)
            sys.exit(2)
    return sorted(set(os.path.abspath(f) for f in out))


def build_context(files, repo_root, layers, cache_dir):
    """Pass 1: index every file (cache-aware). Returns (ctx, stats)."""
    t0 = time.perf_counter()
    indexed, hits = [], 0
    for f in files:
        rel = os.path.relpath(f, repo_root).replace(os.sep, "/")
        fi, hit = index_mod.load_or_build(f, rel, cache_dir)
        hits += hit
        indexed.append(fi)
    ms = (time.perf_counter() - t0) * 1e3
    ctx = rules_pkg.AnalysisContext(files=indexed,
                                    repo_root=repo_root,
                                    layers=layers)
    return ctx, {"files": len(files), "cache_hits": hits,
                 "index_ms": ms}


def run_rules(rule_mods, ctx):
    """Pass 2. Returns (findings, {rule: ms})."""
    findings, timings = [], {}
    for mod in rule_mods:
        t0 = time.perf_counter()
        findings.extend(mod.run(ctx))
        timings[mod.NAME] = (time.perf_counter() - t0) * 1e3
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, timings


def changed_files(base):
    """Repo-relative paths changed vs `base` (plus untracked)."""
    def git(*args):
        return subprocess.run(
            ("git",) + args, cwd=REPO_ROOT, check=True,
            stdout=subprocess.PIPE, text=True).stdout.splitlines()
    try:
        out = git("diff", "--name-only", base)
        out += git("ls-files", "--others", "--exclude-standard")
    except (subprocess.CalledProcessError, OSError) as e:
        print("simlint: --diff %s: %s" % (base, e), file=sys.stderr)
        sys.exit(2)
    return {p.strip().replace(os.sep, "/") for p in out if p.strip()}


def expand_changed(changed, ctx):
    """Close the changed set over reverse includes: an edit to a
    header can surface findings in any TU that (transitively)
    includes it — rules report symmetry/coverage defects at the .cc
    definition site — and the plain path filter would silently drop
    those.  Include strings are resolved against the src/ include
    root and against the including file's own directory."""
    rels = {fi.rel for fi in ctx.files}
    rev = {}  # target rel -> set of direct includer rels
    for fi in ctx.files:
        base_dir = fi.rel.rsplit("/", 1)[0] if "/" in fi.rel else ""
        root = fi.rel.split("/", 1)[0] if "/" in fi.rel else ""
        for _line, inc in fi.includes:
            inc = inc.replace("\\", "/")
            for cand in ((root + "/" + inc) if root else inc,
                         (base_dir + "/" + inc) if base_dir else inc,
                         inc):
                if cand in rels:
                    rev.setdefault(cand, set()).add(fi.rel)
                    break
    out = set(changed)
    work = [p for p in changed if p in rev]
    while work:
        p = work.pop()
        for includer in rev.get(p, ()):
            if includer not in out:
                out.add(includer)
                work.append(includer)
    return out


def print_findings(findings, repo_root):
    ci = os.environ.get("CI") == "1"
    for f in findings:
        rel = os.path.relpath(f.path, repo_root).replace(os.sep, "/")
        if ci:
            # GitHub workflow annotation: shows inline on the PR diff.
            print("::error file=%s,line=%d,title=simlint[%s]::%s"
                  % (rel, f.line, f.rule, f.message))
        else:
            print("%s:%d: [%s] %s" % (rel, f.line, f.rule, f.message))


def waiver_counts(ctx):
    """Waived-line counts per waiver name (arguments stripped), over
    every analyzed file. A growing count is a debt signal the CI
    summary makes visible."""
    counts = {}
    for fi in ctx.files:
        for names in fi.waivers.values():
            for w in names:
                base = w.split("(", 1)[0].strip()
                counts[base] = counts.get(base, 0) + 1
    return counts


def print_summary(rule_mods, findings, timings, stats, ctx):
    print()
    print("| rule | findings | time (ms) |")
    print("| --- | ---: | ---: |")
    for mod in rule_mods:
        n = sum(1 for f in findings if f.rule == mod.NAME)
        print("| %s | %d | %.1f |"
              % (mod.NAME, n, timings.get(mod.NAME, 0.0)))
    print("| index (pass 1) | %d files | %.1f |"
          % (stats["files"], stats["index_ms"]))
    print("| index cache hits | %d / %d | |"
          % (stats["cache_hits"], stats["files"]))
    total = stats["index_ms"] + sum(timings.values())
    print("| total | | %.1f |" % total)
    waivers = waiver_counts(ctx)
    if waivers:
        print()
        print("| waiver | lines |")
        print("| --- | ---: |")
        for name in sorted(waivers):
            print("| %s | %d |" % (name, waivers[name]))


def summary_payload(rule_mods, findings, timings, stats, ctx,
                    repo_root):
    """The --summary data as a JSON-serializable dict."""
    return {
        "files": stats["files"],
        "cache_hits": stats["cache_hits"],
        "index_ms": round(stats["index_ms"], 1),
        "total_ms": round(stats["index_ms"] + sum(timings.values()), 1),
        "rules": {
            mod.NAME: {
                "findings": sum(1 for f in findings
                                if f.rule == mod.NAME),
                "ms": round(timings.get(mod.NAME, 0.0), 1),
            } for mod in rule_mods},
        "waivers": waiver_counts(ctx),
        "findings": [
            {"path": os.path.relpath(f.path, repo_root)
             .replace(os.sep, "/"),
             "line": f.line, "rule": f.rule, "message": f.message}
            for f in findings],
    }


def check_baseline(path, rule_mods, findings, ctx, update):
    """Ratchet: per-rule finding counts and per-waiver line counts may
    only go down relative to the committed baseline.  Returns the
    number of violations (0 when clean or when updating)."""
    current = {
        "rules": {mod.NAME: sum(1 for f in findings
                                if f.rule == mod.NAME)
                  for mod in rule_mods},
        "waivers": waiver_counts(ctx),
    }
    if update:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print("simlint: baseline updated: %s" % path)
        return 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        print("simlint: cannot read baseline %s: %s" % (path, e),
              file=sys.stderr)
        return 1
    errors = 0
    improvable = []
    for name, cur in sorted(current["rules"].items()):
        allowed = base.get("rules", {}).get(name, 0)
        if cur > allowed:
            print("simlint: baseline ratchet: rule '%s' has %d "
                  "finding(s), baseline allows %d" % (name, cur,
                                                      allowed),
                  file=sys.stderr)
            errors += 1
        elif cur < allowed:
            improvable.append("%s %d->%d" % (name, allowed, cur))
    for name, cur in sorted(current["waivers"].items()):
        allowed = base.get("waivers", {}).get(name, 0)
        if cur > allowed:
            print("simlint: baseline ratchet: waiver '%s' is on %d "
                  "line(s), baseline allows %d — new waivers need a "
                  "conscious `--update-baseline`" % (name, cur,
                                                     allowed),
                  file=sys.stderr)
            errors += 1
        elif cur < allowed:
            improvable.append("waiver %s %d->%d" % (name, allowed,
                                                    cur))
    for name, allowed in sorted(base.get("waivers", {}).items()):
        if allowed and name not in current["waivers"]:
            improvable.append("waiver %s %d->0" % (name, allowed))
    if improvable:
        print("simlint: baseline can tighten (--update-baseline): %s"
              % ", ".join(improvable))
    return errors


def _fixture_sets(rule_dir):
    """Yield (kind, root, files) for bad*/good* fixtures: single .cc
    files or directory trees (used by layering, whose subject is the
    path structure itself)."""
    for pattern, kind in (("bad*", "bad"), ("good*", "good")):
        for p in sorted(globmod.glob(os.path.join(rule_dir, pattern))):
            if os.path.isdir(p):
                yield kind, p, collect_files([p])
            elif p.endswith(SOURCE_EXTS):
                yield kind, os.path.dirname(p), [os.path.abspath(p)]


def explain(name):
    """Print a rule's module docstring and a bad->good fixture diff.

    The docstring is the rule's reference documentation (every rule
    module carries one); the diff shows the smallest edit that takes
    the golden bad fixture to the golden good one, which is usually
    the fastest way to see what the rule wants changed.
    """
    import difflib
    import inspect

    if name not in rules_pkg.BY_NAME:
        print("simlint: unknown rule '%s' (have: %s)"
              % (name, ", ".join(sorted(rules_pkg.BY_NAME))),
              file=sys.stderr)
        return 2
    mod = rules_pkg.BY_NAME[name]
    doc = inspect.getdoc(mod) or "(no documentation)"
    print(doc.rstrip())

    rule_dir = os.path.join(REPO_ROOT, "tools", "simlint", "fixtures",
                            name.replace("-", "_"))
    sets = list(_fixture_sets(rule_dir))
    bad = next((files for k, _, files in sets if k == "bad"), None)
    good = next((files for k, _, files in sets if k == "good"), None)
    if not bad or not good:
        print("\n(no golden fixtures under %s)" % rule_dir)
        return 0
    bad_f, good_f = bad[0], good[0]
    with open(bad_f, encoding="utf-8") as f:
        bad_lines = f.readlines()
    with open(good_f, encoding="utf-8") as f:
        good_lines = f.readlines()
    rel = lambda p: os.path.relpath(p, REPO_ROOT).replace(os.sep, "/")
    print("\n--- fixture diff: flagged -> clean "
          + "-" * 28)
    sys.stdout.writelines(difflib.unified_diff(
        bad_lines, good_lines, fromfile=rel(bad_f),
        tofile=rel(good_f)))
    return 0


def self_test(layers):
    fixtures = os.path.join(REPO_ROOT, "tools", "simlint", "fixtures")
    failed = 0
    for mod in rules_pkg.ALL:
        rule_dir = os.path.join(fixtures, mod.NAME.replace("-", "_"))
        sets = list(_fixture_sets(rule_dir))
        if (not any(k == "bad" for k, _, _ in sets)
                or not any(k == "good" for k, _, _ in sets)):
            print("self-test FAIL %s: needs at least one bad and one "
                  "good fixture in %s" % (mod.NAME, rule_dir))
            failed += 1
            continue
        for kind, root, files in sets:
            # Index without cache: fixtures are tiny and must never
            # interact with the tree cache.
            ctx, _ = build_context(files, root, layers, None)
            found, _ = run_rules(rules_pkg.ALL, ctx)
            own = [f for f in found if f.rule == mod.NAME]
            other = [f for f in found if f.rule != mod.NAME]
            if kind == "bad":
                ok = bool(own) and not other
            else:
                ok = not found
            tag = "PASS" if ok else "FAIL"
            label = os.path.basename(files[0]) if len(files) == 1 \
                else os.path.basename(root) + "/"
            print("self-test %s %-20s %-22s (%d own, %d other)"
                  % (tag, mod.NAME, label, len(own), len(other)))
            if not ok:
                failed += 1
                for f in found:
                    print("    %s:%d: [%s] %s"
                          % (f.path, f.line, f.rule, f.message))
    return failed


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("--rules", default=None)
    ap.add_argument("--diff", metavar="BASE", default=None)
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--explain", metavar="RULE", default=None)
    ap.add_argument("--summary", action="store_true")
    ap.add_argument("--summary-json", metavar="FILE", default=None)
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    ap.add_argument("--baseline", metavar="FILE", default=None)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args()

    try:
        layers = layers_mod.load(LAYERS_TOML) \
            if os.path.isfile(LAYERS_TOML) else None
    except layers_mod.LayerConfigError as e:
        print("simlint: %s" % e, file=sys.stderr)
        return 2

    if args.rules:
        names = [n.strip() for n in args.rules.split(",")]
        unknown = [n for n in names if n not in rules_pkg.BY_NAME]
        if unknown:
            print("simlint: unknown rule(s): %s (have: %s)"
                  % (", ".join(unknown),
                     ", ".join(sorted(rules_pkg.BY_NAME))),
                  file=sys.stderr)
            return 2
        rule_mods = [rules_pkg.BY_NAME[n] for n in names]
    else:
        rule_mods = rules_pkg.ALL

    if args.explain:
        return explain(args.explain)

    if args.self_test:
        failed = self_test(layers)
        if failed:
            print("simlint self-test: %d case(s) FAILED" % failed)
            return 1
        print("simlint self-test: all rules OK")
        return 0

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    files = collect_files(paths)
    cache_dir = None if args.no_cache else args.cache_dir
    ctx, stats = build_context(files, REPO_ROOT, layers, cache_dir)
    findings, timings = run_rules(rule_mods, ctx)

    if args.diff:
        changed = expand_changed(changed_files(args.diff), ctx)
        findings = [
            f for f in findings
            if os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/")
            in changed]

    print_findings(findings, REPO_ROOT)
    if args.summary:
        print_summary(rule_mods, findings, timings, stats, ctx)
    if args.summary_json:
        payload = summary_payload(rule_mods, findings, timings, stats,
                                  ctx, REPO_ROOT)
        if args.summary_json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.summary_json, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=2)
                f.write("\n")

    ratchet_errors = 0
    if args.baseline:
        if args.diff:
            print("simlint: --baseline ignores --diff filtering "
                  "(ratchet is whole-tree)", file=sys.stderr)
        ratchet_errors = check_baseline(
            args.baseline, rule_mods, findings, ctx,
            args.update_baseline)

    if findings:
        print("simlint: %d finding(s) in %d file(s)"
              % (len(findings), len({f.path for f in findings})),
              file=sys.stderr)
        return 1
    return 1 if ratchet_errors else 0


if __name__ == "__main__":
    sys.exit(main())
