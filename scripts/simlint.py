#!/usr/bin/env python3
"""simlint driver: PTLsim-specific static analysis over src/.

Usage:
  scripts/simlint.py [options] [paths...]

  paths        files or directories to analyze (default: src/ at the
               repository root). Directories are walked for
               .h/.cc/.cpp files.

Options:
  --rules R1,R2   run only the named rules
                  (checkpoint-coverage, raw-cycle, nondeterminism)
  --self-test     run each rule against its golden fixtures under
                  tools/simlint/fixtures/<rule>/{bad.cc,good.cc};
                  bad.cc must trip exactly its rule, good.cc must be
                  clean
  --summary       print per-rule hit counts after the findings
                  (markdown table; used for the CI job summary)

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage.

Waivers are line-scoped comments:
  // simlint: transient      checkpoint-coverage (derived state,
                             rebuilt on restore)
  // simlint: raw-cycle-ok   raw-cycle
  // simlint: nondet-ok      nondeterminism
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from simlint import lexer  # noqa: E402
from simlint import rules as rules_pkg  # noqa: E402

SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")


def collect_files(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(SOURCE_EXTS):
                        out.append(os.path.join(dirpath, n))
        elif os.path.isfile(p):
            out.append(p)
        else:
            print("simlint: no such path: %s" % p, file=sys.stderr)
            sys.exit(2)
    return sorted(set(out))


def run_rules(rule_mods, files):
    lexed = [lexer.lex_file(f) for f in files]
    findings = []
    for mod in rule_mods:
        findings.extend(mod.run(lexed))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def self_test(rule_mods):
    fixtures = os.path.join(REPO_ROOT, "tools", "simlint", "fixtures")
    failed = 0
    for mod in rule_mods:
        d = os.path.join(fixtures, mod.NAME.replace("-", "_"))
        bad = os.path.join(d, "bad.cc")
        good = os.path.join(d, "good.cc")
        for path, expect_hit in ((bad, True), (good, False)):
            if not os.path.isfile(path):
                print("self-test FAIL %s: missing fixture %s"
                      % (mod.NAME, path))
                failed += 1
                continue
            found = [f for f in run_rules([mod], [path])
                     if f.rule == mod.NAME]
            ok = bool(found) == expect_hit
            tag = "PASS" if ok else "FAIL"
            print("self-test %s %-20s %-8s (%d findings)"
                  % (tag, mod.NAME, os.path.basename(path), len(found)))
            if not ok:
                failed += 1
                for f in found:
                    print("    %s:%d: %s" % (f.path, f.line, f.message))
    return failed


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("--rules", default=None)
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--summary", action="store_true")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args()

    if args.rules:
        names = [n.strip() for n in args.rules.split(",")]
        unknown = [n for n in names if n not in rules_pkg.BY_NAME]
        if unknown:
            print("simlint: unknown rule(s): %s (have: %s)"
                  % (", ".join(unknown),
                     ", ".join(sorted(rules_pkg.BY_NAME))),
                  file=sys.stderr)
            return 2
        rule_mods = [rules_pkg.BY_NAME[n] for n in names]
    else:
        rule_mods = rules_pkg.ALL

    if args.self_test:
        failed = self_test(rule_mods)
        if failed:
            print("simlint self-test: %d case(s) FAILED" % failed)
            return 1
        print("simlint self-test: all rules OK")
        return 0

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    files = collect_files(paths)
    findings = run_rules(rule_mods, files)

    for f in findings:
        rel = os.path.relpath(f.path, REPO_ROOT)
        print("%s:%d: [%s] %s" % (rel, f.line, f.rule, f.message))

    if args.summary:
        print()
        print("| rule | findings |")
        print("| --- | ---: |")
        for mod in rule_mods:
            n = sum(1 for f in findings if f.rule == mod.NAME)
            print("| %s | %d |" % (mod.NAME, n))
        print("| files analyzed | %d |" % len(files))

    if findings:
        print("simlint: %d finding(s) in %d file(s)"
              % (len(findings), len({f.path for f in findings})),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
