/**
 * Figure 3 regeneration: "Time lapse graph of key microarchitectural
 * statistics" — per-snapshot branch mispredict rate (% of conditional
 * branches), DTLB miss rate (% of loads+stores) and L1D miss rate
 * (% of loads), as PTLstats renders from the snapshot deltas.
 */

#include <cinttypes>

#include "bench_util.h"

using namespace ptl;

int
main(int argc, char **argv)
{
    BenchScale scale = BenchScale::fromArgs(argc, argv);
    printRunBanner("Figure 3: time lapse of microarchitectural rates",
                   scale);

    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.snapshot_interval = 500'000;
    RsyncBench bench(cfg, scale.params);
    RsyncBench::Result r = bench.run();
    if (!r.shutdown || r.mismatches != 0) {
        std::printf("FATAL: benchmark failed (mismatches=%" PRIu64 ")\n",
                    r.mismatches);
        return 1;
    }

    StatsTree &s = bench.machine().stats();
    auto mispred = s.rateSeries("core0/branches/mispredicted",
                                "core0/branches/cond");
    auto dtlb = s.rateSeries("core0/dtlb/misses", "core0/dtlb/accesses");
    auto l1d = s.rateSeries("core0/dcache/misses",
                            "core0/dcache/accesses");

    std::printf("\n%5s  %9s %9s %9s   (red=mispredict%%, "
                "green=DTLB%%, blue=L1D%% in the paper)\n",
                "snap", "mispred%", "dtlb%", "l1d%");
    size_t n = std::min({mispred.size(), dtlb.size(), l1d.size()});
    double peak_mispred = 0, peak_dtlb = 0, peak_l1d = 0;
    double sum_mispred = 0, sum_dtlb = 0, sum_l1d = 0;
    size_t active = 0;
    for (size_t i = 0; i < n; i++) {
        std::printf("%5zu  %8.2f%% %8.2f%% %8.2f%%   |", i, mispred[i],
                    dtlb[i], l1d[i]);
        int m = (int)(mispred[i] * 2);
        int d = (int)(dtlb[i] * 2);
        int l = (int)(l1d[i] * 2);
        for (int j = 0; j < 30; j++) {
            char c = ' ';
            if (j == l) c = 'B';
            if (j == d) c = 'G';
            if (j == m) c = 'R';
            std::putchar(c);
        }
        std::printf("|\n");
        peak_mispred = std::max(peak_mispred, mispred[i]);
        peak_dtlb = std::max(peak_dtlb, dtlb[i]);
        peak_l1d = std::max(peak_l1d, l1d[i]);
        if (mispred[i] + dtlb[i] + l1d[i] > 0) {
            sum_mispred += mispred[i];
            sum_dtlb += dtlb[i];
            sum_l1d += l1d[i];
            active++;
        }
    }
    if (active == 0) {
        std::printf("no active snapshots\n");
        return 1;
    }
    std::printf("\naverages over active snapshots: mispredict %.2f%%  "
                "dtlb %.2f%%  l1d %.2f%%\n",
                sum_mispred / active, sum_dtlb / active,
                sum_l1d / active);
    std::printf("paper (whole-run): mispredict 3.97%%, dtlb 0.93%%, "
                "l1d 1.57%%\n");

    bool ok = true;
    auto expect = [&](bool cond, const char *what) {
        std::printf("shape check: %-52s %s\n", what,
                    cond ? "PASS" : "FAIL");
        ok &= cond;
    };
    expect(n >= 20, "enough snapshots for a time lapse");
    expect(peak_mispred > sum_mispred / active * 1.5,
           "mispredict rate varies across phases");
    expect(sum_mispred / active > 0.5 && sum_mispred / active < 20,
           "mispredict rate in a plausible band (paper ~4%)");
    expect(sum_l1d / active < 25, "L1D miss rate plausible (paper ~1.6%)");
    expect(sum_dtlb / active < sum_l1d / active * 10,
           "DTLB misses rarer than cache misses");
    std::printf("\n%s\n", ok ? "FIGURE 3 SHAPE: PASS"
                             : "FIGURE 3 SHAPE: FAIL");
    return ok ? 0 : 1;
}
