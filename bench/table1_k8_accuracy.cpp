/**
 * Table 1 regeneration: "Accuracy of PTLsim on multiple metrics
 * compared to reference silicon (AMD Athlon 64 @ 2.2 GHz)".
 *
 * Two trials of the rsync-over-ssh full-system benchmark:
 *   Native K8  — functional engine + real-K8-fidelity structures
 *                (2-level TLB, PDE cache, prefetcher, macro-op counts,
 *                first-order analytic timing)
 *   PTLsim     — the K8-configured out-of-order pipeline
 *
 * Absolute counts are scaled (smaller file set than the paper); the
 * reproduced quantity is the per-row %difference column: its sign and
 * rough magnitude should match the paper's structural story.
 */

#include <cinttypes>

#include "bench_util.h"
#include "stats/ptlstats.h"

using namespace ptl;

namespace {

/**
 * DTLB misses inside the compute-deltas phase (markers E..F), via
 * PTLstats snapshot subtraction. The whole-run DTLB row is dominated
 * by context-switch flush parity (both machines flush all TLB levels
 * on CR3 reloads, as real x86 does); the *capacity* difference the
 * paper attributes to K8's two-level TLB shows in the long
 * switch-free delta phase.
 */
U64
dtlbMissesInPhaseE(Machine &machine, const std::string &prefix)
{
    SimCycle e_cycle, f_cycle;
    for (const PtlMarker &m : machine.hypervisor().markers()) {
        if (m.id == PHASE_E_DELTAS)
            e_cycle = m.cycle;
        if (m.id == PHASE_F_TRANSMIT)
            f_cycle = m.cycle;
    }
    StatsTree &s = machine.stats();
    size_t ei = 0, fi = 0;
    for (size_t i = 0; i < s.snapshotCount(); i++) {
        if (s.snapshot(i).cycle <= e_cycle)
            ei = i;
        if (s.snapshot(i).cycle <= f_cycle)
            fi = i;
    }
    if (fi <= ei)
        return 0;
    return subtractSnapshots(s, ei, fi).get(prefix + "dtlb/misses");
}

struct PaperRow
{
    const char *name;
    double native_k;   // paper, thousands
    double ptlsim_k;
    const char *paper_diff;
};

const PaperRow kPaper[] = {
    {"Cycles", 1482035, 1545810, "+4.30%"},
    {"x86 Insns Committed", 990360, 1005795, "+1.55%"},
    {"uops", 1097012, 1436979, "+30.99%"},
    {"L1 D-cache Misses", 6118, 6564, "+7.28%"},
    {"L1 D-cache Accesses", 414285, 418072, "+0.91%"},
    {"Total Branches", 138062, 135857, "-1.60%"},
    {"Mispredicted Branches", 5727, 5392, "-5.84%"},
    {"DTLB Misses", 1593, 3895, "+144%"},
};

double
pct(double native, double ptlsim)
{
    return native ? 100.0 * (ptlsim - native) / native : 0.0;
}

void
row(const char *name, double native, double ptlsim, const char *paper)
{
    std::printf("%-24s %14.0f %14.0f %+9.2f%%   (paper: %s)\n", name,
                native, ptlsim, pct(native, ptlsim), paper);
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchScale scale = BenchScale::fromArgs(argc, argv);
    printRunBanner("Table 1: PTLsim vs reference-machine trial", scale);

    std::printf("running the reference-machine (native K8) trial...\n");
    auto native = makeNativeTrial(scale.params);
    RsyncBench::Result nr = native->run();
    if (!nr.shutdown || nr.mismatches != 0) {
        std::printf("FATAL: native trial failed (mismatches=%" PRIu64
                    ")\n", nr.mismatches);
        return 1;
    }
    Table1Metrics nm = native->metrics();

    std::printf("running the PTLsim (K8-configured OOO) trial...\n");
    auto sim = makeSimTrial(scale.params);
    RsyncBench::Result sr = sim->run();
    if (!sr.shutdown || sr.mismatches != 0) {
        std::printf("FATAL: sim trial failed (mismatches=%" PRIu64 ")\n",
                    sr.mismatches);
        return 1;
    }
    Table1Metrics sm = sim->metrics();

    std::printf("\nTable 1. Accuracy of the PTLsim model vs the "
                "reference machine (counts; %%diff vs paper's %%diff)\n");
    std::printf("%-24s %14s %14s %10s\n", "Trial", "Native K8", "PTLsim",
                "%Diff");
    row("Cycles", (double)nm.cycles, (double)sm.cycles,
        kPaper[0].paper_diff);
    row("x86 Insns Committed", (double)nm.insns, (double)sm.insns,
        kPaper[1].paper_diff);
    row("uops", (double)nm.uops, (double)sm.uops, kPaper[2].paper_diff);
    row("L1 D-cache Misses", (double)nm.l1d_misses, (double)sm.l1d_misses,
        kPaper[3].paper_diff);
    row("L1 D-cache Accesses", (double)nm.l1d_accesses,
        (double)sm.l1d_accesses, kPaper[4].paper_diff);
    std::printf("%-24s %13.2f%% %13.2f%% %+9.2f    (paper: 1.48%% vs "
                "1.57%%)\n",
                "L1 Misses as %", nm.l1dMissPct(), sm.l1dMissPct(),
                sm.l1dMissPct() - nm.l1dMissPct());
    row("Total Branches", (double)nm.branches, (double)sm.branches,
        kPaper[5].paper_diff);
    row("Mispredicted Branches", (double)nm.mispredicts,
        (double)sm.mispredicts, kPaper[6].paper_diff);
    std::printf("%-24s %13.2f%% %13.2f%% %+9.2f    (paper: 4.15%% vs "
                "3.97%%)\n",
                "Mispredicted %", nm.mispredictPct(), sm.mispredictPct(),
                sm.mispredictPct() - nm.mispredictPct());
    row("DTLB Misses", (double)nm.dtlb_misses, (double)sm.dtlb_misses,
        kPaper[7].paper_diff);
    std::printf("%-24s %13.2f%% %13.2f%%              (paper: 0.38%% vs "
                "0.93%%)\n",
                "DTLB Miss Rate %", nm.dtlbMissPct(), sm.dtlbMissPct());
    U64 native_e = dtlbMissesInPhaseE(native->bench->machine(),
                                      "native/vcpu0/");
    U64 sim_e = dtlbMissesInPhaseE(sim->bench->machine(), "core0/");
    std::printf("%-24s %14llu %14llu %+9.2f%%   (capacity effect: "
                "switch-free delta phase)\n",
                "DTLB Misses (phase e)", (unsigned long long)native_e,
                (unsigned long long)sim_e,
                pct((double)native_e, (double)sim_e));

    std::printf("\npaper reference (counts in thousands):\n");
    for (const PaperRow &p : kPaper)
        std::printf("%-24s %12.0fK %12.0fK %10s\n", p.name, p.native_k,
                    p.ptlsim_k, p.paper_diff);

    // Shape checks (who wins, roughly by how much).
    bool ok = true;
    auto expect = [&](bool cond, const char *what) {
        std::printf("shape check: %-46s %s\n", what,
                    cond ? "PASS" : "FAIL");
        ok &= cond;
    };
    expect(std::abs(pct((double)nm.insns, (double)sm.insns)) < 5.0,
           "insn counts within a few % (paper +1.55%)");
    expect(pct((double)nm.uops, (double)sm.uops) > 5.0,
           "PTLsim uops above K8 macro-ops (paper +31%)");
    expect(sim_e > native_e * 3 / 2,
           "PTLsim DTLB misses exceed 2-level-TLB K8 (paper +144%)");
    expect(sm.l1d_misses >= nm.l1d_misses,
           "PTLsim L1D misses >= prefetching K8 (paper +7.3%)");
    expect(std::abs(pct((double)nm.branches, (double)sm.branches)) < 5.0,
           "branch counts near-identical (paper -1.6%)");
    std::printf("note: the Cycles row compares the pipeline clock with "
                "a first-order analytic model standing in for silicon's "
                "cycle counter; it is indicative only (see "
                "EXPERIMENTS.md).\n");
    std::printf("\n%s\n", ok ? "TABLE 1 SHAPE: PASS" : "TABLE 1 SHAPE: FAIL");
    return ok ? 0 : 1;
}
