/**
 * Simulation throughput microbenchmarks (google-benchmark).
 *
 * The paper reports 415,540 simulated cycles per second for the full
 * K8-configured out-of-order model on 2.2 GHz host silicon (Section 5:
 * 1.55B cycles in ~62 minutes). These benchmarks measure this
 * reproduction's cycles/second and instructions/second for each engine
 * (out-of-order, sequential, native/functional) on a self-contained
 * compute kernel, reported via user counters.
 */

#include <benchmark/benchmark.h>

#include "core/coreapi.h"
#include "verify/verify.h"
#include "core/seqcore.h"
#include "kernel/guestkernel.h"
#include "kernel/guestlib.h"
#include "lib/rng.h"
#include "mem/membackend.h"
#include "sys/machine.h"
#include "xasm/assembler.h"

namespace ptl {
namespace {

constexpr U64 CODE_BASE = 0x400000;
constexpr U64 DATA_BASE = 0x600000;
constexpr U64 STACK_TOP = 0x800000;

class BareRig : public SystemInterface
{
  public:
    explicit BareRig(const SimConfig &config)
        : cfg(config), mem(32 << 20, 7, true), aspace(mem),
          bbcache(stats.counter("bbcache/hits"),
                  stats.counter("bbcache/misses"),
                  stats.counter("bbcache/smc_invalidations")),
          interlocks(stats)
    {
        aspace.attachStats(stats);
        aspace.transCache().setShadowEnabled(cfg.verify);
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(CODE_BASE), 64 * PAGE_SIZE, Pte::RW | Pte::US);
        aspace.mapRange(cr3, GuestVirt(DATA_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        aspace.mapRange(cr3, GuestVirt(STACK_TOP - 64 * PAGE_SIZE), 64 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        ctx.cr3 = cr3;
        ctx.kernel_mode = true;
        ctx.regs[REG_rsp] = STACK_TOP - 64;
    }

    void
    load(Assembler &assembler)
    {
        std::vector<U8> image = assembler.finalize();
        guestCopyOut(aspace, ctx, GuestVirt(assembler.baseVa()), image.data(),
                     image.size());
        ctx.rip = GuestVirt(CODE_BASE);
    }

    // SystemInterface (minimal bare-metal behaviour).
    U64 hypercall(Context &, U64, U64, U64, U64) override { return 0; }
    U64 readTsc(const Context &) override { return 0; }
    void vcpuBlock(Context &c) override { c.running = false; }
    U64 ptlcall(Context &, U64, U64, U64) override { return 0; }
    void notifyCodeWrite(Pfn mfn) override { bbcache.invalidateMfn(mfn); }
    bool isCodeMfn(Pfn mfn) const override
    {
        return bbcache.isCodeMfn(mfn);
    }

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    BasicBlockCache bbcache;
    InterlockController interlocks;
    Context ctx;
    Pfn cr3;
};

/** The measured kernel: a hash-and-update loop with real memory
 *  traffic and data-dependent branches. */
void
computeKernel(Assembler &a)
{
    Label restart = a.newLabel();
    a.bind(restart);
    a.movImm64(R::rbx, DATA_BASE);
    a.mov(R::rcx, 20000);
    a.mov(R::rax, 12345);
    Label top = a.label();
    a.mov(R::rdx, R::rax);
    a.and_(R::rdx, 0xFFF8);
    a.mov(R::rsi, Mem::idx(R::rbx, R::rdx, 1));
    a.add(R::rax, R::rsi);
    a.imul(R::rax, R::rax, 0x9E3779B9);
    a.mov(Mem::idx(R::rbx, R::rdx, 1), R::rax);
    a.test(R::rax, 0x100);
    Label skip = a.newLabel();
    a.jcc(COND_e, skip);
    a.add(R::rax, 7);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.jmp(restart);   // run forever; the harness bounds cycles
}

void
runCore(benchmark::State &state, const char *core_name)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = core_name;
    BareRig rig(cfg);
    Assembler a(CODE_BASE);
    computeKernel(a);
    rig.load(a);

    CoreBuildParams p;
    p.config = &cfg;
    p.contexts = {&rig.ctx};
    p.aspace = &rig.aspace;
    p.bbcache = &rig.bbcache;
    p.sys = &rig;
    p.stats = &rig.stats;
    p.prefix = "core0/";
    p.interlocks = &rig.interlocks;
    auto hierarchy = std::make_unique<MemoryHierarchy>(
        cfg, rig.aspace, rig.stats, p.prefix);
    p.hierarchy = hierarchy.get();
    std::unique_ptr<CoreModel> core = createCoreModel(core_name, p);
    core->attachAuditor(makeVerifyAuditor(cfg, rig.stats, p.prefix));

    U64 now = 0;
    for (auto _ : state) {
        for (int i = 0; i < 10000; i++)
            core->cycle(SimCycle(now++));
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        (double)now, benchmark::Counter::kIsRate);
    state.counters["guest_insns_per_s"] = benchmark::Counter(
        (double)rig.stats.get("core0/commit/insns"),
        benchmark::Counter::kIsRate);
    state.counters["ipc"] =
        (double)rig.stats.get("core0/commit/insns") / (double)now;
}

void
BM_OooCore(benchmark::State &state)
{
    runCore(state, "ooo");
}

void
BM_SeqCore(benchmark::State &state)
{
    runCore(state, "seq");
}

void
BM_NativeFunctional(benchmark::State &state)
{
    SimConfig cfg = SimConfig::preset("k8");
    BareRig rig(cfg);
    Assembler a(CODE_BASE);
    computeKernel(a);
    rig.load(a);
    FunctionalEngine engine(rig.ctx, rig.aspace, rig.bbcache, rig,
                            rig.stats, "");
    U64 insns = 0;
    for (auto _ : state) {
        for (int i = 0; i < 10000; i++) {
            FunctionalEngine::StepResult r =
                engine.stepInsn(SimCycle(insns));
            insns += (U64)r.insns;
        }
    }
    state.counters["guest_insns_per_s"] = benchmark::Counter(
        (double)insns, benchmark::Counter::kIsRate);
}

/**
 * Raw memory-backend request throughput: how much the timing model at
 * the bottom of the hierarchy costs per access, per model. The miss
 * path calls request() once per line fill, so this bounds the
 * hierarchy-side overhead of swapping the flat latency for the
 * banked-DRAM or eDRAM+PCM models.
 */
void
BM_MemBackend(benchmark::State &state, MemBackendKind kind)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.membackend.kind = kind;
    StatsTree stats;
    std::unique_ptr<MemBackend> backend =
        makeMemBackend(cfg, stats, "core0/");
    // Pre-generated mixed trace so the loop measures the backend, not
    // the generator: 3/4 reads, line-granular, multi-bank.
    Rng rng(11);
    std::vector<std::pair<U64, bool>> trace;
    trace.reserve(4096);
    for (int i = 0; i < 4096; i++)
        trace.emplace_back(rng.below(1 << 22) * 64, rng.chance(1, 4));
    U64 now = 0, sink = 0;
    for (auto _ : state) {
        for (const auto &[addr, is_write] : trace) {
            sink ^= backend->request(GuestPhys(addr), is_write, SimCycle(now)).raw();
            now += 7;
        }
        backend->drainTo(SimCycle(now));
    }
    benchmark::DoNotOptimize(sink);
    state.counters["requests_per_s"] = benchmark::Counter(
        (double)state.iterations() * (double)trace.size(),
        benchmark::Counter::kIsRate);
}

/**
 * Idle-dominated full-system workload: the guest spends ~99% of its
 * virtual time blocked in sleep(1) waiting for the next timer tick.
 * The event kernel's idle fast-forward jumps straight to the queue
 * head instead of ticking cores through dead cycles, so simulated
 * cycles/second here should be far above the busy-loop core numbers.
 */
void
BM_IdleHeavyMachine(benchmark::State &state)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    cfg.core_freq_hz = 10'000'000;
    cfg.timer_hz = 1000;
    cfg.guest_mem_bytes = 32 << 20;
    Machine machine(cfg);
    KernelBuilder builder(machine.addressSpace(), machine.vcpu(0),
                          machine.timerPeriodCycles());
    Assembler &ua = builder.userAsm();
    GuestLib lib(ua);
    Label entry = ua.newLabel();
    Label skip = ua.newLabel();
    ua.jmp(skip);
    lib.emitRuntime();
    ua.bind(skip);
    ua.bind(entry);
    Label forever = ua.label();
    ua.mov(R::rdi, 1);
    lib.syscall(GSYS_sleep);
    ua.jmp(forever);
    builder.setInitTask(ua.labelVa(entry), 0);
    builder.build();
    machine.finalizeCores();

    const SimCycle start = machine.timeKeeper().cycle();
    for (auto _ : state)
        machine.run(1'000'000);
    U64 cycles = (machine.timeKeeper().cycle() - start).raw();
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        (double)cycles, benchmark::Counter::kIsRate);
    state.counters["events_per_mcycle"] =
        (double)machine.stats().get("eventq/fired") * 1e6
        / (double)std::max<U64>(1, cycles);
}

BENCHMARK(BM_OooCore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeqCore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeFunctional)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IdleHeavyMachine)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MemBackend, fixed, MemBackendKind::Fixed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MemBackend, banked, MemBackendKind::BankedDram)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MemBackend, hybrid, MemBackendKind::Hybrid)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ptl

BENCHMARK_MAIN();
