/**
 * Figure 2 regeneration: "Time lapse graph of cycles spent in each CPU
 * mode (user, kernel, idle)", with the rsync benchmark's phases
 * (a)-(g) annotated from the ptlcall markers.
 *
 * The paper stresses that a substantial share of cycles lands in the
 * kernel (~15%) or idle waiting for I/O (~27%) — time a userspace-only
 * simulator cannot account for. The shape checks assert exactly that.
 */

#include <cinttypes>

#include "bench_util.h"

using namespace ptl;

int
main(int argc, char **argv)
{
    BenchScale scale = BenchScale::fromArgs(argc, argv);
    printRunBanner("Figure 2: time lapse of cycles per CPU mode", scale);

    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    // The paper snapshots every 2.2M cycles (1000/s at 2.2 GHz);
    // scale the cadence so the run produces ~100+ snapshots.
    cfg.snapshot_interval = 500'000;
    RsyncBench bench(cfg, scale.params);
    RsyncBench::Result r = bench.run();
    if (!r.shutdown || r.mismatches != 0) {
        std::printf("FATAL: benchmark failed (mismatches=%" PRIu64 ")\n",
                    r.mismatches);
        return 1;
    }

    StatsTree &s = bench.machine().stats();
    auto user = s.deltaSeries("external/cycles_in_mode/user");
    auto kernel = s.deltaSeries("external/cycles_in_mode/kernel");
    auto idle = s.deltaSeries("external/cycles_in_mode/idle");
    const auto &marks = bench.machine().hypervisor().markers();

    auto phase_at = [&](SimCycle cycle) -> char {
        char tag = ' ';
        for (const PtlMarker &m : marks) {
            if (m.cycle <= cycle) {
                switch (m.id) {
                  case PHASE_A_STARTUP: tag = 'a'; break;
                  case PHASE_B_SSH_CONNECT: tag = 'b'; break;
                  case PHASE_C_CLIENT_LIST: tag = 'c'; break;
                  case PHASE_D_SERVER_LIST: tag = 'd'; break;
                  case PHASE_E_DELTAS: tag = 'e'; break;
                  case PHASE_F_TRANSMIT: tag = 'f'; break;
                  case PHASE_G_SHUTDOWN: tag = 'g'; break;
                }
            }
        }
        return tag;
    };

    std::printf("\nsnapshot interval: %" PRIu64 " cycles; %zu intervals\n",
                cfg.snapshot_interval, user.size());
    std::printf("%5s %5s  %6s %6s %6s  %s\n", "snap", "phase", "user%",
                "kern%", "idle%", "bar (u=user k=kernel .=idle)");
    U64 tot_user = 0, tot_kernel = 0, tot_idle = 0;
    for (size_t i = 0; i < user.size(); i++) {
        U64 total = user[i] + kernel[i] + idle[i];
        if (total == 0)
            continue;
        double up = 100.0 * user[i] / total;
        double kp = 100.0 * kernel[i] / total;
        double ip = 100.0 * idle[i] / total;
        tot_user += user[i];
        tot_kernel += kernel[i];
        tot_idle += idle[i];
        char bar[41];
        int un = (int)(up * 40 / 100.0 + 0.5);
        int kn = (int)(kp * 40 / 100.0 + 0.5);
        if (un + kn > 40)
            kn = 40 - un;
        int j = 0;
        for (; j < un; j++) bar[j] = 'u';
        for (; j < un + kn; j++) bar[j] = 'k';
        for (; j < 40; j++) bar[j] = '.';
        bar[40] = 0;
        std::printf("%5zu   (%c)  %5.1f%% %5.1f%% %5.1f%%  |%s|\n", i,
                    phase_at(s.snapshot(i + 1).cycle), up, kp, ip, bar);
    }

    U64 total = tot_user + tot_kernel + tot_idle;
    double up = 100.0 * tot_user / total;
    double kp = 100.0 * tot_kernel / total;
    double ip = 100.0 * tot_idle / total;
    std::printf("\noverall: user %.1f%%  kernel %.1f%%  idle %.1f%%  "
                "(paper: kernel ~15%%, idle ~27%%)\n", up, kp, ip);
    std::printf("phase markers:\n");
    for (const PtlMarker &m : marks)
        std::printf("  cycle %12" PRIu64 "  phase %llx\n", m.cycle,
                    (unsigned long long)m.id);

    bool ok = true;
    auto expect = [&](bool cond, const char *what) {
        std::printf("shape check: %-46s %s\n", what,
                    cond ? "PASS" : "FAIL");
        ok &= cond;
    };
    expect(kp > 4.0, "kernel time is a visible fraction (paper ~15%)");
    expect(ip > 5.0, "idle/IO-wait time is visible (paper ~27%)");
    expect(up > 25.0, "user computation dominates the rest");
    expect(marks.size() >= 7, "all benchmark phases (a)-(g) marked");
    std::printf("\n%s\n", ok ? "FIGURE 2 SHAPE: PASS"
                             : "FIGURE 2 SHAPE: FAIL");
    return ok ? 0 : 1;
}
