/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef PTLSIM_BENCH_BENCH_UTIL_H_
#define PTLSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/k8preset.h"

namespace ptl {

/** Benchmark scale, overridable from the command line / environment:
 *  --files N --mean BYTES --seed S, or PTLSIM_BENCH_FILES etc. */
struct BenchScale
{
    FileSetParams params;

    static BenchScale
    fromArgs(int argc, char **argv)
    {
        BenchScale s;
        s.params.file_count = 150;
        s.params.mean_file_bytes = 8192;
        s.params.max_file_bytes = 40960;
        s.params.seed = 42;
        if (const char *env = std::getenv("PTLSIM_BENCH_FILES"))
            s.params.file_count = std::atoi(env);
        for (int i = 1; i + 1 < argc + 1 && i < argc; i++) {
            auto is = [&](const char *flag) {
                return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
            };
            if (is("--files"))
                s.params.file_count = std::atoi(argv[++i]);
            else if (is("--mean"))
                s.params.mean_file_bytes =
                    (U64)std::atoll(argv[++i]);
            else if (is("--seed"))
                s.params.seed = (U64)std::atoll(argv[++i]);
        }
        return s;
    }
};

inline void
printRunBanner(const char *what, const BenchScale &scale)
{
    std::printf("== %s ==\n", what);
    std::printf("file set: %d files, mean %llu bytes, seed %llu "
                "(scaled from the paper's 6186 files / 48 MB)\n",
                scale.params.file_count,
                (unsigned long long)scale.params.mean_file_bytes,
                (unsigned long long)scale.params.seed);
}

}  // namespace ptl

#endif  // PTLSIM_BENCH_BENCH_UTIL_H_
