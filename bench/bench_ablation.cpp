/**
 * Ablation benchmarks for the design choices DESIGN.md calls out
 * (google-benchmark; the interesting output is the user counters,
 * which report *simulated* cycles — the architectural effect — while
 * the wall-clock column shows the simulation-speed effect):
 *
 *  - basic block cache: the paper notes the BB cache "simply exists to
 *    speed up the simulation"; ablated by invalidating translations
 *    every block, forcing re-decode (architecturally invisible:
 *    committed instruction counts must match).
 *  - branch predictor family: bimodal vs gshare vs hybrid vs static,
 *    measured as simulated cycles to finish a branchy kernel.
 *  - load hoisting on/off (the K8 preset disables it).
 *  - instant-visibility vs MOESI coherence on a two-core ping-pong.
 */

#include <benchmark/benchmark.h>

#include "core/coreapi.h"
#include "verify/verify.h"
#include "core/seqcore.h"
#include "kernel/guestlib.h"
#include "mem/coherence.h"
#include "xasm/assembler.h"

namespace ptl {
namespace {

constexpr U64 CODE_BASE = 0x400000;
constexpr U64 DATA_BASE = 0x600000;
constexpr U64 STACK_TOP = 0x800000;

class Rig : public SystemInterface
{
  public:
    Rig(const SimConfig &config, int ncores)
        : cfg(config), mem(32 << 20, 7, true), aspace(mem),
          bbcache(stats.counter("bbcache/hits"),
                  stats.counter("bbcache/misses"),
                  stats.counter("bbcache/smc_invalidations")),
          interlocks(stats),
          coherence(config.coherence, config.interconnect_latency, stats)
    {
        aspace.transCache().setShadowEnabled(cfg.verify);
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(CODE_BASE), 64 * PAGE_SIZE, Pte::RW | Pte::US);
        aspace.mapRange(cr3, GuestVirt(DATA_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        aspace.mapRange(cr3, GuestVirt(STACK_TOP - 64 * PAGE_SIZE), 64 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        for (int i = 0; i < ncores; i++) {
            contexts.push_back(std::make_unique<Context>());
            contexts[i]->cr3 = cr3;
            contexts[i]->kernel_mode = true;
            contexts[i]->regs[REG_rsp] =
                STACK_TOP - 64 - (U64)i * 0x8000;
            contexts[i]->vcpu_id = i;
        }
    }

    void
    loadAndStart(Assembler &assembler)
    {
        std::vector<U8> image = assembler.finalize();
        for (size_t i = 0; i < image.size(); i++) {
            GuestAccess a = guestTranslate(aspace, *contexts[0],
                                           GuestVirt(assembler.baseVa() + i),
                                           MemAccess::Write);
            mem.writeBytes(a.paddr, &image[i], 1);
        }
        for (size_t i = 0; i < contexts.size(); i++) {
            contexts[i]->rip = GuestVirt(CODE_BASE);
            CoreBuildParams p;
            p.config = &cfg;
            p.contexts = {contexts[i].get()};
            p.aspace = &aspace;
            p.bbcache = &bbcache;
            p.sys = this;
            p.stats = &stats;
            p.prefix = "core" + std::to_string(i) + "/";
            p.coherence = contexts.size() > 1 ? &coherence : nullptr;
            p.interlocks = &interlocks;
            hierarchies.push_back(std::make_unique<MemoryHierarchy>(
                cfg, aspace, stats, p.prefix, p.coherence));
            p.hierarchy = hierarchies.back().get();
            cores.push_back(createCoreModel(cfg.core, p));
            cores.back()->attachAuditor(
                makeVerifyAuditor(cfg, stats, p.prefix));
        }
    }

    /** Run to completion; returns simulated cycles. */
    U64
    run(bool thrash_bbcache = false)
    {
        U64 c = 0;
        while (true) {
            bool idle = true;
            for (auto &core : cores) {
                core->cycle(SimCycle(c));
                idle &= core->allIdle();
            }
            c++;
            if (thrash_bbcache && (c % 64) == 0)
                bbcache.invalidateAll();
            if (idle)
                break;
            if (c > 2'000'000'000ULL)
                break;
        }
        return c;
    }

    /** Like run(), but honours CoreModel::sleepUntil — the driver jumps
     *  straight to each core's next-interesting cycle instead of
     *  evaluating quiesced stall cycles one by one (the machine busy
     *  loop's skip-ahead contract). With cfg.skip_ahead off,
     *  sleepUntil always returns `now` and this degenerates to run(). */
    U64
    runWithSleep()
    {
        U64 c = 0;
        while (true) {
            bool idle = true;
            for (auto &core : cores) {
                core->cycle(SimCycle(c));
                idle &= core->allIdle();
            }
            c++;
            if (idle)
                break;
            if (c > 2'000'000'000ULL)
                break;
            SimCycle next = CYCLE_NEVER;
            for (auto &core : cores) {
                SimCycle s = core->sleepUntil(SimCycle(c));
                if (s < next)
                    next = s;
            }
            if (next != CYCLE_NEVER && next.raw() > c)
                c = next.raw();
        }
        return c;
    }

    U64 hypercall(Context &, U64, U64, U64, U64) override { return 0; }
    U64 readTsc(const Context &) override { return 0; }
    void vcpuBlock(Context &c) override { c.running = false; }
    U64 ptlcall(Context &, U64, U64, U64) override { return 0; }
    void notifyCodeWrite(Pfn mfn) override { bbcache.invalidateMfn(mfn); }
    bool isCodeMfn(Pfn mfn) const override
    {
        return bbcache.isCodeMfn(mfn);
    }

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    BasicBlockCache bbcache;
    InterlockController interlocks;
    CoherenceController coherence;
    std::vector<std::unique_ptr<Context>> contexts;
    std::vector<std::unique_ptr<MemoryHierarchy>> hierarchies;
    std::vector<std::unique_ptr<CoreModel>> cores;
    Pfn cr3;
};

void
branchyKernel(Assembler &a)
{
    a.mov(R::rbx, 99);
    a.mov(R::rcx, 30000);
    a.mov(R::rdx, 0);
    Label top = a.label();
    a.mov(R::rax, R::rbx);
    a.shl(R::rax, 13);
    a.xor_(R::rbx, R::rax);
    a.mov(R::rax, R::rbx);
    a.shr(R::rax, 7);
    a.xor_(R::rbx, R::rax);
    a.test(R::rbx, 3);
    Label skip = a.newLabel();
    a.jcc(COND_ne, skip);
    a.inc(R::rdx);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

void
BM_BbCacheOn(benchmark::State &state)
{
    U64 cycles = 0, insns = 0;
    for (auto _ : state) {
        Rig rig(SimConfig::preset("k8"), 1);
        rig.cfg.core = "ooo";
        Assembler a(CODE_BASE);
        branchyKernel(a);
        rig.loadAndStart(a);
        cycles = rig.run(false);
        insns = rig.stats.get("core0/commit/insns");
    }
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["guest_insns"] = (double)insns;
}

void
BM_BbCacheThrashed(benchmark::State &state)
{
    U64 cycles = 0, insns = 0;
    for (auto _ : state) {
        Rig rig(SimConfig::preset("k8"), 1);
        rig.cfg.core = "ooo";
        Assembler a(CODE_BASE);
        branchyKernel(a);
        rig.loadAndStart(a);
        cycles = rig.run(true);   // re-decode constantly
        insns = rig.stats.get("core0/commit/insns");
    }
    // Architecturally invisible: same instructions commit; only the
    // host-time column (simulation speed) degrades.
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["guest_insns"] = (double)insns;
}

void
predictorAblation(benchmark::State &state, PredictorKind kind)
{
    U64 cycles = 0, mispredicts = 0;
    for (auto _ : state) {
        SimConfig cfg = SimConfig::preset("k8");
        cfg.core = "ooo";
        cfg.predictor = kind;
        Rig rig(cfg, 1);
        Assembler a(CODE_BASE);
        branchyKernel(a);
        rig.loadAndStart(a);
        cycles = rig.run();
        mispredicts = rig.stats.get("core0/branches/mispredicted");
    }
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["mispredicts"] = (double)mispredicts;
}

/** Serialized pointer-chase: every load address depends on the
 *  previous load's value, so the pipeline drains on each D-miss and
 *  skip-ahead has long quiesced stretches to jump. */
void
missChainKernel(Assembler &a)
{
    a.movImm64(R::rbx, DATA_BASE);
    a.mov(R::rcx, 2000);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.and_(R::rdx, 63);
    a.shl(R::rdx, 13);               // 8 KB stride over a 512 KB window
    a.add(R::rdx, R::rbx);
    a.add(R::rdx, R::rax);           // serialize on the previous load
    a.mov(R::rsi, Mem::at(R::rdx));
    a.add(R::rax, R::rsi);           // zero-filled memory: rax stays 0
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

/** Skip-ahead on/off must be architecturally invisible — identical
 *  sim_cycles — while the wall-clock column shows the speedup from
 *  not evaluating quiesced stall cycles. evaluated_cycles reports how
 *  many cycles actually ran through the pipeline stages; the rest were
 *  jumped via sleepUntil. */
void
skipAheadAblation(benchmark::State &state, bool skip)
{
    U64 cycles = 0, evaluated = 0;
    for (auto _ : state) {
        // Rig setup (32 MB guest memory init) dwarfs the simulation
        // itself here; measure only the run loop.
        state.PauseTiming();
        SimConfig cfg = SimConfig::preset("k8");
        cfg.core = "ooo";
        cfg.skip_ahead = skip;
        auto rig = std::make_unique<Rig>(cfg, 1);
        Assembler a(CODE_BASE);
        missChainKernel(a);
        rig->loadAndStart(a);
        state.ResumeTiming();
        cycles = rig->runWithSleep();
        state.PauseTiming();
        evaluated = rig->stats.get("core0/cycles");
        rig.reset();
        state.ResumeTiming();
    }
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["evaluated_cycles"] = (double)evaluated;
}

void
BM_SkipAheadOn(benchmark::State &state)
{
    skipAheadAblation(state, true);
}
void
BM_SkipAheadOff(benchmark::State &state)
{
    skipAheadAblation(state, false);
}

void
BM_PredictorHybrid(benchmark::State &state)
{
    predictorAblation(state, PredictorKind::Hybrid);
}
void
BM_PredictorGshare(benchmark::State &state)
{
    predictorAblation(state, PredictorKind::Gshare);
}
void
BM_PredictorBimodal(benchmark::State &state)
{
    predictorAblation(state, PredictorKind::Bimodal);
}
void
BM_PredictorNotTaken(benchmark::State &state)
{
    predictorAblation(state, PredictorKind::NotTaken);
}

void
hoistKernel(Assembler &a)
{
    // Stores with slowly-resolving addresses followed by independent
    // loads: hoisting lets the loads start early.
    a.movImm64(R::rbx, DATA_BASE);
    a.mov(R::rcx, 20000);
    Label top = a.label();
    a.mov(R::rax, R::rbx);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.mov(Mem::at(R::rax, 0x100), R::rcx);      // slow-address store
    a.mov(R::rdx, Mem::at(R::rbx, 0x200));      // independent load
    a.add(R::rdx, Mem::at(R::rbx, 0x208));
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

void
hoistAblation(benchmark::State &state, bool hoisting)
{
    U64 cycles = 0, flushes = 0;
    for (auto _ : state) {
        SimConfig cfg = SimConfig::preset("k8");
        cfg.core = "ooo";
        cfg.load_hoisting = hoisting;
        Rig rig(cfg, 1);
        Assembler a(CODE_BASE);
        hoistKernel(a);
        rig.loadAndStart(a);
        cycles = rig.run();
        flushes = rig.stats.get("core0/lsq/hoist_flushes");
    }
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["hoist_flushes"] = (double)flushes;
}

void
BM_LoadHoistingOn(benchmark::State &state)
{
    hoistAblation(state, true);
}
void
BM_LoadHoistingOff(benchmark::State &state)
{
    hoistAblation(state, false);
}

void
coherenceAblation(benchmark::State &state, CoherenceKind kind)
{
    U64 cycles = 0, xfers = 0;
    for (auto _ : state) {
        SimConfig cfg = SimConfig::preset("k8");
        cfg.core = "ooo";
        cfg.coherence = kind;
        Rig rig(cfg, 2);
        Assembler a(CODE_BASE);
        // Two cores ping-pong one line with locked increments.
        a.movImm64(R::rbx, DATA_BASE);
        a.mov(R::rcx, 2000);
        Label top = a.label();
        a.lockInc(Mem::at(R::rbx));
        a.dec(R::rcx);
        a.jcc(COND_ne, top);
        a.hlt();
        rig.loadAndStart(a);
        cycles = rig.run();
        xfers = rig.stats.get("coherence/cache_to_cache_transfers");
    }
    state.counters["sim_cycles"] = (double)cycles;
    state.counters["c2c_transfers"] = (double)xfers;
}

void
BM_CoherenceInstant(benchmark::State &state)
{
    coherenceAblation(state, CoherenceKind::InstantVisibility);
}
void
BM_CoherenceMoesi(benchmark::State &state)
{
    coherenceAblation(state, CoherenceKind::Moesi);
}

BENCHMARK(BM_BbCacheOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BbCacheThrashed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkipAheadOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkipAheadOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictorHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictorGshare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictorBimodal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictorNotTaken)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadHoistingOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadHoistingOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoherenceInstant)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoherenceMoesi)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ptl

BENCHMARK_MAIN();
