"""simlint: PTLsim-specific static analysis.

Three rules, each a module under rules/:

  checkpoint-coverage  every data member of a class with a
                       serialize/restore pair must be touched by both
                       (or carry a `// simlint: transient` waiver);
  raw-cycle            no raw-integer cycle-stamp declarations or
                       ~0ULL cycle sentinels outside lib/simtime.h;
  nondeterminism       no wall-clock/rand/unordered-iteration sources
                       in serialized or statistics paths.

The backend is a hand-rolled token-level C++ lexer (lexer.py): the
container has no libclang, so rules consume a deliberately small
backend-independent model (model.py) that a libclang backend could
also produce.
"""

from . import lexer, model  # noqa: F401
