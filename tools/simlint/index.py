"""Semantic index: pass 1 of the two-pass analyzer.

Pass 1 walks every file once and distills it into a FileIndex — a
JSON-serializable bundle of exactly the structural facts the rules
consume:

  includes     quoted #include edges (line, header path)
  classes      class/struct defs with member (name, line, type) lists
               and declared method names
  enums        named enum defs with their enumerator lists
  bodies       "Class::method" -> identifier set (ctor initializer
               lists included)
  binds        "Class::method" -> member names bound through a
               StatsTree (init-list entries / assignments whose
               right-hand side calls .counter(...), plus single-id
               reference forwarding)
  switches     switch statements: subject ids, case label texts and
               trailing ids, default presence + whether the default
               body contains a guard (ptl_assert/ptl_warn_once/...)
  int_decls    raw-integer declarations of cycle-stamp-named
               variables, with an in-template flag
  addr_decls   raw-integer declarations of address-kind-named
               variables (*vaddr*/*paddr*/*pfn*/*vpn*), with an
               in-template flag — same shape as int_decls
  never_stmts  ~0ULL-style sentinels and the stamp id (if any) in the
               enclosing statement
  watch        occurrences of WATCHLIST identifiers with one token of
               context on each side (entropy sources, unordered
               containers, time)
  callbacks    lambda bodies passed to EventQueue::schedule/sendAt:
               the calls they make and any re-arming schedule calls
               (with whether the returned handle is kept)
  waivers      line -> `// simlint: <name>` waiver names (a waiver may
               carry an argument: `shared-guarded(registry_mu)`)
  ns_vars      mutable namespace-scope/file-scope variable declarations:
               (line, name, type, is_static)
  funcs        per-function nodes of the call graph: qualified name,
               definition line, body line span, calls made
               (line, callee), and function-local static declarations
               (line, name, type) — singleton accessors
  unordered_decls  (line, name) of variables/members declared with an
               unordered container type
  iter_sites   (line, [ids]) container-iteration sites: range-for
               subjects and receivers of .begin()/.cbegin() calls

Pass 2 (the rules) never touches tokens again, so a file's index can
be cached by content hash under build/simlint-cache/ and reused until
the file changes. The cache key is (INDEX_VERSION, file sha256,
toolchain fingerprint): the fingerprint hashes every analyzer source
file and layers.toml, so editing a rule or the layer DAG invalidates
the whole cache instead of serving stale facts. Bump INDEX_VERSION
when the extraction or the WATCHLIST changes (the fingerprint catches
that too; the version is belt and braces for exotic setups).
"""

import hashlib
import json
import os

from . import cfg as cfg_mod
from . import lexer, model

INDEX_VERSION = 4

# Identifiers whose every occurrence is recorded with context.
# nondeterminism (and any future rule keying on bare identifiers)
# matches against these; extend here and bump INDEX_VERSION.
WATCHLIST = frozenset({
    # libc / C++ entropy and wall-clock sources
    "rand", "srand", "drand48", "lrand48", "srand48", "rand_r",
    "random_device", "gettimeofday", "clock_gettime",
    "system_clock", "steady_clock", "high_resolution_clock",
    "time",
    # iteration-order-dependent containers
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})

# A switch default body counts as guarded when it names one of these.
GUARD_IDS = frozenset({
    "ptl_assert", "ptl_warn_once", "fatal", "panic", "abort",
    "assert", "__builtin_unreachable",
})

# Calls whose lambda arguments are event-queue callbacks.
SCHEDULE_IDS = frozenset({"schedule", "sendAt"})

_FIELDS = ("includes", "classes", "enums", "bodies", "binds",
           "switches", "int_decls", "never_stmts", "watch",
           "callbacks", "waivers", "ns_vars", "funcs",
           "unordered_decls", "iter_sites", "requires_decls",
           "addr_decls")

_INCLUDE_PREFIX = "#include"


def _jsonify(x):
    """Recursively map tuples to lists (what json.dump does anyway)."""
    if isinstance(x, (list, tuple)):
        return [_jsonify(v) for v in x]
    if isinstance(x, dict):
        return {k: _jsonify(v) for k, v in x.items()}
    return x


class FileIndex:
    """Per-file semantic facts; see module docstring for the schema."""

    def __init__(self, path, rel, sha, data):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.sha = sha
        for f in _FIELDS:
            setattr(self, f, data[f])

    def waived(self, line, name):
        return lexer.waiver_match(self.waivers.get(line, ()), name)

    def waiver_arg(self, line, name):
        return lexer.waiver_arg(self.waivers.get(line, ()), name)

    def to_data(self):
        # Canonical (JSON-shaped) form: tuples become lists and sets
        # become sorted lists, so a freshly built index and one loaded
        # back from the cache serialize identically.
        d = {f: _jsonify(getattr(self, f)) for f in _FIELDS}
        d["bodies"] = {q: sorted(ids) for q, ids in self.bodies.items()}
        d["binds"] = {q: sorted(ns) for q, ns in self.binds.items()}
        d["waivers"] = {str(ln): sorted(ns)
                        for ln, ns in self.waivers.items()}
        return d

    @classmethod
    def from_data(cls, path, rel, sha, data):
        data = dict(data)
        data["bodies"] = {q: set(v) for q, v in data["bodies"].items()}
        data["binds"] = {q: set(v) for q, v in data["binds"].items()}
        data["waivers"] = {int(ln): set(v)
                           for ln, v in data["waivers"].items()}
        data["includes"] = [tuple(x) for x in data["includes"]]
        data["int_decls"] = [tuple(x) for x in data["int_decls"]]
        data["addr_decls"] = [tuple(x) for x in data["addr_decls"]]
        data["never_stmts"] = [tuple(x) for x in data["never_stmts"]]
        data["watch"] = [tuple(x) for x in data["watch"]]
        data["ns_vars"] = [tuple(x) for x in data["ns_vars"]]
        data["unordered_decls"] = [tuple(x)
                                   for x in data["unordered_decls"]]
        data["iter_sites"] = [(ln, list(ids))
                              for ln, ids in data["iter_sites"]]
        return cls(path, rel, sha, data)


# ---------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------

def _match_paren(toks, i):
    """toks[i] is '('; return the index of its matching ')'."""
    depth = 0
    while i < len(toks):
        v = toks[i].value
        if v == "(":
            depth += 1
        elif v == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def _includes(toks):
    out = []
    for t in toks:
        if t.kind == "pp" and t.value.lstrip("# \t").startswith("include"):
            rest = t.value.split("include", 1)[1].strip()
            if rest.startswith('"') and rest.count('"') >= 2:
                out.append((t.line, rest.split('"')[1]))
    return out


def _enums(toks):
    out = []
    i = 0
    while i < len(toks):
        if toks[i].kind == "id" and toks[i].value == "enum":
            j = i + 1
            if j < len(toks) and toks[j].value in ("class", "struct"):
                j += 1
            if j < len(toks) and toks[j].kind == "id":
                name, line = toks[j].value, toks[j].line
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = model._match_brace(toks, k)
                    enumerators, depth, expect = [], 0, True
                    for x in toks[k + 1 : end - 1]:
                        v = x.value
                        if v in ("(", "[", "{"):
                            depth += 1
                        elif v in (")", "]", "}"):
                            depth -= 1
                        elif depth == 0 and v == ",":
                            expect = True
                        elif depth == 0 and expect and x.kind == "id":
                            enumerators.append(v)
                            expect = False
                    out.append({"name": name, "line": line,
                                "enumerators": enumerators})
                    i = end
                    continue
        i += 1
    return out


def _switches(toks):
    out = []
    i = 0
    while i < len(toks):
        if (toks[i].kind == "id" and toks[i].value == "switch"
                and i + 1 < len(toks) and toks[i + 1].value == "("):
            line = toks[i].line
            close = _match_paren(toks, i + 1)
            subject_ids = [t.value for t in toks[i + 2 : close]
                           if t.kind == "id"]
            b = close + 1
            if b < len(toks) and toks[b].value == "{":
                end = model._match_brace(toks, b)
                body = toks[b + 1 : end - 1]
                labels, label_ids = [], []
                has_default, default_guarded = False, False
                depth, m = 0, 0
                while m < len(body):
                    t = body[m]
                    v = t.value
                    if v == "{":
                        depth += 1
                    elif v == "}":
                        depth -= 1
                    elif depth == 0 and t.kind == "id" and v == "case":
                        lab = []
                        m += 1
                        while m < len(body) and body[m].value != ":":
                            lab.append(body[m])
                            m += 1
                        labels.append("".join(x.value for x in lab))
                        ids = [x.value for x in lab if x.kind == "id"]
                        if ids:
                            label_ids.append(ids[-1])
                        continue
                    elif depth == 0 and t.kind == "id" and v == "default":
                        has_default = True
                        m2 = m + 1
                        while m2 < len(body) and body[m2].value != ":":
                            m2 += 1
                        d, m3, seg = 0, m2 + 1, []
                        while m3 < len(body):
                            vv = body[m3].value
                            if vv == "{":
                                d += 1
                            elif vv == "}":
                                d -= 1
                            elif (d == 0 and body[m3].kind == "id"
                                  and vv in ("case", "default")):
                                break
                            seg.append(body[m3])
                            m3 += 1
                        default_guarded = any(
                            x.kind == "id" and x.value in GUARD_IDS
                            for x in seg)
                        m = m3
                        continue
                    m += 1
                out.append({"line": line, "subject_ids": subject_ids,
                            "labels": labels, "label_ids": label_ids,
                            "has_default": has_default,
                            "default_guarded": default_guarded})
                # Do NOT jump past the body: nested switches are found
                # by the continuing scan (their labels sit at depth>0
                # of this body, so they were not miscounted above).
        i += 1
    return out


def _template_spans(toks):
    """Token-index spans [lo, hi] of template<...> parameter lists."""
    spans = []
    i = 0
    while i < len(toks):
        if (toks[i].kind == "id" and toks[i].value == "template"
                and i + 1 < len(toks) and toks[i + 1].value == "<"):
            depth, j = 0, i + 1
            while j < len(toks):
                v = toks[j].value
                if v == "<":
                    depth += 1
                elif v == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif v == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif v in ("{", ";"):
                    break  # mis-nested: bail, span ends here
                j += 1
            spans.append((i, j))
            i = j
        i += 1
    return spans


_STAMP_SUFFIXES = ("_cycle", "_due", "_deadline", "_until", "_stamp")
_STAMP_EXACT = {"now", "cycle", "due", "deadline"}
_INT_TYPES = {"U64", "uint64_t", "U32", "uint32_t", "S64", "int64_t",
              "size_t", "int", "long", "unsigned"}
_DECL_FOLLOWERS = {";", "=", ",", ")", "{", "[", ":"}


def is_stamp_name(name):
    return name in _STAMP_EXACT or name.endswith(_STAMP_SUFFIXES)


# Address-kind declaration vocabulary: the deliberately narrow
# substring set from DESIGN.md §15 — names this specific are always
# guest addresses, so a raw-integer declaration is always a defect.
# (The taint analysis in rules/address_kind.py uses the broader
# cfg.addr_kind() vocabulary; bare `va`/`pa` locals are too ambiguous
# to flag at declaration.)
_ADDR_DECL_SUFFIX_TYPE = (("vaddr", "GuestVirt"), ("paddr", "GuestPhys"),
                          ("pfn", "Pfn"), ("vpn", "Vpn"))


def addr_decl_type(name):
    """Suggested strong type for an address-named declaration, or
    None when the name is not address-kind-specific."""
    n = name.lower()
    for sub, strong in _ADDR_DECL_SUFFIX_TYPE:
        if sub in n:
            return strong
    return None


def _scan_stream(toks):
    """One pass for int_decls, addr_decls, never_stmts and watch
    occurrences."""
    spans = _template_spans(toks)

    def in_template(i):
        return any(lo <= i <= hi for lo, hi in spans)

    int_decls, never_stmts, watch = [], [], []
    addr_decls = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "id":
            if (t.value in _INT_TYPES and i + 1 < n
                    and toks[i + 1].kind == "id"
                    and (i + 2 >= n
                         or toks[i + 2].value in _DECL_FOLLOWERS)):
                if is_stamp_name(toks[i + 1].value):
                    int_decls.append((toks[i + 1].line, t.value,
                                      toks[i + 1].value,
                                      bool(in_template(i + 1))))
                elif addr_decl_type(toks[i + 1].value):
                    addr_decls.append((toks[i + 1].line, t.value,
                                       toks[i + 1].value,
                                       bool(in_template(i + 1))))
            if t.value in WATCHLIST:
                prev = toks[i - 1].value if i > 0 else None
                nxt = toks[i + 1].value if i + 1 < n else None
                nxt2 = toks[i + 2].value if i + 2 < n else None
                watch.append((t.line, t.value, prev, nxt, nxt2))
        elif (t.value == "~" and i + 1 < n and toks[i + 1].kind == "num"
              and toks[i + 1].value.lower() in ("0ull", "0ul")):
            lo = i
            while lo > 0 and toks[lo].value not in (";", "{", "}"):
                lo -= 1
            hi = i
            while hi < n - 1 and toks[hi].value not in (";", "{"):
                hi += 1
            stamp = next((x.value for x in toks[lo:hi]
                          if x.kind == "id" and is_stamp_name(x.value)),
                         None)
            never_stmts.append((t.line, stamp))
    return int_decls, addr_decls, never_stmts, watch


def _callback_facts(line, body):
    """Facts about one lambda body passed to schedule()/sendAt()."""
    calls, rearms = [], []
    n = len(body)
    for i, t in enumerate(body):
        if not (t.kind == "id" and i + 1 < n
                and body[i + 1].value == "("):
            continue
        prev = body[i - 1].value if i > 0 else None
        if t.value in SCHEDULE_IDS:
            # Re-arm: is the returned handle kept? Look backwards in
            # the same statement for '=' / 'return' / 'auto'.
            lo = i
            while lo > 0 and body[lo - 1].value not in (";", "{", "}"):
                lo -= 1
            kept = any(x.value in ("=", "return", "auto")
                       for x in body[lo:i])
            rearms.append((t.line, bool(kept)))
        elif prev != "::":
            calls.append((t.line, t.value, prev in (".", "->")))
    return {"line": line, "calls": calls, "rearms": rearms}


def _callbacks(toks):
    out = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if (t.kind == "id" and t.value in SCHEDULE_IDS
                and i + 1 < len(toks) and toks[i + 1].value == "("):
            close = _match_paren(toks, i + 1)
            args = toks[i + 2 : close]
            m = 0
            while m < len(args):
                if args[m].value == "[":
                    d, e = 0, m
                    while e < len(args):
                        if args[e].value == "[":
                            d += 1
                        elif args[e].value == "]":
                            d -= 1
                            if d == 0:
                                break
                        e += 1
                    p = e + 1
                    if p < len(args) and args[p].value == "(":
                        p = _match_paren(args, p) + 1
                    while (p < len(args)
                           and args[p].value not in ("{", ",")):
                        p += 1
                    if p < len(args) and args[p].value == "{":
                        bend = model._match_brace(args, p)
                        out.append(_callback_facts(
                            t.line, args[p:bend]))
                        m = bend
                        continue
                m += 1
            i = close + 1
            continue
        i += 1
    return out


# ---------------------------------------------------------------------
# Concurrency-readiness facts (simlint v3)
# ---------------------------------------------------------------------

# Statement heads that can never open a namespace-scope variable.
_NS_SKIP_HEADS = frozenset({
    "using", "typedef", "friend", "template", "extern",
    "static_assert", "namespace", "enum", "operator", "asm", "goto",
    "public", "private", "protected",
})

# Tokens that qualify a declaration without being its type or name.
_NS_QUALIFIERS = frozenset({
    "static", "inline", "const", "constexpr", "constinit", "mutable",
    "volatile", "unsigned", "signed", "thread_local", "register",
    "struct", "class", "union", "typename", "extern",
})

_UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})

_ITER_CALLS = frozenset({"begin", "cbegin"})


def _top_level_eq(stmt):
    """True when the statement has an '=' outside any parens/brackets
    (a variable initializer, not a default argument)."""
    depth = 0
    for t in stmt:
        v = t.value
        if v in ("(", "["):
            depth += 1
        elif v in (")", "]"):
            depth -= 1
        elif v == "=" and depth == 0:
            return True
    return False


def _analyze_ns_stmt(stmt, out):
    """Append (line, name, type, is_static) if `stmt` declares a
    mutable namespace-scope variable.

    Immutability is judged lexically: any `const`/`constexpr` token in
    the declaration makes it immutable. That lets `const char *p;`
    (mutable pointer to const data) slip through — acceptable, and far
    better than flagging every `const char *const` table.
    """
    stmt = model.strip_annotations(stmt)
    if not stmt or stmt[0].kind != "id":
        return
    vals = [t.value for t in stmt]
    if vals[0] in _NS_SKIP_HEADS or "operator" in vals:
        return
    # const/constexpr make the variable immutable — but only at paren
    # depth 0: the `const` in a function-pointer parameter list
    # (`void (*sink)(const std::string &)`) qualifies a parameter, not
    # the pointer.
    depth = 0
    for t in stmt:
        if t.value in ("(", "["):
            depth += 1
        elif t.value in (")", "]"):
            depth -= 1
        elif (depth == 0
              and t.value in ("const", "constexpr", "constinit")):
            return
    if (vals[0] in ("struct", "class", "union")
            and sum(1 for t in stmt if t.kind == "id") <= 2):
        return  # forward declaration / bare definition, not a variable
    has_eq = _top_level_eq(stmt)
    has_paren = "(" in vals
    if has_paren and not has_eq:
        return  # prototype / out-of-line declaration
    if has_eq and has_paren and vals[-1] in ("default", "delete", "0"):
        return  # `T::T(...) = default;` / deleted / pure-virtual decl
    if not has_eq and model._stmt_is_function(stmt):
        return
    name = None
    if has_paren and has_eq:
        # Function pointer: `void (*log_sink)(const std::string &) = 0;`
        # — the declared name is the last identifier before the first
        # closing paren.
        for t in stmt:
            if t.value == ")":
                break
            if t.kind == "id":
                name = t
    else:
        for t in stmt:
            if t.value in ("=", "[", "{", ";"):
                break
            if t.kind == "id":
                name = t
    if name is None or name.value in _NS_QUALIFIERS:
        return
    mtype = next((t.value for t in stmt
                  if t.kind == "id" and t.value not in _NS_QUALIFIERS
                  and t.value != name.value), None)
    out.append((name.line, name.value, mtype, "static" in vals))


def _ns_vars(toks):
    """Mutable namespace-scope variable declarations.

    Walks the stream at namespace scope: `namespace`/`extern "C"`
    braces are transparent, class/enum/union bodies and function
    bodies are skipped wholesale, aggregate initializers are carried
    into their statement.
    """
    out = []
    stmt = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        v = t.value
        if t.kind == "pp":
            i += 1
            continue
        if v == ";":
            _analyze_ns_stmt(stmt, out)
            stmt = []
            i += 1
            continue
        if v == "{":
            vals = [x.value for x in stmt]
            if "namespace" in vals or (
                    vals and vals[0] == "extern"
                    and any(x.kind == "str" for x in stmt)):
                stmt = []       # transparent scope; descend
                i += 1
                continue
            if _top_level_eq(stmt):
                j = model._match_brace(toks, i)
                stmt.extend(toks[i:j])  # braced initializer
                i = j
                continue
            j = model._match_brace(toks, i)
            if model._stmt_is_function(stmt):
                stmt = []       # function body: statement over
            elif j < n and toks[j].value == ";":
                # Class/enum body directly followed by ';': a pure
                # type definition (`class X : public Y { ... };`), no
                # declarator. The base clause would otherwise read as
                # a variable named after the last base.
                stmt = []
            # else: keep the head — a declarator follows
            # (`struct {...} x;`).
            i = j
            continue
        if v == "}":
            stmt = []           # closing a transparent scope
            i += 1
            continue
        stmt.append(t)
        i += 1
    _analyze_ns_stmt(stmt, out)
    return out


def _local_static(unit, i):
    """Facts for a `static` declaration starting at unit[i], or None.
    Returns (line, name, type)."""
    n = len(unit)
    seg, depth, j = [], 0, i + 1
    while j < n:
        v = unit[j].value
        if v in ("(", "[", "{"):
            depth += 1
        elif v in (")", "]", "}"):
            depth -= 1
        elif v == ";" and depth <= 0:
            break
        seg.append(unit[j])
        j += 1
    seg = model.strip_annotations(seg)
    if not seg:
        return None
    if any(x.value in ("const", "constexpr") for x in seg):
        return None
    if model._stmt_is_function(seg):
        return None  # `static U8 helper(...)` declaration, not state
    name = None
    for t in seg:
        if t.value in ("=", "[", "{"):
            break
        if t.kind == "id":
            name = t
    if name is None or name.value in _NS_QUALIFIERS:
        return None
    mtype = next((t.value for t in seg
                  if t.kind == "id" and t.value not in _NS_QUALIFIERS
                  and t.value != name.value), None)
    return (name.line, name.value, mtype)


def _func_facts(units):
    """Call-graph nodes: one dict per function unit.  Each node also
    carries its serialized CFG (and any lambda sub-CFGs, keyed by
    their synthetic quals) for the flow-sensitive rules."""
    out = []
    for qual, unit, line, params in units:
        calls, statics = [], []
        n = len(unit)
        lo = min((t.line for t in unit), default=line)
        hi = max((t.line for t in unit), default=line)
        for i, t in enumerate(unit):
            if t.kind != "id":
                continue
            if (i + 1 < n and unit[i + 1].value == "("
                    and t.value not in model._NOT_FUNC_IDS):
                calls.append([t.line, t.value])
            elif (t.value == "static"
                  and (i == 0
                       or unit[i - 1].value in (";", "{", "}", ":"))):
                fact = _local_static(unit, i)
                if fact:
                    statics.append([fact[0], fact[1], fact[2]])
        cfgs = cfg_mod.build_cfg(qual, unit, params)
        node = {"qual": qual, "line": min(line, lo), "lo": lo,
                "hi": hi, "calls": calls, "statics": statics,
                "cfg": cfgs[0][1],
                "subcfgs": {q: c for q, c in cfgs[1:]}}
        out.append(node)
    return out


def _unordered_decls(toks):
    """(line, name) for declarations whose type is an unordered
    container: `std::unordered_map<K, V> name`."""
    out = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.value in _UNORDERED_TYPES:
            j = i + 1
            if j < n and toks[j].value == "<":
                depth = 0
                while j < n:
                    v = toks[j].value
                    if v == "<":
                        depth += 1
                    elif v == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif v == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    elif v in (";", "{"):
                        break
                    j += 1
                j += 1
            while j < n and toks[j].value in ("*", "&", "&&", "const"):
                j += 1
            if j < n and toks[j].kind == "id":
                out.append((toks[j].line, toks[j].value))
                i = j
        i += 1
    return out


def _iter_sites(toks):
    """Container-iteration sites: range-for subjects and explicit
    .begin()/.cbegin() receivers, as (line, [ids])."""
    out = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if (t.kind == "id" and t.value == "for"
                and i + 1 < n and toks[i + 1].value == "("):
            close = _match_paren(toks, i + 1)
            inner = toks[i + 2 : close]
            depth, colon = 0, None
            for k, x in enumerate(inner):
                v = x.value
                if v in ("(", "[", "{"):
                    depth += 1
                elif v in (")", "]", "}"):
                    depth -= 1
                elif v == ":" and depth == 0:
                    colon = k
                    break
                elif v == ";" and depth == 0:
                    break  # classic for loop, no range subject
            if colon is not None:
                ids = [x.value for x in inner[colon + 1 :]
                       if x.kind == "id"]
                if ids:
                    out.append((t.line, ids))
        elif (t.kind == "id" and t.value in _ITER_CALLS
              and i + 1 < n and toks[i + 1].value == "("
              and i >= 2 and toks[i - 1].value in (".", "->")
              and toks[i - 2].kind == "id"):
            out.append((t.line, [toks[i - 2].value]))
        i += 1
    return out


def _binds(units):
    """Map "Class::method" -> member names bound through a StatsTree.

    A bind is an init-list entry / call `name(args)` or `name{args}`
    whose args mention the id `counter` (i.e. stats.counter(...)), an
    assignment `name = ... counter(...) ...`, or a single-identifier
    forwarding entry `name(other_ref)` (constructor parameter
    forwarding — over-collects, but only Counter-typed members ever
    consult this table).
    """
    out = {}
    for qual, unit in units:
        names = set()
        n = len(unit)
        for i, t in enumerate(unit):
            if (t.kind == "id" and t.value != "counter" and i + 1 < n
                    and unit[i + 1].value in ("(", "{")):
                open_v = unit[i + 1].value
                close_v = ")" if open_v == "(" else "}"
                d, j = 0, i + 1
                while j < n:
                    v = unit[j].value
                    if v == open_v:
                        d += 1
                    elif v == close_v:
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                inner = unit[i + 2 : j]
                if any(x.kind == "id" and x.value == "counter"
                       for x in inner):
                    names.add(t.value)
                elif (open_v == "(" and len(inner) == 1
                      and inner[0].kind == "id"):
                    names.add(t.value)
        # Assignments: split on ';', look for `name = ... counter (`.
        stmt = []
        for t in unit:
            if t.value == ";":
                _assign_binds(stmt, names)
                stmt = []
            else:
                stmt.append(t)
        _assign_binds(stmt, names)
        if names:
            out.setdefault(qual, set()).update(names)
    return out


def _assign_binds(stmt, names):
    has_counter = any(
        t.kind == "id" and t.value == "counter"
        and i + 1 < len(stmt) and stmt[i + 1].value == "("
        for i, t in enumerate(stmt))
    if not has_counter:
        return
    for i, t in enumerate(stmt):
        if t.value == "=" and i > 0 and stmt[i - 1].kind == "id":
            names.add(stmt[i - 1].value)


def _requires_decls(toks):
    """PTL_REQUIRES annotations on class-body method *declarations*
    (no body): [qual, [locks]].  Out-of-line definitions rarely repeat
    the annotation, so the lock-discipline rule needs the decl-site
    fact to seed a method's entry lock context."""
    out = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ("struct", "class"):
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                cname = toks[j].value
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = model._match_brace(toks, k)
                    body = toks[k + 1 : end - 1]
                    for stmt in model._split_statements(body):
                        names = model._method_names(stmt)
                        if not names:
                            continue
                        for si, st in enumerate(stmt):
                            if (st.kind == "id"
                                    and st.value == "PTL_REQUIRES"
                                    and si + 1 < len(stmt)
                                    and stmt[si + 1].value == "("):
                                close = _match_paren(stmt, si + 1)
                                locks = [x.value for x in
                                         stmt[si + 2 : close]
                                         if x.kind == "id"]
                                for nm in names:
                                    out.append([cname + "::" + nm,
                                                locks])
                                break
                    i = end
                    continue
        i += 1
    return out


def build(path, rel, sha=None, text=None):
    if text is None:
        with open(path, "rb") as f:
            raw = f.read()
        text = raw.decode("utf-8", errors="replace")
        if sha is None:
            sha = hashlib.sha256(raw).hexdigest()
    elif sha is None:
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
    lf = lexer.LexedFile(path, text)
    toks = lf.tokens
    units_ex = list(model.function_units_ex(lf))
    units = [(qual, unit) for qual, unit, _line, _params in units_ex]
    bodies = {}
    for qual, unit in units:
        bodies.setdefault(qual, set()).update(
            t.value for t in unit if t.kind == "id")
    int_decls, addr_decls, never_stmts, watch = _scan_stream(toks)
    data = {
        "includes": _includes(toks),
        "classes": [
            {"name": c.name, "line": c.line,
             "members": [(m.name, m.line, m.type, m.guard)
                         for m in c.members],
             "methods": c.methods}
            for c in model.classes(lf)],
        "enums": _enums(toks),
        "bodies": bodies,
        "binds": _binds(units),
        "switches": _switches(toks),
        "int_decls": int_decls,
        "addr_decls": addr_decls,
        "never_stmts": never_stmts,
        "watch": watch,
        "callbacks": _callbacks(toks),
        "waivers": {ln: set(ns) for ln, ns in lf.waivers.items()},
        "ns_vars": _ns_vars(toks),
        "funcs": _func_facts(units_ex),
        "unordered_decls": _unordered_decls(toks),
        "iter_sites": _iter_sites(toks),
        "requires_decls": _requires_decls(toks),
    }
    return FileIndex(path, rel, sha, data)


# ---------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------

_FINGERPRINT = None


def toolchain_fingerprint():
    """sha256 over every analyzer source file and config table.

    Used as the `env` component of the cache key: editing any rule,
    the lexer, this module, or layers.toml must invalidate every
    cached index — otherwise a cache written by an older analyzer can
    serve facts the new rules misread (the staleness bug this fixes
    was exactly that: tweak a rule, get yesterday's verdicts).
    """
    global _FINGERPRINT
    if _FINGERPRINT is not None:
        return _FINGERPRINT
    root = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for fn in filenames:
            if fn.endswith((".py", ".toml")):
                paths.append(os.path.join(dirpath, fn))
    for p in sorted(paths):
        h.update(os.path.relpath(p, root).replace("\\", "/").encode())
        h.update(b"\0")
        try:
            with open(p, "rb") as f:
                h.update(f.read())
        except OSError:
            pass
        h.update(b"\0")
    _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def _cache_path(cache_dir, rel):
    safe = rel.replace("\\", "/").replace("/", "__")
    return os.path.join(cache_dir, safe + ".json")


def load_or_build(path, rel, cache_dir=None, env=None):
    """Return (FileIndex, cache_hit).

    `env` is the analyzer fingerprint the cache entry must match; it
    defaults to toolchain_fingerprint() so callers get staleness
    protection without opting in.
    """
    with open(path, "rb") as f:
        raw = f.read()
    sha = hashlib.sha256(raw).hexdigest()
    if env is None:
        env = toolchain_fingerprint()
    cpath = _cache_path(cache_dir, rel) if cache_dir else None
    if cpath and os.path.isfile(cpath):
        try:
            with open(cpath, "r", encoding="utf-8") as f:
                blob = json.load(f)
            if (blob.get("version") == INDEX_VERSION
                    and blob.get("sha") == sha
                    and blob.get("env") == env):
                return (FileIndex.from_data(path, rel, sha,
                                            blob["data"]), True)
        except (ValueError, OSError, KeyError, TypeError):
            pass  # corrupt/stale cache entry: rebuild below
    fi = build(path, rel, sha=sha,
               text=raw.decode("utf-8", errors="replace"))
    if cpath:
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp = cpath + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"version": INDEX_VERSION, "sha": sha,
                           "env": env, "data": fi.to_data()}, f)
            os.replace(tmp, cpath)
        except OSError:
            pass  # cache is best-effort
    return fi, False
