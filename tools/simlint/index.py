"""Semantic index: pass 1 of the two-pass analyzer.

Pass 1 walks every file once and distills it into a FileIndex — a
JSON-serializable bundle of exactly the structural facts the rules
consume:

  includes     quoted #include edges (line, header path)
  classes      class/struct defs with member (name, line, type) lists
               and declared method names
  enums        named enum defs with their enumerator lists
  bodies       "Class::method" -> identifier set (ctor initializer
               lists included)
  binds        "Class::method" -> member names bound through a
               StatsTree (init-list entries / assignments whose
               right-hand side calls .counter(...), plus single-id
               reference forwarding)
  switches     switch statements: subject ids, case label texts and
               trailing ids, default presence + whether the default
               body contains a guard (ptl_assert/ptl_warn_once/...)
  int_decls    raw-integer declarations of cycle-stamp-named
               variables, with an in-template flag
  never_stmts  ~0ULL-style sentinels and the stamp id (if any) in the
               enclosing statement
  watch        occurrences of WATCHLIST identifiers with one token of
               context on each side (entropy sources, unordered
               containers, time)
  callbacks    lambda bodies passed to EventQueue::schedule/sendAt:
               the calls they make and any re-arming schedule calls
               (with whether the returned handle is kept)
  waivers      line -> `// simlint: <name>` waiver names

Pass 2 (the rules) never touches tokens again, so a file's index can
be cached by content hash under build/simlint-cache/ and reused until
the file changes. INDEX_VERSION is part of the cache key: bump it
whenever the extraction or the WATCHLIST changes.
"""

import hashlib
import json
import os

from . import lexer, model

INDEX_VERSION = 1

# Identifiers whose every occurrence is recorded with context.
# nondeterminism (and any future rule keying on bare identifiers)
# matches against these; extend here and bump INDEX_VERSION.
WATCHLIST = frozenset({
    # libc / C++ entropy and wall-clock sources
    "rand", "srand", "drand48", "lrand48", "srand48", "rand_r",
    "random_device", "gettimeofday", "clock_gettime",
    "system_clock", "steady_clock", "high_resolution_clock",
    "time",
    # iteration-order-dependent containers
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})

# A switch default body counts as guarded when it names one of these.
GUARD_IDS = frozenset({
    "ptl_assert", "ptl_warn_once", "fatal", "panic", "abort",
    "assert", "__builtin_unreachable",
})

# Calls whose lambda arguments are event-queue callbacks.
SCHEDULE_IDS = frozenset({"schedule", "sendAt"})

_FIELDS = ("includes", "classes", "enums", "bodies", "binds",
           "switches", "int_decls", "never_stmts", "watch",
           "callbacks", "waivers")

_INCLUDE_PREFIX = "#include"


def _jsonify(x):
    """Recursively map tuples to lists (what json.dump does anyway)."""
    if isinstance(x, (list, tuple)):
        return [_jsonify(v) for v in x]
    if isinstance(x, dict):
        return {k: _jsonify(v) for k, v in x.items()}
    return x


class FileIndex:
    """Per-file semantic facts; see module docstring for the schema."""

    def __init__(self, path, rel, sha, data):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.sha = sha
        for f in _FIELDS:
            setattr(self, f, data[f])

    def waived(self, line, name):
        return name in self.waivers.get(line, ())

    def to_data(self):
        # Canonical (JSON-shaped) form: tuples become lists and sets
        # become sorted lists, so a freshly built index and one loaded
        # back from the cache serialize identically.
        d = {f: _jsonify(getattr(self, f)) for f in _FIELDS}
        d["bodies"] = {q: sorted(ids) for q, ids in self.bodies.items()}
        d["binds"] = {q: sorted(ns) for q, ns in self.binds.items()}
        d["waivers"] = {str(ln): sorted(ns)
                        for ln, ns in self.waivers.items()}
        return d

    @classmethod
    def from_data(cls, path, rel, sha, data):
        data = dict(data)
        data["bodies"] = {q: set(v) for q, v in data["bodies"].items()}
        data["binds"] = {q: set(v) for q, v in data["binds"].items()}
        data["waivers"] = {int(ln): set(v)
                           for ln, v in data["waivers"].items()}
        data["includes"] = [tuple(x) for x in data["includes"]]
        data["int_decls"] = [tuple(x) for x in data["int_decls"]]
        data["never_stmts"] = [tuple(x) for x in data["never_stmts"]]
        data["watch"] = [tuple(x) for x in data["watch"]]
        return cls(path, rel, sha, data)


# ---------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------

def _match_paren(toks, i):
    """toks[i] is '('; return the index of its matching ')'."""
    depth = 0
    while i < len(toks):
        v = toks[i].value
        if v == "(":
            depth += 1
        elif v == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def _includes(toks):
    out = []
    for t in toks:
        if t.kind == "pp" and t.value.lstrip("# \t").startswith("include"):
            rest = t.value.split("include", 1)[1].strip()
            if rest.startswith('"') and rest.count('"') >= 2:
                out.append((t.line, rest.split('"')[1]))
    return out


def _enums(toks):
    out = []
    i = 0
    while i < len(toks):
        if toks[i].kind == "id" and toks[i].value == "enum":
            j = i + 1
            if j < len(toks) and toks[j].value in ("class", "struct"):
                j += 1
            if j < len(toks) and toks[j].kind == "id":
                name, line = toks[j].value, toks[j].line
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = model._match_brace(toks, k)
                    enumerators, depth, expect = [], 0, True
                    for x in toks[k + 1 : end - 1]:
                        v = x.value
                        if v in ("(", "[", "{"):
                            depth += 1
                        elif v in (")", "]", "}"):
                            depth -= 1
                        elif depth == 0 and v == ",":
                            expect = True
                        elif depth == 0 and expect and x.kind == "id":
                            enumerators.append(v)
                            expect = False
                    out.append({"name": name, "line": line,
                                "enumerators": enumerators})
                    i = end
                    continue
        i += 1
    return out


def _switches(toks):
    out = []
    i = 0
    while i < len(toks):
        if (toks[i].kind == "id" and toks[i].value == "switch"
                and i + 1 < len(toks) and toks[i + 1].value == "("):
            line = toks[i].line
            close = _match_paren(toks, i + 1)
            subject_ids = [t.value for t in toks[i + 2 : close]
                           if t.kind == "id"]
            b = close + 1
            if b < len(toks) and toks[b].value == "{":
                end = model._match_brace(toks, b)
                body = toks[b + 1 : end - 1]
                labels, label_ids = [], []
                has_default, default_guarded = False, False
                depth, m = 0, 0
                while m < len(body):
                    t = body[m]
                    v = t.value
                    if v == "{":
                        depth += 1
                    elif v == "}":
                        depth -= 1
                    elif depth == 0 and t.kind == "id" and v == "case":
                        lab = []
                        m += 1
                        while m < len(body) and body[m].value != ":":
                            lab.append(body[m])
                            m += 1
                        labels.append("".join(x.value for x in lab))
                        ids = [x.value for x in lab if x.kind == "id"]
                        if ids:
                            label_ids.append(ids[-1])
                        continue
                    elif depth == 0 and t.kind == "id" and v == "default":
                        has_default = True
                        m2 = m + 1
                        while m2 < len(body) and body[m2].value != ":":
                            m2 += 1
                        d, m3, seg = 0, m2 + 1, []
                        while m3 < len(body):
                            vv = body[m3].value
                            if vv == "{":
                                d += 1
                            elif vv == "}":
                                d -= 1
                            elif (d == 0 and body[m3].kind == "id"
                                  and vv in ("case", "default")):
                                break
                            seg.append(body[m3])
                            m3 += 1
                        default_guarded = any(
                            x.kind == "id" and x.value in GUARD_IDS
                            for x in seg)
                        m = m3
                        continue
                    m += 1
                out.append({"line": line, "subject_ids": subject_ids,
                            "labels": labels, "label_ids": label_ids,
                            "has_default": has_default,
                            "default_guarded": default_guarded})
                # Do NOT jump past the body: nested switches are found
                # by the continuing scan (their labels sit at depth>0
                # of this body, so they were not miscounted above).
        i += 1
    return out


def _template_spans(toks):
    """Token-index spans [lo, hi] of template<...> parameter lists."""
    spans = []
    i = 0
    while i < len(toks):
        if (toks[i].kind == "id" and toks[i].value == "template"
                and i + 1 < len(toks) and toks[i + 1].value == "<"):
            depth, j = 0, i + 1
            while j < len(toks):
                v = toks[j].value
                if v == "<":
                    depth += 1
                elif v == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif v == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif v in ("{", ";"):
                    break  # mis-nested: bail, span ends here
                j += 1
            spans.append((i, j))
            i = j
        i += 1
    return spans


_STAMP_SUFFIXES = ("_cycle", "_due", "_deadline", "_until", "_stamp")
_STAMP_EXACT = {"now", "cycle", "due", "deadline"}
_INT_TYPES = {"U64", "uint64_t", "U32", "uint32_t", "S64", "int64_t",
              "size_t", "int", "long", "unsigned"}
_DECL_FOLLOWERS = {";", "=", ",", ")", "{", "[", ":"}


def is_stamp_name(name):
    return name in _STAMP_EXACT or name.endswith(_STAMP_SUFFIXES)


def _scan_stream(toks):
    """One pass for int_decls, never_stmts and watch occurrences."""
    spans = _template_spans(toks)

    def in_template(i):
        return any(lo <= i <= hi for lo, hi in spans)

    int_decls, never_stmts, watch = [], [], []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "id":
            if (t.value in _INT_TYPES and i + 1 < n
                    and toks[i + 1].kind == "id"
                    and is_stamp_name(toks[i + 1].value)
                    and (i + 2 >= n
                         or toks[i + 2].value in _DECL_FOLLOWERS)):
                int_decls.append((toks[i + 1].line, t.value,
                                  toks[i + 1].value,
                                  bool(in_template(i + 1))))
            if t.value in WATCHLIST:
                prev = toks[i - 1].value if i > 0 else None
                nxt = toks[i + 1].value if i + 1 < n else None
                nxt2 = toks[i + 2].value if i + 2 < n else None
                watch.append((t.line, t.value, prev, nxt, nxt2))
        elif (t.value == "~" and i + 1 < n and toks[i + 1].kind == "num"
              and toks[i + 1].value.lower() in ("0ull", "0ul")):
            lo = i
            while lo > 0 and toks[lo].value not in (";", "{", "}"):
                lo -= 1
            hi = i
            while hi < n - 1 and toks[hi].value not in (";", "{"):
                hi += 1
            stamp = next((x.value for x in toks[lo:hi]
                          if x.kind == "id" and is_stamp_name(x.value)),
                         None)
            never_stmts.append((t.line, stamp))
    return int_decls, never_stmts, watch


def _callback_facts(line, body):
    """Facts about one lambda body passed to schedule()/sendAt()."""
    calls, rearms = [], []
    n = len(body)
    for i, t in enumerate(body):
        if not (t.kind == "id" and i + 1 < n
                and body[i + 1].value == "("):
            continue
        prev = body[i - 1].value if i > 0 else None
        if t.value in SCHEDULE_IDS:
            # Re-arm: is the returned handle kept? Look backwards in
            # the same statement for '=' / 'return' / 'auto'.
            lo = i
            while lo > 0 and body[lo - 1].value not in (";", "{", "}"):
                lo -= 1
            kept = any(x.value in ("=", "return", "auto")
                       for x in body[lo:i])
            rearms.append((t.line, bool(kept)))
        elif prev != "::":
            calls.append((t.line, t.value, prev in (".", "->")))
    return {"line": line, "calls": calls, "rearms": rearms}


def _callbacks(toks):
    out = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if (t.kind == "id" and t.value in SCHEDULE_IDS
                and i + 1 < len(toks) and toks[i + 1].value == "("):
            close = _match_paren(toks, i + 1)
            args = toks[i + 2 : close]
            m = 0
            while m < len(args):
                if args[m].value == "[":
                    d, e = 0, m
                    while e < len(args):
                        if args[e].value == "[":
                            d += 1
                        elif args[e].value == "]":
                            d -= 1
                            if d == 0:
                                break
                        e += 1
                    p = e + 1
                    if p < len(args) and args[p].value == "(":
                        p = _match_paren(args, p) + 1
                    while (p < len(args)
                           and args[p].value not in ("{", ",")):
                        p += 1
                    if p < len(args) and args[p].value == "{":
                        bend = model._match_brace(args, p)
                        out.append(_callback_facts(
                            t.line, args[p:bend]))
                        m = bend
                        continue
                m += 1
            i = close + 1
            continue
        i += 1
    return out


def _binds(units):
    """Map "Class::method" -> member names bound through a StatsTree.

    A bind is an init-list entry / call `name(args)` or `name{args}`
    whose args mention the id `counter` (i.e. stats.counter(...)), an
    assignment `name = ... counter(...) ...`, or a single-identifier
    forwarding entry `name(other_ref)` (constructor parameter
    forwarding — over-collects, but only Counter-typed members ever
    consult this table).
    """
    out = {}
    for qual, unit in units:
        names = set()
        n = len(unit)
        for i, t in enumerate(unit):
            if (t.kind == "id" and t.value != "counter" and i + 1 < n
                    and unit[i + 1].value in ("(", "{")):
                open_v = unit[i + 1].value
                close_v = ")" if open_v == "(" else "}"
                d, j = 0, i + 1
                while j < n:
                    v = unit[j].value
                    if v == open_v:
                        d += 1
                    elif v == close_v:
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                inner = unit[i + 2 : j]
                if any(x.kind == "id" and x.value == "counter"
                       for x in inner):
                    names.add(t.value)
                elif (open_v == "(" and len(inner) == 1
                      and inner[0].kind == "id"):
                    names.add(t.value)
        # Assignments: split on ';', look for `name = ... counter (`.
        stmt = []
        for t in unit:
            if t.value == ";":
                _assign_binds(stmt, names)
                stmt = []
            else:
                stmt.append(t)
        _assign_binds(stmt, names)
        if names:
            out.setdefault(qual, set()).update(names)
    return out


def _assign_binds(stmt, names):
    has_counter = any(
        t.kind == "id" and t.value == "counter"
        and i + 1 < len(stmt) and stmt[i + 1].value == "("
        for i, t in enumerate(stmt))
    if not has_counter:
        return
    for i, t in enumerate(stmt):
        if t.value == "=" and i > 0 and stmt[i - 1].kind == "id":
            names.add(stmt[i - 1].value)


def build(path, rel, sha=None, text=None):
    if text is None:
        with open(path, "rb") as f:
            raw = f.read()
        text = raw.decode("utf-8", errors="replace")
        if sha is None:
            sha = hashlib.sha256(raw).hexdigest()
    elif sha is None:
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
    lf = lexer.LexedFile(path, text)
    toks = lf.tokens
    units = list(model.function_units(lf))
    bodies = {}
    for qual, unit in units:
        bodies.setdefault(qual, set()).update(
            t.value for t in unit if t.kind == "id")
    int_decls, never_stmts, watch = _scan_stream(toks)
    data = {
        "includes": _includes(toks),
        "classes": [
            {"name": c.name, "line": c.line,
             "members": [(m.name, m.line, m.type) for m in c.members],
             "methods": c.methods}
            for c in model.classes(lf)],
        "enums": _enums(toks),
        "bodies": bodies,
        "binds": _binds(units),
        "switches": _switches(toks),
        "int_decls": int_decls,
        "never_stmts": never_stmts,
        "watch": watch,
        "callbacks": _callbacks(toks),
        "waivers": {ln: set(ns) for ln, ns in lf.waivers.items()},
    }
    return FileIndex(path, rel, sha, data)


# ---------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------

def _cache_path(cache_dir, rel):
    safe = rel.replace("\\", "/").replace("/", "__")
    return os.path.join(cache_dir, safe + ".json")


def load_or_build(path, rel, cache_dir=None):
    """Return (FileIndex, cache_hit)."""
    with open(path, "rb") as f:
        raw = f.read()
    sha = hashlib.sha256(raw).hexdigest()
    cpath = _cache_path(cache_dir, rel) if cache_dir else None
    if cpath and os.path.isfile(cpath):
        try:
            with open(cpath, "r", encoding="utf-8") as f:
                blob = json.load(f)
            if (blob.get("version") == INDEX_VERSION
                    and blob.get("sha") == sha):
                return (FileIndex.from_data(path, rel, sha,
                                            blob["data"]), True)
        except (ValueError, OSError, KeyError, TypeError):
            pass  # corrupt/stale cache entry: rebuild below
    fi = build(path, rel, sha=sha,
               text=raw.decode("utf-8", errors="replace"))
    if cpath:
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp = cpath + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"version": INDEX_VERSION, "sha": sha,
                           "data": fi.to_data()}, f)
            os.replace(tmp, cpath)
        except OSError:
            pass  # cache is best-effort
    return fi, False
