// address-kind bad fixture: raw-integer declarations of address-named
// variables, virt/phys values laundered through .raw() into mixed
// arithmetic and comparisons, a raw virtual word re-wrapped as a
// physical address, and a raw escape passed into a parameter of the
// opposite kind.

using U64 = unsigned long long;

struct GuestVirt {
    U64 raw() const;
};
struct GuestPhys {
    U64 raw() const;
};

namespace ptl {

struct Tlb {
    U64 fault_vaddr = 0;  // BAD: raw declaration of a virtual address
};

U64 lookup(U64 goal_paddr);   // BAD: raw phys-address parameter

bool hit(GuestVirt va, GuestPhys paddr)
{
    U64 p = va.raw();
    return p == paddr.raw();  // BAD: virt/phys identity comparison
}

U64 offset(GuestVirt va, GuestPhys frame_pa)
{
    U64 base = frame_pa.raw();
    U64 dist = base - va.raw();  // BAD: cross-kind subtraction
    return dist;
}

GuestPhys translate(GuestVirt va);

GuestPhys shortcut(GuestVirt va)
{
    return GuestPhys(va.raw());  // BAD: re-wrap across the boundary
}

static void probe(U64 pfn, U64 len)   // BAD: raw pfn declaration
{
    (void)pfn;
    (void)len;
}

void scan(GuestVirt va)
{
    probe(va.raw(), 64);  // BAD: virt raw into a phys-kind parameter
}

}  // namespace ptl
