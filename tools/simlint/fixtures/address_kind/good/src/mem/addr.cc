// address-kind good fixture: the legitimate uses of address .raw() —
// serialization of the raw word, same-kind re-wrap on restore, typed
// same-kind algebra, translation as the only virt->phys bridge, and
// an argumented waiver at a documented ABI-bridge site.

#include <vector>

using U64 = unsigned long long;

struct GuestVirt {
    U64 raw() const;
    GuestVirt pageBase() const;
};
struct GuestPhys {
    U64 raw() const;
};

namespace ptl {

GuestPhys walk(GuestVirt va);

void serialize(std::vector<U64> &out, GuestVirt va, GuestPhys paddr)
{
    out.push_back(va.raw());     // raw words are the wire format
    out.push_back(paddr.raw());
}

GuestVirt restore(const std::vector<U64> &words)
{
    return GuestVirt(words[0]);  // same-kind re-wrap
}

bool samePage(GuestVirt a_va, GuestVirt b_va)
{
    return a_va.pageBase() == b_va.pageBase();  // typed algebra
}

GuestPhys bridge(GuestVirt va)
{
    return walk(va);             // translation is the bridge
}

U64 archImage(GuestVirt va)
{
    U64 image = va.raw();        // register images are raw words;
    return image;                // taint without a sink is clean
}

bool identityMapped(GuestVirt va, GuestPhys paddr)
{
    return va.raw() == paddr.raw();  // simlint: addr-ok(identity mapping check compares the numeric words by design)
}

}  // namespace ptl
