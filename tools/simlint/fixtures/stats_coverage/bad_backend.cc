// Golden NEGATIVE fixture for stats-coverage, memory-backend flavour:
// a timing model declares its counter block but never binds the
// row-conflict counter to the StatsTree, so the stat silently reads
// zero for every workload.
#include "stats/stats.h"

class BankedStats
{
  public:
    explicit BankedStats(StatsTree &stats)
        : reads(stats.counter("membackend/reads")),
          writes(stats.counter("membackend/writes")),
          row_hits(stats.counter("membackend/row_hits"))
    {
    }

  private:
    Counter &reads;
    Counter &writes;
    Counter &row_hits;
    Counter &row_conflicts;   // never bound: the stat reads zero forever
};
