// Golden POSITIVE fixture for stats-coverage: every counter bound
// (directly or forwarded through a constructor parameter), every raw
// accumulator in both snapshot and reset, one member waived.
#include "stats/stats.h"

class CacheStats
{
  public:
    CacheStats(StatsTree &stats, Counter &shared)
        : hits(stats.counter("cache/hits")),
          misses(stats.counter("cache/misses")),
          evictions(shared)
    {
    }

  private:
    Counter &hits;
    Counter &misses;
    Counter &evictions;   // forwarded reference: bound by the caller
};

class Accum
{
  public:
    void takeSnapshot() { last_ops = ops; }

    void
    reset()
    {
        ops = 0;
        last_ops = 0;
    }

  private:
    U64 ops = 0;
    U64 last_ops = 0;
    U64 scratch = 0;  // simlint: stats-ok (transient working value)
};
