// Golden NEGATIVE fixture for stats-coverage: one counter member is
// never bound to a StatsTree (clause a), and one raw accumulator is
// missing from both the snapshot and reset paths (clause b).
#include "stats/stats.h"

class CacheStats
{
  public:
    explicit CacheStats(StatsTree &stats)
        : hits(stats.counter("cache/hits"))
    {
    }

  private:
    Counter &hits;
    Counter &misses;   // never bound anywhere: reads zero forever
};

class Accum
{
  public:
    void takeSnapshot() { last_ops = ops; }

    void
    reset()
    {
        ops = 0;
        last_ops = 0;
    }

  private:
    U64 ops = 0;
    U64 last_ops = 0;
    U64 retired = 0;   // in neither takeSnapshot nor reset
};
