// Golden POSITIVE fixture for stats-coverage, memory-backend flavour:
// the full banked-DRAM counter block bound under the per-core prefix,
// plus an optional owner-bound pointer counter carrying a waiver (the
// CacheArray eviction-counter pattern).
#include "stats/stats.h"

class BankedStats
{
  public:
    BankedStats(StatsTree &stats, const std::string &prefix,
                Counter *evictions)
        : reads(stats.counter(prefix + "membackend/reads")),
          writes(stats.counter(prefix + "membackend/writes")),
          row_hits(stats.counter(prefix + "membackend/row_hits")),
          row_conflicts(stats.counter(prefix + "membackend/row_conflicts")),
          evictions_(evictions)
    {
    }

  private:
    Counter &reads;
    Counter &writes;
    Counter &row_hits;
    Counter &row_conflicts;
    Counter *evictions_;  // simlint: stats-ok (optional, owner-bound)
};
