// lock-discipline good fixture: every access to the guarded member
// is dominated by a LockGuard on all paths, a PTL_REQUIRES body
// inherits the caller's lock, call-site context propagates one level
// into an unannotated helper, and an intentionally racy read carries
// an argumented waiver.

namespace ptl {

class Mutex { };

class LockGuard {
  public:
    explicit LockGuard(Mutex &m);
};

class Registry {
  public:
    int peek(bool fast)
    {
        LockGuard g(mu_);
        if (fast)
            return table;
        return table + 1;
    }

    int peekLocked() PTL_REQUIRES(mu_)
    {
        return table;  // OK: every caller holds mu_
    }

    int sumLocked()
    {
        return table;  // OK: entry context inferred from call sites
    }

    int readAll()
    {
        LockGuard g(mu_);
        return peekLocked() + sumLocked();
    }

    int approx() const
    {
        return table;  // simlint: lock-ok(monitoring read tolerates staleness)
    }

  private:
    mutable Mutex mu_;
    int table PTL_GUARDED_BY(mu_);
};

}  // namespace ptl
