// lock-discipline bad fixture: 'table' is guarded by mu_ but peek()
// reads it on a path where no guard is in scope, and readAll() calls
// a PTL_REQUIRES(mu_) function without holding the lock.

namespace ptl {

class Mutex { };

class LockGuard {
  public:
    explicit LockGuard(Mutex &m);
};

class Registry {
  public:
    int peek(bool fast)
    {
        if (fast) {
            LockGuard g(mu_);
            return table;
        }
        return table;  // BAD: mu_ not held on this path
    }

    int peekLocked() PTL_REQUIRES(mu_);

    int readAll()
    {
        return peekLocked();  // BAD: caller must hold mu_
    }

  private:
    Mutex mu_;
    int table PTL_GUARDED_BY(mu_);
};

}  // namespace ptl
