// Golden GOOD fixture for shared-state: constants are ignored, and
// both waiver forms — domain-local with a single-Domain proof,
// shared-guarded naming its lock — silence the rule.

namespace ptl {

// Immutable: never flagged.
constexpr int kMaxDomains = 64;
const char *const kPhaseNames[] = {"boot", "run", "drain"};

// Touched only by the owning Domain's thread; migrates into
// Domain-owned state in the sharding PR.
int prefetch_scratch = 0;  // simlint: domain-local

// Genuinely shared; the named mutex is the auditable guard.
static int registry_epoch = 0;  // simlint: shared-guarded(registry_mu)

int &
sequenceCounter()
{
    static int counter = 0;  // simlint: domain-local
    return counter;
}

}  // namespace ptl
