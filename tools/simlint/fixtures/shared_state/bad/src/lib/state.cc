// Golden BAD fixture for shared-state: every form of unaccounted
// mutable process-wide state the rule exists to catch. Once the
// machine is sharded (one thread per Domain), each of these is a
// data race waiting for a schedule.

namespace ptl {

// Namespace-scope mutable variable.
int global_tick_count = 0;

// File-scope static.
static int boot_phase = 0;

// Function-local static: the classic singleton accessor.
int &
phaseCounter()
{
    static int counter = 0;
    return counter;
}

// A shared-guarded waiver that names no lock is itself a finding:
// a guard nobody can name is a guard that does not exist.
static int guarded_badly = 0;  // simlint: shared-guarded

}  // namespace ptl
