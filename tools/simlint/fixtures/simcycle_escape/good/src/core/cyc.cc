// simcycle-escape good fixture: the legitimate uses of .raw() —
// serialization, identity comparison, bucketing through * / %, a
// re-wrap into the strong type before the call, and an argumented
// waiver for a stats delta.

#include <vector>

struct SimCycle {
    unsigned long long raw() const;
};

namespace ptl {

void fold(SimCycle target);

void emit(std::vector<unsigned long long> &out, SimCycle now)
{
    out.push_back(now.raw());  // serialization of the raw word
}

bool same(SimCycle a_stamp, SimCycle b_stamp)
{
    return a_stamp.raw() == b_stamp.raw();  // identity is exempt
}

unsigned long long bucket(SimCycle now, unsigned long long width)
{
    unsigned long long t = now.raw();
    t = t / width;                    // division is not a sink
    unsigned long long idx = t % 8;   // neither is modulo
    return idx;
}

void realign(SimCycle now, unsigned long long iv)
{
    fold(SimCycle((now.raw() / iv + 1) * iv));  // re-wrapped: clean
}

unsigned long long age(SimCycle now, SimCycle birth_cycle)
{
    unsigned long long t = now.raw();
    return t - birth_cycle.raw();  // simlint: raw-escape-ok(stats delta rendered as raw words)
}

}  // namespace ptl
