// simcycle-escape bad fixture: stamps laundered through .raw() into
// locals re-enter cycle arithmetic and ordering comparisons, and a
// raw value passed unwrapped into a helper taints its parameter.

struct SimCycle {
    unsigned long long raw() const;
};

namespace ptl {

void tick(SimCycle now, unsigned long long latency)
{
    unsigned long long t = now.raw();
    unsigned long long fini = t + latency;  // BAD: raw cycle math
    (void)fini;
}

bool overdue(SimCycle now, SimCycle op_due)
{
    unsigned long long t = now.raw();
    return t < op_due.raw();  // BAD: raw ordering comparison
}

static void note(unsigned long long when, unsigned long long lat)
{
    unsigned long long fin = when + lat;  // BAD: tainted parameter
    (void)fin;
}

void record(SimCycle now)
{
    note(now.raw(), 5);
}

}  // namespace ptl
