// Golden NEGATIVE fixture for enum-exhaustiveness: one switch hides
// missing enumerators behind a silent default, another simply omits
// them. Both must be reported.
enum class UopClass : unsigned char { IntAlu, Load, Store, Fence };

enum Hypercall : unsigned long {
    HC_console_write = 1,
    HC_set_timer = 2,
};

int
classLatency(UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu: return 1;
      case UopClass::Load: return 4;
      default: return 1;   // silent: Store and Fence fall through here
    }
}

unsigned long
dispatch(unsigned long nr)
{
    switch ((Hypercall)nr) {   // no default at all: HC_set_timer lost
      case HC_console_write: return 0;
    }
    return 0;
}
