// Golden POSITIVE fixture for enum-exhaustiveness: a fully covered
// switch, a guarded default, and an explicitly waived partial table.
enum class UopClass : unsigned char { IntAlu, Load };

enum Hypercall : unsigned long {
    HC_console_write = 1,
    HC_set_timer = 2,
};

int
classLatency(UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu: return 1;
      case UopClass::Load: return 4;
    }
    return 1;
}

unsigned long
dispatch(unsigned long nr, unsigned long a1)
{
    switch ((Hypercall)nr) {
      case HC_console_write: return a1;
      default:
        ptl_warn_once("unknown hypercall");
        return 0;
    }
}

int
partialTable(UopClass cls)
{
    switch (cls) {  // simlint: enum-ok (deliberately partial demo)
      case UopClass::IntAlu: return 3;
    }
    return 1;
}
