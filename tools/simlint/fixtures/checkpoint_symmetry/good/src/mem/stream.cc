// checkpoint-symmetry good fixture: the tagged + size-checked word
// stream shape from mem/membackend — a leading tag, an element
// count cross-checked on restore, and a loop whose emit and consume
// sit at the same loop depth.

#include <vector>

using U64 = unsigned long long;

namespace ptl {

class BankState {
  public:
    void serialize(std::vector<U64> &out) const
    {
        out.push_back(TAG_BANK);
        out.push_back(rows.size());
        for (U64 r : rows)
            out.push_back(r);
    }

    bool restore(const std::vector<U64> &words)
    {
        if (words.size() < 2 || words[0] != TAG_BANK ||
            words[1] != rows.size())
            return false;
        size_t i = 2;
        for (U64 &r : rows)
            r = words[i++];
        return true;
    }

  private:
    static constexpr U64 TAG_BANK = 7;
    std::vector<U64> rows;
};

}  // namespace ptl
