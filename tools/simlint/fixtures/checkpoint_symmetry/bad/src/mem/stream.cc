// checkpoint-symmetry bad fixture: serialize writes open_row then
// busy, but restore consumes busy first — the set-membership
// coverage check passes (both members appear in both bodies), only
// the ordered-stream comparison sees the corruption.

#include <vector>

using U64 = unsigned long long;

namespace ptl {

class BankState {
  public:
    void serialize(std::vector<U64> &out) const
    {
        out.push_back(open_row);
        out.push_back(busy);
    }

    bool restore(const std::vector<U64> &words)
    {
        if (words.size() != 2)
            return false;
        size_t i = 0;
        busy = words[i++];  // BAD: swapped vs serialize order
        open_row = words[i++];
        return true;
    }

  private:
    U64 open_row;
    U64 busy;
};

}  // namespace ptl
