// Golden NEGATIVE fixture for layering: a memory-layer header reaching
// UP into the machine-assembly layer, plus an undeclared same-layer
// edge into the branch module. Both edges must be reported.
#include "branch/predictor.h"
#include "sys/machine.h"

struct MemWidget
{
    int order = 0;
};
