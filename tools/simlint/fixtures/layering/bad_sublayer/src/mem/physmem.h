// Golden NEGATIVE fixture for layering (sublayer form): the bottom of
// the mem module reaching UP to the per-core assembly aggregate. At
// module granularity the edge is intra-mem and legal; only the
// [sublayers] mem order catches it (physmem is group 1, hierarchy is
// group 6).
#include "mem/hierarchy.h"

struct PhysFrame
{
    int refs = 0;
};
