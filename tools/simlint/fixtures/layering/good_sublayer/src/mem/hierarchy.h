// Golden POSITIVE fixture for layering (sublayer form): the top of
// the mem module composing everything below it — strictly lower
// groups (replacement, cache, membackend) plus its declared-mutual
// peer coherence (same group) — and a stem outside the sublayer
// order (scratch), which is exempt.
#include "mem/cache.h"
#include "mem/coherence.h"
#include "mem/membackend.h"
#include "mem/replacement.h"
#include "mem/scratch.h"

struct HierarchyView
{
    int levels = 3;
};
