// Golden POSITIVE fixture for layering: downward includes, a declared
// same-layer edge (sys -> verify), and system headers (never edges).
#include <vector>

#include "lib/bitops.h"
#include "mem/pagetable.h"
#include "verify/verify.h"

struct SysOverview
{
    int cores = 1;
};
