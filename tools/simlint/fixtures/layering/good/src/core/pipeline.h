// Golden POSITIVE fixture for layering: a core-layer header using only
// strictly lower layers (uop, mem, lib) and its own module.
#include "core/context.h"
#include "lib/simtime.h"
#include "mem/hierarchy.h"
#include "uop/uops.h"

struct CorePipeline
{
    int width = 4;
};
