// Golden POSITIVE fixture for checkpoint-coverage: every member is
// covered by both serialize() and restore(), except the explicitly
// waived derived cache. simlint must report nothing.
#include <vector>

struct Machine;

struct DeviceCheckpoint
{
    std::vector<unsigned char> payload;
    unsigned long long count = 0;
    int port = 0;
    int derived_sum = 0;  // simlint: transient (rebuilt on restore)

    void serialize(Machine &m);
    void restore(Machine &m) const;
};

void
DeviceCheckpoint::serialize(Machine &)
{
    payload.clear();
    count = 7;
    port = 1;
}

void
DeviceCheckpoint::restore(Machine &) const
{
    (void)payload;
    (void)count;
    (void)port;
}
