// Golden NEGATIVE fixture for checkpoint-coverage: `dropped` is
// captured by serialize() but never consumed by restore() — the
// classic silently-lossy checkpoint. simlint must flag it.
#include <vector>

struct Machine;

struct DeviceCheckpoint
{
    std::vector<unsigned char> payload;
    unsigned long long dropped = 0;   // written, never restored: BUG
    int port = 0;

    void serialize(Machine &m);
    void restore(Machine &m) const;
};

void
DeviceCheckpoint::serialize(Machine &)
{
    payload.clear();
    dropped = 7;
    port = 1;
}

void
DeviceCheckpoint::restore(Machine &) const
{
    (void)payload;
    (void)port;
    // `dropped` is missing here.
}
