// Golden POSITIVE fixture for event-discipline: the callback re-arms
// by storing the fresh handle, and the one deliberate re-entry is
// waived with a reason.
struct Replayer
{
    void
    arm(EventQueue &eventq)
    {
        handle = eventq.schedule(period, [this, &eventq] {
            deliver();
            handle = eventq.schedule(period, [] {});
        });
    }

    void
    pump(EventQueue &eventq)
    {
        sweeper = eventq.schedule(period, [&eventq] {
            eventq.step();  // simlint: event-ok (test-only pump)
        });
    }

    void deliver();

    EventHandle handle;
    EventHandle sweeper;
    CycleDelta period;
};
