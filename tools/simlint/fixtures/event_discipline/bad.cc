// Golden NEGATIVE fixture for event-discipline: a periodic callback
// that re-enters the dispatch loop and re-arms itself without keeping
// the returned handle. Both must be reported.
struct Replayer
{
    void
    arm(EventQueue &eventq)
    {
        handle = eventq.schedule(period, [this, &eventq] {
            deliver();
            eventq.runDue(64);               // re-entrant dispatch
            eventq.schedule(period, [] {});  // discarded EventHandle
        });
    }

    void deliver();

    EventHandle handle;
    CycleDelta period;
};
