// Golden NEGATIVE fixture for nondeterminism: libc randomness and a
// wall-clock read in simulator code. simlint must flag both. The
// path of this fixture is outside src/sys//src/stats/, so the
// unordered_* check is exercised by the driver's scope logic, not
// here.
#include <cstdlib>
#include <ctime>

unsigned long long
jitter()
{
    // Seeding device latency from the host: replay divergence.
    std::srand((unsigned)time(nullptr));   // BUG x2: srand + time()
    return (unsigned long long)rand();     // BUG: rand
}
