// Golden POSITIVE fixture for nondeterminism: entropy drawn from the
// seeded deterministic generator, simulated time from the TimeKeeper
// member (a variable named `time` is legal — only calls are flagged).
// simlint must report nothing.
#include "lib/rng.h"
#include "sys/timekeeper.h"

using namespace ptl;

struct Device
{
    TimeKeeper *time = nullptr;
    Rng rng{42};

    U64
    jitter()
    {
        return rng.next() % 8;
    }

    SimCycle
    deadline()
    {
        return time->cycle() + time->usToCycles(5);
    }
};
