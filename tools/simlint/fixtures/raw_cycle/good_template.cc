// Regression fixture for raw-cycle: template parameter lists declare
// compile-time constants, not cycle-stamp variables, even when their
// names look stampy. simlint must report nothing.
#include "lib/simtime.h"

using namespace ptl;

template <U64 stall_until = 0, uint64_t ready_cycle = 1>
struct Backoff
{
    SimCycle due;
};

template <typename T, U64 deadline>
T
clampAt(T v)
{
    return v;
}
