// Golden POSITIVE fixture for raw-cycle: strong types everywhere a
// stamp appears; raw integers only for counts (plural names) and the
// one explicitly waived legacy field. simlint must report nothing.
#include "lib/simtime.h"

using namespace ptl;

struct Core
{
    SimCycle ready_cycle;
    U64 budget_cycles = 0;              // a count, not a stamp
    U64 boot_cycle = 0;  // simlint: raw-cycle-ok (arch register value)
};

SimCycle
arm(SimCycle now, int latency)
{
    SimCycle deadline = now + cycles((U64)latency);
    if (deadline == CYCLE_NEVER)
        return CYCLE_NEVER;
    return deadline;
}
