// Golden NEGATIVE fixture for raw-cycle: a raw-integer cycle stamp
// and the untyped ~0ULL never-sentinel. simlint must flag both.
using U64 = unsigned long long;

struct Core
{
    U64 ready_cycle = 0;       // raw stamp declaration: BUG
    U64 budget_cycles = 0;     // plural: a count, legal
};

U64
arm(U64 now, int latency)      // raw `now` parameter: BUG
{
    U64 deadline = now + (U64)latency;   // raw stamp: BUG
    if (deadline == ~0ULL)               // untyped never: BUG
        return ~0ULL - 1;
    return deadline;
}
