// Regression fixture for raw-cycle: string literals are opaque data.
// Stamp-like text inside a (multiline raw) string — documentation,
// golden logs — must never reach the scanner.
const char *kHelp = R"(usage:
  -stopcycle <n>    stop when U64 now = <n>
  a deadline = ~0ULL in a trace line means never
)";

const char *kPlain = "legacy field: U64 due = 5";
