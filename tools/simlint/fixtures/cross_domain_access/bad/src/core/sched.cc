// Golden BAD fixture for cross-domain-access: code in a
// domain-scoped module (src/core/) reaching straight into the
// whole-machine aggregate instead of posting an event. Once each
// Domain runs on its own thread, this dereference races every other
// Domain's progress.

namespace ptl {

struct Machine;
Machine &currentMachine();
void requestStallAll(Machine &m);

void
stallOtherCores()
{
    Machine &m = currentMachine();
    requestStallAll(m);
}

}  // namespace ptl
