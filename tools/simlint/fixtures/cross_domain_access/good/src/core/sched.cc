// Golden GOOD fixture for cross-domain-access: cross-Domain traffic
// rides the sanctioned courier (an event channel), and the one
// direct mention of a cross-domain type carries a waiver with its
// no-race argument.

namespace ptl {

class EventQueue;
struct Machine;

int machineCoreCount(const Machine &m);

class CoreScheduler
{
  public:
    /** Cross-core wakeups go through the target Domain's event
     *  queue — the epoch barrier serializes the post. */
    void
    wakeSibling(EventQueue &eq)
    {
        pending_wakes++;
        (void)eq;
    }

    // Topology is assembled before Domain threads exist and never
    // mutated afterwards; reading it cannot race once sharded.
    int topologySize(const Machine &m) { return machineCoreCount(m); }  // simlint: cross-domain-ok

  private:
    int pending_wakes = 0;
};

}  // namespace ptl
