// Part of the nondet-taint GOOD fixture: identical entry point to
// the bad tree. It stays clean because the only sink it reaches is
// waived where the order-independence argument lives — at the sink.

namespace ptl {

unsigned long sumDirectory();

unsigned long
checkpointDirectory()
{
    return sumDirectory();
}

}  // namespace ptl
