// Part of the nondet-taint GOOD fixture: the same sink as the bad
// tree, but waived at the sink line with an order-independence
// argument — summation commutes, so hash iteration order cannot
// leak into the result. A waived sink taints nothing upstream.

#include <unordered_map>

namespace ptl {

unsigned long
sumDirectory()
{
    std::unordered_map<unsigned long, unsigned long> lines;
    lines[0x40] = 1;
    lines[0x80] = 2;
    unsigned long sum = 0;
    // Order-independent reduction: addition commutes.
    for (const auto &kv : lines)  // simlint: nondet-taint-ok
        sum += kv.second;
    return sum;
}

}  // namespace ptl
