// Part of the nondet-taint BAD fixture: the entry point. Nothing in
// this file is nondeterministic on its own — the finding lands here
// because checkpointDirectory() transitively reaches the unordered
// iteration in src/mem/dirwalk.cc, and the report must carry the
// full call chain to the sink.

namespace ptl {

unsigned long sumDirectory();

unsigned long
checkpointDirectory()
{
    return sumDirectory();
}

}  // namespace ptl
