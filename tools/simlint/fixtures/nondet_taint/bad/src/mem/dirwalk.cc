// Part of the nondet-taint BAD fixture: the sink. Iterating an
// unordered container is legal here in src/mem/ as far as the
// per-file nondeterminism rule cares — the breakage only appears
// when a serialized src/sys/ entry point reaches this function.

#include <unordered_map>

namespace ptl {

unsigned long
sumDirectory()
{
    std::unordered_map<unsigned long, unsigned long> lines;
    lines[0x40] = 1;
    lines[0x80] = 2;
    unsigned long sum = 0;
    for (const auto &kv : lines)
        sum += kv.second;
    return sum;
}

}  // namespace ptl
