"""address-kind: guest addresses must keep their virt/phys kind.

lib/guestaddr.h gives guest-virtual and guest-physical addresses
distinct strong types (GuestVirt/GuestPhys, Vpn/Pfn) whose algebra
rejects cross-kind mixing at compile time; translation through
AddressSpace::walk()/guestTranslate() is the only bridge between the
two.  That guarantee evaporates the moment a value is laundered
through `.raw()` into a raw integer — `U64 p = va.raw()` followed by
`p == paddr.raw()` is exactly the mixed-address-space comparison the
types exist to kill (the OOO LSQ's store-queue search had this bug:
virtual aliases of one physical frame defeated forwarding).

Two checks, same reporting name:

  1. Declaration lint (the raw-cycle analog): a raw-integer
     declaration whose name contains `vaddr`, `paddr`, `pfn` or `vpn`
     must use the matching strong type.  The vocabulary is
     deliberately narrow — names that specific are always guest
     addresses; ambiguous locals (`va`, `addr`) are left to the taint
     analysis.

  2. May-taint over the CFG (the simcycle-escape analog), with the
     taint carrying a *kind*:

     gen   `x = <expr containing A.raw()>` taints x with A's kind
           when A classifies as an address name (cfg.addr_kind:
           `va`/`*vaddr*`/`*vpn*`/`*_va` are virt, `pa`/`*paddr*`/
           `*pfn*`/`*mfn*`/`*_pa` are phys); `y = x` propagates;
           reassignment from unrelated sources kills.
     sink  a tainted value meeting evidence of the *opposite* kind in
           any binary op (+ - += -= < > <= >= == !=): another
           tainted local, a direct `<name>.raw()` of the opposite
           kind, or an identifier whose name classifies opposite.
           Same-kind raw math is left to the type system (it cannot
           mix kinds); equality is NOT exempt here — a virt/phys
           identity check is meaningless, unlike the serialized-stamp
           identity simcycle-escape tolerates.
     call  an argument passing `<virt>.raw()` unwrapped into a
           parameter whose name classifies phys (or vice versa), and
           the re-wrap constructors themselves: `GuestPhys(va.raw())`
           moves a value across the translation boundary without a
           page walk and is flagged directly.

One level of interprocedural propagation mirrors simcycle-escape: an
unwrapped address `.raw()` argument taints the matching parameter of
the callee (with its kind), so mixing inside the callee is caught.

lib/guestaddr.h is exempt (it implements the types).  Waiver:
`// simlint: addr-ok(<why>)` on the offending line; the reason is
mandatory — the legitimate sites are the documented ABI bridges
(register images, hashing, serialization, logging), and each one
must say which it is.
"""

from .. import cfg as cfg_mod
from .. import dataflow

NAME = "address-kind"
WAIVER = "addr-ok"

EXEMPT_PATH_SUFFIXES = ("lib/guestaddr.h",)

_OPPOSITE = {"virt": "phys", "phys": "virt"}

# Re-wrap constructors by the kind they produce; a raw value of the
# other kind flowing into one is a translation-boundary violation.
_WRAP_KIND = {"GuestVirt": "virt", "Vpn": "virt",
              "GuestPhys": "phys", "Pfn": "phys"}


def _leaf(qual):
    return qual.rsplit("::", 1)[-1]


def _transfer(facts, events):
    """Facts are (name, kind) pairs."""
    for ev in events:
        if ev[0] != "as":
            continue
        _k, _line, lhs, rhs_ids, raw_src = ev
        kind = cfg_mod.addr_kind(raw_src) if raw_src else None
        if kind is None:
            prop = {k for (n, k) in facts if n in rhs_ids}
        else:
            prop = {kind}
        facts.discard((lhs, "virt"))
        facts.discard((lhs, "phys"))
        for k in prop:
            facts.add((lhs, k))
    return facts


def _param_taint(ctx):
    """Bare callee name -> {param index: kind} from `ca` events whose
    source classifies as an address name."""
    out = {}
    for fi in ctx.files:
        for fn in fi.funcs:
            cfg = fn.get("cfg")
            if not cfg:
                continue
            for blk in cfg["blocks"]:
                for ev in blk["e"]:
                    if ev[0] != "ca":
                        continue
                    _k, _line, callee, argidx, src = ev
                    kind = cfg_mod.addr_kind(src)
                    if kind and callee not in _WRAP_KIND:
                        out.setdefault(callee, {})[argidx] = kind
    return out


def _param_kinds(ctx):
    """Bare function name -> [addr kind or None per parameter], from
    every function definition's declared parameter names."""
    out = {}
    for fi in ctx.files:
        if fi.rel.endswith(EXEMPT_PATH_SUFFIXES):
            continue
        for fn in fi.funcs:
            cfg = fn.get("cfg")
            if not cfg:
                continue
            params = cfg.get("params") or []
            if params:
                out[_leaf(fn["qual"])] = [cfg_mod.addr_kind(p)
                                          for p in params]
    return out


def _op_evidence(name, facts):
    """(kinds, raw) for one binary operand: the address kinds there is
    evidence for, and whether that evidence is a raw escape (tainted
    local or direct .raw()) rather than just a well-named — and so
    presumably strongly typed — identifier."""
    if name.endswith(".raw"):
        k = cfg_mod.addr_kind(name[:-4])
        return ({k} if k else set()), True
    kinds = {k for (n, k) in facts if n == name}
    if kinds:
        return kinds, True
    k = cfg_mod.addr_kind(name)
    return ({k} if k else set()), False


def run(ctx):
    from . import Finding

    findings = []
    taint_in = _param_taint(ctx)
    param_kinds = _param_kinds(ctx)

    for fi in ctx.files:
        if fi.rel.endswith(EXEMPT_PATH_SUFFIXES):
            continue
        _decl_lint(fi, findings)
        for fn in fi.funcs:
            cfgs = [(fn["qual"], fn.get("cfg"))]
            cfgs += list((fn.get("subcfgs") or {}).items())
            for qual, cfg in cfgs:
                if not cfg:
                    continue
                entry = set()
                leaf = _leaf(qual)
                params = cfg.get("params") or []
                for idx, kind in taint_in.get(leaf, {}).items():
                    if idx < len(params):
                        entry.add((params[idx], kind))
                inp = dataflow.solve(cfg["blocks"], entry, _transfer,
                                     meet="may")
                _walk(fi, qual, cfg, inp, param_kinds, findings)
    return findings


def _decl_lint(fi, findings):
    from . import Finding
    from ..index import addr_decl_type

    for line, itype, name, in_template in fi.addr_decls:
        if in_template:
            continue
        if fi.waived(line, WAIVER):
            if not fi.waiver_arg(line, WAIVER):
                findings.append(Finding(
                    NAME, fi.path, line,
                    "addr-ok waiver on '%s' gives no reason — "
                    "write addr-ok(<why>)" % name))
            continue
        findings.append(Finding(
            NAME, fi.path, line,
            "raw %s declaration of guest address '%s' — use %s "
            "from lib/guestaddr.h" % (itype, name,
                                      addr_decl_type(name))))


def _report(fi, line, msg, findings):
    from . import Finding

    if fi.waived(line, WAIVER):
        if not fi.waiver_arg(line, WAIVER):
            findings.append(Finding(
                NAME, fi.path, line,
                "addr-ok waiver gives no reason — write "
                "addr-ok(<why>)"))
        return
    findings.append(Finding(NAME, fi.path, line, msg))


def _walk(fi, qual, cfg, inp, param_kinds, findings):
    reported = set()
    for bi, blk in enumerate(cfg["blocks"]):
        cur = set(inp[bi] or ())
        for ev in blk["e"]:
            if ev[0] == "bo":
                _k, line, a, op, b = ev
                a_kinds, a_raw = _op_evidence(a, cur)
                b_kinds, b_raw = _op_evidence(b, cur)
                mixed = ("virt" in (a_kinds | b_kinds)
                         and "phys" in (a_kinds | b_kinds))
                if (mixed and (a_raw or b_raw)
                        and (line, a, b) not in reported):
                    reported.add((line, a, b))
                    _report(fi, line,
                            "'%s' (%s) and '%s' (%s) mix address "
                            "kinds through a raw escape ('%s') in %s "
                            "— translate through the address space, "
                            "or waive with `// simlint: "
                            "addr-ok(<why>)`"
                            % (a, "/".join(sorted(a_kinds)), b,
                               "/".join(sorted(b_kinds)), op, qual),
                            findings)
            elif ev[0] == "ca":
                _k, line, callee, argidx, src = ev
                src_kind = cfg_mod.addr_kind(src)
                sink_kind = None
                what = None
                if src_kind and callee in _WRAP_KIND:
                    if _WRAP_KIND[callee] == _OPPOSITE[src_kind]:
                        sink_kind = _WRAP_KIND[callee]
                        what = "re-wrapped as %s" % callee
                elif src_kind:
                    kinds = param_kinds.get(callee)
                    if kinds and argidx < len(kinds) \
                            and kinds[argidx] == _OPPOSITE[src_kind]:
                        sink_kind = kinds[argidx]
                        what = ("passed to %s-kind parameter of %s()"
                                % (sink_kind, callee))
                if sink_kind and (line, callee, src) not in reported:
                    reported.add((line, callee, src))
                    _report(fi, line,
                            "%s address '%s.raw()' %s in %s — raw "
                            "words do not cross the translation "
                            "boundary; walk the page tables, or "
                            "waive with `// simlint: addr-ok(<why>)`"
                            % (src_kind, src, what, qual),
                            findings)
            _transfer(cur, [ev])
