"""shared-state: no unaccounted mutable process-wide state in src/.

The "shard the machine" refactor (ROADMAP) gives every simulated
Domain its own host thread. Any mutable static — a namespace-scope
variable, a file-scope static, an out-of-line static class member, or
a function-local static (the classic singleton accessor) — is then
touched from several threads at once unless someone has proven
otherwise. This rule forces that proof to be written down:

  // simlint: domain-local
      The variable is only ever touched by one Domain's thread
      (e.g. it migrates into Machine/Domain-owned state in the
      sharding PR and the static is a pre-shard convenience).

  // simlint: shared-guarded(<lock>)
      The variable is genuinely shared and <lock> names the mutex /
      atomic discipline protecting it. The argument is mandatory —
      a bare `shared-guarded` waiver is itself a finding, because a
      guard nobody can name is a guard that does not exist.

Constants are fine: any `const`/`constexpr` declaration is ignored by
the index extraction. Scope: files under src/ only — tools and tests
may keep their statics.
"""

NAME = "shared-state"
WAIVER = "domain-local"
WAIVER_GUARDED = "shared-guarded"


def _check(fi, line, name, what, findings):
    from . import Finding

    if fi.waived(line, WAIVER):
        return "domain-local"
    if fi.waived(line, WAIVER_GUARDED):
        arg = fi.waiver_arg(line, WAIVER_GUARDED)
        if arg:
            return "shared-guarded"
        findings.append(Finding(
            NAME, fi.path, line,
            "%s '%s' has a shared-guarded waiver that names no lock — "
            "write shared-guarded(<mutex or atomic>) so the guard is "
            "auditable" % (what, name)))
        return None
    findings.append(Finding(
        NAME, fi.path, line,
        "mutable %s '%s' is process-wide state — migrate it into "
        "Machine/Domain-owned state, or waive with "
        "`// simlint: domain-local` (single-Domain proof) or "
        "`// simlint: shared-guarded(<lock>)`" % (what, name)))
    return None


def run(ctx):
    findings = []
    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        for line, name, _type, is_static in fi.ns_vars:
            what = ("file-scope static" if is_static
                    else "namespace-scope variable")
            _check(fi, line, name, what, findings)
        for fn in fi.funcs:
            for line, name, _type in fn["statics"]:
                _check(fi, line, name,
                       "function-local static (in %s)" % fn["qual"],
                       findings)
    return findings
