"""enum-exhaustiveness: switches over registered enums cover everything.

For the enums that gate simulator correctness — event kinds, uop
functional-unit classes, hypercall/ptlcall ids — a switch that
silently falls through on a newly added enumerator is a latent
wrong-results bug (a new uop class issuing with a default latency, a
new event kind dropped on the floor). Every `switch` whose case
labels name enumerators of a REGISTERED enum must either:

  - cover every enumerator, or
  - carry an explicit `default:` whose body reaches a guard
    (ptl_assert / ptl_warn_once / fatal / ...), so the gap is loud.

Registration is by enum name; add new correctness-critical enums to
REGISTERED and the rule picks up their definitions from the index
(wherever in the tree they live). Waiver: `// simlint: enum-ok` on
the switch line.
"""

NAME = "enum-exhaustiveness"
WAIVER = "enum-ok"

# Correctness-critical enums: a non-exhaustive switch over one of
# these is a simulation-accuracy bug, not a style issue.
REGISTERED = frozenset({
    "EventKind",    # event-queue payload kinds (checkpoint sections)
    "UopClass",     # uop functional-unit class (latency/port choice)
    "Hypercall",    # guest->hypervisor call ids
    "PtlcallOp",    # guest->simulator PTLcall ids
})


def run(ctx):
    from . import Finding

    enums = {}             # enum name -> frozenset of enumerators
    enum_of = {}           # enumerator -> enum name
    for fi in ctx.files:
        for e in fi.enums:
            if e["name"] in REGISTERED and e["enumerators"]:
                enums[e["name"]] = set(e["enumerators"])
                for x in e["enumerators"]:
                    enum_of.setdefault(x, e["name"])

    findings = []
    for fi in ctx.files:
        for sw in fi.switches:
            # Qualified labels name their enum directly; trust that
            # and never fall back to bare-enumerator lookup for them
            # (UopOp::Fence must not be mistaken for UopClass just
            # because both enums spell a `Fence`). Bare labels (HC_*,
            # EVK_*) resolve through the enumerator table.
            quals = {lab.split("::")[-2]
                     for lab in sw["labels"] if "::" in lab}
            if quals:
                target = next((q for q in quals if q in enums), None)
            else:
                target = next((enum_of[lid]
                               for lid in sw["label_ids"]
                               if lid in enum_of), None)
            if target is None:
                continue
            if fi.waived(sw["line"], WAIVER):
                continue
            missing = sorted(enums[target] - set(sw["label_ids"]))
            if not missing:
                continue
            if sw["has_default"] and sw["default_guarded"]:
                continue
            if sw["has_default"]:
                findings.append(Finding(
                    NAME, fi.path, sw["line"],
                    "switch over %s is not exhaustive (missing: %s) "
                    "and its default: is silent — make the default "
                    "body ptl_assert/ptl_warn_once so new "
                    "enumerators fail loudly" % (target,
                                                 ", ".join(missing))))
            else:
                findings.append(Finding(
                    NAME, fi.path, sw["line"],
                    "switch over %s is not exhaustive: missing %s — "
                    "cover every enumerator or add a guarded "
                    "default:" % (target, ", ".join(missing))))
    return findings
