"""cross-domain-access: domain-scoped code talks to other Domains
only through event channels.

The sharding design (ROADMAP "shard the machine") runs one host
thread per simulated Domain and synchronizes them at epoch barriers.
That only works if code owned by a Domain never reaches into another
Domain's state directly — all cross-domain traffic must flow through
the event queue's (due, priority, seq) message discipline, which the
barrier can serialize.

The contract is declared in layers.toml [concurrency]:

  domain_scoped       modules whose instances become per-Domain
                      (core, mem, branch, decode, kernel today);
  cross_domain_types  whole-machine aggregates (Machine, Domain) a
                      domain-scoped function body may not mention;
  channel_types       the sanctioned couriers (EventQueue, ...) —
                      always legal, listed for documentation and for
                      future refinement of the rule.

Detection is name-based over the index's per-function identifier
sets: a function in a domain-scoped module whose body mentions a
cross-domain type is a finding at its definition line. Includes are
NOT consulted — the layering rule owns include edges; this rule owns
type mentions, so the two never double-report.

Waiver: `// simlint: cross-domain-ok` on the definition line, with a
comment explaining why the access cannot race once sharded.
"""

NAME = "cross-domain-access"
WAIVER = "cross-domain-ok"


def _module_of_rel(rel, known):
    parts = rel.split("/")
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] in known:
            return parts[i + 1]
    return None


def run(ctx):
    from . import Finding

    layers = ctx.layers
    if layers is None:
        return []
    conc = layers.get("concurrency") or {}
    domain_scoped = conc.get("domain_scoped") or set()
    bad_types = conc.get("cross_domain_types") or set()
    if not domain_scoped or not bad_types:
        return []
    findings = []
    for fi in ctx.files:
        mod = _module_of_rel(fi.rel, domain_scoped)
        if mod is None:
            continue
        for fn in fi.funcs:
            body_ids = fi.bodies.get(fn["qual"])
            if not body_ids:
                continue
            hits = bad_types.intersection(body_ids)
            if not hits:
                continue
            line = fn["line"]
            if fi.waived(line, WAIVER):
                continue
            findings.append(Finding(
                NAME, fi.path, line,
                "'%s' in domain-scoped module '%s' mentions "
                "cross-domain type %s — route the interaction "
                "through an event channel (EventQueue post), or "
                "waive with `// simlint: cross-domain-ok` and a "
                "no-race argument"
                % (fn["qual"], mod,
                   ", ".join("'%s'" % t for t in sorted(hits)))))
    return findings
