"""nondet-taint: interprocedural nondeterminism reachability.

The per-file `nondeterminism` rule sees a rand() call or an unordered
container where it happens. What it cannot see is a src/sys/ entry
point whose determinism contract is broken three calls away — e.g.
Machine::run -> audit -> CoherenceController::auditAll iterating an
unordered_map. This rule closes that hole with call-graph taint
propagation over the v3 index:

  sinks    entropy calls (rand/clock/... — same disambiguation as the
           nondeterminism rule) and iteration over a variable declared
           anywhere in the tree with an unordered container type
           (range-for subject or .begin()/.cbegin() receiver);
  graph    name-based and over-approximating: a call `f(...)` edges to
           every indexed function whose unqualified name is `f`; no
           type resolution, so virtual dispatch and function pointers
           over-taint rather than under-taint;
  entries  functions defined under src/sys/ or src/stats/ (the
           serialized / statistics scope whose determinism the
           checkpoint and stats machinery depends on).

A tainted entry is reported at its definition line with the full call
chain down to the sink, so the fix site is visible without re-running
anything.

Waiver: `// simlint: nondet-taint-ok` — on a sink line it asserts the
operation is order-independent (an erase-everything loop) and kills
all taint flowing from it; on an entry's definition line it exempts
just that entry.
"""

from .nondeterminism import _ENTROPY_IDS, _TIME_CALL_ARGS

NAME = "nondet-taint"
WAIVER = "nondet-taint-ok"

_ENTRY_SCOPE = ("src/sys/", "src/stats/")


def _last_component(qual):
    return qual.rsplit("::", 1)[-1]


def _containing_node(nodes_by_file, file_idx, line):
    """The tightest function span in this file containing `line`."""
    best = None
    for nid in nodes_by_file.get(file_idx, ()):
        fn = nid[2]
        if fn["lo"] <= line <= fn["hi"]:
            if best is None or (fn["hi"] - fn["lo"]
                                < best[2]["hi"] - best[2]["lo"]):
                best = nid
    return best


def run(ctx):
    from . import Finding

    files = ctx.files
    # Node = (file_idx, func_idx, func_dict); keyed by (fi, fj).
    nodes = []
    nodes_by_file = {}
    by_name = {}
    for i, fi in enumerate(files):
        for j, fn in enumerate(fi.funcs):
            nid = (i, j, fn)
            nodes.append(nid)
            nodes_by_file.setdefault(i, []).append(nid)
            by_name.setdefault(_last_component(fn["qual"]), []).append(nid)

    unordered_names = set()
    for fi in files:
        for _line, name in fi.unordered_decls:
            unordered_names.add(name)

    # Sinks: (node, description). Waived sink lines taint nothing.
    sinks = []
    for i, fi in enumerate(files):
        for line, name, prev, nxt, nxt2 in fi.watch:
            is_entropy = name in _ENTROPY_IDS
            is_time = (name == "time" and nxt == "("
                       and (prev == "::" or nxt2 in _TIME_CALL_ARGS))
            if not (is_entropy or is_time):
                continue
            if fi.waived(line, WAIVER):
                continue
            node = _containing_node(nodes_by_file, i, line)
            if node:
                sinks.append((node, "%s() at %s:%d"
                              % (name, fi.rel, line)))
        for line, ids in fi.iter_sites:
            hit = unordered_names.intersection(ids)
            if not hit:
                continue
            if fi.waived(line, WAIVER):
                continue
            node = _containing_node(nodes_by_file, i, line)
            if node:
                sinks.append((node, "iteration over unordered '%s' "
                              "at %s:%d" % (sorted(hit)[0], fi.rel,
                                            line)))

    # Reverse edges: callee node -> [caller nodes].
    rev = {}
    for nid in nodes:
        for _line, callee in nid[2]["calls"]:
            for target in by_name.get(callee, ()):
                if target[:2] != nid[:2]:
                    rev.setdefault(target[:2], []).append(nid)

    # BFS from sinks; taint[key] = (sink_desc, next_key_toward_sink).
    taint = {}
    work = []
    for node, desc in sinks:
        key = node[:2]
        if key not in taint:
            taint[key] = (desc, None)
            work.append(node)
    while work:
        node = work.pop()
        key = node[:2]
        desc = taint[key][0]
        for caller in rev.get(key, ()):
            ckey = caller[:2]
            if ckey not in taint:
                taint[ckey] = (desc, key)
                work.append(caller)

    def chain(key):
        quals = []
        while key is not None:
            i, j = key
            quals.append(files[i].funcs[j]["qual"])
            key = taint[key][1]
        return quals

    findings = []
    for i, fi in enumerate(files):
        if not any(s in fi.rel for s in _ENTRY_SCOPE):
            continue
        for j, fn in enumerate(fi.funcs):
            key = (i, j)
            if key not in taint:
                continue
            line = fn["line"]
            if fi.waived(line, WAIVER):
                continue
            desc = taint[key][0]
            findings.append(Finding(
                NAME, fi.path, line,
                "'%s' transitively reaches a nondeterministic sink: "
                "%s — call chain: %s. Make the sink deterministic "
                "(sorted iteration, seeded Rng) or waive the sink "
                "line with `// simlint: nondet-taint-ok` and an "
                "order-independence argument"
                % (fn["qual"], desc, " -> ".join(chain(key)))))
    return findings
