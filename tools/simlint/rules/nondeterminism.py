"""nondeterminism: no ambient entropy in serialized or stat paths.

PTLsim's record/replay and run-to-run determinism tests depend on the
simulation being a pure function of (config, guest image, seed). Two
entropy classes break that silently:

  1. wall-clock / libc randomness anywhere in src/:
     rand, srand, drand48, random_device, std::chrono clocks,
     gettimeofday, clock_gettime, std::time — everything stochastic
     must draw from the explicitly seeded generator in lib/rng.h;
  2. iteration-order-dependent containers (std::unordered_map/set)
     in serialized or statistics paths (src/sys/, src/stats/):
     hash-table iteration order varies across libstdc++ versions and
     ASLR, so serializing or aggregating by iteration produces
     run-to-run-different checkpoints and stats trees.

v2: runs off the index's watch table (occurrences of WATCHLIST
identifiers with one token of context), so the rule never re-lexes.

Waiver: `// simlint: nondet-ok` on the offending line.
lib/rng.h itself is exempt (it is the sanctioned entropy source).
"""

NAME = "nondeterminism"
WAIVER = "nondet-ok"

EXEMPT_PATH_SUFFIXES = ("lib/rng.h",)

_ENTROPY_IDS = {
    "rand", "srand", "drand48", "lrand48", "srand48", "rand_r",
    "random_device", "gettimeofday", "clock_gettime",
    "system_clock", "steady_clock", "high_resolution_clock",
}

# std::time / ::time / time(nullptr): only flag `time` when it is
# unambiguously the libc call — qualified with `::`, or passed the
# canonical null argument. A member named `time` (TimeKeeper *time)
# and its constructor-initializer `time(&timekeeper)` stay legal.
_TIME_CALL_ARGS = {"nullptr", "NULL", "0"}

_UNORDERED_IDS = {"unordered_map", "unordered_set",
                  "unordered_multimap", "unordered_multiset"}

_UNORDERED_SCOPE = ("src/sys/", "src/stats/")


def run(ctx):
    from . import Finding

    findings = []
    for fi in ctx.files:
        if fi.rel.endswith(EXEMPT_PATH_SUFFIXES):
            continue
        in_unordered_scope = any(s in fi.rel for s in _UNORDERED_SCOPE)
        for line, name, prev, nxt, nxt2 in fi.watch:
            if name in _ENTROPY_IDS:
                if not fi.waived(line, WAIVER):
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "nondeterministic source '%s' — draw from the "
                        "seeded Rng in lib/rng.h instead" % name))
            elif (name == "time" and nxt == "("
                  and (prev == "::" or nxt2 in _TIME_CALL_ARGS)):
                if not fi.waived(line, WAIVER):
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "wall-clock time() call — simulated time comes "
                        "from TimeKeeper, never the host clock"))
            elif name in _UNORDERED_IDS and in_unordered_scope:
                if not fi.waived(line, WAIVER):
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "'%s' in a serialized/stat path — hash "
                        "iteration order is not deterministic across "
                        "runs; use std::map/std::vector or waive with "
                        "a comment proving no iteration" % name))
    return findings
