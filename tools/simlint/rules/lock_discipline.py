"""lock-discipline: guarded state must be lock-held on all paths.

The shared-state rule (PR 7) made every piece of process-wide mutable
state carry either a `domain-local` proof or a `shared-guarded(mu)`
waiver, and src/lib/threadsafety.h added PTL_GUARDED_BY annotations —
but both were *trusted*, never verified.  This rule retro-validates
them with the CFG/dataflow layer:

  1. every use of a class member annotated `PTL_GUARDED_BY(mu)` must
     sit at a program point where `mu` is held on ALL paths from the
     function entry (a must-dataflow over LockGuard/lock()/unlock()
     events);
  2. likewise for namespace-scope variables and function-local
     statics waived `// simlint: shared-guarded(mu)` when `mu` names
     a mutex (atomic/call_once disciplines have no lock to check);
  3. a call to a function annotated PTL_REQUIRES(mu) — at the
     definition or at the class-body declaration — must itself happen
     with `mu` held.

Entry lock context comes from, in order: the function's own
PTL_REQUIRES annotation, or (one level of interprocedural
propagation, using the call-graph facts in index.py) the intersection
of the lock sets held at every call site of the function.  Lambda
bodies are analyzed as separate sub-CFGs with an *empty* entry
context: a deferred body runs long after the enclosing guard died.

Constructors and destructors are exempt — the object is not shared
while it is being built or torn down.

Waiver: `// simlint: lock-ok(<why>)` on the access line.  The
argument is mandatory; an unexplained exemption is a finding itself.
"""

from .. import dataflow

NAME = "lock-discipline"
WAIVER = "lock-ok"

_MUTEX_TYPES = {"Mutex", "mutex", "shared_mutex", "recursive_mutex"}
_MUTEX_NAME_SUFFIXES = ("mu", "mu_", "mutex", "mutex_", "lock", "lock_")


def _leaf(qual):
    return qual.rsplit("::", 1)[-1]


def _mutex_like(name, declared_mutexes):
    if name in declared_mutexes:
        return True
    return name.endswith(_MUTEX_NAME_SUFFIXES) and name not in (
        "unlock", "lock")


def _transfer(facts, events):
    for ev in events:
        k = ev[0]
        if k in ("g", "l"):
            facts.add(ev[2])
        elif k in ("ge", "ul"):
            facts.discard(ev[2])
    return facts


def _declared_mutexes(ctx):
    out = set()
    for fi in ctx.files:
        for _line, name, mtype, _is_static in fi.ns_vars:
            if mtype in _MUTEX_TYPES:
                out.add(name)
        for cls in fi.classes:
            for name, _line, mtype, _guard in cls["members"]:
                if mtype in _MUTEX_TYPES:
                    out.add(name)
        for fn in fi.funcs:
            for _line, name, mtype in fn["statics"]:
                if mtype in _MUTEX_TYPES:
                    out.add(name)
    return out


def _requires_map(ctx):
    """Bare function name -> set of required locks (decl-site
    PTL_REQUIRES plus definition-site annotations in the CFG)."""
    out = {}
    for fi in ctx.files:
        for qual, locks in fi.requires_decls:
            out.setdefault(_leaf(qual), set()).update(locks)
        for fn in fi.funcs:
            req = fn.get("cfg", {}).get("requires") or []
            if req:
                out.setdefault(_leaf(fn["qual"]), set()).update(req)
    return out


def _entry_requires(fi_requires_decls, fn, requires_map):
    req = set(fn.get("cfg", {}).get("requires") or [])
    req |= requires_map.get(_leaf(fn["qual"]), set()) \
        if _leaf(fn["qual"]) in requires_map else set()
    # requires_map is keyed on bare names, which can collide across
    # classes; restrict the decl-site merge to this function's own
    # qual when possible.
    for qual, locks in fi_requires_decls:
        if qual == fn["qual"]:
            req.update(locks)
    return req


def _callsite_contexts(ctx, requires_map):
    """Bare callee name -> intersection of lock sets held at every
    call site (one level: callers' own entry context comes only from
    PTL_REQUIRES, never from *their* call sites)."""
    held_at = {}
    for fi in ctx.files:
        for fn in fi.funcs:
            cfg = fn.get("cfg")
            if not cfg:
                continue
            entry = _entry_requires(fi.requires_decls, fn,
                                    requires_map)
            inp = dataflow.solve(cfg["blocks"], entry, _transfer,
                                 meet="must")
            for bi, blk in enumerate(cfg["blocks"]):
                if inp[bi] is None:
                    continue
                cur = set(inp[bi])
                for ev in blk["e"]:
                    _transfer(cur, [ev])
                    if ev[0] == "cl":
                        callee = ev[2]
                        snap = frozenset(cur)
                        if callee in held_at:
                            held_at[callee] &= snap
                        else:
                            held_at[callee] = set(snap)
    return held_at


def _scoped_cfgs(fn):
    """(qual, cfg, is_lambda) for a function node and its lambda
    sub-CFGs."""
    yield fn["qual"], fn.get("cfg"), False
    for q, c in (fn.get("subcfgs") or {}).items():
        yield q, c, True


def run(ctx):
    from . import Finding

    findings = []
    declared = _declared_mutexes(ctx)
    requires_map = _requires_map(ctx)
    callsites = _callsite_contexts(ctx, requires_map)

    # Guarded entities, grouped by the function set that can see them.
    # member_guards: class name -> {member: guard}
    member_guards = {}
    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        for cls in fi.classes:
            for name, _line, _mtype, guard in cls["members"]:
                if guard and _mutex_like(guard, declared):
                    member_guards.setdefault(cls["name"],
                                             {})[name] = guard
    # file_guards: fi.rel -> {name: guard} (ns vars + local statics
    # with a mutex-naming shared-guarded waiver)
    file_guards = {}
    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        g = {}
        for line, name, _mtype, _is_static in fi.ns_vars:
            arg = fi.waiver_arg(line, "shared-guarded")
            if arg and _mutex_like(arg, declared) and arg != name:
                g[name] = arg
        for fn in fi.funcs:
            for line, name, _mtype in fn["statics"]:
                arg = fi.waiver_arg(line, "shared-guarded")
                if arg and _mutex_like(arg, declared) and arg != name:
                    g[name] = arg
        if g:
            file_guards[fi.rel] = g

    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        for fn in fi.funcs:
            leaf = _leaf(fn["qual"])
            cls_name = (fn["qual"].rsplit("::", 2)[-2]
                        if "::" in fn["qual"] else None)
            if cls_name and (leaf == cls_name
                             or leaf.startswith("~")):
                continue  # ctor/dtor: object not yet shared
            guards = {}
            if cls_name and cls_name in member_guards:
                guards.update(member_guards[cls_name])
            guards.update(file_guards.get(fi.rel, {}))
            watched_calls = {c for c in requires_map
                            if any(_mutex_like(lk, declared)
                                   for lk in requires_map[c])}
            if not guards and not watched_calls:
                continue

            for qual, cfg, is_lambda in _scoped_cfgs(fn):
                if not cfg:
                    continue
                if is_lambda:
                    entry = set()
                else:
                    entry = _entry_requires(fi.requires_decls, fn,
                                            requires_map)
                    if not entry and leaf in callsites:
                        entry = set(callsites[leaf])
                inp = dataflow.solve(cfg["blocks"], entry, _transfer,
                                     meet="must")
                _walk(fi, qual, cfg, inp, guards, requires_map,
                      declared, entry, findings)
    return findings


def _walk(fi, qual, cfg, inp, guards, requires_map, declared, entry,
          findings):
    from . import Finding

    reported = set()
    for bi, blk in enumerate(cfg["blocks"]):
        if inp[bi] is None:
            continue  # unreachable under must-analysis
        cur = set(inp[bi])
        for ev in blk["e"]:
            k = ev[0]
            if k == "u" and ev[2] in guards:
                lock = guards[ev[2]]
                if lock not in cur and (ev[1], ev[2]) not in reported:
                    reported.add((ev[1], ev[2]))
                    if fi.waived(ev[1], WAIVER):
                        if not fi.waiver_arg(ev[1], WAIVER):
                            findings.append(Finding(
                                NAME, fi.path, ev[1],
                                "lock-ok waiver on '%s' gives no "
                                "reason — write lock-ok(<why>)"
                                % ev[2]))
                        continue
                    findings.append(Finding(
                        NAME, fi.path, ev[1],
                        "'%s' is guarded by '%s' but the lock is not "
                        "held on all paths here (in %s) — take "
                        "LockGuard g(%s) or waive with "
                        "`// simlint: lock-ok(<why>)`"
                        % (ev[2], lock, qual, lock)))
            elif k == "cl" and ev[2] in requires_map:
                for lock in sorted(requires_map[ev[2]]):
                    if not _mutex_like(lock, declared):
                        continue
                    if lock in cur:
                        continue
                    key = (ev[1], ev[2], lock)
                    if key in reported:
                        continue
                    reported.add(key)
                    if fi.waived(ev[1], WAIVER):
                        if not fi.waiver_arg(ev[1], WAIVER):
                            findings.append(Finding(
                                NAME, fi.path, ev[1],
                                "lock-ok waiver on call to '%s' "
                                "gives no reason — write "
                                "lock-ok(<why>)" % ev[2]))
                        continue
                    findings.append(Finding(
                        NAME, fi.path, ev[1],
                        "call to '%s' (PTL_REQUIRES(%s)) without "
                        "'%s' held on all paths (in %s)"
                        % (ev[2], lock, lock, qual)))
            _transfer(cur, [ev])
    return findings
