"""checkpoint-coverage: serialized classes must round-trip every field.

For every class/struct that declares BOTH a `serialize` and a
`restore` method, every non-static data member must be mentioned (by
name) in the serialize body AND in the restore body. A member that is
deliberately derived/rebuilt instead of serialized carries a
`// simlint: transient` waiver on its declaration line.

This is the rule that would have caught the classic checkpoint bug:
a new field added to MachineCheckpoint, written by capture, silently
ignored by restore — state that replays differently with no error.

v2: runs off the semantic index (classes + cross-file method bodies
are precomputed in pass 1), so the per-file token walks are gone.
"""

NAME = "checkpoint-coverage"
WAIVER = "transient"


def run(ctx):
    from . import Finding

    # Bodies may be out-of-line in a .cc far from the class
    # definition; merge across the whole analysis set.
    bodies = {}
    for fi in ctx.files:
        for qual, ids in fi.bodies.items():
            bodies.setdefault(qual, set()).update(ids)

    findings = []
    for fi in ctx.files:
        for cls in fi.classes:
            methods = cls["methods"]
            if "serialize" not in methods or "restore" not in methods:
                continue
            ser = bodies.get(cls["name"] + "::serialize")
            res = bodies.get(cls["name"] + "::restore")
            if ser is None or res is None:
                # Declared but no body anywhere in the analysis set
                # (e.g. an interface); nothing to check.
                continue
            for name, line, _mtype, _guard in cls["members"]:
                if fi.waived(line, WAIVER):
                    continue
                missing = []
                if name not in ser:
                    missing.append("serialize")
                if name not in res:
                    missing.append("restore")
                if missing:
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "field '%s::%s' is not touched by %s "
                        "(serialize/restore must both cover every "
                        "member, or mark it `// simlint: transient` "
                        "and rebuild it on restore)"
                        % (cls["name"], name, " or ".join(missing))))
    return findings
