"""checkpoint-coverage: serialized classes must round-trip every field.

For every class/struct that declares BOTH a `serialize` and a
`restore` method, every non-static data member must be mentioned (by
name) in the serialize body AND in the restore body. A member that is
deliberately derived/rebuilt instead of serialized carries a
`// simlint: transient` waiver on its declaration line.

This is the rule that would have caught the classic checkpoint bug:
a new field added to MachineCheckpoint, written by capture, silently
ignored by restore — state that replays differently with no error.
"""

from .. import model

NAME = "checkpoint-coverage"
WAIVER = "transient"


def run(files):
    from . import Finding

    findings = []

    # Pass 1: collect all method bodies across the file set (bodies
    # may be out-of-line in a .cc far from the class definition).
    bodies = {}
    for lf in files:
        for qual, ids in model.method_bodies(lf).items():
            bodies.setdefault(qual, set()).update(ids)

    # Pass 2: audit every serialize/restore-paired class.
    for lf in files:
        for cls in model.classes(lf):
            if "serialize" not in cls.methods or "restore" not in cls.methods:
                continue
            ser = bodies.get(cls.name + "::serialize")
            res = bodies.get(cls.name + "::restore")
            if ser is None or res is None:
                # Declared but no body anywhere in the analysis set
                # (e.g. an interface); nothing to check.
                continue
            for m in cls.members:
                if lf.waived(m.line, WAIVER):
                    continue
                missing = []
                if m.name not in ser:
                    missing.append("serialize")
                if m.name not in res:
                    missing.append("restore")
                if missing:
                    findings.append(Finding(
                        NAME, lf.path, m.line,
                        "field '%s::%s' is not touched by %s "
                        "(serialize/restore must both cover every "
                        "member, or mark it `// simlint: transient` "
                        "and rebuild it on restore)"
                        % (cls.name, m.name, " or ".join(missing))))
    return findings
